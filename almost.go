// Package almost is the public API of the ALMOST reproduction:
// "ALMOST: Adversarial Learning to Mitigate Oracle-less ML Attacks via
// Synthesis Tuning" (Chowdhury et al., DAC 2023).
//
// ALMOST makes logic-locked netlists resilient to oracle-less
// machine-learning attacks not by inventing a new locking scheme but by
// tuning logic synthesis: a simulated-annealing search over synthesis
// recipes, guided by an adversarially trained proxy attacker, finds
// recipes under which state-of-the-art attacks collapse to ~50% key
// recovery (random guessing) with marginal PPA cost.
//
// # Quick start
//
//	design, _ := almost.GenerateBenchmark("c1908")
//	hardened, err := almost.HardenCtx(ctx, design, 64, almost.DefaultConfig())
//	if err != nil { ... }                   // ctx canceled or config invalid
//	fmt.Println(hardened.Recipe)            // S_ALMOST
//	fmt.Println(hardened.Search.Accuracy)   // proxy-estimated attack accuracy
//
// # Cancellation, errors, and progress
//
// Every long-running entry point has a context-aware form — HardenCtx,
// TrainProxyCtx, SearchRecipeCtx, AttackOMLACtx — that honors
// cancellation and deadlines and returns errors instead of panicking.
// Cancellation checkpoints sit at every training epoch, every SA
// iteration, and every evaluation-engine batch, so a cancel returns in
// bounded time; the best result computed so far is returned alongside an
// error matching both ErrCanceled and ctx.Err(), never discarded.
// Configs are checked up front: Config.Validate reports actionable
// errors wrapping ErrInvalidConfig, and an out-of-range ModelKind yields
// ErrUnknownModel.
//
// Progress streams through the observer option:
//
//	h, err := almost.HardenCtx(ctx, design, 64, cfg,
//		almost.WithObserver(func(ev almost.Event) {
//			if ev.Phase == almost.PhaseSearch {
//				fmt.Printf("SA iter %d: acc %.3f\n", ev.Iteration, ev.Accuracy)
//			}
//		}))
//
// Events cover Algorithm 1 training epochs (PhaseTrain), the Eq. 3
// adversarial searches (PhaseAdvSearch), and the Eq. 1 recipe search
// (PhaseSearch) — the latter is the Fig. 4 accuracy trace, live, with
// Event.Attack naming the ensemble member each point belongs to. The
// panic-era pre-context entry points (Harden, TrainProxy, SearchRecipe,
// AttackOMLA) have been removed; see the README migration note.
//
// # Pluggable attacks and locking schemes
//
// The extension surface of the library is two interfaces and a
// registry. An Attacker reports its key-recovery accuracy on a locked
// netlist; a Locker inserts key gates. The built-ins register themselves
// under "omla", "scope", "redundancy", "satattack", "appsat" (attacks)
// and "rll", "mux", "antisat" (locking schemes); third-party modules add
// their own with
// RegisterAttacker / RegisterLocker and immediately compose with the
// rest of the framework:
//
//	almost.RegisterAttacker(myAttack{})           // Name() = "mine"
//	cfg := almost.DefaultConfig()
//	cfg.EvalAttacks = []string{"omla", "mine"}    // ensemble objective
//	cfg.Lockers = []string{"rll", "mux"}          // mixed-scheme locking
//	hardened, err := almost.HardenCtx(ctx, design, 64, cfg)
//
// With more than one EvalAttacks entry the Eq. 1 search minimizes an
// ensemble objective — per candidate recipe every named attack runs on
// the synthesized netlist and the deviations |Acc − 0.5| reduce to the
// worst case (or the mean, Config.EnsembleReduce). Trajectories stay
// bit-for-bit deterministic for any Parallelism and any attack-set
// order: attacks reduce in registration order.
//
// # Concurrency
//
// The hot path of the whole framework — synthesizing the locked netlist
// with a candidate recipe and re-running the proxy attack, once per
// simulated-annealing step — executes on a concurrent recipe-evaluation
// engine. Each SA iteration proposes Config.SAProposals neighbor
// recipes and fans them out across Config.Parallelism workers (<= 0
// selects runtime.NumCPU(); the CLI exposes this as -jobs), every
// worker evaluating on its own private copy of the netlist. Scores are
// memoized under a canonical recipe hash, so recipes the annealer
// revisits are never re-synthesized. Search results are bit-for-bit
// deterministic for a fixed Config.Seed regardless of Parallelism:
// proposal and acceptance randomness come from dedicated streams
// derived from the master seed, and candidate batches are reduced in
// proposal order.
//
//	cfg := almost.DefaultConfig()
//	cfg.Parallelism = 8 // evaluate 8 candidates concurrently
//	hardened, err := almost.HardenCtx(ctx, design, 64, cfg)
//
// The heavy lifting lives in the internal packages (AIG engine,
// synthesis transforms, SAT solver, GNN, attacks); this package exposes
// stable aliases and entry points so downstream code never imports
// internal paths directly.
package almost

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/attack/satattack"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/cnf"
	"github.com/nyu-secml/almost/internal/core"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/netio"
	"github.com/nyu-secml/almost/internal/synth"
	"github.com/nyu-secml/almost/internal/techmap"
)

// Core type aliases. Aliasing (rather than wrapping) keeps the full
// method sets available to API users.
type (
	// AIG is an and-inverter graph netlist.
	AIG = aig.AIG
	// Key is a key-bit vector for a locked netlist.
	Key = lock.Key
	// Recipe is an ordered synthesis script.
	Recipe = synth.Recipe
	// Step is a single synthesis transformation.
	Step = synth.Step
	// Config bundles every framework knob.
	Config = core.Config
	// Hardened is the output of the end-to-end pipeline.
	Hardened = core.Hardened
	// Proxy is a trained attack-accuracy estimator.
	Proxy = core.Proxy
	// ModelKind selects the proxy training regime.
	ModelKind = core.ModelKind
	// SearchResult is the outcome of the Eq. 1 recipe search.
	SearchResult = core.SearchResult
	// PPAResult reports mapped power-performance-area.
	PPAResult = techmap.Result
	// Event is one streamed progress observation from a running pipeline.
	Event = core.Event
	// Phase identifies the pipeline stage an Event was emitted from.
	Phase = core.Phase
	// Option configures a context-aware entry point (functional options).
	Option = core.Option
	// Attacker is a pluggable oracle-less attack (see RegisterAttacker).
	Attacker = core.Attacker
	// Locker is a pluggable logic-locking scheme (see RegisterLocker).
	Locker = core.Locker
	// KeyPredictor is the optional Attacker upgrade for attacks that can
	// report the predicted key itself.
	KeyPredictor = core.KeyPredictor
	// EnsembleReduce selects how an attack ensemble's deviations combine
	// into the search objective.
	EnsembleReduce = core.EnsembleReduce
	// Oracle answers input queries of an unlocked working chip, the extra
	// capability the oracle-guided SAT-attack family assumes.
	Oracle = satattack.Oracle
	// SATAttackConfig controls SAT-attack effort and the AppSAT
	// approximation schedule.
	SATAttackConfig = satattack.Config
	// SATAttackResult is a SAT-attack outcome: the recovered (or
	// best-so-far) key, the DIP count, and whether the key is proved
	// exact.
	SATAttackResult = satattack.Result
)

// Ensemble reductions for Config.EnsembleReduce.
const (
	// ReduceWorst (default) minimizes the worst deviation from 50%.
	ReduceWorst = core.ReduceWorst
	// ReduceMean minimizes the mean deviation from 50%.
	ReduceMean = core.ReduceMean
)

// RegisterAttacker adds an attack to the registry, making it available
// to Config.EvalAttacks, the experiment drivers, and the CLI. Safe for
// concurrent use; duplicate or empty names are rejected. Register
// third-party attacks (typically from an init function of the importing
// module) before building Configs that name them.
func RegisterAttacker(a Attacker) error { return core.RegisterAttacker(a) }

// RegisterLocker adds a locking scheme to the registry, making it
// available to Config.Lockers and the CLI's -locker flag. Safe for
// concurrent use; duplicate or empty names are rejected.
func RegisterLocker(l Locker) error { return core.RegisterLocker(l) }

// Attackers lists the registered attack names in registration order
// (built-ins first: omla, scope, redundancy, satattack, appsat).
func Attackers() []string { return core.Attackers() }

// Lockers lists the registered locking-scheme names in registration
// order (built-ins first: rll, mux, antisat).
func Lockers() []string { return core.Lockers() }

// LookupAttacker resolves a registered attack by name.
func LookupAttacker(name string) (Attacker, bool) { return core.LookupAttacker(name) }

// LookupLocker resolves a registered locking scheme by name.
func LookupLocker(name string) (Locker, bool) { return core.LookupLocker(name) }

// WithRecipe tells an Attacker which synthesis recipe the defender used
// (self-referencing attacks like OMLA re-synthesize their training data
// with it; attacks that don't need it ignore it).
func WithRecipe(r Recipe) Option { return core.WithRecipe(r) }

// WithOracle hands the oracle-guided attacks ("satattack", "appsat") a
// working unlocked chip to query. Evaluation entry points that already
// hold the true key derive a simulation oracle themselves; key
// prediction through the registry requires one explicitly.
func WithOracle(o Oracle) Option { return core.WithOracle(o) }

// WithSATAttackConfig overrides the effort settings of the registered
// "satattack"/"appsat" attackers (DIP budget, per-call conflict budget,
// AppSAT estimation schedule).
func WithSATAttackConfig(cfg SATAttackConfig) Option { return core.WithSATAttackConfig(cfg) }

// Pipeline phases reported in Event.Phase.
const (
	PhaseLock      = core.PhaseLock
	PhaseTrain     = core.PhaseTrain
	PhaseAdvSearch = core.PhaseAdvSearch
	PhaseSearch    = core.PhaseSearch
	PhaseSynth     = core.PhaseSynth
)

// Typed errors of the context-aware API. Cancellation errors match both
// ErrCanceled and the context's own error under errors.Is.
var (
	// ErrCanceled marks an error caused by context cancellation; the
	// result returned alongside it holds the best-so-far work.
	ErrCanceled = core.ErrCanceled
	// ErrUnknownModel is returned for a ModelKind outside the three
	// Table I variants.
	ErrUnknownModel = core.ErrUnknownModel
	// ErrInvalidConfig wraps every Config.Validate failure.
	ErrInvalidConfig = core.ErrInvalidConfig
)

// WithObserver streams pipeline progress events to fn: training epochs
// (PhaseTrain), Eq. 3 adversarial-search iterations (PhaseAdvSearch),
// and Eq. 1 recipe-search iterations (PhaseSearch — the live Fig. 4
// trace). Observers run synchronously on the pipeline goroutine; keep
// them fast.
func WithObserver(fn func(Event)) Option { return core.WithObserver(fn) }

// Proxy model kinds (Table I).
const (
	ModelResyn2      = core.ModelResyn2
	ModelRandom      = core.ModelRandom
	ModelAdversarial = core.ModelAdversarial
)

// DefaultConfig returns laptop-scale framework settings.
func DefaultConfig() Config { return core.DefaultConfig() }

// PaperConfig returns the full-size settings of §IV-A.
func PaperConfig() Config { return core.PaperConfig() }

// GenerateBenchmark builds a named ISCAS85-profile benchmark circuit
// (c432, c499, c880, c1355, c1908, c2670, c3540, c5315, c6288, c7552).
func GenerateBenchmark(name string) (*AIG, error) { return circuits.Generate(name) }

// Benchmarks lists the available benchmark names.
func Benchmarks() []string { return circuits.Names() }

// PaperBenchmarks lists the seven circuits of the paper's tables.
func PaperBenchmarks() []string { return circuits.PaperSet() }

// ParseBench reads an ISCAS85 ".bench" netlist.
func ParseBench(r io.Reader) (*AIG, error) { return netio.ParseBench(r) }

// WriteBench writes an AIG as a ".bench" netlist.
func WriteBench(w io.Writer, g *AIG) error { return netio.WriteBench(w, g) }

// ParseAIGER reads an AIGER netlist, accepting both the ASCII ("aag")
// and binary ("aig") variants. Key-input metadata in the symbol table
// and comment section is honored.
func ParseAIGER(r io.Reader) (*AIG, error) { return netio.ParseAIGER(r) }

// WriteAAG writes an AIG in ASCII AIGER format, including the symbol
// table and the key-input annotation of locked netlists.
func WriteAAG(w io.Writer, g *AIG) error { return netio.WriteAAG(w, g) }

// WriteAIG writes an AIG in binary AIGER format, including the symbol
// table and the key-input annotation of locked netlists.
func WriteAIG(w io.Writer, g *AIG) error { return netio.WriteAIG(w, g) }

// ReadNetlistFile loads a netlist from a .bench, .aag, or .aig file,
// sniffing the format from the extension.
func ReadNetlistFile(path string) (*AIG, error) { return netio.ReadFile(path) }

// WriteNetlistFile stores a netlist at a .bench, .aag, or .aig path,
// sniffing the format from the extension.
func WriteNetlistFile(path string, g *AIG) error { return netio.WriteFile(path, g) }

// Lock applies random logic locking with keySize XOR/XNOR key gates.
func Lock(g *AIG, keySize int, rng *rand.Rand) (*AIG, Key) {
	return lock.Lock(g, keySize, rng)
}

// LockMux applies MUX-based locking: each key gate multiplexes the true
// signal against a decoy wire, hiding which fanin is functional.
func LockMux(g *AIG, keySize int, rng *rand.Rand) (*AIG, Key) {
	return lock.LockMux(g, keySize, rng)
}

// LockAntiSAT applies an anti-SAT/SARLock-style point-function defense:
// a comparator block keyed with keySize bits corrupts one output on
// exactly one input pattern per wrong key, pushing the oracle-guided SAT
// attack's DIP count exponential in the key width. It composes with the
// other schemes (lock the circuit first, then stack "antisat" on top —
// or chain them via LockWithCtx with Config.Lockers semantics). Note the
// defense is deliberately one-sided: it does nothing against the
// oracle-less ML attacks the paper targets, and its point-function
// structure is itself detectable by structural analysis — see the README
// threat-model section.
func LockAntiSAT(g *AIG, keySize int, rng *rand.Rand) (*AIG, Key) {
	return lock.LockAntiSAT(g, keySize, rng)
}

// LockWithCtx locks g by chaining registered locking schemes by name
// (nil or empty selects plain RLL). The key budget splits evenly across
// the chain and the returned key concatenates the per-scheme keys in
// chain order.
func LockWithCtx(ctx context.Context, g *AIG, keySize int, lockers []string, rng *rand.Rand) (*AIG, Key, error) {
	return core.LockWithCtx(ctx, g, keySize, lockers, rng)
}

// ApplyKey substitutes the key into a locked netlist, recovering the
// functional circuit.
func ApplyKey(g *AIG, key Key) (*AIG, error) { return lock.ApplyKey(g, key) }

// Resyn2 returns the baseline delay-optimization recipe (ABC resyn2).
func Resyn2() Recipe { return synth.Resyn2() }

// RandomRecipe draws a uniform random recipe of length n.
func RandomRecipe(rng *rand.Rand, n int) Recipe { return synth.RandomRecipe(rng, n) }

// ParseRecipe parses a semicolon-separated recipe script, e.g.
// "balance; rewrite -z; refactor".
func ParseRecipe(script string) (Recipe, error) { return synth.ParseRecipe(script) }

// HardenCtx runs the complete ALMOST flow: lock the design with the
// cfg.Lockers chain (plain RLL by default), train the adversarial proxy
// M*, search for S_ALMOST (Eq. 1, against the cfg.EvalAttacks
// objective), and synthesize the hardened netlist.
//
// The context is honored at every training epoch, SA iteration, and
// evaluation-engine batch. On cancellation the returned *Hardened is
// non-nil and holds everything completed so far (always Locked and Key;
// Proxy, Search, Recipe, and Netlist as far as the run got), alongside
// an error matching both ErrCanceled and ctx.Err(). A nil *Hardened is
// only returned for an invalid Config (ErrInvalidConfig). Progress
// streams to WithObserver observers.
func HardenCtx(ctx context.Context, design *AIG, keySize int, cfg Config, opts ...Option) (*Hardened, error) {
	return core.SecureSynthesisCtx(ctx, design, keySize, cfg, opts...)
}

// TrainProxyCtx trains one of the three proxy attacker models against a
// locked netlist, honoring ctx at every data-generation round, training
// epoch, and (for ModelAdversarial) Eq. 3 SA iteration. On cancellation
// the partially trained proxy is returned alongside an error matching
// both ErrCanceled and ctx.Err(); an out-of-range kind returns
// ErrUnknownModel. Progress streams to WithObserver observers.
func TrainProxyCtx(ctx context.Context, locked *AIG, kind ModelKind, baseline Recipe, cfg Config, opts ...Option) (*Proxy, error) {
	return core.TrainProxyCtx(ctx, locked, kind, baseline, cfg, opts...)
}

// SearchRecipeCtx runs the security-aware SA recipe search (Eq. 1) with
// a trained proxy as evaluator, honoring ctx at every SA iteration and
// engine batch. cfg.EvalAttacks widens the objective to an attack
// ensemble. On cancellation the best-so-far SearchResult is returned
// alongside an error matching both ErrCanceled and ctx.Err(). Observers
// receive one PhaseSearch event per ensemble attack per iteration — the
// Fig. 4 trace, live.
func SearchRecipeCtx(ctx context.Context, locked *AIG, truth Key, proxy *Proxy, cfg Config, opts ...Option) (SearchResult, error) {
	return core.SearchRecipeCtx(ctx, locked, truth, proxy, cfg, opts...)
}

// attackByName runs a registered attack on a locked netlist.
func attackByName(ctx context.Context, name string, netlist *AIG, truth Key, opts ...Option) (float64, error) {
	atk, ok := core.LookupAttacker(name)
	if !ok {
		return 0, fmt.Errorf("almost: attack %q is not registered", name)
	}
	return atk.AttackCtx(ctx, netlist, truth, opts...)
}

// AttackOMLACtx trains an independent OMLA attacker against the netlist
// (which was synthesized with recipe) and returns its key-recovery
// accuracy against the true key, honoring ctx at every data-generation
// round and training epoch. On cancellation the error matches both
// ErrCanceled and ctx.Err(); any other failure is returned unwrapped.
func AttackOMLACtx(ctx context.Context, netlist *AIG, recipe Recipe, truth Key) (float64, error) {
	return attackByName(ctx, "omla", netlist, truth, WithRecipe(recipe))
}

// AttackSCOPECtx runs the SCOPE constant-propagation attack, honoring
// ctx at every key bit. On cancellation the error matches both
// ErrCanceled and ctx.Err().
func AttackSCOPECtx(ctx context.Context, netlist *AIG, truth Key) (float64, error) {
	return attackByName(ctx, "scope", netlist, truth)
}

// AttackRedundancyCtx runs the redundancy-identification attack,
// honoring ctx at every key bit. On cancellation the error matches both
// ErrCanceled and ctx.Err().
func AttackRedundancyCtx(ctx context.Context, netlist *AIG, truth Key) (float64, error) {
	return attackByName(ctx, "redundancy", netlist, truth)
}

// SimOracle wraps a key-free netlist (the original design) as an Oracle
// via bit-parallel simulation. It panics if the netlist still has key
// inputs. The returned closure is not safe for concurrent use.
func SimOracle(g *AIG) Oracle { return satattack.SimOracle(g) }

// DefaultSATAttackConfig balances SAT-attack fidelity and runtime.
func DefaultSATAttackConfig() SATAttackConfig { return satattack.DefaultConfig() }

// AttackSATCtx runs the classic oracle-guided SAT attack (Subramanyan et
// al., HOST 2015) against a locked netlist: it alternates between
// solving a key miter for a distinguishing input pattern and pinning the
// key candidates to the oracle's answer, until the surviving keys are
// provably equivalent (Result.Exact). Cancellation is honored inside
// each SAT call and returns the best-so-far key alongside an error
// matching ctx.Err(); budget exhaustion (cfg.MaxDIPs, cfg.SolveConflicts)
// is not an error — it returns the best candidate with Exact == false.
func AttackSATCtx(ctx context.Context, locked *AIG, oracle Oracle, cfg SATAttackConfig) (SATAttackResult, error) {
	return satattack.AttackCtx(ctx, locked, oracle, cfg)
}

// AttackAppSATCtx runs the approximate AppSAT variant (Shamsi et al.,
// HOST 2017): every cfg.EstimateEvery DIPs the candidate key's error
// rate is estimated on random oracle queries, and the attack settles for
// an approximately-correct key once the estimate reaches
// cfg.ErrorTarget — the standard counter to point-function defenses like
// LockAntiSAT, whose exact attack cost is exponential.
func AttackAppSATCtx(ctx context.Context, locked *AIG, oracle Oracle, cfg SATAttackConfig) (SATAttackResult, error) {
	return satattack.AppSATCtx(ctx, locked, oracle, cfg)
}

// Equivalent checks combinational equivalence of two netlists by SAT.
// The error (matching cnf.ErrMismatch) reports an interface-arity
// mismatch — a malformed comparison, distinct from inequivalence.
func Equivalent(a, b *AIG) (bool, []bool, error) { return cnf.Equivalent(a, b) }

// EquivalentCtx is Equivalent with cancellation threaded into the SAT
// search itself.
func EquivalentCtx(ctx context.Context, a, b *AIG) (bool, []bool, error) {
	return cnf.EquivalentCtx(ctx, a, b)
}

// EquivalentUnderKey checks that a locked netlist under the given key
// matches the original design. The error (matching cnf.ErrMismatch)
// reports a key-size or interface mismatch.
func EquivalentUnderKey(orig, locked *AIG, key Key) (bool, []bool, error) {
	return cnf.EquivalentUnderKey(orig, locked, key)
}

// EquivalentUnderKeyCtx is EquivalentUnderKey with cancellation threaded
// into the SAT search itself.
func EquivalentUnderKeyCtx(ctx context.Context, orig, locked *AIG, key Key) (bool, []bool, error) {
	return cnf.EquivalentUnderKeyCtx(ctx, orig, locked, key)
}

// PPA maps the netlist onto the NanGate45-like library and reports
// area/delay/power. highEffort selects the "+opt" flow.
func PPA(g *AIG, highEffort bool) PPAResult {
	eff := techmap.EffortNone
	if highEffort {
		eff = techmap.EffortHigh
	}
	return techmap.Map(g, techmap.NanGate45(), eff)
}

// Accuracy scores a guessed key against the truth.
func Accuracy(truth, guess Key) float64 { return lock.Accuracy(truth, guess) }
