// Package almost is the public API of the ALMOST reproduction:
// "ALMOST: Adversarial Learning to Mitigate Oracle-less ML Attacks via
// Synthesis Tuning" (Chowdhury et al., DAC 2023).
//
// ALMOST makes logic-locked netlists resilient to oracle-less
// machine-learning attacks not by inventing a new locking scheme but by
// tuning logic synthesis: a simulated-annealing search over synthesis
// recipes, guided by an adversarially trained proxy attacker, finds
// recipes under which state-of-the-art attacks collapse to ~50% key
// recovery (random guessing) with marginal PPA cost.
//
// # Quick start
//
//	design, _ := almost.GenerateBenchmark("c1908")
//	hardened := almost.Harden(design, 64, almost.DefaultConfig())
//	fmt.Println(hardened.Recipe)            // S_ALMOST
//	fmt.Println(hardened.Search.Accuracy)   // proxy-estimated attack accuracy
//
// # Concurrency
//
// The hot path of the whole framework — synthesizing the locked netlist
// with a candidate recipe and re-running the proxy attack, once per
// simulated-annealing step — executes on a concurrent recipe-evaluation
// engine. Each SA iteration proposes Config.SAProposals neighbor
// recipes and fans them out across Config.Parallelism workers (<= 0
// selects runtime.NumCPU(); the CLI exposes this as -jobs), every
// worker evaluating on its own private copy of the netlist. Scores are
// memoized under a canonical recipe hash, so recipes the annealer
// revisits are never re-synthesized. Search results are bit-for-bit
// deterministic for a fixed Config.Seed regardless of Parallelism:
// proposal and acceptance randomness come from dedicated streams
// derived from the master seed, and candidate batches are reduced in
// proposal order.
//
//	cfg := almost.DefaultConfig()
//	cfg.Parallelism = 8 // evaluate 8 candidates concurrently
//	hardened := almost.Harden(design, 64, cfg)
//
// The heavy lifting lives in the internal packages (AIG engine,
// synthesis transforms, SAT solver, GNN, attacks); this package exposes
// stable aliases and entry points so downstream code never imports
// internal paths directly.
package almost

import (
	"io"
	"math/rand"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/attack/omla"
	"github.com/nyu-secml/almost/internal/attack/redundancy"
	"github.com/nyu-secml/almost/internal/attack/scope"
	"github.com/nyu-secml/almost/internal/bench"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/cnf"
	"github.com/nyu-secml/almost/internal/core"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/synth"
	"github.com/nyu-secml/almost/internal/techmap"
)

// Core type aliases. Aliasing (rather than wrapping) keeps the full
// method sets available to API users.
type (
	// AIG is an and-inverter graph netlist.
	AIG = aig.AIG
	// Key is a key-bit vector for a locked netlist.
	Key = lock.Key
	// Recipe is an ordered synthesis script.
	Recipe = synth.Recipe
	// Step is a single synthesis transformation.
	Step = synth.Step
	// Config bundles every framework knob.
	Config = core.Config
	// Hardened is the output of the end-to-end pipeline.
	Hardened = core.Hardened
	// Proxy is a trained attack-accuracy estimator.
	Proxy = core.Proxy
	// ModelKind selects the proxy training regime.
	ModelKind = core.ModelKind
	// SearchResult is the outcome of the Eq. 1 recipe search.
	SearchResult = core.SearchResult
	// PPAResult reports mapped power-performance-area.
	PPAResult = techmap.Result
)

// Proxy model kinds (Table I).
const (
	ModelResyn2      = core.ModelResyn2
	ModelRandom      = core.ModelRandom
	ModelAdversarial = core.ModelAdversarial
)

// DefaultConfig returns laptop-scale framework settings.
func DefaultConfig() Config { return core.DefaultConfig() }

// PaperConfig returns the full-size settings of §IV-A.
func PaperConfig() Config { return core.PaperConfig() }

// GenerateBenchmark builds a named ISCAS85-profile benchmark circuit
// (c432, c499, c880, c1355, c1908, c2670, c3540, c5315, c6288, c7552).
func GenerateBenchmark(name string) (*AIG, error) { return circuits.Generate(name) }

// Benchmarks lists the available benchmark names.
func Benchmarks() []string { return circuits.Names() }

// PaperBenchmarks lists the seven circuits of the paper's tables.
func PaperBenchmarks() []string { return circuits.PaperSet() }

// ParseBench reads an ISCAS85 ".bench" netlist.
func ParseBench(r io.Reader) (*AIG, error) { return bench.Parse(r) }

// WriteBench writes an AIG as a ".bench" netlist.
func WriteBench(w io.Writer, g *AIG) error { return bench.Write(w, g) }

// Lock applies random logic locking with keySize XOR/XNOR key gates.
func Lock(g *AIG, keySize int, rng *rand.Rand) (*AIG, Key) {
	return lock.Lock(g, keySize, rng)
}

// ApplyKey substitutes the key into a locked netlist, recovering the
// functional circuit.
func ApplyKey(g *AIG, key Key) (*AIG, error) { return lock.ApplyKey(g, key) }

// Resyn2 returns the baseline delay-optimization recipe (ABC resyn2).
func Resyn2() Recipe { return synth.Resyn2() }

// RandomRecipe draws a uniform random recipe of length n.
func RandomRecipe(rng *rand.Rand, n int) Recipe { return synth.RandomRecipe(rng, n) }

// ParseRecipe parses a semicolon-separated recipe script, e.g.
// "balance; rewrite -z; refactor".
func ParseRecipe(script string) (Recipe, error) { return synth.ParseRecipe(script) }

// Harden runs the complete ALMOST flow: RLL-lock the design, train the
// adversarial proxy M*, search for S_ALMOST (Eq. 1), and synthesize the
// hardened netlist.
func Harden(design *AIG, keySize int, cfg Config) *Hardened {
	return core.SecureSynthesis(design, keySize, cfg)
}

// TrainProxy trains one of the three proxy attacker models against a
// locked netlist.
func TrainProxy(locked *AIG, kind ModelKind, baseline Recipe, cfg Config) *Proxy {
	return core.TrainProxy(locked, kind, baseline, cfg)
}

// SearchRecipe runs the security-aware SA recipe search with a trained
// proxy as evaluator.
func SearchRecipe(locked *AIG, truth Key, proxy *Proxy, cfg Config) SearchResult {
	return core.SearchRecipe(locked, truth, proxy, cfg)
}

// AttackOMLA trains an independent OMLA attacker against the netlist
// (which was synthesized with recipe) and returns its key-recovery
// accuracy against the true key.
func AttackOMLA(netlist *AIG, recipe Recipe, truth Key) float64 {
	return omla.Train(netlist, recipe, omla.DefaultConfig()).Accuracy(netlist, truth)
}

// AttackSCOPE runs the SCOPE constant-propagation attack.
func AttackSCOPE(netlist *AIG, truth Key) float64 {
	return scope.Accuracy(netlist, truth, scope.DefaultConfig())
}

// AttackRedundancy runs the redundancy-identification attack.
func AttackRedundancy(netlist *AIG, truth Key) float64 {
	return redundancy.Accuracy(netlist, truth, redundancy.DefaultConfig())
}

// Equivalent checks combinational equivalence of two netlists by SAT.
func Equivalent(a, b *AIG) (bool, []bool) { return cnf.Equivalent(a, b) }

// EquivalentUnderKey checks that a locked netlist under the given key
// matches the original design.
func EquivalentUnderKey(orig, locked *AIG, key Key) (bool, []bool) {
	return cnf.EquivalentUnderKey(orig, locked, key)
}

// PPA maps the netlist onto the NanGate45-like library and reports
// area/delay/power. highEffort selects the "+opt" flow.
func PPA(g *AIG, highEffort bool) PPAResult {
	eff := techmap.EffortNone
	if highEffort {
		eff = techmap.EffortHigh
	}
	return techmap.Map(g, techmap.NanGate45(), eff)
}

// Accuracy scores a guessed key against the truth.
func Accuracy(truth, guess Key) float64 { return lock.Accuracy(truth, guess) }
