package almost_test

import (
	"math/rand"
	"strings"
	"testing"

	almost "github.com/nyu-secml/almost"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	design, err := almost.GenerateBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	locked, key := almost.Lock(design, 8, rand.New(rand.NewSource(1)))
	if ok, _ := almost.EquivalentUnderKey(design, locked, key); !ok {
		t.Fatal("correct key rejected")
	}
	unlocked, err := almost.ApplyKey(locked, key)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := almost.Equivalent(design, unlocked); !ok {
		t.Fatal("ApplyKey broke the function")
	}
}

func TestPublicBenchIO(t *testing.T) {
	design, _ := almost.GenerateBenchmark("c432")
	var sb strings.Builder
	if err := almost.WriteBench(&sb, design); err != nil {
		t.Fatal(err)
	}
	back, err := almost.ParseBench(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := almost.Equivalent(design, back); !ok {
		t.Fatal("bench round trip broke the function")
	}
}

func TestPublicRecipeHelpers(t *testing.T) {
	r := almost.Resyn2()
	if len(r) != 10 {
		t.Fatalf("resyn2 length = %d", len(r))
	}
	parsed, err := almost.ParseRecipe(r.String())
	if err != nil || !parsed.Equal(r) {
		t.Fatalf("recipe parse round trip: %v %v", parsed, err)
	}
	rr := almost.RandomRecipe(rand.New(rand.NewSource(2)), 10)
	if len(rr) != 10 {
		t.Fatalf("random recipe length = %d", len(rr))
	}
}

func TestPublicBenchmarkLists(t *testing.T) {
	if len(almost.Benchmarks()) < 10 {
		t.Fatalf("benchmarks = %v", almost.Benchmarks())
	}
	if len(almost.PaperBenchmarks()) != 7 {
		t.Fatalf("paper benchmarks = %v", almost.PaperBenchmarks())
	}
}

func TestPublicPPA(t *testing.T) {
	design, _ := almost.GenerateBenchmark("c432")
	low := almost.PPA(design, false)
	high := almost.PPA(design, true)
	if low.Area <= 0 || high.Area <= 0 {
		t.Fatalf("degenerate PPA: %v %v", low, high)
	}
}

func TestPublicAccuracy(t *testing.T) {
	truth := almost.Key{true, false}
	if almost.Accuracy(truth, almost.Key{true, false}) != 1 {
		t.Fatal("accuracy wrong")
	}
}

func TestPublicHardenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test in -short mode")
	}
	design, _ := almost.GenerateBenchmark("c432")
	cfg := almost.DefaultConfig()
	cfg.Attack.Rounds = 2
	cfg.Attack.Epochs = 4
	cfg.AdvPeriod = 2
	cfg.AdvGates = 6
	cfg.AdvSAIters = 2
	cfg.SA.Iterations = 4
	h := almost.Harden(design, 8, cfg)
	if ok, _ := almost.EquivalentUnderKey(design, h.Netlist, h.Key); !ok {
		t.Fatal("hardened netlist broken under key")
	}
	if len(h.Recipe) != cfg.RecipeLen {
		t.Fatalf("recipe length %d", len(h.Recipe))
	}
}
