package almost_test

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	almost "github.com/nyu-secml/almost"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	design, err := almost.GenerateBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	locked, key := almost.Lock(design, 8, rand.New(rand.NewSource(1)))
	if ok, _, _ := almost.EquivalentUnderKey(design, locked, key); !ok {
		t.Fatal("correct key rejected")
	}
	unlocked, err := almost.ApplyKey(locked, key)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := almost.Equivalent(design, unlocked); !ok {
		t.Fatal("ApplyKey broke the function")
	}
}

func TestPublicBenchIO(t *testing.T) {
	design, _ := almost.GenerateBenchmark("c432")
	var sb strings.Builder
	if err := almost.WriteBench(&sb, design); err != nil {
		t.Fatal(err)
	}
	back, err := almost.ParseBench(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := almost.Equivalent(design, back); !ok {
		t.Fatal("bench round trip broke the function")
	}
}

func TestPublicAIGERAndFileIO(t *testing.T) {
	design, _ := almost.GenerateBenchmark("c432")
	// ASCII AIGER through the public API.
	var sb strings.Builder
	if err := almost.WriteAAG(&sb, design); err != nil {
		t.Fatal(err)
	}
	back, err := almost.ParseAIGER(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := almost.Equivalent(design, back); !ok {
		t.Fatal("aag round trip broke the function")
	}
	// Extension-sniffed file I/O, binary AIGER, with key metadata.
	locked, _ := almost.Lock(design, 8, rand.New(rand.NewSource(2)))
	path := filepath.Join(t.TempDir(), "locked.aig")
	if err := almost.WriteNetlistFile(path, locked); err != nil {
		t.Fatal(err)
	}
	got, err := almost.ReadNetlistFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumKeyInputs() != 8 {
		t.Fatalf("key inputs lost through .aig file: %d", got.NumKeyInputs())
	}
	if ok, _, _ := almost.Equivalent(locked, got); !ok {
		t.Fatal("file round trip broke the function")
	}
}

func TestPublicRecipeHelpers(t *testing.T) {
	r := almost.Resyn2()
	if len(r) != 10 {
		t.Fatalf("resyn2 length = %d", len(r))
	}
	parsed, err := almost.ParseRecipe(r.String())
	if err != nil || !parsed.Equal(r) {
		t.Fatalf("recipe parse round trip: %v %v", parsed, err)
	}
	rr := almost.RandomRecipe(rand.New(rand.NewSource(2)), 10)
	if len(rr) != 10 {
		t.Fatalf("random recipe length = %d", len(rr))
	}
}

func TestPublicBenchmarkLists(t *testing.T) {
	if len(almost.Benchmarks()) < 10 {
		t.Fatalf("benchmarks = %v", almost.Benchmarks())
	}
	if len(almost.PaperBenchmarks()) != 7 {
		t.Fatalf("paper benchmarks = %v", almost.PaperBenchmarks())
	}
}

func TestPublicPPA(t *testing.T) {
	design, _ := almost.GenerateBenchmark("c432")
	low := almost.PPA(design, false)
	high := almost.PPA(design, true)
	if low.Area <= 0 || high.Area <= 0 {
		t.Fatalf("degenerate PPA: %v %v", low, high)
	}
}

func TestPublicAccuracy(t *testing.T) {
	truth := almost.Key{true, false}
	if almost.Accuracy(truth, almost.Key{true, false}) != 1 {
		t.Fatal("accuracy wrong")
	}
}

// testConfig shrinks the pipeline to unit-test scale.
func testConfig() almost.Config {
	cfg := almost.DefaultConfig()
	cfg.Attack.Rounds = 2
	cfg.Attack.Epochs = 4
	cfg.AdvPeriod = 2
	cfg.AdvGates = 6
	cfg.AdvSAIters = 2
	cfg.SA.Iterations = 4
	return cfg
}

func TestPublicHardenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test in -short mode")
	}
	design, _ := almost.GenerateBenchmark("c432")
	cfg := testConfig()
	h, err := almost.HardenCtx(context.Background(), design, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := almost.EquivalentUnderKey(design, h.Netlist, h.Key); !ok {
		t.Fatal("hardened netlist broken under key")
	}
	if len(h.Recipe) != cfg.RecipeLen {
		t.Fatalf("recipe length %d", len(h.Recipe))
	}
}

// TestPublicRegistry covers the acceptance criteria of the pluggable
// Attacker/Locker redesign from the public surface.
func TestPublicRegistry(t *testing.T) {
	if got := almost.Attackers(); len(got) < 3 {
		t.Fatalf("Attackers() = %v, want >= 3", got)
	}
	if got := almost.Lockers(); len(got) < 2 {
		t.Fatalf("Lockers() = %v, want >= 2", got)
	}
	for _, name := range almost.Attackers() {
		if _, ok := almost.LookupAttacker(name); !ok {
			t.Fatalf("attacker %q listed but not resolvable", name)
		}
	}
	if _, ok := almost.LookupLocker("mux"); !ok {
		t.Fatal("mux locker missing")
	}
	if err := almost.RegisterAttacker(nil); err == nil {
		t.Fatal("nil attacker registered")
	}
}

// publicAttacker is a minimal third-party Attacker registered through
// the public API — the external-module extension path of the README.
type publicAttacker struct{}

func (publicAttacker) Name() string { return "public-test-attack" }
func (publicAttacker) AttackCtx(ctx context.Context, _ *almost.AIG, _ almost.Key, _ ...almost.Option) (float64, error) {
	return 0.5, ctx.Err()
}

func TestPublicRegisterThirdPartyAttacker(t *testing.T) {
	if err := almost.RegisterAttacker(publicAttacker{}); err != nil {
		t.Fatal(err)
	}
	if err := almost.RegisterAttacker(publicAttacker{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	atk, ok := almost.LookupAttacker("public-test-attack")
	if !ok {
		t.Fatal("registered attacker not resolvable")
	}
	design, _ := almost.GenerateBenchmark("c432")
	locked, key := almost.Lock(design, 8, rand.New(rand.NewSource(3)))
	acc, err := atk.AttackCtx(context.Background(), locked, key)
	if err != nil || acc != 0.5 {
		t.Fatalf("AttackCtx = %v, %v", acc, err)
	}
	// And the registered attack is a valid ensemble member.
	cfg := almost.DefaultConfig()
	cfg.EvalAttacks = []string{"omla", "public-test-attack"}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("ensemble config with third-party attack rejected: %v", err)
	}
}

func TestPublicCtxAttacks(t *testing.T) {
	design, _ := almost.GenerateBenchmark("c432")
	locked, key := almost.Lock(design, 8, rand.New(rand.NewSource(4)))
	acc, err := almost.AttackSCOPECtx(context.Background(), locked, key)
	if err != nil || acc < 0 || acc > 1 {
		t.Fatalf("AttackSCOPECtx = %v, %v", acc, err)
	}
	acc, err = almost.AttackRedundancyCtx(context.Background(), locked, key)
	if err != nil || acc < 0 || acc > 1 {
		t.Fatalf("AttackRedundancyCtx = %v, %v", acc, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := almost.AttackSCOPECtx(ctx, locked, key); !errors.Is(err, almost.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled SCOPE: err = %v", err)
	}
	if _, err := almost.AttackRedundancyCtx(ctx, locked, key); !errors.Is(err, almost.ErrCanceled) {
		t.Fatalf("canceled redundancy: err = %v", err)
	}
}

// TestPublicMixedLocking drives LockMux and LockWithCtx through the
// public API.
func TestPublicMixedLocking(t *testing.T) {
	design, _ := almost.GenerateBenchmark("c432")
	muxed, key := almost.LockMux(design, 8, rand.New(rand.NewSource(5)))
	if ok, _, _ := almost.EquivalentUnderKey(design, muxed, key); !ok {
		t.Fatal("MUX-locked netlist broken under correct key")
	}
	chained, key2, err := almost.LockWithCtx(context.Background(), design, 9,
		[]string{"rll", "mux"}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if len(key2) != 9 || chained.NumKeyInputs() != 9 {
		t.Fatalf("chained lock: %d bits, %d key inputs", len(key2), chained.NumKeyInputs())
	}
	if ok, _, _ := almost.EquivalentUnderKey(design, chained, key2); !ok {
		t.Fatal("chained-locked netlist broken under correct key")
	}
}

// TestPublicHardenCtxObservedEndToEnd runs the context/observer API
// end to end: phases stream in pipeline order and the hardened netlist
// stays correct under the key.
func TestPublicHardenCtxObservedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test in -short mode")
	}
	design, _ := almost.GenerateBenchmark("c432")
	cfg := testConfig()
	var phases []almost.Phase
	h, err := almost.HardenCtx(context.Background(), design, 8, cfg,
		almost.WithObserver(func(ev almost.Event) {
			if n := len(phases); n == 0 || phases[n-1] != ev.Phase {
				phases = append(phases, ev.Phase)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := almost.EquivalentUnderKey(design, h.Netlist, h.Key); !ok {
		t.Fatal("hardened netlist broken under key")
	}
	if len(phases) == 0 || phases[0] != almost.PhaseLock {
		t.Fatalf("pipeline did not start with lock: %v", phases)
	}
	if phases[len(phases)-1] != almost.PhaseSynth {
		t.Fatalf("pipeline did not end with synthesize: %v", phases)
	}
	sawTrain, sawSearch := false, false
	for _, p := range phases {
		sawTrain = sawTrain || p == almost.PhaseTrain
		sawSearch = sawSearch || p == almost.PhaseSearch
	}
	if !sawTrain || !sawSearch {
		t.Fatalf("missing train/search phases: %v", phases)
	}
}

// TestPublicHardenCtxCancel verifies the public cancellation contract:
// canceling mid-run returns promptly with an error matching ErrCanceled
// and ctx.Err(), and the partial Hardened retains the completed stages.
func TestPublicHardenCtxCancel(t *testing.T) {
	design, _ := almost.GenerateBenchmark("c432")
	cfg := testConfig()
	cfg.Attack.Epochs = 10000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	epochs := 0
	h, err := almost.HardenCtx(ctx, design, 8, cfg,
		almost.WithObserver(func(ev almost.Event) {
			if ev.Phase == almost.PhaseTrain {
				epochs++
				if epochs == 2 {
					cancel()
				}
			}
		}))
	if !errors.Is(err, almost.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled ∧ context.Canceled", err)
	}
	if h == nil || h.Locked == nil || len(h.Key) != 8 {
		t.Fatalf("partial result lost completed work: %+v", h)
	}
}

func TestPublicConfigValidate(t *testing.T) {
	if err := (almost.Config{}).Validate(); !errors.Is(err, almost.ErrInvalidConfig) {
		t.Fatalf("zero config: err = %v", err)
	}
	if err := almost.DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	design, _ := almost.GenerateBenchmark("c432")
	if _, err := almost.HardenCtx(context.Background(), design, 8, almost.Config{}); !errors.Is(err, almost.ErrInvalidConfig) {
		t.Fatalf("HardenCtx with zero config: err = %v", err)
	}
	locked, _ := almost.Lock(design, 8, rand.New(rand.NewSource(1)))
	if _, err := almost.TrainProxyCtx(context.Background(), locked, almost.ModelKind(9),
		almost.Resyn2(), almost.DefaultConfig()); !errors.Is(err, almost.ErrUnknownModel) {
		t.Fatalf("unknown model kind: err = %v", err)
	}
}

func TestPublicAttackOMLACtxCancel(t *testing.T) {
	design, _ := almost.GenerateBenchmark("c432")
	locked, key := almost.Lock(design, 8, rand.New(rand.NewSource(1)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := almost.AttackOMLACtx(ctx, locked, almost.Resyn2(), key)
	if !errors.Is(err, context.Canceled) || !errors.Is(err, almost.ErrCanceled) {
		t.Fatalf("err = %v, want context.Canceled ∧ ErrCanceled", err)
	}
}
