// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see README.md for the experiment index and PAPER.md for
// the quantities each table/figure reports; recorded data points live in
// the BENCH_pr*.json files at the repo root).
//
// Each benchmark runs one reduced-scale experiment per iteration; since
// every experiment takes well over a second, go test's default policy
// runs them exactly once. Set ALMOST_BENCH_FULL=1 to use the paper's
// full-size settings (hours).
//
//	go test -bench=BenchmarkTableII -benchmem
//
// Running the whole root suite in one invocation exceeds go test's
// default 10-minute timeout on a single core — pass -timeout 60m (or
// run benchmarks selectively, as the recorded bench_output.txt does).
//
// The Ablation* benchmarks cover the framework's main design decisions
// (adversarial cadence R, model class, locality radius k, SA schedule,
// recipe length L).
package almost_test

import (
	"context"
	"math/rand"
	"os"
	"testing"

	almost "github.com/nyu-secml/almost"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/core"
	"github.com/nyu-secml/almost/internal/experiments"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/synth"
)

// trainProxyB and searchB run the Ctx entry points with a background
// context, aborting the benchmark on error.
func trainProxyB(b *testing.B, locked *almost.AIG, kind core.ModelKind, cfg core.Config) *core.Proxy {
	b.Helper()
	p, err := core.TrainProxyCtx(context.Background(), locked, kind, synth.Resyn2(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func searchB(b *testing.B, locked *almost.AIG, key lock.Key, proxy *core.Proxy, cfg core.Config) core.SearchResult {
	b.Helper()
	res, err := core.SearchRecipeCtx(context.Background(), locked, key, proxy, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// benchOptions picks experiment scale: quick by default, paper-size with
// ALMOST_BENCH_FULL=1.
func benchOptions(b *testing.B) experiments.Options {
	if os.Getenv("ALMOST_BENCH_FULL") == "1" {
		opt := experiments.FullOptions()
		opt.Out = os.Stdout
		return opt
	}
	opt := experiments.QuickOptions()
	opt.Benchmarks = []string{"c1908"}
	opt.Out = os.Stdout
	if testing.Short() {
		// CI smoke scale (the BENCH_pr*.json trajectory points): shrink
		// training and search budgets further and use the smallest
		// benchmark, keeping every experiment's shape intact.
		opt.Benchmarks = []string{"c432"}
		opt.KeySizes = []int{16}
		opt.RandomSetSize = 4
		opt.Cfg.Attack.Rounds = 3
		opt.Cfg.Attack.Epochs = 6
		opt.Cfg.AdvPeriod = 3
		opt.Cfg.AdvGates = 12
		opt.Cfg.AdvSAIters = 3
		opt.Cfg.SA.Iterations = 8
	}
	return opt
}

// BenchmarkFigTransferability regenerates the §III-A motivation: the
// cross-recipe accuracy matrix.
func BenchmarkFigTransferability(b *testing.B) {
	opt := benchOptions(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTransferability(context.Background(), opt.Benchmarks[0], opt.KeySizes[0], opt)
		if err != nil {
			b.Fatal(err)
		}
		diag := res.Acc[0][0] + res.Acc[1][1]
		off := res.Acc[0][1] + res.Acc[1][0]
		b.ReportMetric((diag-off)/2*100, "transfer-gap-pp")
	}
}

// BenchmarkTableI regenerates Table I: the three proxy models'
// accuracy on T_resyn2 vs the random-recipe set.
func BenchmarkTableI(b *testing.B) {
	opt := benchOptions(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableI(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Gap(core.ModelResyn2, 0)*100, "gap-resyn2-pp")
		b.ReportMetric(res.Gap(core.ModelAdversarial, 0)*100, "gap-Mstar-pp")
	}
}

// BenchmarkFig4 regenerates Fig. 4: SA recipe-search traces under
// the three evaluator models.
func BenchmarkFig4(b *testing.B) {
	opt := benchOptions(b)
	for i := 0; i < b.N; i++ {
		series, err := experiments.RunFig4(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		s := series[0]
		if it := s.IterationsToReach(core.ModelAdversarial, 0.02); it >= 0 {
			b.ReportMetric(float64(it), "Mstar-iters-to-50pct")
		}
		if it := s.IterationsToReach(core.ModelResyn2, 0.02); it >= 0 {
			b.ReportMetric(float64(it), "resyn2-iters-to-50pct")
		}
	}
}

// BenchmarkTableII regenerates Table II: OMLA, SCOPE, and the
// redundancy attack against resyn2- and ALMOST-synthesized netlists.
func BenchmarkTableII(b *testing.B) {
	opt := benchOptions(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableII(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		if c, ok := res.Cell(experiments.AttackOMLA, opt.KeySizes[0], opt.Benchmarks[0]); ok {
			b.ReportMetric(c.Resyn2*100, "omla-resyn2-pct")
			b.ReportMetric(c.ALMOST*100, "omla-almost-pct")
		}
	}
}

// BenchmarkTableIII regenerates Table III: PPA overheads of the
// ALMOST netlists relative to the locked baseline, -opt and +opt.
func BenchmarkTableIII(b *testing.B) {
	opt := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t2, err := experiments.RunTableII(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := experiments.RunTableIII(context.Background(), opt, t2.Recipes)
		if err != nil {
			b.Fatal(err)
		}
		cell := res.Cells[opt.Benchmarks[0]][opt.KeySizes[0]]
		for _, c := range cell {
			b.ReportMetric(c.Area, "area-overhead-pct")
			break
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5: attacker re-synthesis toward
// area/delay with accuracy overlay; reports the |correlation| the paper
// argues is near zero.
func BenchmarkFig5(b *testing.B) {
	opt := benchOptions(b)
	for i := 0; i < b.N; i++ {
		series, err := experiments.RunFig5(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, s := range series {
			c := s.Correlation()
			if c < 0 {
				c = -c
			}
			if c > worst {
				worst = c
			}
		}
		b.ReportMetric(worst, "max-abs-acc-ppa-corr")
	}
}

// --- Ablations ---------------------------------------------------------

// ablationSetup locks a small benchmark deterministically (smaller
// still in -short mode, matching benchOptions' CI smoke scale).
func ablationSetup() (*almost.AIG, *almost.AIG, almost.Key) {
	name, bits := "c1355", 32
	if testing.Short() {
		name, bits = "c432", 16
	}
	g := circuits.MustGenerate(name)
	locked, key := lock.Lock(g, bits, rand.New(rand.NewSource(5)))
	return g, locked, key
}

func ablationConfig() almost.Config {
	cfg := core.DefaultConfig()
	cfg.Attack.Rounds = 4
	cfg.Attack.Epochs = 12
	cfg.AdvPeriod = 4
	cfg.AdvGates = 16
	cfg.AdvSAIters = 4
	cfg.SA.Iterations = 10
	if testing.Short() {
		cfg.Attack.Rounds = 2
		cfg.Attack.Epochs = 4
		cfg.AdvPeriod = 2
		cfg.AdvGates = 8
		cfg.AdvSAIters = 2
		cfg.SA.Iterations = 4
	}
	return cfg
}

// BenchmarkAblationCadence varies Algorithm 1's augmentation period R
// (D1): R=off vs R=4 vs R=8.
func BenchmarkAblationCadence(b *testing.B) {
	_, locked, key := ablationSetup()
	for _, r := range []int{0, 4, 8} {
		name := "off"
		if r > 0 {
			name = string(rune('0' + r))
		}
		b.Run("R="+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.AdvPeriod = r
				p := trainProxyB(b, locked, core.ModelAdversarial, cfg)
				res := searchB(b, locked, key, p, cfg)
				b.ReportMetric(res.Accuracy*100, "final-acc-pct")
			}
		})
	}
}

// BenchmarkAblationHops varies the locality radius k (D3).
func BenchmarkAblationHops(b *testing.B) {
	_, locked, key := ablationSetup()
	for _, hops := range []int{1, 2, 3} {
		b.Run("k="+string(rune('0'+hops)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Attack.Hops = hops
				p := trainProxyB(b, locked, core.ModelResyn2, cfg)
				acc := p.EstimateAccuracy(locked, synth.Resyn2(), key)
				b.ReportMetric(acc*100, "attack-acc-pct")
			}
		})
	}
}

// BenchmarkAblationModel compares the GIN depth (D2): 1 vs 2 vs 3 layers
// (1 layer approximates a flat pooled-feature classifier).
func BenchmarkAblationModel(b *testing.B) {
	_, locked, key := ablationSetup()
	for _, layers := range []int{1, 2, 3} {
		b.Run("layers="+string(rune('0'+layers)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Attack.Layers = layers
				p := trainProxyB(b, locked, core.ModelResyn2, cfg)
				acc := p.EstimateAccuracy(locked, synth.Resyn2(), key)
				b.ReportMetric(acc*100, "attack-acc-pct")
			}
		})
	}
}

// BenchmarkAblationSchedule compares the paper's SA schedule against
// greedy hill-climbing (InitTemp=0 disables uphill moves) (D4).
func BenchmarkAblationSchedule(b *testing.B) {
	_, locked, key := ablationSetup()
	cfgBase := ablationConfig()
	proxy := trainProxyB(b, locked, core.ModelResyn2, cfgBase)
	for _, mode := range []string{"sa", "greedy"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cfgBase
				if mode == "greedy" {
					cfg.SA.InitTemp = 0
				}
				res := searchB(b, locked, key, proxy, cfg)
				b.ReportMetric(res.Accuracy*100, "final-acc-pct")
			}
		})
	}
}

// BenchmarkAblationLength varies the recipe length L (D5).
func BenchmarkAblationLength(b *testing.B) {
	_, locked, key := ablationSetup()
	cfgBase := ablationConfig()
	proxy := trainProxyB(b, locked, core.ModelResyn2, cfgBase)
	for _, l := range []int{5, 10, 15} {
		b.Run("L="+string(rune('0'+l/5))+"x5", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cfgBase
				cfg.RecipeLen = l
				res := searchB(b, locked, key, proxy, cfg)
				b.ReportMetric(res.Accuracy*100, "final-acc-pct")
			}
		})
	}
}

// BenchmarkHardenC432 measures the end-to-end pipeline on the smallest
// benchmark — a sanity throughput number rather than a paper artifact.
func BenchmarkHardenC432(b *testing.B) {
	design := circuits.MustGenerate("c432")
	cfg := ablationConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := almost.HardenCtx(context.Background(), design, 8, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
