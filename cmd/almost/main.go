// Command almost is the CLI front end of the ALMOST framework. It covers
// the whole flow the paper describes — benchmark generation, RLL
// locking, recipe-driven synthesis, the three oracle-less attacks,
// security-aware recipe tuning, PPA reporting — and can regenerate every
// experiment of the evaluation section.
//
// Usage:
//
//	almost gen -circuit c1908 -o c1908.bench
//	almost lock -in c1908.bench -keysize 64 -seed 1 -o locked.bench -keyfile key.txt
//	almost synth -in locked.bench -recipe "balance; rewrite; refactor" -o out.bench
//	almost attack -in locked.bench -attack omla -recipe resyn2 -keyfile key.txt
//	almost tune -in locked.bench -keyfile key.txt -o recipe.txt
//	almost ppa -in out.bench
//	almost experiment -name table2 -quick
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/attack/omla"
	"github.com/nyu-secml/almost/internal/attack/redundancy"
	"github.com/nyu-secml/almost/internal/attack/scope"
	"github.com/nyu-secml/almost/internal/bench"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/core"
	"github.com/nyu-secml/almost/internal/experiments"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/synth"
	"github.com/nyu-secml/almost/internal/techmap"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "lock":
		err = cmdLock(os.Args[2:])
	case "synth":
		err = cmdSynth(os.Args[2:])
	case "attack":
		err = cmdAttack(os.Args[2:])
	case "tune":
		err = cmdTune(os.Args[2:])
	case "ppa":
		err = cmdPPA(os.Args[2:])
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "almost: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "almost: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `almost — security-aware synthesis tuning (DAC'23 reproduction)

commands:
  gen         generate a benchmark circuit (.bench)
  lock        apply random logic locking
  synth       apply a synthesis recipe
  attack      run an oracle-less attack (omla | scope | redundancy)
  tune        search for an ML-resilient recipe (the ALMOST flow)
  ppa         report area/delay/power of a netlist
  experiment  regenerate a paper artifact
              (transfer | table1 | fig4 | table2 | table3 | fig5)

run "almost <command> -h" for per-command flags`)
}

func readNetlist(path string) (*aig.AIG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bench.Parse(f)
}

func writeNetlist(path string, g *aig.AIG) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return bench.Write(f, g)
}

func parseRecipeFlag(s string) (synth.Recipe, error) {
	if s == "resyn2" || s == "" {
		return synth.Resyn2(), nil
	}
	return synth.ParseRecipe(s)
}

func readKeyFile(path string) (lock.Key, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := strings.TrimSpace(string(data))
	key := make(lock.Key, 0, len(s))
	for _, c := range s {
		switch c {
		case '0':
			key = append(key, false)
		case '1':
			key = append(key, true)
		default:
			return nil, fmt.Errorf("bad key character %q", c)
		}
	}
	return key, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	circuit := fs.String("circuit", "c1908", "benchmark name ("+strings.Join(circuits.Names(), ", ")+")")
	out := fs.String("o", "", "output .bench path (default stdout)")
	fs.Parse(args)
	g, err := circuits.Generate(*circuit)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", *circuit, g)
	if *out == "" {
		return bench.Write(os.Stdout, g)
	}
	return writeNetlist(*out, g)
}

func cmdLock(args []string) error {
	fs := flag.NewFlagSet("lock", flag.ExitOnError)
	in := fs.String("in", "", "input .bench netlist (required)")
	keySize := fs.Int("keysize", 64, "number of key gates")
	seed := fs.Int64("seed", 1, "locking seed")
	out := fs.String("o", "", "output .bench path (default stdout)")
	keyFile := fs.String("keyfile", "", "file to store the correct key")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("lock: -in is required")
	}
	g, err := readNetlist(*in)
	if err != nil {
		return err
	}
	locked, key := lock.Lock(g, *keySize, rand.New(rand.NewSource(*seed)))
	fmt.Fprintf(os.Stderr, "locked: %v key=%s\n", locked, key)
	if *keyFile != "" {
		if err := os.WriteFile(*keyFile, []byte(key.String()+"\n"), 0o644); err != nil {
			return err
		}
	}
	if *out == "" {
		return bench.Write(os.Stdout, locked)
	}
	return writeNetlist(*out, locked)
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	in := fs.String("in", "", "input .bench netlist (required)")
	recipeStr := fs.String("recipe", "resyn2", `recipe script or "resyn2"`)
	out := fs.String("o", "", "output .bench path (default stdout)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("synth: -in is required")
	}
	g, err := readNetlist(*in)
	if err != nil {
		return err
	}
	recipe, err := parseRecipeFlag(*recipeStr)
	if err != nil {
		return err
	}
	h := recipe.Apply(g)
	fmt.Fprintf(os.Stderr, "synth: %v -> %v (recipe: %s)\n", g, h, recipe)
	if *out == "" {
		return bench.Write(os.Stdout, h)
	}
	return writeNetlist(*out, h)
}

func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	in := fs.String("in", "", "locked .bench netlist (required)")
	attackName := fs.String("attack", "omla", "omla | scope | redundancy")
	recipeStr := fs.String("recipe", "resyn2", "defender's recipe (omla only)")
	keyFile := fs.String("keyfile", "", "true key file (reports accuracy when given)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("attack: -in is required")
	}
	g, err := readNetlist(*in)
	if err != nil {
		return err
	}
	var guess lock.Key
	switch *attackName {
	case "omla":
		recipe, err := parseRecipeFlag(*recipeStr)
		if err != nil {
			return err
		}
		atk := omla.Train(g, recipe, omla.DefaultConfig())
		guess = atk.PredictKey(g)
	case "scope":
		guess = scope.PredictKey(g, scope.DefaultConfig())
	case "redundancy":
		guess = redundancy.PredictKey(g, redundancy.DefaultConfig())
	default:
		return fmt.Errorf("attack: unknown attack %q", *attackName)
	}
	fmt.Printf("predicted key: %s\n", guess)
	if *keyFile != "" {
		truth, err := readKeyFile(*keyFile)
		if err != nil {
			return err
		}
		fmt.Printf("accuracy: %.2f%%\n", lock.Accuracy(truth, guess)*100)
	}
	return nil
}

func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	in := fs.String("in", "", "locked .bench netlist (required)")
	keyFile := fs.String("keyfile", "", "true key file (required)")
	out := fs.String("o", "", "file for the tuned recipe (default stdout)")
	netOut := fs.String("net", "", "optional path for the ALMOST-synthesized netlist")
	full := fs.Bool("full", false, "use the paper's full-size settings (slow)")
	fs.Parse(args)
	if *in == "" || *keyFile == "" {
		return fmt.Errorf("tune: -in and -keyfile are required")
	}
	g, err := readNetlist(*in)
	if err != nil {
		return err
	}
	key, err := readKeyFile(*keyFile)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	if *full {
		cfg = core.PaperConfig()
	}
	fmt.Fprintln(os.Stderr, "training adversarial proxy M*...")
	proxy := core.TrainProxy(g, core.ModelAdversarial, synth.Resyn2(), cfg)
	fmt.Fprintln(os.Stderr, "searching for S_ALMOST (Eq. 1)...")
	res := core.SearchRecipe(g, key, proxy, cfg)
	fmt.Fprintf(os.Stderr, "best proxy accuracy: %.2f%%\n", res.Accuracy*100)
	line := res.Recipe.String() + "\n"
	if *out == "" {
		fmt.Print(line)
	} else if err := os.WriteFile(*out, []byte(line), 0o644); err != nil {
		return err
	}
	if *netOut != "" {
		return writeNetlist(*netOut, res.Recipe.Apply(g))
	}
	return nil
}

func cmdPPA(args []string) error {
	fs := flag.NewFlagSet("ppa", flag.ExitOnError)
	in := fs.String("in", "", "input .bench netlist (required)")
	opt := fs.Bool("opt", false, "high-effort mapping (+opt)")
	cells := fs.Bool("cells", false, "print the cell histogram")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("ppa: -in is required")
	}
	g, err := readNetlist(*in)
	if err != nil {
		return err
	}
	eff := techmap.EffortNone
	if *opt {
		eff = techmap.EffortHigh
	}
	r := techmap.Map(g, techmap.NanGate45(), eff)
	fmt.Println(r)
	if *cells {
		fmt.Print(r.CellReport())
	}
	return nil
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	name := fs.String("name", "table2", "transfer | table1 | fig4 | table2 | table3 | fig5")
	quick := fs.Bool("quick", true, "reduced settings (minutes); -quick=false uses the paper's full settings")
	benches := fs.String("benchmarks", "", "comma-separated benchmark override")
	fs.Parse(args)
	opt := experiments.FullOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}
	opt.Out = os.Stdout
	switch *name {
	case "transfer":
		experiments.RunTransferability(opt.Benchmarks[0], opt.KeySizes[0], opt)
	case "table1":
		experiments.RunTableI(opt)
	case "fig4":
		experiments.RunFig4(opt)
	case "table2":
		experiments.RunTableII(opt)
	case "table3":
		res := experiments.RunTableII(opt)
		experiments.RunTableIII(opt, res.Recipes)
	case "fig5":
		experiments.RunFig5(opt)
	default:
		return fmt.Errorf("experiment: unknown name %q", *name)
	}
	return nil
}
