// Command almost is the CLI front end of the ALMOST framework. It covers
// the whole flow the paper describes — benchmark generation, RLL
// locking, recipe-driven synthesis, the oracle-less attacks plus the
// oracle-guided SAT-attack family, security-aware recipe tuning, PPA
// reporting — and can regenerate every experiment of the evaluation
// section.
//
// Usage:
//
//	almost gen -circuit c1908 -o c1908.bench
//	almost lock -circuit c1908 -keysize 64 -seed 1 -locker rll,mux -o locked.aig -keyfile key.txt
//	almost synth -in locked.aig -recipe "balance; rewrite; refactor" -o out.bench
//	almost attack -list
//	almost attack -in locked.bench -attack omla -recipe resyn2 -keyfile key.txt
//	almost attack -in locked.bench -attack satattack -oracle c1908.bench -keyfile key.txt
//	almost tune -in locked.bench -keyfile key.txt -attacks omla,scope -jobs 8 -o recipe.txt
//	almost ppa -circuit design.aag
//	almost convert -circuit design.bench -o design.aig
//	almost pipeline -circuit design.aag -keysize 64 -locker mux -attacks omla,scope -attack all
//	almost experiment -name table2 -quick -jobs 8 -benchmarks c1355,mydesign.aig
//
// Attacks and locking schemes resolve through the framework registry:
// "attack -list" enumerates the registered attacks, -locker accepts any
// registered locking scheme (chains allowed, comma-separated), and
// tune/pipeline -attacks sets the attack ensemble the recipe search
// optimizes against (Config.EvalAttacks).
//
// Netlists are read and written through the internal/netio subsystem:
// every -in/-o/-circuit file may be ISCAS-85 BENCH (.bench), ASCII
// AIGER (.aag), or binary AIGER (.aig), with the format sniffed from
// the extension. The shared -circuit flag accepts either a built-in
// benchmark name (c432 ... c7552) or a netlist file path, so every
// command runs equally on built-in and user-supplied circuits.
//
// The compute-heavy commands (tune, experiment) take -jobs N to set the
// worker count of the concurrent recipe-evaluation engine; 0 (the
// default) uses every CPU. Results are identical for any -jobs value.
// Both also take -progress to stream one-line status updates (training
// epochs, SA iterations) to stderr.
//
// SIGINT/SIGTERM cancel the run context: long-running commands stop at
// their next checkpoint, print the best result found so far, and exit
// non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/attack/satattack"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/core"
	"github.com/nyu-secml/almost/internal/experiments"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/netio"
	"github.com/nyu-secml/almost/internal/synth"
	"github.com/nyu-secml/almost/internal/techmap"
)

// command is one subcommand handler. Handlers write results to stdout,
// diagnostics to stderr, and return an error instead of exiting, so the
// dispatcher (and the tests) stay in control of process state. The
// context is canceled on SIGINT/SIGTERM; compute-heavy handlers pass it
// down and surface the best-so-far result before returning the error.
type command func(ctx context.Context, args []string, stdout, stderr io.Writer) error

// commands maps subcommand names to handlers.
var commands = map[string]command{
	"gen":        cmdGen,
	"lock":       cmdLock,
	"synth":      cmdSynth,
	"attack":     cmdAttack,
	"tune":       cmdTune,
	"ppa":        cmdPPA,
	"convert":    cmdConvert,
	"pipeline":   cmdPipeline,
	"experiment": cmdExperiment,
	"scaling":    cmdScaling,
	"remote":     cmdRemote,
	"soak":       cmdSoak,
}

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Manual signal handling instead of signal.NotifyContext: the first
	// signal cancels the context (handlers stop at their next checkpoint
	// and the deferred profile stops run), but NotifyContext keeps its
	// registration after that, so a second Ctrl-C on a wedged run would
	// be swallowed and the only way out — SIGKILL — loses any active
	// -cpuprofile/-memprofile data. Here the second signal finalizes the
	// profiles itself and force-exits.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		cancel()
		<-sigc
		finalizeProfiles()
		fmt.Fprintln(os.Stderr, "almost: forced exit")
		os.Exit(130)
	}()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches args to a subcommand and returns the process exit code:
// 0 on success, 1 on a command error (including an interrupted run), 2 on
// a usage error.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "help", "-h", "--help":
		usage(stderr)
		return 0
	}
	cmd, ok := commands[args[0]]
	if !ok {
		fmt.Fprintf(stderr, "almost: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err := cmd(ctx, args[1:], stdout, stderr); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		if errors.Is(err, core.ErrCanceled) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(stderr, "almost: interrupted: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "almost: %v\n", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `almost — security-aware synthesis tuning (DAC'23 reproduction)

commands:
  gen         generate or re-export a circuit (.bench | .aag | .aig)
  lock        apply logic locking (-locker picks the registered scheme)
  synth       apply a synthesis recipe
  attack      run a registered oracle-less attack (attack -list to enumerate)
  tune        search for an ML-resilient recipe (the ALMOST flow;
              -attacks picks the objective's attack ensemble)
  ppa         report area/delay/power of a netlist
  convert     convert a netlist between BENCH and AIGER formats
  pipeline    full lock -> harden -> attack flow on any circuit
  experiment  regenerate a paper artifact
              (transfer | table1 | fig4 | table2 | table3 | fig5)
  scaling     incremental-vs-full candidate-evaluation latency curve
              (the BENCH_pr8.json artifact)
  remote      talk to an almostd hardening server
              (submit | status | result | cancel | watch | list | stats)
  soak        hammer an almostd server with mixed load and verify
              determinism end to end (self-hosts when -server is empty)

netlist files may be .bench, .aag, or .aig (format sniffed from the
extension); -circuit also accepts a built-in benchmark name.

run "almost <command> -h" for per-command flags`)
}

// newFlagSet builds a flag set that reports errors instead of exiting.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// jobsFlag registers the shared -jobs flag on compute-heavy subcommands.
func jobsFlag(fs *flag.FlagSet) *int {
	return fs.Int("jobs", 0, "evaluation workers (0 = all CPUs); results are jobs-independent")
}

// progressFlag registers the shared -progress flag on compute-heavy
// subcommands.
func progressFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("progress", false, "stream one-line status updates (epochs, SA iterations) to stderr")
}

// timeoutFlag registers the shared -timeout flag on long-running
// subcommands: a wall-clock deadline on the run context.
func timeoutFlag(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 0,
		"abort after this long (0 = no limit); exits through the same best-so-far path as Ctrl-C")
}

// applyTimeout derives the command context from -timeout. The returned
// cancel must be deferred even when no deadline is set.
func applyTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// lockerFlag registers the shared -locker flag: a registered locking
// scheme, or a comma-separated chain of them.
func lockerFlag(fs *flag.FlagSet) *string {
	return fs.String("locker", "rll",
		"locking scheme(s), comma-separated chain ("+strings.Join(core.Lockers(), " | ")+")")
}

// attacksFlag registers the shared -attacks flag: the registered attacks
// the Eq. 1 search optimizes against (Config.EvalAttacks).
func attacksFlag(fs *flag.FlagSet) *string {
	return fs.String("attacks", "omla",
		"search-objective attack ensemble, comma-separated ("+strings.Join(core.Attackers(), " | ")+")")
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

// progressObserver renders pipeline events as one-line status updates on
// w. It is safe for concurrent cells: each event prints with one
// serialized write.
func progressObserver(w io.Writer) func(core.Event) {
	var mu sync.Mutex
	return func(ev core.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Phase {
		case core.PhaseLock:
			if len(ev.Lockers) > 0 {
				fmt.Fprintf(w, "[lock] applying logic locking (%s)\n", strings.Join(ev.Lockers, " -> "))
			} else {
				fmt.Fprintln(w, "[lock] applying logic locking")
			}
		case core.PhaseTrain:
			label := ""
			if ev.Attack != "" {
				label = " [" + ev.Attack + "]"
			}
			fmt.Fprintf(w, "[train]%s epoch %d/%d (%d samples)\n", label, ev.Epoch+1, ev.Epochs, ev.Samples)
		case core.PhaseAdvSearch:
			fmt.Fprintf(w, "[adv-search] iter %d/%d loss-energy %.4f best %.4f\n",
				ev.Iteration+1, ev.Iterations, ev.Energy, ev.BestEnergy)
		case core.PhaseSearch:
			label := ""
			if ev.Attack != "" {
				label = " [" + ev.Attack + "]"
			}
			fmt.Fprintf(w, "[search]%s iter %d/%d acc %.4f |acc-0.5| best %.4f\n",
				label, ev.Iteration+1, ev.Iterations, ev.Accuracy, ev.BestEnergy)
		case core.PhaseSynth:
			fmt.Fprintf(w, "[synthesize] applying S_ALMOST (proxy acc %.4f)\n", ev.Accuracy)
		}
	}
}

// observerOpts builds the core options for a -progress run.
func observerOpts(progress bool, stderr io.Writer) []core.Option {
	if !progress {
		return nil
	}
	return []core.Option{core.WithObserver(progressObserver(stderr))}
}

// isNetlistFile reports whether spec names a netlist file — i.e. it
// carries one of the recognized extensions — rather than a built-in
// benchmark name.
func isNetlistFile(spec string) bool {
	_, err := netio.DetectFormat(spec)
	return err == nil
}

// loadCircuit resolves the shared -circuit argument: a netlist file
// (.bench/.aag/.aig, format sniffed from the extension) or a built-in
// benchmark name.
func loadCircuit(spec string) (*aig.AIG, error) {
	if isNetlistFile(spec) {
		return netio.ReadFile(spec)
	}
	return circuits.Generate(spec)
}

// circuitFlags registers the two ways of naming an input netlist: -in
// (a file) and -circuit (a built-in name or a file).
func circuitFlags(fs *flag.FlagSet) (in, circuit *string) {
	in = fs.String("in", "", "input netlist file (.bench | .aag | .aig)")
	circuit = fs.String("circuit", "", "input circuit: built-in benchmark name or netlist file")
	return in, circuit
}

// resolveInput loads the netlist named by -in/-circuit, requiring
// exactly one of them.
func resolveInput(cmd, in, circuit string) (*aig.AIG, error) {
	switch {
	case in != "" && circuit != "":
		return nil, fmt.Errorf("%s: -in and -circuit are mutually exclusive", cmd)
	case in != "":
		return netio.ReadFile(in)
	case circuit != "":
		return loadCircuit(circuit)
	}
	return nil, fmt.Errorf("%s: -in (or -circuit) is required", cmd)
}

func writeNetlist(path string, g *aig.AIG) error {
	return netio.WriteFile(path, g)
}

func parseRecipeFlag(s string) (synth.Recipe, error) {
	if s == "resyn2" || s == "" {
		return synth.Resyn2(), nil
	}
	return synth.ParseRecipe(s)
}

func readKeyFile(path string) (lock.Key, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := strings.TrimSpace(string(data))
	key := make(lock.Key, 0, len(s))
	for _, c := range s {
		switch c {
		case '0':
			key = append(key, false)
		case '1':
			key = append(key, true)
		default:
			return nil, fmt.Errorf("bad key character %q", c)
		}
	}
	return key, nil
}

func cmdGen(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("gen", stderr)
	circuit := fs.String("circuit", "c1908",
		"benchmark name ("+strings.Join(circuits.Names(), ", ")+") or netlist file")
	out := fs.String("o", "", "output netlist path, format by extension (default: .bench to stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadCircuit(*circuit)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "%s: %v\n", *circuit, g)
	if *out == "" {
		return netio.WriteBench(stdout, g)
	}
	return writeNetlist(*out, g)
}

func cmdLock(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("lock", stderr)
	in, circuit := circuitFlags(fs)
	keySize := fs.Int("keysize", 64, "number of key gates")
	seed := fs.Int64("seed", 1, "locking seed")
	locker := lockerFlag(fs)
	out := fs.String("o", "", "output netlist path, format by extension (default: .bench to stdout)")
	keyFile := fs.String("keyfile", "", "file to store the correct key")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := resolveInput("lock", *in, *circuit)
	if err != nil {
		return err
	}
	locked, key, err := core.LockWithCtx(ctx, g, *keySize, splitList(*locker),
		rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "locked: %v key=%s\n", locked, key)
	if *keyFile != "" {
		if err := os.WriteFile(*keyFile, []byte(key.String()+"\n"), 0o644); err != nil {
			return err
		}
	}
	if *out == "" {
		return netio.WriteBench(stdout, locked)
	}
	return writeNetlist(*out, locked)
}

func cmdSynth(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("synth", stderr)
	in, circuit := circuitFlags(fs)
	recipeStr := fs.String("recipe", "resyn2", `recipe script or "resyn2"`)
	out := fs.String("o", "", "output netlist path, format by extension (default: .bench to stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := resolveInput("synth", *in, *circuit)
	if err != nil {
		return err
	}
	recipe, err := parseRecipeFlag(*recipeStr)
	if err != nil {
		return err
	}
	h := recipe.Apply(g)
	fmt.Fprintf(stderr, "synth: %v -> %v (recipe: %s)\n", g, h, recipe)
	if *out == "" {
		return netio.WriteBench(stdout, h)
	}
	return writeNetlist(*out, h)
}

// cmdConvert translates a netlist between the supported formats.
func cmdConvert(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("convert", stderr)
	in, circuit := circuitFlags(fs)
	out := fs.String("o", "", "output netlist path, format by extension")
	to := fs.String("to", "bench", "stdout format when -o is empty (bench | aag | aig)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := resolveInput("convert", *in, *circuit)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "convert: %v\n", g)
	if *out != "" {
		return writeNetlist(*out, g)
	}
	var f netio.Format
	switch *to {
	case "bench":
		f = netio.FormatBench
	case "aag":
		f = netio.FormatAAG
	case "aig":
		f = netio.FormatAIG
	default:
		return fmt.Errorf("convert: unknown format %q (want bench, aag, or aig)", *to)
	}
	return netio.Write(stdout, g, f)
}

func cmdAttack(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("attack", stderr)
	in, circuit := circuitFlags(fs)
	attackName := fs.String("attack", "omla",
		"registered attack name ("+strings.Join(core.Attackers(), " | ")+")")
	recipeStr := fs.String("recipe", "resyn2", "defender's recipe (self-referencing attacks)")
	keyFile := fs.String("keyfile", "", "true key file (reports accuracy when given)")
	oracleFile := fs.String("oracle", "",
		"unlocked netlist simulated as the oracle (oracle-guided attacks: satattack, appsat)")
	list := fs.Bool("list", false, "list the registered attacks and exit")
	timeout := timeoutFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancelTimeout := applyTimeout(ctx, *timeout)
	defer cancelTimeout()
	if *list {
		for _, name := range core.Attackers() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}
	atk, ok := core.LookupAttacker(*attackName)
	if !ok {
		return fmt.Errorf("attack: unknown attack %q (registered: %s)",
			*attackName, strings.Join(core.Attackers(), ", "))
	}
	g, err := resolveInput("attack", *in, *circuit)
	if err != nil {
		return err
	}
	recipe, err := parseRecipeFlag(*recipeStr)
	if err != nil {
		return err
	}
	opts := []core.Option{core.WithRecipe(recipe)}
	if *oracleFile != "" {
		og, err := netio.ReadFile(*oracleFile)
		if err != nil {
			return fmt.Errorf("attack: -oracle: %w", err)
		}
		if og.NumKeyInputs() != 0 {
			return fmt.Errorf("attack: -oracle netlist %q still has %d key inputs; the oracle is the unlocked design",
				*oracleFile, og.NumKeyInputs())
		}
		opts = append(opts, core.WithOracle(satattack.SimOracle(og)))
	}
	// Attacks that can surface the guessed key do; the Attacker
	// interface itself only promises an accuracy.
	kp, canPredict := atk.(core.KeyPredictor)
	if canPredict {
		guess, err := kp.PredictKeyCtx(ctx, g, opts...)
		if err != nil {
			// An interrupted attack (SIGINT) still surfaces the
			// best-so-far key it pried out before the cancellation.
			if len(guess) > 0 {
				fmt.Fprintf(stderr, "interrupted; best-so-far key: %s\n", guess)
			}
			return err
		}
		fmt.Fprintf(stdout, "predicted key: %s\n", guess)
		if *keyFile != "" {
			truth, err := readKeyFile(*keyFile)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "accuracy: %.2f%%\n", lock.Accuracy(truth, guess)*100)
		}
		return nil
	}
	if *keyFile == "" {
		return fmt.Errorf("attack: %q reports accuracy only; -keyfile is required", *attackName)
	}
	truth, err := readKeyFile(*keyFile)
	if err != nil {
		return err
	}
	acc, err := atk.AttackCtx(ctx, g, truth, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "accuracy: %.2f%%\n", acc*100)
	return nil
}

func cmdTune(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("tune", stderr)
	in, circuit := circuitFlags(fs)
	keyFile := fs.String("keyfile", "", "true key file (required)")
	out := fs.String("o", "", "file for the tuned recipe (default stdout)")
	netOut := fs.String("net", "", "optional path for the ALMOST-synthesized netlist")
	full := fs.Bool("full", false, "use the paper's full-size settings (slow)")
	attacks := attacksFlag(fs)
	jobs := jobsFlag(fs)
	progress := progressFlag(fs)
	timeout := timeoutFlag(fs)
	cpuProfile, memProfile := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancelTimeout := applyTimeout(ctx, *timeout)
	defer cancelTimeout()
	if *keyFile == "" {
		return fmt.Errorf("tune: -keyfile is required")
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	g, err := resolveInput("tune", *in, *circuit)
	if err != nil {
		return err
	}
	key, err := readKeyFile(*keyFile)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	if *full {
		cfg = core.PaperConfig()
	}
	cfg.EvalAttacks = splitList(*attacks)
	cfg.Parallelism = *jobs
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	opts := observerOpts(*progress, stderr)
	fmt.Fprintln(stderr, "training adversarial proxy M*... (Ctrl-C stops and keeps the best so far)")
	proxy, err := core.TrainProxyCtx(ctx, g, core.ModelAdversarial, synth.Resyn2(), cfg, opts...)
	if err != nil {
		fmt.Fprintln(stderr, "interrupted during proxy training; no recipe found yet")
		return err
	}
	fmt.Fprintln(stderr, "searching for S_ALMOST (Eq. 1)...")
	res, err := core.SearchRecipeCtx(ctx, g, key, proxy, cfg, opts...)
	if err != nil {
		// The search returns its best-so-far recipe on cancellation;
		// surface it so the interrupted work is not lost. Before the
		// first iteration completes the "best" is just the unevaluated
		// random initial recipe — don't present that as a result.
		if len(res.Trace) > 0 {
			fmt.Fprintf(stderr, "interrupted after %d SA iterations; best recipe so far (proxy accuracy %.2f%%):\n%s\n",
				len(res.Trace), res.Accuracy*100, res.Recipe)
		} else {
			fmt.Fprintln(stderr, "interrupted before the first SA iteration; no recipe found yet")
		}
		return err
	}
	fmt.Fprintf(stderr, "best proxy accuracy: %.2f%%\n", res.Accuracy*100)
	line := res.Recipe.String() + "\n"
	if *out == "" {
		fmt.Fprint(stdout, line)
	} else if err := os.WriteFile(*out, []byte(line), 0o644); err != nil {
		return err
	}
	if *netOut != "" {
		return writeNetlist(*netOut, res.Recipe.Apply(g))
	}
	return nil
}

func cmdPPA(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("ppa", stderr)
	in, circuit := circuitFlags(fs)
	opt := fs.Bool("opt", false, "high-effort mapping (+opt)")
	cells := fs.Bool("cells", false, "print the cell histogram")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := resolveInput("ppa", *in, *circuit)
	if err != nil {
		return err
	}
	eff := techmap.EffortNone
	if *opt {
		eff = techmap.EffortHigh
	}
	r := techmap.Map(g, techmap.NanGate45(), eff)
	fmt.Fprintln(stdout, r)
	if *cells {
		fmt.Fprint(stdout, r.CellReport())
	}
	return nil
}

// cmdPipeline runs the complete lock -> harden -> attack flow on one
// circuit (built-in or external netlist): lock with the -locker chain,
// train the adversarial proxy, search for S_ALMOST against the -attacks
// ensemble objective, synthesize, then measure the -attack evaluation
// attacks on both the resyn2 baseline and the ALMOST-hardened netlist.
func cmdPipeline(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("pipeline", stderr)
	in, circuit := circuitFlags(fs)
	keySize := fs.Int("keysize", 64, "number of key gates")
	seed := fs.Int64("seed", 1, "framework seed (locking, training, search)")
	attacks := fs.String("attack", "scope,redundancy",
		`comma-separated evaluation attacks ("`+strings.Join(core.Attackers(), `" | "`)+`"), "all", or "none"`)
	evalAttacks := attacksFlag(fs)
	locker := lockerFlag(fs)
	full := fs.Bool("full", false, "use the paper's full-size settings (slow)")
	quick := fs.Bool("quick", false, "heavily reduced settings for smoke runs")
	out := fs.String("o", "", "optional path for the hardened netlist, format by extension")
	keyFile := fs.String("keyfile", "", "optional file to store the correct key")
	jobs := jobsFlag(fs)
	progress := progressFlag(fs)
	timeout := timeoutFlag(fs)
	cpuProfile, memProfile := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancelTimeout := applyTimeout(ctx, *timeout)
	defer cancelTimeout()
	if *full && *quick {
		return fmt.Errorf("pipeline: -full and -quick are mutually exclusive")
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	g, err := resolveInput("pipeline", *in, *circuit)
	if err != nil {
		return err
	}
	var attackList []string
	switch *attacks {
	case "none":
	case "all":
		attackList = core.Attackers()
	default:
		for _, a := range splitList(*attacks) {
			if _, ok := core.LookupAttacker(a); !ok {
				return fmt.Errorf("pipeline: unknown attack %q (registered: %s)",
					a, strings.Join(core.Attackers(), ", "))
			}
			attackList = append(attackList, a)
		}
	}
	cfg := core.DefaultConfig()
	if *full {
		cfg = core.PaperConfig()
	}
	if *quick {
		// The same trims experiments.QuickOptions applies: keep the
		// flow's shape, shrink the training and search budgets.
		cfg.Attack.Epochs = 15
		cfg.Attack.Rounds = 6
		cfg.SA.Iterations = 20
		cfg.AdvPeriod = 5
		cfg.AdvGates = 30
		cfg.AdvSAIters = 6
	}
	cfg.Seed = *seed
	cfg.Parallelism = *jobs
	cfg.EvalAttacks = splitList(*evalAttacks)
	cfg.Lockers = splitList(*locker)
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	opts := observerOpts(*progress, stderr)

	fmt.Fprintf(stderr, "pipeline: %v keysize=%d\n", g, *keySize)
	h, err := core.SecureSynthesisCtx(ctx, g, *keySize, cfg, opts...)
	if err != nil {
		if h != nil && len(h.Recipe) > 0 {
			fmt.Fprintf(stderr, "interrupted; best recipe so far (proxy accuracy %.2f%%):\n%s\n",
				h.Search.Accuracy*100, h.Recipe)
		}
		return err
	}
	fmt.Fprintf(stdout, "recipe: %s\n", h.Recipe)
	fmt.Fprintf(stdout, "proxy accuracy: %.2f%%\n", h.Search.Accuracy*100)
	fmt.Fprintf(stdout, "hardened netlist: %v\n", h.Netlist)

	// Persist the expensive harden artifacts before the attack phase:
	// an attack failure or interrupt must not discard them.
	if *keyFile != "" {
		if err := os.WriteFile(*keyFile, []byte(h.Key.String()+"\n"), 0o644); err != nil {
			return err
		}
	}
	if *out != "" {
		if err := writeNetlist(*out, h.Netlist); err != nil {
			return err
		}
	}

	if len(attackList) > 0 {
		resyn := synth.Resyn2()
		baseline := resyn.Apply(h.Locked)
		run := func(name string, net *aig.AIG, recipe synth.Recipe) (float64, error) {
			atk, ok := core.LookupAttacker(name)
			if !ok {
				return 0, fmt.Errorf("pipeline: attack %q is not registered", name)
			}
			return atk.AttackCtx(ctx, net, h.Key, core.WithRecipe(recipe))
		}
		for _, name := range attackList {
			base, err := run(name, baseline, resyn)
			if err != nil {
				return err
			}
			hard, err := run(name, h.Netlist, h.Recipe)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "attack %-10s resyn2 %6.2f%%  ->  ALMOST %6.2f%%\n",
				name+":", base*100, hard*100)
		}
	}
	return nil
}

func cmdExperiment(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("experiment", stderr)
	name := fs.String("name", "table2", "transfer | table1 | fig4 | table2 | table3 | fig5")
	quick := fs.Bool("quick", true, "reduced settings (minutes); -quick=false uses the paper's full settings")
	benches := fs.String("benchmarks", "",
		"comma-separated benchmark override; entries may be built-in names or netlist files")
	jobs := jobsFlag(fs)
	progress := progressFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := experiments.FullOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *benches != "" {
		entries := strings.Split(*benches, ",")
		var files []string
		for _, e := range entries {
			if isNetlistFile(e) {
				files = append(files, e)
			}
		}
		names := entries
		if len(files) > 0 {
			// External netlists run through the same drivers as the
			// built-ins: FileSource serves them under their base names
			// and falls back to built-in generation for the rest.
			fileNames, src, err := experiments.FileSource(files...)
			if err != nil {
				return err
			}
			opt.Source = src
			names = make([]string, len(entries))
			fi := 0
			for i, e := range entries {
				if isNetlistFile(e) {
					names[i] = fileNames[fi]
					fi++
				} else {
					names[i] = e
				}
			}
		}
		// A file named like a built-in (or a second entry) would
		// silently shadow it in the Source — reject ambiguous sets
		// instead of producing indistinguishable rows.
		seenNames := make(map[string]string, len(names))
		for i, n := range names {
			if prev, dup := seenNames[n]; dup {
				return fmt.Errorf("experiment: benchmark entries %q and %q both resolve to name %q; rename the file",
					prev, entries[i], n)
			}
			seenNames[n] = entries[i]
		}
		opt.Benchmarks = names
	}
	opt.Cfg.Parallelism = *jobs
	opt.Out = stdout
	if *progress {
		opt.Observer = progressObserver(stderr)
	}
	var err error
	switch *name {
	case "transfer":
		_, err = experiments.RunTransferability(ctx, opt.Benchmarks[0], opt.KeySizes[0], opt)
	case "table1":
		_, err = experiments.RunTableI(ctx, opt)
	case "fig4":
		_, err = experiments.RunFig4(ctx, opt)
	case "table2":
		_, err = experiments.RunTableII(ctx, opt)
	case "table3":
		var res experiments.TableIIResult
		if res, err = experiments.RunTableII(ctx, opt); err == nil {
			_, err = experiments.RunTableIII(ctx, opt, res.Recipes)
		}
	case "fig5":
		_, err = experiments.RunFig5(ctx, opt)
	default:
		return fmt.Errorf("experiment: unknown name %q", *name)
	}
	return err
}
