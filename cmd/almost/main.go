// Command almost is the CLI front end of the ALMOST framework. It covers
// the whole flow the paper describes — benchmark generation, RLL
// locking, recipe-driven synthesis, the three oracle-less attacks,
// security-aware recipe tuning, PPA reporting — and can regenerate every
// experiment of the evaluation section.
//
// Usage:
//
//	almost gen -circuit c1908 -o c1908.bench
//	almost lock -in c1908.bench -keysize 64 -seed 1 -o locked.bench -keyfile key.txt
//	almost synth -in locked.bench -recipe "balance; rewrite; refactor" -o out.bench
//	almost attack -in locked.bench -attack omla -recipe resyn2 -keyfile key.txt
//	almost tune -in locked.bench -keyfile key.txt -jobs 8 -o recipe.txt
//	almost ppa -in out.bench
//	almost experiment -name table2 -quick -jobs 8
//
// The compute-heavy commands (tune, experiment) take -jobs N to set the
// worker count of the concurrent recipe-evaluation engine; 0 (the
// default) uses every CPU. Results are identical for any -jobs value.
// Both also take -progress to stream one-line status updates (training
// epochs, SA iterations) to stderr.
//
// SIGINT/SIGTERM cancel the run context: long-running commands stop at
// their next checkpoint, print the best result found so far, and exit
// non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/attack/omla"
	"github.com/nyu-secml/almost/internal/attack/redundancy"
	"github.com/nyu-secml/almost/internal/attack/scope"
	"github.com/nyu-secml/almost/internal/bench"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/core"
	"github.com/nyu-secml/almost/internal/experiments"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/synth"
	"github.com/nyu-secml/almost/internal/techmap"
)

// command is one subcommand handler. Handlers write results to stdout,
// diagnostics to stderr, and return an error instead of exiting, so the
// dispatcher (and the tests) stay in control of process state. The
// context is canceled on SIGINT/SIGTERM; compute-heavy handlers pass it
// down and surface the best-so-far result before returning the error.
type command func(ctx context.Context, args []string, stdout, stderr io.Writer) error

// commands maps subcommand names to handlers.
var commands = map[string]command{
	"gen":        cmdGen,
	"lock":       cmdLock,
	"synth":      cmdSynth,
	"attack":     cmdAttack,
	"tune":       cmdTune,
	"ppa":        cmdPPA,
	"experiment": cmdExperiment,
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches args to a subcommand and returns the process exit code:
// 0 on success, 1 on a command error (including an interrupted run), 2 on
// a usage error.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "help", "-h", "--help":
		usage(stderr)
		return 0
	}
	cmd, ok := commands[args[0]]
	if !ok {
		fmt.Fprintf(stderr, "almost: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err := cmd(ctx, args[1:], stdout, stderr); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		if errors.Is(err, core.ErrCanceled) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(stderr, "almost: interrupted: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "almost: %v\n", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `almost — security-aware synthesis tuning (DAC'23 reproduction)

commands:
  gen         generate a benchmark circuit (.bench)
  lock        apply random logic locking
  synth       apply a synthesis recipe
  attack      run an oracle-less attack (omla | scope | redundancy)
  tune        search for an ML-resilient recipe (the ALMOST flow)
  ppa         report area/delay/power of a netlist
  experiment  regenerate a paper artifact
              (transfer | table1 | fig4 | table2 | table3 | fig5)

run "almost <command> -h" for per-command flags`)
}

// newFlagSet builds a flag set that reports errors instead of exiting.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// jobsFlag registers the shared -jobs flag on compute-heavy subcommands.
func jobsFlag(fs *flag.FlagSet) *int {
	return fs.Int("jobs", 0, "evaluation workers (0 = all CPUs); results are jobs-independent")
}

// progressFlag registers the shared -progress flag on compute-heavy
// subcommands.
func progressFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("progress", false, "stream one-line status updates (epochs, SA iterations) to stderr")
}

// progressObserver renders pipeline events as one-line status updates on
// w. It is safe for concurrent cells: each event prints with one
// serialized write.
func progressObserver(w io.Writer) func(core.Event) {
	var mu sync.Mutex
	return func(ev core.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Phase {
		case core.PhaseLock:
			fmt.Fprintln(w, "[lock] applying random logic locking")
		case core.PhaseTrain:
			fmt.Fprintf(w, "[train] epoch %d/%d (%d samples)\n", ev.Epoch+1, ev.Epochs, ev.Samples)
		case core.PhaseAdvSearch:
			fmt.Fprintf(w, "[adv-search] iter %d/%d loss-energy %.4f best %.4f\n",
				ev.Iteration+1, ev.Iterations, ev.Energy, ev.BestEnergy)
		case core.PhaseSearch:
			fmt.Fprintf(w, "[search] iter %d/%d acc %.4f |acc-0.5| best %.4f\n",
				ev.Iteration+1, ev.Iterations, ev.Accuracy, ev.BestEnergy)
		case core.PhaseSynth:
			fmt.Fprintf(w, "[synthesize] applying S_ALMOST (proxy acc %.4f)\n", ev.Accuracy)
		}
	}
}

// observerOpts builds the core options for a -progress run.
func observerOpts(progress bool, stderr io.Writer) []core.Option {
	if !progress {
		return nil
	}
	return []core.Option{core.WithObserver(progressObserver(stderr))}
}

func readNetlist(path string) (*aig.AIG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bench.Parse(f)
}

func writeNetlist(path string, g *aig.AIG) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return bench.Write(f, g)
}

func parseRecipeFlag(s string) (synth.Recipe, error) {
	if s == "resyn2" || s == "" {
		return synth.Resyn2(), nil
	}
	return synth.ParseRecipe(s)
}

func readKeyFile(path string) (lock.Key, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := strings.TrimSpace(string(data))
	key := make(lock.Key, 0, len(s))
	for _, c := range s {
		switch c {
		case '0':
			key = append(key, false)
		case '1':
			key = append(key, true)
		default:
			return nil, fmt.Errorf("bad key character %q", c)
		}
	}
	return key, nil
}

func cmdGen(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("gen", stderr)
	circuit := fs.String("circuit", "c1908", "benchmark name ("+strings.Join(circuits.Names(), ", ")+")")
	out := fs.String("o", "", "output .bench path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := circuits.Generate(*circuit)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "%s: %v\n", *circuit, g)
	if *out == "" {
		return bench.Write(stdout, g)
	}
	return writeNetlist(*out, g)
}

func cmdLock(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("lock", stderr)
	in := fs.String("in", "", "input .bench netlist (required)")
	keySize := fs.Int("keysize", 64, "number of key gates")
	seed := fs.Int64("seed", 1, "locking seed")
	out := fs.String("o", "", "output .bench path (default stdout)")
	keyFile := fs.String("keyfile", "", "file to store the correct key")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("lock: -in is required")
	}
	g, err := readNetlist(*in)
	if err != nil {
		return err
	}
	locked, key := lock.Lock(g, *keySize, rand.New(rand.NewSource(*seed)))
	fmt.Fprintf(stderr, "locked: %v key=%s\n", locked, key)
	if *keyFile != "" {
		if err := os.WriteFile(*keyFile, []byte(key.String()+"\n"), 0o644); err != nil {
			return err
		}
	}
	if *out == "" {
		return bench.Write(stdout, locked)
	}
	return writeNetlist(*out, locked)
}

func cmdSynth(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("synth", stderr)
	in := fs.String("in", "", "input .bench netlist (required)")
	recipeStr := fs.String("recipe", "resyn2", `recipe script or "resyn2"`)
	out := fs.String("o", "", "output .bench path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("synth: -in is required")
	}
	g, err := readNetlist(*in)
	if err != nil {
		return err
	}
	recipe, err := parseRecipeFlag(*recipeStr)
	if err != nil {
		return err
	}
	h := recipe.Apply(g)
	fmt.Fprintf(stderr, "synth: %v -> %v (recipe: %s)\n", g, h, recipe)
	if *out == "" {
		return bench.Write(stdout, h)
	}
	return writeNetlist(*out, h)
}

func cmdAttack(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("attack", stderr)
	in := fs.String("in", "", "locked .bench netlist (required)")
	attackName := fs.String("attack", "omla", "omla | scope | redundancy")
	recipeStr := fs.String("recipe", "resyn2", "defender's recipe (omla only)")
	keyFile := fs.String("keyfile", "", "true key file (reports accuracy when given)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("attack: -in is required")
	}
	g, err := readNetlist(*in)
	if err != nil {
		return err
	}
	var guess lock.Key
	switch *attackName {
	case "omla":
		recipe, err := parseRecipeFlag(*recipeStr)
		if err != nil {
			return err
		}
		atk, err := omla.TrainCtx(ctx, g, recipe, omla.DefaultConfig(), nil)
		if err != nil {
			return err
		}
		guess = atk.PredictKey(g)
	case "scope":
		guess = scope.PredictKey(g, scope.DefaultConfig())
	case "redundancy":
		guess = redundancy.PredictKey(g, redundancy.DefaultConfig())
	default:
		return fmt.Errorf("attack: unknown attack %q", *attackName)
	}
	fmt.Fprintf(stdout, "predicted key: %s\n", guess)
	if *keyFile != "" {
		truth, err := readKeyFile(*keyFile)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "accuracy: %.2f%%\n", lock.Accuracy(truth, guess)*100)
	}
	return nil
}

func cmdTune(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("tune", stderr)
	in := fs.String("in", "", "locked .bench netlist (required)")
	keyFile := fs.String("keyfile", "", "true key file (required)")
	out := fs.String("o", "", "file for the tuned recipe (default stdout)")
	netOut := fs.String("net", "", "optional path for the ALMOST-synthesized netlist")
	full := fs.Bool("full", false, "use the paper's full-size settings (slow)")
	jobs := jobsFlag(fs)
	progress := progressFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *keyFile == "" {
		return fmt.Errorf("tune: -in and -keyfile are required")
	}
	g, err := readNetlist(*in)
	if err != nil {
		return err
	}
	key, err := readKeyFile(*keyFile)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	if *full {
		cfg = core.PaperConfig()
	}
	cfg.Parallelism = *jobs
	opts := observerOpts(*progress, stderr)
	fmt.Fprintln(stderr, "training adversarial proxy M*... (Ctrl-C stops and keeps the best so far)")
	proxy, err := core.TrainProxyCtx(ctx, g, core.ModelAdversarial, synth.Resyn2(), cfg, opts...)
	if err != nil {
		fmt.Fprintln(stderr, "interrupted during proxy training; no recipe found yet")
		return err
	}
	fmt.Fprintln(stderr, "searching for S_ALMOST (Eq. 1)...")
	res, err := core.SearchRecipeCtx(ctx, g, key, proxy, cfg, opts...)
	if err != nil {
		// The search returns its best-so-far recipe on cancellation;
		// surface it so the interrupted work is not lost. Before the
		// first iteration completes the "best" is just the unevaluated
		// random initial recipe — don't present that as a result.
		if len(res.Trace) > 0 {
			fmt.Fprintf(stderr, "interrupted after %d SA iterations; best recipe so far (proxy accuracy %.2f%%):\n%s\n",
				len(res.Trace), res.Accuracy*100, res.Recipe)
		} else {
			fmt.Fprintln(stderr, "interrupted before the first SA iteration; no recipe found yet")
		}
		return err
	}
	fmt.Fprintf(stderr, "best proxy accuracy: %.2f%%\n", res.Accuracy*100)
	line := res.Recipe.String() + "\n"
	if *out == "" {
		fmt.Fprint(stdout, line)
	} else if err := os.WriteFile(*out, []byte(line), 0o644); err != nil {
		return err
	}
	if *netOut != "" {
		return writeNetlist(*netOut, res.Recipe.Apply(g))
	}
	return nil
}

func cmdPPA(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("ppa", stderr)
	in := fs.String("in", "", "input .bench netlist (required)")
	opt := fs.Bool("opt", false, "high-effort mapping (+opt)")
	cells := fs.Bool("cells", false, "print the cell histogram")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("ppa: -in is required")
	}
	g, err := readNetlist(*in)
	if err != nil {
		return err
	}
	eff := techmap.EffortNone
	if *opt {
		eff = techmap.EffortHigh
	}
	r := techmap.Map(g, techmap.NanGate45(), eff)
	fmt.Fprintln(stdout, r)
	if *cells {
		fmt.Fprint(stdout, r.CellReport())
	}
	return nil
}

func cmdExperiment(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("experiment", stderr)
	name := fs.String("name", "table2", "transfer | table1 | fig4 | table2 | table3 | fig5")
	quick := fs.Bool("quick", true, "reduced settings (minutes); -quick=false uses the paper's full settings")
	benches := fs.String("benchmarks", "", "comma-separated benchmark override")
	jobs := jobsFlag(fs)
	progress := progressFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := experiments.FullOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}
	opt.Cfg.Parallelism = *jobs
	opt.Out = stdout
	if *progress {
		opt.Observer = progressObserver(stderr)
	}
	var err error
	switch *name {
	case "transfer":
		_, err = experiments.RunTransferability(ctx, opt.Benchmarks[0], opt.KeySizes[0], opt)
	case "table1":
		_, err = experiments.RunTableI(ctx, opt)
	case "fig4":
		_, err = experiments.RunFig4(ctx, opt)
	case "table2":
		_, err = experiments.RunTableII(ctx, opt)
	case "table3":
		var res experiments.TableIIResult
		if res, err = experiments.RunTableII(ctx, opt); err == nil {
			_, err = experiments.RunTableIII(ctx, opt, res.Recipes)
		}
	case "fig5":
		_, err = experiments.RunFig5(ctx, opt)
	default:
		return fmt.Errorf("experiment: unknown name %q", *name)
	}
	return err
}
