package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nyu-secml/almost/internal/core"
)

// runCLI invokes the dispatcher the way main does, capturing both streams.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errBuf bytes.Buffer
	code = run(context.Background(), args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestDispatch(t *testing.T) {
	tests := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring expected on stderr ("" = don't check)
	}{
		{"no args", nil, 2, "commands:"},
		{"help", []string{"help"}, 0, "commands:"},
		{"help dash h", []string{"-h"}, 0, "commands:"},
		{"unknown command", []string{"frobnicate"}, 2, `unknown command "frobnicate"`},
		{"gen unknown circuit", []string{"gen", "-circuit", "c999"}, 1, ""},
		{"lock missing in", []string{"lock"}, 1, "-in (or -circuit) is required"},
		{"synth missing in", []string{"synth"}, 1, "-in (or -circuit) is required"},
		{"synth missing input file", []string{"synth", "-in", "no-such.bench"}, 1, ""},
		{"synth rejects both in and circuit", []string{"synth", "-in", "a.bench", "-circuit", "c432"},
			1, "mutually exclusive"},
		{"attack missing in", []string{"attack"}, 1, "-in (or -circuit) is required"},
		{"ppa missing in", []string{"ppa"}, 1, "-in (or -circuit) is required"},
		{"convert missing in", []string{"convert"}, 1, "-in (or -circuit) is required"},
		{"convert unknown stdout format", []string{"convert", "-circuit", "c432", "-to", "blif"},
			1, `unknown format "blif"`},
		{"pipeline missing circuit", []string{"pipeline"}, 1, "-in (or -circuit) is required"},
		{"pipeline unknown attack", []string{"pipeline", "-circuit", "c432", "-attack", "psychic"},
			1, `unknown attack "psychic"`},
		{"tune missing keyfile", []string{"tune"}, 1, "-keyfile is required"},
		// -jobs must parse on the compute-heavy commands; the command then
		// fails on missing required flags before any heavy work happens.
		{"tune accepts jobs flag", []string{"tune", "-jobs", "8"}, 1, "-keyfile is required"},
		{"tune rejects bad jobs value", []string{"tune", "-jobs", "many"}, 1, "invalid value"},
		{"experiment accepts jobs flag", []string{"experiment", "-jobs", "4", "-name", "bogus"}, 1, `unknown name "bogus"`},
		{"experiment rejects shadowing benchmarks", []string{"experiment", "-benchmarks", "c432,c432"},
			1, `both resolve to name "c432"`},
		{"experiment unknown name", []string{"experiment", "-name", "nope"}, 1, `unknown name "nope"`},
		{"subcommand help exits zero", []string{"gen", "-h"}, 0, "-circuit"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, _, stderr := runCLI(tt.args...)
			if code != tt.wantCode {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tt.args, code, tt.wantCode, stderr)
			}
			if tt.wantErr != "" && !strings.Contains(stderr, tt.wantErr) {
				t.Fatalf("run(%v) stderr = %q, want substring %q", tt.args, stderr, tt.wantErr)
			}
		})
	}
}

func TestGenLockSynthPPARoundTrip(t *testing.T) {
	dir := t.TempDir()
	design := filepath.Join(dir, "c432.bench")
	locked := filepath.Join(dir, "locked.bench")
	synthed := filepath.Join(dir, "out.bench")
	keyFile := filepath.Join(dir, "key.txt")

	if code, _, stderr := runCLI("gen", "-circuit", "c432", "-o", design); code != 0 {
		t.Fatalf("gen failed (%d): %s", code, stderr)
	}
	if code, _, stderr := runCLI("lock", "-in", design, "-keysize", "8", "-seed", "1",
		"-o", locked, "-keyfile", keyFile); code != 0 {
		t.Fatalf("lock failed (%d): %s", code, stderr)
	}
	key, err := os.ReadFile(keyFile)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(key)); len(got) != 8 || strings.Trim(got, "01") != "" {
		t.Fatalf("key file content %q, want 8 bits", got)
	}
	if code, _, stderr := runCLI("synth", "-in", locked,
		"-recipe", "balance; rewrite", "-o", synthed); code != 0 {
		t.Fatalf("synth failed (%d): %s", code, stderr)
	}
	code, stdout, stderr := runCLI("ppa", "-in", synthed)
	if code != 0 {
		t.Fatalf("ppa failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "area") && !strings.Contains(stdout, "Area") {
		t.Fatalf("ppa output missing area report: %q", stdout)
	}
}

// TestConvertRoundTripFormats drives a circuit through every pairwise
// format conversion via the CLI and checks the result still loads.
func TestConvertRoundTripFormats(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "c.bench")
	aagPath := filepath.Join(dir, "c.aag")
	aigPath := filepath.Join(dir, "c.aig")

	if code, _, stderr := runCLI("gen", "-circuit", "c432", "-o", benchPath); code != 0 {
		t.Fatalf("gen failed: %s", stderr)
	}
	if code, _, stderr := runCLI("convert", "-in", benchPath, "-o", aagPath); code != 0 {
		t.Fatalf("bench->aag failed: %s", stderr)
	}
	if code, _, stderr := runCLI("convert", "-in", aagPath, "-o", aigPath); code != 0 {
		t.Fatalf("aag->aig failed: %s", stderr)
	}
	// The binary netlist must feed back into the ordinary flow.
	code, stdout, stderr := runCLI("ppa", "-circuit", aigPath)
	if code != 0 {
		t.Fatalf("ppa on .aig failed (%d): %s", code, stderr)
	}
	if !strings.Contains(strings.ToLower(stdout), "area") {
		t.Fatalf("ppa output missing area report: %q", stdout)
	}
	// And convert back to BENCH on stdout.
	code, stdout, stderr = runCLI("convert", "-in", aigPath, "-to", "bench")
	if code != 0 {
		t.Fatalf("aig->bench stdout failed: %s", stderr)
	}
	if !strings.Contains(stdout, "INPUT(") {
		t.Fatalf("stdout is not BENCH: %.120q", stdout)
	}
	// AIGER output to stdout as well.
	code, stdout, _ = runCLI("convert", "-in", benchPath, "-to", "aag")
	if code != 0 || !strings.HasPrefix(stdout, "aag ") {
		t.Fatalf("bench->aag stdout: code=%d out=%.60q", code, stdout)
	}
}

// TestLockedAIGERKeepsKeyMetadata locks a circuit into a binary AIGER
// file and checks the key inputs survive for the attack command.
func TestLockedAIGERKeepsKeyMetadata(t *testing.T) {
	dir := t.TempDir()
	locked := filepath.Join(dir, "locked.aig")
	keyFile := filepath.Join(dir, "key.txt")
	if code, _, stderr := runCLI("lock", "-circuit", "c432", "-keysize", "8",
		"-o", locked, "-keyfile", keyFile); code != 0 {
		t.Fatalf("lock failed: %s", stderr)
	}
	code, stdout, stderr := runCLI("attack", "-in", locked, "-attack", "scope", "-keyfile", keyFile)
	if code != 0 {
		t.Fatalf("attack on locked .aig failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "accuracy:") {
		t.Fatalf("attack output missing accuracy: %q", stdout)
	}
}

func TestGenWritesParsableNetlistToStdout(t *testing.T) {
	code, stdout, stderr := runCLI("gen", "-circuit", "c432")
	if code != 0 {
		t.Fatalf("gen failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "INPUT(") || !strings.Contains(stdout, "OUTPUT(") {
		t.Fatalf("stdout does not look like a .bench netlist: %.120q", stdout)
	}
}

// TestCanceledContextStopsComputeCommands drives the SIGINT path (main
// cancels the context via signal.NotifyContext; here the context starts
// canceled): compute-heavy commands must exit non-zero promptly with an
// "interrupted" diagnostic instead of running to completion.
func TestCanceledContextStopsComputeCommands(t *testing.T) {
	dir := t.TempDir()
	design := filepath.Join(dir, "c432.bench")
	locked := filepath.Join(dir, "locked.bench")
	keyFile := filepath.Join(dir, "key.txt")
	if code, _, stderr := runCLI("gen", "-circuit", "c432", "-o", design); code != 0 {
		t.Fatalf("gen failed: %s", stderr)
	}
	if code, _, stderr := runCLI("lock", "-in", design, "-keysize", "8", "-o", locked,
		"-keyfile", keyFile); code != 0 {
		t.Fatalf("lock failed: %s", stderr)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, args := range [][]string{
		{"tune", "-in", locked, "-keyfile", keyFile, "-progress"},
		{"experiment", "-name", "table1", "-progress"},
		{"attack", "-in", locked, "-attack", "omla"},
		{"pipeline", "-circuit", "c432", "-quick"},
	} {
		var out, errBuf bytes.Buffer
		code := run(ctx, args, &out, &errBuf)
		if code != 1 {
			t.Fatalf("run(%v) on canceled ctx = %d, want 1 (stderr: %s)", args, code, errBuf.String())
		}
		if !strings.Contains(errBuf.String(), "interrupted") {
			t.Fatalf("run(%v) stderr lacks 'interrupted': %q", args, errBuf.String())
		}
	}
}

// TestProgressObserverRendersOneLinePerEvent pins the -progress rendering
// contract for every pipeline phase.
func TestProgressObserverRendersOneLinePerEvent(t *testing.T) {
	var buf bytes.Buffer
	obs := progressObserver(&buf)
	obs(core.Event{Phase: core.PhaseLock})
	obs(core.Event{Phase: core.PhaseTrain, Epoch: 4, Epochs: 30, Samples: 320})
	obs(core.Event{Phase: core.PhaseAdvSearch, Iteration: 1, Iterations: 12, Energy: -0.7, BestEnergy: -0.9})
	obs(core.Event{Phase: core.PhaseSearch, Iteration: 2, Iterations: 40, Accuracy: 0.61, BestEnergy: 0.11})
	obs(core.Event{Phase: core.PhaseSynth, Accuracy: 0.52})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	for want, line := range map[string]string{
		"[lock]":       lines[0],
		"epoch 5/30":   lines[1],
		"[adv-search]": lines[2],
		"iter 3/40":    lines[3],
		"[synthesize]": lines[4],
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q lacks %q", line, want)
		}
	}
}

// TestPipelineOnExternalNetlist is the acceptance flow of the netlist
// I/O subsystem: export a circuit to binary AIGER, then run the full
// lock -> harden -> attack pipeline on that external file.
func TestPipelineOnExternalNetlist(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run; skipped in -short mode")
	}
	dir := t.TempDir()
	design := filepath.Join(dir, "mydesign.aig")
	hardened := filepath.Join(dir, "hardened.aag")
	keyFile := filepath.Join(dir, "key.txt")
	if code, _, stderr := runCLI("convert", "-circuit", "c432", "-o", design); code != 0 {
		t.Fatalf("convert failed: %s", stderr)
	}
	code, stdout, stderr := runCLI("pipeline", "-circuit", design, "-keysize", "8",
		"-quick", "-attack", "scope,redundancy", "-o", hardened, "-keyfile", keyFile)
	if code != 0 {
		t.Fatalf("pipeline failed (%d): %s", code, stderr)
	}
	for _, want := range []string{"recipe:", "proxy accuracy:", "attack scope:", "attack redundancy:"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("pipeline output missing %q:\n%s", want, stdout)
		}
	}
	// The hardened netlist must load and keep its key inputs.
	if code, _, stderr := runCLI("attack", "-in", hardened, "-attack", "scope",
		"-keyfile", keyFile); code != 0 {
		t.Fatalf("attack on hardened output failed: %s", stderr)
	}
}

// TestAttackList is the golden test for the registry listing: the five
// built-in attacks print one per line, in registration order (oracle-less
// first, then the oracle-guided SAT family).
func TestAttackList(t *testing.T) {
	code, stdout, stderr := runCLI("attack", "-list")
	if code != 0 {
		t.Fatalf("attack -list failed (%d): %s", code, stderr)
	}
	if want := "omla\nscope\nredundancy\nsatattack\nappsat\n"; stdout != want {
		t.Fatalf("attack -list = %q, want %q", stdout, want)
	}
}

// TestLockWithLockerFlag drives the -locker flag through rll, mux, and a
// chain; each run must produce a loadable netlist with the right number
// of key inputs, and an unknown scheme must fail with the registry list.
func TestLockWithLockerFlag(t *testing.T) {
	dir := t.TempDir()
	for _, locker := range []string{"rll", "mux", "rll,mux"} {
		out := filepath.Join(dir, strings.ReplaceAll(locker, ",", "-")+".bench")
		keyFile := filepath.Join(dir, strings.ReplaceAll(locker, ",", "-")+".key")
		if code, _, stderr := runCLI("lock", "-circuit", "c432", "-keysize", "8",
			"-locker", locker, "-o", out, "-keyfile", keyFile); code != 0 {
			t.Fatalf("lock -locker %s failed: %s", locker, stderr)
		}
		key, err := os.ReadFile(keyFile)
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimSpace(string(key)); len(got) != 8 {
			t.Fatalf("lock -locker %s: key %q, want 8 bits", locker, got)
		}
		// The locked netlist must feed the attack command.
		code, stdout, stderr := runCLI("attack", "-in", out, "-attack", "scope", "-keyfile", keyFile)
		if code != 0 {
			t.Fatalf("attack on -locker %s output failed: %s", locker, stderr)
		}
		if !strings.Contains(stdout, "accuracy:") {
			t.Fatalf("attack output missing accuracy: %q", stdout)
		}
	}
	code, _, stderr := runCLI("lock", "-circuit", "c432", "-locker", "bogus")
	if code != 1 || !strings.Contains(stderr, `unknown locker "bogus"`) ||
		!strings.Contains(stderr, "registered:") {
		t.Fatalf("lock -locker bogus: code=%d stderr=%q", code, stderr)
	}
}

// TestTuneAndPipelineRejectUnknownEnsembleAttacks covers the -attacks
// flag validation on both compute commands (before any heavy work).
func TestTuneAndPipelineRejectUnknownEnsembleAttacks(t *testing.T) {
	dir := t.TempDir()
	locked := filepath.Join(dir, "locked.bench")
	keyFile := filepath.Join(dir, "key.txt")
	if code, _, stderr := runCLI("lock", "-circuit", "c432", "-keysize", "8",
		"-o", locked, "-keyfile", keyFile); code != 0 {
		t.Fatalf("lock failed: %s", stderr)
	}
	code, _, stderr := runCLI("tune", "-in", locked, "-keyfile", keyFile, "-attacks", "psychic")
	if code != 1 || !strings.Contains(stderr, `unknown attack "psychic"`) {
		t.Fatalf("tune -attacks psychic: code=%d stderr=%q", code, stderr)
	}
	code, _, stderr = runCLI("pipeline", "-circuit", "c432", "-attacks", "omla,psychic")
	if code != 1 || !strings.Contains(stderr, `unknown attack "psychic"`) {
		t.Fatalf("pipeline -attacks psychic: code=%d stderr=%q", code, stderr)
	}
	code, _, stderr = runCLI("pipeline", "-circuit", "c432", "-locker", "nope")
	if code != 1 || !strings.Contains(stderr, `unknown locker "nope"`) {
		t.Fatalf("pipeline -locker nope: code=%d stderr=%q", code, stderr)
	}
}

// TestPipelineEnsembleQuick runs the hardening pipeline with a MUX
// locker and a two-attack ensemble objective at smoke scale — the CLI
// face of the redesign's acceptance flow.
func TestPipelineEnsembleQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run; skipped in -short mode")
	}
	code, stdout, stderr := runCLI("pipeline", "-circuit", "c432", "-keysize", "8",
		"-quick", "-locker", "rll,mux", "-attacks", "omla,scope", "-attack", "scope")
	if code != 0 {
		t.Fatalf("ensemble pipeline failed (%d): %s", code, stderr)
	}
	for _, want := range []string{"recipe:", "proxy accuracy:", "attack scope:"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("pipeline output missing %q:\n%s", want, stdout)
		}
	}
}

func TestAttackUnknownName(t *testing.T) {
	dir := t.TempDir()
	design := filepath.Join(dir, "c432.bench")
	if code, _, stderr := runCLI("gen", "-circuit", "c432", "-o", design); code != 0 {
		t.Fatalf("gen failed (%d): %s", code, stderr)
	}
	code, _, stderr := runCLI("attack", "-in", design, "-attack", "psychic")
	if code != 1 || !strings.Contains(stderr, `unknown attack "psychic"`) {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}
