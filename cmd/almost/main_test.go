package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes the dispatcher the way main does, capturing both streams.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestDispatch(t *testing.T) {
	tests := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring expected on stderr ("" = don't check)
	}{
		{"no args", nil, 2, "commands:"},
		{"help", []string{"help"}, 0, "commands:"},
		{"help dash h", []string{"-h"}, 0, "commands:"},
		{"unknown command", []string{"frobnicate"}, 2, `unknown command "frobnicate"`},
		{"gen unknown circuit", []string{"gen", "-circuit", "c999"}, 1, ""},
		{"lock missing in", []string{"lock"}, 1, "-in is required"},
		{"synth missing in", []string{"synth"}, 1, "-in is required"},
		{"synth missing input file", []string{"synth", "-in", "no-such.bench"}, 1, ""},
		{"attack missing in", []string{"attack"}, 1, "-in is required"},
		{"ppa missing in", []string{"ppa"}, 1, "-in is required"},
		{"tune missing in and keyfile", []string{"tune"}, 1, "-in and -keyfile are required"},
		// -jobs must parse on the compute-heavy commands; the command then
		// fails on missing required flags before any heavy work happens.
		{"tune accepts jobs flag", []string{"tune", "-jobs", "8"}, 1, "-in and -keyfile are required"},
		{"tune rejects bad jobs value", []string{"tune", "-jobs", "many"}, 1, "invalid value"},
		{"experiment accepts jobs flag", []string{"experiment", "-jobs", "4", "-name", "bogus"}, 1, `unknown name "bogus"`},
		{"experiment unknown name", []string{"experiment", "-name", "nope"}, 1, `unknown name "nope"`},
		{"subcommand help exits zero", []string{"gen", "-h"}, 0, "-circuit"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, _, stderr := runCLI(tt.args...)
			if code != tt.wantCode {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tt.args, code, tt.wantCode, stderr)
			}
			if tt.wantErr != "" && !strings.Contains(stderr, tt.wantErr) {
				t.Fatalf("run(%v) stderr = %q, want substring %q", tt.args, stderr, tt.wantErr)
			}
		})
	}
}

func TestGenLockSynthPPARoundTrip(t *testing.T) {
	dir := t.TempDir()
	design := filepath.Join(dir, "c432.bench")
	locked := filepath.Join(dir, "locked.bench")
	synthed := filepath.Join(dir, "out.bench")
	keyFile := filepath.Join(dir, "key.txt")

	if code, _, stderr := runCLI("gen", "-circuit", "c432", "-o", design); code != 0 {
		t.Fatalf("gen failed (%d): %s", code, stderr)
	}
	if code, _, stderr := runCLI("lock", "-in", design, "-keysize", "8", "-seed", "1",
		"-o", locked, "-keyfile", keyFile); code != 0 {
		t.Fatalf("lock failed (%d): %s", code, stderr)
	}
	key, err := os.ReadFile(keyFile)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(key)); len(got) != 8 || strings.Trim(got, "01") != "" {
		t.Fatalf("key file content %q, want 8 bits", got)
	}
	if code, _, stderr := runCLI("synth", "-in", locked,
		"-recipe", "balance; rewrite", "-o", synthed); code != 0 {
		t.Fatalf("synth failed (%d): %s", code, stderr)
	}
	code, stdout, stderr := runCLI("ppa", "-in", synthed)
	if code != 0 {
		t.Fatalf("ppa failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "area") && !strings.Contains(stdout, "Area") {
		t.Fatalf("ppa output missing area report: %q", stdout)
	}
}

func TestGenWritesParsableNetlistToStdout(t *testing.T) {
	code, stdout, stderr := runCLI("gen", "-circuit", "c432")
	if code != 0 {
		t.Fatalf("gen failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "INPUT(") || !strings.Contains(stdout, "OUTPUT(") {
		t.Fatalf("stdout does not look like a .bench netlist: %.120q", stdout)
	}
}

func TestAttackUnknownName(t *testing.T) {
	dir := t.TempDir()
	design := filepath.Join(dir, "c432.bench")
	if code, _, stderr := runCLI("gen", "-circuit", "c432", "-o", design); code != 0 {
		t.Fatalf("gen failed (%d): %s", code, stderr)
	}
	code, _, stderr := runCLI("attack", "-in", design, "-attack", "psychic")
	if code != 1 || !strings.Contains(stderr, `unknown attack "psychic"`) {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}
