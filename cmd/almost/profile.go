package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags registers the shared -cpuprofile/-memprofile flags on the
// compute-heavy subcommands, so scaling and tuning runs can be profiled
// without a rebuild.
func profileFlags(fs *flag.FlagSet) (cpu, mem *string) {
	cpu = fs.String("cpuprofile", "", "write a CPU profile to this file")
	mem = fs.String("memprofile", "", "write a heap profile to this file on exit")
	return cpu, mem
}

// startProfiles begins CPU profiling (when cpu is non-empty) and returns
// a stop function that finishes the CPU profile and writes the heap
// profile (when mem is non-empty). The stop function is safe to call
// exactly once, including on error paths via defer; profile-write
// failures are reported to stderr rather than clobbering the command's
// own error.
func startProfiles(cpu, mem string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "almost: -cpuprofile: %v\n", err)
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "almost: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialize the steady-state heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "almost: -memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "almost: -memprofile: %v\n", err)
			}
		}
	}, nil
}
