package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Active profile finalizers, keyed for unregistration. The signal path
// in main calls finalizeProfiles before a forced exit so a wedged run
// killed by a second Ctrl-C still leaves valid -cpuprofile/-memprofile
// files; each stop function is a sync.Once, so the normal deferred stop
// and the signal path can both fire without double-finalizing.
var (
	profileMu    sync.Mutex
	profileSeq   int
	profileStops = map[int]func(){}
)

func registerProfileStop(stop func()) (unregister func()) {
	profileMu.Lock()
	defer profileMu.Unlock()
	profileSeq++
	id := profileSeq
	profileStops[id] = stop
	return func() {
		profileMu.Lock()
		defer profileMu.Unlock()
		delete(profileStops, id)
	}
}

// finalizeProfiles flushes every active profile. Safe to call from the
// signal goroutine while a command is mid-run.
func finalizeProfiles() {
	profileMu.Lock()
	stops := make([]func(), 0, len(profileStops))
	for _, stop := range profileStops {
		stops = append(stops, stop)
	}
	profileMu.Unlock()
	for _, stop := range stops {
		stop()
	}
}

// profileFlags registers the shared -cpuprofile/-memprofile flags on the
// compute-heavy subcommands, so scaling and tuning runs can be profiled
// without a rebuild.
func profileFlags(fs *flag.FlagSet) (cpu, mem *string) {
	cpu = fs.String("cpuprofile", "", "write a CPU profile to this file")
	mem = fs.String("memprofile", "", "write a heap profile to this file on exit")
	return cpu, mem
}

// startProfiles begins CPU profiling (when cpu is non-empty) and returns
// a stop function that finishes the CPU profile and writes the heap
// profile (when mem is non-empty). The stop function is idempotent
// (sync.Once) and registered with the signal path, so whichever of the
// command's defer and a forced-exit signal runs first finalizes the
// files, and the other is a no-op; profile-write failures are reported
// to stderr rather than clobbering the command's own error.
func startProfiles(cpu, mem string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	var once sync.Once
	var unregister func()
	finalize := func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "almost: -cpuprofile: %v\n", err)
				}
			}
			if mem != "" {
				f, err := os.Create(mem)
				if err != nil {
					fmt.Fprintf(os.Stderr, "almost: -memprofile: %v\n", err)
					return
				}
				runtime.GC() // materialize the steady-state heap before the snapshot
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "almost: -memprofile: %v\n", err)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "almost: -memprofile: %v\n", err)
				}
			}
		})
	}
	unregister = registerProfileStop(finalize)
	return func() {
		finalize()
		unregister()
	}, nil
}
