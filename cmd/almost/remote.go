package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/nyu-secml/almost/internal/netio"
	"github.com/nyu-secml/almost/internal/service"
)

// cmdRemote is the client side of almostd: submit jobs to a hardening
// server, follow their event streams, fetch results, cancel them. The
// wire protocol is plain HTTP+JSON (see internal/service), so anything
// these subcommands do, curl can too.
func cmdRemote(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		remoteUsage(stderr)
		return fmt.Errorf("remote: a subcommand is required")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "submit":
		return remoteSubmit(ctx, rest, stdout, stderr)
	case "status":
		return remoteStatus(ctx, rest, stdout, stderr)
	case "result":
		return remoteResult(ctx, rest, stdout, stderr)
	case "cancel":
		return remoteCancel(ctx, rest, stdout, stderr)
	case "watch":
		return remoteWatch(ctx, rest, stdout, stderr)
	case "list":
		return remoteList(ctx, rest, stdout, stderr)
	case "stats":
		return remoteStats(ctx, rest, stdout, stderr)
	case "help", "-h", "--help":
		remoteUsage(stderr)
		return nil
	}
	remoteUsage(stderr)
	return fmt.Errorf("remote: unknown subcommand %q", sub)
}

func remoteUsage(w io.Writer) {
	fmt.Fprintln(w, `almost remote — talk to an almostd hardening server

subcommands:
  submit   submit a lock/attack/harden/pipeline job (prints the job ID)
  status   show one job's state
  result   fetch a finished job's result (JSON)
  cancel   cancel a job wherever it is
  watch    stream a job's live progress (NDJSON feed, rendered)
  list     list all jobs on the server
  stats    show queue/pool/counter snapshot

the server resolves from -server, then $`+service.EnvAddr+`, then `+service.DefaultAddr+`

run "almost remote <subcommand> -h" for per-subcommand flags`)
}

// serverFlag registers the shared -server flag.
func serverFlag(fs interface {
	String(name, value, usage string) *string
}) *string {
	return fs.String("server", "", "almostd address (default $"+service.EnvAddr+" or "+service.DefaultAddr+")")
}

// remoteClient resolves the server address and builds a client.
func remoteClient(addr string) *service.Client {
	if addr == "" {
		if v, ok := os.LookupEnv(service.EnvAddr); ok && v != "" {
			addr = v
		} else {
			addr = service.DefaultAddr
		}
	}
	return service.NewClient(addr)
}

func remoteSubmit(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("remote submit", stderr)
	server := serverFlag(fs)
	kind := fs.String("kind", "harden", "job kind (lock | attack | harden | pipeline)")
	in, circuit := circuitFlags(fs)
	keySize := fs.Int("keysize", 0, "number of key gates (0 = server default)")
	seed := fs.Int64("seed", 0, "framework seed (0 = server default)")
	locker := fs.String("locker", "", "locking scheme chain, comma-separated (empty = rll)")
	evalAttacks := fs.String("attacks", "", "search-objective attack ensemble, comma-separated (empty = omla proxy)")
	attacks := fs.String("attack", "", "evaluation attacks, comma-separated (attack and pipeline jobs)")
	recipeStr := fs.String("recipe", "", "defender's recipe for self-referencing attacks (attack jobs)")
	keyFile := fs.String("keyfile", "", "true key file (attack jobs)")
	effort := fs.String("effort", "", "framework budget (smoke | quick | default | full; empty = quick)")
	jobs := fs.Int("jobs", 0, "requested engine-worker budget (the server clamps to its pool)")
	timeout := fs.Duration("timeout", 0, "server-side run deadline (0 = none)")
	watch := fs.Bool("watch", false, "follow the job's event stream until it finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := service.JobSpec{
		Kind:        service.JobKind(*kind),
		KeySize:     *keySize,
		Seed:        *seed,
		Lockers:     splitList(*locker),
		EvalAttacks: splitList(*evalAttacks),
		Attacks:     splitList(*attacks),
		Recipe:      *recipeStr,
		Effort:      service.Effort(*effort),
		Parallelism: *jobs,
		Timeout:     service.Duration(*timeout),
	}
	switch {
	case *in != "" && *circuit != "":
		return fmt.Errorf("remote submit: -in and -circuit are mutually exclusive")
	case *in != "":
		// The server may not share our filesystem: inline the netlist,
		// normalized to BENCH text by the same netio path the library
		// uses.
		g, err := netio.ReadFile(*in)
		if err != nil {
			return err
		}
		var sb strings.Builder
		if err := netio.WriteBench(&sb, g); err != nil {
			return err
		}
		spec.Netlist, spec.Format = sb.String(), "bench"
	case *circuit != "":
		if isNetlistFile(*circuit) {
			g, err := netio.ReadFile(*circuit)
			if err != nil {
				return err
			}
			var sb strings.Builder
			if err := netio.WriteBench(&sb, g); err != nil {
				return err
			}
			spec.Netlist, spec.Format = sb.String(), "bench"
		} else {
			spec.Circuit = *circuit
		}
	default:
		return fmt.Errorf("remote submit: -in (or -circuit) is required")
	}
	if *keyFile != "" {
		key, err := readKeyFile(*keyFile)
		if err != nil {
			return err
		}
		spec.Key = key.String()
	}
	client := remoteClient(*server)
	id, err := client.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("remote submit: %w", err)
	}
	fmt.Fprintln(stdout, id)
	if !*watch {
		return nil
	}
	return followJob(ctx, client, id, 0, stdout, stderr)
}

// followJob renders a job's stream until its terminal event, then
// prints the result (or surfaces the failure).
func followJob(ctx context.Context, client *service.Client, id string, from int,
	stdout, stderr io.Writer) error {
	render := progressObserver(stderr)
	term, err := client.Watch(ctx, id, from, func(ev service.StreamEvent) error {
		switch ev.Type {
		case service.StreamProgress:
			if ev.Event != nil {
				render(*ev.Event)
			}
		case service.StreamStateChange:
			fmt.Fprintf(stderr, "[%s] %s\n", id, ev.State)
		case service.StreamGap:
			fmt.Fprintf(stderr, "[%s] (%d events aged out of the replay buffer)\n", id, ev.Dropped)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("remote watch: %w", err)
	}
	if term.Type == service.StreamError {
		return fmt.Errorf("job %s %s: %s", id, term.State, term.Error)
	}
	return printJSON(stdout, term.Result)
}

// printJSON renders v as indented JSON on w.
func printJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// remoteJobID extracts the job ID positional argument.
func remoteJobID(fs interface{ Args() []string }, sub string) (string, error) {
	args := fs.Args()
	if len(args) != 1 {
		return "", fmt.Errorf("remote %s: exactly one job ID argument is required", sub)
	}
	return args[0], nil
}

func remoteStatus(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("remote status", stderr)
	server := serverFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	id, err := remoteJobID(fs, "status")
	if err != nil {
		return err
	}
	st, err := remoteClient(*server).Status(ctx, id)
	if err != nil {
		return fmt.Errorf("remote status: %w", err)
	}
	return printJSON(stdout, st)
}

func remoteResult(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("remote result", stderr)
	server := serverFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	id, err := remoteJobID(fs, "result")
	if err != nil {
		return err
	}
	res, st, err := remoteClient(*server).Result(ctx, id)
	if err != nil {
		return fmt.Errorf("remote result: %w", err)
	}
	if res == nil {
		return fmt.Errorf("remote result: job %s is %s (%s)", id, st.State, st.Error)
	}
	return printJSON(stdout, res)
}

func remoteCancel(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("remote cancel", stderr)
	server := serverFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	id, err := remoteJobID(fs, "cancel")
	if err != nil {
		return err
	}
	if err := remoteClient(*server).Cancel(ctx, id); err != nil {
		return fmt.Errorf("remote cancel: %w", err)
	}
	fmt.Fprintf(stdout, "canceling %s\n", id)
	return nil
}

func remoteWatch(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("remote watch", stderr)
	server := serverFlag(fs)
	from := fs.Int("from", 0, "resume the stream from this sequence number")
	if err := fs.Parse(args); err != nil {
		return err
	}
	id, err := remoteJobID(fs, "watch")
	if err != nil {
		return err
	}
	return followJob(ctx, remoteClient(*server), id, *from, stdout, stderr)
}

func remoteList(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("remote list", stderr)
	server := serverFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	jobs, err := remoteClient(*server).Jobs(ctx)
	if err != nil {
		return fmt.Errorf("remote list: %w", err)
	}
	for _, j := range jobs {
		line := fmt.Sprintf("%s  %-8s  %-8s", j.ID, j.Kind, j.State)
		if j.Phase != "" && !j.State.Terminal() {
			line += "  " + string(j.Phase)
		}
		if j.Error != "" {
			line += "  (" + j.Error + ")"
		}
		fmt.Fprintln(stdout, line)
	}
	if len(jobs) == 0 {
		fmt.Fprintln(stderr, "no jobs")
	}
	return nil
}

func remoteStats(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("remote stats", stderr)
	server := serverFlag(fs)
	withJobs := fs.Bool("jobs", false, "include per-job statuses")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stats, err := remoteClient(*server).Stats(ctx, *withJobs)
	if err != nil {
		return fmt.Errorf("remote stats: %w", err)
	}
	return printJSON(stdout, stats)
}
