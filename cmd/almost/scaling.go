package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"time"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/synth"
)

// The scaling benchmark measures what PR 8 is for: the per-candidate
// cost of evaluating an SA locking/synthesis proposal, incremental
// (mark -> cone patch -> windowed resynthesis -> delta simulation ->
// rollback, all against one persistent base with warm scratch state)
// versus full (clone the base, apply the identical patch and windowed
// recipe, simulate from scratch — the pre-PR 8 shape of one engine
// evaluation). Both paths compute the same candidate, and the harness
// verifies that claim per size: identical scores on every candidate and
// identical structural digests on sampled candidates, checked in an
// untimed pass.

// scalingPoint is one circuit size on the curve.
type scalingPoint struct {
	Circuit            string  `json:"circuit"`
	Gates              int     `json:"gates"`
	Candidates         int     `json:"candidates"`
	FullNsPerCandidate int64   `json:"full_ns_per_candidate"`
	IncrNsPerCandidate int64   `json:"incr_ns_per_candidate"`
	Speedup            float64 `json:"speedup"`
	DigestVerified     bool    `json:"digest_verified"`
	ScoresIdentical    bool    `json:"scores_identical"`
}

// scalingReport is the BENCH_pr8.json artifact.
type scalingReport struct {
	Benchmark        string         `json:"benchmark"`
	Recipe           string         `json:"recipe"`
	KeysPerCandidate int            `json:"keys_per_candidate"`
	SigWords         int            `json:"sig_words"`
	PatchWindow      int            `json:"patch_window"`
	Seed             int64          `json:"seed"`
	Points           []scalingPoint `json:"points"`
}

// scalingCase drives one circuit through both evaluation paths.
type scalingCase struct {
	base    *aig.AIG
	fanouts [][]int
	recipe  synth.Recipe
	seed    int64
	nKeys   int
	sigW    int
	window  int

	// warm incremental state, persistent across candidates. mark is
	// taken once on the pristine base; every rollback restores exactly
	// that state, so the same mark stays valid for the whole run.
	mark  aig.Mark
	arena *synth.Arena
	sim   *aig.SimScratch

	// warm full-path state (scratch is reused, but every candidate gets a
	// fresh clone, so simulation and synthesis start cold each time)
	fullArena *synth.Arena
	fullSim   *aig.SimScratch
}

func newScalingCase(base *aig.AIG, recipe synth.Recipe, seed int64, nKeys, sigW, window int) *scalingCase {
	return &scalingCase{
		base:      base,
		fanouts:   base.Fanouts(),
		recipe:    recipe,
		seed:      seed,
		nKeys:     nKeys,
		sigW:      sigW,
		window:    window,
		mark:      base.MarkClean(),
		arena:     synth.NewArena(),
		sim:       &aig.SimScratch{},
		fullArena: synth.NewArena(),
		fullSim:   &aig.SimScratch{},
	}
}

// patch applies candidate c's deterministic locking move to g: XOR a
// fresh key input into nKeys AND cones via RewriteCone. The base and its
// clones share node ids, so the same candidate index produces the same
// patch on either.
//
// Targets are drawn from the most recent `window` nodes. Node ids are
// topological, so a node's transitive fanout lives entirely above it —
// a bounded window bounds the dirty region, which is what makes the
// patch a *local* edit (the shape an SA locking move has) instead of a
// rewrite of a constant fraction of the graph. window <= 0 draws from
// the whole graph; the artifact records the setting.
func (sc *scalingCase) patch(g *aig.AIG, c int) {
	rng := rand.New(rand.NewSource(sc.seed + int64(c)*7919))
	n := g.NumNodes()
	w := sc.window
	if w <= 0 || w > n-1 {
		w = n - 1
	}
	targets := make([]int, 0, sc.nKeys)
	seen := make(map[int]bool, sc.nKeys)
	for misses := 0; len(targets) < sc.nKeys; {
		id := n - 1 - rng.Intn(w)
		if g.IsAnd(id) && !seen[id] {
			seen[id] = true
			targets = append(targets, id)
			continue
		}
		// An AND-sparse tail (tiny or input-heavy circuits): widen until
		// the draw can succeed.
		if misses++; misses > 64 && w < n-1 {
			w *= 2
			if w > n-1 {
				w = n - 1
			}
			misses = 0
		}
	}
	keys := make([]aig.Lit, len(targets))
	for i := range keys {
		keys[i] = g.AddKeyInput(fmt.Sprintf("kp%d", i))
	}
	g.RewriteCone(targets, sc.fanouts, func(i int, nl aig.Lit) aig.Lit {
		return g.Xor(nl, keys[i])
	})
}

// score folds the output signature words into one value — a stand-in for
// the real proxy-attack scoring that depends on every output bit, so a
// simulation divergence between the two paths cannot cancel out.
func (sc *scalingCase) score(g *aig.AIG, rows [][]uint64) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < g.NumOutputs(); i++ {
		po := g.Output(i)
		row := rows[po.Node()]
		for _, w := range row {
			if po.Neg() {
				w = ^w
			}
			h = (h ^ w) * 1099511628211
		}
	}
	return h
}

// evalIncr scores candidate c against the persistent base: patch in
// place, windowed resynthesis seeded from the dirty region, delta
// simulation of the appended suffix, then rollback. Returns the score
// and (when wantDigest) the patched graph's structural digest, taken
// before rollback in verification passes only.
func (sc *scalingCase) evalIncr(c int, wantDigest bool) (uint64, uint64) {
	g := sc.base
	m := sc.mark
	sc.patch(g, c)
	sc.recipe.RunWindow(g, m, sc.arena)
	rows := g.SignaturesInto(sc.sim, rand.New(rand.NewSource(sc.seed^0x5EED)), sc.sigW)
	v := sc.score(g, rows)
	var d uint64
	if wantDigest {
		d = g.StructuralDigest()
	}
	g.Rollback(m)
	sc.sim.TrimTo(g, m.Nodes())
	return v, d
}

// evalFull scores candidate c the pre-incremental way: clone the base,
// apply the identical patch and windowed recipe, simulate from scratch.
func (sc *scalingCase) evalFull(c int, wantDigest bool) (uint64, uint64) {
	h := sc.base.Clone()
	m := h.MarkClean()
	sc.patch(h, c)
	sc.recipe.RunWindow(h, m, sc.fullArena)
	rows := h.SignaturesInto(sc.fullSim, rand.New(rand.NewSource(sc.seed^0x5EED)), sc.sigW)
	v := sc.score(h, rows)
	var d uint64
	if wantDigest {
		d = h.StructuralDigest()
	}
	return v, d
}

// runPoint measures one circuit size: an untimed identity pass first
// (digests on sampled candidates), then the timed loops.
func runPoint(ctx context.Context, name string, base *aig.AIG, recipe synth.Recipe,
	seed int64, candidates, nKeys, sigW, window int, stderr io.Writer) (scalingPoint, error) {
	sc := newScalingCase(base, recipe, seed, nKeys, sigW, window)
	pt := scalingPoint{
		Circuit:         name,
		Gates:           base.NumAnds(),
		Candidates:      candidates,
		DigestVerified:  true,
		ScoresIdentical: true,
	}

	// Verification pass: digest-checked bit-identity on a candidate
	// sample (digests are O(n), so the sample stays small at 1M gates).
	verify := candidates
	if verify > 4 {
		verify = 4
	}
	for c := 0; c < verify; c++ {
		if err := ctx.Err(); err != nil {
			return pt, err
		}
		vi, di := sc.evalIncr(c, true)
		vf, df := sc.evalFull(c, true)
		if di != df {
			pt.DigestVerified = false
		}
		if vi != vf {
			pt.ScoresIdentical = false
		}
	}
	if !pt.DigestVerified || !pt.ScoresIdentical {
		return pt, fmt.Errorf("scaling: %s: incremental and full paths diverged (digest ok=%v, scores ok=%v)",
			name, pt.DigestVerified, pt.ScoresIdentical)
	}

	// Timed passes. The verification loop doubled as warmup for both
	// paths' scratch state. Scores are compared across the full candidate
	// set as a cheap identity check on every timed evaluation too.
	incrScores := make([]uint64, candidates)
	start := time.Now()
	for c := 0; c < candidates; c++ {
		incrScores[c], _ = sc.evalIncr(c, false)
	}
	incrNs := time.Since(start).Nanoseconds() / int64(candidates)

	if err := ctx.Err(); err != nil {
		return pt, err
	}
	start = time.Now()
	for c := 0; c < candidates; c++ {
		v, _ := sc.evalFull(c, false)
		if v != incrScores[c] {
			pt.ScoresIdentical = false
		}
	}
	fullNs := time.Since(start).Nanoseconds() / int64(candidates)
	if !pt.ScoresIdentical {
		return pt, fmt.Errorf("scaling: %s: timed passes disagree on candidate scores", name)
	}

	pt.IncrNsPerCandidate = incrNs
	pt.FullNsPerCandidate = fullNs
	if incrNs > 0 {
		pt.Speedup = float64(fullNs) / float64(incrNs)
	}
	fmt.Fprintf(stderr, "scaling: %-9s %8d gates  full %10.3fms  incr %10.3fms  speedup %6.1fx\n",
		name, pt.Gates, float64(fullNs)/1e6, float64(incrNs)/1e6, pt.Speedup)
	return pt, nil
}

// resolveScalingCircuit turns one -sizes entry into a named circuit: a
// registered benchmark name (built-in or synthetic preset), or a bare
// integer gate count generating an ad-hoc mixed-profile circuit.
func resolveScalingCircuit(entry string, seed int64) (string, *aig.AIG, error) {
	if n, err := strconv.Atoi(entry); err == nil {
		if n < 10 {
			return "", nil, fmt.Errorf("scaling: ad-hoc size %d too small", n)
		}
		ins := 32
		for ins*ins < n {
			ins *= 2
		}
		g := circuits.RandomCircuitProfile(rand.New(rand.NewSource(seed)), ins, 32, n, circuits.DepthMixed)
		return fmt.Sprintf("rand%d", n), g, nil
	}
	g, err := loadCircuit(entry)
	if err != nil {
		return "", nil, err
	}
	return entry, g, nil
}

// cmdScaling produces the incremental-vs-full candidate-evaluation
// latency curve (the BENCH_pr8.json artifact).
func cmdScaling(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("scaling", stderr)
	sizes := fs.String("sizes", "rand10k,rand100k,rand1m",
		"comma-separated circuit entries: benchmark names (built-in or synthetic preset) or bare gate counts")
	candidates := fs.Int("candidates", 16, "SA candidates evaluated per path per size")
	nKeys := fs.Int("keys", 4, "key gates inserted per candidate patch")
	window := fs.Int("patchwindow", 512,
		"draw patch targets from the most recent N nodes, bounding the dirty region (0 = whole graph)")
	sigW := fs.Int("sigwords", 4, "signature width in 64-bit words")
	seed := fs.Int64("seed", 1, "patch/generation seed")
	recipeStr := fs.String("recipe", "resyn2", `windowed recipe applied per candidate (script or "resyn2")`)
	out := fs.String("o", "", "output JSON path (default stdout)")
	cpuProfile, memProfile := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *candidates < 1 || *nKeys < 1 || *sigW < 1 {
		return fmt.Errorf("scaling: -candidates, -keys, and -sigwords must be positive")
	}
	recipe, err := parseRecipeFlag(*recipeStr)
	if err != nil {
		return err
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	rep := scalingReport{
		Benchmark:        "incremental vs full candidate evaluation (PR 8)",
		Recipe:           recipe.String(),
		KeysPerCandidate: *nKeys,
		SigWords:         *sigW,
		PatchWindow:      *window,
		Seed:             *seed,
	}
	for _, entry := range splitList(*sizes) {
		name, g, err := resolveScalingCircuit(entry, *seed)
		if err != nil {
			return err
		}
		pt, err := runPoint(ctx, name, g, recipe, *seed, *candidates, *nKeys, *sigW, *window, stderr)
		if err != nil {
			return err
		}
		rep.Points = append(rep.Points, pt)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
