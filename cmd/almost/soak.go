package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"github.com/nyu-secml/almost/internal/service"
)

// cmdSoak hammers an almostd server with the mixed submit/cancel/watch
// load from internal/service.Soak and holds it to the harness's bar:
// every job terminal, no stalled streams, verified results
// byte-identical to direct library runs. With no -server it self-hosts:
// an in-process almostd on a loopback port, torn down afterwards with a
// goroutine-leak check — the acceptance soak in one command:
//
//	almost soak                      (self-hosted, 500 requests, 32 workers)
//	almost soak -n 80 -c 8           (CI smoke shape)
//	almost soak -server host:9571    (against a running daemon)
func cmdSoak(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("soak", stderr)
	server := serverFlag(fs)
	n := fs.Int("n", 500, "total job submissions")
	c := fs.Int("c", 32, "concurrent client workers")
	verify := fs.Int("verify", 5, "verify every Nth completed job against a direct library run (0 = off)")
	seed := fs.Int64("seed", 1, "request-mix seed")
	circuit := fs.String("circuit", "c432", "benchmark the jobs run on")
	pool := fs.Int("pool", 4, "self-hosted server's worker pool size")
	queue := fs.Int("queue", 48, "self-hosted server's queue limit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := service.SoakConfig{
		Requests:    *n,
		Concurrency: *c,
		VerifyEvery: *verify,
		Seed:        *seed,
		Circuit:     *circuit,
		Out:         stderr,
	}

	var client *service.Client
	var teardown func() error
	if *server != "" {
		client = remoteClient(*server)
		teardown = func() error { return nil }
	} else {
		before := runtime.NumGoroutine()
		sctx, cancel := context.WithCancel(ctx)
		sched := service.NewScheduler(sctx, service.SchedulerConfig{
			PoolSize: *pool, QueueLimit: *queue})
		srv := &http.Server{Handler: service.NewServer(sched)}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cancel()
			return err
		}
		go srv.Serve(ln)
		fmt.Fprintf(stderr, "soak: self-hosted almostd on %s (pool=%d queue<=%d)\n",
			ln.Addr(), *pool, *queue)
		client = service.NewClient(ln.Addr().String())
		teardown = func() error {
			srv.Close()
			sched.Close()
			cancel()
			// The leak check: after teardown the process must return to
			// its baseline goroutine count, or a runner/stream/waiter is
			// stuck.
			deadline := time.Now().Add(10 * time.Second)
			for {
				runtime.GC()
				if g := runtime.NumGoroutine(); g <= before+2 {
					return nil
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("soak: goroutine leak: %d before, %d after teardown",
						before, runtime.NumGoroutine())
				}
				time.Sleep(50 * time.Millisecond)
			}
		}
	}

	start := time.Now()
	report, err := service.Soak(ctx, client, cfg)
	if err != nil {
		teardown()
		return fmt.Errorf("soak: %w (report: %+v)", err, report)
	}
	if err := teardown(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "soak: clean in %s\n", time.Since(start).Round(time.Millisecond))
	return printJSON(stdout, report)
}
