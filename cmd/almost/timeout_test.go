package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTimeoutFlagCancelsComputeCommands drives -timeout on the three
// long-running commands with a deadline that expires before any real
// work: each must exit through the same "interrupted" path as Ctrl-C,
// promptly, instead of running to completion.
func TestTimeoutFlagCancelsComputeCommands(t *testing.T) {
	dir := t.TempDir()
	locked := filepath.Join(dir, "locked.bench")
	keyFile := filepath.Join(dir, "key.txt")
	if code, _, stderr := runCLI("lock", "-circuit", "c432", "-keysize", "8",
		"-o", locked, "-keyfile", keyFile); code != 0 {
		t.Fatalf("lock failed: %s", stderr)
	}
	for _, args := range [][]string{
		{"attack", "-in", locked, "-attack", "omla", "-keyfile", keyFile, "-timeout", "1ms"},
		{"tune", "-in", locked, "-keyfile", keyFile, "-timeout", "1ms"},
		{"pipeline", "-circuit", "c432", "-quick", "-timeout", "1ms"},
	} {
		code, _, stderr := runCLI(args...)
		if code != 1 {
			t.Fatalf("run(%v) = %d, want 1 (stderr: %s)", args, code, stderr)
		}
		if !strings.Contains(stderr, "interrupted") {
			t.Fatalf("run(%v) stderr lacks 'interrupted': %q", args, stderr)
		}
	}
}

// TestTimeoutFlagParsing covers the flag edges: a malformed duration is
// a parse error, and an explicit zero means "no limit" (the command
// proceeds to its ordinary flag validation).
func TestTimeoutFlagParsing(t *testing.T) {
	code, _, stderr := runCLI("tune", "-timeout", "forever")
	if code != 1 || !strings.Contains(stderr, "invalid value") {
		t.Fatalf("tune -timeout forever: code=%d stderr=%q", code, stderr)
	}
	code, _, stderr = runCLI("tune", "-timeout", "0")
	if code != 1 || !strings.Contains(stderr, "-keyfile is required") {
		t.Fatalf("tune -timeout 0: code=%d stderr=%q", code, stderr)
	}
}

// TestFinalizeProfilesOnSignalPath exercises the forced-exit flow: a
// command starts profiling, the second signal calls finalizeProfiles
// mid-run, and the profile files must land complete anyway. The
// command's own deferred stop must then be a harmless no-op, and after
// unregistration a later finalizeProfiles must not touch the files.
func TestFinalizeProfilesOnSignalPath(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := startProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to hold.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x

	finalizeProfiles() // what the signal goroutine does before os.Exit

	for _, path := range []string{cpu, mem} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		// pprof output is gzip-compressed protobuf.
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Fatalf("%s is not a gzip pprof profile (%d bytes)", path, len(data))
		}
	}

	// The normal deferred stop runs after the signal path already
	// finalized: it must not double-stop or rewrite the files.
	before, err := os.ReadFile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	after, err := os.ReadFile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("stop() after finalizeProfiles rewrote the CPU profile: %d -> %d bytes",
			len(before), len(after))
	}

	// stop() unregistered the finalizer; a later sweep must leave a
	// removed file removed rather than resurrect it.
	if err := os.Remove(mem); err != nil {
		t.Fatal(err)
	}
	finalizeProfiles()
	if _, err := os.Stat(mem); !os.IsNotExist(err) {
		t.Fatalf("finalizeProfiles after unregister recreated %s", mem)
	}
}

// TestStartProfilesSequentialRuns makes sure one command's profiling
// session doesn't wedge the next (CPU profiling is process-global).
func TestStartProfilesSequentialRuns(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		cpu := filepath.Join(dir, "cpu.pprof")
		stop, err := startProfiles(cpu, "")
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		stop()
		if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
			t.Fatalf("round %d: cpu profile missing or empty (%v)", i, err)
		}
	}
}

// TestRemoteDispatch covers the remote subcommand surface that needs no
// server: usage, help, and unknown-subcommand handling.
func TestRemoteDispatch(t *testing.T) {
	code, _, stderr := runCLI("remote")
	if code != 1 || !strings.Contains(stderr, "a subcommand is required") ||
		!strings.Contains(stderr, "subcommands:") {
		t.Fatalf("remote: code=%d stderr=%q", code, stderr)
	}
	code, _, stderr = runCLI("remote", "frobnicate")
	if code != 1 || !strings.Contains(stderr, `unknown subcommand "frobnicate"`) {
		t.Fatalf("remote frobnicate: code=%d stderr=%q", code, stderr)
	}
	code, _, stderr = runCLI("remote", "help")
	if code != 0 || !strings.Contains(stderr, "subcommands:") {
		t.Fatalf("remote help: code=%d stderr=%q", code, stderr)
	}
	code, _, stderr = runCLI("remote", "status")
	if code != 1 || !strings.Contains(stderr, "job ID") {
		t.Fatalf("remote status without id: code=%d stderr=%q", code, stderr)
	}
}

// TestSoakFlagValidation: the soak command must fail flag parsing
// before standing up any server.
func TestSoakFlagValidation(t *testing.T) {
	code, _, stderr := runCLI("soak", "-n", "lots")
	if code != 1 || !strings.Contains(stderr, "invalid value") {
		t.Fatalf("soak -n lots: code=%d stderr=%q", code, stderr)
	}
}
