// Command almostd is the ALMOST hardening-as-a-service job server.
// Clients (almost remote ...) submit lock/attack/harden/pipeline jobs
// over plain HTTP+JSON; the daemon runs them through the library on a
// shared, fairly scheduled engine-worker pool and streams each job's
// progress feed back as NDJSON. Everything is stdlib: no TLS
// termination, no auth — put it behind a reverse proxy for anything but
// loopback use.
//
// Configuration is environment-first (ALMOSTD_ADDR, ALMOSTD_POOL_SIZE,
// ALMOSTD_QUEUE_LIMIT, ALMOSTD_EVENT_BUFFER, ALMOSTD_HISTORY_LIMIT);
// flags override for ad-hoc runs:
//
//	almostd
//	almostd -addr 127.0.0.1:9571 -pool 8 -queue 128
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, every
// queued and running job is canceled at its next checkpoint, and the
// process exits once the job table drains. A second signal force-exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/nyu-secml/almost/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr *os.File) int {
	fs := flag.NewFlagSet("almostd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "listen address (overrides $"+service.EnvAddr+"; default "+service.DefaultAddr+")")
	pool := fs.Int("pool", 0, "engine worker slots shared by all jobs (overrides $"+service.EnvPoolSize+")")
	queue := fs.Int("queue", 0, "max accepted-but-unfinished jobs (overrides $"+service.EnvQueueLimit+")")
	buffer := fs.Int("buffer", 0, "per-job event replay buffer (overrides $"+service.EnvEventBuffer+")")
	history := fs.Int("history", 0, "max retained terminal jobs (overrides $"+service.EnvHistoryLimit+")")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	cfg, err := service.ConfigFromEnv(nil)
	if err != nil {
		fmt.Fprintf(stderr, "almostd: %v\n", err)
		return 2
	}
	if *addr != "" {
		cfg.Addr = *addr
	}
	if *pool > 0 {
		cfg.Scheduler.PoolSize = *pool
	}
	if *queue > 0 {
		cfg.Scheduler.QueueLimit = *queue
	}
	if *buffer > 0 {
		cfg.Scheduler.EventBuffer = *buffer
	}
	if *history > 0 {
		cfg.Scheduler.HistoryLimit = *history
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sched := service.NewScheduler(ctx, cfg.Scheduler)
	srv := &http.Server{Handler: service.NewServer(sched)}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		fmt.Fprintf(stderr, "almostd: %v\n", err)
		return 1
	}
	filled := sched.Config()
	fmt.Fprintf(stderr, "almostd: listening on %s (pool=%d queue<=%d buffer=%d history<=%d)\n",
		ln.Addr(), filled.PoolSize, filled.QueueLimit, filled.EventBuffer, filled.HistoryLimit)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "almostd: %v\n", err)
			return 1
		}
	case sig := <-sigc:
		fmt.Fprintf(stderr, "almostd: %v — draining (signal again to force exit)\n", sig)
		go func() {
			<-sigc
			fmt.Fprintln(stderr, "almostd: forced exit")
			os.Exit(130)
		}()
		// Stop accepting, cancel the job table, then close the streams:
		// watchers see each job's canceled terminal event before their
		// connections drop.
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer shutCancel()
		cancel()
		sched.Close()
		if err := srv.Shutdown(shutCtx); err != nil {
			srv.Close()
		}
	}
	return 0
}
