// Command almostvet checks the repository's load-bearing invariants:
// zero-allocation hot paths, deterministic result reduction, context
// threading, SAT-outcome discipline, registry hygiene, and the ban on
// deprecation markers. See internal/analysis for the analyzer suite.
//
// Run it standalone:
//
//	go run ./cmd/almostvet ./...
//
// or as a vet tool, which also covers test-variant packages and caches
// per-package results:
//
//	go build -o "$(go env GOPATH)/bin/almostvet" ./cmd/almostvet
//	go vet -vettool="$(go env GOPATH)/bin/almostvet" ./...
package main

import "github.com/nyu-secml/almost/internal/analysis"

func main() {
	analysis.Main(analysis.All()...)
}
