// Lock-and-attack: the paper's threat model in one script. A design is
// locked with plain RLL and synthesized with the standard resyn2 recipe;
// an oracle-less OMLA attacker (who knows the recipe but has no working
// chip) then recovers most of the key — demonstrating why RLL alone is
// "100% vulnerable" and why synthesis choice matters.
//
// The OMLA attack runs through the cancellable AttackOMLACtx entry
// point: Ctrl-C aborts the attacker's training cleanly.
//
//	go run ./examples/lockandattack
//	go run ./examples/lockandattack -quick (smaller circuit; CI uses this)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	almost "github.com/nyu-secml/almost"
)

func main() {
	quick := flag.Bool("quick", false, "smaller circuit and key so the example finishes in seconds")
	flag.Parse()

	bench, keySize := "c1908", 64
	if *quick {
		bench, keySize = "c432", 16
	}
	design, err := almost.GenerateBenchmark(bench)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Defender: lock with keySize bits, synthesize with resyn2.
	locked, key := almost.Lock(design, keySize, rand.New(rand.NewSource(7)))
	recipe := almost.Resyn2()
	fab := recipe.Apply(locked)
	fmt.Printf("sent to fab: %v (recipe: resyn2)\n", fab)

	// Attacker: oracle-less — only the netlist and the recipe.
	fmt.Println("training self-referencing OMLA attacker...")
	acc, err := almost.AttackOMLACtx(ctx, fab, recipe, key)
	if err != nil {
		log.Fatalf("attack interrupted: %v", err)
	}
	fmt.Printf("OMLA key-recovery accuracy:       %.1f%%\n", acc*100)

	// For contrast, every other registered oracle-less attack — new
	// attacks registered via almost.RegisterAttacker show up here with
	// no further changes.
	for _, name := range almost.Attackers() {
		if name == "omla" {
			continue
		}
		atk, _ := almost.LookupAttacker(name)
		acc, err := atk.AttackCtx(ctx, fab, key)
		if err != nil {
			log.Fatalf("%s interrupted: %v", name, err)
		}
		fmt.Printf("%-10s key-recovery accuracy:  %6.1f%%\n", name, acc*100)
	}

	fmt.Println("\n(50% = random guessing; OMLA well above 50% means RLL+resyn2 leaks the key)")
}
