// Lock-and-attack: the paper's threat model in one script. A design is
// locked with plain RLL and synthesized with the standard resyn2 recipe;
// an oracle-less OMLA attacker (who knows the recipe but has no working
// chip) then recovers most of the key — demonstrating why RLL alone is
// "100% vulnerable" and why synthesis choice matters.
//
//	go run ./examples/lockandattack
package main

import (
	"fmt"
	"log"
	"math/rand"

	almost "github.com/nyu-secml/almost"
)

func main() {
	design, err := almost.GenerateBenchmark("c1908")
	if err != nil {
		log.Fatal(err)
	}

	// Defender: lock with 64 key bits, synthesize with resyn2.
	locked, key := almost.Lock(design, 64, rand.New(rand.NewSource(7)))
	recipe := almost.Resyn2()
	fab := recipe.Apply(locked)
	fmt.Printf("sent to fab: %v (recipe: resyn2)\n", fab)

	// Attacker: oracle-less — only the netlist and the recipe.
	fmt.Println("training self-referencing OMLA attacker...")
	acc := almost.AttackOMLA(fab, recipe, key)
	fmt.Printf("OMLA key-recovery accuracy:       %.1f%%\n", acc*100)

	// For contrast, the two weaker oracle-less attacks.
	fmt.Printf("SCOPE key-recovery accuracy:      %.1f%%\n", almost.AttackSCOPE(fab, key)*100)
	fmt.Printf("redundancy key-recovery accuracy: %.1f%%\n", almost.AttackRedundancy(fab, key)*100)

	fmt.Println("\n(50% = random guessing; OMLA well above 50% means RLL+resyn2 leaks the key)")
}
