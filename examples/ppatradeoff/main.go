// PPA-tradeoff: sweeps every one of the seven synthesis transformations
// plus a set of random recipes over a locked benchmark and reports the
// resulting (area, delay, power, attack-accuracy) points — the design
// space ALMOST's annealer navigates. This reproduces, in miniature, the
// paper's observation that attack resilience and PPA are largely
// decoupled (Fig. 5).
//
//	go run ./examples/ppatradeoff
//	go run ./examples/ppatradeoff -quick (smaller circuit, fewer recipes; CI uses this)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"

	almost "github.com/nyu-secml/almost"
)

func main() {
	quick := flag.Bool("quick", false, "smaller circuit and fewer recipes so the example finishes in seconds")
	flag.Parse()

	bench, keySize, nRandom := "c1908", 64, 6
	cfg := almost.DefaultConfig()
	if *quick {
		bench, keySize, nRandom = "c432", 16, 2
		cfg.Attack.Rounds = 1
		cfg.Attack.Epochs = 2
	}
	design, err := almost.GenerateBenchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	locked, key := almost.Lock(design, keySize, rand.New(rand.NewSource(3)))

	// One shared attacker model, trained on the resyn2 baseline, used as
	// a fast accuracy probe for every candidate netlist.
	proxy, err := almost.TrainProxyCtx(context.Background(), locked,
		almost.ModelResyn2, almost.Resyn2(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-50s %9s %8s %8s %8s\n", "recipe", "area", "delay", "power", "attack")
	report := func(name string, r almost.Recipe) {
		net := r.Apply(locked)
		ppa := almost.PPA(net, false)
		acc := proxy.Attack.Accuracy(net, key)
		fmt.Printf("%-50s %8.1f² %7.3fn %7.2fµ %7.1f%%\n",
			name, ppa.Area, ppa.Delay, ppa.Power, acc*100)
	}

	report("(none)", almost.Recipe{})
	report("resyn2", almost.Resyn2())
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < nRandom; i++ {
		r := almost.RandomRecipe(rng, 10)
		report(fmt.Sprintf("random #%d: %.40s...", i, r.String()), r)
	}
	fmt.Println("\nNote the spread in the attack column at similar PPA —")
	fmt.Println("that decoupling is the degree of freedom ALMOST exploits.")
}
