// PPA-tradeoff: sweeps every one of the seven synthesis transformations
// plus a set of random recipes over a locked benchmark and reports the
// resulting (area, delay, power, attack-accuracy) points — the design
// space ALMOST's annealer navigates. This reproduces, in miniature, the
// paper's observation that attack resilience and PPA are largely
// decoupled (Fig. 5).
//
//	go run ./examples/ppatradeoff
package main

import (
	"fmt"
	"log"
	"math/rand"

	almost "github.com/nyu-secml/almost"
)

func main() {
	design, err := almost.GenerateBenchmark("c1908")
	if err != nil {
		log.Fatal(err)
	}
	locked, key := almost.Lock(design, 64, rand.New(rand.NewSource(3)))

	// One shared attacker model, trained on the resyn2 baseline, used as
	// a fast accuracy probe for every candidate netlist.
	cfg := almost.DefaultConfig()
	proxy := almost.TrainProxy(locked, almost.ModelResyn2, almost.Resyn2(), cfg)

	fmt.Printf("%-50s %9s %8s %8s %8s\n", "recipe", "area", "delay", "power", "attack")
	report := func(name string, r almost.Recipe) {
		net := r.Apply(locked)
		ppa := almost.PPA(net, false)
		acc := proxy.Attack.Accuracy(net, key)
		fmt.Printf("%-50s %8.1f² %7.3fn %7.2fµ %7.1f%%\n",
			name, ppa.Area, ppa.Delay, ppa.Power, acc*100)
	}

	report("(none)", almost.Recipe{})
	report("resyn2", almost.Resyn2())
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 6; i++ {
		r := almost.RandomRecipe(rng, 10)
		report(fmt.Sprintf("random #%d: %.40s...", i, r.String()), r)
	}
	fmt.Println("\nNote the spread in the attack column at similar PPA —")
	fmt.Println("that decoupling is the degree of freedom ALMOST exploits.")
}
