// Quickstart: generate a benchmark, lock it, harden it with ALMOST, and
// verify that the hardened netlist is still the same circuit under the
// correct key.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	almost "github.com/nyu-secml/almost"
)

func main() {
	design, err := almost.GenerateBenchmark("c432")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design:   %v\n", design)

	// A small configuration so the quickstart finishes in ~30 seconds;
	// almost.PaperConfig() reproduces the paper's full settings.
	cfg := almost.DefaultConfig()
	cfg.Attack.Rounds = 3
	cfg.Attack.Epochs = 8
	cfg.SA.Iterations = 10
	cfg.Parallelism = 0 // evaluate recipe candidates on every CPU (the default)

	hardened := almost.Harden(design, 16, cfg)
	fmt.Printf("hardened: %v\n", hardened.Netlist)
	fmt.Printf("key:      %s\n", hardened.Key)
	fmt.Printf("S_ALMOST: %s\n", hardened.Recipe)
	fmt.Printf("proxy-estimated attack accuracy: %.1f%% (0.5 = random guessing)\n",
		hardened.Search.Accuracy*100)

	if ok, _ := almost.EquivalentUnderKey(design, hardened.Netlist, hardened.Key); !ok {
		log.Fatal("hardened netlist is not equivalent under the correct key")
	}
	fmt.Println("SAT check: hardened netlist ≡ design under the correct key ✓")
}
