// Quickstart: generate a benchmark, lock it, harden it with ALMOST, and
// verify that the hardened netlist is still the same circuit under the
// correct key.
//
// This example uses the context-aware API: Ctrl-C cancels the run at the
// next checkpoint (keeping the best recipe found so far), and an
// observer streams live progress — Algorithm 1 epochs and the Fig. 4 SA
// trace — while the pipeline runs.
//
//	go run ./examples/quickstart          (~30 seconds)
//	go run ./examples/quickstart -quick   (a few seconds; CI uses this)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	almost "github.com/nyu-secml/almost"
)

func main() {
	quick := flag.Bool("quick", false, "minimal settings so the example finishes in seconds")
	flag.Parse()

	design, err := almost.GenerateBenchmark("c432")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design:   %v\n", design)

	// A small configuration so the quickstart finishes in ~30 seconds;
	// almost.PaperConfig() reproduces the paper's full settings.
	cfg := almost.DefaultConfig()
	cfg.Attack.Rounds = 3
	cfg.Attack.Epochs = 8
	cfg.SA.Iterations = 10
	cfg.Parallelism = 0 // evaluate recipe candidates on every CPU (the default)
	if *quick {
		cfg.Attack.Rounds = 1
		cfg.Attack.Epochs = 2
		cfg.AdvPeriod = 1
		cfg.AdvGates = 4
		cfg.AdvSAIters = 1
		cfg.SA.Iterations = 2
		cfg.RecipeLen = 5
	}

	// Ctrl-C cancels the pipeline at its next checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hardened, err := almost.HardenCtx(ctx, design, 16, cfg,
		almost.WithObserver(func(ev almost.Event) {
			switch ev.Phase {
			case almost.PhaseTrain:
				if (ev.Epoch+1)%4 == 0 || ev.Epoch+1 == ev.Epochs {
					fmt.Printf("  training M*: epoch %d/%d (%d samples)\n",
						ev.Epoch+1, ev.Epochs, ev.Samples)
				}
			case almost.PhaseSearch:
				fmt.Printf("  SA search: iter %d/%d accuracy %.3f\n",
					ev.Iteration+1, ev.Iterations, ev.Accuracy)
			}
		}))
	if err != nil {
		if errors.Is(err, almost.ErrCanceled) && hardened != nil && len(hardened.Recipe) > 0 {
			log.Fatalf("interrupted; best recipe so far: %s", hardened.Recipe)
		}
		log.Fatal(err)
	}
	fmt.Printf("hardened: %v\n", hardened.Netlist)
	fmt.Printf("key:      %s\n", hardened.Key)
	fmt.Printf("S_ALMOST: %s\n", hardened.Recipe)
	fmt.Printf("proxy-estimated attack accuracy: %.1f%% (0.5 = random guessing)\n",
		hardened.Search.Accuracy*100)

	if ok, _, _ := almost.EquivalentUnderKey(design, hardened.Netlist, hardened.Key); !ok {
		log.Fatal("hardened netlist is not equivalent under the correct key")
	}
	fmt.Println("SAT check: hardened netlist ≡ design under the correct key ✓")
}
