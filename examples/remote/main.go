// Remote: the hardening-as-a-service quickstart. It stands up an
// in-process almostd (the same scheduler + HTTP handler the daemon
// runs), then walks the whole client protocol: submit a harden job,
// follow its live NDJSON event stream, fetch the bit-stable result, and
// prove the served recipe matches a direct library call with the same
// seed — the determinism contract the soak harness enforces at scale.
//
// Against a real deployment nothing changes but the address:
//
//	almostd &                                         # or a remote host
//	almost remote submit -kind harden -circuit c432 -watch
//
//	go run ./examples/remote          (~30 seconds)
//	go run ./examples/remote -quick   (a few seconds; CI uses this)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	// In-repo example: the service lives under internal/. External
	// clients don't import anything — the protocol is plain HTTP+JSON,
	// so any language's stdlib is a complete client.
	"github.com/nyu-secml/almost/internal/service"
)

func main() {
	quick := flag.Bool("quick", false, "smoke-effort job so the example finishes in seconds")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// An in-process almostd: shared 2-slot worker pool, bounded queue.
	sched := service.NewScheduler(ctx, service.SchedulerConfig{PoolSize: 2, QueueLimit: 8})
	defer sched.Close()
	srv := &http.Server{Handler: service.NewServer(sched)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("server:   %s\n", ln.Addr())

	client := service.NewClient(ln.Addr().String())

	// Submit the full ALMOST flow as a job. Effort picks the framework
	// budget; Parallelism asks for pool slots (the server clamps it, and
	// the result provably doesn't depend on what it grants).
	spec := service.JobSpec{
		Kind:        service.KindHarden,
		Circuit:     "c432",
		KeySize:     16,
		Seed:        7,
		Effort:      service.EffortQuick,
		Parallelism: 2,
	}
	if *quick {
		spec.KeySize = 8
		spec.Effort = service.EffortSmoke
	}
	id, err := client.Submit(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job:      %s\n", id)

	// Follow the live stream: state changes and the pipeline's progress
	// events (training epochs, SA iterations) as they happen.
	events := 0
	result, err := client.Wait(ctx, id, func(ev service.StreamEvent) error {
		events++
		switch ev.Type {
		case service.StreamStateChange:
			fmt.Printf("  [%03d] state: %s\n", ev.Seq, ev.State)
		case service.StreamProgress:
			if ev.Event != nil && ev.Event.Iteration == 0 && ev.Event.Epoch == 0 {
				fmt.Printf("  [%03d] phase: %s\n", ev.Seq, ev.Event.Phase)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream:   %d events\n", events)
	fmt.Printf("recipe:   %s\n", result.Recipe)
	fmt.Printf("accuracy: %.2f%% (proxy)\n", result.Accuracy*100)
	fmt.Printf("key:      %s\n", result.Key)

	// The determinism contract: a direct library call with the same spec
	// and Parallelism 1 must reproduce the served result bit for bit.
	direct, err := service.RunSpec(ctx, spec, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	if direct.Recipe != result.Recipe || direct.Key != result.Key || direct.Netlist != result.Netlist {
		log.Fatal("served result differs from the direct library call")
	}
	fmt.Println("verified: served result == direct library run")
}
