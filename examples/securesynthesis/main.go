// Secure-synthesis: the paper's headline comparison on one circuit.
// The same RLL-locked design is synthesized two ways — with the standard
// resyn2 recipe and with an ALMOST-tuned recipe — and an independent
// OMLA attacker (fully aware of the respective recipe) is trained against
// each. ALMOST's recipe drives the attack toward 50% (random guessing).
//
// The example runs each stage explicitly through the context-aware
// entry points (TrainProxyCtx, SearchRecipeCtx, AttackOMLACtx), so
// Ctrl-C aborts any stage cleanly; see examples/quickstart for the
// single-call HardenCtx flow with a progress observer.
//
//	go run ./examples/securesynthesis        (~2-3 minutes)
//	go run ./examples/securesynthesis -quick (seconds, smaller circuit; CI uses this)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	almost "github.com/nyu-secml/almost"
)

func main() {
	quick := flag.Bool("quick", false, "minimal settings so the example finishes in seconds")
	flag.Parse()

	bench, keySize := "c1908", 64
	cfg := almost.DefaultConfig()
	if *quick {
		bench, keySize = "c432", 16
		cfg.Attack.Rounds = 1
		cfg.Attack.Epochs = 2
		cfg.AdvPeriod = 1
		cfg.AdvGates = 4
		cfg.AdvSAIters = 1
		cfg.SA.Iterations = 2
		cfg.RecipeLen = 5
	}

	design, err := almost.GenerateBenchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	locked, key := almost.Lock(design, keySize, rand.New(rand.NewSource(1)))

	// Baseline: resyn2.
	resyn := almost.Resyn2()
	baseNet := resyn.Apply(locked)

	// ALMOST: adversarial proxy + SA recipe search (Eq. 1).
	fmt.Println("training adversarial proxy M* (Algorithm 1)...")
	proxy, err := almost.TrainProxyCtx(ctx, locked, almost.ModelAdversarial, resyn, cfg)
	if err != nil {
		log.Fatalf("proxy training interrupted: %v", err)
	}
	fmt.Println("simulated-annealing recipe search...")
	search, err := almost.SearchRecipeCtx(ctx, locked, key, proxy, cfg)
	if err != nil {
		log.Fatalf("recipe search interrupted: %v", err)
	}
	almostNet := search.Recipe.Apply(locked)
	fmt.Printf("S_ALMOST = %s\n\n", search.Recipe)

	// Independent attackers with full recipe knowledge.
	fmt.Println("attacking both netlists with independently trained OMLA...")
	baseAcc, err := almost.AttackOMLACtx(ctx, baseNet, resyn, key)
	if err != nil {
		log.Fatalf("attack interrupted: %v", err)
	}
	almostAcc, err := almost.AttackOMLACtx(ctx, almostNet, search.Recipe, key)
	if err != nil {
		log.Fatalf("attack interrupted: %v", err)
	}

	fmt.Printf("\n%-22s %8s\n", "netlist", "OMLA acc")
	fmt.Printf("%-22s %7.1f%%\n", "resyn2 (baseline)", baseAcc*100)
	fmt.Printf("%-22s %7.1f%%\n", "ALMOST", almostAcc*100)

	// And the PPA cost of resilience (Table III's question).
	basePPA := almost.PPA(baseNet, true)
	almostPPA := almost.PPA(almostNet, true)
	fmt.Printf("\nPPA (+opt): baseline %v\n", basePPA)
	fmt.Printf("PPA (+opt): ALMOST   %v\n", almostPPA)
	fmt.Printf("area overhead: %+.1f%%\n", (almostPPA.Area/basePPA.Area-1)*100)
}
