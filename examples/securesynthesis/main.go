// Secure-synthesis: the paper's headline comparison on one circuit.
// The same RLL-locked design is synthesized two ways — with the standard
// resyn2 recipe and with an ALMOST-tuned recipe — and an independent
// OMLA attacker (fully aware of the respective recipe) is trained against
// each. ALMOST's recipe drives the attack toward 50% (random guessing).
//
//	go run ./examples/securesynthesis        (~2-3 minutes)
package main

import (
	"fmt"
	"log"
	"math/rand"

	almost "github.com/nyu-secml/almost"
)

func main() {
	design, err := almost.GenerateBenchmark("c1908")
	if err != nil {
		log.Fatal(err)
	}
	locked, key := almost.Lock(design, 64, rand.New(rand.NewSource(1)))

	// Baseline: resyn2.
	resyn := almost.Resyn2()
	baseNet := resyn.Apply(locked)

	// ALMOST: adversarial proxy + SA recipe search (Eq. 1).
	cfg := almost.DefaultConfig()
	fmt.Println("training adversarial proxy M* (Algorithm 1)...")
	proxy := almost.TrainProxy(locked, almost.ModelAdversarial, resyn, cfg)
	fmt.Println("simulated-annealing recipe search...")
	search := almost.SearchRecipe(locked, key, proxy, cfg)
	almostNet := search.Recipe.Apply(locked)
	fmt.Printf("S_ALMOST = %s\n\n", search.Recipe)

	// Independent attackers with full recipe knowledge.
	fmt.Println("attacking both netlists with independently trained OMLA...")
	baseAcc := almost.AttackOMLA(baseNet, resyn, key)
	almostAcc := almost.AttackOMLA(almostNet, search.Recipe, key)

	fmt.Printf("\n%-22s %8s\n", "netlist", "OMLA acc")
	fmt.Printf("%-22s %7.1f%%\n", "resyn2 (baseline)", baseAcc*100)
	fmt.Printf("%-22s %7.1f%%\n", "ALMOST", almostAcc*100)

	// And the PPA cost of resilience (Table III's question).
	basePPA := almost.PPA(baseNet, true)
	almostPPA := almost.PPA(almostNet, true)
	fmt.Printf("\nPPA (+opt): baseline %v\n", basePPA)
	fmt.Printf("PPA (+opt): ALMOST   %v\n", almostPPA)
	fmt.Printf("area overhead: %+.1f%%\n", (almostPPA.Area/basePPA.Area-1)*100)
}
