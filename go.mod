module github.com/nyu-secml/almost

go 1.21
