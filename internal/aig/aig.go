// Package aig implements an And-Inverter Graph (AIG), the core logic
// representation used throughout ALMOST. An AIG is a DAG whose internal
// nodes are two-input AND gates and whose edges may carry inversions.
// Every combinational Boolean network can be expressed this way, and all
// synthesis transforms in internal/synth operate on this form, mirroring
// the ABC/yosys flow the paper uses.
//
// Nodes are identified by dense integer IDs; node 0 is the constant-false
// node. A Lit packs a node ID and a complement bit, exactly as in the
// AIGER format. The graph is append-only: transforms build a new AIG via
// reconstruction (see Rebuilder) rather than mutating in place, which
// keeps structural hashing sound and makes every pass deterministic.
package aig

import (
	"fmt"
)

// Lit is a literal: a node ID shifted left by one, with the low bit
// indicating complementation. Lit 0 is constant false, Lit 1 constant true.
type Lit uint32

// Predefined constant literals.
const (
	False Lit = 0
	True  Lit = 1
)

// MakeLit builds a literal from a node ID and a complement flag.
func MakeLit(node int, neg bool) Lit {
	l := Lit(node) << 1
	if neg {
		l |= 1
	}
	return l
}

// Node returns the node ID of the literal.
func (l Lit) Node() int { return int(l >> 1) }

// Neg reports whether the literal is complemented.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotIf complements the literal iff c is true.
func (l Lit) NotIf(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// String renders the literal as, e.g., "n5" or "!n5".
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("!n%d", l.Node())
	}
	return fmt.Sprintf("n%d", l.Node())
}

// Kind distinguishes node types.
type Kind uint8

// Node kinds.
const (
	KindConst Kind = iota // node 0 only
	KindInput             // primary or key input
	KindAnd               // two-input AND
)

type node struct {
	fanin0, fanin1 Lit
	kind           Kind
	level          int32
}

// AIG is a structurally hashed and-inverter graph.
//
// The zero value is not usable; call New.
type AIG struct {
	nodes   []node
	pis     []int // node IDs of inputs, in creation order
	pos     []Lit
	piNames []string
	poNames []string
	isKey   []bool // parallel to pis: true if the input is a key input

	strash map[uint64]int // (fanin0,fanin1) -> AND node ID

	// gen counts Reset calls. Caches keyed by graph identity (SimScratch
	// schedules, synthesis arenas) include it so recycled storage —
	// same pointer, rebuilt contents — never serves stale entries.
	gen uint64

	// shrink counts Rollback calls (see incr.go). The graph is append-only
	// between Resets *and Rollbacks*; delta-simulation state additionally
	// keys on this counter so a rollback followed by fresh appends — which
	// can reproduce an earlier (gen, node count) pair with different
	// contents — can never serve stale cached values.
	shrink uint64
}

// New returns an empty AIG containing only the constant node.
func New() *AIG {
	g := &AIG{strash: make(map[uint64]int)}
	g.nodes = append(g.nodes, node{kind: KindConst, level: 0})
	return g
}

// NumNodes returns the total node count including the constant node and inputs.
func (g *AIG) NumNodes() int { return len(g.nodes) }

// NumAnds returns the number of AND nodes (the "gate count" of the AIG).
func (g *AIG) NumAnds() int { return len(g.nodes) - 1 - len(g.pis) }

// NumInputs returns the number of inputs (primary plus key).
func (g *AIG) NumInputs() int { return len(g.pis) }

// NumOutputs returns the number of primary outputs.
func (g *AIG) NumOutputs() int { return len(g.pos) }

// NumKeyInputs returns the number of inputs flagged as key inputs.
func (g *AIG) NumKeyInputs() int {
	n := 0
	for _, k := range g.isKey {
		if k {
			n++
		}
	}
	return n
}

// AddInput appends a primary input with the given name and returns its literal.
func (g *AIG) AddInput(name string) Lit {
	return g.addInput(name, false)
}

// AddKeyInput appends a key input with the given name and returns its
// literal. Key inputs are ordinary inputs structurally but are flagged so
// that attacks and locality extraction can identify them, matching the
// standard logic-locking threat model in which key ports are known.
func (g *AIG) AddKeyInput(name string) Lit {
	return g.addInput(name, true)
}

func (g *AIG) addInput(name string, key bool) Lit {
	id := len(g.nodes)
	g.nodes = append(g.nodes, node{kind: KindInput, level: 0})
	g.pis = append(g.pis, id)
	g.piNames = append(g.piNames, name)
	g.isKey = append(g.isKey, key)
	return MakeLit(id, false)
}

// AddOutput appends a primary output driven by lit.
func (g *AIG) AddOutput(lit Lit, name string) {
	if lit.Node() >= len(g.nodes) {
		panic(fmt.Sprintf("aig: output literal %v references unknown node", lit))
	}
	g.pos = append(g.pos, lit)
	g.poNames = append(g.poNames, name)
}

// SetOutput redirects output index i to drive lit.
func (g *AIG) SetOutput(i int, lit Lit) { g.pos[i] = lit }

// Output returns the literal driving output i.
func (g *AIG) Output(i int) Lit { return g.pos[i] }

// OutputName returns the name of output i.
func (g *AIG) OutputName(i int) string { return g.poNames[i] }

// Input returns the literal of input i (in creation order).
func (g *AIG) Input(i int) Lit { return MakeLit(g.pis[i], false) }

// InputName returns the name of input i.
func (g *AIG) InputName(i int) string { return g.piNames[i] }

// InputIsKey reports whether input i is a key input.
func (g *AIG) InputIsKey(i int) bool { return g.isKey[i] }

// InputIndexOfNode returns the input index for a node ID, or -1.
func (g *AIG) InputIndexOfNode(id int) int {
	for i, p := range g.pis {
		if p == id {
			return i
		}
	}
	return -1
}

// IsAnd reports whether node id is an AND node.
func (g *AIG) IsAnd(id int) bool { return g.nodes[id].kind == KindAnd }

// IsInput reports whether node id is an input node.
func (g *AIG) IsInput(id int) bool { return g.nodes[id].kind == KindInput }

// IsConst reports whether node id is the constant node.
func (g *AIG) IsConst(id int) bool { return g.nodes[id].kind == KindConst }

// Kind returns the kind of node id.
func (g *AIG) Kind(id int) Kind { return g.nodes[id].kind }

// Fanins returns the two fanin literals of an AND node.
func (g *AIG) Fanins(id int) (Lit, Lit) {
	n := &g.nodes[id]
	return n.fanin0, n.fanin1
}

// Level returns the logic level (depth) of node id; inputs are level 0.
func (g *AIG) Level(id int) int { return int(g.nodes[id].level) }

// NumLevels returns the depth of the AIG: the maximum output level.
func (g *AIG) NumLevels() int {
	max := 0
	for _, po := range g.pos {
		if l := g.Level(po.Node()); l > max {
			max = l
		}
	}
	return max
}

func strashKey(a, b Lit) uint64 { return uint64(a)<<32 | uint64(b) }

// And returns a literal implementing a AND b. Trivial cases are folded
// (constants, equal or complementary operands) and structural hashing
// reuses an existing node when one computes the same function of the same
// literals. Fanins are ordered canonically so AND(a,b) == AND(b,a).
func (g *AIG) And(a, b Lit) Lit {
	// Constant and trivial simplifications.
	switch {
	case a == False || b == False || a == b.Not():
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	if g.strash == nil {
		g.rebuildStrash()
	}
	key := strashKey(a, b)
	if id, ok := g.strash[key]; ok {
		return MakeLit(id, false)
	}
	id := len(g.nodes)
	lv := g.nodes[a.Node()].level
	if l1 := g.nodes[b.Node()].level; l1 > lv {
		lv = l1
	}
	g.nodes = append(g.nodes, node{fanin0: a, fanin1: b, kind: KindAnd, level: lv + 1})
	g.strash[key] = id
	return MakeLit(id, false)
}

// Or returns a literal implementing a OR b.
func (g *AIG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a literal implementing a XOR b, built from three AND nodes
// (unless simplification applies).
func (g *AIG) Xor(a, b Lit) Lit {
	// (a & !b) | (!a & b)
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Xnor returns a literal implementing a XNOR b.
func (g *AIG) Xnor(a, b Lit) Lit { return g.Xor(a, b).Not() }

// Mux returns s ? t : e.
func (g *AIG) Mux(s, t, e Lit) Lit {
	return g.Or(g.And(s, t), g.And(s.Not(), e))
}

// AndN reduces a list of literals by AND, building a balanced tree.
func (g *AIG) AndN(ls []Lit) Lit {
	switch len(ls) {
	case 0:
		return True
	case 1:
		return ls[0]
	}
	mid := len(ls) / 2
	return g.And(g.AndN(ls[:mid]), g.AndN(ls[mid:]))
}

// OrN reduces a list of literals by OR, building a balanced tree.
func (g *AIG) OrN(ls []Lit) Lit {
	inv := make([]Lit, len(ls))
	for i, l := range ls {
		inv[i] = l.Not()
	}
	return g.AndN(inv).Not()
}

// FanoutCountsInto is the scratch-reusing variant of FanoutCounts: the
// buffer is resized (reallocating only when capacity is short), cleared,
// filled, and returned.
//
//almost:hotpath
func (g *AIG) FanoutCountsInto(counts []int) []int {
	if cap(counts) < len(g.nodes) {
		counts = make([]int, len(g.nodes))
	}
	counts = counts[:len(g.nodes)]
	for i := range counts {
		counts[i] = 0
	}
	return g.fanoutCountsInto(counts)
}

// FanoutCounts returns, for every node, the number of fanout references
// from AND nodes and outputs.
func (g *AIG) FanoutCounts() []int {
	return g.fanoutCountsInto(make([]int, len(g.nodes)))
}

//almost:hotpath
func (g *AIG) fanoutCountsInto(counts []int) []int {
	for id := range g.nodes {
		if g.nodes[id].kind != KindAnd {
			continue
		}
		counts[g.nodes[id].fanin0.Node()]++
		counts[g.nodes[id].fanin1.Node()]++
	}
	for _, po := range g.pos {
		counts[po.Node()]++
	}
	return counts
}

// Fanouts returns, for every node, the IDs of AND nodes that reference it.
// Output references are not included; use FanoutCounts for totals.
func (g *AIG) Fanouts() [][]int {
	fo := make([][]int, len(g.nodes))
	for id := range g.nodes {
		if g.nodes[id].kind != KindAnd {
			continue
		}
		f0 := g.nodes[id].fanin0.Node()
		f1 := g.nodes[id].fanin1.Node()
		fo[f0] = append(fo[f0], id)
		if f1 != f0 {
			fo[f1] = append(fo[f1], id)
		}
	}
	return fo
}

// IsPONode reports whether any primary output is driven by node id.
func (g *AIG) IsPONode(id int) bool {
	for _, po := range g.pos {
		if po.Node() == id {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the AIG. The structural-hashing table is
// not copied eagerly: it is rebuilt from the node array on the first And
// call on the copy (see rebuildStrash). This makes Clone cheap — O(nodes)
// slice copies with no map traffic — which matters when handing a private
// copy to every worker of a concurrent evaluator, where most copies are
// only ever read.
func (g *AIG) Clone() *AIG {
	return &AIG{
		nodes:   append([]node(nil), g.nodes...),
		pis:     append([]int(nil), g.pis...),
		pos:     append([]Lit(nil), g.pos...),
		piNames: append([]string(nil), g.piNames...),
		poNames: append([]string(nil), g.poNames...),
		isKey:   append([]bool(nil), g.isKey...),
	}
}

// Generation returns the graph's reset counter. Two observations of the
// same *AIG with equal Generation and NumNodes are guaranteed to expose
// the same nodes (the graph is append-only between Resets), which is the
// invariant scratch/arena caches key on.
func (g *AIG) Generation() uint64 { return g.gen }

// Reset clears the graph back to the empty state (constant node only),
// retaining all allocated storage — node array, interface slices, and the
// structural-hashing table's buckets — for reuse. It is the recycling
// primitive behind arena-backed synthesis: rebuilding into a Reset graph
// performs no steady-state allocations once capacities have warmed up.
//
// The caller must own the graph exclusively: any outstanding reference
// (including a SimScratch that scheduled it) observes the bumped
// generation and rebuilds, but concurrent readers would race.
func (g *AIG) Reset() {
	g.gen++
	g.nodes = append(g.nodes[:0], node{kind: KindConst})
	g.pis = g.pis[:0]
	g.pos = g.pos[:0]
	g.piNames = g.piNames[:0]
	g.poNames = g.poNames[:0]
	g.isKey = g.isKey[:0]
	if g.strash == nil {
		g.strash = make(map[uint64]int)
	} else {
		clear(g.strash)
	}
}

// rebuildStrash reconstructs the structural-hashing table from the node
// array. The graph is append-only and fanins are canonically ordered, so
// the table is a pure function of the nodes; the first node wins on a
// duplicate key, exactly as incremental insertion would have behaved.
func (g *AIG) rebuildStrash() {
	g.strash = make(map[uint64]int, len(g.nodes))
	for id := range g.nodes {
		n := &g.nodes[id]
		if n.kind != KindAnd {
			continue
		}
		k := strashKey(n.fanin0, n.fanin1)
		if _, ok := g.strash[k]; !ok {
			g.strash[k] = id
		}
	}
}

// Rebuilder incrementally copies one AIG into a fresh one, tracking the
// literal mapping. Synthesis transforms use it to apply substitutions:
// copy nodes in topological order, overriding the mapping where the
// transform chose a different implementation. Dangling logic is dropped
// automatically because only logic reachable from mapped outputs is
// recreated by CopyCone.
type Rebuilder struct {
	Src *AIG
	Dst *AIG
	m   []Lit // mapping from src node ID to dst literal; ^0 = unmapped
}

const unmapped = ^Lit(0)

// NewRebuilder creates a rebuilder with all inputs pre-mapped in order.
func NewRebuilder(src *AIG) *Rebuilder {
	rb := &Rebuilder{}
	rb.ResetInto(src, New())
	return rb
}

// Reset re-targets the rebuilder at src with a fresh destination graph,
// reusing the mapping slice's storage. Equivalent to *rb = *NewRebuilder(src)
// minus the per-pass mapping allocation; use ResetInto to also recycle
// destination-graph storage.
func (rb *Rebuilder) Reset(src *AIG) { rb.ResetInto(src, New()) }

// ResetInto re-targets the rebuilder at src, recycling dst (which is
// Reset and must be exclusively owned by the caller) as the destination.
// The rebuilder's mapping slice is reused, so a rebuild pass over a
// warmed rebuilder and recycled graph performs no steady-state
// allocations. The previous destination is untouched — it has usually
// escaped as a pass's result.
//
//almost:hotpath
func (rb *Rebuilder) ResetInto(src, dst *AIG) {
	dst.Reset()
	rb.Src, rb.Dst = src, dst
	if cap(rb.m) < len(src.nodes) {
		rb.m = make([]Lit, len(src.nodes))
	}
	rb.m = rb.m[:len(src.nodes)]
	for i := range rb.m {
		rb.m[i] = unmapped
	}
	rb.m[0] = False
	for i, id := range src.pis {
		var l Lit
		if src.isKey[i] {
			l = dst.AddKeyInput(src.piNames[i])
		} else {
			l = dst.AddInput(src.piNames[i])
		}
		rb.m[id] = l
	}
}

// Map overrides the destination literal for src node id.
func (rb *Rebuilder) Map(id int, l Lit) { rb.m[id] = l }

// Mapped reports whether src node id has a destination literal.
func (rb *Rebuilder) Mapped(id int) bool { return rb.m[id] != unmapped }

// LitOf translates a source literal through the mapping, copying the cone
// on demand.
func (rb *Rebuilder) LitOf(l Lit) Lit {
	return rb.CopyCone(Lit(l &^ 1)).NotIf(l.Neg())
}

// CopyCone recursively copies the cone of src literal l into the
// destination, reusing already-mapped nodes, and returns the destination
// literal.
func (rb *Rebuilder) CopyCone(l Lit) Lit {
	id := l.Node()
	if rb.m[id] == unmapped {
		n := &rb.Src.nodes[id]
		if n.kind != KindAnd {
			panic("aig: unmapped non-AND node in CopyCone")
		}
		a := rb.CopyCone(Lit(n.fanin0 &^ 1)).NotIf(n.fanin0.Neg())
		b := rb.CopyCone(Lit(n.fanin1 &^ 1)).NotIf(n.fanin1.Neg())
		rb.m[id] = rb.Dst.And(a, b)
	}
	return rb.m[id].NotIf(l.Neg())
}

// Finish copies all outputs and returns the destination AIG.
func (rb *Rebuilder) Finish() *AIG {
	for i, po := range rb.Src.pos {
		rb.Dst.AddOutput(rb.LitOf(po), rb.Src.poNames[i])
	}
	return rb.Dst
}

// Cleanup returns a copy of the AIG with dangling nodes removed and nodes
// renumbered in topological order.
func (g *AIG) Cleanup() *AIG {
	return NewRebuilder(g).Finish()
}

// TopoOrder returns the IDs of all AND nodes reachable from outputs, in
// topological (fanin-before-fanout) order. Because the graph is
// append-only, ascending ID order is topological; this filters to the
// live cone.
func (g *AIG) TopoOrder() []int {
	live := make([]bool, len(g.nodes))
	return g.topoOrderInto(live, nil)
}

// topoOrderInto computes TopoOrder using caller-provided buffers: live
// must be a zeroed []bool of NumNodes, order is appended to (pass a
// reused slice truncated to zero length). Fanin IDs are always smaller
// than fanout IDs in an append-only AIG, so liveness propagates in one
// descending sweep with no recursion.
//
//almost:hotpath
func (g *AIG) topoOrderInto(live []bool, order []int) []int {
	for _, po := range g.pos {
		live[po.Node()] = true
	}
	for id := len(g.nodes) - 1; id >= 1; id-- {
		if live[id] && g.nodes[id].kind == KindAnd {
			live[g.nodes[id].fanin0.Node()] = true
			live[g.nodes[id].fanin1.Node()] = true
		}
	}
	for id := 1; id < len(g.nodes); id++ {
		if live[id] && g.nodes[id].kind == KindAnd {
			order = append(order, id) //almost:nolint hotpathalloc // appends into the caller's recycled order buffer
		}
	}
	return order
}

// TopoOrderInto is the scratch-reusing variant of TopoOrder: live is
// resized (reallocating only when capacity is short) and cleared, and
// the order is appended into order[:0]. It returns the resized live
// buffer and the order for the caller to retain for the next call.
//
//almost:hotpath
func (g *AIG) TopoOrderInto(live []bool, order []int) ([]bool, []int) {
	if cap(live) < len(g.nodes) {
		live = make([]bool, len(g.nodes))
	}
	live = live[:len(g.nodes)]
	for i := range live {
		live[i] = false
	}
	return live, g.topoOrderInto(live, order[:0])
}

// Stats summarizes an AIG for reporting.
type Stats struct {
	Inputs, KeyInputs, Outputs, Ands, Levels int
}

// Stats returns summary statistics.
func (g *AIG) Stats() Stats {
	return Stats{
		Inputs:    g.NumInputs() - g.NumKeyInputs(),
		KeyInputs: g.NumKeyInputs(),
		Outputs:   g.NumOutputs(),
		Ands:      g.NumAnds(),
		Levels:    g.NumLevels(),
	}
}

// String implements fmt.Stringer with a one-line summary.
func (g *AIG) String() string {
	s := g.Stats()
	return fmt.Sprintf("aig{pi=%d key=%d po=%d and=%d lev=%d}",
		s.Inputs, s.KeyInputs, s.Outputs, s.Ands, s.Levels)
}

// KeyInputIndices returns the input indices flagged as key inputs, sorted.
func (g *AIG) KeyInputIndices() []int {
	return g.KeyInputIndicesInto(nil)
}

// KeyInputIndicesInto is the scratch-reusing form of KeyInputIndices:
// the indices are written into dst (grown only when capacity is short)
// and returned. The flag slice is scanned in input order, so the result
// is already sorted.
//
//almost:hotpath
func (g *AIG) KeyInputIndicesInto(dst []int) []int {
	n := 0
	for _, k := range g.isKey {
		if k {
			n++
		}
	}
	if cap(dst) < n {
		dst = make([]int, 0, n)
	}
	dst = dst[:0]
	for i, k := range g.isKey {
		if k {
			//almost:nolint hotpathalloc // appends into the cap-reserved buffer grown above
			dst = append(dst, i)
		}
	}
	return dst
}
