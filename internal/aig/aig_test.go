package aig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLitPacking(t *testing.T) {
	l := MakeLit(7, true)
	if l.Node() != 7 || !l.Neg() {
		t.Fatalf("MakeLit(7,true) = %v", l)
	}
	if l.Not().Neg() {
		t.Fatalf("Not did not clear complement")
	}
	if l.Not().Node() != 7 {
		t.Fatalf("Not changed node")
	}
	if l.NotIf(false) != l {
		t.Fatalf("NotIf(false) changed literal")
	}
	if l.NotIf(true) != l.Not() {
		t.Fatalf("NotIf(true) != Not()")
	}
}

func TestConstLits(t *testing.T) {
	if False.Not() != True || True.Not() != False {
		t.Fatalf("constant literal complement broken")
	}
}

func TestAndTrivialCases(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	if got := g.And(a, False); got != False {
		t.Errorf("a AND 0 = %v, want False", got)
	}
	if got := g.And(a, True); got != a {
		t.Errorf("a AND 1 = %v, want a", got)
	}
	if got := g.And(a, a); got != a {
		t.Errorf("a AND a = %v, want a", got)
	}
	if got := g.And(a, a.Not()); got != False {
		t.Errorf("a AND !a = %v, want False", got)
	}
	if g.NumAnds() != 0 {
		t.Errorf("trivial cases created %d AND nodes", g.NumAnds())
	}
}

func TestStructuralHashing(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	n1 := g.And(a, b)
	n2 := g.And(b, a)
	if n1 != n2 {
		t.Fatalf("commutative strash failed: %v vs %v", n1, n2)
	}
	n3 := g.And(a.Not(), b)
	if n3 == n1 {
		t.Fatalf("different function hashed to same node")
	}
	if g.NumAnds() != 2 {
		t.Fatalf("expected 2 AND nodes, got %d", g.NumAnds())
	}
}

func TestXorTruth(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.Xor(a, b), "x")
	for _, tc := range []struct {
		a, b, want bool
	}{{false, false, false}, {true, false, true}, {false, true, true}, {true, true, false}} {
		out := g.EvalSingle([]bool{tc.a, tc.b})
		if out[0] != tc.want {
			t.Errorf("xor(%v,%v) = %v, want %v", tc.a, tc.b, out[0], tc.want)
		}
	}
}

func TestXnorMuxTruth(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	s := g.AddInput("s")
	g.AddOutput(g.Xnor(a, b), "xn")
	g.AddOutput(g.Mux(s, a, b), "m")
	for i := 0; i < 8; i++ {
		av, bv, sv := i&1 == 1, i&2 == 2, i&4 == 4
		out := g.EvalSingle([]bool{av, bv, sv})
		if out[0] != (av == bv) {
			t.Errorf("xnor(%v,%v) = %v", av, bv, out[0])
		}
		want := bv
		if sv {
			want = av
		}
		if out[1] != want {
			t.Errorf("mux(%v,%v,%v) = %v, want %v", sv, av, bv, out[1], want)
		}
	}
}

func TestAndNOrN(t *testing.T) {
	g := New()
	var ins []Lit
	for i := 0; i < 5; i++ {
		ins = append(ins, g.AddInput("i"))
	}
	g.AddOutput(g.AndN(ins), "and")
	g.AddOutput(g.OrN(ins), "or")
	for mask := 0; mask < 32; mask++ {
		in := make([]bool, 5)
		all, any := true, false
		for i := range in {
			in[i] = mask&(1<<i) != 0
			all = all && in[i]
			any = any || in[i]
		}
		out := g.EvalSingle(in)
		if out[0] != all || out[1] != any {
			t.Fatalf("mask %05b: and=%v or=%v", mask, out[0], out[1])
		}
	}
	if g.AndN(nil) != True {
		t.Errorf("AndN(nil) != True")
	}
	if g.OrN(nil) != False {
		t.Errorf("OrN(nil) != False")
	}
}

func TestLevels(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	n1 := g.And(a, b)
	n2 := g.And(n1, c)
	g.AddOutput(n2, "o")
	if g.Level(a.Node()) != 0 {
		t.Errorf("input level != 0")
	}
	if g.Level(n1.Node()) != 1 || g.Level(n2.Node()) != 2 {
		t.Errorf("levels wrong: %d %d", g.Level(n1.Node()), g.Level(n2.Node()))
	}
	if g.NumLevels() != 2 {
		t.Errorf("NumLevels = %d, want 2", g.NumLevels())
	}
}

func TestKeyInputs(t *testing.T) {
	g := New()
	g.AddInput("a")
	g.AddKeyInput("k0")
	g.AddInput("b")
	g.AddKeyInput("k1")
	if g.NumKeyInputs() != 2 {
		t.Fatalf("NumKeyInputs = %d", g.NumKeyInputs())
	}
	idx := g.KeyInputIndices()
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("KeyInputIndices = %v", idx)
	}
	if g.InputIsKey(0) || !g.InputIsKey(1) {
		t.Fatalf("InputIsKey flags wrong")
	}
}

func TestCleanupRemovesDangling(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	used := g.And(a, b)
	g.And(a.Not(), b) // dangling
	g.AddOutput(used, "o")
	if g.NumAnds() != 2 {
		t.Fatalf("setup: %d ANDs", g.NumAnds())
	}
	c := g.Cleanup()
	if c.NumAnds() != 1 {
		t.Fatalf("Cleanup left %d ANDs, want 1", c.NumAnds())
	}
	if !EquivalentBySim(g, c, rand.New(rand.NewSource(1)), 4) {
		t.Fatalf("Cleanup changed function")
	}
}

func TestCleanupPreservesInterface(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	k := g.AddKeyInput("k")
	g.AddOutput(g.Xor(a, k), "o")
	c := g.Cleanup()
	if c.NumInputs() != 2 || c.NumKeyInputs() != 1 {
		t.Fatalf("interface changed: %v", c.Stats())
	}
	if c.InputName(0) != "a" || c.InputName(1) != "k" {
		t.Fatalf("names changed: %q %q", c.InputName(0), c.InputName(1))
	}
	if c.OutputName(0) != "o" {
		t.Fatalf("output name changed")
	}
}

func TestRebuilderSubstitution(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	n := g.And(a, b)
	g.AddOutput(n, "o")
	// Substitute the AND node with OR.
	rb := NewRebuilder(g)
	na := rb.LitOf(a)
	nb := rb.LitOf(b)
	rb.Map(n.Node(), rb.Dst.Or(na, nb))
	h := rb.Finish()
	out := h.EvalSingle([]bool{true, false})
	if !out[0] {
		t.Fatalf("substituted OR not effective")
	}
}

func TestSimulate64MatchesEvalSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomAIG(rng, 8, 4, 40)
	for trial := 0; trial < 20; trial++ {
		in := make([]bool, g.NumInputs())
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		single := g.EvalSingle(in)
		words := make([]uint64, len(in))
		for i, b := range in {
			if b {
				words[i] = ^uint64(0)
			}
		}
		out := g.Simulate64(words)
		for i := range single {
			bulk := out[i]&1 == 1
			if single[i] != bulk || (out[i] != 0 && out[i] != ^uint64(0)) {
				t.Fatalf("trial %d output %d: single=%v word=%x", trial, i, single[i], out[i])
			}
		}
	}
}

func TestSimulateWordsMatchesSimulate64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomAIG(rng, 6, 3, 30)
	const w = 3
	in := make([][]uint64, g.NumInputs())
	for i := range in {
		in[i] = make([]uint64, w)
		for k := range in[i] {
			in[i][k] = rng.Uint64()
		}
	}
	multi := g.SimulateWords(in, w)
	for k := 0; k < w; k++ {
		col := make([]uint64, g.NumInputs())
		for i := range col {
			col[i] = in[i][k]
		}
		single := g.Simulate64(col)
		for o := range single {
			if single[o] != multi[o][k] {
				t.Fatalf("word %d output %d mismatch", k, o)
			}
		}
	}
}

func TestFanoutCounts(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	n1 := g.And(a, b)
	n2 := g.And(n1, a.Not())
	g.AddOutput(n1, "o1")
	g.AddOutput(n2, "o2")
	counts := g.FanoutCounts()
	if counts[a.Node()] != 2 {
		t.Errorf("fanout(a) = %d, want 2", counts[a.Node()])
	}
	if counts[n1.Node()] != 2 { // feeds n2 and o1
		t.Errorf("fanout(n1) = %d, want 2", counts[n1.Node()])
	}
	if counts[n2.Node()] != 1 {
		t.Errorf("fanout(n2) = %d, want 1", counts[n2.Node()])
	}
}

func TestTopoOrderIsTopological(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomAIG(rng, 10, 5, 80)
	order := g.TopoOrder()
	pos := map[int]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, id := range order {
		f0, f1 := g.Fanins(id)
		for _, f := range []Lit{f0, f1} {
			if g.IsAnd(f.Node()) {
				if p, ok := pos[f.Node()]; !ok || p >= pos[id] {
					t.Fatalf("node %d fanin %d not earlier", id, f.Node())
				}
			}
		}
	}
}

func TestKHopNeighborhood(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	n1 := g.And(a, b)
	n2 := g.And(n1, c)
	n3 := g.And(n2, a)
	g.AddOutput(n3, "o")
	fo := g.Fanouts()
	nb0 := g.KHopNeighborhood(n2.Node(), 0, fo)
	if len(nb0) != 1 || nb0[0] != n2.Node() {
		t.Fatalf("0-hop = %v", nb0)
	}
	nb1 := g.KHopNeighborhood(n2.Node(), 1, fo)
	want := map[int]bool{n1.Node(): true, c.Node(): true, n3.Node(): true, n2.Node(): true}
	if len(nb1) != len(want) {
		t.Fatalf("1-hop = %v, want %v", nb1, want)
	}
	for _, id := range nb1 {
		if !want[id] {
			t.Fatalf("unexpected node %d in 1-hop", id)
		}
	}
}

func TestTFICone(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	n1 := g.And(a, b)
	n2 := g.And(c, a)
	g.AddOutput(n1, "o1")
	g.AddOutput(n2, "o2")
	cone := g.TFICone(n1)
	if len(cone) != 3 { // a, b, n1
		t.Fatalf("TFI cone = %v", cone)
	}
}

func TestMFFC(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	n1 := g.And(a, b)  // only feeds n2
	n2 := g.And(n1, c) // root
	shared := g.And(a, c)
	n3 := g.And(shared, b) // other output keeps shared alive
	g.AddOutput(n2, "o1")
	g.AddOutput(n3, "o2")
	fc := g.FanoutCounts()
	m := g.MFFC(n2.Node(), fc)
	if len(m) != 2 { // n1, n2
		t.Fatalf("MFFC = %v, want {n1,n2}", m)
	}
	m3 := g.MFFC(n3.Node(), fc)
	if len(m3) != 2 { // shared + n3: shared only feeds n3
		t.Fatalf("MFFC(n3) = %v", m3)
	}
}

func TestWindowTT(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	x := g.Xor(a, b)
	g.AddOutput(x, "o")
	tt, ok := g.WindowTT(x.Node(), []int{a.Node(), b.Node()})
	if !ok {
		t.Fatalf("window not closed")
	}
	if x.Neg() {
		tt = ^tt & TTMask(2)
	}
	if tt != 0x6 { // XOR truth table on 2 vars: 0110
		t.Fatalf("tt = %x, want 6", tt)
	}
	// Window with a missing leaf must fail.
	if _, ok := g.WindowTT(x.Node(), []int{a.Node()}); ok {
		t.Fatalf("unclosed window accepted")
	}
}

func TestTTMask(t *testing.T) {
	if TTMask(2) != 0xF || TTMask(3) != 0xFF || TTMask(6) != ^uint64(0) {
		t.Fatalf("TTMask wrong: %x %x %x", TTMask(2), TTMask(3), TTMask(6))
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.And(a, b), "o")
	c := g.Clone()
	c.And(a.Not(), b.Not())
	if g.NumNodes() == c.NumNodes() {
		t.Fatalf("clone shares node storage")
	}
	if !EquivalentBySim(g, c, rand.New(rand.NewSource(2)), 2) {
		t.Fatalf("clone changed function")
	}
}

func TestStatsAndString(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	k := g.AddKeyInput("k")
	g.AddOutput(g.And(a, k), "o")
	s := g.Stats()
	if s.Inputs != 1 || s.KeyInputs != 1 || s.Outputs != 1 || s.Ands != 1 || s.Levels != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if g.String() == "" {
		t.Fatalf("empty String()")
	}
}

// randomAIG builds a random connected AIG for property testing.
func randomAIG(rng *rand.Rand, nIn, nOut, nAnd int) *AIG {
	g := New()
	lits := make([]Lit, 0, nIn+nAnd)
	for i := 0; i < nIn; i++ {
		lits = append(lits, g.AddInput("i"))
	}
	for len(lits) < nIn+nAnd {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		l := g.And(a, b)
		if g.IsAnd(l.Node()) {
			lits = append(lits, l)
		}
	}
	for i := 0; i < nOut; i++ {
		g.AddOutput(lits[len(lits)-1-i].NotIf(rng.Intn(2) == 1), "o")
	}
	return g
}

// Property: Cleanup never changes the simulated function and never grows
// the AND count.
func TestCleanupPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAIG(rng, 5+rng.Intn(5), 1+rng.Intn(4), 10+rng.Intn(60))
		c := g.Cleanup()
		if c.NumAnds() > g.NumAnds() {
			return false
		}
		return EquivalentBySim(g, c, rng, 4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: And is commutative and idempotent at the literal level.
func TestAndAlgebraQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		var lits []Lit
		for i := 0; i < 4; i++ {
			lits = append(lits, g.AddInput("i"))
		}
		a := lits[rng.Intn(4)].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(4)].NotIf(rng.Intn(2) == 1)
		if g.And(a, b) != g.And(b, a) {
			return false
		}
		if g.And(a, a) != a {
			return false
		}
		return g.And(a, a.Not()) == False
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: signatures of a node equal simulation of that node's function.
func TestSignaturesConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomAIG(rng, 6, 2, 30)
	sigRng := rand.New(rand.NewSource(99))
	sigs := g.Signatures(sigRng, 2)
	// Outputs must match SimulateWords with the same input stream.
	inRng := rand.New(rand.NewSource(99))
	in := make([][]uint64, g.NumInputs())
	for i := range in {
		in[i] = []uint64{inRng.Uint64(), inRng.Uint64()}
	}
	for o := 0; o < g.NumOutputs(); o++ {
		po := g.Output(o)
		for k := 0; k < 2; k++ {
			want := sigs[po.Node()][k]
			if po.Neg() {
				want = ^want
			}
			got := g.SimulateWords(in, 2)[o][k]
			if got != want {
				t.Fatalf("output %d word %d: %x vs %x", o, k, got, want)
			}
		}
	}
}

func BenchmarkSimulate64(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := randomAIG(rng, 32, 16, 2000)
	in := RandomPatterns(rng, g.NumInputs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Simulate64(in)
	}
}

func BenchmarkAndStrash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := New()
		a := g.AddInput("a")
		c := g.AddInput("b")
		cur := a
		for j := 0; j < 500; j++ {
			cur = g.And(cur, c.NotIf(j%2 == 0))
			c = cur.Not()
		}
	}
}
