package aig

import "sort"

// KHopNeighborhood returns the node IDs within k undirected hops of the
// seed node, following both fanin and fanout edges. The result is sorted
// and always contains the seed. This is the "locality" extraction used by
// OMLA-style attacks: the sub-circuit structure around a key gate.
func (g *AIG) KHopNeighborhood(seed, k int, fanouts [][]int) []int {
	if fanouts == nil {
		fanouts = g.Fanouts()
	}
	dist := map[int]int{seed: 0}
	frontier := []int{seed}
	for d := 0; d < k; d++ {
		var next []int
		for _, id := range frontier {
			var adj []int
			if g.nodes[id].kind == KindAnd {
				adj = append(adj, g.nodes[id].fanin0.Node(), g.nodes[id].fanin1.Node())
			}
			adj = append(adj, fanouts[id]...)
			for _, a := range adj {
				if _, ok := dist[a]; !ok {
					dist[a] = d + 1
					next = append(next, a)
				}
			}
		}
		frontier = next
	}
	ids := make([]int, 0, len(dist))
	for id := range dist {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// TFICone returns the transitive fanin cone of literal root (node IDs,
// sorted), including root's node and stopping at inputs/constants.
func (g *AIG) TFICone(root Lit) []int {
	seen := map[int]bool{}
	var walk func(id int)
	walk = func(id int) {
		if seen[id] {
			return
		}
		seen[id] = true
		if g.nodes[id].kind == KindAnd {
			walk(g.nodes[id].fanin0.Node())
			walk(g.nodes[id].fanin1.Node())
		}
	}
	walk(root.Node())
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// MFFC returns the maximum fanout-free cone of node root: the set of AND
// nodes (including root) whose every fanout path leads back into the
// cone. Removing the root would let exactly these nodes be deleted.
// fanoutCounts must come from FanoutCounts on the same graph.
func (g *AIG) MFFC(root int, fanoutCounts []int) []int {
	if g.nodes[root].kind != KindAnd {
		return nil
	}
	inCone := map[int]bool{root: true}
	// Walk fanins; a fanin joins the cone if all its fanouts are in the cone.
	// We approximate by reference counting: simulate deleting the root.
	ref := map[int]int{}
	var collect func(id int)
	collect = func(id int) {
		n := &g.nodes[id]
		for _, f := range []Lit{n.fanin0, n.fanin1} {
			fid := f.Node()
			if g.nodes[fid].kind != KindAnd {
				continue
			}
			ref[fid]++
			if ref[fid] == fanoutCounts[fid] && !inCone[fid] {
				inCone[fid] = true
				collect(fid)
			}
		}
	}
	collect(root)
	ids := make([]int, 0, len(inCone))
	for id := range inCone {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Window describes a cut-rooted sub-function: a root node, its leaf
// literals (inputs of the window), and the truth table of the root as a
// function of the leaves (up to 6 leaves, one uint64 word).
type Window struct {
	Root   int
	Leaves []Lit  // leaf literals, positive polarity node refs
	TT     uint64 // truth table over len(Leaves) variables
	Volume int    // number of AND nodes strictly inside the window
}

// ttVar returns the truth table of variable v among n variables.
func ttVar(v int) uint64 {
	// Standard projections for up to 6 variables.
	masks := [6]uint64{
		0xAAAAAAAAAAAAAAAA,
		0xCCCCCCCCCCCCCCCC,
		0xF0F0F0F0F0F0F0F0,
		0xFF00FF00FF00FF00,
		0xFFFF0000FFFF0000,
		0xFFFFFFFF00000000,
	}
	return masks[v]
}

// TTMask returns the mask of valid truth-table bits for n variables.
func TTMask(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << uint(n))) - 1
}

// WindowTT computes the truth table of root as a function of the given
// leaf nodes (at most 6). Every path from root must end at a leaf, the
// constant node, or be fully contained; otherwise ok is false.
func (g *AIG) WindowTT(root int, leaves []int) (tt uint64, ok bool) {
	if len(leaves) > 6 {
		return 0, false
	}
	idx := map[int]int{}
	for i, l := range leaves {
		idx[l] = i
	}
	memo := map[int]uint64{}
	var eval func(id int) (uint64, bool)
	eval = func(id int) (uint64, bool) {
		if i, isLeaf := idx[id]; isLeaf {
			return ttVar(i), true
		}
		if v, ok := memo[id]; ok {
			return v, true
		}
		n := &g.nodes[id]
		switch n.kind {
		case KindConst:
			return 0, true
		case KindInput:
			return 0, false // input that is not a leaf: window is not closed
		}
		a, ok0 := eval(n.fanin0.Node())
		if !ok0 {
			return 0, false
		}
		if n.fanin0.Neg() {
			a = ^a
		}
		b, ok1 := eval(n.fanin1.Node())
		if !ok1 {
			return 0, false
		}
		if n.fanin1.Neg() {
			b = ^b
		}
		v := a & b
		memo[id] = v
		return v, true
	}
	v, ok := eval(root)
	if !ok {
		return 0, false
	}
	return v & TTMask(len(leaves)), true
}
