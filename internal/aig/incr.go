package aig

import (
	"fmt"
	"sort"
)

// This file implements the dirty-region primitives behind incremental
// candidate evaluation (PR 8). The AIG is append-only between Resets, so
// a mutation's dirty region has a very regular shape: every node appended
// after a watermark, plus any outputs rewired by SetOutput. A Mark
// captures the watermark; Rollback truncates the graph back to it. The
// structural-hashing table is maintained incrementally across a rollback
// — entries for truncated nodes are deleted individually, so the buckets
// for the (typically much larger) clean prefix are reused as-is instead
// of being rebuilt, and And behaves bit-for-bit as it would on a freshly
// built copy of the truncated graph.

// Mark is a clean-state watermark of an AIG: everything at or above the
// recorded node/input/output counts is "dirty" (appended after the mark),
// as is any output whose driver was redirected since. A Mark is only
// meaningful on the graph that produced it and only until the graph's
// next Reset.
type Mark struct {
	gen    uint64
	shrink uint64
	nodes  int
	pis    int
	pos    int
	outs   []Lit // snapshot of the output literals at mark time
}

// Nodes returns the watermark node count: node IDs >= Nodes() are dirty.
func (m Mark) Nodes() int { return m.nodes }

// Inputs returns the watermark input count.
func (m Mark) Inputs() int { return m.pis }

// Outputs returns the watermark output count.
func (m Mark) Outputs() int { return m.pos }

// MarkClean records the current extent of the graph as clean. Mutations
// after the mark (appended nodes, rewired or added outputs) form the
// dirty region that Rollback undoes and the windowed transforms in
// internal/synth confine themselves to.
func (g *AIG) MarkClean() Mark {
	return g.MarkCleanInto(nil)
}

// MarkCleanInto is the scratch-reusing variant of MarkClean: the output
// snapshot is written into outs, which is grown (reallocated) only when
// its capacity is short. The returned Mark owns the buffer until the
// caller stops using the Mark.
//
//almost:hotpath
func (g *AIG) MarkCleanInto(outs []Lit) Mark {
	if cap(outs) < len(g.pos) {
		outs = make([]Lit, len(g.pos))
	}
	outs = outs[:len(g.pos)]
	copy(outs, g.pos)
	return Mark{
		gen:    g.gen,
		shrink: g.shrink,
		nodes:  len(g.nodes),
		pis:    len(g.pis),
		pos:    len(g.pos),
		outs:   outs,
	}
}

// Dirty reports whether the graph has changed since the mark: nodes,
// inputs, or outputs appended, or an output redirected.
func (m Mark) Dirty(g *AIG) bool {
	if m.gen != g.gen {
		return true
	}
	if len(g.nodes) != m.nodes || len(g.pis) != m.pis || len(g.pos) != m.pos {
		return true
	}
	for i, l := range m.outs {
		if g.pos[i] != l {
			return true
		}
	}
	return false
}

// DirtyOutputsInto appends to dst[:0] the indices of outputs that are
// dirty relative to the mark: outputs whose driver literal changed since
// the mark, plus outputs appended after it. The windowed transforms use
// this as the seed set for dirty-region traversal.
func (m Mark) DirtyOutputsInto(g *AIG, dst []int) []int {
	dst = dst[:0]
	for i, l := range m.outs {
		if g.pos[i] != l {
			dst = append(dst, i)
		}
	}
	for i := m.pos; i < len(g.pos); i++ {
		dst = append(dst, i)
	}
	return dst
}

// ShrinkSeq returns the graph's rollback counter. Together with
// Generation and NumNodes it keys delta-simulation state: two
// observations of the same *AIG with equal Generation, ShrinkSeq, and
// non-decreasing NumNodes expose the same node prefix, because between
// Resets and Rollbacks the graph is strictly append-only.
func (g *AIG) ShrinkSeq() uint64 { return g.shrink }

// Rollback truncates the graph back to the mark, undoing every mutation
// since MarkClean: appended nodes, inputs, and outputs are removed and
// redirected outputs are restored from the mark's snapshot. The
// structural-hashing table is maintained incrementally — only the
// truncated suffix's entries are deleted, preserving first-wins semantics
// for any duplicate keys, so a post-rollback And is bit-for-bit identical
// to one on a freshly built copy of the truncated graph.
//
// Rollback panics if the graph was Reset since the mark, or if the graph
// shrank below the mark (a rollback past an earlier rollback point).
// When nothing changed since the mark it is a no-op; otherwise it bumps
// the shrink counter, which invalidates any SimScratch delta state
// (SimScratch.TrimTo re-validates the clean prefix for exclusive owners).
//
//almost:hotpath
func (g *AIG) Rollback(m Mark) {
	if m.gen != g.gen {
		panic("aig: Rollback across Reset")
	}
	if m.nodes > len(g.nodes) || m.pis > len(g.pis) || m.pos > len(g.pos) {
		panic(fmt.Sprintf("aig: Rollback target (%d nodes, %d inputs, %d outputs) exceeds graph (%d, %d, %d)",
			m.nodes, m.pis, m.pos, len(g.nodes), len(g.pis), len(g.pos)))
	}
	if !m.Dirty(g) {
		return
	}
	if g.strash != nil {
		for id := m.nodes; id < len(g.nodes); id++ {
			n := &g.nodes[id]
			if n.kind != KindAnd {
				continue
			}
			k := strashKey(n.fanin0, n.fanin1)
			if hit, ok := g.strash[k]; ok && hit == id {
				delete(g.strash, k)
			}
		}
	}
	g.nodes = g.nodes[:m.nodes]
	g.pis = g.pis[:m.pis]
	g.piNames = g.piNames[:m.pis]
	g.isKey = g.isKey[:m.pis]
	g.pos = g.pos[:m.pos]
	g.poNames = g.poNames[:m.pos]
	copy(g.pos, m.outs)
	g.shrink++
}

// fnv64 constants (FNV-1a).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// StructuralDigest returns a 64-bit FNV-1a digest of the graph's exact
// structure: node kinds and fanin literals in ID order, input names and
// key flags, and output literals and names. Two graphs have equal
// digests iff (modulo hash collisions) they are node-for-node identical —
// the bit-for-bit identity invariant the incremental evaluation path is
// held to. Levels are derived state and excluded.
//
// The digest is O(nodes); incremental callers compute it per base (or in
// verification passes), never per candidate.
func (g *AIG) StructuralDigest() uint64 {
	h := uint64(fnvOffset)
	h = fnvU64(h, uint64(len(g.nodes)))
	h = fnvU64(h, uint64(len(g.pis)))
	h = fnvU64(h, uint64(len(g.pos)))
	for i, id := range g.pis {
		h = fnvU64(h, uint64(id))
		h = fnvStr(h, g.piNames[i])
		if g.isKey[i] {
			h = fnvU64(h, 1)
		} else {
			h = fnvU64(h, 0)
		}
	}
	for id := range g.nodes {
		n := &g.nodes[id]
		h = fnvU64(h, uint64(n.kind))
		if n.kind == KindAnd {
			h = fnvU64(h, uint64(n.fanin0)<<32|uint64(n.fanin1))
		}
	}
	for i, po := range g.pos {
		h = fnvU64(h, uint64(po))
		h = fnvStr(h, g.poNames[i])
	}
	return h
}

// RewriteCone re-expresses the transitive fanout of the target nodes by
// appending substituted copies — the append-only, cone-local counterpart
// of a whole-graph Rebuilder pass. For each affected node in ascending
// (topological) ID order it recomputes the AND of its substituted fanins
// via structural hashing; for a target node it additionally passes the
// recomputed literal through wrap, whose return value is what every
// consumer of the target sees. wrap may append nodes of its own (e.g. a
// key XOR). Outputs driven by rewritten nodes are redirected in place
// with SetOutput.
//
// fanouts must come from Fanouts() on the current graph (it is consulted
// only for the pre-existing nodes, so a base-graph index can be reused
// across many RewriteCone calls between mutations). Cost is
// O(|TFO(targets)|) plus the appended logic — independent of graph size —
// with O(|TFO|) transient allocations for the substitution map.
//
// Combined with MarkClean/Rollback this is the candidate-evaluation
// patch primitive: mark, rewrite a cone (say, insert key gates), score
// the patched graph, roll back, repeat — no clone, no full rebuild.
func (g *AIG) RewriteCone(targets []int, fanouts [][]int, wrap func(i int, nl Lit) Lit) {
	if len(targets) == 0 {
		return
	}
	tIndex := make(map[int]int, len(targets))
	for i, t := range targets {
		if t <= 0 || t >= len(g.nodes) {
			panic(fmt.Sprintf("aig: RewriteCone target %d out of range", t))
		}
		if _, dup := tIndex[t]; dup {
			panic(fmt.Sprintf("aig: RewriteCone duplicate target %d", t))
		}
		tIndex[t] = i
	}

	// Collect the affected set: the targets plus their transitive fanout
	// among pre-existing AND nodes, then order it ascending so the sweep
	// below sees substituted fanins before their consumers.
	affected := make([]int, 0, len(targets)*4)
	inSet := make(map[int]bool, len(targets)*4)
	for _, t := range targets {
		if !inSet[t] {
			inSet[t] = true
			affected = append(affected, t)
		}
	}
	for i := 0; i < len(affected); i++ {
		id := affected[i]
		if id >= len(fanouts) {
			continue
		}
		for _, fo := range fanouts[id] {
			if !inSet[fo] {
				inSet[fo] = true
				affected = append(affected, fo)
			}
		}
	}
	sort.Ints(affected)

	// Sweep: recompute each affected node over the substitution map. A
	// node whose fanins are unchanged strash-hits itself, so untouched
	// corners of the cone cost a map lookup and nothing else.
	repl := make(map[int]Lit, len(affected))
	sub := func(l Lit) Lit {
		if r, ok := repl[l.Node()]; ok {
			return r.NotIf(l.Neg())
		}
		return l
	}
	for _, id := range affected {
		n := &g.nodes[id]
		var nl Lit
		if n.kind == KindAnd {
			nl = g.And(sub(n.fanin0), sub(n.fanin1))
		} else {
			nl = MakeLit(id, false) // input target: nothing to recompute
		}
		if ti, isTarget := tIndex[id]; isTarget {
			nl = wrap(ti, nl)
		}
		if nl != MakeLit(id, false) {
			repl[id] = nl
		}
	}

	for i, po := range g.pos {
		if r, ok := repl[po.Node()]; ok {
			g.SetOutput(i, r.NotIf(po.Neg()))
		}
	}
}
