package aig

import (
	"math/rand"
	"testing"
)

// buildRandom constructs a deterministic pseudo-random AIG for the
// incremental tests: plenty of shared logic, complemented edges, and
// multiple outputs.
func buildRandom(rng *rand.Rand, nIn, nOut, nGates int) *AIG {
	g := New()
	lits := make([]Lit, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		lits = append(lits, g.AddInput("x"))
	}
	for len(lits) < nIn+nGates {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		nl := g.And(a, b)
		if nl.Node() >= g.NumInputs()+1 {
			lits = append(lits, nl)
		}
	}
	for i := 0; i < nOut; i++ {
		g.AddOutput(lits[len(lits)-1-i].NotIf(i%2 == 1), "o")
	}
	return g
}

// randomPatch appends a small dirty region: a few AND nodes over random
// existing literals, sometimes a fresh key input XORed in, and rewires a
// random output to the new logic.
func randomPatch(g *AIG, rng *rand.Rand) {
	pick := func() Lit {
		id := 1 + rng.Intn(g.NumNodes()-1)
		return MakeLit(id, rng.Intn(2) == 0)
	}
	nl := g.And(pick(), pick())
	for i := 0; i < 3; i++ {
		nl = g.And(nl.NotIf(rng.Intn(2) == 0), pick())
	}
	if rng.Intn(2) == 0 {
		k := g.AddKeyInput("kp")
		nl = g.Xor(nl, k)
	}
	g.SetOutput(rng.Intn(g.NumOutputs()), nl)
}

// TestMarkRollbackRestoresStructure checks that Rollback undoes an
// arbitrary patch exactly: digest, counts, and output literals all
// return to their marked values, and structural hashing afterwards
// behaves identically to a freshly built copy.
func TestMarkRollbackRestoresStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := buildRandom(rng, 8, 4, 60)
	want := g.StructuralDigest()
	twin := g.Clone()

	for round := 0; round < 20; round++ {
		m := g.MarkClean()
		if m.Dirty(g) {
			t.Fatalf("round %d: fresh mark reports dirty", round)
		}
		randomPatch(g, rng)
		if !m.Dirty(g) {
			t.Fatalf("round %d: patch not detected as dirty", round)
		}
		if g.StructuralDigest() == want {
			t.Fatalf("round %d: digest unchanged by patch", round)
		}
		g.Rollback(m)
		if got := g.StructuralDigest(); got != want {
			t.Fatalf("round %d: digest %x after rollback, want %x", round, got, want)
		}
		if m.Dirty(g) {
			t.Fatalf("round %d: dirty after rollback", round)
		}
	}

	// Post-rollback strash must behave exactly like a fresh graph's: the
	// same And calls produce the same literals on both.
	for i := 0; i < 200; i++ {
		a := MakeLit(1+rng.Intn(twin.NumNodes()-1), rng.Intn(2) == 0)
		b := MakeLit(1+rng.Intn(twin.NumNodes()-1), rng.Intn(2) == 0)
		la, lb := g.And(a, b), twin.And(a, b)
		if la != lb {
			t.Fatalf("And(%v,%v) = %v on rolled-back, %v on fresh", a, b, la, lb)
		}
	}
	if g.StructuralDigest() != twin.StructuralDigest() {
		t.Fatalf("digest diverged after identical post-rollback appends")
	}
}

// TestRollbackWithoutStrash covers the cloned-graph case: Clone does not
// copy the strash table, so Rollback must tolerate a nil table and the
// lazily rebuilt one must exclude truncated nodes.
func TestRollbackWithoutStrash(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := buildRandom(rng, 6, 2, 30)
	c := g.Clone() // strash nil
	m := c.MarkClean()
	x := c.And(c.Input(0), c.Input(1).Not())
	c.SetOutput(0, x)
	c.Rollback(m)
	if c.StructuralDigest() != g.StructuralDigest() {
		t.Fatalf("rollback on strash-less clone did not restore structure")
	}
	// The lazily rebuilt strash must not resurrect the truncated node.
	y := c.And(c.Input(0), c.Input(1).Not())
	z := g.And(g.Input(0), g.Input(1).Not())
	if y != z {
		t.Fatalf("post-rollback And %v != fresh-graph And %v", y, z)
	}
}

// TestRollbackNoOpWhenClean pins that a rollback with no changes does
// not bump the shrink counter (which would needlessly invalidate delta
// state).
func TestRollbackNoOpWhenClean(t *testing.T) {
	g := buildChain(5)
	m := g.MarkClean()
	before := g.ShrinkSeq()
	g.Rollback(m)
	if g.ShrinkSeq() != before {
		t.Fatalf("clean rollback bumped shrink seq")
	}
	g.And(g.Input(0), g.Input(1))
	g.Rollback(m)
	if g.ShrinkSeq() != before+1 {
		t.Fatalf("dirty rollback did not bump shrink seq")
	}
}

// TestDeltaSimulateMatchesFull drives the SimulateInto delta path
// through many patch/score/rollback cycles and pins every result to the
// allocating full-path oracle, including rounds where the inputs change
// (forcing the transparent fall-back).
func TestDeltaSimulateMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := buildRandom(rng, 10, 5, 120)
	var s SimScratch
	var dst []uint64

	in := RandomPatterns(rng, g.NumInputs())
	dst = g.SimulateInto(&s, dst, in)

	for round := 0; round < 40; round++ {
		m := g.MarkClean()
		randomPatch(g, rng)
		// Extend the input vector for any appended key inputs.
		for len(in) < g.NumInputs() {
			in = append(in, rng.Uint64())
		}
		if round%5 == 4 {
			in[rng.Intn(len(in))] = rng.Uint64() // clean-prefix input change: full fall-back
		}
		dst = g.SimulateInto(&s, dst, in)
		want := g.Simulate64(in)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("round %d output %d: delta %x != full %x", round, i, dst[i], want[i])
			}
		}
		g.Rollback(m)
		s.TrimTo(g, m.Nodes())
		in = in[:g.NumInputs()]

		// Post-rollback simulation of the base must also be exact.
		dst = g.SimulateInto(&s, dst, in)
		want = g.Simulate64(in)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("round %d base output %d: %x != %x", round, i, dst[i], want[i])
			}
		}
	}
}

// TestDeltaSimulateUsesSuffixOnly asserts the delta path really does
// skip the clean prefix: after a warm base simulation, a patched
// re-simulation must keep the recorded simSched watermark rather than
// restarting from zero.
func TestDeltaSimulateUsesSuffixOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := buildRandom(rng, 8, 3, 200)
	var s SimScratch
	in := RandomPatterns(rng, g.NumInputs())
	g.SimulateInto(&s, nil, in)
	baseSched := s.simSched
	if baseSched == 0 {
		t.Fatalf("no schedule recorded")
	}

	m := g.MarkClean()
	nl := g.And(g.Input(0), MakeLit(g.NumNodes()-1, true))
	g.SetOutput(0, nl)
	g.SimulateInto(&s, nil, in)
	if s.simSched <= baseSched {
		t.Fatalf("schedule did not extend: %d <= %d", s.simSched, baseSched)
	}
	if s.simNodes != g.NumNodes() {
		t.Fatalf("simNodes %d != %d", s.simNodes, g.NumNodes())
	}
	g.Rollback(m)
	s.TrimTo(g, m.Nodes())
	if s.simSched != baseSched || s.nNodes != m.Nodes() {
		t.Fatalf("TrimTo did not restore the base watermark: sched %d nodes %d", s.simSched, s.nNodes)
	}
}

// TestDeltaSignaturesMatchesFull pins the SignaturesInto delta path to
// the full-path oracle across patch/rollback cycles with a fixed seed
// (the resub usage pattern).
func TestDeltaSignaturesMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := buildRandom(rng, 9, 4, 100)
	const w = 4
	const seed = 0x5EED
	var s SimScratch

	g.SignaturesInto(&s, rand.New(rand.NewSource(seed)), w)
	for round := 0; round < 20; round++ {
		m := g.MarkClean()
		randomPatch(g, rng)
		got := g.SignaturesInto(&s, rand.New(rand.NewSource(seed)), w)
		want := g.Signatures(rand.New(rand.NewSource(seed)), w)
		for id := range want {
			for k := 0; k < w; k++ {
				if got[id][k] != want[id][k] {
					t.Fatalf("round %d node %d word %d: %x != %x", round, id, k, got[id][k], want[id][k])
				}
			}
		}
		g.Rollback(m)
		s.TrimTo(g, m.Nodes())
	}
}

// TestScheduleRecycledGraphRegression is the satellite regression test:
// a recycled graph — Reset then rebuilt to the same node count — must
// not be served a stale schedule or stale cached values.
func TestScheduleRecycledGraphRegression(t *testing.T) {
	g := New()
	x := g.AddInput("x")
	y := g.AddInput("y")
	g.AddOutput(g.And(x, y), "o")
	var s SimScratch
	in := []uint64{0xF0F0F0F0F0F0F0F0, 0xFF00FF00FF00FF00}
	got := g.SimulateInto(&s, nil, in)
	if got[0] != in[0]&in[1] {
		t.Fatalf("AND sim wrong: %x", got[0])
	}

	// Recycle: same pointer, same node count, different function.
	g.Reset()
	x = g.AddInput("x")
	y = g.AddInput("y")
	g.AddOutput(g.Or(x, y).Not(), "o") // NOR = !(x|y); still one AND node
	if g.NumNodes() != 4 {
		t.Fatalf("rebuild changed node count: %d", g.NumNodes())
	}
	got = g.SimulateInto(&s, got, in)
	if want := ^(in[0] | in[1]); got[0] != want {
		t.Fatalf("stale schedule after Reset: got %x want %x", got[0], want)
	}
}

// TestScheduleRollbackReappendRegression covers the hazard Rollback
// introduces: shrink then re-append to the same node count reproduces an
// earlier (pointer, generation, node count) triple with different
// contents. The shrink sequence must force a rebuild.
func TestScheduleRollbackReappendRegression(t *testing.T) {
	g := New()
	x := g.AddInput("x")
	y := g.AddInput("y")
	z := g.AddInput("z")
	g.AddOutput(g.And(x, y), "o")
	var s SimScratch
	in := []uint64{0xAAAAAAAAAAAAAAAA, 0xCCCCCCCCCCCCCCCC, 0xF0F0F0F0F0F0F0F0}
	g.SimulateInto(&s, nil, in)

	m := g.MarkClean()
	a := g.And(x, z) // one appended AND
	g.SetOutput(0, a)
	g.SimulateInto(&s, nil, in) // schedule now covers the appended node

	g.Rollback(m)
	b := g.And(y, z) // same node count, different gate
	g.SetOutput(0, b)
	got := g.SimulateInto(&s, nil, in)
	if want := in[1] & in[2]; got[0] != want {
		t.Fatalf("stale schedule after rollback/re-append: got %x want %x", got[0], want)
	}
}

// TestRewriteConeMatchesCloneTwin verifies the bit-for-bit contract of
// the patch path: applying the identical RewriteCone to the graph and to
// a fresh clone yields identical structures, and with the key forced to
// zero the patched graph still computes the base function.
func TestRewriteConeMatchesCloneTwin(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := buildRandom(rng, 8, 4, 80)
	base := g.Clone()
	fanouts := g.Fanouts()

	// Pick a few AND targets.
	var targets []int
	for id := 1; id < g.NumNodes() && len(targets) < 3; id++ {
		if g.IsAnd(id) && rng.Intn(4) == 0 {
			targets = append(targets, id)
		}
	}
	if len(targets) == 0 {
		t.Fatalf("no targets chosen")
	}

	apply := func(h *AIG, fo [][]int) []Lit {
		keys := make([]Lit, len(targets))
		for i := range targets {
			keys[i] = h.AddKeyInput("k")
		}
		h.RewriteCone(targets, fo, func(i int, nl Lit) Lit {
			return h.Xor(nl, keys[i])
		})
		return keys
	}

	twin := g.Clone()
	apply(g, fanouts)
	apply(twin, twin.Fanouts())
	if g.StructuralDigest() != twin.StructuralDigest() {
		t.Fatalf("incremental patch diverged from clone twin")
	}

	// With every key input at 0, XOR(f, 0) = f: outputs must match base.
	var sb, sg SimScratch
	inB := RandomPatterns(rng, base.NumInputs())
	inG := append(append([]uint64(nil), inB...), make([]uint64, len(targets))...)
	ob := base.SimulateInto(&sb, nil, inB)
	og := g.SimulateInto(&sg, nil, inG)
	for i := range ob {
		if ob[i] != og[i] {
			t.Fatalf("output %d corrupted with zero key: %x != %x", i, ob[i], og[i])
		}
	}
}

// TestStructuralDigestSensitivity spot-checks that the digest reacts to
// every structural dimension it claims to cover.
func TestStructuralDigestSensitivity(t *testing.T) {
	mk := func(mut func(g *AIG)) uint64 {
		g := New()
		x := g.AddInput("x")
		y := g.AddInput("y")
		g.AddOutput(g.And(x, y), "o")
		if mut != nil {
			mut(g)
		}
		return g.StructuralDigest()
	}
	base := mk(nil)
	if mk(nil) != base {
		t.Fatalf("digest not deterministic")
	}
	if mk(func(g *AIG) { g.SetOutput(0, g.Output(0).Not()) }) == base {
		t.Fatalf("digest misses output polarity")
	}
	if mk(func(g *AIG) { g.AddKeyInput("k") }) == base {
		t.Fatalf("digest misses appended input")
	}
	g2 := New()
	x := g2.AddKeyInput("x") // same shape, input 0 is now a key input
	y := g2.AddInput("y")
	g2.AddOutput(g2.And(x, y), "o")
	if g2.StructuralDigest() == base {
		t.Fatalf("digest misses key flag")
	}
}

// TestDeltaSimulateZeroAlloc gates the steady-state patch loop — mark,
// append, delta-simulate, rollback, trim — at zero allocations per
// candidate once buffers are warm.
func TestDeltaSimulateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := buildRandom(rng, 8, 3, 100)
	var s SimScratch
	var dst []uint64
	var outBuf []Lit
	in := RandomPatterns(rng, g.NumInputs())
	dst = g.SimulateInto(&s, dst, in)

	x, y := g.Input(0), g.Input(1)
	cycle := func() {
		m := g.MarkCleanInto(outBuf)
		outBuf = m.outs
		nl := g.And(x, MakeLit(g.NumNodes()-1, true))
		nl = g.And(nl, y.Not())
		g.SetOutput(0, nl)
		dst = g.SimulateInto(&s, dst, in)
		g.Rollback(m)
		s.TrimTo(g, m.Nodes())
	}
	// Warm the buffers (node slice growth headroom, schedule, vals).
	for i := 0; i < 16; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("patch cycle allocates %.1f times per candidate", avg)
	}
}

// TestSignaturesRowsCacheRegression pins the hazards of the cached row
// headers in SignaturesInto: the headers alias the scratch value buffer,
// so a buffer reallocation (a patch large enough to outgrow the headroom)
// or a width change must invalidate them, and reusing the scratch on a
// smaller graph must truncate them — in every case the returned rows
// must match a cold-scratch computation bit for bit.
func TestSignaturesRowsCacheRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := buildRandom(rng, 9, 4, 80)
	const seed = 0x5EED
	var s SimScratch

	check := func(stage string, g *AIG, w int) {
		t.Helper()
		got := g.SignaturesInto(&s, rand.New(rand.NewSource(seed)), w)
		want := g.Signatures(rand.New(rand.NewSource(seed)), w)
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, want %d", stage, len(got), len(want))
		}
		for id := range want {
			for k := 0; k < w; k++ {
				if got[id][k] != want[id][k] {
					t.Fatalf("%s: node %d word %d: %x != %x", stage, id, k, got[id][k], want[id][k])
				}
			}
		}
	}

	check("cold", g, 4)
	m := g.MarkClean()
	// A dirty region far beyond the buffer's growth headroom, so vals is
	// reallocated mid-delta and every cached row header goes stale.
	for i, grow := 0, g.NumNodes(); i < grow; i++ {
		randomPatch(g, rng)
	}
	check("realloc patch", g, 4)
	g.Rollback(m)
	s.TrimTo(g, m.Nodes())
	check("after rollback", g, 4)
	// Width change: same backing buffer can hold it, but every header has
	// the wrong stride now.
	check("width change", g, 2)
	// Scratch reuse on a smaller graph: cached rows must truncate.
	small := buildRandom(rand.New(rand.NewSource(62)), 5, 2, 20)
	check("smaller graph", small, 2)
	check("back to original", g, 4)
}
