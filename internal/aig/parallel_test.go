package aig

import (
	"math/rand"
	"testing"
)

// randomWords draws a [input][word] pattern block.
func randomWords(rng *rand.Rand, nIn, w int) [][]uint64 {
	in := make([][]uint64, nIn)
	for i := range in {
		in[i] = make([]uint64, w)
		for k := range in[i] {
			in[i][k] = rng.Uint64()
		}
	}
	return in
}

// TestSimulateWordsTiledBitIdentity runs wide simulations with every
// interesting worker budget against the serial reference and requires
// exact equality on every output word. The width is chosen so the tiled
// path actually engages (sched×words above the fan-out grain), and odd
// budgets exercise uneven word splits. Run under -race this doubles as
// the data-race gate on the disjoint-column ownership argument.
func TestSimulateWordsTiledBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomAIG(rng, 24, 8, 1200)
	for _, w := range []int{16, 63, 256} {
		in := randomWords(rng, g.NumInputs(), w)
		want := g.SimulateWords(in, w) // serial: zero-value scratch has Workers 0
		var dst [][]uint64
		for _, workers := range []int{1, 2, 3, 7, 64} {
			s := SimScratch{Workers: workers}
			dst = g.SimulateWordsInto(&s, dst, in, w)
			if len(dst) != len(want) {
				t.Fatalf("w=%d workers=%d: %d outputs, want %d", w, workers, len(dst), len(want))
			}
			for i := range want {
				for k := range want[i] {
					if dst[i][k] != want[i][k] {
						t.Fatalf("w=%d workers=%d: output %d word %d differs: %x != %x",
							w, workers, i, k, dst[i][k], want[i][k])
					}
				}
			}
		}
	}
}

// TestSimulateWordsTiledNarrow pins the gating: narrow or small
// simulations must stay serial regardless of the budget (each shard
// needs minShardWords columns and the total work must clear the grain).
func TestSimulateWordsTiledNarrow(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	small := randomAIG(rng, 8, 2, 40)
	var s SimScratch
	s.Workers = 16
	if got := s.simWorkers(s.schedule(small), 256); got != 1 {
		t.Fatalf("small schedule fanned out to %d shards, want 1", got)
	}
	big := randomAIG(rng, 24, 4, 1200)
	sched := s.schedule(big)
	if got := s.simWorkers(sched, 8); got != 1 {
		t.Fatalf("narrow simulation fanned out to %d shards, want 1", got)
	}
	if got := s.simWorkers(sched, 256); got != 16 {
		t.Fatalf("wide simulation used %d shards, want the full budget 16", got)
	}
	// The shard count is capped so every worker owns at least
	// minShardWords columns.
	s.Workers = 1000
	if got := s.simWorkers(sched, 256); got != 256/minShardWords {
		t.Fatalf("oversized budget used %d shards, want %d", got, 256/minShardWords)
	}
}
