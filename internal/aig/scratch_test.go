package aig

import (
	"math/rand"
	"testing"
)

// buildChain returns a small deterministic AIG exercising complemented
// edges and shared logic.
func buildChain(nIn int) *AIG {
	g := New()
	lits := make([]Lit, 0, nIn)
	for i := 0; i < nIn; i++ {
		lits = append(lits, g.AddInput("x"))
	}
	cur := lits[0]
	for i, l := range lits[1:] {
		if i%2 == 0 {
			cur = g.And(cur, l.Not())
		} else {
			cur = g.Or(cur, l)
		}
	}
	g.AddOutput(cur, "o")
	g.AddOutput(cur.Not(), "on")
	return g
}

// TestSimulateIntoMatchesSimulate64 pins the Into variant to the
// allocating wrapper bit for bit.
func TestSimulateIntoMatchesSimulate64(t *testing.T) {
	g := buildChain(9)
	rng := rand.New(rand.NewSource(7))
	var s SimScratch
	var dst []uint64
	for round := 0; round < 16; round++ {
		in := RandomPatterns(rng, g.NumInputs())
		want := g.Simulate64(in)
		dst = g.SimulateInto(&s, dst, in)
		if len(dst) != len(want) {
			t.Fatalf("round %d: len %d != %d", round, len(dst), len(want))
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("round %d output %d: %x != %x", round, i, dst[i], want[i])
			}
		}
	}
}

// TestSimulateWordsIntoMatchesSimulateWords pins the multi-word variant.
func TestSimulateWordsIntoMatchesSimulateWords(t *testing.T) {
	g := buildChain(7)
	rng := rand.New(rand.NewSource(9))
	const w = 3
	in := make([][]uint64, g.NumInputs())
	for i := range in {
		in[i] = make([]uint64, w)
		for k := range in[i] {
			in[i][k] = rng.Uint64()
		}
	}
	want := g.SimulateWords(in, w)
	var s SimScratch
	var dst [][]uint64
	for round := 0; round < 3; round++ {
		dst = g.SimulateWordsInto(&s, dst, in, w)
		for i := range want {
			for k := range want[i] {
				if dst[i][k] != want[i][k] {
					t.Fatalf("output %d word %d: %x != %x", i, k, dst[i][k], want[i][k])
				}
			}
		}
	}
}

// TestSignaturesIntoMatchesSignatures pins the signature variant,
// including identical rng consumption.
func TestSignaturesIntoMatchesSignatures(t *testing.T) {
	g := buildChain(8)
	want := g.Signatures(rand.New(rand.NewSource(11)), 4)
	var s SimScratch
	got := g.SignaturesInto(&s, rand.New(rand.NewSource(11)), 4)
	if len(got) != len(want) {
		t.Fatalf("row count %d != %d", len(got), len(want))
	}
	for id := range want {
		for k := range want[id] {
			if got[id][k] != want[id][k] {
				t.Fatalf("node %d word %d: %x != %x", id, k, got[id][k], want[id][k])
			}
		}
	}
}

// TestSimulateIntoZeroAllocs is the allocation-regression gate for the
// levelized simulation core: with a warm scratch and an adequate dst,
// SimulateInto must not allocate.
func TestSimulateIntoZeroAllocs(t *testing.T) {
	g := buildChain(12)
	in := RandomPatterns(rand.New(rand.NewSource(3)), g.NumInputs())
	var s SimScratch
	dst := g.SimulateInto(&s, nil, in) // warm up schedule and buffers
	if n := testing.AllocsPerRun(100, func() {
		dst = g.SimulateInto(&s, dst, in)
	}); n != 0 {
		t.Fatalf("SimulateInto allocates %.1f objects per run, want 0", n)
	}
}

// TestSignaturesIntoZeroAllocs: same gate for the signature core (the
// rng draw itself does not allocate).
func TestSignaturesIntoZeroAllocs(t *testing.T) {
	g := buildChain(10)
	rng := rand.New(rand.NewSource(5))
	var s SimScratch
	g.SignaturesInto(&s, rng, 4)
	if n := testing.AllocsPerRun(100, func() {
		g.SignaturesInto(&s, rng, 4)
	}); n != 0 {
		t.Fatalf("SignaturesInto allocates %.1f objects per run, want 0", n)
	}
}

// TestRebuilderResetIntoZeroAllocs: a warmed rebuilder copying into a
// recycled graph — the skeleton of every arena-backed synthesis pass —
// must reach a zero-allocation steady state.
func TestRebuilderResetIntoZeroAllocs(t *testing.T) {
	g := buildChain(12)
	var rb Rebuilder
	spare := New()
	// Warm up: one full identity rebuild grows every buffer and the
	// strash table.
	rb.ResetInto(g, spare)
	out := rb.Finish()
	if n := testing.AllocsPerRun(100, func() {
		rb.ResetInto(g, out)
		out = rb.Finish()
	}); n != 0 {
		t.Fatalf("Reset-based rebuild allocates %.1f objects per run, want 0", n)
	}
	if ok := EquivalentBySim(g, out, rand.New(rand.NewSource(1)), 4); !ok {
		t.Fatal("recycled rebuild changed the function")
	}
}

// TestAIGResetRecycles pins Reset's contract: the graph returns to the
// empty state, storage is retained, and the generation stamp moves so
// schedule caches cannot serve stale entries.
func TestAIGResetRecycles(t *testing.T) {
	g := buildChain(6)
	var s SimScratch
	in := RandomPatterns(rand.New(rand.NewSource(2)), g.NumInputs())
	g.SimulateInto(&s, nil, in)
	gen := g.Generation()
	g.Reset()
	if g.Generation() == gen {
		t.Fatal("Reset must bump the generation")
	}
	if g.NumNodes() != 1 || g.NumInputs() != 0 || g.NumOutputs() != 0 || g.NumAnds() != 0 {
		t.Fatalf("Reset left state behind: %v", g)
	}
	// Rebuild something different at the same pointer; the scratch must
	// re-schedule rather than reuse the stale gate list.
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.And(a, b), "o")
	out := g.SimulateInto(&s, nil, []uint64{^uint64(0), 0})
	if out[0] != 0 {
		t.Fatalf("stale schedule after Reset: got %x, want 0", out[0])
	}
}

// TestRebuilderResetMatchesNewRebuilder pins Reset against the
// constructor: identical mapping state, identical rebuild result.
func TestRebuilderResetMatchesNewRebuilder(t *testing.T) {
	g := buildChain(8)
	want := NewRebuilder(g).Finish()
	var rb Rebuilder
	rb.Reset(g)
	got := rb.Finish()
	if got.NumNodes() != want.NumNodes() || got.NumAnds() != want.NumAnds() {
		t.Fatalf("Reset rebuild differs: %v vs %v", got, want)
	}
	if !EquivalentBySim(got, want, rand.New(rand.NewSource(4)), 4) {
		t.Fatal("Reset rebuild changed the function")
	}
}

// BenchmarkSimulateInto is BenchmarkSimulate64's graph driven through
// the warm-scratch path — the "aig sim" steady-state row of
// BENCH_pr5.json. Expected allocs/op: 0.
func BenchmarkSimulateInto(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := randomAIG(rng, 32, 16, 2000)
	in := RandomPatterns(rng, g.NumInputs())
	var s SimScratch
	dst := g.SimulateInto(&s, nil, in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = g.SimulateInto(&s, dst, in)
	}
}
