package aig

import (
	"fmt"
	"math/rand"
)

// Simulate64 performs 64-way bit-parallel simulation. in holds one 64-bit
// pattern word per input (in input creation order); the returned slice
// holds one word per output. Bit i of each word is an independent pattern.
func (g *AIG) Simulate64(in []uint64) []uint64 {
	if len(in) != len(g.pis) {
		panic("aig: Simulate64 input width mismatch")
	}
	vals := g.simNodes(in)
	out := make([]uint64, len(g.pos))
	for i, po := range g.pos {
		v := vals[po.Node()]
		if po.Neg() {
			v = ^v
		}
		out[i] = v
	}
	return out
}

// simNodes returns the simulation word of every node.
func (g *AIG) simNodes(in []uint64) []uint64 {
	vals := make([]uint64, len(g.nodes))
	vals[0] = 0
	for i, id := range g.pis {
		vals[id] = in[i]
	}
	for id := 1; id < len(g.nodes); id++ {
		n := &g.nodes[id]
		if n.kind != KindAnd {
			continue
		}
		a := vals[n.fanin0.Node()]
		if n.fanin0.Neg() {
			a = ^a
		}
		b := vals[n.fanin1.Node()]
		if n.fanin1.Neg() {
			b = ^b
		}
		vals[id] = a & b
	}
	return vals
}

// SimulateWords runs bit-parallel simulation with w words per signal
// (64*w patterns). in is indexed [input][word]; every row must carry at
// least w words. The result is indexed [output][word]. Like Simulate64,
// it panics with a descriptive message on a shape mismatch rather than
// failing with an index error deep in the node loop.
func (g *AIG) SimulateWords(in [][]uint64, w int) [][]uint64 {
	if len(in) != len(g.pis) {
		panic(fmt.Sprintf("aig: SimulateWords input width mismatch: %d patterns for %d inputs", len(in), len(g.pis)))
	}
	if w < 1 {
		panic(fmt.Sprintf("aig: SimulateWords needs w >= 1 words, got %d", w))
	}
	for i := range in {
		if len(in[i]) < w {
			panic(fmt.Sprintf("aig: SimulateWords input %d has %d words, need %d", i, len(in[i]), w))
		}
	}
	vals := make([][]uint64, len(g.nodes))
	zero := make([]uint64, w)
	vals[0] = zero
	for i, id := range g.pis {
		vals[id] = in[i]
	}
	for id := 1; id < len(g.nodes); id++ {
		n := &g.nodes[id]
		if n.kind != KindAnd {
			continue
		}
		av := vals[n.fanin0.Node()]
		bv := vals[n.fanin1.Node()]
		out := make([]uint64, w)
		an, bn := n.fanin0.Neg(), n.fanin1.Neg()
		for k := 0; k < w; k++ {
			a, b := av[k], bv[k]
			if an {
				a = ^a
			}
			if bn {
				b = ^b
			}
			out[k] = a & b
		}
		vals[id] = out
	}
	res := make([][]uint64, len(g.pos))
	for i, po := range g.pos {
		v := vals[po.Node()]
		out := make([]uint64, w)
		for k := 0; k < w; k++ {
			if po.Neg() {
				out[k] = ^v[k]
			} else {
				out[k] = v[k]
			}
		}
		res[i] = out
	}
	return res
}

// EvalSingle evaluates the AIG on a single Boolean input assignment.
// It panics with a descriptive message when len(in) does not match the
// input count.
func (g *AIG) EvalSingle(in []bool) []bool {
	if len(in) != len(g.pis) {
		panic(fmt.Sprintf("aig: EvalSingle input width mismatch: %d values for %d inputs", len(in), len(g.pis)))
	}
	words := make([]uint64, len(in))
	for i, b := range in {
		if b {
			words[i] = 1
		}
	}
	out := g.Simulate64(words)
	res := make([]bool, len(out))
	for i, w := range out {
		res[i] = w&1 == 1
	}
	return res
}

// RandomPatterns generates one random 64-pattern word per input.
func RandomPatterns(rng *rand.Rand, nIn int) []uint64 {
	in := make([]uint64, nIn)
	for i := range in {
		in[i] = rng.Uint64()
	}
	return in
}

// Signatures computes a per-node simulation signature of w words using
// random patterns from rng. Used by resubstitution to find candidate
// divisors and by equivalence filtering. It panics with a descriptive
// message when w < 1 (a zero-width signature would make every pair of
// nodes look equivalent downstream).
func (g *AIG) Signatures(rng *rand.Rand, w int) [][]uint64 {
	if w < 1 {
		panic(fmt.Sprintf("aig: Signatures needs w >= 1 words, got %d", w))
	}
	in := make([][]uint64, len(g.pis))
	for i := range in {
		in[i] = make([]uint64, w)
		for k := range in[i] {
			in[i][k] = rng.Uint64()
		}
	}
	vals := make([][]uint64, len(g.nodes))
	vals[0] = make([]uint64, w)
	for i, id := range g.pis {
		vals[id] = in[i]
	}
	for id := 1; id < len(g.nodes); id++ {
		n := &g.nodes[id]
		if n.kind != KindAnd {
			continue
		}
		av := vals[n.fanin0.Node()]
		bv := vals[n.fanin1.Node()]
		out := make([]uint64, w)
		an, bn := n.fanin0.Neg(), n.fanin1.Neg()
		for k := 0; k < w; k++ {
			a, b := av[k], bv[k]
			if an {
				a = ^a
			}
			if bn {
				b = ^b
			}
			out[k] = a & b
		}
		vals[id] = out
	}
	return vals
}

// EquivalentBySim checks functional equivalence of two AIGs with the same
// input/output interface by random simulation with rounds*64 patterns.
// It is a necessary (not sufficient) check; internal/cnf provides exact
// SAT-based checking. Returns false on any detected mismatch.
func EquivalentBySim(a, b *AIG, rng *rand.Rand, rounds int) bool {
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		return false
	}
	for r := 0; r < rounds; r++ {
		in := RandomPatterns(rng, a.NumInputs())
		oa := a.Simulate64(in)
		ob := b.Simulate64(in)
		for i := range oa {
			if oa[i] != ob[i] {
				return false
			}
		}
	}
	return true
}
