package aig

import (
	"fmt"
	"math/rand"
	"sync"
)

// simGate is one AND evaluation in a levelized schedule: read the two
// fanin rows, complement as the literals say, write the output row.
type simGate struct {
	f0, f1 Lit
	out    int32
}

// SimScratch holds reusable, caller-owned simulation state: the
// levelized gate schedule of the last simulated graph plus the per-node
// value buffer. A scratch may be reused across calls and across graphs
// (the schedule is rebuilt automatically when the graph changes); it must
// not be shared between goroutines. The zero value is ready to use.
//
// Slices returned by SignaturesInto alias the scratch buffer and are
// valid only until the scratch's next use.
type SimScratch struct {
	owner  *AIG
	gen    uint64
	shrink uint64
	nNodes int
	sched  []simGate
	vals   []uint64
	rows   [][]uint64

	// Delta-simulation state: the extent of vals rows that hold valid
	// node values from the last simulation (simNodes nodes, simSched
	// schedule entries already evaluated, valsW words per node; valsW 0
	// means no valid values). When a follow-up call sees the same graph
	// identity (owner, gen, shrink), a grown node array, and input words
	// whose clean prefix matches the cached ones, it re-simulates only
	// the appended suffix against the cached clean-boundary values.
	simNodes int
	simSched int
	valsW    int

	// rows cache identity: rows[id] is the pure function
	// vals[id*w : id*w+w] of the backing array and width, so the cached
	// headers stay valid until the value buffer is reallocated or the
	// width changes. SignaturesInto then maintains only the suffix.
	rowsBase *uint64
	rowsW    int

	// Workers caps the number of goroutines a wide simulation may use.
	// Zero or one means serial; values above one let SimulateWordsInto
	// shard the word columns of its value buffer across that many
	// workers when the simulation is wide enough to pay for the fan-out.
	// Each worker runs the full levelized schedule over a disjoint word
	// range, so shard results are written to disjoint columns and every
	// word is computed by exactly the arithmetic the serial path would
	// use — results are bit-for-bit identical for any Workers value.
	Workers int
}

// Reset drops the cached schedule and delta state and releases no
// memory: buffers are kept for reuse, but the next simulation rebuilds
// the schedule. Call it after recycling a graph the scratch may have
// scheduled (AIG.Reset already invalidates the schedule via the graph's
// generation stamp, so Reset is only needed to drop the scratch's
// reference to a graph).
func (s *SimScratch) Reset() {
	s.owner = nil
	s.nNodes = 0
	s.sched = s.sched[:0]
	s.simNodes, s.simSched, s.valsW = 0, 0, 0
}

// schedule returns the levelized AND-gate schedule of g, rebuilding it
// when the scratch last scheduled a different (or since-modified) graph.
// Ascending node ID is a topological — hence level-respecting — order in
// an append-only AIG, so the schedule is the AND nodes in ID order with
// their fanin literals flattened out of the node array.
//
// When the scratch last scheduled the same graph identity (pointer,
// generation, shrink sequence) and the graph has only grown since, the
// schedule is extended in place with the appended suffix — the clean
// prefix is reused untouched. Any other change (different graph, Reset,
// Rollback) rebuilds from scratch and invalidates the delta state.
//
//almost:hotpath
func (s *SimScratch) schedule(g *AIG) []simGate {
	if s.owner == g && s.gen == g.gen && s.shrink == g.shrink && s.nNodes <= len(g.nodes) {
		if s.nNodes == len(g.nodes) {
			return s.sched
		}
		// Append-only growth: extend the schedule from the watermark. Grow
		// with headroom — successive candidates ratchet the AND count up by
		// a few gates each, and exact-size growth would copy the whole
		// schedule nearly every call.
		start := s.nNodes
		s.nNodes = len(g.nodes)
		if na := g.NumAnds(); cap(s.sched) < na {
			grown := make([]simGate, len(s.sched), na+na/8)
			copy(grown, s.sched)
			s.sched = grown
		}
		for id := start; id < len(g.nodes); id++ {
			n := &g.nodes[id]
			if n.kind == KindAnd {
				//almost:nolint hotpathalloc // appends into the cap-reserved schedule buffer grown above
				s.sched = append(s.sched, simGate{f0: n.fanin0, f1: n.fanin1, out: int32(id)})
			}
		}
		return s.sched
	}
	s.owner, s.gen, s.shrink, s.nNodes = g, g.gen, g.shrink, len(g.nodes)
	s.simNodes, s.simSched, s.valsW = 0, 0, 0
	if cap(s.sched) < g.NumAnds() {
		s.sched = make([]simGate, 0, g.NumAnds())
	}
	s.sched = s.sched[:0]
	for id := 1; id < len(g.nodes); id++ {
		n := &g.nodes[id]
		if n.kind == KindAnd {
			//almost:nolint hotpathalloc // appends into the cap-reserved schedule buffer grown above
			s.sched = append(s.sched, simGate{f0: n.fanin0, f1: n.fanin1, out: int32(id)})
		}
	}
	return s.sched
}

// buf returns the scratch value buffer resized to n words, preserving
// existing contents on growth (the cached clean-prefix values are what
// the delta paths re-simulate against). Growth adds headroom: in the
// incremental loop each candidate leaves the graph a few nodes larger
// than the last maximum, and exact-size growth would reallocate (and
// copy) the whole multi-megabyte buffer nearly every call.
//
//almost:hotpath
func (s *SimScratch) buf(n int) []uint64 {
	if cap(s.vals) < n {
		grown := make([]uint64, n, n+n/8)
		copy(grown, s.vals)
		s.vals = grown
	}
	return s.vals[:n]
}

// TrimTo re-validates the scratch's clean prefix after the caller rolled
// g back to n nodes: the schedule and delta state are truncated to the
// prefix below n and the scratch adopts the graph's new shrink sequence.
// Without it a Rollback (which bumps the shrink counter) would force the
// next simulation to rebuild and re-simulate everything.
//
// The caller must own both the graph and the scratch exclusively and n
// must be at or below every rollback watermark since the scratch's last
// simulation of g — the incremental evaluation loop guarantees this by
// calling TrimTo(g, m.Nodes()) immediately after each Rollback(m). If
// the scratch's cached state does not cover g at all, TrimTo degrades to
// Reset.
//
//almost:hotpath
func (s *SimScratch) TrimTo(g *AIG, n int) {
	if s.owner != g || s.gen != g.gen || n > s.nNodes || n > len(g.nodes) {
		s.Reset()
		return
	}
	s.shrink = g.shrink
	// Drop schedule entries for truncated nodes (they form a suffix).
	lo, hi := 0, len(s.sched)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(s.sched[mid].out) >= n {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s.sched = s.sched[:lo]
	s.nNodes = n
	if s.simNodes > n {
		s.simNodes = n
	}
	if s.simSched > lo {
		s.simSched = lo
	}
}

// simCore runs the schedule over a node-major value buffer with stride w
// words per node. This is the single literal-evaluation loop behind
// Simulate64, SimulateWords, Signatures, and their Into variants.
//
//almost:hotpath
func simCore(sched []simGate, vals []uint64, w int) {
	if w == 1 {
		for _, op := range sched {
			a := vals[op.f0>>1]
			if op.f0&1 != 0 {
				a = ^a
			}
			b := vals[op.f1>>1]
			if op.f1&1 != 0 {
				b = ^b
			}
			vals[op.out] = a & b
		}
		return
	}
	simCoreRange(sched, vals, w, 0, w)
}

// simCoreRange runs the schedule over word columns [k0, k1) of a
// node-major value buffer with stride w. Complementation is a branch-free
// XOR with an all-ones mask — `a^0 == a` and `a^^uint64(0) == ^a`, so
// each word's value is bit-identical to the branching form. Distinct
// ranges touch disjoint columns, which is what makes the worker-tiled
// dispatch race-free without any synchronization inside the schedule.
//
//almost:hotpath
func simCoreRange(sched []simGate, vals []uint64, w, k0, k1 int) {
	for _, op := range sched {
		av := vals[int(op.f0>>1)*w:][k0:k1]
		bv := vals[int(op.f1>>1)*w:][k0:k1]
		out := vals[int(op.out)*w:][k0:k1]
		var am, bm uint64
		if op.f0&1 != 0 {
			am = ^uint64(0)
		}
		if op.f1&1 != 0 {
			bm = ^uint64(0)
		}
		for k := range out {
			out[k] = (av[k] ^ am) & (bv[k] ^ bm)
		}
	}
}

// Word-tiling thresholds: sharding pays only when each worker gets a
// meaningful run of contiguous words per gate and the total work
// amortizes the goroutine fan-out.
const (
	minShardWords = 8       // minimum word columns per worker
	simParGrain   = 1 << 16 // minimum sched×words work before fanning out
)

// simWorkers returns the number of word-range shards a simulation of
// width w over sched should use under the scratch's Workers budget.
func (s *SimScratch) simWorkers(sched []simGate, w int) int {
	if s.Workers <= 1 || len(sched)*w < simParGrain {
		return 1
	}
	n := min(s.Workers, w/minShardWords)
	return max(n, 1)
}

// simCoreTiled runs the schedule with the word columns split into
// `shards` balanced contiguous ranges, one goroutine each. Every column
// is owned by exactly one shard and per-column arithmetic is unchanged,
// so the result equals the serial simCore bit for bit.
func simCoreTiled(sched []simGate, vals []uint64, w, shards int) {
	var wg sync.WaitGroup
	q, r := w/shards, w%shards
	k0 := 0
	for i := 0; i < shards; i++ {
		k1 := k0 + q
		if i < r {
			k1++
		}
		wg.Add(1)
		go func(k0, k1 int) {
			defer wg.Done()
			simCoreRange(sched, vals, w, k0, k1)
		}(k0, k1)
		k0 = k1
	}
	wg.Wait()
}

// SimulateInto is the scratch-reusing core of Simulate64: 64-way
// bit-parallel simulation writing the per-output words into dst, which is
// grown (reallocated) only when its capacity is short. It returns
// dst[:NumOutputs]. With a warm scratch and an adequate dst it performs
// no allocations. s must not be nil.
//
// Delta path: when the scratch's last simulation covered a clean prefix
// of g (same pointer, generation, and shrink sequence) and every input
// word for a pre-existing input matches the cached value, only the
// appended suffix is simulated against the cached clean-boundary values
// — O(dirty region) instead of O(graph). The fall-back to a full
// simulation is transparent, so results are bit-for-bit identical either
// way.
//
//almost:hotpath
func (g *AIG) SimulateInto(s *SimScratch, dst, in []uint64) []uint64 {
	if len(in) != len(g.pis) {
		panic(fmt.Sprintf("aig: SimulateInto input width mismatch: %d patterns for %d inputs", len(in), len(g.pis)))
	}
	delta := s.owner == g && s.gen == g.gen && s.shrink == g.shrink &&
		s.valsW == 1 && s.simNodes > 0 && s.simNodes <= len(g.nodes)
	sched := s.schedule(g) // may clear the delta state; checked above first
	vals := s.buf(len(g.nodes))
	if delta {
		for i, id := range g.pis {
			if id < s.simNodes {
				if vals[id] != in[i] {
					delta = false
					break
				}
			} else {
				vals[id] = in[i]
			}
		}
	}
	start := 0
	if delta {
		start = s.simSched
	} else {
		vals[0] = 0
		for i, id := range g.pis {
			vals[id] = in[i]
		}
	}
	simCore(sched[start:], vals, 1)
	s.simNodes, s.simSched, s.valsW = len(g.nodes), len(sched), 1
	if cap(dst) < len(g.pos) {
		dst = make([]uint64, len(g.pos))
	}
	dst = dst[:len(g.pos)]
	for i, po := range g.pos {
		v := vals[po.Node()]
		if po.Neg() {
			v = ^v
		}
		dst[i] = v
	}
	return dst
}

// Simulate64 performs 64-way bit-parallel simulation. in holds one 64-bit
// pattern word per input (in input creation order); the returned slice
// holds one word per output. Bit i of each word is an independent pattern.
// It is a thin allocating wrapper over SimulateInto; hot loops should
// hold a SimScratch and call SimulateInto directly.
func (g *AIG) Simulate64(in []uint64) []uint64 {
	if len(in) != len(g.pis) {
		panic("aig: Simulate64 input width mismatch")
	}
	var s SimScratch
	return g.SimulateInto(&s, nil, in)
}

// SimulateWordsInto is the scratch-reusing core of SimulateWords:
// bit-parallel simulation with w words per signal, writing per-output
// rows into dst. dst and its rows are grown only when capacity is short;
// pass the previous return value to reuse them. The result rows are
// caller-owned (they do not alias the scratch). s must not be nil.
//
// When s.Workers is above one and the simulation is wide enough, the
// word columns are sharded across that many goroutines (see
// SimScratch.Workers); results are bit-for-bit identical to the serial
// path for any budget.
//
//almost:hotpath
func (g *AIG) SimulateWordsInto(s *SimScratch, dst [][]uint64, in [][]uint64, w int) [][]uint64 {
	if len(in) != len(g.pis) {
		panic(fmt.Sprintf("aig: SimulateWordsInto input width mismatch: %d patterns for %d inputs", len(in), len(g.pis)))
	}
	if w < 1 {
		panic(fmt.Sprintf("aig: SimulateWordsInto needs w >= 1 words, got %d", w))
	}
	for i := range in {
		if len(in[i]) < w {
			panic(fmt.Sprintf("aig: SimulateWordsInto input %d has %d words, need %d", i, len(in[i]), w))
		}
	}
	sched := s.schedule(g)
	vals := s.buf(len(g.nodes) * w)
	for k := 0; k < w; k++ {
		vals[k] = 0
	}
	for i, id := range g.pis {
		copy(vals[id*w:id*w+w], in[i][:w])
	}
	if shards := s.simWorkers(sched, w); shards > 1 {
		simCoreTiled(sched, vals, w, shards)
	} else {
		simCore(sched, vals, w)
	}
	s.simNodes, s.simSched, s.valsW = len(g.nodes), len(sched), w
	if cap(dst) < len(g.pos) {
		dst = make([][]uint64, len(g.pos))
	}
	dst = dst[:len(g.pos)]
	for i, po := range g.pos {
		row := dst[i]
		if cap(row) < w {
			row = make([]uint64, w)
		}
		row = row[:w]
		v := vals[po.Node()*w:]
		if po.Neg() {
			for k := 0; k < w; k++ {
				row[k] = ^v[k]
			}
		} else {
			copy(row, v[:w])
		}
		dst[i] = row
	}
	return dst
}

// SimulateWords runs bit-parallel simulation with w words per signal
// (64*w patterns). in is indexed [input][word]; every row must carry at
// least w words. The result is indexed [output][word]. Like Simulate64,
// it panics with a descriptive message on a shape mismatch rather than
// failing with an index error deep in the node loop. It is a thin
// allocating wrapper over SimulateWordsInto.
func (g *AIG) SimulateWords(in [][]uint64, w int) [][]uint64 {
	if len(in) != len(g.pis) {
		panic(fmt.Sprintf("aig: SimulateWords input width mismatch: %d patterns for %d inputs", len(in), len(g.pis)))
	}
	if w < 1 {
		panic(fmt.Sprintf("aig: SimulateWords needs w >= 1 words, got %d", w))
	}
	for i := range in {
		if len(in[i]) < w {
			panic(fmt.Sprintf("aig: SimulateWords input %d has %d words, need %d", i, len(in[i]), w))
		}
	}
	var s SimScratch
	return g.SimulateWordsInto(&s, nil, in, w)
}

// EvalSingle evaluates the AIG on a single Boolean input assignment.
// It panics with a descriptive message when len(in) does not match the
// input count.
func (g *AIG) EvalSingle(in []bool) []bool {
	if len(in) != len(g.pis) {
		panic(fmt.Sprintf("aig: EvalSingle input width mismatch: %d values for %d inputs", len(in), len(g.pis)))
	}
	words := make([]uint64, len(in))
	for i, b := range in {
		if b {
			words[i] = 1
		}
	}
	out := g.Simulate64(words)
	res := make([]bool, len(out))
	for i, w := range out {
		res[i] = w&1 == 1
	}
	return res
}

// RandomPatterns generates one random 64-pattern word per input.
func RandomPatterns(rng *rand.Rand, nIn int) []uint64 {
	in := make([]uint64, nIn)
	for i := range in {
		in[i] = rng.Uint64()
	}
	return in
}

// SignaturesInto computes a per-node simulation signature of w words
// using random patterns from rng, reusing the scratch's buffers. The
// returned rows (one per node, indexed by node ID) alias the scratch and
// are valid only until the scratch's next use; callers that need to
// retain them must copy. It panics when w < 1 (a zero-width signature
// would make every pair of nodes look equivalent downstream). s must not
// be nil.
//
// Like SimulateInto, SignaturesInto has a transparent delta path: when
// the scratch's last simulation of g used the same signature width and
// the freshly drawn input rows for pre-existing inputs reproduce the
// cached ones (the common case — a fixed-seed rng over an unchanged
// input prefix), only the appended suffix is re-simulated. The rng is
// consumed identically on both paths, so seeded results are stable.
//
//almost:hotpath
func (g *AIG) SignaturesInto(s *SimScratch, rng *rand.Rand, w int) [][]uint64 {
	if w < 1 {
		panic(fmt.Sprintf("aig: SignaturesInto needs w >= 1 words, got %d", w))
	}
	delta := s.owner == g && s.gen == g.gen && s.shrink == g.shrink &&
		s.valsW == w && s.simNodes > 0 && s.simNodes <= len(g.nodes)
	sched := s.schedule(g) // may clear the delta state; checked above first
	vals := s.buf(len(g.nodes) * w)
	// Draw input patterns in input order, matching Signatures' historical
	// rng consumption exactly so seeded results are stable.
	for _, id := range g.pis {
		row := vals[id*w : id*w+w]
		if delta && id < s.simNodes {
			for k := range row {
				v := rng.Uint64()
				if row[k] != v {
					delta = false
				}
				row[k] = v
			}
		} else {
			for k := range row {
				row[k] = rng.Uint64()
			}
		}
	}
	start := 0
	if delta {
		start = s.simSched
	} else {
		for k := 0; k < w; k++ {
			vals[k] = 0
		}
	}
	simCore(sched[start:], vals, w)
	s.simNodes, s.simSched, s.valsW = len(g.nodes), len(sched), w
	n := len(g.nodes)
	if cap(s.rows) < n {
		grown := make([][]uint64, len(s.rows), n+n/8)
		copy(grown, s.rows)
		s.rows = grown
	}
	if s.rowsBase != &vals[0] || s.rowsW != w {
		// The value buffer moved or the width changed: every cached row
		// header is stale. Rebuild them all and record the new identity.
		s.rows = s.rows[:n]
		for id := range s.rows {
			s.rows[id] = vals[id*w : id*w+w]
		}
		s.rowsBase, s.rowsW = &vals[0], w
		return s.rows
	}
	// Same backing array and width: rows[id] is a pure function of
	// (base, w, id), so cached headers below n are still correct and only
	// the suffix needs building — O(appended), not O(graph), which is what
	// keeps the incremental evaluation loop sub-linear at million-gate
	// sizes.
	if len(s.rows) > n {
		s.rows = s.rows[:n]
	}
	for id := len(s.rows); id < n; id++ {
		//almost:nolint hotpathalloc // appends into the cap-reserved rows buffer grown above
		s.rows = append(s.rows, vals[id*w:id*w+w])
	}
	return s.rows
}

// Signatures computes a per-node simulation signature of w words using
// random patterns from rng. Used by resubstitution to find candidate
// divisors and by equivalence filtering. It panics with a descriptive
// message when w < 1. It is a thin wrapper over SignaturesInto with a
// throwaway scratch, so the returned rows are caller-owned.
func (g *AIG) Signatures(rng *rand.Rand, w int) [][]uint64 {
	if w < 1 {
		panic(fmt.Sprintf("aig: Signatures needs w >= 1 words, got %d", w))
	}
	var s SimScratch
	return g.SignaturesInto(&s, rng, w)
}

// EquivalentBySim checks functional equivalence of two AIGs with the same
// input/output interface by random simulation with rounds*64 patterns.
// It is a necessary (not sufficient) check; internal/cnf provides exact
// SAT-based checking. Returns false on any detected mismatch. Buffers are
// reused across rounds, so the cost is two schedules plus three slices
// regardless of the round count.
func EquivalentBySim(a, b *AIG, rng *rand.Rand, rounds int) bool {
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		return false
	}
	var sa, sb SimScratch
	in := make([]uint64, a.NumInputs())
	var oa, ob []uint64
	for r := 0; r < rounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		oa = a.SimulateInto(&sa, oa, in)
		ob = b.SimulateInto(&sb, ob, in)
		for i := range oa {
			if oa[i] != ob[i] {
				return false
			}
		}
	}
	return true
}
