package aig

import (
	"math/rand"
	"strings"
	"testing"
)

// wantPanic runs fn and requires a panic whose message contains every
// given substring — the "clear, descriptive message" contract of the
// simulation entry points' width validation.
func wantPanic(t *testing.T, fn func(), subs ...string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T is not a string: %v", r, r)
		}
		for _, s := range subs {
			if !strings.Contains(msg, s) {
				t.Fatalf("panic %q lacks %q", msg, s)
			}
		}
	}()
	fn()
}

func twoInputAnd() *AIG {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.And(a, b), "z")
	return g
}

func TestSimulate64WidthValidation(t *testing.T) {
	g := twoInputAnd()
	wantPanic(t, func() { g.Simulate64([]uint64{1}) }, "Simulate64", "mismatch")
}

func TestSimulateWordsWidthValidation(t *testing.T) {
	g := twoInputAnd()
	// Wrong input count: previously an opaque index error deep in the
	// node loop (or silently wrong values); now a descriptive panic.
	wantPanic(t, func() { g.SimulateWords([][]uint64{{1}}, 1) },
		"SimulateWords", "1 patterns for 2 inputs")
	// Rows narrower than w.
	wantPanic(t, func() { g.SimulateWords([][]uint64{{1, 2}, {3}}, 2) },
		"SimulateWords", "input 1 has 1 words, need 2")
	// Non-positive word count.
	wantPanic(t, func() { g.SimulateWords([][]uint64{{}, {}}, 0) },
		"SimulateWords", "w >= 1")
	// And the happy path still works.
	out := g.SimulateWords([][]uint64{{^uint64(0)}, {5}}, 1)
	if out[0][0] != 5 {
		t.Fatalf("and(all-ones, 5) = %d, want 5", out[0][0])
	}
}

func TestEvalSingleWidthValidation(t *testing.T) {
	g := twoInputAnd()
	wantPanic(t, func() { g.EvalSingle([]bool{true}) },
		"EvalSingle", "1 values for 2 inputs")
	wantPanic(t, func() { g.EvalSingle([]bool{true, true, false}) },
		"EvalSingle", "3 values for 2 inputs")
	if got := g.EvalSingle([]bool{true, true}); !got[0] {
		t.Fatal("and(1,1) should be 1")
	}
}

func TestSignaturesWidthValidation(t *testing.T) {
	g := twoInputAnd()
	wantPanic(t, func() { g.Signatures(rand.New(rand.NewSource(1)), 0) },
		"Signatures", "w >= 1")
	sig := g.Signatures(rand.New(rand.NewSource(1)), 2)
	if len(sig) != g.NumNodes() || len(sig[1]) != 2 {
		t.Fatalf("signature shape %d x %d", len(sig), len(sig[1]))
	}
}
