// Wide-simulation benchmarks live in an external test package: the
// synthetic circuit presets come from internal/circuits, which imports
// aig.
package aig_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
)

// BenchmarkSimulateWordsRand100k measures bit-parallel simulation of the
// 100k-gate synthetic netlist at 1, 16, and 256 words per signal (64 to
// 16384 patterns), serial versus a 4-worker word-tiling budget — the
// BENCH_pr10.json wide-simulation rows. Workers shard disjoint word
// columns of the same schedule, so outputs are bit-identical (gated by
// TestSimulateWordsTiledBitIdentity); on a single-CPU host the tiled
// rows measure scheduling overhead, not speedup.
//
//	go test -run=^$ -bench=BenchmarkSimulateWordsRand100k -benchmem ./internal/aig
func BenchmarkSimulateWordsRand100k(b *testing.B) {
	g := circuits.MustGenerate("rand100k")
	rng := rand.New(rand.NewSource(17))
	for _, w := range []int{1, 16, 256} {
		in := make([][]uint64, g.NumInputs())
		for i := range in {
			in[i] = make([]uint64, w)
			for k := range in[i] {
				in[i][k] = rng.Uint64()
			}
		}
		for _, workers := range []int{1, 4} {
			if workers > 1 && w == 1 {
				continue // single-word simulation never tiles
			}
			b.Run(fmt.Sprintf("w=%d/workers=%d", w, workers), func(b *testing.B) {
				s := aig.SimScratch{Workers: workers}
				var dst [][]uint64
				dst = g.SimulateWordsInto(&s, dst, in, w) // warm schedule + buffers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dst = g.SimulateWordsInto(&s, dst, in, w)
				}
			})
		}
	}
}
