// Package analysis is almostvet: a suite of repo-specific static
// analyzers that mechanize the invariants this reproduction depends on —
// allocation-free hot paths (hotpathalloc), jobs-invariant deterministic
// result reduction (mapdeterminism), context threading through every
// exact-reasoning call (ctxflow), the Unknown-is-not-Unsat SAT outcome
// discipline (satoutcome), registry registration hygiene
// (registrydiscipline), and the ban on resurrecting the retired
// panic-era API (deprecated).
//
// The package also carries the minimal driver machinery the analyzers
// run on. The module is deliberately dependency-free, so instead of
// golang.org/x/tools/go/analysis this package implements the same
// vocabulary (Analyzer, Pass, driver, `go vet -vettool` unitchecker
// protocol, analysistest-style harness) against the standard library
// alone. The shapes match x/tools closely enough that porting an
// analyzer in either direction is mechanical.
//
// Findings are suppressed line-by-line with a directive comment of the
// form
//
//	x := f() //almost:nolint satoutcome // budget collapse is safe here because ...
//
// The reason after the second `//` is mandatory: a directive without one
// does not suppress anything and is itself reported. A directive on a
// line of its own applies to the following line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. It is the stdlib-only
// mirror of golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line flags,
	// and nolint directives. Lowercase, no spaces.
	Name string
	// Doc is the help text: first line is a one-line summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one package to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// All returns the full almostvet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		MapDeterminism,
		CtxFlow,
		SatOutcome,
		RegistryDiscipline,
		Deprecated,
	}
}

// byName resolves the known analyzer names for nolint validation.
func byName() map[string]bool {
	m := make(map[string]bool)
	for _, a := range All() {
		m[a.Name] = true
	}
	return m
}

// A Package bundles everything the driver needs to analyze one package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// RunAnalyzers applies the analyzers to pkg, honoring nolint directives,
// and returns the surviving diagnostics in positional order. Malformed
// directives (missing reason, unknown analyzer name) are reported as
// diagnostics of the pseudo-analyzer "nolint" and never suppress
// anything.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := collectNolint(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.report = func(d Diagnostic) {
			if !sup.suppressed(pkg.Fset, d) {
				out = append(out, d)
			}
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	out = append(out, sup.malformed...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// nolintDirective is one parsed suppression comment.
type nolintDirective struct {
	analyzers map[string]bool
	file      string
	line      int
}

// nolintIndex holds every well-formed directive of a package plus the
// diagnostics for malformed ones.
type nolintIndex struct {
	directives []nolintDirective
	malformed  []Diagnostic
}

const nolintPrefix = "almost:nolint"

// collectNolint parses the package's suppression directives. A
// directive has the form `//almost:nolint name[,name...] // reason`;
// the analyzer list and the reason are both mandatory.
func collectNolint(pkg *Package) *nolintIndex {
	idx := &nolintIndex{}
	known := byName()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+nolintPrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				names, reason, hasReason := strings.Cut(text, "//")
				if !hasReason || strings.TrimSpace(reason) == "" {
					idx.malformed = append(idx.malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "nolint",
						Message:  "malformed //almost:nolint directive: a reason is required (`//almost:nolint <analyzer> // why it is safe`)",
					})
					continue
				}
				d := nolintDirective{analyzers: map[string]bool{}, file: pos.Filename, line: pos.Line}
				for _, n := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					if !known[n] {
						idx.malformed = append(idx.malformed, Diagnostic{
							Pos:      c.Pos(),
							Analyzer: "nolint",
							Message:  fmt.Sprintf("//almost:nolint names unknown analyzer %q", n),
						})
						continue
					}
					d.analyzers[n] = true
				}
				if len(d.analyzers) == 0 {
					idx.malformed = append(idx.malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "nolint",
						Message:  "//almost:nolint must name the analyzers it suppresses",
					})
					continue
				}
				idx.directives = append(idx.directives, d)
			}
		}
	}
	return idx
}

// suppressed reports whether d is covered by a directive on its line or
// on the line directly above it.
func (idx *nolintIndex) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, dir := range idx.directives {
		if dir.file != pos.Filename || !dir.analyzers[d.Analyzer] {
			continue
		}
		if dir.line == pos.Line || dir.line == pos.Line-1 {
			return true
		}
	}
	return false
}

// --- shared analyzer helpers -------------------------------------------

// unparen strips any enclosing parentheses (ast.Unparen needs a go1.22
// language level; the module pins go1.21).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isTestFile reports whether the file containing pos is a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// hasMarker reports whether a doc comment group carries the given
// directive (e.g. "almost:hotpath") as a line of its own.
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//"+marker)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}

// funcHasCtxParam returns the *types.Var of the function's
// context.Context parameter, or nil.
func funcHasCtxParam(sig *types.Signature) *types.Var {
	if sig == nil {
		return nil
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return params.At(i)
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// builtinName returns the name of the builtin a call invokes ("make",
// "append", ...) or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// calleeFunc resolves a call's static callee, unwrapping parens and
// generic instantiation. Returns nil for builtins, conversions, and
// dynamic calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = unparen(e.X)
	case *ast.IndexListExpr:
		fun = unparen(e.X)
	}
	var obj types.Object
	switch e := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// pkgPathTail reports whether the package path's last element equals
// name (used so analyzers recognize both the real tree and testdata
// stand-in packages).
func pkgPathTail(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}
