package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func TestHotPathAlloc(t *testing.T) { RunTest(t, "testdata", "hotpath", HotPathAlloc) }
func TestMapDeterminism(t *testing.T) {
	RunTest(t, "testdata", "engine", MapDeterminism)
	RunTest(t, "testdata", "gnn", MapDeterminism)
}
func TestCtxFlow(t *testing.T)    { RunTest(t, "testdata", "ctxflow", CtxFlow) }
func TestSatOutcome(t *testing.T) { RunTest(t, "testdata", "satuse", SatOutcome) }
func TestDeprecated(t *testing.T) { RunTest(t, "testdata", "deprecate", Deprecated) }

func TestRegistryDiscipline(t *testing.T) {
	RunTest(t, "testdata", "registry", RegistryDiscipline)
	RunTest(t, "testdata", "registryfwd", RegistryDiscipline)
}

// TestRepoClean runs the full suite over the real module: the tree must
// stay analyzer-clean, mirroring the CI vettool gate.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module analysis in -short mode")
	}
	pkgs, err := LoadPackages("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, All())
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s (%s)", pkg.Path, pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
}

// parseAndCheck builds a single-file Package for directive-parsing
// tests; src must not need any imports.
func parseAndCheck(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := newTypesInfo()
	var conf types.Config
	files := []*ast.File{f}
	tpkg, err := conf.Check("p", fset, files, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "p", Fset: fset, Files: files, Types: tpkg, Info: info}
}

// TestNolintMalformed checks that a directive without a reason, or
// naming an unknown analyzer, suppresses nothing and is itself
// reported.
func TestNolintMalformed(t *testing.T) {
	const src = `package p

//almost:hotpath
func bad(n int) []int {
	//almost:nolint hotpathalloc
	s := make([]int, n)
	//almost:nolint nosuchanalyzer // reasoned but unknown
	t := make([]int, n)
	return append(s, t...)
}
`
	pkg := parseAndCheck(t, src)
	diags, err := RunAnalyzers(pkg, All())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	wantSubstrings := []string{
		"nolint: malformed //almost:nolint directive: a reason is required",
		"nolint: //almost:nolint names unknown analyzer \"nosuchanalyzer\"",
		"hotpathalloc: hot path", // the reasonless directive did not suppress the first make
	}
	for _, want := range wantSubstrings {
		found := false
		for _, g := range got {
			if strings.Contains(g, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing diagnostic containing %q in %q", want, got)
		}
	}
	// Both makes and the append must all be reported: 3 hotpathalloc + 2
	// nolint diagnostics. The unknown-analyzer directive ends up with an
	// empty analyzer list, which is reported once more.
	if len(diags) != 6 {
		t.Errorf("got %d diagnostics, want 6: %q", len(diags), got)
	}
}

// TestNolintSameLine checks suppression on the directive's own line.
func TestNolintSameLine(t *testing.T) {
	const src = `package p

//almost:hotpath
func ok(n int) []int {
	return make([]int, n) //almost:nolint hotpathalloc // caller-owned result
}
`
	pkg := parseAndCheck(t, src)
	diags, err := RunAnalyzers(pkg, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("expected full suppression, got %v", diags)
	}
}
