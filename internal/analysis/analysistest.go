package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// This file is the golden-test harness (the x/tools "analysistest"
// role). Test packages live under testdata/src/<importpath> in
// GOPATH-style layout; expected findings are marked in-line:
//
//	for k := range m { // want `map iteration order`
//
// Each `want` takes one or more quoted regexps that must each match a
// distinct diagnostic reported on that line, and every diagnostic must
// be matched by a want. Because the harness drives RunAnalyzers, nolint
// directives participate exactly as they do in production — including
// malformed-directive findings from the "nolint" pseudo-analyzer.

// RunTest analyzes the testdata package at srcdir/src/<path> with the
// given analyzers and checks the findings against the want comments.
func RunTest(t *testing.T, srcdir, path string, analyzers ...*Analyzer) {
	t.Helper()
	ld := newTestLoader(srcdir)
	pkg, err := ld.load(path)
	if err != nil {
		t.Fatalf("loading testdata package %s: %v", path, err)
	}
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", path, err)
	}
	checkWants(t, pkg, diags)
}

// testLoader type-checks GOPATH-style testdata packages, resolving
// local imports from the same tree and everything else from the
// toolchain's export data.
type testLoader struct {
	srcdir string
	fset   *token.FileSet
	pkgs   map[string]*Package

	stdOnce sync.Once
	stdImp  types.Importer
	stdErr  error
	stdExp  map[string]string
}

func newTestLoader(srcdir string) *testLoader {
	return &testLoader{srcdir: srcdir, fset: token.NewFileSet(), pkgs: map[string]*Package{}}
}

// load parses and type-checks one testdata package (and, recursively,
// the local packages it imports).
func (ld *testLoader) load(path string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.srcdir, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: importerFunc(ld.importPkg)}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg := &Package{Path: path, Fset: ld.fset, Files: files, Types: tpkg, Info: info}
	ld.pkgs[path] = pkg
	return pkg, nil
}

func (ld *testLoader) importPkg(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(ld.srcdir, "src", filepath.FromSlash(path))); err == nil {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	std, err := ld.stdImporter()
	if err != nil {
		return nil, err
	}
	return std.Import(path)
}

// stdImporter lazily builds a gc importer over the standard library's
// export data, located once via `go list -export std`.
func (ld *testLoader) stdImporter() (types.Importer, error) {
	ld.stdOnce.Do(func() {
		listed, err := goList(ld.srcdir, "std")
		if err != nil {
			ld.stdErr = err
			return
		}
		ld.stdExp = make(map[string]string, len(listed))
		for _, p := range listed {
			if p.Export != "" {
				ld.stdExp[p.ImportPath] = p.Export
			}
		}
		ld.stdImp = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
			exp, ok := ld.stdExp[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(exp)
		})
	})
	return ld.stdImp, ld.stdErr
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// wantExpectation is one quoted regexp from a want comment.
type wantExpectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// checkWants cross-checks diagnostics against the package's want
// comments, reporting both unexpected and missing findings.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	type lineKey struct {
		file string
		line int
	}
	wants := map[lineKey][]*wantExpectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				rest := m[1]
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s: malformed want comment %q", pos, c.Text)
						break
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: malformed want pattern %q", pos, q)
						break
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						break
					}
					wants[k] = append(wants[k], &wantExpectation{re: re})
					rest = rest[len(q):]
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}
