package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context threading through the library (the PR-2/PR-6
// invariant: every exact-reasoning and search call is cancellable, and
// cancellation reaches it through the caller's ctx, never a fresh one).
// It skips package main (cmd/, examples/ own their root context) and
// _test.go files. Three rules:
//
//  1. context.Background()/context.TODO() may appear only in the
//     documented compatibility-wrapper position: a function without a
//     ctx parameter passing it straight into a *Ctx sibling
//     (func F(...) { return FCtx(context.Background(), ...) }).
//     Anywhere a ctx parameter is already in scope, minting a fresh
//     context severs cancellation — exactly the PR-6 redundancy bug.
//  2. Inside a function with a ctx parameter, calling F when a sibling
//     FCtx (same package, or same method set for methods) accepts a
//     context drops the caller's ctx on the floor; call FCtx.
//  3. A named (non-blank) ctx parameter must actually be used; schemes
//     that intentionally ignore cancellation document it by naming the
//     parameter _.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "report context.Background/TODO misuse and ctx values dropped on the way to ctx-aware callees",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFlowFunc(pass, fd)
		}
	}
	return nil
}

func checkCtxFlowFunc(pass *Pass, fd *ast.FuncDecl) {
	var sig *types.Signature
	if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		sig = obj.Type().(*types.Signature)
	}
	ctxParam := funcHasCtxParam(sig)
	hasCtx := ctxParam != nil

	ctxUsed := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			if id, isIdent := n.(*ast.Ident); isIdent && hasCtx && pass.TypesInfo.Uses[id] == ctxParam {
				ctxUsed = true
			}
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch fn.FullName() {
		case "context.Background", "context.TODO":
			if hasCtx {
				pass.Reportf(call.Pos(), "%s inside a function that already has a ctx parameter severs cancellation; pass the caller's ctx", fn.FullName())
			} else if fn.Name() == "TODO" {
				pass.Reportf(call.Pos(), "context.TODO marks unfinished threading; use context.Background in a compatibility wrapper or thread a real ctx")
			} else if !inCtxWrapperPosition(pass, fd, call) {
				pass.Reportf(call.Pos(), "context.Background outside the compatibility-wrapper position (an argument to a *Ctx sibling); thread a ctx parameter instead")
			}
			return true
		}
		if hasCtx && funcHasCtxParam(fn.Type().(*types.Signature)) == nil {
			if sib := ctxSibling(fn); sib != "" {
				pass.Reportf(call.Pos(), "ctx is in scope but %s is called without it; use %s", fn.Name(), sib)
			}
		}
		return true
	})
	if hasCtx && !ctxUsed && ctxParam.Name() != "" && ctxParam.Name() != "_" {
		pass.Reportf(fd.Pos(), "ctx parameter %q is never used; thread it into callees (or name it _ to document that %s ignores cancellation)", ctxParam.Name(), fd.Name.Name)
	}
}

// inCtxWrapperPosition reports whether call (a context.Background call)
// is directly an argument of a call to a *Ctx-suffixed function inside
// fd — the documented compatibility-wrapper shape.
func inCtxWrapperPosition(pass *Pass, fd *ast.FuncDecl, bg *ast.CallExpr) bool {
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		outer, isCall := n.(*ast.CallExpr)
		if !isCall || ok {
			return !ok
		}
		fn := calleeFunc(pass.TypesInfo, outer)
		if fn == nil || !strings.HasSuffix(fn.Name(), "Ctx") {
			return true
		}
		for _, arg := range outer.Args {
			if unparen(arg) == bg {
				ok = true
			}
		}
		return !ok
	})
	return ok
}

// ctxSibling returns the qualified name of fn's ctx-accepting sibling
// (fn's name + "Ctx", in the same package scope for functions or the
// same method set for methods), or "" when none exists.
func ctxSibling(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	want := fn.Name() + "Ctx"
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), want)
		if m, ok := obj.(*types.Func); ok && funcHasCtxParam(m.Type().(*types.Signature)) != nil {
			return typeShortName(recv.Type()) + "." + want
		}
		return ""
	}
	if fn.Pkg() == nil {
		return ""
	}
	if m, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok && funcHasCtxParam(m.Type().(*types.Signature)) != nil {
		return fn.Pkg().Name() + "." + want
	}
	return ""
}

// typeShortName renders a receiver type as its bare type name.
func typeShortName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
