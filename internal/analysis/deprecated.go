package analysis

import (
	"strings"
)

// deprecatedMarker is the godoc deprecation paragraph prefix.
const deprecatedMarker = "Deprecated:"

// Deprecated bans the deprecation marker outright. PR 4 retired the
// panic-era API for good; nothing in this module is allowed to carry a
// godoc deprecation paragraph, because a deprecated-but-present symbol
// is exactly the half-retired state that produced the panic-era
// compatibility bugs. Remove the symbol instead of marking it. This
// analyzer replaces the old CI grep gate.
var Deprecated = &Analyzer{
	Name: "deprecated",
	Doc:  "report godoc deprecation markers; this module removes symbols instead of deprecating them",
	Run:  runDeprecated,
}

func runDeprecated(pass *Pass) error {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if deprecatedComment(c.Text) {
					pass.Reportf(c.Pos(), "deprecation marker found: delete the symbol instead of deprecating it (the panic-era API retirement is final)")
				}
			}
		}
	}
	return nil
}

// deprecatedComment reports whether any line of the comment starts a
// godoc deprecation paragraph.
func deprecatedComment(text string) bool {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), deprecatedMarker) {
			return true
		}
	}
	return false
}
