package analysis

import (
	"go/ast"
	"go/types"
)

const hotpathMarker = "almost:hotpath"

// HotPathAlloc enforces the PR-5 zero-allocation contract on functions
// annotated with a `//almost:hotpath` doc-comment line (simCore, the
// Into/With APIs, the engine cache-hit path). Inside an annotated
// function it flags the allocating constructs that PR 5 evicted:
//
//   - make and new, unless the make is the documented grow-on-demand
//     idiom — inside an if whose condition checks cap(...) — which is
//     amortized-zero and allowed;
//   - append, which hides a grow;
//   - map composite literals;
//   - func literals, which usually escape (and allocate) when they
//     capture.
//
// Intentional allocations (e.g. a returned, caller-owned result slice)
// carry a //almost:nolint hotpathalloc directive with the reason.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "report allocating constructs inside //almost:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasMarker(fd.Doc, hotpathMarker) {
				continue
			}
			checkHotPathBody(pass, fd)
		}
	}
	return nil
}

func checkHotPathBody(pass *Pass, fd *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		switch e := n.(type) {
		case *ast.CallExpr:
			switch builtinName(pass.TypesInfo, e) {
			case "make":
				if !capGuarded(stack) {
					pass.Reportf(e.Pos(), "hot path (//%s): make allocates on every call; grow on demand behind a cap() check or reuse a scratch buffer", hotpathMarker)
				}
			case "new":
				pass.Reportf(e.Pos(), "hot path (//%s): new allocates; reuse pooled or caller-owned storage", hotpathMarker)
			case "append":
				pass.Reportf(e.Pos(), "hot path (//%s): append may grow and allocate; write into a cap-reserved buffer", hotpathMarker)
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(e); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(e.Pos(), "hot path (//%s): map literal allocates; hoist the map out of the hot path", hotpathMarker)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "hot path (//%s): func literal may escape and allocate; hoist the closure out of the hot path", hotpathMarker)
			return false // don't double-report constructs inside it
		}
		return true
	})
}

// capGuarded reports whether the innermost enclosing if statement's
// condition consults cap(...) — the grow-on-demand idiom:
//
//	if cap(buf) < n { buf = make([]T, n) }
func capGuarded(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "cap" {
				guarded = true
			}
			return !guarded
		})
		return guarded
	}
	return false
}
