package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// This file is the standalone package loader: `almostvet ./...` without
// go vet in front. It shells out to `go list -export -deps -json`,
// which compiles (into the build cache) and reports export data for
// every dependency, then type-checks each target package with the gc
// importer reading those export files. This is the same data flow the
// unitchecker path gets handed via the .cfg file, minus cmd/go as the
// orchestrator.

// listedPackage mirrors the `go list -json` fields the loader consumes.
type listedPackage struct {
	Dir         string
	ImportPath  string
	Name        string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	Standard    bool
	DepOnly     bool
	ForTest     string
	ImportMap   map[string]string
	Error       *struct{ Err string }
}

// goList runs `go list -e -export -json` with the given extra
// arguments in dir and decodes the JSON stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPackages loads, parses, and type-checks the packages matching
// patterns (relative to dir), including in-package test variants, ready
// for RunAnalyzers. Generated test-main packages and pure dependencies
// are loaded for their export data only.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, append([]string{"-deps", "-test"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // generated test main
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typeCheckListed(p, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// typeCheckListed parses and type-checks one listed package against the
// export data of its dependencies.
func typeCheckListed(p *listedPackage, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := newTypesInfo()
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{Path: p.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// newTypesInfo allocates the maps the analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
