package analysis

import (
	"go/ast"
	"go/types"
)

// determinismPackages are the packages whose result-reduction paths
// promise bit-for-bit identical output for any Parallelism (the PR 1/5
// trajectory invariant). The batched-inference layers (gnn, omla,
// subgraph) are included because the fused attack pass promises
// bit-identity with the scalar path — a map-ordered fold anywhere in
// extraction, packing, or readout would break the trajectory identity
// suites. Matched by the last path element so testdata stand-ins
// qualify too.
var determinismPackages = []string{
	"engine", "anneal", "core", "experiments", "service",
	"gnn", "omla", "subgraph",
}

// MapDeterminism flags `range` over a map inside the determinism-critical
// packages. Go randomizes map iteration order, so any reduction folded in
// map order breaks the jobs-invariant trajectory promise. Two shapes are
// allowed without a directive:
//
//   - test files (_test.go), where reductions don't feed results;
//   - pure key/value collection — a body consisting solely of
//     `s = append(s, ...)` statements — because the collector is
//     expected to sort before the slice is consumed.
//
// Anything else needs a sorted key slice, or a
// //almost:nolint mapdeterminism directive arguing why order cannot
// reach results.
var MapDeterminism = &Analyzer{
	Name: "mapdeterminism",
	Doc:  "report map iteration in result-reduction paths of engine/anneal/core/experiments/service/gnn/omla/subgraph",
	Run:  runMapDeterminism,
}

func runMapDeterminism(pass *Pass) error {
	applies := false
	for _, name := range determinismPackages {
		if pkgPathTail(pass.Pkg.Path(), name) {
			applies = true
			break
		}
	}
	if !applies {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if isPureCollection(rng.Body) {
				return true
			}
			pass.Reportf(rng.Pos(), "map iteration order is random: this range can fold results nondeterministically; iterate a sorted key slice instead")
			return true
		})
	}
	return nil
}

// isPureCollection reports whether every statement in body has the shape
// `x = append(x, ...)` — an order-insensitive collection the caller is
// expected to sort.
func isPureCollection(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, st := range body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 {
			return false
		}
		lhs := exprString(as.Lhs[0])
		// An unrenderable shape (e.g. a pointer deref) must not match
		// another unrenderable shape by both collapsing to "".
		if lhs == "" || exprString(call.Args[0]) != lhs {
			return false
		}
	}
	return true
}

// exprString renders a simple ident/selector chain ("a.b.c") for
// structural comparison; other shapes render as "".
func exprString(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}
