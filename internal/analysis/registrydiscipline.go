package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// RegistryDiscipline enforces the PR-4 adversary-zoo registration
// contract:
//
//   - RegisterAttacker / RegisterLocker may be called only from an init
//     function or from a same-named forwarder (the public almost.Register*
//     wrappers). Registration from arbitrary call paths makes the zoo's
//     contents order- and timing-dependent.
//   - The returned error must be consumed: discarding it hides duplicate
//     or empty registration keys until an experiment silently runs the
//     wrong ensemble.
//   - Every Attacker/Locker implementation's Name method must return a
//     constant lowercase literal or a receiver field, so the registration
//     key is stable and greppable; computed names break CLI listing and
//     scenario parsing.
//
// Test files are exempt (registry tests exercise the failure paths
// deliberately).
var RegistryDiscipline = &Analyzer{
	Name: "registrydiscipline",
	Doc:  "report attacker/locker registrations outside init and unstable Name() keys",
	Run:  runRegistryDiscipline,
}

func runRegistryDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		pluggable := pluggableReceivers(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRegisterCalls(pass, fd)
			checkNameMethod(pass, fd, pluggable)
		}
	}
	return nil
}

// pluggableReceivers collects receiver type names that carry an
// AttackCtx or LockCtx method in this file — the syntactic signature of
// an Attacker/Locker implementation.
func pluggableReceivers(f *ast.File) map[string]bool {
	out := map[string]bool{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil {
			continue
		}
		if fd.Name.Name == "AttackCtx" || fd.Name.Name == "LockCtx" {
			if name := recvTypeName(fd); name != "" {
				out[name] = true
			}
		}
	}
	return out
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func checkRegisterCalls(pass *Pass, fd *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || (fn.Name() != "RegisterAttacker" && fn.Name() != "RegisterLocker") {
			return true
		}
		if fd.Name.Name != "init" && fd.Name.Name != fn.Name() {
			pass.Reportf(call.Pos(), "%s must be called from init (or a same-named forwarder), not from %s: late registration makes the zoo order-dependent", fn.Name(), fd.Name.Name)
		}
		if registerErrorDiscarded(stack, call) {
			pass.Reportf(call.Pos(), "%s error discarded: duplicate or empty registration keys would go unnoticed", fn.Name())
		}
		return true
	})
}

// registerErrorDiscarded reports whether the registration call's error
// result is thrown away: a bare expression statement, or an assignment
// to blank.
func registerErrorDiscarded(stack []ast.Node, call *ast.CallExpr) bool {
	switch p := parentNode(stack).(type) {
	case *ast.ExprStmt:
		return true
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if unparen(rhs) != call || i >= len(p.Lhs) {
				continue
			}
			if id, ok := p.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				return true
			}
		}
	}
	return false
}

// checkNameMethod validates Name() on Attacker/Locker implementations:
// the body must be a single return of a lowercase string literal or of
// a receiver field selector.
func checkNameMethod(pass *Pass, fd *ast.FuncDecl, pluggable map[string]bool) {
	if fd.Recv == nil || fd.Name.Name != "Name" || !pluggable[recvTypeName(fd)] {
		return
	}
	if len(fd.Body.List) != 1 {
		pass.Reportf(fd.Pos(), "Name() of a registered scheme must be a single return of a constant lowercase literal (or receiver field); the registration key must be stable")
		return
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		pass.Reportf(fd.Pos(), "Name() of a registered scheme must return exactly one value")
		return
	}
	switch e := unparen(ret.Results[0]).(type) {
	case *ast.BasicLit:
		name, err := strconv.Unquote(e.Value)
		if err != nil || name == "" || name != strings.ToLower(name) || strings.ContainsAny(name, " \t") {
			pass.Reportf(e.Pos(), "registration key %s must be a non-empty lowercase literal with no spaces", e.Value)
		}
	case *ast.SelectorExpr:
		// A receiver field (e.g. `return a.name`): the key is fixed at
		// construction time, which the registry validates at Register.
		if _, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); !ok {
			pass.Reportf(e.Pos(), "Name() must return a constant literal or a receiver field, not a computed value")
		}
	default:
		pass.Reportf(ret.Pos(), "Name() must return a constant lowercase literal or a receiver field, not a computed value")
	}
}
