package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SatOutcome enforces the PR-6 budget discipline at every
// sat.Solver.Solve call site: Unknown (budget exhausted / cancelled)
// must be handled distinctly from Unsat. Collapsing the three-valued
// Status to a boolean (st == Unsat, st != Sat) silently converts a
// timeout into a proof, which is exactly how budgeted exact reasoning
// goes wrong. A call site is compliant when the result is
//
//   - returned to the caller (the caller owns the decision),
//   - switched on with an explicit Unknown case, or with both Sat and
//     Unsat cases so Unknown reaches a distinct default path, or
//   - compared against Unknown.
//
// Test files are exempt: assertions like `if s.Solve() != Sat` pin an
// expected outcome rather than make a budget decision.
var SatOutcome = &Analyzer{
	Name: "satoutcome",
	Doc:  "report sat.Solver.Solve call sites that conflate Unknown with Unsat",
	Run:  runSatOutcome,
}

func runSatOutcome(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSolveSites(pass, fd)
		}
	}
	return nil
}

func checkSolveSites(pass *Pass, fd *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSolverSolve(pass.TypesInfo, call) {
			return true
		}
		if !solveHandled(pass, fd, stack, call) {
			pass.Reportf(call.Pos(), "Solve result must distinguish Unknown from Unsat: return it, switch with an Unknown (or Sat+Unsat) case, or compare against Unknown")
		}
		return true
	})
}

// isSolverSolve reports whether call invokes the Solve method of a
// sat-package Solver.
func isSolverSolve(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Solve" || fn.Pkg() == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return false
	}
	return typeShortName(recv.Type()) == "Solver" && pkgPathTail(fn.Pkg().Path(), "sat")
}

// solveHandled decides compliance from the call's syntactic context;
// stack is the path from fd.Body down to call (inclusive).
func solveHandled(pass *Pass, fd *ast.FuncDecl, stack []ast.Node, call *ast.CallExpr) bool {
	parent := parentNode(stack)
	switch p := parent.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.SwitchStmt:
		if unparen(p.Tag) == call {
			return switchCasesCompliant(pass, p)
		}
	case *ast.BinaryExpr:
		if p.Op == token.EQL || p.Op == token.NEQ {
			other := p.X
			if unparen(other) == call {
				other = p.Y
			}
			return statusConstName(pass.TypesInfo, other) == "Unknown"
		}
	case *ast.AssignStmt:
		obj := assignedObj(pass.TypesInfo, p, call)
		if obj != nil {
			return statusVarHandled(pass, fd, obj)
		}
	}
	return false
}

// parentNode returns the nearest enclosing node that is not a paren
// wrapper around the top of the stack.
func parentNode(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		if _, isParen := stack[i].(*ast.ParenExpr); isParen {
			continue
		}
		return stack[i]
	}
	return nil
}

// switchCasesCompliant reports whether the switch distinguishes Unknown:
// either an explicit Unknown case, or both Sat and Unsat cases so that
// Unknown flows to a distinct default path.
func switchCasesCompliant(pass *Pass, sw *ast.SwitchStmt) bool {
	var hasUnknown, hasSat, hasUnsat bool
	for _, st := range sw.Body.List {
		cc, ok := st.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			switch statusConstName(pass.TypesInfo, e) {
			case "Unknown":
				hasUnknown = true
			case "Sat":
				hasSat = true
			case "Unsat":
				hasUnsat = true
			}
		}
	}
	return hasUnknown || (hasSat && hasUnsat)
}

// assignedObj returns the object bound to the Solve result in an
// assignment like `st := s.Solve(...)` (or `st = ...`), or nil when the
// result position can't be resolved to a single named variable.
func assignedObj(info *types.Info, as *ast.AssignStmt, call *ast.CallExpr) types.Object {
	for i, rhs := range as.Rhs {
		if unparen(rhs) != call || i >= len(as.Lhs) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if def := info.Defs[id]; def != nil {
			return def
		}
		return info.Uses[id]
	}
	return nil
}

// statusVarHandled scans fd for a compliant use of the status variable:
// a switch over it with compliant cases, a comparison against Unknown,
// or a return statement carrying it.
func statusVarHandled(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	handled := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if handled {
			return false
		}
		switch e := n.(type) {
		case *ast.SwitchStmt:
			if id, ok := unparen(e.Tag).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				handled = switchCasesCompliant(pass, e)
			}
		case *ast.BinaryExpr:
			if e.Op != token.EQL && e.Op != token.NEQ {
				return true
			}
			xIs := identIsObj(pass.TypesInfo, e.X, obj)
			yIs := identIsObj(pass.TypesInfo, e.Y, obj)
			if (xIs && statusConstName(pass.TypesInfo, e.Y) == "Unknown") ||
				(yIs && statusConstName(pass.TypesInfo, e.X) == "Unknown") {
				handled = true
			}
		case *ast.ReturnStmt:
			// Only the status itself being returned counts; returning a
			// derived boolean is exactly the collapse being policed.
			for _, r := range e.Results {
				if identIsObj(pass.TypesInfo, r, obj) {
					handled = true
				}
			}
		}
		return !handled
	})
	return handled
}

func identIsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// statusConstName returns "Unknown"/"Sat"/"Unsat" when e resolves to
// the corresponding sat.Status constant, else "".
func statusConstName(info *types.Info, e ast.Expr) string {
	var obj types.Object
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	}
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil || !pkgPathTail(c.Pkg().Path(), "sat") {
		return ""
	}
	if named, ok := c.Type().(*types.Named); !ok || named.Obj().Name() != "Status" {
		return ""
	}
	switch c.Name() {
	case "Unknown", "Sat", "Unsat":
		return c.Name()
	}
	return ""
}
