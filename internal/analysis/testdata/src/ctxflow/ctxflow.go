// Package ctxflow exercises the ctxflow analyzer.
package ctxflow

import "context"

// EvalCtx is the ctx-aware primitive the package is built around.
func EvalCtx(ctx context.Context, n int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
		return n
	}
}

// Eval is the documented compatibility-wrapper shape: no ctx parameter,
// Background passed straight into the Ctx sibling.
func Eval(n int) int {
	return EvalCtx(context.Background(), n)
}

// Minting a fresh context while one is in scope severs cancellation.
func evalTwice(ctx context.Context, n int) int {
	a := EvalCtx(ctx, n)
	b := EvalCtx(context.Background(), n) // want `severs cancellation`
	return a + b
}

// TODO is never acceptable in library code.
func evalTodo(n int) int {
	return EvalCtx(context.TODO(), n) // want `context.TODO marks unfinished threading`
}

// Background outside the wrapper argument position is flagged even
// without a ctx parameter in scope.
func evalStored(n int) int {
	bg := context.Background() // want `outside the compatibility-wrapper position`
	return EvalCtx(bg, n)
}

// Calling the ctx-less variant while holding a ctx drops it.
func evalDropped(ctx context.Context, n int) int {
	_ = ctx.Err()
	return Eval(n) // want `ctx is in scope but Eval is called without it; use ctxflow.EvalCtx`
}

// An unused named ctx parameter is dead weight or a latent drop.
func evalIgnored(ctx context.Context, n int) int { // want `ctx parameter "ctx" is never used`
	return n
}

// Naming the parameter _ documents that cancellation is ignored.
func evalUncancellable(_ context.Context, n int) int {
	return n
}

// A reasoned directive suppresses the finding.
func evalDetached(ctx context.Context, n int) int {
	_ = ctx.Err()
	//almost:nolint ctxflow // detached audit logging must survive caller cancellation
	return EvalCtx(context.Background(), n)
}

// Method pairs resolve through the receiver's method set.
type Runner struct{}

func (Runner) Run(n int) int { return n }

func (Runner) RunCtx(ctx context.Context, n int) int { return EvalCtx(ctx, n) }

func runDropped(ctx context.Context, r Runner, n int) int {
	_ = ctx.Err()
	return r.Run(n) // want `ctx is in scope but Run is called without it; use Runner.RunCtx`
}
