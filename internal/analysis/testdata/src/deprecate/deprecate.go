// Package deprecate exercises the analyzer that bans godoc deprecation
// markers: symbols are removed, never marked.
package deprecate

// OldEval is the retired shape.
//
// Deprecated: use Eval instead. // want `deprecation marker found`
func OldEval(n int) int { return n }

// Eval mentions that something was deprecated mid-sentence, which is
// prose, not a marker paragraph.
func Eval(n int) int { return n }
