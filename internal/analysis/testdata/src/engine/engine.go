// Package engine exercises the mapdeterminism analyzer: the package
// name stands in for the real determinism-critical packages, which are
// matched by import-path tail.
package engine

import "sort"

// Folding directly in map order is the bug class.
func foldUnsorted(scores map[string]float64) float64 {
	var total float64
	for _, v := range scores { // want `map iteration order is random`
		total += v
	}
	return total
}

// Collect-then-sort is the sanctioned shape: a pure append body is
// allowed, and the sorted iteration that follows ranges over a slice.
func foldSorted(scores map[string]float64) float64 {
	var names []string
	for name := range scores {
		names = append(names, name)
	}
	sort.Strings(names)
	var total float64
	for _, name := range names {
		total += scores[name]
	}
	return total
}

// A reasoned directive suppresses the finding.
func foldCommutative(counts map[string]int) int {
	n := 0
	//almost:nolint mapdeterminism // integer addition is commutative and associative; order cannot reach the result
	for _, c := range counts {
		n += c
	}
	return n
}

// A mixed body is not a pure collection.
func collectAndCount(scores map[string]float64) ([]string, int) {
	var names []string
	n := 0
	for name := range scores { // want `map iteration order is random`
		names = append(names, name)
		n++
	}
	return names, n
}
