package engine

// Test files are exempt: reductions here never feed experiment results.
func sumForAssertion(scores map[string]float64) float64 {
	var total float64
	for _, v := range scores {
		total += v
	}
	return total
}
