// Package gnn exercises mapdeterminism over the batched-inference
// layers: gnn/omla/subgraph joined the determinism-critical set when the
// fused attack pass started promising bit-identity with the scalar path.
package gnn

import "sort"

// A map-ordered fold inside batch readout would make scores vary run to
// run — exactly what the trajectory identity suites forbid.
func readoutInMapOrder(logitsByGraph map[int]float64) float64 {
	var total float64
	for _, v := range logitsByGraph { // want `map iteration order is random`
		total += v
	}
	return total
}

// Appending through an unrenderable lvalue is not the sanctioned pure
// collection (`s = append(s, ...)`): the analyzer must not let two
// unrenderable shapes match each other.
func packInMapOrder(nodesByGraph map[int][]int, xs *[]int) {
	for _, nodes := range nodesByGraph { // want `map iteration order is random`
		*xs = append(*xs, nodes...)
	}
}

// Collect-then-sort is the sanctioned shape.
func packSorted(nodesByGraph map[int][]int, xs *[]int) {
	var ids []int
	for id := range nodesByGraph {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		*xs = append(*xs, nodesByGraph[id]...)
	}
}
