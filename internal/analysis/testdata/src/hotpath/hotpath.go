// Package hotpath exercises the hotpathalloc analyzer.
package hotpath

// Annotated: every allocating construct is flagged.
//
//almost:hotpath
func bad(n int) []int {
	s := make([]int, n) // want `make allocates on every call`
	p := new(int)       // want `new allocates`
	s = append(s, *p)   // want `append may grow and allocate`
	m := map[int]int{}  // want `map literal allocates`
	_ = m
	f := func() int { return n } // want `func literal may escape`
	_ = f
	return s
}

// Annotated: the grow-on-demand idiom is allowed.
//
//almost:hotpath
func growOnDemand(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	return buf[:n]
}

// Annotated: a justified allocation is suppressed with a reasoned
// directive.
//
//almost:hotpath
func ownedResult(n int) []int {
	out := make([]int, n) //almost:nolint hotpathalloc // the result is caller-owned by contract
	return out
}

// Unannotated functions may allocate freely.
func cold(n int) []int {
	s := make([]int, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	return s
}
