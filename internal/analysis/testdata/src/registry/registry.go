// Package registry exercises the registrydiscipline analyzer.
package registry

import "errors"

// Attacker is the pluggable-attack shape (recognized syntactically by
// its AttackCtx method).
type Attacker interface {
	Name() string
	AttackCtx() error
}

// RegisterAttacker records an attacker under its Name key.
func RegisterAttacker(a Attacker) error {
	if a == nil || a.Name() == "" {
		return errors.New("registry: invalid attacker")
	}
	return nil
}

type goodAttacker struct{}

func (goodAttacker) Name() string     { return "good" }
func (goodAttacker) AttackCtx() error { return nil }

type fieldAttacker struct{ name string }

// A receiver field is a stable key fixed at construction time.
func (a fieldAttacker) Name() string     { return a.name }
func (a fieldAttacker) AttackCtx() error { return nil }

type shoutingAttacker struct{}

func (shoutingAttacker) Name() string {
	return "SHOUTING" // want `registration key "SHOUTING" must be a non-empty lowercase literal`
}
func (shoutingAttacker) AttackCtx() error { return nil }

type computedAttacker struct{}

func (computedAttacker) Name() string {
	return "com" + "puted" // want `Name\(\) must return a constant lowercase literal or a receiver field`
}
func (computedAttacker) AttackCtx() error { return nil }

func init() {
	if err := RegisterAttacker(goodAttacker{}); err != nil {
		panic(err)
	}
}

func init() {
	RegisterAttacker(fieldAttacker{name: "field"})     // want `RegisterAttacker error discarded`
	_ = RegisterAttacker(fieldAttacker{name: "blank"}) // want `RegisterAttacker error discarded`
}

// Registration outside init makes the zoo order-dependent.
func enableLate(a Attacker) error {
	return RegisterAttacker(a) // want `RegisterAttacker must be called from init`
}

// A reasoned directive suppresses the finding.
func enableForBenchmarks(a Attacker) error {
	//almost:nolint registrydiscipline // the benchmark harness swaps zoos per run and owns the registry lifecycle
	return RegisterAttacker(a)
}
