// Package registryfwd exercises the same-named-forwarder exemption of
// registrydiscipline: the public API surface re-exports the registry
// entry points, which is not a late registration.
package registryfwd

import "registry"

// RegisterAttacker forwards to the internal registry; same-named
// forwarders are the one sanctioned non-init call site.
func RegisterAttacker(a registry.Attacker) error {
	return registry.RegisterAttacker(a)
}

// enable is not a forwarder: the call escapes init discipline.
func enable(a registry.Attacker) error {
	return registry.RegisterAttacker(a) // want `RegisterAttacker must be called from init`
}
