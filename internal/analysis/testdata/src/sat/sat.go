// Package sat is a minimal stand-in for the real solver package: the
// satoutcome analyzer matches the Solver/Status shapes by name and
// package-path tail.
package sat

// Status is the three-valued solve outcome.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

// Solver is a budgeted SAT solver.
type Solver struct{}

// Solve runs the solver within its budget.
func (*Solver) Solve(assumptions ...int) Status { return Unknown }
