// Package satuse exercises the satoutcome analyzer.
package satuse

import "sat"

// Comparing to Unsat collapses Unknown into the wrong branch.
func collapsedUnsat(s *sat.Solver) bool {
	return s.Solve() == sat.Unsat // want `Solve result must distinguish Unknown from Unsat`
}

// Discarding the outcome is worse still.
func discarded(s *sat.Solver) {
	s.Solve() // want `Solve result must distinguish Unknown from Unsat`
}

// A switch that only separates Unsat from everything else conflates
// Unknown with Sat.
func collapsedSwitch(s *sat.Solver) bool {
	switch s.Solve() { // want `Solve result must distinguish Unknown from Unsat`
	case sat.Unsat:
		return false
	default:
		return true
	}
}

// Returning the status hands the decision to the caller.
func forwarded(s *sat.Solver) sat.Status {
	return s.Solve()
}

// An explicit Unknown case is compliant.
func explicitUnknown(s *sat.Solver) int {
	switch s.Solve() {
	case sat.Unknown:
		return 0
	case sat.Unsat:
		return 1
	default:
		return 2
	}
}

// Sat and Unsat cases leave Unknown a distinct default path.
func satUnsatSplit(s *sat.Solver) int {
	st := s.Solve()
	switch st {
	case sat.Sat:
		return 1
	case sat.Unsat:
		return 2
	}
	return 0
}

// Comparing against Unknown is a budget check.
func budgetCheck(s *sat.Solver) bool {
	return s.Solve() != sat.Unknown
}

// The assigned variable may be checked later in the function.
func deferredCheck(s *sat.Solver) bool {
	st := s.Solve()
	if st == sat.Unknown {
		return false
	}
	return st == sat.Sat
}

// A reasoned directive suppresses the finding.
func provenTotal(s *sat.Solver) bool {
	//almost:nolint satoutcome // the formula is constructed without budget limits, so Unknown cannot occur
	return s.Solve() == sat.Sat
}
