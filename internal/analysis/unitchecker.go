package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool` protocol (the x/tools
// "unitchecker" role) plus the standalone pattern mode. cmd/go probes
// the tool with -V=full (cache key) and -flags (supported flags), then
// invokes it once per package with a single *.cfg argument describing
// the compiled package: file list, import map, and export-data paths.
// Exit status 2 reports findings; 1 reports tool failure.

// vetConfig mirrors the JSON payload cmd/go writes to the .cfg file.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// triState distinguishes an unset analyzer flag from an explicit
// true/false, matching cmd/go's analyzer-selection convention: if any
// analyzer flag is explicitly true, only those analyzers run; explicit
// falses subtract from the full suite.
type triState int

const (
	unset triState = iota
	setTrue
	setFalse
)

func (t *triState) String() string {
	return map[triState]string{setTrue: "true", setFalse: "false"}[*t]
}

func (t *triState) Set(s string) error {
	switch s {
	case "true", "":
		*t = setTrue
	case "false":
		*t = setFalse
	default:
		return fmt.Errorf("invalid boolean %q", s)
	}
	return nil
}

func (t *triState) IsBoolFlag() bool { return true }

// versionFlag implements -V=full: cmd/go hashes this output into its
// action cache key, so it must change whenever the tool binary does.
type versionFlag struct{}

func (versionFlag) String() string { return "" }
func (versionFlag) IsBoolFlag() bool {
	return true
}
func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

// Main is the entry point shared by cmd/almostvet: it speaks the
// vettool protocol when handed a .cfg file and otherwise loads the
// argument patterns itself.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: %s [-analyzer...] package...\n", progname)
		fmt.Fprintf(fs.Output(), "   or: go vet -vettool=$(command -v %s) package...\n\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-20s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	fs.Var(versionFlag{}, "V", "print version and exit")
	printflags := fs.Bool("flags", false, "print analyzer flags in JSON")
	jsonOut := fs.Bool("json", false, "emit JSON output")
	selection := make(map[string]*triState, len(analyzers))
	for _, a := range analyzers {
		t := new(triState)
		fs.Var(t, a.Name, "enable "+a.Name+" analysis")
		selection[a.Name] = t
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
	if *printflags {
		printFlagsJSON(fs)
		os.Exit(0)
	}
	enabled := selectAnalyzers(analyzers, selection)
	args := fs.Args()
	switch {
	case len(args) == 0:
		fs.Usage()
		os.Exit(1)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		runVetConfig(args[0], enabled, *jsonOut)
	default:
		runPatterns(args, enabled, *jsonOut)
	}
}

// printFlagsJSON emits the flag inventory cmd/go reads to decide which
// command-line flags it may forward to the tool.
func printFlagsJSON(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// selectAnalyzers applies the triState flag convention.
func selectAnalyzers(analyzers []*Analyzer, selection map[string]*triState) []*Analyzer {
	anyTrue := false
	for _, t := range selection {
		if *t == setTrue {
			anyTrue = true
		}
	}
	var out []*Analyzer
	for _, a := range analyzers {
		t := *selection[a.Name]
		if (anyTrue && t == setTrue) || (!anyTrue && t != setFalse) {
			out = append(out, a)
		}
	}
	return out
}

// runVetConfig analyzes the single package described by a cmd/go .cfg
// file and exits with the protocol status.
func runVetConfig(cfgPath string, analyzers []*Analyzer, jsonOut bool) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgPath, err)
	}
	if cfg.VetxOnly {
		// Facts-only invocation for a dependency; this suite keeps no
		// cross-package facts, so an empty vetx satisfies cmd/go.
		writeVetx(cfg.VetxOutput)
		os.Exit(0)
	}
	pkg, err := typeCheckVetConfig(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput)
			os.Exit(0)
		}
		log.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	writeVetx(cfg.VetxOutput)
	reportAndExit(cfg.ID, pkg.Fset, diags, jsonOut)
}

// typeCheckVetConfig builds a Package from the .cfg description, using
// the export-data files cmd/go already compiled.
func typeCheckVetConfig(cfg *vetConfig) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	return &Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func writeVetx(path string) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, nil, 0o666); err != nil {
		log.Fatal(err)
	}
}

// runPatterns is the standalone mode: load the patterns with go list
// and analyze every matched package.
func runPatterns(patterns []string, analyzers []*Analyzer, jsonOut bool) {
	pkgs, err := LoadPackages(".", patterns)
	if err != nil {
		log.Fatal(err)
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			log.Fatal(err)
		}
		if len(diags) > 0 {
			exit = 2
		}
		printDiagnostics(pkg.Path, pkg.Fset, diags, jsonOut)
	}
	os.Exit(exit)
}

// reportAndExit prints one package's findings and exits with the
// vettool protocol status: 0 clean, 2 findings (JSON mode always exits
// 0 and lets cmd/go interpret the payload).
func reportAndExit(id string, fset *token.FileSet, diags []Diagnostic, jsonOut bool) {
	printDiagnostics(id, fset, diags, jsonOut)
	if len(diags) > 0 && !jsonOut {
		os.Exit(2)
	}
	os.Exit(0)
}

func printDiagnostics(id string, fset *token.FileSet, diags []Diagnostic, jsonOut bool) {
	if jsonOut {
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := make(map[string][]jsonDiag)
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{fset.Position(d.Pos).String(), d.Message})
		}
		out, err := json.MarshalIndent(map[string]map[string][]jsonDiag{id: byAnalyzer}, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
		fmt.Println()
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}
