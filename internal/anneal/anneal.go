// Package anneal provides the generic simulated-annealing driver used by
// both of ALMOST's searches: the security-aware recipe generation of
// Eq. 1 and the adversarial-sample generation of Eq. 3 (and, in the
// re-synthesis analysis of Fig. 5, PPA-targeted searches).
//
// The schedule matches the paper's setup: geometric cooling from an
// initial temperature with a Metropolis acceptance criterion whose
// divisor is scaled by an "acceptance" constant (the paper uses
// T0 = 120, acceptance = 1.8, 100 iterations).
//
// Two drivers are provided: RunCtx, the classic sequential chain, and
// RunParallelCtx, which proposes a batch of K neighbors per iteration
// and evaluates them through a BatchProblem (backed by the concurrent
// engine in internal/engine) while remaining bit-for-bit deterministic
// for a fixed seed, independent of evaluation concurrency.
//
// Both drivers check the context at every iteration and, when it is
// canceled, return the best state found so far together with ctx.Err()
// — completed work is never discarded. An optional observer receives
// every trace point as it is recorded, which is how the core pipeline
// streams the Fig. 4/5 curves live. Run and RunParallel are the
// non-cancellable wrappers kept for callers without a context.
package anneal

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
)

// Problem defines a state space for annealing. Implementations must be
// deterministic given the rng stream.
type Problem[S any] interface {
	// Energy is the objective to minimize.
	Energy(s S) float64
	// Neighbor proposes a move from s.
	Neighbor(s S, rng *rand.Rand) S
}

// Config sets the schedule.
type Config struct {
	Iterations int
	InitTemp   float64 // T0
	Acceptance float64 // scales the Metropolis divisor
	Cooling    float64 // geometric factor per iteration; 0 = auto
	// Target, if non-zero-valued via HasTarget, stops the search early
	// when energy <= Target.
	Target    float64
	HasTarget bool
}

// PaperConfig mirrors §IV-C: 100 iterations, T0=120, acceptance=1.8.
func PaperConfig() Config {
	return Config{Iterations: 100, InitTemp: 120, Acceptance: 1.8}
}

// TracePoint records one iteration for the Fig. 4/5 style curves.
//
// TracePoint has a stable JSON wire encoding (the field tags below are
// a compatibility surface for persisted traces and the almostd event
// stream): a non-finite energy — the +Inf "never evaluated" sentinel,
// or the NaN an aborted ensemble evaluation leaves behind — is omitted
// on marshal and restored as NaN on unmarshal.
type TracePoint[S any] struct {
	Iteration int     `json:"iteration"`
	Energy    float64 `json:"energy"`     // energy of the current state after the move
	Best      float64 `json:"best"`       // best energy so far
	State     S       `json:"state"`      // current state
	BestState S       `json:"best_state"` // best state so far (may still be the initial state)
}

// finitePtr returns &f for finite values and nil otherwise, so NaN/Inf
// (which encoding/json rejects) marshal as an omitted field.
func finitePtr(f float64) *float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil
	}
	return &f
}

// fromFinitePtr inverts finitePtr: an absent energy unmarshals as NaN.
func fromFinitePtr(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// MarshalJSON implements the wire contract above: finite energies are
// always emitted (including zeros), non-finite ones are omitted.
func (tp TracePoint[S]) MarshalJSON() ([]byte, error) {
	type alias TracePoint[S]
	return json.Marshal(struct {
		alias
		Energy *float64 `json:"energy,omitempty"`
		Best   *float64 `json:"best,omitempty"`
	}{alias(tp), finitePtr(tp.Energy), finitePtr(tp.Best)})
}

// UnmarshalJSON restores an omitted energy field as NaN (see TracePoint).
func (tp *TracePoint[S]) UnmarshalJSON(data []byte) error {
	type alias TracePoint[S]
	aux := struct {
		*alias
		Energy *float64 `json:"energy"`
		Best   *float64 `json:"best"`
	}{alias: (*alias)(tp)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	tp.Energy = fromFinitePtr(aux.Energy)
	tp.Best = fromFinitePtr(aux.Best)
	return nil
}

// Result is the annealing outcome.
type Result[S any] struct {
	Best       S
	BestEnergy float64
	Trace      []TracePoint[S]
}

// coolingFactor resolves the per-iteration geometric factor, defaulting
// to a decay reaching ~1% of T0 over the run.
func coolingFactor(cfg Config) float64 {
	if cfg.Cooling > 0 && cfg.Cooling < 1 {
		return cfg.Cooling
	}
	return math.Pow(0.01, 1/math.Max(1, float64(cfg.Iterations)))
}

// Observer receives each trace point as it is recorded, before the next
// iteration begins. Observers must not mutate the state they are handed.
type Observer[S any] func(TracePoint[S])

// Run anneals from init, recording a trace point per iteration.
func Run[S any](p Problem[S], init S, cfg Config, rng *rand.Rand) Result[S] {
	res, _ := RunCtx[S](context.Background(), p, init, cfg, rng, nil)
	return res
}

// RunCtx anneals from init, recording a trace point per iteration and
// passing it to observe (when non-nil). The context is checked before
// every iteration; on cancellation the best-so-far result is returned
// alongside ctx.Err(). Once the initial energy has been computed the
// returned BestEnergy is always a real energy of Best — in particular,
// a cancellation landing before the first iteration reports the initial
// state's energy. Only when the context is canceled before that first
// Energy call does BestEnergy hold the +Inf sentinel, meaning "Best
// (the initial state) was never evaluated".
func RunCtx[S any](ctx context.Context, p Problem[S], init S, cfg Config,
	rng *rand.Rand, observe Observer[S]) (Result[S], error) {
	res := Result[S]{Best: init, BestEnergy: math.Inf(1)}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	cooling := coolingFactor(cfg)
	cur := init
	curE := p.Energy(cur)
	best := cur
	bestE := curE
	// From here on the result always carries a real evaluated energy,
	// never the +Inf sentinel.
	res.Best, res.BestEnergy = best, bestE
	temp := cfg.InitTemp
	for it := 0; it < cfg.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			res.Best, res.BestEnergy = best, bestE
			return res, err
		}
		cand := p.Neighbor(cur, rng)
		candE := p.Energy(cand)
		accept := candE <= curE
		if !accept && temp > 0 {
			prob := math.Exp(-(candE - curE) / (temp * cfg.Acceptance))
			accept = rng.Float64() < prob
		}
		if accept {
			cur, curE = cand, candE
		}
		if curE < bestE {
			best, bestE = cur, curE
		}
		tp := TracePoint[S]{Iteration: it, Energy: curE, Best: bestE, State: cur, BestState: best}
		res.Trace = append(res.Trace, tp)
		if observe != nil {
			observe(tp)
		}
		temp *= cooling
		if cfg.HasTarget && bestE <= cfg.Target {
			break
		}
	}
	res.Best = best
	res.BestEnergy = bestE
	return res, nil
}

// BatchProblem is a Problem whose energies can be computed for a whole
// batch of candidate states at once — the hook RunParallel uses to push
// per-iteration proposals through a concurrent evaluator (internal/engine).
// EnergyBatch must return energies in input order and must agree with
// Energy on every state.
type BatchProblem[S any] interface {
	Problem[S]
	EnergyBatch(ss []S) []float64
}

// BatchProblemCtx is a BatchProblem whose batch evaluation is itself
// cancellable. RunParallelCtx prefers this interface when implemented:
// a canceled evaluation returns an error (typically ctx.Err()) and the
// driver finalizes with the best state found so far, so even a
// cancellation landing mid-batch never blocks past the in-flight
// evaluations.
type BatchProblemCtx[S any] interface {
	Problem[S]
	EnergyBatchCtx(ctx context.Context, ss []S) ([]float64, error)
}

// ParallelConfig tunes RunParallel.
type ParallelConfig struct {
	// Proposals is K, the number of neighbors proposed and evaluated per
	// iteration. Values <= 1 propose a single neighbor (still through the
	// batch path). K changes the search trajectory; the worker count of
	// the underlying evaluator does not.
	Proposals int
	// Seed derives the per-proposal and acceptance rand streams. The
	// whole trajectory is a pure function of (problem, init, Config,
	// ParallelConfig), independent of evaluation concurrency.
	Seed int64
}

// mixSeed derives the rand seed for proposal i of iteration it from the
// master seed via a splitmix64-style finalizer. A plain linear formula
// (seed + it*K + i) would make nearby master seeds — e.g. the per-epoch
// seeds of Algorithm 1's adversarial searches — share most of their
// proposal streams; the avalanche mixing makes every (seed, it, i)
// triple an effectively independent stream.
func mixSeed(seed int64, it, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(it+1) + 0xBF58476D1CE4E5B9*uint64(i+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// RunParallel is the batched variant of Run used by the concurrent
// search pipeline: every iteration proposes K neighbors of the current
// state, evaluates all of them in one EnergyBatch call (concurrently,
// when p implements BatchProblem), and then performs an ordered
// reduction — candidates are considered in proposal order and the first
// one to pass the Metropolis test becomes the new state, which preserves
// the sequential chain's acceptance semantics while evaluating
// speculatively in parallel.
//
// Determinism: proposal k of iteration it draws from its own rand.Rand
// seeded from (Seed, it, k), and acceptance coins come from a dedicated
// stream, so the trajectory is bit-for-bit reproducible for a fixed seed
// regardless of how many workers the evaluator runs.
func RunParallel[S any](p Problem[S], init S, cfg Config, pcfg ParallelConfig) Result[S] {
	res, _ := RunParallelCtx[S](context.Background(), p, init, cfg, pcfg, nil)
	return res
}

// RunParallelCtx is the cancellable, observable variant of RunParallel.
// The context is checked before every iteration and inside every batch
// evaluation (when p implements BatchProblemCtx); on cancellation the
// best-so-far result is returned alongside ctx.Err(). observe, when
// non-nil, receives every trace point as it is recorded. The trajectory
// is identical to RunParallel's for an uncanceled context.
//
// As with RunCtx, once the initial batch evaluation has succeeded the
// returned BestEnergy is always a real evaluated energy of Best. Only
// two early-exit paths return the +Inf sentinel instead: the context
// was already canceled on entry, or the initial batch evaluation itself
// failed — in both, Best (the initial state) was never evaluated.
func RunParallelCtx[S any](ctx context.Context, p Problem[S], init S, cfg Config,
	pcfg ParallelConfig, observe Observer[S]) (Result[S], error) {
	k := pcfg.Proposals
	if k < 1 {
		k = 1
	}
	batch := func(ss []S) ([]float64, error) {
		if bp, ok := p.(BatchProblemCtx[S]); ok {
			return bp.EnergyBatchCtx(ctx, ss)
		}
		if bp, ok := p.(BatchProblem[S]); ok {
			return bp.EnergyBatch(ss), nil
		}
		out := make([]float64, len(ss))
		for i, s := range ss {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i] = p.Energy(s)
		}
		return out, nil
	}

	res := Result[S]{Best: init, BestEnergy: math.Inf(1)}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	cooling := coolingFactor(cfg)
	acceptRng := rand.New(rand.NewSource(pcfg.Seed ^ 0x5DEECE66D))
	cur := init
	initE, err := batch([]S{init})
	if err != nil {
		return res, err
	}
	curE := initE[0]
	best := cur
	bestE := curE
	// From here on the result always carries a real evaluated energy,
	// never the +Inf sentinel.
	res.Best, res.BestEnergy = best, bestE
	temp := cfg.InitTemp
	cands := make([]S, k)
	for it := 0; it < cfg.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			res.Best, res.BestEnergy = best, bestE
			return res, err
		}
		for i := 0; i < k; i++ {
			propRng := rand.New(rand.NewSource(mixSeed(pcfg.Seed, it, i)))
			cands[i] = p.Neighbor(cur, propRng)
		}
		energies, err := batch(cands)
		if err != nil {
			res.Best, res.BestEnergy = best, bestE
			return res, err
		}
		// Ordered reduction: first candidate accepted by the Metropolis
		// criterion wins; one coin is spent per considered candidate so
		// the decision sequence is independent of evaluation order.
		for i := 0; i < k; i++ {
			accept := energies[i] <= curE
			if !accept && temp > 0 {
				prob := math.Exp(-(energies[i] - curE) / (temp * cfg.Acceptance))
				accept = acceptRng.Float64() < prob
			}
			if accept {
				cur, curE = cands[i], energies[i]
				break
			}
		}
		if curE < bestE {
			best, bestE = cur, curE
		}
		tp := TracePoint[S]{Iteration: it, Energy: curE, Best: bestE, State: cur, BestState: best}
		res.Trace = append(res.Trace, tp)
		if observe != nil {
			observe(tp)
		}
		temp *= cooling
		if cfg.HasTarget && bestE <= cfg.Target {
			break
		}
	}
	res.Best = best
	res.BestEnergy = bestE
	return res, nil
}
