// Package anneal provides the generic simulated-annealing driver used by
// both of ALMOST's searches: the security-aware recipe generation of
// Eq. 1 and the adversarial-sample generation of Eq. 3 (and, in the
// re-synthesis analysis of Fig. 5, PPA-targeted searches).
//
// The schedule matches the paper's setup: geometric cooling from an
// initial temperature with a Metropolis acceptance criterion whose
// divisor is scaled by an "acceptance" constant (the paper uses
// T0 = 120, acceptance = 1.8, 100 iterations).
package anneal

import (
	"math"
	"math/rand"
)

// Problem defines a state space for annealing. Implementations must be
// deterministic given the rng stream.
type Problem[S any] interface {
	// Energy is the objective to minimize.
	Energy(s S) float64
	// Neighbor proposes a move from s.
	Neighbor(s S, rng *rand.Rand) S
}

// Config sets the schedule.
type Config struct {
	Iterations int
	InitTemp   float64 // T0
	Acceptance float64 // scales the Metropolis divisor
	Cooling    float64 // geometric factor per iteration; 0 = auto
	// Target, if non-zero-valued via HasTarget, stops the search early
	// when energy <= Target.
	Target    float64
	HasTarget bool
}

// PaperConfig mirrors §IV-C: 100 iterations, T0=120, acceptance=1.8.
func PaperConfig() Config {
	return Config{Iterations: 100, InitTemp: 120, Acceptance: 1.8}
}

// TracePoint records one iteration for the Fig. 4/5 style curves.
type TracePoint[S any] struct {
	Iteration int
	Energy    float64 // energy of the current state after the move
	Best      float64 // best energy so far
	State     S       // current state
}

// Result is the annealing outcome.
type Result[S any] struct {
	Best       S
	BestEnergy float64
	Trace      []TracePoint[S]
}

// Run anneals from init, recording a trace point per iteration.
func Run[S any](p Problem[S], init S, cfg Config, rng *rand.Rand) Result[S] {
	cooling := cfg.Cooling
	if cooling <= 0 || cooling >= 1 {
		// Auto: decay to ~1% of T0 over the run.
		cooling = math.Pow(0.01, 1/math.Max(1, float64(cfg.Iterations)))
	}
	cur := init
	curE := p.Energy(cur)
	best := cur
	bestE := curE
	temp := cfg.InitTemp
	res := Result[S]{}
	for it := 0; it < cfg.Iterations; it++ {
		cand := p.Neighbor(cur, rng)
		candE := p.Energy(cand)
		accept := candE <= curE
		if !accept && temp > 0 {
			prob := math.Exp(-(candE - curE) / (temp * cfg.Acceptance))
			accept = rng.Float64() < prob
		}
		if accept {
			cur, curE = cand, candE
		}
		if curE < bestE {
			best, bestE = cur, curE
		}
		res.Trace = append(res.Trace, TracePoint[S]{Iteration: it, Energy: curE, Best: bestE, State: cur})
		temp *= cooling
		if cfg.HasTarget && bestE <= cfg.Target {
			break
		}
	}
	res.Best = best
	res.BestEnergy = bestE
	return res
}
