package anneal

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic is a 1-D toy problem with minimum at 7.
type quadratic struct{}

func (quadratic) Energy(x float64) float64 { return (x - 7) * (x - 7) }
func (quadratic) Neighbor(x float64, rng *rand.Rand) float64 {
	return x + rng.NormFloat64()
}

func TestRunConvergesOnQuadratic(t *testing.T) {
	cfg := Config{Iterations: 500, InitTemp: 10, Acceptance: 1.0}
	res := Run[float64](quadratic{}, -20, cfg, rand.New(rand.NewSource(1)))
	if math.Abs(res.Best-7) > 0.5 {
		t.Fatalf("best = %v, want ~7", res.Best)
	}
	if res.BestEnergy > 0.3 {
		t.Fatalf("best energy = %v", res.BestEnergy)
	}
}

func TestTraceRecordsEveryIteration(t *testing.T) {
	cfg := Config{Iterations: 50, InitTemp: 5, Acceptance: 1.8}
	res := Run[float64](quadratic{}, 0, cfg, rand.New(rand.NewSource(2)))
	if len(res.Trace) != 50 {
		t.Fatalf("trace length = %d", len(res.Trace))
	}
	// Best is monotone non-increasing.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Best > res.Trace[i-1].Best+1e-12 {
			t.Fatalf("best energy increased at %d", i)
		}
	}
	if res.Trace[len(res.Trace)-1].Best != res.BestEnergy {
		t.Fatalf("final best mismatch")
	}
}

func TestEarlyStopOnTarget(t *testing.T) {
	cfg := Config{Iterations: 10000, InitTemp: 10, Acceptance: 1.0,
		Target: 0.01, HasTarget: true}
	res := Run[float64](quadratic{}, -20, cfg, rand.New(rand.NewSource(3)))
	if len(res.Trace) == 10000 {
		t.Fatalf("no early stop")
	}
	if res.BestEnergy > 0.01 {
		t.Fatalf("stopped without reaching target: %v", res.BestEnergy)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := PaperConfig()
	r1 := Run[float64](quadratic{}, 0, cfg, rand.New(rand.NewSource(4)))
	r2 := Run[float64](quadratic{}, 0, cfg, rand.New(rand.NewSource(4)))
	if r1.Best != r2.Best || len(r1.Trace) != len(r2.Trace) {
		t.Fatalf("nondeterministic annealing")
	}
}

// hill has a local minimum at 0 (energy 1) and global at 10 (energy 0),
// separated by a barrier; greedy from 0 stays stuck, SA with temperature
// should escape at least sometimes.
type hill struct{}

func (hill) Energy(x float64) float64 {
	switch {
	case x < 3:
		return 1 + x*x*0.01
	case x < 7:
		return 3 - 0.01*x // barrier plateau, decreasing
	default:
		return (x - 10) * (x - 10) * 0.1
	}
}
func (hill) Neighbor(x float64, rng *rand.Rand) float64 {
	return x + rng.NormFloat64()*2
}

func TestTemperatureEscapesLocalMinimum(t *testing.T) {
	hot := Config{Iterations: 2000, InitTemp: 50, Acceptance: 1.8}
	res := Run[float64](hill{}, 0, hot, rand.New(rand.NewSource(5)))
	if res.BestEnergy > 0.5 {
		t.Fatalf("SA stuck in local minimum: best=%v energy=%v", res.Best, res.BestEnergy)
	}
}

func TestPaperConfigValues(t *testing.T) {
	cfg := PaperConfig()
	if cfg.Iterations != 100 || cfg.InitTemp != 120 || cfg.Acceptance != 1.8 {
		t.Fatalf("paper config drifted: %+v", cfg)
	}
}
