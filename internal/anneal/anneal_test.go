package anneal

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic is a 1-D toy problem with minimum at 7.
type quadratic struct{}

func (quadratic) Energy(x float64) float64 { return (x - 7) * (x - 7) }
func (quadratic) Neighbor(x float64, rng *rand.Rand) float64 {
	return x + rng.NormFloat64()
}

func TestRunConvergesOnQuadratic(t *testing.T) {
	cfg := Config{Iterations: 500, InitTemp: 10, Acceptance: 1.0}
	res := Run[float64](quadratic{}, -20, cfg, rand.New(rand.NewSource(1)))
	if math.Abs(res.Best-7) > 0.5 {
		t.Fatalf("best = %v, want ~7", res.Best)
	}
	if res.BestEnergy > 0.3 {
		t.Fatalf("best energy = %v", res.BestEnergy)
	}
}

func TestTraceRecordsEveryIteration(t *testing.T) {
	cfg := Config{Iterations: 50, InitTemp: 5, Acceptance: 1.8}
	res := Run[float64](quadratic{}, 0, cfg, rand.New(rand.NewSource(2)))
	if len(res.Trace) != 50 {
		t.Fatalf("trace length = %d", len(res.Trace))
	}
	// Best is monotone non-increasing.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Best > res.Trace[i-1].Best+1e-12 {
			t.Fatalf("best energy increased at %d", i)
		}
	}
	if res.Trace[len(res.Trace)-1].Best != res.BestEnergy {
		t.Fatalf("final best mismatch")
	}
}

func TestEarlyStopOnTarget(t *testing.T) {
	cfg := Config{Iterations: 10000, InitTemp: 10, Acceptance: 1.0,
		Target: 0.01, HasTarget: true}
	res := Run[float64](quadratic{}, -20, cfg, rand.New(rand.NewSource(3)))
	if len(res.Trace) == 10000 {
		t.Fatalf("no early stop")
	}
	if res.BestEnergy > 0.01 {
		t.Fatalf("stopped without reaching target: %v", res.BestEnergy)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := PaperConfig()
	r1 := Run[float64](quadratic{}, 0, cfg, rand.New(rand.NewSource(4)))
	r2 := Run[float64](quadratic{}, 0, cfg, rand.New(rand.NewSource(4)))
	if r1.Best != r2.Best || len(r1.Trace) != len(r2.Trace) {
		t.Fatalf("nondeterministic annealing")
	}
}

// hill has a local minimum at 0 (energy 1) and global at 10 (energy 0),
// separated by a barrier; greedy from 0 stays stuck, SA with temperature
// should escape at least sometimes.
type hill struct{}

func (hill) Energy(x float64) float64 {
	switch {
	case x < 3:
		return 1 + x*x*0.01
	case x < 7:
		return 3 - 0.01*x // barrier plateau, decreasing
	default:
		return (x - 10) * (x - 10) * 0.1
	}
}
func (hill) Neighbor(x float64, rng *rand.Rand) float64 {
	return x + rng.NormFloat64()*2
}

func TestTemperatureEscapesLocalMinimum(t *testing.T) {
	hot := Config{Iterations: 2000, InitTemp: 50, Acceptance: 1.8}
	res := Run[float64](hill{}, 0, hot, rand.New(rand.NewSource(5)))
	if res.BestEnergy > 0.5 {
		t.Fatalf("SA stuck in local minimum: best=%v energy=%v", res.Best, res.BestEnergy)
	}
}

func TestPaperConfigValues(t *testing.T) {
	cfg := PaperConfig()
	if cfg.Iterations != 100 || cfg.InitTemp != 120 || cfg.Acceptance != 1.8 {
		t.Fatalf("paper config drifted: %+v", cfg)
	}
}

// batchQuadratic wraps quadratic with a batch interface that records how
// evaluation was batched.
type batchQuadratic struct {
	quadratic
	batchSizes []int
}

func (b *batchQuadratic) EnergyBatch(ss []float64) []float64 {
	b.batchSizes = append(b.batchSizes, len(ss))
	out := make([]float64, len(ss))
	for i, s := range ss {
		out[i] = b.Energy(s)
	}
	return out
}

func TestRunParallelConvergesOnQuadratic(t *testing.T) {
	cfg := Config{Iterations: 500, InitTemp: 10, Acceptance: 1.0}
	res := RunParallel[float64](quadratic{}, -20, cfg, ParallelConfig{Proposals: 4, Seed: 1})
	if math.Abs(res.Best-7) > 0.5 {
		t.Fatalf("best = %v, want ~7", res.Best)
	}
}

func TestRunParallelDeterministic(t *testing.T) {
	cfg := Config{Iterations: 200, InitTemp: 10, Acceptance: 1.8}
	pcfg := ParallelConfig{Proposals: 4, Seed: 42}
	r1 := RunParallel[float64](quadratic{}, 0, cfg, pcfg)
	r2 := RunParallel[float64](quadratic{}, 0, cfg, pcfg)
	if r1.Best != r2.Best || r1.BestEnergy != r2.BestEnergy {
		t.Fatal("RunParallel not deterministic for a fixed seed")
	}
	if len(r1.Trace) != len(r2.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(r1.Trace), len(r2.Trace))
	}
	for i := range r1.Trace {
		if r1.Trace[i].Energy != r2.Trace[i].Energy || r1.Trace[i].State != r2.Trace[i].State {
			t.Fatalf("trace diverges at %d", i)
		}
	}
}

func TestRunParallelUsesBatchInterface(t *testing.T) {
	cfg := Config{Iterations: 10, InitTemp: 5, Acceptance: 1.0}
	p := &batchQuadratic{}
	RunParallel[float64](p, 0, cfg, ParallelConfig{Proposals: 3, Seed: 7})
	// One batch of 1 for the initial state, then one batch of K per iteration.
	if len(p.batchSizes) != 11 {
		t.Fatalf("batches = %d, want 11", len(p.batchSizes))
	}
	if p.batchSizes[0] != 1 {
		t.Fatalf("initial batch size = %d, want 1", p.batchSizes[0])
	}
	for _, n := range p.batchSizes[1:] {
		if n != 3 {
			t.Fatalf("iteration batch size = %d, want K=3", n)
		}
	}
}

func TestRunParallelProposalsDefaultToOne(t *testing.T) {
	cfg := Config{Iterations: 50, InitTemp: 5, Acceptance: 1.0}
	res := RunParallel[float64](quadratic{}, 0, cfg, ParallelConfig{Seed: 5})
	if len(res.Trace) != 50 {
		t.Fatalf("trace length = %d", len(res.Trace))
	}
}

func TestRunParallelEarlyStopOnTarget(t *testing.T) {
	cfg := Config{Iterations: 10000, InitTemp: 10, Acceptance: 1.0,
		Target: 0.01, HasTarget: true}
	res := RunParallel[float64](quadratic{}, -20, cfg, ParallelConfig{Proposals: 4, Seed: 3})
	if len(res.Trace) == 10000 {
		t.Fatalf("no early stop")
	}
	if res.BestEnergy > 0.01 {
		t.Fatalf("stopped without reaching target: %v", res.BestEnergy)
	}
}

func TestRunParallelBestIsMonotone(t *testing.T) {
	cfg := Config{Iterations: 100, InitTemp: 10, Acceptance: 1.8}
	res := RunParallel[float64](hill{}, 0, cfg, ParallelConfig{Proposals: 4, Seed: 9})
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Best > res.Trace[i-1].Best+1e-12 {
			t.Fatalf("best energy increased at %d", i)
		}
	}
	if res.Trace[len(res.Trace)-1].Best != res.BestEnergy {
		t.Fatalf("final best mismatch")
	}
}
