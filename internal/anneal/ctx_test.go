package anneal

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestRunCtxMatchesRun(t *testing.T) {
	cfg := Config{Iterations: 80, InitTemp: 5, Acceptance: 1.8}
	plain := Run[float64](quadratic{}, 0, cfg, rand.New(rand.NewSource(3)))
	ctxed, err := RunCtx[float64](context.Background(), quadratic{}, 0, cfg,
		rand.New(rand.NewSource(3)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Best != ctxed.Best || plain.BestEnergy != ctxed.BestEnergy ||
		len(plain.Trace) != len(ctxed.Trace) {
		t.Fatalf("RunCtx diverged from Run: %+v vs %+v", ctxed, plain)
	}
}

func TestRunCtxCancelReturnsBestSoFar(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{Iterations: 1000, InitTemp: 5, Acceptance: 1.8}
	seen := 0
	res, err := RunCtx[float64](ctx, quadratic{}, -20, cfg,
		rand.New(rand.NewSource(4)), func(tp TracePoint[float64]) {
			seen++
			if seen == 10 {
				cancel()
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Trace) != 10 {
		t.Fatalf("trace length = %d, want 10 (cancellation checkpoint per iteration)", len(res.Trace))
	}
	if res.BestEnergy != res.Trace[len(res.Trace)-1].Best {
		t.Fatalf("best-so-far not finalized: %v vs %v", res.BestEnergy, res.Trace[len(res.Trace)-1].Best)
	}
}

func TestRunCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Iterations: 10, InitTemp: 5, Acceptance: 1.8}
	res, err := RunCtx[float64](ctx, quadratic{}, 3, cfg, rand.New(rand.NewSource(5)), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res.Best != 3 {
		t.Fatalf("pre-canceled run must return the initial state, got %v", res.Best)
	}
	if len(res.Trace) != 0 {
		t.Fatalf("pre-canceled run recorded %d iterations", len(res.Trace))
	}
}

// cancelingQuadratic cancels the run's context from inside the first
// Energy call — modeling a cancellation that lands between the initial
// evaluation and the first iteration.
type cancelingQuadratic struct {
	cancel context.CancelFunc
	calls  int
}

func (p *cancelingQuadratic) Energy(x float64) float64 {
	p.calls++
	if p.calls == 1 {
		p.cancel()
	}
	return (x - 7) * (x - 7)
}
func (p *cancelingQuadratic) Neighbor(x float64, rng *rand.Rand) float64 {
	return x + rng.NormFloat64()
}

// TestRunCtxCancelBeforeFirstIterationKeepsInitEnergy pins the fix for
// the +Inf sentinel bug: a cancellation after the initial energy was
// computed but before the first iteration must report that energy, not
// Inf(1) attached to a real state.
func TestRunCtxCancelBeforeFirstIterationKeepsInitEnergy(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := &cancelingQuadratic{cancel: cancel}
	cfg := Config{Iterations: 100, InitTemp: 5, Acceptance: 1.8}
	res, err := RunCtx[float64](ctx, p, 3, cfg, rand.New(rand.NewSource(2)), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res.Best != 3 {
		t.Fatalf("Best = %v, want the initial state", res.Best)
	}
	if want := (3.0 - 7) * (3 - 7); res.BestEnergy != want {
		t.Fatalf("BestEnergy = %v, want the initial energy %v (not the Inf sentinel)", res.BestEnergy, want)
	}
}

func TestRunCtxPreCanceledKeepsInfSentinel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Iterations: 10, InitTemp: 5, Acceptance: 1.8}
	res, err := RunCtx[float64](ctx, quadratic{}, 3, cfg, rand.New(rand.NewSource(5)), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// Nothing was evaluated: the documented +Inf sentinel applies.
	if !math.IsInf(res.BestEnergy, 1) {
		t.Fatalf("BestEnergy = %v, want +Inf (nothing evaluated)", res.BestEnergy)
	}
}

// ctxQuadratic implements BatchProblemCtx, counting batch calls and
// optionally failing after a set number of them.
type ctxQuadratic struct {
	batches  int
	failAt   int // 0 = never
	failWith error
}

func (p *ctxQuadratic) Energy(x float64) float64 { return (x - 7) * (x - 7) }
func (p *ctxQuadratic) Neighbor(x float64, rng *rand.Rand) float64 {
	return x + rng.NormFloat64()
}
func (p *ctxQuadratic) EnergyBatchCtx(ctx context.Context, xs []float64) ([]float64, error) {
	p.batches++
	if p.failAt > 0 && p.batches >= p.failAt {
		return nil, p.failWith
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = p.Energy(x)
	}
	return out, nil
}

func TestRunParallelCtxObserverSeesEveryIteration(t *testing.T) {
	cfg := Config{Iterations: 40, InitTemp: 5, Acceptance: 1.8}
	pcfg := ParallelConfig{Proposals: 3, Seed: 9}
	var events []TracePoint[float64]
	res, err := RunParallelCtx[float64](context.Background(), &ctxQuadratic{}, -10, cfg, pcfg,
		func(tp TracePoint[float64]) { events = append(events, tp) })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(res.Trace) {
		t.Fatalf("observer saw %d events, trace has %d", len(events), len(res.Trace))
	}
	for i, ev := range events {
		if ev != res.Trace[i] {
			t.Fatalf("event %d diverges from trace: %+v vs %+v", i, ev, res.Trace[i])
		}
	}
}

func TestRunParallelCtxMatchesRunParallel(t *testing.T) {
	cfg := Config{Iterations: 60, InitTemp: 5, Acceptance: 1.8}
	pcfg := ParallelConfig{Proposals: 4, Seed: 11}
	plain := RunParallel[float64](&ctxQuadratic{}, -10, cfg, pcfg)
	ctxed, err := RunParallelCtx[float64](context.Background(), &ctxQuadratic{}, -10, cfg, pcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Best != ctxed.Best || plain.BestEnergy != ctxed.BestEnergy {
		t.Fatalf("RunParallelCtx diverged: %v/%v vs %v/%v",
			ctxed.Best, ctxed.BestEnergy, plain.Best, plain.BestEnergy)
	}
}

func TestRunParallelCtxBatchErrorFinalizesBestSoFar(t *testing.T) {
	boom := errors.New("boom")
	p := &ctxQuadratic{failAt: 5, failWith: boom}
	cfg := Config{Iterations: 1000, InitTemp: 5, Acceptance: 1.8}
	res, err := RunParallelCtx[float64](context.Background(), p, -10, cfg,
		ParallelConfig{Proposals: 2, Seed: 13}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Batch 1 scores the initial state; batches 2-4 complete iterations
	// 0-2; batch 5 fails, so the trace holds exactly 3 iterations.
	if len(res.Trace) != 3 {
		t.Fatalf("trace length = %d, want 3", len(res.Trace))
	}
	if res.BestEnergy != res.Trace[len(res.Trace)-1].Best {
		t.Fatalf("best-so-far not finalized on batch error")
	}
}

// TestRunParallelCtxCancelAfterInitBatchKeepsInitEnergy is the
// RunParallelCtx half of the +Inf sentinel fix: a cancellation landing
// right after the successful initial batch reports the initial energy.
func TestRunParallelCtxCancelAfterInitBatchKeepsInitEnergy(t *testing.T) {
	// The first batch (scoring the initial state) succeeds; the second
	// (iteration 0's proposals) reports cancellation.
	p := &ctxQuadratic{failAt: 2, failWith: context.Canceled}
	cfg := Config{Iterations: 100, InitTemp: 5, Acceptance: 1.8}
	res, err := RunParallelCtx[float64](context.Background(), p, -10, cfg,
		ParallelConfig{Proposals: 2, Seed: 3}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if want := (-10.0 - 7) * (-10 - 7); res.BestEnergy != want {
		t.Fatalf("BestEnergy = %v, want the initial energy %v (not the Inf sentinel)", res.BestEnergy, want)
	}
	if res.Best != -10 {
		t.Fatalf("Best = %v, want the initial state", res.Best)
	}
}

// TestRunParallelCtxInitBatchErrorKeepsInfSentinel pins the documented
// sentinel for the one remaining unevaluated path: the initial batch
// itself fails.
func TestRunParallelCtxInitBatchErrorKeepsInfSentinel(t *testing.T) {
	boom := errors.New("boom")
	p := &ctxQuadratic{failAt: 1, failWith: boom}
	cfg := Config{Iterations: 100, InitTemp: 5, Acceptance: 1.8}
	res, err := RunParallelCtx[float64](context.Background(), p, -10, cfg,
		ParallelConfig{Proposals: 2, Seed: 3}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !math.IsInf(res.BestEnergy, 1) {
		t.Fatalf("BestEnergy = %v, want +Inf (initial batch never evaluated)", res.BestEnergy)
	}
}

func TestRunParallelCtxCancelViaContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{Iterations: 1000, InitTemp: 5, Acceptance: 1.8}
	iters := 0
	res, err := RunParallelCtx[float64](ctx, &ctxQuadratic{}, -10, cfg,
		ParallelConfig{Proposals: 2, Seed: 17},
		func(TracePoint[float64]) {
			iters++
			if iters == 7 {
				cancel()
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(res.Trace) != 7 {
		t.Fatalf("trace length = %d, want 7", len(res.Trace))
	}
	if res.BestEnergy > res.Trace[0].Best {
		t.Fatalf("best-so-far worse than first iteration")
	}
}
