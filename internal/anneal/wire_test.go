package anneal

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// TestTracePointWireGolden pins the JSON field names of TracePoint —
// persisted traces and the almostd event stream depend on them.
func TestTracePointWireGolden(t *testing.T) {
	tp := TracePoint[[]int]{Iteration: 7, Energy: 0.5, Best: 0.25,
		State: []int{1, 2}, BestState: []int{3}}
	data, err := json.Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"iteration":7,"state":[1,2],"best_state":[3],"energy":0.5,"best":0.25}`
	if string(data) != want {
		t.Fatalf("TracePoint wire format drifted:\n got  %s\n want %s", data, want)
	}
}

// TestTracePointRoundTrip checks marshal/unmarshal identity, including
// zero energies (which must stay on the wire, not be dropped).
func TestTracePointRoundTrip(t *testing.T) {
	points := []TracePoint[string]{
		{},
		{Iteration: 1, Energy: 0, Best: 0, State: "a", BestState: "a"},
		{Iteration: 99, Energy: -1.5, Best: -2.25, State: "x", BestState: "y"},
	}
	for _, tp := range points {
		data, err := json.Marshal(tp)
		if err != nil {
			t.Fatalf("marshal %+v: %v", tp, err)
		}
		var back TracePoint[string]
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !reflect.DeepEqual(tp, back) {
			t.Fatalf("round trip changed the point:\n in  %+v\n out %+v", tp, back)
		}
	}
}

// TestTracePointNonFiniteEnergies checks that the +Inf never-evaluated
// sentinel and NaN energies marshal as omitted fields and unmarshal as
// NaN instead of failing or collapsing to 0.
func TestTracePointNonFiniteEnergies(t *testing.T) {
	tp := TracePoint[int]{Iteration: 0, Energy: math.Inf(1), Best: math.NaN(), State: 4, BestState: 4}
	data, err := json.Marshal(tp)
	if err != nil {
		t.Fatalf("marshal with Inf/NaN energies: %v", err)
	}
	want := `{"iteration":0,"state":4,"best_state":4}`
	if string(data) != want {
		t.Fatalf("non-finite energies not omitted:\n got  %s\n want %s", data, want)
	}
	var back TracePoint[int]
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.Energy) || !math.IsNaN(back.Best) {
		t.Fatalf("omitted energies should unmarshal as NaN, got %v / %v", back.Energy, back.Best)
	}
}
