package omla

import (
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/synth"
)

// tinyAttack trains a small but real attacker for identity checks.
func tinyAttack(t testing.TB, locked *aig.AIG) *Attack {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Rounds = 2
	cfg.GatesPerRound = 12
	cfg.Epochs = 4
	return Train(locked, synth.Resyn2(), cfg)
}

// TestPredictKeyBatchBitIdentity gates the fused attack pass: batched
// key prediction and accuracy must equal the scalar per-gate loop
// exactly, including across scratch reuse and circuit swaps.
func TestPredictKeyBatchBitIdentity(t *testing.T) {
	g1, key1 := lock.Lock(circuits.MustGenerate("c432"), 16, rand.New(rand.NewSource(1)))
	g2, key2 := lock.Lock(circuits.MustGenerate("c880"), 24, rand.New(rand.NewSource(2)))
	atk := tinyAttack(t, g1)
	var bs BatchScratch
	for round := 0; round < 2; round++ {
		for _, tc := range []struct {
			g     *aig.AIG
			truth lock.Key
		}{{g1, key1}, {g2, key2}} {
			scalarKey := atk.PredictKey(tc.g)
			batchKey := atk.PredictKeyBatchWith(&bs, tc.g)
			if len(batchKey) != len(scalarKey) {
				t.Fatalf("batched key has %d bits, scalar %d", len(batchKey), len(scalarKey))
			}
			for i := range scalarKey {
				if batchKey[i] != scalarKey[i] {
					t.Fatalf("round %d: key bit %d differs (batched %v, scalar %v)", round, i, batchKey[i], scalarKey[i])
				}
			}
			if ba, sa := atk.AccuracyBatchWith(&bs, tc.g, tc.truth), atk.Accuracy(tc.g, tc.truth); ba != sa {
				t.Fatalf("round %d: batched accuracy %v != scalar %v", round, ba, sa)
			}
		}
	}
	// nil-scratch conveniences agree too.
	if ba, sa := atk.AccuracyBatch(g1, key1), atk.Accuracy(g1, key1); ba != sa {
		t.Fatalf("nil-scratch batched accuracy %v != scalar %v", ba, sa)
	}
	k := atk.PredictKeyBatch(g1)
	for i, bit := range atk.PredictKey(g1) {
		if k[i] != bit {
			t.Fatalf("nil-scratch batched key bit %d differs", i)
		}
	}
}

// TestAccuracyBatchAllocs gates the steady state of the fused scoring
// path the engine workers run per candidate: zero allocations with a
// warm BatchScratch.
func TestAccuracyBatchAllocs(t *testing.T) {
	locked, key := lock.Lock(circuits.MustGenerate("c880"), 32, rand.New(rand.NewSource(3)))
	atk := tinyAttack(t, locked)
	var bs BatchScratch
	atk.AccuracyBatchWith(&bs, locked, key) // warm
	allocs := testing.AllocsPerRun(20, func() {
		atk.AccuracyBatchWith(&bs, locked, key)
	})
	if allocs != 0 {
		t.Fatalf("fused accuracy steady state allocates %.1f per run, want 0", allocs)
	}
}
