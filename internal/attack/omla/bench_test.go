package omla

import (
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/gnn"
	"github.com/nyu-secml/almost/internal/lock"
)

// BenchmarkAttackPass measures one full attack scoring pass — extract
// every key-gate locality and run GIN inference on each — the
// per-candidate cost inside the Eq. 1 search loop. scalar is the
// per-gate loop over pooled scratch matrices; batched is the fused pass
// of this PR (one packed extraction, one blocked forward). Both rows are
// bit-identical in output (gated by TestPredictKeyBatchBitIdentity); the
// BENCH_pr10.json "per-step attack scoring" rows.
//
//	go test -run=^$ -bench=BenchmarkAttackPass -benchmem ./internal/attack/omla
func BenchmarkAttackPass(b *testing.B) {
	locked, key := lock.Lock(circuits.MustGenerate("c880"), 64, rand.New(rand.NewSource(5)))
	atk := tinyAttack(b, locked)
	b.Run("inference=scalar", func(b *testing.B) {
		var sc gnn.Scratch
		atk.AccuracyWith(&sc, locked, key) // warm
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			atk.AccuracyWith(&sc, locked, key)
		}
	})
	b.Run("inference=batched", func(b *testing.B) {
		var bs BatchScratch
		atk.AccuracyBatchWith(&bs, locked, key) // warm
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			atk.AccuracyBatchWith(&bs, locked, key)
		}
	})
}
