// Package omla implements the oracle-less GNN attack of Alrahis et al.
// ("OMLA: An Oracle-less Machine Learning-based Attack on Logic
// Locking", TCAS-II 2022), the primary adversary in the paper's
// evaluation.
//
// OMLA is self-referencing: the attacker takes the locked netlist under
// attack, RE-locks it with additional key gates whose bits the attacker
// chose (and therefore knows), re-synthesizes with the defender's known
// recipe, and extracts the localities of the added key gates as labeled
// training data. A GIN subgraph classifier trained on this data is then
// applied to the original key gates' localities to predict the real key.
package omla

import (
	"context"
	"math/rand"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/gnn"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/subgraph"
	"github.com/nyu-secml/almost/internal/synth"
)

// Config controls attack training.
type Config struct {
	Hops          int // locality radius
	Rounds        int // relock/resynthesize rounds
	GatesPerRound int // key gates added per round
	Epochs        int // training epochs
	Hidden        int // GNN hidden width
	Layers        int // GIN layers
	LR            float64
	Seed          int64
}

// DefaultConfig returns settings that train in a few seconds per circuit
// while preserving OMLA's architecture. The paper's full-size settings
// (1000 samples, 350 epochs) are reachable by raising Rounds and Epochs.
func DefaultConfig() Config {
	return Config{
		Hops:          2,
		Rounds:        8,
		GatesPerRound: 40,
		Epochs:        30,
		Hidden:        32,
		Layers:        2,
		LR:            0.01,
		Seed:          1,
	}
}

// GenerateData produces labeled localities by relocking the netlist under
// attack and re-synthesizing with the recipe returned by recipeFor for
// each round. This is the data pipeline shared by the baseline attacker
// models M^resyn2 and M^random and by ALMOST's adversarial training.
func GenerateData(locked *aig.AIG, recipeFor func(round int) synth.Recipe,
	rounds, gatesPerRound int, ext subgraph.Extractor, rng *rand.Rand) []*gnn.Graph {
	data, _ := GenerateDataCtx(context.Background(), locked, recipeFor,
		rounds, gatesPerRound, ext, rng)
	return data
}

// GenerateDataCtx is the cancellable variant of GenerateData: the context
// is checked before every relock/resynthesize round, and on cancellation
// the rounds completed so far are returned alongside ctx.Err().
func GenerateDataCtx(ctx context.Context, locked *aig.AIG, recipeFor func(round int) synth.Recipe,
	rounds, gatesPerRound int, ext subgraph.Extractor, rng *rand.Rand) ([]*gnn.Graph, error) {
	var data []*gnn.Graph
	for r := 0; r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			return data, err
		}
		relocked, keyOrder, bits := lock.Relock(locked, gatesPerRound, rng)
		resynth := recipeFor(r).Apply(relocked)
		kisAll := resynth.KeyInputIndices()
		kis := make([]int, len(keyOrder))
		for i, ko := range keyOrder {
			kis[i] = kisAll[ko]
		}
		data = append(data, ext.Labeled(resynth, kis, bits)...)
	}
	return data, nil
}

// Attack is a trained OMLA attacker.
type Attack struct {
	Model *gnn.Model
	Ext   subgraph.Extractor
}

// EpochFunc observes training progress: it is called after every
// completed epoch with the 0-based epoch index and the total epoch count.
type EpochFunc func(epoch, epochs int)

// Train builds an OMLA attacker against the given synthesized locked
// netlist, assuming the defender used recipe (the threat model of §II:
// "the attacks know the synthesis recipe used by the defender").
func Train(locked *aig.AIG, recipe synth.Recipe, cfg Config) *Attack {
	atk, _ := TrainCtx(context.Background(), locked, recipe, cfg, nil)
	return atk
}

// TrainCtx is the cancellable, observable variant of Train. The context
// is checked at every data-generation round and every training epoch; on
// cancellation the partially trained attacker is returned alongside
// ctx.Err(). onEpoch, when non-nil, is called after each epoch.
func TrainCtx(ctx context.Context, locked *aig.AIG, recipe synth.Recipe,
	cfg Config, onEpoch EpochFunc) (*Attack, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ext := subgraph.Extractor{Hops: cfg.Hops}
	data, err := GenerateDataCtx(ctx, locked, func(int) synth.Recipe { return recipe },
		cfg.Rounds, cfg.GatesPerRound, ext, rng)
	if err != nil {
		return &Attack{Ext: ext}, err
	}
	return TrainOnDataCtx(ctx, data, cfg, onEpoch)
}

// TrainOnData trains the GIN classifier on pre-generated localities.
func TrainOnData(data []*gnn.Graph, cfg Config) *Attack {
	atk, _ := TrainOnDataCtx(context.Background(), data, cfg, nil)
	return atk
}

// TrainOnDataCtx is the cancellable, observable variant of TrainOnData:
// the context is checked before every epoch, and on cancellation the
// partially trained attacker is returned alongside ctx.Err().
func TrainOnDataCtx(ctx context.Context, data []*gnn.Graph, cfg Config,
	onEpoch EpochFunc) (*Attack, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 7919))
	gcfg := gnn.Config{
		InDim:     subgraph.FeatureDim,
		Hidden:    cfg.Hidden,
		Layers:    cfg.Layers,
		LR:        cfg.LR,
		BatchSize: 32,
	}
	model := gnn.NewModel(gcfg, rng)
	atk := &Attack{Model: model, Ext: subgraph.Extractor{Hops: cfg.Hops}}
	for e := 0; e < cfg.Epochs; e++ {
		if err := ctx.Err(); err != nil {
			return atk, err
		}
		model.TrainEpoch(data, rng)
		if onEpoch != nil {
			onEpoch(e, cfg.Epochs)
		}
	}
	return atk, nil
}

// PredictKeyWith predicts every key bit of the netlist, in key-input
// order, using sc's pooled inference matrices (nil for a private
// scratch). Predictions are bit-for-bit identical for any scratch.
//
//almost:hotpath
func (a *Attack) PredictKeyWith(sc *gnn.Scratch, g *aig.AIG) lock.Key {
	gs := a.Ext.All(g)
	key := make(lock.Key, len(gs)) //almost:nolint hotpathalloc // the returned key is caller-owned by contract
	for i, sg := range gs {
		key[i] = a.Model.PredictWith(sc, sg) == 1
	}
	return key
}

// PredictKey predicts every key bit of the netlist, in key-input order.
func (a *Attack) PredictKey(g *aig.AIG) lock.Key {
	return a.PredictKeyWith(nil, g)
}

// BatchScratch bundles the reusable state of one fused attack pass: the
// batched extraction scratch, the pooled inference matrices, the packed
// batch itself, and the probability buffer. One BatchScratch per engine
// worker; not safe for concurrent use. The zero value is ready.
type BatchScratch struct {
	Sub   subgraph.Scratch
	NN    gnn.Scratch
	batch gnn.Batch
	probs []float64
}

// PredictKeyBatchWith predicts every key bit of the netlist in one fused
// pass: all key-gate localities are extracted into a single packed batch
// (sharing the fanout index and BFS scratch) and pushed through the GIN
// stack as blocked matmuls. bs may be nil for a private scratch.
// Predictions are bit-for-bit identical to PredictKeyWith — the batched
// extraction and forward reproduce the scalar arithmetic row for row.
//
//almost:hotpath
func (a *Attack) PredictKeyBatchWith(bs *BatchScratch, g *aig.AIG) lock.Key {
	if bs == nil {
		bs = &BatchScratch{}
	}
	b := a.Ext.AllInto(&bs.Sub, g, &bs.batch)
	bs.probs = a.Model.PredictProbBatchWith(&bs.NN, b, bs.probs[:0])
	key := make(lock.Key, len(bs.probs)) //almost:nolint hotpathalloc // the returned key is caller-owned by contract
	for i, p := range bs.probs {
		key[i] = p >= 0.5
	}
	return key
}

// PredictKeyBatch predicts every key bit in one fused batch pass.
func (a *Attack) PredictKeyBatch(g *aig.AIG) lock.Key {
	return a.PredictKeyBatchWith(nil, g)
}

// AccuracyBatchWith attacks g through the fused batch seam and scores
// the prediction against the true key without allocating the
// intermediate key (the per-candidate evaluation of the Eq. 1 search).
// Bit-for-bit identical to AccuracyWith. bs may be nil for a private
// scratch.
//
//almost:hotpath
func (a *Attack) AccuracyBatchWith(bs *BatchScratch, g *aig.AIG, truth lock.Key) float64 {
	if bs == nil {
		bs = &BatchScratch{}
	}
	b := a.Ext.AllInto(&bs.Sub, g, &bs.batch)
	bs.probs = a.Model.PredictProbBatchWith(&bs.NN, b, bs.probs[:0])
	// Fold exactly as lock.Accuracy does over a predicted key.
	if len(truth) == 0 {
		return 0
	}
	n := 0
	for i := range truth {
		if i < len(bs.probs) && (bs.probs[i] >= 0.5) == truth[i] {
			n++
		}
	}
	return float64(n) / float64(len(truth))
}

// AccuracyBatch attacks g through the fused batch seam and scores the
// prediction against the true key.
func (a *Attack) AccuracyBatch(g *aig.AIG, truth lock.Key) float64 {
	return a.AccuracyBatchWith(nil, g, truth)
}

// PredictKeyIndices predicts bits only for the key inputs at the given
// input indices.
func (a *Attack) PredictKeyIndices(g *aig.AIG, kis []int) lock.Key {
	gs := a.Ext.ForKeyInputs(g, kis)
	key := make(lock.Key, len(gs))
	for i, sg := range gs {
		key[i] = a.Model.Predict(sg) == 1
	}
	return key
}

// AccuracyWith attacks g and scores the prediction against the true key
// using sc's pooled inference matrices (nil for a private scratch) —
// the per-candidate evaluation of the Eq. 1 search, where the engine
// hands every worker its own scratch.
//
//almost:hotpath
func (a *Attack) AccuracyWith(sc *gnn.Scratch, g *aig.AIG, truth lock.Key) float64 {
	return lock.Accuracy(truth, a.PredictKeyWith(sc, g))
}

// Accuracy attacks g and scores the prediction against the true key —
// the headline metric of Tables I and II.
func (a *Attack) Accuracy(g *aig.AIG, truth lock.Key) float64 {
	return a.AccuracyWith(nil, g, truth)
}

// AccuracyCtx is the one-shot attack entry: train a fresh attacker
// against the netlist (assumed synthesized with recipe) and score its
// key prediction against the true key. On cancellation it returns 0
// alongside the bare ctx.Err(); callers that want a framework-level
// cancellation error wrap it themselves.
func AccuracyCtx(ctx context.Context, locked *aig.AIG, recipe synth.Recipe,
	truth lock.Key, cfg Config, onEpoch EpochFunc) (float64, error) {
	atk, err := TrainCtx(ctx, locked, recipe, cfg, onEpoch)
	if err != nil {
		return 0, err
	}
	return atk.Accuracy(locked, truth), nil
}
