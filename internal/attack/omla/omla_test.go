package omla

import (
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/subgraph"
	"github.com/nyu-secml/almost/internal/synth"
)

func TestGenerateDataShapes(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 8, rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(2))
	data := GenerateData(locked, func(int) synth.Recipe { return synth.Resyn2() },
		3, 10, subgraph.DefaultExtractor(), rng)
	if len(data) != 30 {
		t.Fatalf("samples = %d, want 30", len(data))
	}
	zeros, ones := 0, 0
	for _, d := range data {
		switch d.Label {
		case 0:
			zeros++
		case 1:
			ones++
		default:
			t.Fatalf("bad label %d", d.Label)
		}
	}
	if zeros == 0 || ones == 0 {
		t.Fatalf("degenerate label distribution: %d/%d", zeros, ones)
	}
}

func TestGenerateDataUsesRecipePerRound(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 4, rand.New(rand.NewSource(3)))
	var rounds []int
	GenerateData(locked, func(r int) synth.Recipe {
		rounds = append(rounds, r)
		return synth.Recipe{synth.StepBalance}
	}, 4, 5, subgraph.DefaultExtractor(), rand.New(rand.NewSource(4)))
	if len(rounds) != 4 || rounds[3] != 3 {
		t.Fatalf("rounds = %v", rounds)
	}
}

func TestTrainedAttackBeatsRandomGuessing(t *testing.T) {
	// The central claim of the OMLA substrate: on a vulnerable RLL +
	// deterministic-recipe netlist, the attack recovers well over 50% of
	// key bits. -short trims the circuit and training budget and only
	// checks the attack is non-degenerate; the paper-scale bar needs the
	// full run.
	bench, keySize, minAcc := "c1908", 64, 0.55
	cfg := DefaultConfig()
	if testing.Short() {
		bench, keySize, minAcc = "c880", 32, 0.40
		cfg.Rounds = 3
		cfg.Epochs = 8
	}
	g := circuits.MustGenerate(bench)
	locked, key := lock.Lock(g, keySize, rand.New(rand.NewSource(5)))
	recipe := synth.Resyn2()
	target := recipe.Apply(locked)
	atk := Train(target, recipe, cfg)
	acc := atk.Accuracy(target, key)
	if acc < minAcc {
		t.Fatalf("attack accuracy %.2f%% — want at least %.0f%%", acc*100, minAcc*100)
	}
	t.Logf("OMLA accuracy on %s/resyn2: %.2f%%", bench, acc*100)
}

func TestPredictKeyLengthAndDeterminism(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 12, rand.New(rand.NewSource(6)))
	cfg := DefaultConfig()
	cfg.Rounds = 2
	cfg.Epochs = 3
	atk := Train(locked, synth.Recipe{synth.StepBalance}, cfg)
	k1 := atk.PredictKey(locked)
	k2 := atk.PredictKey(locked)
	if len(k1) != 12 {
		t.Fatalf("predicted key length %d", len(k1))
	}
	if k1.String() != k2.String() {
		t.Fatalf("prediction not deterministic")
	}
}

func TestPredictKeyIndicesSubset(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 8, rand.New(rand.NewSource(7)))
	cfg := DefaultConfig()
	cfg.Rounds = 2
	cfg.Epochs = 3
	atk := Train(locked, synth.Recipe{synth.StepBalance}, cfg)
	kis := locked.KeyInputIndices()
	full := atk.PredictKey(locked)
	sub := atk.PredictKeyIndices(locked, kis[2:5])
	for i, b := range sub {
		if b != full[2+i] {
			t.Fatalf("subset prediction differs at %d", i)
		}
	}
}

func TestTrainingIsDeterministicForSeed(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 16, rand.New(rand.NewSource(8)))
	cfg := DefaultConfig()
	cfg.Rounds = 2
	cfg.Epochs = 5
	a1 := Train(locked, synth.Resyn2(), cfg)
	a2 := Train(locked, synth.Resyn2(), cfg)
	if a1.Accuracy(locked, key) != a2.Accuracy(locked, key) {
		t.Fatalf("training not deterministic")
	}
}
