// Package redundancy implements the redundancy-identification attack of
// Li and Orailoglu ("Piercing Logic Locking Keys through Redundancy
// Identification", DATE 2019). The attack assumes the original design is
// fully testable: every stuck-at fault can be excited and observed. A
// wrong key value tends to introduce untestable (redundant) faults, so
// for each key bit the attacker counts untestable stuck-at faults under
// both values and guesses the value inducing fewer.
//
// Testability is decided exactly with the SAT solver on a good/faulty
// miter, after a cheap random-simulation filter dispatches the (common)
// clearly-testable faults.
package redundancy

import (
	"context"
	"math/rand"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/cnf"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/sat"
)

// Config controls the attack effort.
type Config struct {
	// FaultSamples is the number of stuck-at fault sites examined per key
	// value; sites are drawn half from the key input's neighborhood and
	// half uniformly, deterministically from Seed.
	FaultSamples int
	// SimRounds is the number of 64-pattern random simulation rounds used
	// to filter clearly-testable faults before SAT.
	SimRounds int
	// SATConflicts bounds the per-fault SAT effort; Unknown counts as
	// testable (conservative: fewer spurious redundancies).
	SATConflicts int64
	Seed         int64
}

// DefaultConfig balances fidelity and runtime.
func DefaultConfig() Config {
	return Config{FaultSamples: 24, SimRounds: 4, SATConflicts: 2000, Seed: 1}
}

// fault is a stuck-at fault site.
type fault struct {
	node int
	val  bool // stuck-at value
}

// scratch is the attack's reusable state: simulation buffers for the
// good and faulty circuits, a rebuilder plus recycled graph storage for
// fault injection, and the pattern/output buffers of the random filter.
type scratch struct {
	simGood, simBad aig.SimScratch
	rb              aig.Rebuilder
	spare           []*aig.AIG
	in, good, bad   []uint64
}

func (st *scratch) grab() *aig.AIG {
	if n := len(st.spare); n > 0 {
		g := st.spare[n-1]
		st.spare = st.spare[:n-1]
		return g
	}
	return aig.New()
}

func (st *scratch) put(g *aig.AIG) {
	g.Reset()
	st.spare = append(st.spare, g)
}

// PredictKey runs the attack, returning the guessed key in key-input
// order.
func PredictKey(g *aig.AIG, cfg Config) lock.Key {
	key, _ := PredictKeyCtx(context.Background(), g, cfg)
	return key
}

// PredictKeyCtx is the cancellable variant of PredictKey: the context is
// checked before every key bit's untestability count and polled inside
// each testability SAT search (via the solver's Stop hook), and on
// cancellation the bits guessed so far are returned alongside ctx.Err().
func PredictKeyCtx(ctx context.Context, g *aig.AIG, cfg Config) (lock.Key, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	kIdx := g.KeyInputIndices()
	key := make(lock.Key, 0, len(kIdx))
	fanouts := g.Fanouts()
	order := g.TopoOrder()
	st := &scratch{}
	for _, ki := range kIdx {
		if err := ctx.Err(); err != nil {
			return key, err
		}
		faults := sampleFaults(g, ki, order, fanouts, cfg.FaultSamples, rng)
		u0 := countUntestable(ctx, lock.FixInputs(g, map[int]bool{ki: false}), faults, cfg, rng, st)
		u1 := countUntestable(ctx, lock.FixInputs(g, map[int]bool{ki: true}), faults, cfg, rng, st)
		key = append(key, u1 < u0)
	}
	return key, nil
}

// sampleFaults draws fault sites: the key input's 3-hop neighborhood
// first (where key-induced redundancy concentrates), padded with uniform
// sites. Sites are identified by node ID in the *original* locked graph;
// countUntestable maps them by position in topological order so the IDs
// remain meaningful after cofactoring.
func sampleFaults(g *aig.AIG, ki int, order []int, fanouts [][]int, n int, rng *rand.Rand) []fault {
	seed := g.Input(ki).Node()
	nb := g.KHopNeighborhood(seed, 3, fanouts)
	var sites []int
	for _, id := range nb {
		if g.IsAnd(id) {
			sites = append(sites, id)
		}
	}
	if len(sites) > n/2 {
		sites = sites[:n/2]
	}
	for len(sites) < n && len(order) > 0 {
		sites = append(sites, order[rng.Intn(len(order))])
	}
	faults := make([]fault, 0, len(sites))
	for i, s := range sites {
		faults = append(faults, fault{node: s, val: i%2 == 0})
	}
	return faults
}

// countUntestable counts faults of the cofactor that no input assignment
// can expose. Fault sites are re-mapped by relative topological position.
// A canceled ctx short-circuits the remaining faults as testable (the
// conservative direction); the caller notices ctx.Err() and discards the
// bit anyway.
func countUntestable(ctx context.Context, cof *aig.AIG, faults []fault, cfg Config, rng *rand.Rand, st *scratch) int {
	order := cof.TopoOrder()
	if len(order) == 0 {
		return len(faults)
	}
	untestable := 0
	for i, f := range faults {
		if ctx.Err() != nil {
			return untestable
		}
		// Deterministic position-based transfer of the fault site.
		pos := (f.node + i) % len(order)
		site := order[pos]
		if !testable(ctx, cof, order, site, f.val, cfg, rng, st) {
			untestable++
		}
	}
	return untestable
}

// testable reports whether stuck-at-val at node site is detectable at any
// output for some input assignment. The faulty copy is built into (and
// recycled from) the scratch's graph pool, and the random filter reuses
// the scratch's pattern/output buffers and sim schedules. ctx is polled
// inside the SAT search via the solver's Stop hook; cancellation surfaces
// as Unknown, which counts as testable — never as a proved redundancy.
func testable(ctx context.Context, g *aig.AIG, order []int, site int, val bool, cfg Config, rng *rand.Rand, st *scratch) bool {
	// Fast path: random simulation of good vs faulty circuit.
	faulty := injectFault(g, order, site, val, st)
	defer st.put(faulty)
	if cap(st.in) < g.NumInputs() {
		st.in = make([]uint64, g.NumInputs())
	}
	in := st.in[:g.NumInputs()]
	for r := 0; r < cfg.SimRounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		good := g.SimulateInto(&st.simGood, st.good, in)
		bad := faulty.SimulateInto(&st.simBad, st.bad, in)
		st.good, st.bad = good, bad
		for o := range good {
			if good[o] != bad[o] {
				return true
			}
		}
	}
	// Exact path: SAT on the difference miter. The Stop hook makes even a
	// single long Solve call interruptible; the budget-exhaustion case
	// below already treats Unknown as testable, which is also the right
	// answer for cancellation.
	s := sat.New(0)
	s.MaxConflicts = cfg.SATConflicts
	if ctx.Done() != nil {
		s.Stop = func() bool { return ctx.Err() != nil }
	}
	eg := cnf.Encode(g, s)
	ef := cnf.Encode(faulty, s)
	for i := 0; i < g.NumInputs(); i++ {
		la, lb := eg.InputLit(i), ef.InputLit(i)
		s.AddClause(la.Not(), lb)
		s.AddClause(la, lb.Not())
	}
	var diffs []sat.Lit
	for i := 0; i < g.NumOutputs(); i++ {
		oa := eg.LitOf(g.Output(i))
		ob := ef.LitOf(faulty.Output(i))
		d := sat.MkLit(s.NewVar(), false)
		s.AddClause(d.Not(), oa, ob)
		s.AddClause(d.Not(), oa.Not(), ob.Not())
		diffs = append(diffs, d)
	}
	s.AddClause(diffs...)
	switch s.Solve() {
	case sat.Sat:
		return true
	case sat.Unsat:
		return false
	}
	return true // Unknown: assume testable
}

// injectFault returns a copy of g with node site's output stuck at val,
// built over g's topological order into recycled graph storage.
func injectFault(g *aig.AIG, order []int, site int, val bool, st *scratch) *aig.AIG {
	st.rb.ResetInto(g, st.grab())
	for _, id := range order {
		f0, f1 := g.Fanins(id)
		nl := st.rb.Dst.And(st.rb.LitOf(f0), st.rb.LitOf(f1))
		if id == site {
			if val {
				nl = aig.True
			} else {
				nl = aig.False
			}
		}
		st.rb.Map(id, nl)
	}
	return st.rb.Finish()
}

// Accuracy attacks g and scores against the true key.
func Accuracy(g *aig.AIG, truth lock.Key, cfg Config) float64 {
	return lock.Accuracy(truth, PredictKey(g, cfg))
}

// AccuracyCtx is the cancellable variant of Accuracy: on cancellation it
// returns 0 alongside ctx.Err().
func AccuracyCtx(ctx context.Context, g *aig.AIG, truth lock.Key, cfg Config) (float64, error) {
	guess, err := PredictKeyCtx(ctx, g, cfg)
	if err != nil {
		return 0, err
	}
	return lock.Accuracy(truth, guess), nil
}
