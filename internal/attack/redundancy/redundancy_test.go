package redundancy

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/cnf"
	"github.com/nyu-secml/almost/internal/lock"
)

func TestInjectFaultChangesFunction(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	n := g.And(a, b)
	g.AddOutput(n, "o")
	f := injectFault(g, g.TopoOrder(), n.Node(), true, &scratch{}) // output stuck-at-1
	if ok, _, _ := cnf.Equivalent(g, f); ok {
		t.Fatal("stuck-at-1 on the only gate should change the function")
	}
	out := f.EvalSingle([]bool{false, false})
	if !out[0] {
		t.Fatal("faulty circuit should output 1")
	}
}

func TestTestableDetectsTestableFault(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	n := g.And(a, b)
	g.AddOutput(n, "o")
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	if !testable(context.Background(), g, g.TopoOrder(), n.Node(), true, cfg, rng, &scratch{}) {
		t.Fatal("sa1 on AND output is testable (a=b=0)")
	}
	if !testable(context.Background(), g, g.TopoOrder(), n.Node(), false, cfg, rng, &scratch{}) {
		t.Fatal("sa0 on AND output is testable (a=b=1)")
	}
}

func TestTestableDetectsRedundantFault(t *testing.T) {
	// o = (a&b) | a: the (a&b) term is absorbed; sa0 on it is untestable.
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	ab := g.And(a, b)
	g.AddOutput(g.Or(ab, a), "o")
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(2))
	if testable(context.Background(), g, g.TopoOrder(), ab.Node(), false, cfg, rng, &scratch{}) {
		t.Fatal("sa0 on absorbed term must be untestable")
	}
}

func TestPredictKeyLengthAndDeterminism(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 6, rand.New(rand.NewSource(3)))
	cfg := DefaultConfig()
	cfg.FaultSamples = 8
	k1 := PredictKey(locked, cfg)
	k2 := PredictKey(locked, cfg)
	if len(k1) != 6 {
		t.Fatalf("key length = %d", len(k1))
	}
	if k1.String() != k2.String() {
		t.Fatalf("attack not deterministic")
	}
}

func TestAccuracyInPlausibleBand(t *testing.T) {
	// Table II: the redundancy attack on RLL hovers at or below random
	// (19%–50% in the paper). Check we are not degenerate.
	if testing.Short() {
		t.Skip("slow attack in -short mode")
	}
	g := circuits.MustGenerate("c499")
	locked, truth := lock.Lock(g, 16, rand.New(rand.NewSource(4)))
	cfg := DefaultConfig()
	cfg.FaultSamples = 12
	acc := Accuracy(locked, truth, cfg)
	if acc < 0.1 || acc > 0.9 {
		t.Fatalf("redundancy accuracy %.2f implausible", acc)
	}
	t.Logf("redundancy accuracy: %.2f%%", acc*100)
}

func TestPredictKeyCtxMatchesAndCancels(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, truth := lock.Lock(g, 6, rand.New(rand.NewSource(9)))
	cfg := DefaultConfig()
	cfg.FaultSamples = 6
	key, err := PredictKeyCtx(context.Background(), locked, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if key.String() != PredictKey(locked, cfg).String() {
		t.Fatal("ctx and plain variants disagree")
	}
	acc, err := AccuracyCtx(context.Background(), locked, truth, cfg)
	if err != nil || acc != Accuracy(locked, truth, cfg) {
		t.Fatalf("AccuracyCtx = %v, %v", acc, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, err := PredictKeyCtx(ctx, locked, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(partial) != 0 {
		t.Fatalf("pre-canceled run guessed %d bits", len(partial))
	}
}

func TestTestableHonorsCtxInsideSAT(t *testing.T) {
	// With the random filter disabled, testability must be decided by
	// SAT; a canceled context makes the solver give up with Unknown,
	// which must be read as "testable" — never as a proved redundancy.
	g := circuits.MustGenerate("c6288")
	cfg := DefaultConfig()
	cfg.SimRounds = 0 // force the SAT path
	cfg.SATConflicts = 0
	rng := rand.New(rand.NewSource(8))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	order := g.TopoOrder()
	site := order[len(order)/2]
	if !testable(ctx, g, order, site, true, cfg, rng, &scratch{}) {
		t.Fatal("canceled SAT query must conservatively report testable")
	}
}
