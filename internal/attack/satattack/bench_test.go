package satattack

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/lock"
)

// BenchmarkSATAttack measures the oracle-guided SAT attack against plain
// RLL and against RLL stacked with the anti-SAT point function, across
// key sizes — the BENCH_pr6.json data point. The interesting number is
// not ns/op but the reported dips/attack metric: on plain RLL the DIP
// count grows roughly linearly with the key width, while each anti-SAT
// key bit (in the comparator half) doubles it. exact/attack records
// whether the attack converged inside the budget (1) or timed out with a
// candidate key (0).
//
//	go test -run=^$ -bench BenchmarkSATAttack ./internal/attack/satattack
func BenchmarkSATAttack(b *testing.B) {
	g := circuits.MustGenerate("c432")
	oracle := SimOracle(g)
	cfg := DefaultConfig()
	cfg.MaxDIPs = 512
	for _, scheme := range []string{"rll", "rll+antisat"} {
		for _, keySize := range []int{8, 12, 16} {
			b.Run(fmt.Sprintf("%s/k%d", scheme, keySize), func(b *testing.B) {
				rng := rand.New(rand.NewSource(31))
				locked, _ := lock.Lock(g, keySize, rng)
				if scheme == "rll+antisat" {
					locked, _ = lock.LockAntiSAT(locked, keySize, rng)
				}
				var dips, exact int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := Attack(locked, oracle, cfg)
					if err != nil {
						b.Fatal(err)
					}
					dips += res.DIPs
					if res.Exact {
						exact++
					}
				}
				b.ReportMetric(float64(dips)/float64(b.N), "dips/attack")
				b.ReportMetric(float64(exact)/float64(b.N), "exact/attack")
			})
		}
	}
}
