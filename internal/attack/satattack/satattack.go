// Package satattack implements the classic oracle-guided SAT attack on
// logic locking (Subramanyan, Ray, Malik, "Evaluating the Security of
// Logic Encryption Algorithms", HOST 2015) and an AppSAT-style
// approximate variant (Shamsi et al., HOST 2017).
//
// The threat model is strictly stronger than the oracle-less attacks the
// paper defends against: the adversary holds both the locked netlist and
// a working unlocked chip (the oracle) it can query on arbitrary inputs.
// The attack alternates between solving a key miter for a distinguishing
// input pattern (DIP) — an input on which two candidate keys disagree —
// and pinning both key vectors to the oracle's answer on that DIP. When
// no DIP remains, any key satisfying the accumulated constraints is
// functionally correct. Point-function defenses (anti-SAT/SARLock) push
// the DIP count exponential in the key width; the AppSAT variant trades
// exactness for speed against them, exiting early once the candidate
// key's estimated error rate drops below a target.
package satattack

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/cnf"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/sat"
)

// Oracle answers input queries of an unlocked working chip: given a
// primary-input assignment (in PI order of the locked netlist), it
// returns the output assignment. Implementations need not be safe for
// concurrent use; the attack queries sequentially.
type Oracle func(in []bool) []bool

// SimOracle wraps a key-free netlist (the original design) as an Oracle
// via bit-parallel simulation. It panics if g still has key inputs —
// an oracle is a working chip, not a locked one. The returned closure
// reuses one simulation scratch and is not safe for concurrent use.
func SimOracle(g *aig.AIG) Oracle {
	if g.NumKeyInputs() != 0 {
		panic("satattack: oracle netlist still has key inputs")
	}
	var sim aig.SimScratch
	in64 := make([]uint64, g.NumInputs())
	var out64 []uint64
	return func(in []bool) []bool {
		if len(in) != len(in64) {
			panic(fmt.Sprintf("satattack: oracle query width %d, circuit has %d inputs", len(in), len(in64)))
		}
		for i, b := range in {
			if b {
				in64[i] = 1
			} else {
				in64[i] = 0
			}
		}
		out64 = g.SimulateInto(&sim, out64, in64)
		out := make([]bool, len(out64))
		for i, w := range out64 {
			out[i] = w&1 == 1
		}
		return out
	}
}

// Config controls attack effort and the AppSAT approximation schedule.
type Config struct {
	// MaxDIPs bounds the number of DIP iterations; <= 0 means unlimited.
	// Hitting the bound returns the best-so-far key with Exact == false.
	MaxDIPs int
	// SolveConflicts bounds each individual SAT call; <= 0 means
	// unlimited. Exhaustion ends the attack with the best-so-far key.
	SolveConflicts int64
	// QuerySamples is the number of random oracle queries per AppSAT
	// error estimation round.
	QuerySamples int
	// EstimateEvery is the number of DIPs between AppSAT estimation
	// rounds.
	EstimateEvery int
	// ErrorTarget is the estimated error rate at which AppSAT settles
	// for the candidate key (0 keeps refining until the miter is Unsat
	// or a mismatching random query is found no more).
	ErrorTarget float64
	// Seed drives the AppSAT random queries.
	Seed int64
}

// DefaultConfig balances fidelity and runtime.
func DefaultConfig() Config {
	return Config{
		MaxDIPs:        4096,
		SolveConflicts: 200000,
		QuerySamples:   64,
		EstimateEvery:  8,
		ErrorTarget:    0.01,
		Seed:           1,
	}
}

// Result is the attack outcome.
type Result struct {
	// Key is the recovered (or best-so-far) key in key-input order.
	Key lock.Key
	// DIPs is the number of distinguishing patterns resolved against
	// the oracle.
	DIPs int
	// Exact reports that the miter was proved Unsat, so Key is
	// functionally correct — not merely the best candidate when a
	// budget ran out.
	Exact bool
}

// Attack runs the classic SAT attack to convergence or budget
// exhaustion.
func Attack(locked *aig.AIG, oracle Oracle, cfg Config) (Result, error) {
	return AttackCtx(context.Background(), locked, oracle, cfg)
}

// AttackCtx is the cancellable classic SAT attack. Cancellation is
// honored inside each SAT call (via the solver's Stop hook), and the
// best-so-far key is returned alongside an error wrapping ctx.Err().
func AttackCtx(ctx context.Context, locked *aig.AIG, oracle Oracle, cfg Config) (Result, error) {
	return run(ctx, locked, oracle, cfg, false)
}

// AppSATCtx is the approximate variant: every EstimateEvery DIPs the
// candidate key's error rate is estimated on QuerySamples random oracle
// queries; at or below ErrorTarget the attack settles for the candidate
// (Exact stays false). Mismatching queries are added as constraints, so
// estimation rounds double as reinforcement. Against point-function
// defenses this recovers an approximately-correct key in polynomially
// many queries where the exact attack needs exponentially many DIPs.
func AppSATCtx(ctx context.Context, locked *aig.AIG, oracle Oracle, cfg Config) (Result, error) {
	return run(ctx, locked, oracle, cfg, true)
}

func run(ctx context.Context, locked *aig.AIG, oracle Oracle, cfg Config, approximate bool) (Result, error) {
	if locked.NumKeyInputs() == 0 {
		// A key-free netlist is its own unlocked chip: the empty key is
		// vacuously correct. Lockers legitimately produce this when a
		// circuit has nothing to lock (e.g. no live AND nodes), so it is
		// an exact success, not a misuse error.
		return Result{Key: lock.Key{}, Exact: true}, nil
	}
	m, err := cnf.NewKeyMiter(locked)
	if err != nil {
		return Result{}, err
	}
	m.HookCtx(ctx)
	m.S.MaxConflicts = cfg.SolveConflicts

	res := Result{Key: make(lock.Key, m.NumKeys())}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sinceEstimate := 0

	for {
		// The solver's Stop hook only fires every PollEvery ticks inside a
		// solve; an easy miter can resolve each DIP in fewer, so the loop
		// must check cancellation itself or a SIGINT would starve until
		// the DIP space (exponential under anti-SAT) runs dry.
		if cerr := ctx.Err(); cerr != nil {
			return res, wrapCtx(cerr)
		}
		switch m.SolveDIP() {
		case sat.Sat:
			res.Key = m.KeyA() // best-so-far candidate
			in := m.DIP()
			if err := m.AddIOConstraint(in, oracle(in)); err != nil {
				return res, err
			}
			res.DIPs++
			if cfg.MaxDIPs > 0 && res.DIPs >= cfg.MaxDIPs {
				return res, canceled(ctx)
			}
			if approximate {
				sinceEstimate++
				if cfg.EstimateEvery > 0 && sinceEstimate >= cfg.EstimateEvery {
					sinceEstimate = 0
					settle, err := estimate(ctx, m, locked, oracle, cfg, rng, &res)
					if settle || err != nil {
						return res, err
					}
				}
			}
		case sat.Unsat:
			// No key pair disagrees anywhere: any surviving key is
			// functionally correct.
			key, st := m.SolveKey()
			switch st {
			case sat.Sat:
				res.Key = key
				res.Exact = true
				return res, nil
			case sat.Unknown:
				return res, canceled(ctx)
			}
			return res, errors.New("satattack: oracle constraints unsatisfiable (non-deterministic oracle?)")
		case sat.Unknown:
			return res, canceled(ctx)
		}
	}
}

// estimate runs one AppSAT error-estimation round. It reports settle ==
// true when the candidate key's estimated error rate is at or below the
// target; mismatching queries are added as reinforcement constraints.
func estimate(ctx context.Context, m *cnf.KeyMiter, locked *aig.AIG, oracle Oracle, cfg Config, rng *rand.Rand, res *Result) (settle bool, err error) {
	if cfg.QuerySamples <= 0 {
		return false, nil
	}
	unlocked, err := lock.ApplyKey(locked, res.Key)
	if err != nil {
		return false, err
	}
	guess := SimOracle(unlocked)
	mismatches := 0
	in := make([]bool, m.NumPIs())
	for q := 0; q < cfg.QuerySamples; q++ {
		if cerr := ctx.Err(); cerr != nil {
			return false, wrapCtx(cerr)
		}
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		want := oracle(in)
		got := guess(in)
		same := true
		for o := range want {
			if want[o] != got[o] {
				same = false
				break
			}
		}
		if !same {
			mismatches++
			if aerr := m.AddIOConstraint(in, want); aerr != nil {
				return false, aerr
			}
		}
	}
	rate := float64(mismatches) / float64(cfg.QuerySamples)
	return rate <= cfg.ErrorTarget, nil
}

// canceled translates an Unknown/budget outcome into the caller-facing
// error: ctx's error (wrapped) if cancellation caused it, nil if a
// configured budget simply ran out — exhaustion is an expected outcome
// reported through Result.Exact == false, not a failure.
func canceled(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return wrapCtx(err)
	}
	return nil
}

func wrapCtx(err error) error {
	return fmt.Errorf("satattack: canceled: %w", err)
}
