package satattack

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/cnf"
	"github.com/nyu-secml/almost/internal/lock"
)

func TestAttackRecoversKeyOnRLL(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 32, rand.New(rand.NewSource(21)))
	res, err := Attack(locked, SimOracle(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("attack did not converge (%d DIPs)", res.DIPs)
	}
	ok, cex, err := cnf.EquivalentUnderKey(g, locked, res.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("recovered key not functionally correct (cex %v); truth %v got %v after %d DIPs",
			cex, key, res.Key, res.DIPs)
	}
	if lock.Accuracy(key, res.Key) < 1 {
		// RLL keys are individually live, so the functionally correct
		// key class is the exact key.
		t.Fatalf("accuracy %v < 1 on plain RLL", lock.Accuracy(key, res.Key))
	}
	t.Logf("recovered 32-bit key in %d DIPs", res.DIPs)
}

func TestAttackDeterministic(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 16, rand.New(rand.NewSource(22)))
	r1, err1 := Attack(locked, SimOracle(g), DefaultConfig())
	r2, err2 := Attack(locked, SimOracle(g), DefaultConfig())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.DIPs != r2.DIPs || r1.Key.String() != r2.Key.String() || r1.Exact != r2.Exact {
		t.Fatalf("non-deterministic: %+v vs %+v", r1, r2)
	}
}

func TestAttackCanceledReturnsBestSoFar(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 16, rand.New(rand.NewSource(23)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AttackCtx(ctx, locked, SimOracle(g), DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Exact {
		t.Fatal("canceled attack claimed exactness")
	}
	if len(res.Key) != 16 {
		t.Fatalf("best-so-far key has %d bits, want 16", len(res.Key))
	}
}

func TestAttackDIPBudgetIsNotAnError(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 16, rand.New(rand.NewSource(24)))
	cfg := DefaultConfig()
	cfg.MaxDIPs = 1
	res, err := Attack(locked, SimOracle(g), cfg)
	if err != nil {
		t.Fatalf("budget exhaustion is an outcome, not an error: %v", err)
	}
	if res.Exact {
		t.Fatal("one DIP cannot prove a 16-bit key")
	}
	if res.DIPs != 1 {
		t.Fatalf("DIPs = %d, want 1", res.DIPs)
	}
	if len(res.Key) != 16 {
		t.Fatalf("best-so-far key has %d bits, want 16", len(res.Key))
	}
}

func TestAppSATConvergesOnRLL(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 16, rand.New(rand.NewSource(25)))
	res, err := AppSATCtx(context.Background(), locked, SimOracle(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// AppSAT may stop early at the error target, but on plain RLL the
	// candidate must be at least near-correct.
	if acc := lock.Accuracy(key, res.Key); acc < 0.9 {
		t.Fatalf("AppSAT accuracy %v on plain RLL (exact=%v, %d DIPs)", acc, res.Exact, res.DIPs)
	}
}

func TestAntiSATInflatesDIPCount(t *testing.T) {
	// The point of the anti-SAT locker: on the same circuit with the
	// same total key width, the DIP count under rll+antisat must
	// strictly exceed plain rll — or the attack must fail to converge
	// at all within the budget.
	g := circuits.MustGenerate("c432")
	plainLocked, _ := lock.Lock(g, 16, rand.New(rand.NewSource(41)))
	plain, err := Attack(plainLocked, SimOracle(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Exact {
		t.Fatalf("plain rll did not converge in %d DIPs", plain.DIPs)
	}

	rng := rand.New(rand.NewSource(41))
	l1, _ := lock.Lock(g, 8, rng)
	hardLocked, _ := lock.LockAntiSAT(l1, 16, rng)
	cfg := DefaultConfig()
	cfg.MaxDIPs = plain.DIPs * 8
	hard, err := Attack(hardLocked, SimOracle(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hard.Exact && hard.DIPs <= plain.DIPs {
		t.Fatalf("anti-SAT did not inflate DIPs: plain=%d hardened=%d", plain.DIPs, hard.DIPs)
	}
	t.Logf("DIPs: plain rll=%d, rll+antisat=%d (exact=%v)", plain.DIPs, hard.DIPs, hard.Exact)
}

func TestAppSATDegradesGracefullyUnderAntiSAT(t *testing.T) {
	// AppSAT on an anti-SAT circuit must terminate well before the
	// exponential DIP wall and still return a near-low-error candidate
	// key for the functional (rll) half.
	g := circuits.MustGenerate("c432")
	rng := rand.New(rand.NewSource(42))
	l1, k1 := lock.Lock(g, 8, rng)
	hardLocked, _ := lock.LockAntiSAT(l1, 16, rng)
	cfg := DefaultConfig()
	cfg.MaxDIPs = 512
	cfg.EstimateEvery = 4
	res, err := AppSATCtx(context.Background(), hardLocked, SimOracle(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Score only the rll half: anti-SAT key bits are a class, not
	// unique values.
	if acc := lock.Accuracy(k1, res.Key[:len(k1)]); acc < 0.7 {
		t.Logf("rll-half accuracy %v after %d DIPs (acceptably low only if the point function dominates)", acc, res.DIPs)
	}
}

func TestSimOracleRejectsLockedCircuit(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 4, rand.New(rand.NewSource(26)))
	defer func() {
		if recover() == nil {
			t.Fatal("SimOracle accepted a netlist with key inputs")
		}
	}()
	SimOracle(locked)
}

// TestAttackKeyFreeNetlistIsVacuousSuccess is a regression for a bug the
// scenario fuzzer found: lockers legitimately emit a key-free netlist
// when the circuit has nothing to lock (tiny circuits with no live AND
// nodes), and the attack must treat that as an exact win with the empty
// key rather than a miter-construction error.
func TestAttackKeyFreeNetlistIsVacuousSuccess(t *testing.T) {
	g := circuits.MustGenerate("c432")
	res, err := Attack(g, SimOracle(g), DefaultConfig())
	if err != nil {
		t.Fatalf("unlocked netlist: err = %v, want nil", err)
	}
	if !res.Exact || len(res.Key) != 0 || res.DIPs != 0 {
		t.Fatalf("unlocked netlist: got %+v, want exact empty key with 0 DIPs", res)
	}
}
