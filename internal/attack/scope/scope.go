// Package scope implements a SCOPE-style oracle-less attack (Alaql et
// al., "SCOPE: Synthesis-Based Constant Propagation Attack on Logic
// Locking", TVLSI 2021). SCOPE is unsupervised: for every key input it
// synthesizes the circuit twice, once with the bit tied to 0 and once
// tied to 1, and compares synthesis-report features of the two cofactors
// (area, depth, literal counts). The asymmetry of constant propagation
// leaks a guess for the bit; no training data or oracle is needed.
//
// The paper (Table II) finds SCOPE hovers around — often below — random
// guessing on RLL-locked ISCAS85 circuits, and that behaviour is what
// this implementation reproduces.
package scope

import (
	"context"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/synth"
)

// Config controls the attack.
type Config struct {
	// Recipe is the synthesis script applied to each cofactor before
	// feature extraction. SCOPE uses the tool's standard optimization; we
	// default to a light area script.
	Recipe synth.Recipe
}

// DefaultConfig uses a short rewrite+balance script per cofactor.
func DefaultConfig() Config {
	return Config{Recipe: synth.Recipe{synth.StepRewrite, synth.StepBalance, synth.StepRewrite}}
}

// features are the synthesis-report quantities SCOPE compares.
type features struct {
	ands   int
	levels int
	// litProxy approximates the literal count of the mapped netlist:
	// AND nodes plus complemented edges.
	litProxy int
}

func extract(g *aig.AIG) features {
	f := features{ands: g.NumAnds(), levels: g.NumLevels()}
	f.litProxy = 2 * g.NumAnds()
	for _, id := range g.TopoOrder() {
		f0, f1 := g.Fanins(id)
		if f0.Neg() {
			f.litProxy++
		}
		if f1.Neg() {
			f.litProxy++
		}
	}
	return f
}

// PredictKey runs the attack on a locked netlist, returning the guessed
// key in key-input order. The decision rule follows SCOPE's intuition:
// tying the key bit to its correct value typically lets synthesis remove
// the key gate's masking logic more cleanly, so the cofactor with the
// smaller synthesized report is taken as the guess. Ties fall back to
// the secondary features, then to 0.
func PredictKey(g *aig.AIG, cfg Config) lock.Key {
	key, _ := PredictKeyCtx(context.Background(), g, cfg)
	return key
}

// PredictKeyCtx is the cancellable variant of PredictKey: the context is
// checked before every key bit's cofactor pair is synthesized, and on
// cancellation the bits guessed so far are returned alongside ctx.Err().
// One synthesis arena is shared across all 2·|key| cofactor syntheses,
// and every cofactor netlist is recycled after feature extraction, so
// the attack's per-bit allocation cost is near-constant.
func PredictKeyCtx(ctx context.Context, g *aig.AIG, cfg Config) (lock.Key, error) {
	kIdx := g.KeyInputIndices()
	key := make(lock.Key, 0, len(kIdx))
	a := synth.NewArena()
	cofactor := func(ki int, v bool) features {
		cof := lock.FixInputs(g, map[int]bool{ki: v})
		net := cfg.Recipe.Run(cof, a)
		f := extract(net)
		a.Recycle(net)
		if net != cof {
			a.Recycle(cof)
		}
		return f
	}
	for _, ki := range kIdx {
		if err := ctx.Err(); err != nil {
			return key, err
		}
		f0 := cofactor(ki, false)
		f1 := cofactor(ki, true)
		key = append(key, decide(f0, f1))
	}
	return key, nil
}

// decide returns the guessed bit: true (1) when the bit-1 cofactor looks
// "cheaper" under synthesis.
func decide(f0, f1 features) bool {
	if f0.ands != f1.ands {
		return f1.ands < f0.ands
	}
	if f0.litProxy != f1.litProxy {
		return f1.litProxy < f0.litProxy
	}
	if f0.levels != f1.levels {
		return f1.levels < f0.levels
	}
	return false
}

// Accuracy attacks g and scores against the true key.
func Accuracy(g *aig.AIG, truth lock.Key, cfg Config) float64 {
	return lock.Accuracy(truth, PredictKey(g, cfg))
}

// AccuracyCtx is the cancellable variant of Accuracy: on cancellation it
// returns 0 alongside ctx.Err().
func AccuracyCtx(ctx context.Context, g *aig.AIG, truth lock.Key, cfg Config) (float64, error) {
	guess, err := PredictKeyCtx(ctx, g, cfg)
	if err != nil {
		return 0, err
	}
	return lock.Accuracy(truth, guess), nil
}
