package scope

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/lock"
)

func TestPredictKeyLength(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 8, rand.New(rand.NewSource(1)))
	key := PredictKey(locked, DefaultConfig())
	if len(key) != 8 {
		t.Fatalf("key length = %d", len(key))
	}
}

func TestDeterministic(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 8, rand.New(rand.NewSource(2)))
	k1 := PredictKey(locked, DefaultConfig())
	k2 := PredictKey(locked, DefaultConfig())
	if k1.String() != k2.String() {
		t.Fatalf("SCOPE not deterministic")
	}
}

func TestAccuracyNearRandomOnRLL(t *testing.T) {
	// Table II: SCOPE on RLL-locked ISCAS85 scatters around random
	// guessing (29%–61% in the paper). Verify the implementation is in
	// that regime rather than degenerate (all-0/all-1 would still give
	// ~50%, so also check both classes are predicted across circuits).
	total, n := 0.0, 0
	predicted0, predicted1 := false, false
	for i, name := range []string{"c432", "c499", "c880"} {
		g := circuits.MustGenerate(name)
		locked, truth := lock.Lock(g, 16, rand.New(rand.NewSource(int64(i)+3)))
		guess := PredictKey(locked, DefaultConfig())
		for _, b := range guess {
			if b {
				predicted1 = true
			} else {
				predicted0 = true
			}
		}
		total += lock.Accuracy(truth, guess)
		n++
	}
	avg := total / float64(n)
	if avg < 0.2 || avg > 0.8 {
		t.Fatalf("SCOPE average accuracy %.2f outside the plausible band", avg)
	}
	if !predicted0 || !predicted1 {
		t.Fatalf("SCOPE predictions degenerate (single class)")
	}
	t.Logf("SCOPE average accuracy: %.2f%%", avg*100)
}

func TestDecideTieBreaks(t *testing.T) {
	f := features{ands: 10, levels: 5, litProxy: 25}
	if decide(f, f) {
		t.Fatal("tie should default to 0")
	}
	if !decide(features{ands: 10}, features{ands: 9}) {
		t.Fatal("smaller bit-1 cofactor should guess 1")
	}
	if decide(features{ands: 9}, features{ands: 10}) {
		t.Fatal("smaller bit-0 cofactor should guess 0")
	}
	// Equal ANDs, different literals.
	if !decide(features{ands: 10, litProxy: 20}, features{ands: 10, litProxy: 19}) {
		t.Fatal("literal tiebreak wrong")
	}
	// Equal ANDs and literals, different levels.
	if !decide(features{ands: 10, litProxy: 20, levels: 6}, features{ands: 10, litProxy: 20, levels: 5}) {
		t.Fatal("level tiebreak wrong")
	}
}

func TestPredictKeyCtxMatchesAndCancels(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, truth := lock.Lock(g, 8, rand.New(rand.NewSource(9)))
	key, err := PredictKeyCtx(context.Background(), locked, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if key.String() != PredictKey(locked, DefaultConfig()).String() {
		t.Fatal("ctx and plain variants disagree")
	}
	acc, err := AccuracyCtx(context.Background(), locked, truth, DefaultConfig())
	if err != nil || acc != Accuracy(locked, truth, DefaultConfig()) {
		t.Fatalf("AccuracyCtx = %v, %v", acc, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, err := PredictKeyCtx(ctx, locked, DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(partial) != 0 {
		t.Fatalf("pre-canceled run guessed %d bits", len(partial))
	}
	if _, err := AccuracyCtx(ctx, locked, truth, DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("AccuracyCtx err = %v", err)
	}
}
