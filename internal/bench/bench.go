// Package bench reads and writes combinational netlists in the ISCAS85
// ".bench" format.
//
// Deprecated: the implementation has moved to internal/netio, the
// netlist I/O subsystem that also speaks ASCII and binary AIGER and
// sniffs formats from file extensions. This package remains as a thin
// forwarding wrapper so existing callers keep working; new code should
// import internal/netio directly.
package bench

import (
	"io"
	"strings"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/netio"
)

// KeyInputPrefix is the input-name prefix that marks key inputs, matching
// the convention of public logic-locking benchmark releases.
const KeyInputPrefix = netio.KeyInputPrefix

// ParseError describes a syntax or semantic error with its position.
//
// Deprecated: this is netio.ParseError; match on that type.
type ParseError = netio.ParseError

// Parse reads a .bench netlist and builds an AIG.
func Parse(r io.Reader) (*aig.AIG, error) { return netio.ParseBench(r) }

// ParseString is a convenience wrapper around Parse.
func ParseString(s string) (*aig.AIG, error) { return netio.ParseBench(strings.NewReader(s)) }

// Write emits the AIG in .bench format.
func Write(w io.Writer, g *aig.AIG) error { return netio.WriteBench(w, g) }

// WriteString renders the AIG to a .bench string.
func WriteString(g *aig.AIG) (string, error) { return netio.WriteBenchString(g) }
