// Package bench reads and writes combinational netlists in the ISCAS85
// ".bench" format, the distribution format of the benchmarks the paper
// evaluates on. Supported gates: AND, NAND, OR, NOR, XOR, XNOR, NOT,
// BUFF (arbitrary arity for the symmetric gates); sequential elements
// (DFF) are rejected because ALMOST operates on combinational blocks.
//
// Inputs whose names begin with "keyinput" (the convention used by
// logic-locking benchmark suites) are imported as key inputs.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/nyu-secml/almost/internal/aig"
)

// KeyInputPrefix is the input-name prefix that marks key inputs, matching
// the convention of public logic-locking benchmark releases.
const KeyInputPrefix = "keyinput"

// ParseError describes a syntax or semantic error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("bench: line %d: %s", e.Line, e.Msg) }

type rawGate struct {
	name string
	op   string
	args []string
	line int
}

// Parse reads a .bench netlist and builds an AIG.
func Parse(r io.Reader) (*aig.AIG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var inputs, outputs []string
	var gates []rawGate
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			name, err := parenArg(line)
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			inputs = append(inputs, name)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			name, err := parenArg(line)
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			outputs = append(outputs, name)
		default:
			g, err := parseGate(line)
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			g.line = lineNo
			gates = append(gates, g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return build(inputs, outputs, gates)
}

// ParseString is a convenience wrapper around Parse.
func ParseString(s string) (*aig.AIG, error) { return Parse(strings.NewReader(s)) }

func parenArg(line string) (string, error) {
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	name := strings.TrimSpace(line[open+1 : close])
	if name == "" {
		return "", fmt.Errorf("empty signal name in %q", line)
	}
	return name, nil
}

func parseGate(line string) (rawGate, error) {
	eq := strings.Index(line, "=")
	if eq < 0 {
		return rawGate{}, fmt.Errorf("expected assignment, got %q", line)
	}
	name := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.Index(rhs, "(")
	close := strings.LastIndex(rhs, ")")
	if open < 0 || close < open {
		return rawGate{}, fmt.Errorf("malformed gate %q", rhs)
	}
	op := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	var args []string
	for _, a := range strings.Split(rhs[open+1:close], ",") {
		a = strings.TrimSpace(a)
		if a != "" {
			args = append(args, a)
		}
	}
	if name == "" || len(args) == 0 {
		return rawGate{}, fmt.Errorf("malformed gate line %q", line)
	}
	return rawGate{name: name, op: op, args: args}, nil
}

func build(inputs, outputs []string, gates []rawGate) (*aig.AIG, error) {
	g := aig.New()
	sigs := map[string]aig.Lit{}
	for _, name := range inputs {
		if _, dup := sigs[name]; dup {
			return nil, fmt.Errorf("bench: duplicate input %q", name)
		}
		if strings.HasPrefix(name, KeyInputPrefix) {
			sigs[name] = g.AddKeyInput(name)
		} else {
			sigs[name] = g.AddInput(name)
		}
	}
	// Gates may appear in any order; resolve by fixpoint over remaining gates.
	remaining := gates
	for len(remaining) > 0 {
		progressed := false
		var next []rawGate
		for _, rg := range remaining {
			lits := make([]aig.Lit, 0, len(rg.args))
			ready := true
			for _, a := range rg.args {
				l, ok := sigs[a]
				if !ok {
					ready = false
					break
				}
				lits = append(lits, l)
			}
			if !ready {
				next = append(next, rg)
				continue
			}
			l, err := buildGate(g, rg.op, lits)
			if err != nil {
				return nil, &ParseError{rg.line, err.Error()}
			}
			if _, dup := sigs[rg.name]; dup {
				return nil, &ParseError{rg.line, fmt.Sprintf("duplicate signal %q", rg.name)}
			}
			sigs[rg.name] = l
			progressed = true
		}
		if !progressed {
			names := make([]string, 0, len(next))
			for _, rg := range next {
				names = append(names, rg.name)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("bench: unresolved or cyclic signals: %s", strings.Join(names, ", "))
		}
		remaining = next
	}
	for _, name := range outputs {
		l, ok := sigs[name]
		if !ok {
			return nil, fmt.Errorf("bench: output %q is not driven", name)
		}
		g.AddOutput(l, name)
	}
	return g, nil
}

func buildGate(g *aig.AIG, op string, args []aig.Lit) (aig.Lit, error) {
	switch op {
	case "AND":
		return g.AndN(args), nil
	case "NAND":
		return g.AndN(args).Not(), nil
	case "OR":
		return g.OrN(args), nil
	case "NOR":
		return g.OrN(args).Not(), nil
	case "XOR":
		return reduceXor(g, args), nil
	case "XNOR":
		return reduceXor(g, args).Not(), nil
	case "NOT":
		if len(args) != 1 {
			return 0, fmt.Errorf("NOT takes exactly one argument")
		}
		return args[0].Not(), nil
	case "BUFF", "BUF":
		if len(args) != 1 {
			return 0, fmt.Errorf("BUFF takes exactly one argument")
		}
		return args[0], nil
	case "DFF":
		return 0, fmt.Errorf("sequential element DFF not supported (combinational benchmarks only)")
	default:
		return 0, fmt.Errorf("unknown gate type %q", op)
	}
}

func reduceXor(g *aig.AIG, args []aig.Lit) aig.Lit {
	acc := args[0]
	for _, a := range args[1:] {
		acc = g.Xor(acc, a)
	}
	return acc
}

// Write emits the AIG in .bench format. AND nodes become two-input AND
// gates; complemented edges become NOT gates (shared per driving node).
func Write(w io.Writer, g *aig.AIG) error {
	bw := bufio.NewWriter(w)
	name := func(id int) string {
		if idx := g.InputIndexOfNode(id); idx >= 0 {
			return g.InputName(idx)
		}
		if g.IsConst(id) {
			return "const0"
		}
		return fmt.Sprintf("n%d", id)
	}
	for i := 0; i < g.NumInputs(); i++ {
		fmt.Fprintf(bw, "INPUT(%s)\n", g.InputName(i))
	}
	for i := 0; i < g.NumOutputs(); i++ {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", g.OutputName(i))
	}
	order := g.TopoOrder()
	needConst := false
	needNot := map[int]bool{}
	litName := func(l aig.Lit) string {
		if l == aig.False || l == aig.True {
			needConst = true
			if l == aig.True {
				needNot[0] = true
				return "const0_inv"
			}
			return "const0"
		}
		if l.Neg() {
			needNot[l.Node()] = true
			return name(l.Node()) + "_inv"
		}
		return name(l.Node())
	}
	var lines []string
	for _, id := range order {
		f0, f1 := g.Fanins(id)
		lines = append(lines, fmt.Sprintf("%s = AND(%s, %s)", name(id), litName(f0), litName(f1)))
	}
	var outLines []string
	for i := 0; i < g.NumOutputs(); i++ {
		po := g.Output(i)
		outLines = append(outLines, fmt.Sprintf("%s = BUFF(%s)", g.OutputName(i), litName(po)))
	}
	if needConst {
		// const0 = AND(x, NOT x) on the first input; benchmarks always have inputs.
		if g.NumInputs() == 0 {
			return fmt.Errorf("bench: cannot emit constant for AIG without inputs")
		}
		in := g.InputName(0)
		needNot[g.Input(0).Node()] = true
		fmt.Fprintf(bw, "const0 = AND(%s, %s_inv)\n", in, in)
	}
	inverters := make([]int, 0, len(needNot))
	for id := range needNot {
		inverters = append(inverters, id)
	}
	sort.Ints(inverters)
	for _, id := range inverters {
		if id == 0 {
			fmt.Fprintf(bw, "const0_inv = NOT(const0)\n")
			continue
		}
		fmt.Fprintf(bw, "%s_inv = NOT(%s)\n", name(id), name(id))
	}
	for _, l := range lines {
		fmt.Fprintln(bw, l)
	}
	for _, l := range outLines {
		fmt.Fprintln(bw, l)
	}
	return bw.Flush()
}

// WriteString renders the AIG to a .bench string.
func WriteString(g *aig.AIG) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, g); err != nil {
		return "", err
	}
	return sb.String(), nil
}
