package bench

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/nyu-secml/almost/internal/aig"
)

const tiny = `
# a tiny test circuit
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
OUTPUT(z)
t1 = AND(a, b)
t2 = OR(t1, c)
y = NAND(t2, a)
z = XOR(b, c)
`

func TestParseTiny(t *testing.T) {
	g, err := ParseString(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumInputs() != 3 || g.NumOutputs() != 2 {
		t.Fatalf("interface: %v", g.Stats())
	}
	// y = !( (a&b | c) & a ); z = b ^ c
	for mask := 0; mask < 8; mask++ {
		a, b, c := mask&1 == 1, mask&2 == 2, mask&4 == 4
		out := g.EvalSingle([]bool{a, b, c})
		wantY := !(((a && b) || c) && a)
		wantZ := b != c
		if out[0] != wantY || out[1] != wantZ {
			t.Fatalf("mask %03b: got %v,%v want %v,%v", mask, out[0], out[1], wantY, wantZ)
		}
	}
}

func TestParseGateVariety(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(o1)
OUTPUT(o2)
OUTPUT(o3)
OUTPUT(o4)
n1 = NOR(a, b, c)
n2 = XNOR(a, b)
n3 = NOT(c)
n4 = BUFF(a)
o1 = BUFF(n1)
o2 = BUFF(n2)
o3 = AND(n3, n4)
o4 = XOR(a, b, c)
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 8; mask++ {
		a, b, c := mask&1 == 1, mask&2 == 2, mask&4 == 4
		out := g.EvalSingle([]bool{a, b, c})
		if out[0] != !(a || b || c) {
			t.Errorf("NOR wrong at %03b", mask)
		}
		if out[1] != (a == b) {
			t.Errorf("XNOR wrong at %03b", mask)
		}
		if out[2] != (!c && a) {
			t.Errorf("AND(NOT,BUFF) wrong at %03b", mask)
		}
		if out[3] != (a != b != c) {
			t.Errorf("3-input XOR wrong at %03b", mask)
		}
	}
}

func TestParseOutOfOrderDefinitions(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(t1, t2)
t2 = OR(a, b)
t1 = NAND(a, b)
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	out := g.EvalSingle([]bool{true, false})
	// t1 = !(a&b)=1, t2 = a|b = 1, y = 1
	if !out[0] {
		t.Fatalf("out-of-order parse wrong result")
	}
}

func TestParseKeyInputConvention(t *testing.T) {
	src := `
INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
y = XOR(a, keyinput0)
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumKeyInputs() != 1 {
		t.Fatalf("keyinput0 not flagged as key input")
	}
	if g.InputIsKey(0) || !g.InputIsKey(1) {
		t.Fatalf("wrong input flagged")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"cycle", "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = AND(a, y)\n", "unresolved or cyclic"},
		{"dup input", "INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n", "duplicate input"},
		{"dup signal", "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\ny = NOT(a)\n", "duplicate signal"},
		{"unknown gate", "INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n", "unknown gate"},
		{"dff", "INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n", "DFF"},
		{"undriven output", "INPUT(a)\nOUTPUT(y)\n", "not driven"},
		{"bad not arity", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n", "NOT takes"},
		{"malformed decl", "INPUT a\nOUTPUT(y)\ny = BUFF(a)\n", ""},
		{"missing paren", "INPUT(a)\nOUTPUT(y)\ny = AND a\n", "malformed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.src)
			if err == nil {
				t.Fatalf("expected error")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	_, err := ParseString("INPUT(a)\nOUTPUT(y)\ny = MAJ(a)\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %T", err)
	}
	if pe.Line != 3 {
		t.Fatalf("line = %d, want 3", pe.Line)
	}
}

func randomAIG(rng *rand.Rand, nIn, nOut, nAnd int) *aig.AIG {
	g := aig.New()
	lits := make([]aig.Lit, 0, nIn+nAnd)
	for i := 0; i < nIn; i++ {
		lits = append(lits, g.AddInput(strings.Repeat("i", 1)+string(rune('a'+i))))
	}
	for len(lits) < nIn+nAnd {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		l := g.And(a, b)
		if g.IsAnd(l.Node()) {
			lits = append(lits, l)
		}
	}
	for i := 0; i < nOut; i++ {
		g.AddOutput(lits[len(lits)-1-i].NotIf(rng.Intn(2) == 1), "out"+string(rune('0'+i)))
	}
	return g
}

func TestRoundTripEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAIG(rng, 4+rng.Intn(5), 1+rng.Intn(3), 5+rng.Intn(40))
		s, err := WriteString(g)
		if err != nil {
			return false
		}
		h, err := ParseString(s)
		if err != nil {
			return false
		}
		return aig.EquivalentBySim(g, h, rng, 4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripPreservesKeyInputs(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	k := g.AddKeyInput("keyinput0")
	g.AddOutput(g.Xnor(a, k), "y")
	s, err := WriteString(g)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumKeyInputs() != 1 {
		t.Fatalf("key input lost in round trip:\n%s", s)
	}
}

func TestWriteConstantOutput(t *testing.T) {
	g := aig.New()
	g.AddInput("a")
	g.AddOutput(aig.True, "always1")
	g.AddOutput(aig.False, "always0")
	s, err := WriteString(g)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseString(s)
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, s)
	}
	out := h.EvalSingle([]bool{true})
	if !out[0] || out[1] {
		t.Fatalf("constants wrong: %v", out)
	}
}

func TestWriteInvertedOutput(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	g.AddOutput(a.Not(), "na")
	s, err := WriteString(g)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	out := h.EvalSingle([]bool{false})
	if !out[0] {
		t.Fatalf("inverted output wrong")
	}
}
