package circuits

import (
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
)

func TestAllProfilesGenerate(t *testing.T) {
	for _, p := range Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g, err := Generate(p.Name)
			if err != nil {
				t.Fatal(err)
			}
			if g.NumInputs() != p.Inputs {
				t.Errorf("inputs = %d, want %d", g.NumInputs(), p.Inputs)
			}
			if g.NumOutputs() != p.Outputs {
				t.Errorf("outputs = %d, want %d", g.NumOutputs(), p.Outputs)
			}
			// Gate count should be within a factor of ~3 of the published
			// profile (the AIG decomposition of a gate-level netlist is
			// naturally larger for XOR-rich circuits).
			lo, hi := p.RefGates/3, p.RefGates*4
			if g.NumAnds() < lo || g.NumAnds() > hi {
				t.Errorf("AND count %d outside [%d,%d] for profile %d gates",
					g.NumAnds(), lo, hi, p.RefGates)
			}
			if g.NumKeyInputs() != 0 {
				t.Errorf("fresh benchmark has key inputs")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, name := range []string{"c432", "c1355", "c6288"} {
		g1 := MustGenerate(name)
		g2 := MustGenerate(name)
		if g1.NumNodes() != g2.NumNodes() || g1.NumAnds() != g2.NumAnds() {
			t.Fatalf("%s: non-deterministic structure", name)
		}
		if !aig.EquivalentBySim(g1, g2, rand.New(rand.NewSource(1)), 4) {
			t.Fatalf("%s: non-deterministic function", name)
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("c9999"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestPaperSetKnown(t *testing.T) {
	for _, n := range PaperSet() {
		if _, ok := ProfileOf(n); !ok {
			t.Errorf("paper benchmark %s missing profile", n)
		}
		if _, err := Generate(n); err != nil {
			t.Errorf("paper benchmark %s: %v", n, err)
		}
	}
	if len(PaperSet()) != 7 {
		t.Errorf("paper set size = %d, want 7", len(PaperSet()))
	}
}

func TestC6288IsMultiplier(t *testing.T) {
	g := MustGenerate("c6288")
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		av := rng.Uint64() & 0xFFFF
		bv := rng.Uint64() & 0xFFFF
		in := make([]bool, 32)
		for i := 0; i < 16; i++ {
			in[i] = av&(1<<i) != 0
			in[16+i] = bv&(1<<i) != 0
		}
		out := g.EvalSingle(in)
		var prod uint64
		for i, b := range out {
			if b {
				prod |= 1 << i
			}
		}
		if prod != av*bv {
			t.Fatalf("c6288: %d*%d = %d, circuit says %d", av, bv, av*bv, prod)
		}
	}
}

func TestC499C1355SameFunction(t *testing.T) {
	// c1355 is the NAND-expanded c499: identical function, more gates.
	g499 := MustGenerate("c499")
	g1355 := MustGenerate("c1355")
	if !aig.EquivalentBySim(g499, g1355, rand.New(rand.NewSource(4)), 16) {
		t.Fatal("c1355 function differs from c499")
	}
	if g1355.NumAnds() <= g499.NumAnds() {
		t.Fatalf("c1355 (%d ANDs) should be larger than c499 (%d ANDs)",
			g1355.NumAnds(), g499.NumAnds())
	}
}

func TestAdderComponent(t *testing.T) {
	g := aig.New()
	var a, b []aig.Lit
	for i := 0; i < 8; i++ {
		a = append(a, g.AddInput("a"))
	}
	for i := 0; i < 8; i++ {
		b = append(b, g.AddInput("b"))
	}
	sum, cout := rippleAdder(g, a, b, aig.False)
	for _, s := range sum {
		g.AddOutput(s, "s")
	}
	g.AddOutput(cout, "co")
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		av := rng.Intn(256)
		bv := rng.Intn(256)
		in := make([]bool, 16)
		for i := 0; i < 8; i++ {
			in[i] = av&(1<<i) != 0
			in[8+i] = bv&(1<<i) != 0
		}
		out := g.EvalSingle(in)
		got := 0
		for i := 0; i < 9; i++ {
			if out[i] {
				got |= 1 << i
			}
		}
		if got != av+bv {
			t.Fatalf("%d+%d = %d, got %d", av, bv, av+bv, got)
		}
	}
}

func TestComparatorComponents(t *testing.T) {
	g := aig.New()
	var a, b []aig.Lit
	for i := 0; i < 4; i++ {
		a = append(a, g.AddInput("a"))
	}
	for i := 0; i < 4; i++ {
		b = append(b, g.AddInput("b"))
	}
	g.AddOutput(equality(g, a, b), "eq")
	g.AddOutput(lessThan(g, a, b), "lt")
	for av := 0; av < 16; av++ {
		for bv := 0; bv < 16; bv++ {
			in := make([]bool, 8)
			for i := 0; i < 4; i++ {
				in[i] = av&(1<<i) != 0
				in[4+i] = bv&(1<<i) != 0
			}
			out := g.EvalSingle(in)
			if out[0] != (av == bv) || out[1] != (av < bv) {
				t.Fatalf("cmp(%d,%d) = eq:%v lt:%v", av, bv, out[0], out[1])
			}
		}
	}
}

func TestMuxTreeAndDecoder(t *testing.T) {
	g := aig.New()
	var sel, data []aig.Lit
	for i := 0; i < 3; i++ {
		sel = append(sel, g.AddInput("s"))
	}
	for i := 0; i < 8; i++ {
		data = append(data, g.AddInput("d"))
	}
	g.AddOutput(muxTree(g, sel, data), "m")
	for _, line := range decoder(g, sel) {
		g.AddOutput(line, "dec")
	}
	for s := 0; s < 8; s++ {
		for dmask := 0; dmask < 256; dmask += 37 {
			in := make([]bool, 11)
			for i := 0; i < 3; i++ {
				in[i] = s&(1<<i) != 0
			}
			for i := 0; i < 8; i++ {
				in[3+i] = dmask&(1<<i) != 0
			}
			out := g.EvalSingle(in)
			if out[0] != (dmask&(1<<s) != 0) {
				t.Fatalf("mux sel=%d data=%08b -> %v", s, dmask, out[0])
			}
			for line := 0; line < 8; line++ {
				if out[1+line] != (line == s) {
					t.Fatalf("decoder line %d at sel %d = %v", line, s, out[1+line])
				}
			}
		}
	}
}

func TestPriorityEncoder(t *testing.T) {
	g := aig.New()
	var req []aig.Lit
	for i := 0; i < 4; i++ {
		req = append(req, g.AddInput("r"))
	}
	grants, none := priorityEncoder(g, req)
	for _, gr := range grants {
		g.AddOutput(gr, "g")
	}
	g.AddOutput(none, "none")
	for mask := 0; mask < 16; mask++ {
		in := make([]bool, 4)
		for i := range in {
			in[i] = mask&(1<<i) != 0
		}
		out := g.EvalSingle(in)
		first := -1
		for i := 0; i < 4; i++ {
			if in[i] {
				first = i
				break
			}
		}
		for i := 0; i < 4; i++ {
			if out[i] != (i == first) {
				t.Fatalf("mask %04b grant %d = %v", mask, i, out[i])
			}
		}
		if out[4] != (first == -1) {
			t.Fatalf("mask %04b none = %v", mask, out[4])
		}
	}
}

func TestParityTree(t *testing.T) {
	g := aig.New()
	var in []aig.Lit
	for i := 0; i < 7; i++ {
		in = append(in, g.AddInput("x"))
	}
	g.AddOutput(parityTree(g, in), "p")
	for mask := 0; mask < 128; mask++ {
		bits := make([]bool, 7)
		par := false
		for i := range bits {
			bits[i] = mask&(1<<i) != 0
			par = par != bits[i]
		}
		if got := g.EvalSingle(bits)[0]; got != par {
			t.Fatalf("parity(%07b) = %v, want %v", mask, got, par)
		}
	}
}

func BenchmarkGenerateC7552(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustGenerate("c7552")
	}
}
