// Package circuits provides deterministic generators for the benchmark
// circuits used in the paper's evaluation (ISCAS85 c432…c7552).
//
// The original ISCAS85 netlists are distributed as data files we do not
// ship; instead each benchmark is rebuilt as a structured synthetic
// equivalent matched to the published profile: same primary input and
// output counts and approximately the same gate count, composed from the
// same kind of datapath/control blocks the real circuit contains (array
// multiplier for c6288, XOR-tree error correction for c499/c1355/c1908,
// ALUs for c880/c3540, wide control + comparators for c2670/c5315/c7552).
// ALMOST's mechanism only depends on circuit scale and local structure
// statistics — not on the exact Boolean functions — so this substitution
// preserves the attack/defense behaviour; README.md ("Benchmark
// circuits") and PAPER.md discuss the substitution and its limits.
//
// All generators are pure functions of their profile (no RNG), so every
// run of the experiments sees identical circuits.
package circuits

import "github.com/nyu-secml/almost/internal/aig"

// halfAdder returns (sum, carry).
func halfAdder(g *aig.AIG, a, b aig.Lit) (aig.Lit, aig.Lit) {
	return g.Xor(a, b), g.And(a, b)
}

// fullAdder returns (sum, carry).
func fullAdder(g *aig.AIG, a, b, c aig.Lit) (aig.Lit, aig.Lit) {
	s1, c1 := halfAdder(g, a, b)
	s2, c2 := halfAdder(g, s1, c)
	return s2, g.Or(c1, c2)
}

// rippleAdder adds two equal-width vectors, returning sums and carry-out.
func rippleAdder(g *aig.AIG, a, b []aig.Lit, cin aig.Lit) ([]aig.Lit, aig.Lit) {
	n := len(a)
	sum := make([]aig.Lit, n)
	c := cin
	for i := 0; i < n; i++ {
		sum[i], c = fullAdder(g, a[i], b[i], c)
	}
	return sum, c
}

// arrayMultiplier builds the classic carry-save array multiplier, the
// structure of c6288.
func arrayMultiplier(g *aig.AIG, a, b []aig.Lit) []aig.Lit {
	n, m := len(a), len(b)
	out := make([]aig.Lit, n+m)
	for i := range out {
		out[i] = aig.False
	}
	// Partial products accumulated row by row with ripple adders.
	acc := make([]aig.Lit, n)
	for i := range acc {
		acc[i] = g.And(a[i], b[0])
	}
	out[0] = acc[0]
	acc = append(acc[1:], aig.False) // n-bit running remainder
	for j := 1; j < m; j++ {
		pp := make([]aig.Lit, n)
		for i := range pp {
			pp[i] = g.And(a[i], b[j])
		}
		sum, cout := rippleAdder(g, acc, pp, aig.False)
		out[j] = sum[0]
		acc = append(sum[1:], cout)
	}
	copy(out[m:], acc)
	return out
}

// parityTree XORs all literals together.
func parityTree(g *aig.AIG, ls []aig.Lit) aig.Lit {
	if len(ls) == 0 {
		return aig.False
	}
	for len(ls) > 1 {
		var next []aig.Lit
		for i := 0; i+1 < len(ls); i += 2 {
			next = append(next, g.Xor(ls[i], ls[i+1]))
		}
		if len(ls)%2 == 1 {
			next = append(next, ls[len(ls)-1])
		}
		ls = next
	}
	return ls[0]
}

// equality returns a == b bitwise-reduced.
func equality(g *aig.AIG, a, b []aig.Lit) aig.Lit {
	terms := make([]aig.Lit, len(a))
	for i := range a {
		terms[i] = g.Xnor(a[i], b[i])
	}
	return g.AndN(terms)
}

// lessThan returns unsigned a < b.
func lessThan(g *aig.AIG, a, b []aig.Lit) aig.Lit {
	lt := aig.False
	for i := 0; i < len(a); i++ {
		bitLT := g.And(a[i].Not(), b[i])
		bitEQ := g.Xnor(a[i], b[i])
		lt = g.Or(bitLT, g.And(bitEQ, lt))
	}
	return lt
}

// muxTree selects data[sel] for a power-of-two data vector.
func muxTree(g *aig.AIG, sel []aig.Lit, data []aig.Lit) aig.Lit {
	if len(sel) == 0 {
		return data[0]
	}
	half := len(data) / 2
	lo := muxTree(g, sel[:len(sel)-1], data[:half])
	hi := muxTree(g, sel[:len(sel)-1], data[half:])
	return g.Mux(sel[len(sel)-1], hi, lo)
}

// decoder returns the 2^n one-hot lines of an n-bit selector.
func decoder(g *aig.AIG, sel []aig.Lit) []aig.Lit {
	lines := []aig.Lit{aig.True}
	for _, s := range sel {
		next := make([]aig.Lit, 0, len(lines)*2)
		for _, l := range lines {
			next = append(next, g.And(l, s.Not()))
		}
		for _, l := range lines {
			next = append(next, g.And(l, s))
		}
		lines = next
	}
	return lines
}

// alu builds a small ALU over a and b with a 2-bit op selector:
// 00 add, 01 and, 10 or, 11 xor. Returns result bits plus carry-out.
func alu(g *aig.AIG, a, b []aig.Lit, op [2]aig.Lit) ([]aig.Lit, aig.Lit) {
	sum, cout := rippleAdder(g, a, b, aig.False)
	res := make([]aig.Lit, len(a))
	for i := range a {
		andv := g.And(a[i], b[i])
		orv := g.Or(a[i], b[i])
		xorv := g.Xor(a[i], b[i])
		lo := g.Mux(op[0], andv, sum[i])
		hi := g.Mux(op[0], xorv, orv)
		res[i] = g.Mux(op[1], hi, lo)
	}
	return res, g.And(cout, g.And(op[0].Not(), op[1].Not()))
}

// priorityEncoder returns, for each input line, a grant signal that is
// high iff that line is the highest-priority active request, plus a
// "none" signal.
func priorityEncoder(g *aig.AIG, req []aig.Lit) ([]aig.Lit, aig.Lit) {
	grants := make([]aig.Lit, len(req))
	blocked := aig.False
	for i := range req {
		grants[i] = g.And(req[i], blocked.Not())
		blocked = g.Or(blocked, req[i])
	}
	return grants, blocked.Not()
}

// hammingEncode computes parity check bits over data using a spread
// pattern, mimicking the single-error-correcting code in c499/c1355.
func hammingEncode(g *aig.AIG, data []aig.Lit, nCheck int) []aig.Lit {
	checks := make([]aig.Lit, nCheck)
	for c := 0; c < nCheck; c++ {
		var taps []aig.Lit
		for i, d := range data {
			if (i>>(c%5))&1 == 1 || (i+c)%3 == 0 {
				taps = append(taps, d)
			}
		}
		checks[c] = parityTree(g, taps)
	}
	return checks
}
