package circuits

import (
	"embed"
	"fmt"
	"sync"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/netio"
)

// The built-in benchmarks ship as golden BENCH text and are parsed
// through internal/netio — the same loader path user-supplied netlists
// take — so a built-in circuit and an external file are
// indistinguishable downstream, and the netlist I/O subsystem is
// exercised by every pipeline run. The goldens are regenerated from the
// structural generators in iscas85.go with
//
//	go test ./internal/circuits -run TestGoldenFaithful -update
//
// and TestGoldenFaithful proves text and generators agree (interface,
// key flags, and exact function).
//
//go:embed golden/*.bench
var goldenFS embed.FS

// golden is the lazily parsed form of one embedded benchmark. Each is
// parsed at most once per process; Generate hands out cheap clones.
type golden struct {
	once sync.Once
	g    *aig.AIG
	err  error
}

var goldens = func() map[string]*golden {
	m := make(map[string]*golden, len(profiles))
	for _, p := range profiles {
		m[p.Name] = &golden{}
	}
	return m
}()

// Generate builds the named benchmark by parsing its embedded golden
// BENCH text (once per process; the result is cached and cloned).
// Sized synthetic presets (SyntheticNames) resolve here too, generated
// on first use under the same cache-and-clone discipline. Generation is
// deterministic.
func Generate(name string) (*aig.AIG, error) {
	if g, ok := generateSynthetic(name); ok {
		return g, nil
	}
	gl, ok := goldens[name]
	if !ok {
		return nil, fmt.Errorf("circuits: unknown benchmark %q (known: %v and synthetic %v)", name, Names(), SyntheticNames())
	}
	gl.once.Do(func() {
		data, err := goldenFS.ReadFile("golden/" + name + ".bench")
		if err != nil {
			gl.err = fmt.Errorf("circuits: embedded golden for %s: %w", name, err)
			return
		}
		gl.g, gl.err = netio.ParseBenchString(string(data))
		if gl.err != nil {
			gl.err = fmt.Errorf("circuits: golden %s.bench: %w", name, gl.err)
		}
	})
	if gl.err != nil {
		return nil, gl.err
	}
	// Clone: callers extend the AIG (locking, synthesis scratch work),
	// and the cached copy must stay pristine and data-race-free.
	return gl.g.Clone(), nil
}

// GoldenBench returns the embedded golden BENCH text of a built-in
// benchmark — the exact bytes Generate parses.
func GoldenBench(name string) (string, error) {
	if _, ok := goldens[name]; !ok {
		return "", fmt.Errorf("circuits: unknown benchmark %q (known: %v)", name, Names())
	}
	data, err := goldenFS.ReadFile("golden/" + name + ".bench")
	if err != nil {
		return "", err
	}
	return string(data), nil
}
