package circuits

import (
	"flag"
	"math/rand"
	"os"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/netio"
)

var update = flag.Bool("update", false, "rewrite golden/*.bench from the structural generators")

// TestGoldenFaithful proves the embedded golden BENCH text and the
// structural generators describe the same circuits: identical
// interface (names, order, key flags) and identical function under
// dense random simulation. With -update it first rewrites the goldens
// from the generators.
func TestGoldenFaithful(t *testing.T) {
	if *update {
		if err := os.MkdirAll("golden", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			gen, err := generateFromScratch(p.Name)
			if err != nil {
				t.Fatal(err)
			}
			if *update {
				text, err := netio.WriteBenchString(gen)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile("golden/"+p.Name+".bench", []byte(text), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			got, err := Generate(p.Name)
			if err != nil {
				t.Fatal(err)
			}
			if got.NumInputs() != gen.NumInputs() || got.NumOutputs() != gen.NumOutputs() {
				t.Fatalf("interface: golden %v vs generator %v", got, gen)
			}
			for i := 0; i < gen.NumInputs(); i++ {
				if got.InputName(i) != gen.InputName(i) || got.InputIsKey(i) != gen.InputIsKey(i) {
					t.Fatalf("input %d: golden %q/%v vs generator %q/%v", i,
						got.InputName(i), got.InputIsKey(i), gen.InputName(i), gen.InputIsKey(i))
				}
			}
			for i := 0; i < gen.NumOutputs(); i++ {
				if got.OutputName(i) != gen.OutputName(i) {
					t.Fatalf("output %d: golden %q vs generator %q", i, got.OutputName(i), gen.OutputName(i))
				}
			}
			rounds := 16
			if testing.Short() {
				rounds = 4
			}
			if !aig.EquivalentBySim(gen, got, rand.New(rand.NewSource(1)), rounds) {
				t.Fatal("golden text and generator disagree on function; rerun with -update?")
			}
		})
	}
}

// TestGenerateClonesAreIndependent guards the cached-parse design:
// mutating one Generate result must not leak into the next.
func TestGenerateClonesAreIndependent(t *testing.T) {
	a := MustGenerate("c432")
	before := a.NumNodes()
	in := a.AddInput("extra")
	a.AddOutput(in, "extra_out")
	b := MustGenerate("c432")
	if b.NumNodes() != before || b.NumInputs() != a.NumInputs()-1 {
		t.Fatalf("Generate results share state: %v then %v", a, b)
	}
}

// TestGoldenBenchExposed checks the raw golden text is available and
// parses through the public netio path.
func TestGoldenBenchExposed(t *testing.T) {
	text, err := GoldenBench("c432")
	if err != nil {
		t.Fatal(err)
	}
	g, err := netio.ParseBenchString(text)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumInputs() != 36 || g.NumOutputs() != 7 {
		t.Fatalf("unexpected c432 shape: %v", g)
	}
	if _, err := GoldenBench("c9999"); err == nil {
		t.Fatal("unknown name should fail")
	}
}
