package circuits

import (
	"fmt"
	"sort"

	"github.com/nyu-secml/almost/internal/aig"
)

// Profile summarizes a benchmark's published interface and size.
type Profile struct {
	Name     string
	Inputs   int
	Outputs  int
	RefGates int // published gate count of the original netlist
}

// profiles lists the ISCAS85 circuits used in the paper (Table I–III).
var profiles = []Profile{
	{"c432", 36, 7, 160},
	{"c499", 41, 32, 202},
	{"c880", 60, 26, 383},
	{"c1355", 41, 32, 546},
	{"c1908", 33, 25, 880},
	{"c2670", 233, 140, 1193},
	{"c3540", 50, 22, 1669},
	{"c5315", 178, 123, 2307},
	{"c6288", 32, 32, 2406},
	{"c7552", 207, 108, 3512},
}

// Names returns the available benchmark names in canonical (size) order.
func Names() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// PaperSet returns the seven largest benchmarks evaluated in the paper's
// tables: c1355, c1908, c2670, c3540, c5315, c6288, c7552.
func PaperSet() []string {
	return []string{"c1355", "c1908", "c2670", "c3540", "c5315", "c6288", "c7552"}
}

// ProfileOf returns the profile for a benchmark name.
func ProfileOf(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// generateFromScratch builds the named benchmark from its structural
// generator. This is the *source of truth* for the embedded golden
// BENCH files (see golden.go and TestGoldenFaithful's -update flag);
// production code loads the parsed goldens through Generate instead, so
// there is exactly one construction path at runtime.
func generateFromScratch(name string) (*aig.AIG, error) {
	switch name {
	case "c432":
		return genC432(), nil
	case "c499":
		return genC499(false), nil
	case "c1355":
		return genC499(true), nil
	case "c880":
		return genC880(), nil
	case "c1908":
		return genC1908(), nil
	case "c2670":
		return genC2670(), nil
	case "c3540":
		return genC3540(), nil
	case "c5315":
		return genC5315(), nil
	case "c6288":
		return genC6288(), nil
	case "c7552":
		return genC7552(), nil
	}
	return nil, fmt.Errorf("circuits: unknown benchmark %q (known: %v)", name, Names())
}

// MustGenerate is Generate that panics on unknown names; for tests and
// examples where the name is a literal.
func MustGenerate(name string) *aig.AIG {
	g, err := Generate(name)
	if err != nil {
		panic(err)
	}
	return g
}

func inputs(g *aig.AIG, n int, prefix string) []aig.Lit {
	ls := make([]aig.Lit, n)
	for i := range ls {
		ls[i] = g.AddInput(fmt.Sprintf("%s%d", prefix, i))
	}
	return ls
}

// genC432: 36-in 7-out interrupt controller — four 9-line request groups
// with priority arbitration and channel encoding.
func genC432() *aig.AIG {
	g := aig.New()
	in := inputs(g, 36, "G")
	groups := [][]aig.Lit{in[0:9], in[9:18], in[18:27], in[27:36]}
	// Per-group request OR and priority grants across groups.
	var groupReq []aig.Lit
	for _, gr := range groups {
		groupReq = append(groupReq, g.OrN(gr))
	}
	grants, none := priorityEncoder(g, groupReq)
	// Encode the granted channel within the winning group.
	var chan0, chan1, chan2, chan3 []aig.Lit
	for gi, gr := range groups {
		lineGrants, _ := priorityEncoder(g, gr)
		var b0, b1, b2, b3 []aig.Lit
		for li, lg := range lineGrants {
			sel := g.And(lg, grants[gi])
			if li&1 != 0 {
				b0 = append(b0, sel)
			}
			if li&2 != 0 {
				b1 = append(b1, sel)
			}
			if li&4 != 0 {
				b2 = append(b2, sel)
			}
			if li&8 != 0 {
				b3 = append(b3, sel)
			}
		}
		chan0 = append(chan0, g.OrN(b0))
		chan1 = append(chan1, g.OrN(b1))
		chan2 = append(chan2, g.OrN(b2))
		chan3 = append(chan3, g.OrN(b3))
	}
	g.AddOutput(g.OrN(chan0), "PA")
	g.AddOutput(g.OrN(chan1), "PB")
	g.AddOutput(g.OrN(chan2), "PC")
	g.AddOutput(g.OrN(chan3), "PD")
	g.AddOutput(g.OrN(grants[:2]), "GRP01")
	g.AddOutput(g.OrN(grants[2:]), "GRP23")
	g.AddOutput(none, "NONE")
	return g.Cleanup()
}

// genC499: 41-in 32-out single-error-correcting code circuit. expand
// selects the c1355 variant: same function with XORs expanded into extra
// masking logic, growing the gate count as the real c1355 does.
func genC499(expand bool) *aig.AIG {
	g := aig.New()
	data := inputs(g, 32, "ID")
	ctrl := inputs(g, 9, "IC")
	nCheck := 8
	syn := hammingEncode(g, data, nCheck)
	// Mix received check bits (ctrl[0..7]) into the syndrome.
	for i := range syn {
		syn[i] = g.Xor(syn[i], ctrl[i])
	}
	enable := ctrl[8]
	// Error-correct each data bit: flip when its syndrome pattern matches.
	for i, d := range data {
		var match []aig.Lit
		for c := 0; c < nCheck; c++ {
			s := syn[c]
			if expand && (c+i/8)%2 == 0 {
				// c1355 is c499 with each XOR expanded into NAND structure,
				// which destroys sharing between outputs. Emulate by
				// recomputing half the syndrome bits per output group
				// through a rotated-association parity tree (functionally
				// identical, structurally distinct).
				var taps []aig.Lit
				for j, dd := range data {
					if (j>>(c%5))&1 == 1 || (j+c)%3 == 0 {
						taps = append(taps, dd)
					}
				}
				rot := (i/8 + c) % len(taps)
				taps = append(taps[rot:], taps[:rot]...)
				acc := taps[0]
				for _, tp := range taps[1:] {
					acc = g.Xor(acc, tp)
				}
				s = g.Xor(acc, ctrl[c])
			}
			if (i>>(c%5))&1 == 1 || (i+c)%3 == 0 {
				match = append(match, s)
			} else {
				match = append(match, s.Not())
			}
		}
		flip := g.And(g.AndN(match), enable)
		g.AddOutput(g.Xor(d, flip), fmt.Sprintf("OD%d", i))
	}
	return g.Cleanup()
}

// genC880: 60-in 26-out 8-bit ALU with status logic.
func genC880() *aig.AIG {
	g := aig.New()
	a := inputs(g, 8, "A")
	b := inputs(g, 8, "B")
	c := inputs(g, 8, "C")
	d := inputs(g, 8, "D")
	op := inputs(g, 4, "OP")
	misc := inputs(g, 24, "M")
	res, cout := alu(g, a, b, [2]aig.Lit{op[0], op[1]})
	res2, _ := alu(g, c, d, [2]aig.Lit{op[2], op[3]})
	for i := 0; i < 8; i++ {
		g.AddOutput(g.Mux(misc[0], res2[i], res[i]), fmt.Sprintf("R%d", i))
	}
	g.AddOutput(cout, "COUT")
	g.AddOutput(equality(g, a, b), "EQ")
	g.AddOutput(lessThan(g, c, d), "LT")
	g.AddOutput(parityTree(g, misc), "PAR")
	// Control outputs from misc lines.
	for i := 0; i < 14; i++ {
		t1 := g.And(misc[i], misc[(i+5)%24].Not())
		t2 := g.Or(t1, g.And(misc[(i+9)%24], op[i%4]))
		g.AddOutput(g.Xor(t2, res[i%8]), fmt.Sprintf("K%d", i))
	}
	return g.Cleanup()
}

// genC1908: 33-in 25-out SEC/DED-style error-correcting circuit.
func genC1908() *aig.AIG {
	g := aig.New()
	data := inputs(g, 16, "D")
	chk := inputs(g, 14, "P")
	mode := inputs(g, 3, "MD")
	syn := hammingEncode(g, data, 12)
	for i := 0; i < 12; i++ {
		syn[i] = g.Xor(syn[i], chk[i])
	}
	dblErr := parityTree(g, append(append([]aig.Lit{}, syn...), chk[12], chk[13]))
	for i, d := range data {
		var match []aig.Lit
		for c := 0; c < 12; c++ {
			if (i>>(c%5))&1 == 1 || (i+c)%3 == 0 {
				match = append(match, syn[c])
			} else {
				match = append(match, syn[c].Not())
			}
		}
		flip := g.AndN(match)
		corrected := g.Xor(d, g.And(flip, mode[0]))
		masked := g.And(corrected, g.Or(mode[1], dblErr.Not()))
		g.AddOutput(masked, fmt.Sprintf("O%d", i))
	}
	g.AddOutput(dblErr, "DED")
	g.AddOutput(g.OrN(syn), "ERR")
	for i := 0; i < 7; i++ {
		g.AddOutput(g.Xor(syn[i], g.And(syn[i+1], mode[2])), fmt.Sprintf("S%d", i))
	}
	return g.Cleanup()
}

// genC2670: 233-in 140-out ALU-and-control circuit: wide pass-through
// control plane plus comparator and parity blocks.
func genC2670() *aig.AIG {
	g := aig.New()
	a := inputs(g, 32, "A")
	b := inputs(g, 32, "B")
	ctl := inputs(g, 64, "CT")
	dat := inputs(g, 105, "X")
	sum, cout := rippleAdder(g, a[:16], b[:16], ctl[0])
	eq := equality(g, a[16:24], b[16:24])
	lt := lessThan(g, a[24:], b[24:])
	for i := 0; i < 16; i++ {
		g.AddOutput(g.Mux(ctl[1], dat[i], sum[i]), fmt.Sprintf("S%d", i))
	}
	g.AddOutput(cout, "CO")
	g.AddOutput(eq, "EQ")
	g.AddOutput(lt, "LT")
	// Wide gated control plane: the bulk of c2670's logic is shallow
	// AND-OR control with huge fanin counts.
	for i := 0; i < 105; i++ {
		en := g.And(ctl[i%64], ctl[(i+13)%64].Not())
		t := g.And(dat[i], en)
		t = g.Or(t, g.And(dat[(i+31)%105], ctl[(i+7)%64]))
		g.AddOutput(t, fmt.Sprintf("Y%d", i))
	}
	for i := 0; i < 16; i++ {
		g.AddOutput(parityTree(g, []aig.Lit{dat[i*6], dat[i*6+1], dat[i*6+2], ctl[i*4%64]}), fmt.Sprintf("PZ%d", i))
	}
	return g.Cleanup()
}

// genC3540: 50-in 22-out 8-bit ALU with BCD-style correction logic.
func genC3540() *aig.AIG {
	g := aig.New()
	a := inputs(g, 8, "A")
	b := inputs(g, 8, "B")
	ctl := inputs(g, 34, "C")
	// Two ALU stages with operand gating (mirrors c3540's masked-operand ALU).
	ga := make([]aig.Lit, 8)
	gb := make([]aig.Lit, 8)
	for i := 0; i < 8; i++ {
		ga[i] = g.Mux(ctl[0], g.Xor(a[i], ctl[2]), g.And(a[i], ctl[i%4+3].Not()))
		gb[i] = g.Mux(ctl[1], g.Xnor(b[i], ctl[7]), g.Or(b[i], ctl[i%3+8]))
	}
	r1, c1 := alu(g, ga, gb, [2]aig.Lit{ctl[11], ctl[12]})
	r2, c2 := alu(g, r1, a, [2]aig.Lit{ctl[13], ctl[14]})
	// BCD correction: add 6 when nibble > 9.
	low := r2[:4]
	over9 := g.Or(g.And(low[3], low[2]), g.And(low[3], low[1]))
	six := []aig.Lit{aig.False, over9, over9, aig.False}
	corr, _ := rippleAdder(g, low, six, aig.False)
	for i := 0; i < 4; i++ {
		g.AddOutput(g.Mux(ctl[15], corr[i], r2[i]), fmt.Sprintf("L%d", i))
	}
	for i := 4; i < 8; i++ {
		g.AddOutput(r2[i], fmt.Sprintf("H%d", i-4))
	}
	// Named CO1/CO2 (not C1/C2): the control inputs are already called
	// C<i>, and BENCH cannot express an output whose name collides with
	// a differently-driven input.
	g.AddOutput(c1, "CO1")
	g.AddOutput(c2, "CO2")
	// Shifter/rotator outputs selected by control.
	shifted := make([]aig.Lit, 8)
	for i := range shifted {
		shifted[i] = g.Mux(ctl[16], r1[(i+1)%8], r1[(i+7)%8])
	}
	sel := muxTree(g, []aig.Lit{ctl[17], ctl[18], ctl[19]}, shifted)
	g.AddOutput(sel, "SH")
	// c3540 includes a multiply-step unit; model it with a small array
	// multiplier whose product bits fold into the flag outputs.
	prod := arrayMultiplier(g, r1, ga[:4])
	for i := 0; i < 11; i++ {
		t := g.And(g.Xor(ctl[20+i], r2[i%8]), g.Or(ctl[(21+i)%34], shifted[i%8]))
		g.AddOutput(g.Xor(t, prod[i]), fmt.Sprintf("F%d", i))
	}
	return g.Cleanup()
}

// genC5315: 178-in 123-out 9-bit ALU selector: two 9-bit ALUs, a
// comparator bank and mux-heavy routing.
func genC5315() *aig.AIG {
	g := aig.New()
	a := inputs(g, 36, "A") // four 9-bit operands
	b := inputs(g, 36, "B")
	ctl := inputs(g, 26, "C")
	dat := inputs(g, 80, "X")
	var results [][]aig.Lit
	for blk := 0; blk < 4; blk++ {
		ai := a[blk*9 : blk*9+8]
		bi := b[blk*9 : blk*9+8]
		r, cout := alu(g, ai, bi, [2]aig.Lit{ctl[blk], ctl[blk+4]})
		r = append(r, g.Xor(cout, a[blk*9+8]))
		results = append(results, r)
	}
	for blk := 0; blk < 4; blk++ {
		for i := 0; i < 9; i++ {
			sel := g.Mux(ctl[8+blk%4], results[(blk+1)%4][i], results[blk][i])
			g.AddOutput(sel, fmt.Sprintf("R%d_%d", blk, i))
		}
	}
	g.AddOutput(equality(g, a[:9], b[:9]), "EQ0")
	g.AddOutput(lessThan(g, a[9:18], b[9:18]), "LT1")
	g.AddOutput(parityTree(g, a), "PA")
	g.AddOutput(parityTree(g, b), "PB")
	// Routed data plane.
	for i := 0; i < 80; i++ {
		en := g.And(ctl[12+i%14], dat[(i+17)%80])
		t := g.Mux(en, dat[i], g.Xor(dat[i], results[i%4][i%9]))
		g.AddOutput(t, fmt.Sprintf("Y%d", i))
	}
	for i := 0; i < 3; i++ {
		g.AddOutput(g.OrN(results[i][:4]), fmt.Sprintf("Z%d", i))
	}
	return g.Cleanup()
}

// genC6288: the 16x16 array multiplier.
func genC6288() *aig.AIG {
	g := aig.New()
	a := inputs(g, 16, "A")
	b := inputs(g, 16, "B")
	prod := arrayMultiplier(g, a, b)
	for i, p := range prod {
		g.AddOutput(p, fmt.Sprintf("P%d", i))
	}
	return g.Cleanup()
}

// genC7552: 207-in 108-out 32-bit adder/comparator with parity-checked
// input bus.
func genC7552() *aig.AIG {
	g := aig.New()
	a := inputs(g, 32, "A")
	b := inputs(g, 32, "B")
	c := inputs(g, 32, "C")
	ctl := inputs(g, 15, "K")
	dat := inputs(g, 96, "X")
	// Gated operand selection.
	opA := make([]aig.Lit, 32)
	opB := make([]aig.Lit, 32)
	for i := 0; i < 32; i++ {
		opA[i] = g.Mux(ctl[0], c[i], a[i])
		opB[i] = g.Mux(ctl[1], g.Xor(b[i], ctl[2]), b[i])
	}
	sum, cout := rippleAdder(g, opA, opB, ctl[3])
	for i := 0; i < 32; i++ {
		g.AddOutput(g.Mux(ctl[4], dat[i], sum[i]), fmt.Sprintf("S%d", i))
	}
	g.AddOutput(cout, "CO")
	g.AddOutput(equality(g, a, b), "EQ")
	g.AddOutput(lessThan(g, a, c), "LT")
	g.AddOutput(parityTree(g, dat[:48]), "P0")
	g.AddOutput(parityTree(g, dat[48:]), "P1")
	// Checked data plane with per-byte parity.
	for i := 0; i < 64; i++ {
		grp := dat[(i/8)*8 : (i/8)*8+8]
		chk := parityTree(g, grp)
		t := g.And(dat[i], g.Or(chk, ctl[5+i%10]))
		g.AddOutput(g.Xor(t, sum[i%32]), fmt.Sprintf("Y%d", i))
	}
	for i := 0; i < 7; i++ {
		g.AddOutput(g.And(ctl[5+i], cout.NotIf(i%2 == 0)), fmt.Sprintf("Z%d", i))
	}
	return g.Cleanup()
}

// Catalog returns all profiles sorted by reference gate count.
func Catalog() []Profile {
	out := append([]Profile(nil), profiles...)
	sort.Slice(out, func(i, j int) bool { return out[i].RefGates < out[j].RefGates })
	return out
}
