package circuits

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/nyu-secml/almost/internal/aig"
)

// RandomCircuit generates a random combinational AIG with the given
// interface, deterministically from rng. Gate fanins are drawn with a
// recency bias (geometric-ish preference for recent nodes) so the
// circuit gets depth instead of degenerating into a shallow forest, and
// each output is driven from the deeper half of the structure with a
// random polarity. Used by the cross-scheme scenario fuzzer, which needs
// arbitrary circuit shapes rather than the fixed ISCAS85 profiles.
func RandomCircuit(rng *rand.Rand, nInputs, nOutputs, nGates int) *aig.AIG {
	if nInputs < 1 || nOutputs < 1 {
		panic(fmt.Sprintf("circuits: RandomCircuit needs at least 1 input and 1 output (got %d, %d)", nInputs, nOutputs))
	}
	g := aig.New()
	pool := make([]aig.Lit, 0, nInputs+nGates)
	for i := 0; i < nInputs; i++ {
		pool = append(pool, g.AddInput(fmt.Sprintf("in%d", i)))
	}
	pick := func() aig.Lit {
		// Recency bias: half the draws come from the most recent third.
		var idx int
		if rng.Intn(2) == 0 && len(pool) > 3 {
			idx = len(pool) - 1 - rng.Intn(len(pool)/3+1)
		} else {
			idx = rng.Intn(len(pool))
		}
		return pool[idx].NotIf(rng.Intn(2) == 1)
	}
	for i := 0; i < nGates; i++ {
		n := g.And(pick(), pick())
		pool = append(pool, n)
	}
	for o := 0; o < nOutputs; o++ {
		// Draw outputs from the deeper half so they see real logic, but
		// fall back to anything when the pool is tiny.
		lo := len(pool) / 2
		l := pool[lo+rng.Intn(len(pool)-lo)].NotIf(rng.Intn(2) == 1)
		g.AddOutput(l, fmt.Sprintf("out%d", o))
	}
	return g
}

// DepthProfile shapes the fanin-selection bias of RandomCircuitProfile.
type DepthProfile int

// Depth profiles for sized synthetic benchmarks.
const (
	// DepthMixed uses RandomCircuit's recency bias: realistic mid-depth
	// structure, neither chain nor forest.
	DepthMixed DepthProfile = iota
	// DepthDeep chains one fanin through the most recent nodes, producing
	// depth proportional to the gate count — worst case for levelized
	// simulation and schedule length.
	DepthDeep
	// DepthWide draws both fanins uniformly, producing logarithmic depth
	// and massive width — worst case for frontier size and fanout counts.
	DepthWide
)

// String names the profile for benchmark labels.
func (p DepthProfile) String() string {
	switch p {
	case DepthMixed:
		return "mixed"
	case DepthDeep:
		return "deep"
	case DepthWide:
		return "wide"
	}
	return fmt.Sprintf("DepthProfile(%d)", int(p))
}

// RandomCircuitProfile generates a random combinational AIG with
// (at least) targetGates AND nodes, deterministically from rng. Unlike
// RandomCircuit, whose gate count undershoots its argument when
// structural hashing folds duplicate draws, this generator keeps drawing
// until the structural gate count reaches the target — sized synthetic
// benchmarks (the PR 8 scaling curve) need the x-axis to mean what it
// says. The depth profile picks the fanin bias; see the DepthProfile
// constants. RandomCircuit is left untouched so the scenario fuzzer's
// seed streams stay stable.
func RandomCircuitProfile(rng *rand.Rand, nInputs, nOutputs, targetGates int, profile DepthProfile) *aig.AIG {
	if nInputs < 2 || nOutputs < 1 {
		panic(fmt.Sprintf("circuits: RandomCircuitProfile needs at least 2 inputs and 1 output (got %d, %d)", nInputs, nOutputs))
	}
	g := aig.New()
	pool := make([]aig.Lit, 0, nInputs+targetGates)
	for i := 0; i < nInputs; i++ {
		pool = append(pool, g.AddInput(fmt.Sprintf("in%d", i)))
	}
	uniform := func() aig.Lit {
		return pool[rng.Intn(len(pool))].NotIf(rng.Intn(2) == 1)
	}
	recent := func(window int) aig.Lit {
		if window > len(pool) {
			window = len(pool)
		}
		return pool[len(pool)-1-rng.Intn(window)].NotIf(rng.Intn(2) == 1)
	}
	draw := func() (aig.Lit, aig.Lit) {
		switch profile {
		case DepthDeep:
			// One fanin rides the frontier, so levels accumulate.
			return recent(4), uniform()
		case DepthWide:
			return uniform(), uniform()
		default:
			a := uniform()
			if rng.Intn(2) == 0 && len(pool) > 3 {
				a = recent(len(pool)/3 + 1)
			}
			return a, uniform()
		}
	}
	// Folded draws (strash hits, constants) don't count toward the
	// target; the budget bounds pathological rng streams instead of
	// looping forever.
	for budget := 4*targetGates + 64; g.NumAnds() < targetGates && budget > 0; budget-- {
		before := g.NumAnds()
		n := g.And(draw())
		if g.NumAnds() > before {
			pool = append(pool, n)
		}
	}
	for o := 0; o < nOutputs; o++ {
		lo := len(pool) / 2
		l := pool[lo+rng.Intn(len(pool)-lo)].NotIf(rng.Intn(2) == 1)
		g.AddOutput(l, fmt.Sprintf("out%d", o))
	}
	return g
}

// syntheticProfile is one registered sized benchmark.
type syntheticProfile struct {
	inputs, outputs, gates int
	profile                DepthProfile
	seed                   int64
}

// synthetics registers the sized synthetic presets by name, resolvable
// through Generate exactly like the ISCAS85 built-ins. Sizes span three
// decades so the scaling curve has a real x-axis; seeds are fixed so a
// preset is one reproducible circuit, not a family.
var synthetics = map[string]syntheticProfile{
	"rand10k":  {inputs: 64, outputs: 32, gates: 10_000, profile: DepthMixed, seed: 0xA15},
	"rand100k": {inputs: 128, outputs: 64, gates: 100_000, profile: DepthMixed, seed: 0xA16},
	"rand1m":   {inputs: 512, outputs: 128, gates: 1_000_000, profile: DepthMixed, seed: 0xA17},
}

// syntheticCache holds the lazily generated presets (same
// once-then-clone discipline as the embedded goldens).
var syntheticCache = func() map[string]*golden {
	m := make(map[string]*golden, len(synthetics))
	for name := range synthetics {
		m[name] = &golden{}
	}
	return m
}()

// SyntheticNames returns the registered sized synthetic benchmarks in
// ascending size order. They are deliberately not part of Names():
// suites that sweep "all built-ins" must not pull a million-gate
// netlist into every run.
func SyntheticNames() []string {
	names := make([]string, 0, len(synthetics))
	for name := range synthetics {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		return synthetics[names[i]].gates < synthetics[names[j]].gates
	})
	return names
}

// SyntheticGates returns the registered target gate count of a synthetic
// preset name.
func SyntheticGates(name string) (int, bool) {
	p, ok := synthetics[name]
	return p.gates, ok
}

// generateSynthetic resolves a sized synthetic preset, generating it on
// first use and cloning the cached copy afterwards.
func generateSynthetic(name string) (*aig.AIG, bool) {
	gl, ok := syntheticCache[name]
	if !ok {
		return nil, false
	}
	gl.once.Do(func() {
		p := synthetics[name]
		gl.g = RandomCircuitProfile(rand.New(rand.NewSource(p.seed)), p.inputs, p.outputs, p.gates, p.profile)
	})
	return gl.g.Clone(), true
}
