package circuits

import (
	"fmt"
	"math/rand"

	"github.com/nyu-secml/almost/internal/aig"
)

// RandomCircuit generates a random combinational AIG with the given
// interface, deterministically from rng. Gate fanins are drawn with a
// recency bias (geometric-ish preference for recent nodes) so the
// circuit gets depth instead of degenerating into a shallow forest, and
// each output is driven from the deeper half of the structure with a
// random polarity. Used by the cross-scheme scenario fuzzer, which needs
// arbitrary circuit shapes rather than the fixed ISCAS85 profiles.
func RandomCircuit(rng *rand.Rand, nInputs, nOutputs, nGates int) *aig.AIG {
	if nInputs < 1 || nOutputs < 1 {
		panic(fmt.Sprintf("circuits: RandomCircuit needs at least 1 input and 1 output (got %d, %d)", nInputs, nOutputs))
	}
	g := aig.New()
	pool := make([]aig.Lit, 0, nInputs+nGates)
	for i := 0; i < nInputs; i++ {
		pool = append(pool, g.AddInput(fmt.Sprintf("in%d", i)))
	}
	pick := func() aig.Lit {
		// Recency bias: half the draws come from the most recent third.
		var idx int
		if rng.Intn(2) == 0 && len(pool) > 3 {
			idx = len(pool) - 1 - rng.Intn(len(pool)/3+1)
		} else {
			idx = rng.Intn(len(pool))
		}
		return pool[idx].NotIf(rng.Intn(2) == 1)
	}
	for i := 0; i < nGates; i++ {
		n := g.And(pick(), pick())
		pool = append(pool, n)
	}
	for o := 0; o < nOutputs; o++ {
		// Draw outputs from the deeper half so they see real logic, but
		// fall back to anything when the pool is tiny.
		lo := len(pool) / 2
		l := pool[lo+rng.Intn(len(pool)-lo)].NotIf(rng.Intn(2) == 1)
		g.AddOutput(l, fmt.Sprintf("out%d", o))
	}
	return g
}
