package circuits

import (
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
)

// depth returns the level of the deepest output.
func depth(g *aig.AIG) int { return g.NumLevels() }

func TestRandomCircuitProfileHitsTargetGateCount(t *testing.T) {
	for _, p := range []DepthProfile{DepthMixed, DepthDeep, DepthWide} {
		g := RandomCircuitProfile(rand.New(rand.NewSource(7)), 16, 8, 2000, p)
		if g.NumAnds() < 2000 {
			t.Fatalf("%v: %d gates, want >= 2000 (strash folds must not shrink the target)", p, g.NumAnds())
		}
		// The budget only absorbs fold retries; the count must not balloon.
		if g.NumAnds() > 2100 {
			t.Fatalf("%v: %d gates, want about 2000", p, g.NumAnds())
		}
		if g.NumInputs() != 16 || g.NumOutputs() != 8 {
			t.Fatalf("%v: interface %d/%d, want 16/8", p, g.NumInputs(), g.NumOutputs())
		}
	}
}

func TestRandomCircuitProfileDeterministic(t *testing.T) {
	for _, p := range []DepthProfile{DepthMixed, DepthDeep, DepthWide} {
		a := RandomCircuitProfile(rand.New(rand.NewSource(11)), 12, 6, 500, p)
		b := RandomCircuitProfile(rand.New(rand.NewSource(11)), 12, 6, 500, p)
		if a.StructuralDigest() != b.StructuralDigest() {
			t.Fatalf("%v: same seed produced different circuits", p)
		}
		c := RandomCircuitProfile(rand.New(rand.NewSource(12)), 12, 6, 500, p)
		if a.StructuralDigest() == c.StructuralDigest() {
			t.Fatalf("%v: different seeds produced identical circuits", p)
		}
	}
}

// TestDepthProfilesAreDistinct pins what the profile names promise: at
// the same gate count, deep circuits are much deeper than mixed, and
// mixed deeper than wide.
func TestDepthProfilesAreDistinct(t *testing.T) {
	const gates = 3000
	d := depth(RandomCircuitProfile(rand.New(rand.NewSource(21)), 16, 4, gates, DepthDeep))
	m := depth(RandomCircuitProfile(rand.New(rand.NewSource(21)), 16, 4, gates, DepthMixed))
	w := depth(RandomCircuitProfile(rand.New(rand.NewSource(21)), 16, 4, gates, DepthWide))
	if !(d > 2*m && m > w) {
		t.Fatalf("depth ordering violated: deep=%d mixed=%d wide=%d", d, m, w)
	}
}

// TestSyntheticPresetsResolveLikeBuiltins exercises the smallest sized
// preset through the same Generate entry point the built-ins use. The
// larger presets share the construction path, differing only in
// registered size, and are exercised by the scaling benchmark.
func TestSyntheticPresetsResolveLikeBuiltins(t *testing.T) {
	names := SyntheticNames()
	if len(names) != 3 || names[0] != "rand10k" || names[2] != "rand1m" {
		t.Fatalf("synthetic registry = %v", names)
	}
	g := MustGenerate("rand10k")
	want, _ := SyntheticGates("rand10k")
	if g.NumAnds() < want {
		t.Fatalf("rand10k has %d gates, want >= %d", g.NumAnds(), want)
	}
	// Cache-and-clone: a second Generate returns identical content in a
	// fresh graph the caller may extend freely.
	h := MustGenerate("rand10k")
	if h == g || h.StructuralDigest() != g.StructuralDigest() {
		t.Fatal("synthetic preset must clone a cached deterministic circuit")
	}
	for _, name := range Names() {
		if _, ok := SyntheticGates(name); ok {
			t.Fatalf("built-in name %q collides with a synthetic preset", name)
		}
	}
}
