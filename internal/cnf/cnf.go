// Package cnf bridges AIGs and the SAT solver: Tseitin encoding, miter
// construction for combinational equivalence checking, and the
// stuck-at-fault testability queries used by the redundancy attack.
package cnf

import (
	"context"
	"errors"
	"fmt"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/sat"
)

// ErrMismatch is returned (wrapped, with detail) when two netlists
// cannot be compared because their interfaces disagree — input/output
// arity, or key size vs. key inputs. It is a distinct condition from
// functional inequivalence: no counterexample exists, the question was
// malformed.
var ErrMismatch = errors.New("cnf: interface mismatch")

// Encoding maps an AIG into solver variables.
type Encoding struct {
	G *aig.AIG
	S *sat.Solver
	// nodeVar[id] is the solver variable of AIG node id; -1 if the node is
	// outside the encoded cone.
	nodeVar []int
}

// LitOf translates an AIG literal into a solver literal.
func (e *Encoding) LitOf(l aig.Lit) sat.Lit {
	v := e.nodeVar[l.Node()]
	if v < 0 {
		panic(fmt.Sprintf("cnf: node %d not encoded", l.Node()))
	}
	return sat.MkLit(v, l.Neg())
}

// InputLit returns the solver literal of input index i.
func (e *Encoding) InputLit(i int) sat.Lit {
	return e.LitOf(e.G.Input(i))
}

// Encode adds the Tseitin encoding of the whole AIG to solver s and
// returns the encoding. The constant node is constrained to false.
func Encode(g *aig.AIG, s *sat.Solver) *Encoding {
	e := &Encoding{G: g, S: s, nodeVar: make([]int, g.NumNodes())}
	for i := range e.nodeVar {
		e.nodeVar[i] = -1
	}
	// Constant node.
	cv := s.NewVar()
	e.nodeVar[0] = cv
	s.AddClause(sat.MkLit(cv, true))
	for i := 0; i < g.NumInputs(); i++ {
		e.nodeVar[g.Input(i).Node()] = s.NewVar()
	}
	for _, id := range g.TopoOrder() {
		e.encodeAnd(id)
	}
	// Some outputs may be inputs/constants directly; ensure all output
	// nodes are encoded (TopoOrder covers AND nodes only).
	for i := 0; i < g.NumOutputs(); i++ {
		n := g.Output(i).Node()
		if e.nodeVar[n] < 0 {
			e.encodeAnd(n)
		}
	}
	return e
}

func (e *Encoding) encodeAnd(id int) {
	if e.nodeVar[id] >= 0 {
		return
	}
	if !e.G.IsAnd(id) {
		// Unreferenced input (possible when an output bypasses logic).
		e.nodeVar[id] = e.S.NewVar()
		return
	}
	f0, f1 := e.G.Fanins(id)
	e.encodeAnd(f0.Node())
	e.encodeAnd(f1.Node())
	v := e.S.NewVar()
	e.nodeVar[id] = v
	a := e.LitOf(f0)
	b := e.LitOf(f1)
	o := sat.MkLit(v, false)
	// o <-> a & b
	e.S.AddClause(o.Not(), a)
	e.S.AddClause(o.Not(), b)
	e.S.AddClause(o, a.Not(), b.Not())
}

// Equivalent performs SAT-based combinational equivalence checking of two
// AIGs with identical interfaces. It returns (true, nil, nil) when
// equivalent and (false, cex, nil) with a counterexample input assignment
// otherwise. A non-nil error (matching ErrMismatch) means the interfaces
// disagree and the question is malformed — previously this case returned
// (false, nil), indistinguishable from a genuine inequivalence whose
// counterexample was discarded.
func Equivalent(a, b *aig.AIG) (bool, []bool, error) {
	return EquivalentCtx(context.Background(), a, b)
}

// EquivalentCtx is Equivalent with cancellation: the solver polls ctx
// between conflicts/decisions and the check returns ctx's error when
// canceled mid-solve.
func EquivalentCtx(ctx context.Context, a, b *aig.AIG) (bool, []bool, error) {
	if a.NumInputs() != b.NumInputs() {
		return false, nil, fmt.Errorf("%w: %d vs %d inputs", ErrMismatch, a.NumInputs(), b.NumInputs())
	}
	if a.NumOutputs() != b.NumOutputs() {
		return false, nil, fmt.Errorf("%w: %d vs %d outputs", ErrMismatch, a.NumOutputs(), b.NumOutputs())
	}
	s := sat.New(0)
	hookCtx(s, ctx)
	ea := Encode(a, s)
	eb := Encode(b, s)
	// Tie inputs together.
	for i := 0; i < a.NumInputs(); i++ {
		la, lb := ea.InputLit(i), eb.InputLit(i)
		s.AddClause(la.Not(), lb)
		s.AddClause(la, lb.Not())
	}
	// Miter: OR over per-output XORs must be satisfiable for inequivalence.
	var diffs []sat.Lit
	for i := 0; i < a.NumOutputs(); i++ {
		oa := ea.LitOf(a.Output(i))
		ob := eb.LitOf(b.Output(i))
		d := sat.MkLit(s.NewVar(), false)
		// d -> (oa xor ob); onboth directions for soundness of the OR.
		s.AddClause(d.Not(), oa, ob)
		s.AddClause(d.Not(), oa.Not(), ob.Not())
		s.AddClause(d, oa.Not(), ob)
		s.AddClause(d, oa, ob.Not())
		diffs = append(diffs, d)
	}
	s.AddClause(diffs...)
	switch s.Solve() {
	case sat.Unsat:
		return true, nil, nil
	case sat.Unknown:
		return false, nil, canceled(ctx, "equivalence check")
	}
	cex := make([]bool, a.NumInputs())
	for i := range cex {
		cex[i] = s.ValueOf(ea.InputLit(i).Var())
	}
	return false, cex, nil
}

// EquivalentUnderKey checks that locked (with its key inputs fixed to
// key) is equivalent to orig on all primary inputs. The locked AIG's key
// inputs are identified by its key-input flags; key is indexed in
// key-input order. A non-nil error (matching ErrMismatch) flags a key or
// interface arity disagreement rather than a functional difference.
func EquivalentUnderKey(orig, locked *aig.AIG, key []bool) (bool, []bool, error) {
	return EquivalentUnderKeyCtx(context.Background(), orig, locked, key)
}

// EquivalentUnderKeyCtx is EquivalentUnderKey with cancellation, wired
// through the solver's Stop hook so even a single long Solve call
// honors ctx.
func EquivalentUnderKeyCtx(ctx context.Context, orig, locked *aig.AIG, key []bool) (bool, []bool, error) {
	kIdx := locked.KeyInputIndices()
	if len(kIdx) != len(key) {
		return false, nil, fmt.Errorf("%w: key size %d vs %d key inputs", ErrMismatch, len(key), len(kIdx))
	}
	if locked.NumInputs()-len(kIdx) != orig.NumInputs() {
		return false, nil, fmt.Errorf("%w: locked has %d primary inputs, orig has %d",
			ErrMismatch, locked.NumInputs()-len(kIdx), orig.NumInputs())
	}
	if orig.NumOutputs() != locked.NumOutputs() {
		return false, nil, fmt.Errorf("%w: %d vs %d outputs", ErrMismatch, orig.NumOutputs(), locked.NumOutputs())
	}
	s := sat.New(0)
	hookCtx(s, ctx)
	eo := Encode(orig, s)
	el := Encode(locked, s)
	// Fix key bits.
	for j, ki := range kIdx {
		l := el.InputLit(ki)
		if key[j] {
			s.AddClause(l)
		} else {
			s.AddClause(l.Not())
		}
	}
	// Tie non-key inputs in order.
	oi := 0
	for i := 0; i < locked.NumInputs(); i++ {
		if locked.InputIsKey(i) {
			continue
		}
		la, lb := eo.InputLit(oi), el.InputLit(i)
		s.AddClause(la.Not(), lb)
		s.AddClause(la, lb.Not())
		oi++
	}
	var diffs []sat.Lit
	for i := 0; i < orig.NumOutputs(); i++ {
		oa := eo.LitOf(orig.Output(i))
		ob := el.LitOf(locked.Output(i))
		d := sat.MkLit(s.NewVar(), false)
		s.AddClause(d.Not(), oa, ob)
		s.AddClause(d.Not(), oa.Not(), ob.Not())
		s.AddClause(d, oa.Not(), ob)
		s.AddClause(d, oa, ob.Not())
		diffs = append(diffs, d)
	}
	s.AddClause(diffs...)
	switch s.Solve() {
	case sat.Unsat:
		return true, nil, nil
	case sat.Unknown:
		return false, nil, canceled(ctx, "key equivalence check")
	}
	cex := make([]bool, orig.NumInputs())
	for i := range cex {
		cex[i] = s.ValueOf(eo.InputLit(i).Var())
	}
	return false, cex, nil
}

// hookCtx points a solver's Stop hook at ctx, making every Solve call
// on s cancellable. No-op for background contexts that can never be
// canceled.
func hookCtx(s *sat.Solver, ctx context.Context) {
	if ctx.Done() == nil {
		return
	}
	s.Stop = func() bool { return ctx.Err() != nil }
}

// canceled converts an Unknown solver answer into the error reported to
// callers: ctx's own error when the cause was cancellation, a generic
// exhaustion error otherwise (possible only if a caller set budgets on
// a solver we handed out).
func canceled(ctx context.Context, what string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cnf: %s canceled: %w", what, err)
	}
	return fmt.Errorf("cnf: %s: solver budget exhausted", what)
}

// LitsEquivalent checks, within a single AIG, whether two literals are
// functionally equivalent (over all input assignments). Used by
// resubstitution to verify candidate replacements exactly.
//
// The (equal, proven) discipline: proven is false when the conflict
// budget ran out, and in that case equal is meaningless — callers must
// treat "not proven" as "don't know", never as a proved UNSAT. See
// LitsEquivalentCtx for the cancellable variant.
func LitsEquivalent(g *aig.AIG, x, y aig.Lit, maxConflicts int64) (equal bool, proven bool) {
	return LitsEquivalentCtx(context.Background(), g, x, y, maxConflicts)
}

// LitsEquivalentCtx is LitsEquivalent with a cancellation hook polled
// inside the SAT search. Cancellation surfaces as proven == false.
func LitsEquivalentCtx(ctx context.Context, g *aig.AIG, x, y aig.Lit, maxConflicts int64) (equal bool, proven bool) {
	if x == y {
		return true, true
	}
	s := sat.New(0)
	s.MaxConflicts = maxConflicts
	hookCtx(s, ctx)
	e := encodeCones(g, s, []aig.Lit{x, y})
	lx, ly := e.LitOf(x), e.LitOf(y)
	// SAT iff x != y somewhere.
	d := sat.MkLit(s.NewVar(), false)
	s.AddClause(d.Not(), lx, ly)
	s.AddClause(d.Not(), lx.Not(), ly.Not())
	s.AddClause(d)
	switch s.Solve() {
	case sat.Unsat:
		return true, true
	case sat.Sat:
		return false, true
	}
	return false, false
}

// encodeCones encodes only the cones of the given literals.
func encodeCones(g *aig.AIG, s *sat.Solver, roots []aig.Lit) *Encoding {
	e := &Encoding{G: g, S: s, nodeVar: make([]int, g.NumNodes())}
	for i := range e.nodeVar {
		e.nodeVar[i] = -1
	}
	cv := s.NewVar()
	e.nodeVar[0] = cv
	s.AddClause(sat.MkLit(cv, true))
	var walk func(id int)
	walk = func(id int) {
		if e.nodeVar[id] >= 0 {
			return
		}
		if !g.IsAnd(id) {
			e.nodeVar[id] = s.NewVar()
			return
		}
		f0, f1 := g.Fanins(id)
		walk(f0.Node())
		walk(f1.Node())
		v := s.NewVar()
		e.nodeVar[id] = v
		a, b := e.LitOf(f0), e.LitOf(f1)
		o := sat.MkLit(v, false)
		s.AddClause(o.Not(), a)
		s.AddClause(o.Not(), b)
		s.AddClause(o, a.Not(), b.Not())
	}
	for _, r := range roots {
		walk(r.Node())
	}
	return e
}
