package cnf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/sat"
)

func TestEncodeMatchesSimulation(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	g.AddOutput(g.Mux(c, g.Xor(a, b), g.And(a, b)), "o")
	// For every input assignment, the encoding must force the output to the
	// simulated value.
	for mask := 0; mask < 8; mask++ {
		in := []bool{mask&1 == 1, mask&2 == 2, mask&4 == 4}
		want := g.EvalSingle(in)[0]
		s := sat.New(0)
		e := Encode(g, s)
		var assum []sat.Lit
		for i, v := range in {
			l := e.InputLit(i)
			if !v {
				l = l.Not()
			}
			assum = append(assum, l)
		}
		ol := e.LitOf(g.Output(0))
		if !want {
			ol = ol.Not()
		}
		assum = append(assum, ol)
		if s.Solve(assum...) != sat.Sat {
			t.Fatalf("mask %03b: encoding contradicts simulation", mask)
		}
		// And the opposite output value must be Unsat.
		assum[len(assum)-1] = ol.Not()
		if s.Solve(assum...) != sat.Unsat {
			t.Fatalf("mask %03b: output not forced", mask)
		}
	}
}

func TestEquivalentIdentical(t *testing.T) {
	g := circuits.MustGenerate("c432")
	ok, cex, _ := Equivalent(g, g.Clone())
	if !ok {
		t.Fatalf("circuit not equivalent to its clone, cex=%v", cex)
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	g1 := aig.New()
	a := g1.AddInput("a")
	b := g1.AddInput("b")
	g1.AddOutput(g1.And(a, b), "o")

	g2 := aig.New()
	a2 := g2.AddInput("a")
	b2 := g2.AddInput("b")
	g2.AddOutput(g2.Or(a2, b2), "o")

	ok, cex, _ := Equivalent(g1, g2)
	if ok {
		t.Fatalf("AND and OR reported equivalent")
	}
	if len(cex) != 2 {
		t.Fatalf("no counterexample")
	}
	// The counterexample must actually distinguish them.
	o1 := g1.EvalSingle(cex)[0]
	o2 := g2.EvalSingle(cex)[0]
	if o1 == o2 {
		t.Fatalf("cex %v does not distinguish", cex)
	}
}

func TestEquivalentDifferentStructureSameFunction(t *testing.T) {
	// De Morgan: !(a & b) == !a | !b.
	g1 := aig.New()
	a := g1.AddInput("a")
	b := g1.AddInput("b")
	g1.AddOutput(g1.And(a, b).Not(), "o")

	g2 := aig.New()
	a2 := g2.AddInput("a")
	b2 := g2.AddInput("b")
	g2.AddOutput(g2.Or(a2.Not(), b2.Not()), "o")

	if ok, cex, _ := Equivalent(g1, g2); !ok {
		t.Fatalf("De Morgan forms not equivalent, cex=%v", cex)
	}
}

func TestEquivalentInterfaceMismatch(t *testing.T) {
	g1 := aig.New()
	g1.AddInput("a")
	g1.AddOutput(aig.True, "o")
	g2 := aig.New()
	g2.AddInput("a")
	g2.AddInput("b")
	g2.AddOutput(aig.True, "o")
	if ok, _, _ := Equivalent(g1, g2); ok {
		t.Fatalf("interface mismatch reported equivalent")
	}
}

func TestEquivalentConstantOutputs(t *testing.T) {
	g1 := aig.New()
	a := g1.AddInput("a")
	g1.AddOutput(g1.And(a, a.Not()), "o") // structurally folded to const
	g2 := aig.New()
	g2.AddInput("a")
	g2.AddOutput(aig.False, "o")
	if ok, _, _ := Equivalent(g1, g2); !ok {
		t.Fatalf("constant-false forms not equivalent")
	}
}

func TestEquivalentUnderKey(t *testing.T) {
	orig := aig.New()
	a := orig.AddInput("a")
	b := orig.AddInput("b")
	orig.AddOutput(orig.And(a, b), "o")

	// Locked: XOR key gate on the output; correct key = 0.
	locked := aig.New()
	la := locked.AddInput("a")
	lb := locked.AddInput("b")
	k := locked.AddKeyInput("keyinput0")
	locked.AddOutput(locked.Xor(locked.And(la, lb), k), "o")

	if ok, _, _ := EquivalentUnderKey(orig, locked, []bool{false}); !ok {
		t.Fatalf("correct key not accepted")
	}
	if ok, _, _ := EquivalentUnderKey(orig, locked, []bool{true}); ok {
		t.Fatalf("wrong key accepted")
	}
}

func TestLitsEquivalentWithinAIG(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	x1 := g.Xor(a, b)
	// Build XOR a second, structurally different way: mux(a, !b, b).
	x2 := g.Mux(a, b.Not(), b)
	g.AddOutput(x1, "o1")
	g.AddOutput(x2, "o2")
	eq, proven := LitsEquivalent(g, x1, x2, 0)
	if !proven || !eq {
		t.Fatalf("two XOR forms: eq=%v proven=%v", eq, proven)
	}
	eq, proven = LitsEquivalent(g, x1, x2.Not(), 0)
	if !proven || eq {
		t.Fatalf("XOR vs XNOR: eq=%v proven=%v", eq, proven)
	}
	// Same literal fast path.
	if eq, proven := LitsEquivalent(g, x1, x1, 0); !eq || !proven {
		t.Fatalf("identity fast path broken")
	}
}

func randomAIG(rng *rand.Rand, nIn, nOut, nAnd int) *aig.AIG {
	g := aig.New()
	lits := make([]aig.Lit, 0, nIn+nAnd)
	for i := 0; i < nIn; i++ {
		lits = append(lits, g.AddInput("i"))
	}
	for len(lits) < nIn+nAnd {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		l := g.And(a, b)
		if g.IsAnd(l.Node()) {
			lits = append(lits, l)
		}
	}
	for i := 0; i < nOut; i++ {
		g.AddOutput(lits[len(lits)-1-i].NotIf(rng.Intn(2) == 1), "o")
	}
	return g
}

// Property: SAT equivalence agrees with exhaustive simulation on small
// random AIG pairs (original vs Cleanup copy, and original vs mutated).
func TestEquivalentAgreesWithExhaustiveSim(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAIG(rng, 5, 2, 25)
		// Equivalent copy.
		if ok, _, _ := Equivalent(g, g.Cleanup()); !ok {
			return false
		}
		// Mutated copy: flip one output polarity. A constant-false output
		// flipped to true is still a real difference.
		h := g.Clone()
		h.SetOutput(0, h.Output(0).Not())
		ok, cex, _ := Equivalent(g, h)
		if ok {
			return false
		}
		return g.EvalSingle(cex)[0] != h.EvalSingle(cex)[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEquivalenceC880(b *testing.B) {
	g := circuits.MustGenerate("c880")
	h := g.Cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _, _ := Equivalent(g, h); !ok {
			b.Fatal("not equivalent")
		}
	}
}
