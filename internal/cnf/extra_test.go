package cnf

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/sat"
)

// TestLitsEquivalentBudgetUnknown forces the conflict budget low enough
// that the solver gives up, exercising the (equal=false, proven=false)
// path resubstitution must treat as "don't merge".
func TestLitsEquivalentBudgetUnknown(t *testing.T) {
	// A miter over a multiplier slice is hard enough to exceed one
	// conflict.
	g := circuits.MustGenerate("c6288")
	var roots []aig.Lit
	for i := 0; i < g.NumOutputs(); i++ {
		roots = append(roots, g.Output(i))
	}
	// Compare two unrelated high outputs with a 1-conflict budget.
	eq, proven := LitsEquivalent(g, roots[20], roots[25], 1)
	if proven && eq {
		t.Fatal("unrelated multiplier outputs proven equal")
	}
	// Either refuted quickly (proven, !eq) or budget exhausted (!proven):
	// both are acceptable, but a claim of equality is not.
}

func TestEncodeCoversOutputsThatAreInputs(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	g.AddOutput(a, "pass")
	g.AddOutput(a.Not(), "inv")
	s := sat.New(0)
	e := Encode(g, s)
	la := e.LitOf(g.Output(0))
	lb := e.LitOf(g.Output(1))
	// pass and inv must be complementary.
	s.AddClause(la)
	s.AddClause(lb)
	if s.Solve() != sat.Unsat {
		t.Fatal("input-driven outputs not complementary in encoding")
	}
}

func TestEquivalentUnderKeyWrongSizes(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 4, rand.New(rand.NewSource(9)))
	ok, cex, err := EquivalentUnderKey(g, locked, lock.Key{true})
	if ok {
		t.Fatal("short key accepted")
	}
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("short key: err = %v, want ErrMismatch", err)
	}
	if cex != nil {
		t.Fatal("mismatch must not fabricate a counterexample")
	}
}
