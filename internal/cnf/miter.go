package cnf

import (
	"context"
	"fmt"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/sat"
)

// KeyMiter is the incremental SAT instance at the heart of the
// oracle-guided SAT attack (Subramanyan et al.): two copies of a locked
// netlist share their primary inputs but carry independent key vectors
// KA and KB, and a switchable difference constraint asserts that the two
// copies disagree on at least one output. While the difference constraint
// is active, a Sat answer yields a distinguishing input pattern (DIP) —
// an input on which some pair of keys disagrees. After each DIP is
// resolved against the oracle, AddIOConstraint pins both key vectors to
// agree with the observed input/output behavior; when the miter finally
// goes Unsat no two surviving keys disagree anywhere, so any surviving
// key (SolveKey) is functionally correct.
//
// The instance is incremental: one solver accumulates learnt clauses
// across the whole DIP loop, and the difference constraint is guarded by
// an activation literal passed as an assumption, so SolveKey can ignore
// it without rebuilding anything.
type KeyMiter struct {
	// S is the underlying solver. Callers may set budgets (MaxConflicts,
	// MaxPropagations) or a Stop hook on it; any Solve the miter performs
	// then returns sat.Unknown on exhaustion.
	S *sat.Solver

	locked   *aig.AIG
	piVars   []sat.Lit // shared primary inputs, in PI (non-key) order
	keyA     []sat.Lit // key vector of copy A, in key-input order
	keyB     []sat.Lit
	act      sat.Lit // activation literal of the difference constraint
	falseLit sat.Lit // a literal forced false at level 0 (shared constant)

	// inMap[i] = -1 for key inputs, else the PI position of input i.
	inMap []int

	haveModel bool // last Solve on S answered Sat
}

// NewKeyMiter builds the two-copy key miter for a locked netlist.
func NewKeyMiter(locked *aig.AIG) (*KeyMiter, error) {
	kIdx := locked.KeyInputIndices()
	if len(kIdx) == 0 {
		return nil, fmt.Errorf("%w: netlist has no key inputs", ErrMismatch)
	}
	if locked.NumOutputs() == 0 {
		return nil, fmt.Errorf("%w: netlist has no outputs", ErrMismatch)
	}
	s := sat.New(0)
	m := &KeyMiter{S: s, locked: locked}

	fv := s.NewVar()
	m.falseLit = sat.MkLit(fv, false)
	s.AddClause(m.falseLit.Not())

	m.inMap = make([]int, locked.NumInputs())
	for i := range m.inMap {
		if locked.InputIsKey(i) {
			m.inMap[i] = -1
		} else {
			m.inMap[i] = len(m.piVars)
			m.piVars = append(m.piVars, sat.MkLit(s.NewVar(), false))
		}
	}
	m.keyA = make([]sat.Lit, len(kIdx))
	m.keyB = make([]sat.Lit, len(kIdx))
	for j := range kIdx {
		m.keyA[j] = sat.MkLit(s.NewVar(), false)
		m.keyB[j] = sat.MkLit(s.NewVar(), false)
	}

	keyPos := make(map[int]int, len(kIdx))
	for j, ki := range kIdx {
		keyPos[ki] = j
	}
	outA := m.encodeCopy(func(i int) sat.Lit {
		if p := m.inMap[i]; p >= 0 {
			return m.piVars[p]
		}
		return m.keyA[keyPos[i]]
	})
	outB := m.encodeCopy(func(i int) sat.Lit {
		if p := m.inMap[i]; p >= 0 {
			return m.piVars[p]
		}
		return m.keyB[keyPos[i]]
	})

	// Switchable difference: act -> OR_i (outA_i xor outB_i).
	m.act = sat.MkLit(s.NewVar(), false)
	diffs := make([]sat.Lit, 0, len(outA)+1)
	for i := range outA {
		d := sat.MkLit(s.NewVar(), false)
		s.AddClause(d.Not(), outA[i], outB[i])
		s.AddClause(d.Not(), outA[i].Not(), outB[i].Not())
		diffs = append(diffs, d)
	}
	diffs = append(diffs, m.act.Not())
	s.AddClause(diffs...)
	return m, nil
}

// encodeCopy Tseitin-encodes one copy of the locked netlist onto the
// miter's solver, mapping each input through leaf, and returns the
// output literals.
func (m *KeyMiter) encodeCopy(leaf func(i int) sat.Lit) []sat.Lit {
	g := m.locked
	s := m.S
	nv := make([]sat.Lit, g.NumNodes())
	unset := sat.MkLit(1<<30, false)
	for i := range nv {
		nv[i] = unset
	}
	nv[0] = m.falseLit
	for i := 0; i < g.NumInputs(); i++ {
		nv[g.Input(i).Node()] = leaf(i)
	}
	litOf := func(l aig.Lit) sat.Lit {
		base := nv[l.Node()]
		if l.Neg() {
			return base.Not()
		}
		return base
	}
	var walk func(id int)
	walk = func(id int) {
		if nv[id] != unset {
			return
		}
		f0, f1 := g.Fanins(id)
		walk(f0.Node())
		walk(f1.Node())
		o := sat.MkLit(s.NewVar(), false)
		nv[id] = o
		a, b := litOf(f0), litOf(f1)
		s.AddClause(o.Not(), a)
		s.AddClause(o.Not(), b)
		s.AddClause(o, a.Not(), b.Not())
	}
	outs := make([]sat.Lit, g.NumOutputs())
	for i := 0; i < g.NumOutputs(); i++ {
		walk(g.Output(i).Node())
		outs[i] = litOf(g.Output(i))
	}
	return outs
}

// NumKeys returns the key width of the miter.
func (m *KeyMiter) NumKeys() int { return len(m.keyA) }

// NumPIs returns the number of shared primary inputs.
func (m *KeyMiter) NumPIs() int { return len(m.piVars) }

// SolveDIP searches for a distinguishing input pattern. Sat means DIP()
// and KeyA()/KeyB() are valid; Unsat means no key pair disagrees under
// the accumulated I/O constraints (the attack has converged); Unknown
// means a budget or Stop hook on S fired.
func (m *KeyMiter) SolveDIP() sat.Status {
	st := m.S.Solve(m.act)
	m.haveModel = st == sat.Sat
	return st
}

// SolveKey solves the constraint set with the difference constraint
// inactive and returns a key consistent with every recorded I/O pair.
// After SolveDIP reports Unsat, this key is functionally correct. Unsat
// here means the oracle constraints themselves are contradictory (which
// indicates a bug or a non-deterministic oracle); Unknown means budget
// exhaustion.
func (m *KeyMiter) SolveKey() ([]bool, sat.Status) {
	st := m.S.Solve()
	m.haveModel = st == sat.Sat
	if st != sat.Sat {
		return nil, st
	}
	return m.KeyA(), st
}

// DIP returns the primary-input assignment of the last Sat answer, in
// PI (non-key input) order.
func (m *KeyMiter) DIP() []bool {
	m.mustModel()
	in := make([]bool, len(m.piVars))
	for i, l := range m.piVars {
		in[i] = m.S.ValueOf(l.Var())
	}
	return in
}

// KeyA returns key vector A of the last Sat answer — the candidate key
// the attack tracks as its best-so-far guess.
func (m *KeyMiter) KeyA() []bool {
	m.mustModel()
	k := make([]bool, len(m.keyA))
	for i, l := range m.keyA {
		k[i] = m.S.ValueOf(l.Var())
	}
	return k
}

// KeyB returns key vector B of the last Sat answer.
func (m *KeyMiter) KeyB() []bool {
	m.mustModel()
	k := make([]bool, len(m.keyB))
	for i, l := range m.keyB {
		k[i] = m.S.ValueOf(l.Var())
	}
	return k
}

func (m *KeyMiter) mustModel() {
	if !m.haveModel {
		panic("cnf: KeyMiter model read without a Sat answer")
	}
}

// AddIOConstraint pins both key vectors to reproduce the oracle's
// observed behavior out = C(in, K): the locked netlist is encoded twice
// more (once per key vector) with its primary inputs fixed to the
// constant pattern in, and each copy's outputs are constrained to out.
// in is in PI order, out in output order.
func (m *KeyMiter) AddIOConstraint(in, out []bool) error {
	if len(in) != len(m.piVars) {
		return fmt.Errorf("%w: DIP width %d vs %d primary inputs", ErrMismatch, len(in), len(m.piVars))
	}
	if len(out) != m.locked.NumOutputs() {
		return fmt.Errorf("%w: response width %d vs %d outputs", ErrMismatch, len(out), m.locked.NumOutputs())
	}
	constLit := func(v bool) sat.Lit {
		if v {
			return m.falseLit.Not()
		}
		return m.falseLit
	}
	kIdx := m.locked.KeyInputIndices()
	keyPos := make(map[int]int, len(kIdx))
	for j, ki := range kIdx {
		keyPos[ki] = j
	}
	for _, key := range [][]sat.Lit{m.keyA, m.keyB} {
		outs := m.encodeCopy(func(i int) sat.Lit {
			if p := m.inMap[i]; p >= 0 {
				return constLit(in[p])
			}
			return key[keyPos[i]]
		})
		for o, l := range outs {
			if out[o] {
				m.S.AddClause(l)
			} else {
				m.S.AddClause(l.Not())
			}
		}
	}
	return nil
}

// HookCtx makes every subsequent Solve on the miter's solver honor ctx,
// surfacing cancellation as sat.Unknown.
func (m *KeyMiter) HookCtx(ctx context.Context) { hookCtx(m.S, ctx) }
