package cnf

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/sat"
)

func TestEquivalentMismatchError(t *testing.T) {
	g1 := aig.New()
	a := g1.AddInput("a")
	g1.AddOutput(a, "o")
	g2 := aig.New()
	b := g2.AddInput("a")
	c := g2.AddInput("b")
	g2.AddOutput(g2.And(b, c), "o")
	ok, cex, err := Equivalent(g1, g2)
	if ok || cex != nil {
		t.Fatalf("mismatched interfaces: ok=%v cex=%v", ok, cex)
	}
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
}

func TestEquivalentCtxCanceled(t *testing.T) {
	g := circuits.MustGenerate("c6288")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ok, _, err := EquivalentCtx(ctx, g, g.Clone())
	if ok {
		t.Fatal("canceled check claimed equivalence")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEquivalentUnderKeyCtxCanceled(t *testing.T) {
	g := circuits.MustGenerate("c6288")
	locked, key := lock.Lock(g, 8, rand.New(rand.NewSource(3)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ok, _, err := EquivalentUnderKeyCtx(ctx, g, locked, key)
	if ok {
		t.Fatal("canceled check claimed equivalence")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestKeyMiterRequiresKeyInputs(t *testing.T) {
	g := circuits.MustGenerate("c432")
	if _, err := NewKeyMiter(g); !errors.Is(err, ErrMismatch) {
		t.Fatalf("unlocked netlist: err = %v, want ErrMismatch", err)
	}
}

// oracle answers queries by simulating the original circuit.
func oracle(g *aig.AIG) func([]bool) []bool {
	var sim aig.SimScratch
	return func(in []bool) []bool {
		word := make([]uint64, len(in))
		for i, b := range in {
			if b {
				word[i] = 1
			}
		}
		outs := g.SimulateInto(&sim, nil, word)
		res := make([]bool, len(outs))
		for i, w := range outs {
			res[i] = w&1 == 1
		}
		return res
	}
}

func TestKeyMiterDIPLoopRecoversKey(t *testing.T) {
	// The classic SAT-attack loop, hand-rolled over the miter: it must
	// terminate with a key that unlocks the circuit exactly.
	g := circuits.MustGenerate("c432")
	rng := rand.New(rand.NewSource(11))
	locked, key := lock.Lock(g, 16, rng)
	m, err := NewKeyMiter(locked)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumKeys() != len(key) || m.NumPIs() != g.NumInputs() {
		t.Fatalf("miter shape: keys=%d pis=%d", m.NumKeys(), m.NumPIs())
	}
	ask := oracle(g)
	dips := 0
	for {
		st := m.SolveDIP()
		if st == sat.Unsat {
			break
		}
		if st != sat.Sat {
			t.Fatalf("SolveDIP = %v", st)
		}
		dips++
		if dips > 10000 {
			t.Fatal("DIP loop diverged")
		}
		in := m.DIP()
		if err := m.AddIOConstraint(in, ask(in)); err != nil {
			t.Fatal(err)
		}
	}
	got, st := m.SolveKey()
	if st != sat.Sat {
		t.Fatalf("SolveKey = %v", st)
	}
	ok, cex, err := EquivalentUnderKey(g, locked, got)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("recovered key %v does not unlock (cex %v); truth %v, %d DIPs", got, cex, key, dips)
	}
	t.Logf("recovered functionally correct key in %d DIPs", dips)
}

func TestKeyMiterBudgetedUnknown(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 16, rand.New(rand.NewSource(5)))
	m, err := NewKeyMiter(locked)
	if err != nil {
		t.Fatal(err)
	}
	m.S.MaxPropagations = 10
	if st := m.SolveDIP(); st != sat.Unknown {
		t.Fatalf("budgeted SolveDIP = %v, want Unknown", st)
	}
}

func TestKeyMiterCtxCancel(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 16, rand.New(rand.NewSource(6)))
	m, err := NewKeyMiter(locked)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.HookCtx(ctx)
	m.S.PollEvery = 1
	if st := m.SolveDIP(); st != sat.Unknown {
		t.Fatalf("canceled SolveDIP = %v, want Unknown", st)
	}
}

func TestKeyMiterIOConstraintMismatch(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := lock.Lock(g, 2, rand.New(rand.NewSource(7)))
	m, err := NewKeyMiter(locked)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddIOConstraint([]bool{true}, make([]bool, g.NumOutputs())); !errors.Is(err, ErrMismatch) {
		t.Fatalf("short DIP: err = %v, want ErrMismatch", err)
	}
	if err := m.AddIOConstraint(make([]bool, m.NumPIs()), []bool{}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("short response: err = %v, want ErrMismatch", err)
	}
}
