package core

import (
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/lock"
)

// withScalarInference disables the fused batch seam for the duration of
// fn, restoring the production default afterwards. The batched identity
// suites run full searches both ways and require bit-identical
// trajectories.
func withScalarInference(fn func()) {
	scalarInference = true
	defer func() { scalarInference = false }()
	fn()
}

// TestSearchTrajectoryIdentityScalarVsBatched is the PR's headline
// determinism gate: a full SearchRecipe run over the omla, scope,
// redundancy ensemble must produce a bit-identical trajectory — every
// iteration's recipe, energy, and per-attack accuracies — whether the
// omla proxy scores candidates through the fused batch seam or the
// scalar per-key-gate loop, at any engine Parallelism.
func TestSearchTrajectoryIdentityScalarVsBatched(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 8, rand.New(rand.NewSource(53)))
	cfg := tinyConfig()
	cfg.EvalAttacks = []string{"omla", "scope", "redundancy"}
	// Shorter recipes halve every candidate synthesis (SCOPE alone runs
	// two cofactor syntheses per key bit per candidate); every identity
	// assertion below is iteration- and recipe-length-agnostic.
	cfg.RecipeLen = 5
	proxy := trainProxyT(t, locked, ModelResyn2, cfg)

	var scalar SearchResult
	withScalarInference(func() {
		scalar = searchT(t, locked, key, proxy, cfg)
	})

	sweep := []int{1, 4}
	if testing.Short() {
		sweep = sweep[1:]
	}
	for _, jobs := range sweep {
		cfg.Parallelism = jobs
		batched := searchT(t, locked, key, proxy, cfg)
		if !batched.Recipe.Equal(scalar.Recipe) {
			t.Fatalf("jobs=%d: batched and scalar searches found different recipes:\n  %s\n  %s",
				jobs, batched.Recipe, scalar.Recipe)
		}
		if batched.Accuracy != scalar.Accuracy {
			t.Fatalf("jobs=%d: accuracy differs: %v vs %v", jobs, batched.Accuracy, scalar.Accuracy)
		}
		for name, acc := range scalar.Accuracies {
			if batched.Accuracies[name] != acc {
				t.Fatalf("jobs=%d: %s accuracy differs: %v vs %v", jobs, name, batched.Accuracies[name], acc)
			}
		}
		if len(batched.Trace) != len(scalar.Trace) {
			t.Fatalf("jobs=%d: trace lengths differ: %d vs %d", jobs, len(batched.Trace), len(scalar.Trace))
		}
		for i := range scalar.Trace {
			if batched.Trace[i].Accuracy != scalar.Trace[i].Accuracy ||
				!batched.Trace[i].Recipe.Equal(scalar.Trace[i].Recipe) {
				t.Fatalf("jobs=%d: trajectory diverges at iteration %d", jobs, i)
			}
		}
	}
}

// TestAdversarialProxyIdentityScalarVsBatched covers the other fused
// path: Algorithm 1's Eq. 3 adversarial searches score candidates by
// batched loss. Training an adversarial proxy must land on exactly the
// same model either way — checked by comparing full key predictions and
// accuracy on the locked netlist.
func TestAdversarialProxyIdentityScalarVsBatched(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 8, rand.New(rand.NewSource(59)))
	cfg := tinyConfig()

	batched := trainProxyT(t, locked, ModelAdversarial, cfg)
	var scalar *Proxy
	withScalarInference(func() {
		scalar = trainProxyT(t, locked, ModelAdversarial, cfg)
	})

	bk := batched.Attack.PredictKey(locked)
	sk := scalar.Attack.PredictKey(locked)
	for i := range sk {
		if bk[i] != sk[i] {
			t.Fatalf("adversarial proxies diverged: key bit %d differs", i)
		}
	}
	if ba, sa := batched.Attack.Accuracy(locked, key), scalar.Attack.Accuracy(locked, key); ba != sa {
		t.Fatalf("adversarial proxy accuracy differs: %v vs %v", ba, sa)
	}
}
