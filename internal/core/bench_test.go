package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/synth"
)

// BenchmarkSearchRecipe measures the Eq. 1 recipe search — the hottest
// path of the framework — at several engine worker counts on an ISCAS-85
// benchmark. The search trajectory is identical across worker counts
// (asserted by TestSearchRecipeJobsInvariant), so the sub-benchmarks
// differ only in wall-clock: on an N-core machine jobs=4 should beat
// jobs=1 by well over 2x, since each SA iteration evaluates
// SAProposals=4 candidate recipes that are independent of one another.
//
//	go test -run=^$ -bench=BenchmarkSearchRecipe ./internal/core
func BenchmarkSearchRecipe(b *testing.B) {
	g := circuits.MustGenerate("c880")
	locked, key := lock.Lock(g, 32, rand.New(rand.NewSource(1)))
	cfg := DefaultConfig()
	cfg.Attack.Rounds = 2
	cfg.Attack.Epochs = 4
	cfg.SA.Iterations = 12
	cfg.SAProposals = 4
	proxy, err := TrainProxyCtx(context.Background(), locked, ModelResyn2, synth.Resyn2(), cfg)
	if err != nil {
		b.Fatal(err)
	}

	var ref synth.Recipe
	for _, jobs := range []int{1, 2, 4} {
		cfg.Parallelism = jobs
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := SearchRecipeCtx(context.Background(), locked, key, proxy, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if ref == nil {
					ref = res.Recipe
				} else if !res.Recipe.Equal(ref) {
					b.Fatalf("jobs=%d diverged from jobs=1 result", jobs)
				}
			}
		})
	}
}

// BenchmarkSearchObjective compares the cost of the paper's single-proxy
// Eq. 1 objective against ensemble objectives that additionally run the
// registered SCOPE (and redundancy) attacks on every candidate netlist —
// the BENCH_pr4.json data point. The ensemble multiplies per-candidate
// work (SCOPE synthesizes two cofactors per key bit), which is exactly
// the cost the memoizing concurrent engine amortizes across workers.
//
//	go test -run=^$ -bench=BenchmarkSearchObjective ./internal/core
func BenchmarkSearchObjective(b *testing.B) {
	g := circuits.MustGenerate("c432")
	keyBits := 16
	cfg := DefaultConfig()
	cfg.Attack.Rounds = 2
	cfg.Attack.Epochs = 4
	cfg.SA.Iterations = 8
	cfg.SAProposals = 2
	if testing.Short() {
		keyBits = 8
		cfg.SA.Iterations = 5
	}
	locked, key := lock.Lock(g, keyBits, rand.New(rand.NewSource(1)))
	proxy, err := TrainProxyCtx(context.Background(), locked, ModelResyn2, synth.Resyn2(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		attacks []string
	}{
		{"attacks=omla", nil},
		{"attacks=omla,scope", []string{"omla", "scope"}},
		{"attacks=omla,scope,redundancy", []string{"omla", "scope", "redundancy"}},
	} {
		cfg.EvalAttacks = tc.attacks
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := SearchRecipeCtx(context.Background(), locked, key, proxy, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Accuracy*100, "headline-acc-pct")
			}
		})
	}
}

// BenchmarkEnsembleScoringScalarVsBatched runs the identical Eq. 1
// ensemble search (omla,scope,redundancy on every candidate) with the
// omla proxy scored through the scalar per-key-gate loop versus the
// fused batch pass of this PR — the BENCH_pr10.json per-step ensemble
// scoring rows. Trajectories are bit-identical either way (gated by
// TestSearchTrajectoryIdentityScalarVsBatched), so the rows differ only
// in cost.
//
//	go test -run=^$ -bench=BenchmarkEnsembleScoringScalarVsBatched -benchmem ./internal/core
func BenchmarkEnsembleScoringScalarVsBatched(b *testing.B) {
	g := circuits.MustGenerate("c432")
	cfg := DefaultConfig()
	cfg.Attack.Rounds = 2
	cfg.Attack.Epochs = 4
	cfg.SA.Iterations = 8
	cfg.SAProposals = 2
	cfg.EvalAttacks = []string{"omla", "scope", "redundancy"}
	locked, key := lock.Lock(g, 16, rand.New(rand.NewSource(1)))
	proxy, err := TrainProxyCtx(context.Background(), locked, ModelResyn2, synth.Resyn2(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, scalar := range []bool{true, false} {
		name := "inference=batched"
		if scalar {
			name = "inference=scalar"
		}
		b.Run(name, func(b *testing.B) {
			scalarInference = scalar
			defer func() { scalarInference = false }()
			for i := 0; i < b.N; i++ {
				if _, err := SearchRecipeCtx(context.Background(), locked, key, proxy, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
