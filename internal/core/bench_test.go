package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/synth"
)

// BenchmarkSearchRecipe measures the Eq. 1 recipe search — the hottest
// path of the framework — at several engine worker counts on an ISCAS-85
// benchmark. The search trajectory is identical across worker counts
// (asserted by TestSearchRecipeJobsInvariant), so the sub-benchmarks
// differ only in wall-clock: on an N-core machine jobs=4 should beat
// jobs=1 by well over 2x, since each SA iteration evaluates
// SAProposals=4 candidate recipes that are independent of one another.
//
//	go test -run=^$ -bench=BenchmarkSearchRecipe ./internal/core
func BenchmarkSearchRecipe(b *testing.B) {
	g := circuits.MustGenerate("c880")
	locked, key := lock.Lock(g, 32, rand.New(rand.NewSource(1)))
	cfg := DefaultConfig()
	cfg.Attack.Rounds = 2
	cfg.Attack.Epochs = 4
	cfg.SA.Iterations = 12
	cfg.SAProposals = 4
	proxy := TrainProxy(locked, ModelResyn2, synth.Resyn2(), cfg)

	var ref synth.Recipe
	for _, jobs := range []int{1, 2, 4} {
		cfg.Parallelism = jobs
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := SearchRecipe(locked, key, proxy, cfg)
				if ref == nil {
					ref = res.Recipe
				} else if !res.Recipe.Equal(ref) {
					b.Fatalf("jobs=%d diverged from jobs=1 result", jobs)
				}
			}
		})
	}
}
