// Package core implements the ALMOST framework — the paper's primary
// contribution: security-aware synthesis-recipe generation that makes
// RLL-locked netlists resilient to oracle-less ML attacks.
//
// It combines three pieces:
//
//  1. Proxy attacker models (§III-B / Table I): M^resyn2 (trained on the
//     baseline recipe), M^random (trained on random recipes), and the
//     adversarially trained M* of Algorithm 1, which interleaves GIN
//     training with simulated-annealing searches for recipes whose
//     localities the current model mispredicts (Eq. 3), augmenting the
//     training set with those adversarial samples (Eq. 6).
//  2. Security-aware SA recipe search (Eq. 1 / §III-C): black-box
//     simulated annealing over fixed-length recipes minimizing
//     |Acc − 0.5| as estimated by a proxy model.
//  3. The end-to-end secure-synthesis pipeline: lock with plain RLL,
//     train M*, search for S_ALMOST, and emit the hardened netlist.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/anneal"
	"github.com/nyu-secml/almost/internal/attack/omla"
	"github.com/nyu-secml/almost/internal/engine"
	"github.com/nyu-secml/almost/internal/gnn"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/subgraph"
	"github.com/nyu-secml/almost/internal/synth"
)

// ModelKind selects the proxy-attacker training regime (Table I).
type ModelKind int

// Proxy model variants.
const (
	ModelResyn2      ModelKind = iota // M^resyn2: defender-baseline recipe
	ModelRandom                       // M^random: fresh random recipe per round
	ModelAdversarial                  // M*: Algorithm 1 adversarial training
)

// String names the variant as in the paper.
func (k ModelKind) String() string {
	switch k {
	case ModelResyn2:
		return "M^resyn2"
	case ModelRandom:
		return "M^random"
	case ModelAdversarial:
		return "M*"
	}
	return fmt.Sprintf("ModelKind(%d)", int(k))
}

// Config collects every knob of the framework. The zero value is not
// usable — start from DefaultConfig or PaperConfig; Validate reports
// what is wrong with a hand-built configuration.
type Config struct {
	// Attack holds the shared GNN/extraction settings.
	Attack omla.Config
	// AdvPeriod is R in Algorithm 1: adversarial augmentation happens
	// every AdvPeriod epochs.
	AdvPeriod int
	// AdvGates is the number of relock gates (= samples) added per
	// augmentation (the paper adds 200).
	AdvGates int
	// AdvSAIters bounds the SA search for each adversarial recipe.
	AdvSAIters int
	// SA is the schedule for the Eq. 1 recipe search.
	SA anneal.Config
	// RecipeLen is L (the paper fixes L = 10).
	RecipeLen int
	// SAProposals is K, the number of neighbor recipes proposed and
	// evaluated per SA iteration by the concurrent evaluation engine.
	// K shapes the search trajectory (values <= 1 propose one neighbor);
	// Parallelism does not.
	SAProposals int
	// Parallelism is the evaluation worker count (the CLI's --jobs): how
	// many recipe candidates are synthesized and attacked concurrently.
	// <= 0 selects runtime.NumCPU(). Results are bit-for-bit identical
	// for any value; only wall-clock changes.
	Parallelism int
	Seed        int64
}

// DefaultConfig returns laptop-scale settings that preserve the paper's
// structure (Alg. 1 cadence, SA schedule shape, L = 10).
func DefaultConfig() Config {
	return Config{
		Attack:      omla.DefaultConfig(),
		AdvPeriod:   10,
		AdvGates:    40,
		AdvSAIters:  12,
		SA:          anneal.Config{Iterations: 40, InitTemp: 120, Acceptance: 1.8},
		RecipeLen:   synth.RecipeLength,
		SAProposals: 4,
		Parallelism: 0, // auto: runtime.NumCPU()
		Seed:        1,
	}
}

// PaperConfig returns the full-size settings reported in §IV-A: 1000
// initial samples, 350 epochs, augmentation of 200 samples every 50
// epochs, SA for 100 iterations with T0 = 120 and acceptance = 1.8.
func PaperConfig() Config {
	cfg := DefaultConfig()
	cfg.Attack.Rounds = 25 // 25 rounds × 40 gates = 1000 samples
	cfg.Attack.GatesPerRound = 40
	cfg.Attack.Epochs = 350
	cfg.AdvPeriod = 50
	cfg.AdvGates = 200
	cfg.AdvSAIters = 20
	cfg.SA = anneal.PaperConfig()
	return cfg
}

// Proxy is a trained accuracy evaluator: a proxy for running the real
// attack at every SA iteration (Fig. 2's "alternative flow").
type Proxy struct {
	Kind   ModelKind
	Attack *omla.Attack
}

// TrainProxy trains a proxy model of the given kind against the locked
// netlist. baseline is the defender's reference recipe (resyn2 in the
// paper), used by ModelResyn2.
//
// Deprecated: use TrainProxyCtx, which is cancellable, streams progress
// events, and returns errors instead of panicking.
func TrainProxy(locked *aig.AIG, kind ModelKind, baseline synth.Recipe, cfg Config) *Proxy {
	p, err := TrainProxyCtx(context.Background(), locked, kind, baseline, cfg)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return p
}

// epochFunc adapts proxy-training epochs to PhaseTrain events. samples
// reports the current training-set size, re-read every epoch because
// Algorithm 1 grows the set.
func (o *runOptions) epochFunc(samples func() int) omla.EpochFunc {
	if len(o.observers) == 0 {
		return nil
	}
	return func(epoch, epochs int) {
		o.emit(Event{Phase: PhaseTrain, Epoch: epoch, Epochs: epochs, Samples: samples()})
	}
}

// TrainProxyCtx trains a proxy model of the given kind against the
// locked netlist. The context is checked at every data-generation round
// and training epoch (and, for ModelAdversarial, every Eq. 3 SA
// iteration); on cancellation the partially trained proxy is returned
// alongside an error matching both ErrCanceled and ctx.Err(). Observers
// registered via WithObserver receive PhaseTrain events per epoch and,
// for ModelAdversarial, PhaseAdvSearch events per SA iteration.
func TrainProxyCtx(ctx context.Context, locked *aig.AIG, kind ModelKind,
	baseline synth.Recipe, cfg Config, opts ...Option) (*Proxy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ro := buildOptions(opts)
	switch kind {
	case ModelResyn2:
		atk, err := omla.TrainCtx(ctx, locked, baseline, cfg.Attack,
			ro.epochFunc(func() int { return cfg.Attack.Rounds * cfg.Attack.GatesPerRound }))
		if err != nil {
			return &Proxy{Kind: kind, Attack: atk}, canceled(err)
		}
		return &Proxy{Kind: kind, Attack: atk}, nil
	case ModelRandom:
		rng := rand.New(rand.NewSource(cfg.Seed + 101))
		ext := subgraph.Extractor{Hops: cfg.Attack.Hops}
		dataRng := rand.New(rand.NewSource(cfg.Attack.Seed))
		data, err := omla.GenerateDataCtx(ctx, locked, func(int) synth.Recipe {
			return synth.RandomRecipe(rng, cfg.RecipeLen)
		}, cfg.Attack.Rounds, cfg.Attack.GatesPerRound, ext, dataRng)
		if err != nil {
			return &Proxy{Kind: kind, Attack: &omla.Attack{Ext: ext}}, canceled(err)
		}
		atk, err := omla.TrainOnDataCtx(ctx, data, cfg.Attack,
			ro.epochFunc(func() int { return len(data) }))
		if err != nil {
			return &Proxy{Kind: kind, Attack: atk}, canceled(err)
		}
		return &Proxy{Kind: kind, Attack: atk}, nil
	case ModelAdversarial:
		atk, err := trainAdversarialCtx(ctx, locked, cfg, ro)
		if err != nil {
			return &Proxy{Kind: kind, Attack: atk}, err
		}
		return &Proxy{Kind: kind, Attack: atk}, nil
	}
	return nil, fmt.Errorf("%w: ModelKind(%d); valid kinds are ModelResyn2, ModelRandom, ModelAdversarial",
		ErrUnknownModel, int(kind))
}

// advProblem is the Eq. 3 search: find a recipe maximizing the model's
// loss on freshly relocked localities (gradient-free adversarial
// perturbation in recipe space). Like the Eq. 1 search it evaluates
// through a concurrent engine; model inference is read-only, so workers
// share the model while each re-synthesizes its own relocked copy.
type advProblem struct {
	eng *engine.Evaluator
}

func (p *advProblem) Energy(r synth.Recipe) float64 { return p.eng.Evaluate(r) }

func (p *advProblem) EnergyBatch(rs []synth.Recipe) []float64 {
	return p.eng.EvaluateBatch(rs)
}

func (p *advProblem) EnergyBatchCtx(ctx context.Context, rs []synth.Recipe) ([]float64, error) {
	return p.eng.EvaluateBatchCtx(ctx, rs)
}

func (p *advProblem) Neighbor(r synth.Recipe, rng *rand.Rand) synth.Recipe {
	return synth.MutateRecipe(rng, r)
}

// advEnergy builds the engine EvalFunc for one augmentation round: score
// a recipe by the model's (negated) loss on the re-synthesized localities
// of the relocked netlist. maximize loss = minimize negative loss.
func advEnergy(model *gnn.Model, keyOrder []int, bits []bool, ext subgraph.Extractor) engine.EvalFunc {
	return func(g *aig.AIG, r synth.Recipe) float64 {
		resynth := r.Apply(g)
		kisAll := resynth.KeyInputIndices()
		kis := make([]int, len(keyOrder))
		for i, ko := range keyOrder {
			kis[i] = kisAll[ko]
		}
		gs := ext.Labeled(resynth, kis, bits)
		return -model.Loss(gs)
	}
}

// trainAdversarialCtx implements Algorithm 1. The context is checked at
// every training epoch and every SA iteration of the Eq. 3 searches; on
// cancellation the model trained so far is returned alongside an error
// matching both ErrCanceled and ctx.Err(). ro streams PhaseTrain and
// PhaseAdvSearch events.
func trainAdversarialCtx(ctx context.Context, locked *aig.AIG, cfg Config,
	ro *runOptions) (*omla.Attack, error) {
	acfg := cfg.Attack
	rng := rand.New(rand.NewSource(cfg.Seed + 211))
	recipeRng := rand.New(rand.NewSource(cfg.Seed + 223))
	ext := subgraph.Extractor{Hops: acfg.Hops}

	// Line 1-2: initial data from random-recipe relock/resynthesize.
	data, err := omla.GenerateDataCtx(ctx, locked, func(int) synth.Recipe {
		return synth.RandomRecipe(recipeRng, cfg.RecipeLen)
	}, acfg.Rounds, acfg.GatesPerRound, ext, rng)
	if err != nil {
		return &omla.Attack{Ext: ext}, canceled(err)
	}

	gcfg := gnn.Config{
		InDim:     subgraph.FeatureDim,
		Hidden:    acfg.Hidden,
		Layers:    acfg.Layers,
		LR:        acfg.LR,
		BatchSize: 32,
	}
	model := gnn.NewModel(gcfg, rand.New(rand.NewSource(cfg.Seed+227))) // line 3: He init
	trainRng := rand.New(rand.NewSource(cfg.Seed + 229))
	atk := &omla.Attack{Model: model, Ext: ext}

	var advObserve anneal.Observer[synth.Recipe]
	if len(ro.observers) > 0 {
		advObserve = func(tp anneal.TracePoint[synth.Recipe]) {
			ro.emit(Event{Phase: PhaseAdvSearch, Iteration: tp.Iteration,
				Iterations: cfg.AdvSAIters, Energy: tp.Energy, BestEnergy: tp.Best,
				Recipe: tp.State, Best: tp.BestState})
		}
	}

	for epoch := 0; epoch < acfg.Epochs; epoch++ { // line 4
		if err := ctx.Err(); err != nil {
			return atk, canceled(err)
		}
		if cfg.AdvPeriod > 0 && epoch > 0 && epoch%cfg.AdvPeriod == 0 { // line 5
			// Line 6: SA for an adversarial recipe s*. Training pauses while
			// the engine workers run read-only inference on the model.
			relocked, keyOrder, bits := lock.Relock(locked, cfg.AdvGates, rng)
			init := synth.RandomRecipe(recipeRng, cfg.RecipeLen)
			res, err := func() (anneal.Result[synth.Recipe], error) {
				eng := engine.New(relocked, cfg.Parallelism, advEnergy(model, keyOrder, bits, ext))
				defer eng.Close()
				saCfg := anneal.Config{Iterations: cfg.AdvSAIters, InitTemp: cfg.SA.InitTemp,
					Acceptance: cfg.SA.Acceptance}
				return anneal.RunParallelCtx[synth.Recipe](ctx, &advProblem{eng: eng}, init, saCfg,
					anneal.ParallelConfig{Proposals: cfg.SAProposals, Seed: cfg.Seed + int64(epoch)},
					advObserve)
			}()
			if err != nil {
				return atk, canceled(err)
			}
			// Line 7: augment D_training with X^{s*}.
			resynth := res.Best.Apply(relocked)
			kisAll := resynth.KeyInputIndices()
			kis := make([]int, len(keyOrder))
			for i, ko := range keyOrder {
				kis[i] = kisAll[ko]
			}
			data = append(data, ext.Labeled(resynth, kis, bits)...)
		}
		model.TrainEpoch(data, trainRng) // lines 8-9
		if len(ro.observers) > 0 {
			ro.emit(Event{Phase: PhaseTrain, Epoch: epoch, Epochs: acfg.Epochs, Samples: len(data)})
		}
	}
	return atk, nil
}

// EstimateAccuracy predicts the attack accuracy obtained on the locked
// netlist after synthesizing it with recipe r — the quantity Eq. 1
// minimizes toward 0.5. The defender knows the true key, so accuracy is
// measured exactly against it.
func (p *Proxy) EstimateAccuracy(locked *aig.AIG, r synth.Recipe, truth lock.Key) float64 {
	return p.Attack.Accuracy(r.Apply(locked), truth)
}

// searchProblem is the Eq. 1 objective |Acc − 0.5|, evaluated (and
// memoized) by a concurrent engine.Evaluator whose workers each score
// synthesize → proxy attack on a private copy of the locked netlist.
type searchProblem struct {
	eng *engine.Evaluator
}

func (p *searchProblem) accuracy(r synth.Recipe) float64 {
	return p.eng.Evaluate(r)
}

func (p *searchProblem) Energy(r synth.Recipe) float64 {
	return math.Abs(p.eng.Evaluate(r) - 0.5)
}

func (p *searchProblem) EnergyBatch(rs []synth.Recipe) []float64 {
	accs := p.eng.EvaluateBatch(rs)
	for i, a := range accs {
		accs[i] = math.Abs(a - 0.5)
	}
	return accs
}

func (p *searchProblem) EnergyBatchCtx(ctx context.Context, rs []synth.Recipe) ([]float64, error) {
	accs, err := p.eng.EvaluateBatchCtx(ctx, rs)
	if err != nil {
		return nil, err
	}
	for i, a := range accs {
		accs[i] = math.Abs(a - 0.5)
	}
	return accs, nil
}

func (p *searchProblem) Neighbor(r synth.Recipe, rng *rand.Rand) synth.Recipe {
	return synth.MutateRecipe(rng, r)
}

// SearchTracePoint records the accuracy trajectory of the recipe search —
// the curves of Fig. 4.
type SearchTracePoint struct {
	Iteration int
	Accuracy  float64
	Recipe    synth.Recipe
}

// SearchResult is the outcome of the Eq. 1 search.
type SearchResult struct {
	Recipe   synth.Recipe // S_ALMOST
	Accuracy float64      // proxy-estimated accuracy of Recipe
	Trace    []SearchTracePoint
}

// SearchRecipe runs the security-aware SA recipe generation (Eq. 1) using
// the proxy as the accuracy evaluator. When the budget ends without
// reaching ~50%, the best recipe found is returned (as the paper does for
// c2670, c5315, c7552).
//
// Deprecated: use SearchRecipeCtx, which is cancellable, streams the
// Fig. 4 trace live, and returns errors instead of panicking.
func SearchRecipe(locked *aig.AIG, truth lock.Key, proxy *Proxy, cfg Config) SearchResult {
	res, err := SearchRecipeCtx(context.Background(), locked, truth, proxy, cfg)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return res
}

// SearchRecipeCtx runs the security-aware SA recipe generation (Eq. 1)
// using the proxy as the accuracy evaluator.
//
// Evaluation runs on the concurrent engine: every SA iteration proposes
// cfg.SAProposals neighbors, scored across cfg.Parallelism workers with
// memoization, and the trajectory is identical for any worker count.
//
// The context is checked at every SA iteration and inside every engine
// batch; on cancellation the best-so-far SearchResult (well-formed, with
// the trace recorded up to the cancellation point) is returned alongside
// an error matching both ErrCanceled and ctx.Err(). Observers receive a
// PhaseSearch event per iteration — the Fig. 4 trace, live.
func SearchRecipeCtx(ctx context.Context, locked *aig.AIG, truth lock.Key,
	proxy *Proxy, cfg Config, opts ...Option) (SearchResult, error) {
	if err := cfg.Validate(); err != nil {
		return SearchResult{}, err
	}
	ro := buildOptions(opts)
	eng := engine.New(locked, cfg.Parallelism, func(g *aig.AIG, r synth.Recipe) float64 {
		return proxy.EstimateAccuracy(g, r, truth)
	})
	defer eng.Close()
	prob := &searchProblem{eng: eng}
	rng := rand.New(rand.NewSource(cfg.Seed + 307))
	init := synth.RandomRecipe(rng, cfg.RecipeLen)

	var observe anneal.Observer[synth.Recipe]
	if len(ro.observers) > 0 {
		observe = func(tp anneal.TracePoint[synth.Recipe]) {
			// The state was evaluated by this iteration's batch, so the
			// accuracy lookup is a cache hit.
			ro.emit(Event{Phase: PhaseSearch, Iteration: tp.Iteration,
				Iterations: cfg.SA.Iterations, Energy: tp.Energy, BestEnergy: tp.Best,
				Accuracy: prob.accuracy(tp.State), Recipe: tp.State, Best: tp.BestState})
		}
	}

	res, runErr := anneal.RunParallelCtx[synth.Recipe](ctx, prob, init, cfg.SA,
		anneal.ParallelConfig{Proposals: cfg.SAProposals, Seed: cfg.Seed + 311}, observe)
	out := SearchResult{Recipe: res.Best}
	for _, tp := range res.Trace {
		out.Trace = append(out.Trace, SearchTracePoint{
			Iteration: tp.Iteration,
			Accuracy:  prob.accuracy(tp.State),
			Recipe:    tp.State,
		})
	}
	if runErr != nil {
		// Best-so-far accuracy: read the cache rather than forcing a
		// fresh evaluation after cancellation. A miss only happens when
		// the run was canceled before the initial state was scored.
		if acc, ok := eng.Cached(res.Best); ok {
			out.Accuracy = acc
		} else {
			out.Accuracy = math.NaN()
		}
		return out, canceled(runErr)
	}
	out.Accuracy = prob.accuracy(res.Best)
	return out, nil
}

// Hardened is the output of the end-to-end pipeline.
type Hardened struct {
	Locked  *aig.AIG     // RLL-locked netlist (pre-synthesis)
	Netlist *aig.AIG     // S_ALMOST-synthesized locked netlist
	Key     lock.Key     // the correct key
	Recipe  synth.Recipe // S_ALMOST
	Search  SearchResult
	Proxy   *Proxy
}

// SecureSynthesis runs the full ALMOST flow on an unlocked design:
// RLL-lock with keySize bits, train the adversarial proxy M*, search for
// S_ALMOST, and synthesize the final netlist with it.
//
// Deprecated: use SecureSynthesisCtx, which is cancellable, streams
// progress events, and returns errors instead of panicking.
func SecureSynthesis(design *aig.AIG, keySize int, cfg Config) *Hardened {
	h, err := SecureSynthesisCtx(context.Background(), design, keySize, cfg)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return h
}

// SecureSynthesisCtx runs the full ALMOST flow on an unlocked design:
// RLL-lock with keySize bits, train the adversarial proxy M*, search for
// S_ALMOST, and synthesize the final netlist with it.
//
// The context is threaded through every stage (training epochs, Eq. 3
// searches, Eq. 1 search, engine batches). On cancellation the returned
// *Hardened is non-nil and holds everything completed so far — always
// Locked and Key, plus the partially trained Proxy, the best-so-far
// Search, and (when a best recipe exists) the Netlist synthesized with
// it — alongside an error matching both ErrCanceled and ctx.Err().
// Only a Config validation failure returns a nil *Hardened.
func SecureSynthesisCtx(ctx context.Context, design *aig.AIG, keySize int,
	cfg Config, opts ...Option) (*Hardened, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ro := buildOptions(opts)
	rng := rand.New(rand.NewSource(cfg.Seed))
	ro.emit(Event{Phase: PhaseLock})
	locked, key := lock.Lock(design, keySize, rng)
	h := &Hardened{Locked: locked, Key: key}

	proxy, err := TrainProxyCtx(ctx, locked, ModelAdversarial, synth.Resyn2(), cfg, opts...)
	h.Proxy = proxy
	if err != nil {
		return h, err
	}
	search, err := SearchRecipeCtx(ctx, locked, key, proxy, cfg, opts...)
	h.Search = search
	h.Recipe = search.Recipe
	if err != nil {
		if len(search.Recipe) > 0 {
			h.Netlist = search.Recipe.Apply(locked)
		}
		return h, err
	}
	ro.emit(Event{Phase: PhaseSynth, Recipe: search.Recipe, Best: search.Recipe,
		Accuracy: search.Accuracy})
	h.Netlist = search.Recipe.Apply(locked)
	return h, nil
}
