// Package core implements the ALMOST framework — the paper's primary
// contribution: security-aware synthesis-recipe generation that makes
// RLL-locked netlists resilient to oracle-less ML attacks.
//
// It combines three pieces:
//
//  1. Proxy attacker models (§III-B / Table I): M^resyn2 (trained on the
//     baseline recipe), M^random (trained on random recipes), and the
//     adversarially trained M* of Algorithm 1, which interleaves GIN
//     training with simulated-annealing searches for recipes whose
//     localities the current model mispredicts (Eq. 3), augmenting the
//     training set with those adversarial samples (Eq. 6).
//  2. Security-aware SA recipe search (Eq. 1 / §III-C): black-box
//     simulated annealing over fixed-length recipes minimizing
//     |Acc − 0.5| as estimated by a proxy model.
//  3. The end-to-end secure-synthesis pipeline: lock with plain RLL,
//     train M*, search for S_ALMOST, and emit the hardened netlist.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/anneal"
	"github.com/nyu-secml/almost/internal/attack/omla"
	"github.com/nyu-secml/almost/internal/engine"
	"github.com/nyu-secml/almost/internal/gnn"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/subgraph"
	"github.com/nyu-secml/almost/internal/synth"
)

// engineOpts is threaded into every engine.New call in this package. It
// is empty in production; the determinism suites set it (to
// engine.WithoutPrefixReuse) to prove that full search trajectories are
// bit-for-bit identical with the incremental prefix-reuse path disabled.
var engineOpts []engine.Option

// scalarInference is a test hook: when set (before any engine is built),
// the per-candidate scoring paths fall back to the scalar per-key-gate
// extraction and forward instead of the fused batch seam. The batched
// identity suites run full searches both ways and require bit-identical
// trajectories.
var scalarInference bool

// ModelKind selects the proxy-attacker training regime (Table I).
type ModelKind int

// Proxy model variants.
const (
	ModelResyn2      ModelKind = iota // M^resyn2: defender-baseline recipe
	ModelRandom                       // M^random: fresh random recipe per round
	ModelAdversarial                  // M*: Algorithm 1 adversarial training
)

// String names the variant as in the paper.
func (k ModelKind) String() string {
	switch k {
	case ModelResyn2:
		return "M^resyn2"
	case ModelRandom:
		return "M^random"
	case ModelAdversarial:
		return "M*"
	}
	return fmt.Sprintf("ModelKind(%d)", int(k))
}

// Config collects every knob of the framework. The zero value is not
// usable — start from DefaultConfig or PaperConfig; Validate reports
// what is wrong with a hand-built configuration.
type Config struct {
	// Attack holds the shared GNN/extraction settings.
	Attack omla.Config
	// AdvPeriod is R in Algorithm 1: adversarial augmentation happens
	// every AdvPeriod epochs.
	AdvPeriod int
	// AdvGates is the number of relock gates (= samples) added per
	// augmentation (the paper adds 200).
	AdvGates int
	// AdvSAIters bounds the SA search for each adversarial recipe.
	AdvSAIters int
	// SA is the schedule for the Eq. 1 recipe search.
	SA anneal.Config
	// RecipeLen is L (the paper fixes L = 10).
	RecipeLen int
	// SAProposals is K, the number of neighbor recipes proposed and
	// evaluated per SA iteration by the concurrent evaluation engine.
	// K shapes the search trajectory (values <= 1 propose one neighbor);
	// Parallelism does not.
	SAProposals int
	// Parallelism is the evaluation worker count (the CLI's --jobs): how
	// many recipe candidates are synthesized and attacked concurrently.
	// <= 0 selects runtime.NumCPU(). Results are bit-for-bit identical
	// for any value; only wall-clock changes.
	Parallelism int
	Seed        int64

	// Lockers names the registered locking schemes SecureSynthesisCtx
	// chains, in order, to lock the input design (the CLI's -locker).
	// The key budget is split evenly across the chain. Nil or empty
	// selects plain RLL ("rll"), the paper's scheme.
	Lockers []string
	// EvalAttacks names the registered attacks the Eq. 1 recipe search
	// optimizes against (the CLI's -attacks). Nil or empty selects the
	// paper's objective: the OMLA proxy alone. With several attacks the
	// search minimizes an ensemble objective — per candidate recipe,
	// every named attack is evaluated on the synthesized netlist
	// (concurrently, on the evaluation engine) and the per-attack
	// deviations |Acc_a − 0.5| are reduced per EnsembleReduce, in
	// registration order, so the trajectory is deterministic for any
	// Parallelism and any order this list is written in. The "omla"
	// entry is estimated by the trained proxy (Fig. 2's tractable
	// "alternative flow"); every other name runs the registered attack
	// itself.
	EvalAttacks []string
	// EnsembleReduce selects how per-attack deviations combine into the
	// search energy: ReduceWorst (default) guards the worst case,
	// ReduceMean the average.
	EnsembleReduce EnsembleReduce
}

// EnsembleReduce selects the reduction of per-attack deviations
// |Acc_a − 0.5| into the scalar the Eq. 1 search minimizes.
type EnsembleReduce int

// Ensemble reductions.
const (
	// ReduceWorst minimizes the maximum deviation: the hardened netlist
	// is only as strong as its weakest spot, so guard the worst case.
	ReduceWorst EnsembleReduce = iota
	// ReduceMean minimizes the mean deviation across the ensemble.
	ReduceMean
)

// String names the reduction.
func (m EnsembleReduce) String() string {
	switch m {
	case ReduceWorst:
		return "worst"
	case ReduceMean:
		return "mean"
	}
	return fmt.Sprintf("EnsembleReduce(%d)", int(m))
}

// DefaultConfig returns laptop-scale settings that preserve the paper's
// structure (Alg. 1 cadence, SA schedule shape, L = 10).
func DefaultConfig() Config {
	return Config{
		Attack:      omla.DefaultConfig(),
		AdvPeriod:   10,
		AdvGates:    40,
		AdvSAIters:  12,
		SA:          anneal.Config{Iterations: 40, InitTemp: 120, Acceptance: 1.8},
		RecipeLen:   synth.RecipeLength,
		SAProposals: 4,
		Parallelism: 0, // auto: runtime.NumCPU()
		Seed:        1,
	}
}

// PaperConfig returns the full-size settings reported in §IV-A: 1000
// initial samples, 350 epochs, augmentation of 200 samples every 50
// epochs, SA for 100 iterations with T0 = 120 and acceptance = 1.8.
func PaperConfig() Config {
	cfg := DefaultConfig()
	cfg.Attack.Rounds = 25 // 25 rounds × 40 gates = 1000 samples
	cfg.Attack.GatesPerRound = 40
	cfg.Attack.Epochs = 350
	cfg.AdvPeriod = 50
	cfg.AdvGates = 200
	cfg.AdvSAIters = 20
	cfg.SA = anneal.PaperConfig()
	return cfg
}

// Proxy is a trained accuracy evaluator: a proxy for running the real
// attack at every SA iteration (Fig. 2's "alternative flow").
type Proxy struct {
	Kind   ModelKind
	Attack *omla.Attack
}

// epochFunc adapts proxy-training epochs to PhaseTrain events. samples
// reports the current training-set size, re-read every epoch because
// Algorithm 1 grows the set.
func (o *runOptions) epochFunc(samples func() int) omla.EpochFunc {
	if len(o.observers) == 0 {
		return nil
	}
	return func(epoch, epochs int) {
		o.emit(Event{Phase: PhaseTrain, Epoch: epoch, Epochs: epochs, Samples: samples()})
	}
}

// TrainProxyCtx trains a proxy model of the given kind against the
// locked netlist. The context is checked at every data-generation round
// and training epoch (and, for ModelAdversarial, every Eq. 3 SA
// iteration); on cancellation the partially trained proxy is returned
// alongside an error matching both ErrCanceled and ctx.Err(). Observers
// registered via WithObserver receive PhaseTrain events per epoch and,
// for ModelAdversarial, PhaseAdvSearch events per SA iteration.
func TrainProxyCtx(ctx context.Context, locked *aig.AIG, kind ModelKind,
	baseline synth.Recipe, cfg Config, opts ...Option) (*Proxy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ro := buildOptions(opts)
	switch kind {
	case ModelResyn2:
		atk, err := omla.TrainCtx(ctx, locked, baseline, cfg.Attack,
			ro.epochFunc(func() int { return cfg.Attack.Rounds * cfg.Attack.GatesPerRound }))
		if err != nil {
			return &Proxy{Kind: kind, Attack: atk}, canceled(err)
		}
		return &Proxy{Kind: kind, Attack: atk}, nil
	case ModelRandom:
		rng := rand.New(rand.NewSource(cfg.Seed + 101))
		ext := subgraph.Extractor{Hops: cfg.Attack.Hops}
		dataRng := rand.New(rand.NewSource(cfg.Attack.Seed))
		data, err := omla.GenerateDataCtx(ctx, locked, func(int) synth.Recipe {
			return synth.RandomRecipe(rng, cfg.RecipeLen)
		}, cfg.Attack.Rounds, cfg.Attack.GatesPerRound, ext, dataRng)
		if err != nil {
			return &Proxy{Kind: kind, Attack: &omla.Attack{Ext: ext}}, canceled(err)
		}
		atk, err := omla.TrainOnDataCtx(ctx, data, cfg.Attack,
			ro.epochFunc(func() int { return len(data) }))
		if err != nil {
			return &Proxy{Kind: kind, Attack: atk}, canceled(err)
		}
		return &Proxy{Kind: kind, Attack: atk}, nil
	case ModelAdversarial:
		atk, err := trainAdversarialCtx(ctx, locked, cfg, ro)
		if err != nil {
			return &Proxy{Kind: kind, Attack: atk}, err
		}
		return &Proxy{Kind: kind, Attack: atk}, nil
	}
	return nil, fmt.Errorf("%w: ModelKind(%d); valid kinds are ModelResyn2, ModelRandom, ModelAdversarial",
		ErrUnknownModel, int(kind))
}

// advProblem is the Eq. 3 search: find a recipe maximizing the model's
// loss on freshly relocked localities (gradient-free adversarial
// perturbation in recipe space). Like the Eq. 1 search it evaluates
// through a concurrent engine; model inference is read-only, so workers
// share the model while each re-synthesizes its own relocked copy.
type advProblem struct {
	eng *engine.Evaluator
}

func (p *advProblem) Energy(r synth.Recipe) float64 { return p.eng.Evaluate(r) }

func (p *advProblem) EnergyBatch(rs []synth.Recipe) []float64 {
	return p.eng.EvaluateBatch(rs)
}

func (p *advProblem) EnergyBatchCtx(ctx context.Context, rs []synth.Recipe) ([]float64, error) {
	return p.eng.EvaluateBatchCtx(ctx, rs)
}

func (p *advProblem) Neighbor(r synth.Recipe, rng *rand.Rand) synth.Recipe {
	return synth.MutateRecipe(rng, r)
}

// workerState is the per-engine-worker inference state parked in the
// engine scratch's Aux slot: the fused attack scratch (batched
// extraction + pooled matrices + packed batch) plus the buffers the
// adversarial energy needs for labeled extraction over chosen key gates.
type workerState struct {
	bs     omla.BatchScratch // fused PredictKeyBatch/AccuracyBatch state
	batch  gnn.Batch         // packed labeled localities for advEnergy
	kisAll []int             // all key-input indices of a candidate
	kis    []int             // the relocked subset, in keyOrder
}

// auxScratch returns the worker's inference state, lazily parked in the
// engine scratch's Aux slot.
func auxScratch(s *engine.Scratch) *workerState {
	ws, ok := s.Aux.(*workerState)
	if !ok {
		ws = &workerState{}
		s.Aux = ws
	}
	return ws
}

// advEnergy builds the engine EvalFunc for one augmentation round: score
// a recipe by the model's (negated) loss on the re-synthesized localities
// of the relocked netlist. maximize loss = minimize negative loss.
// Synthesis goes through the scratch's Synth/Release pair, so SA
// proposals that share a recipe prefix with the previous candidate are
// applied as deltas against the worker's persistent base instead of
// re-synthesized from scratch. Scoring runs through the fused batch
// seam: one batched extraction plus one blocked GIN forward over all
// chosen key gates, reusing the worker's state — bit-for-bit identical
// to the scalar per-gate path (see the batched identity suites).
func advEnergy(model *gnn.Model, keyOrder []int, bits []bool, ext subgraph.Extractor) engine.EvalFunc {
	return func(g *aig.AIG, s *engine.Scratch, r synth.Recipe) float64 {
		ws := auxScratch(s)
		resynth := s.Synth(r)
		ws.kisAll = resynth.KeyInputIndicesInto(ws.kisAll)
		if cap(ws.kis) < len(keyOrder) {
			ws.kis = make([]int, len(keyOrder))
		}
		ws.kis = ws.kis[:len(keyOrder)]
		for i, ko := range keyOrder {
			ws.kis[i] = ws.kisAll[ko]
		}
		var loss float64
		if scalarInference {
			loss = model.LossWith(&ws.bs.NN, ext.Labeled(resynth, ws.kis, bits))
		} else {
			ext.LabeledInto(&ws.bs.Sub, resynth, ws.kis, bits, &ws.batch)
			loss = model.LossBatchWith(&ws.bs.NN, &ws.batch)
		}
		s.Release(resynth)
		return -loss
	}
}

// trainAdversarialCtx implements Algorithm 1. The context is checked at
// every training epoch and every SA iteration of the Eq. 3 searches; on
// cancellation the model trained so far is returned alongside an error
// matching both ErrCanceled and ctx.Err(). ro streams PhaseTrain and
// PhaseAdvSearch events.
func trainAdversarialCtx(ctx context.Context, locked *aig.AIG, cfg Config,
	ro *runOptions) (*omla.Attack, error) {
	acfg := cfg.Attack
	rng := rand.New(rand.NewSource(cfg.Seed + 211))
	recipeRng := rand.New(rand.NewSource(cfg.Seed + 223))
	ext := subgraph.Extractor{Hops: acfg.Hops}

	// Line 1-2: initial data from random-recipe relock/resynthesize.
	data, err := omla.GenerateDataCtx(ctx, locked, func(int) synth.Recipe {
		return synth.RandomRecipe(recipeRng, cfg.RecipeLen)
	}, acfg.Rounds, acfg.GatesPerRound, ext, rng)
	if err != nil {
		return &omla.Attack{Ext: ext}, canceled(err)
	}

	gcfg := gnn.Config{
		InDim:     subgraph.FeatureDim,
		Hidden:    acfg.Hidden,
		Layers:    acfg.Layers,
		LR:        acfg.LR,
		BatchSize: 32,
	}
	model := gnn.NewModel(gcfg, rand.New(rand.NewSource(cfg.Seed+227))) // line 3: He init
	trainRng := rand.New(rand.NewSource(cfg.Seed + 229))
	atk := &omla.Attack{Model: model, Ext: ext}

	var advObserve anneal.Observer[synth.Recipe]
	if len(ro.observers) > 0 {
		advObserve = func(tp anneal.TracePoint[synth.Recipe]) {
			ro.emit(Event{Phase: PhaseAdvSearch, Iteration: tp.Iteration,
				Iterations: cfg.AdvSAIters, Energy: tp.Energy, BestEnergy: tp.Best,
				Recipe: tp.State, Best: tp.BestState})
		}
	}

	for epoch := 0; epoch < acfg.Epochs; epoch++ { // line 4
		if err := ctx.Err(); err != nil {
			return atk, canceled(err)
		}
		if cfg.AdvPeriod > 0 && epoch > 0 && epoch%cfg.AdvPeriod == 0 { // line 5
			// Line 6: SA for an adversarial recipe s*. Training pauses while
			// the engine workers run read-only inference on the model.
			relocked, keyOrder, bits := lock.Relock(locked, cfg.AdvGates, rng)
			init := synth.RandomRecipe(recipeRng, cfg.RecipeLen)
			res, err := func() (anneal.Result[synth.Recipe], error) {
				eng := engine.New(relocked, cfg.Parallelism, advEnergy(model, keyOrder, bits, ext), engineOpts...)
				defer eng.Close()
				saCfg := anneal.Config{Iterations: cfg.AdvSAIters, InitTemp: cfg.SA.InitTemp,
					Acceptance: cfg.SA.Acceptance}
				return anneal.RunParallelCtx[synth.Recipe](ctx, &advProblem{eng: eng}, init, saCfg,
					anneal.ParallelConfig{Proposals: cfg.SAProposals, Seed: cfg.Seed + int64(epoch)},
					advObserve)
			}()
			if err != nil {
				return atk, canceled(err)
			}
			// Line 7: augment D_training with X^{s*}.
			resynth := res.Best.Apply(relocked)
			kisAll := resynth.KeyInputIndices()
			kis := make([]int, len(keyOrder))
			for i, ko := range keyOrder {
				kis[i] = kisAll[ko]
			}
			data = append(data, ext.Labeled(resynth, kis, bits)...)
		}
		model.TrainEpoch(data, trainRng) // lines 8-9
		if len(ro.observers) > 0 {
			ro.emit(Event{Phase: PhaseTrain, Epoch: epoch, Epochs: acfg.Epochs, Samples: len(data)})
		}
	}
	return atk, nil
}

// EstimateAccuracy predicts the attack accuracy obtained on the locked
// netlist after synthesizing it with recipe r — the quantity Eq. 1
// minimizes toward 0.5. The defender knows the true key, so accuracy is
// measured exactly against it.
func (p *Proxy) EstimateAccuracy(locked *aig.AIG, r synth.Recipe, truth lock.Key) float64 {
	return p.Attack.Accuracy(r.Apply(locked), truth)
}

// searchProblem is the Eq. 1 objective, generalized to an attack
// ensemble: per candidate recipe every attack of the (canonicalized)
// EvalAttacks list is evaluated on the synthesized netlist, the
// deviations |Acc_a − 0.5| are reduced per EnsembleReduce, and the
// engine memoizes the reduced energy under the recipe's canonical hash
// while the per-attack accuracies land in accs. Workers each score on a
// private copy of the locked netlist, so the whole objective is a pure
// function of the recipe and the trajectory is jobs-invariant.
type searchProblem struct {
	eng     *engine.Evaluator
	attacks []string // canonical (registration) order
	reduce  EnsembleReduce
	accs    sync.Map // engine.RecipeKey -> []float64, aligned with attacks

	// mu guards evalErr, the first non-cancellation failure reported by
	// an ensemble attacker. Built-ins only fail on cancellation, but a
	// registered third-party attack may fail for real — the next batch
	// surfaces the error instead of letting the search run to a
	// meaningless result on NaN energies.
	mu      sync.Mutex
	evalErr error
}

func (p *searchProblem) recordErr(err error) {
	p.mu.Lock()
	if p.evalErr == nil {
		p.evalErr = err
	}
	p.mu.Unlock()
}

func (p *searchProblem) firstErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evalErr
}

// accuracies returns the per-attack accuracies of an evaluated recipe.
// Scores are recorded before the engine settles the energy, so any
// recipe the engine has scored resolves here.
func (p *searchProblem) accuracies(r synth.Recipe) ([]float64, bool) {
	v, ok := p.accs.Load(engine.RecipeKey(r))
	if !ok {
		return nil, false
	}
	return v.([]float64), true
}

// headline compresses per-attack accuracies into the single Accuracy the
// result and trace report: under ReduceWorst the accuracy of the attack
// deviating most from 0.5 (ties resolved in registration order), under
// ReduceMean the mean accuracy. For a single-attack objective both are
// that attack's accuracy, matching the pre-ensemble semantics.
func (p *searchProblem) headline(accs []float64) float64 {
	if len(accs) == 0 {
		return math.NaN()
	}
	if p.reduce == ReduceMean {
		var sum float64
		for _, a := range accs {
			sum += a
		}
		return sum / float64(len(accs))
	}
	worst := 0
	for i, a := range accs {
		if math.Abs(a-0.5) > math.Abs(accs[worst]-0.5) {
			worst = i
		}
	}
	return accs[worst]
}

func (p *searchProblem) reduceEnergy(accs []float64) float64 {
	switch p.reduce {
	case ReduceMean:
		var sum float64
		for _, a := range accs {
			sum += math.Abs(a - 0.5)
		}
		return sum / float64(len(accs))
	default:
		var worst float64
		for i, a := range accs {
			if d := math.Abs(a - 0.5); i == 0 || d > worst || math.IsNaN(d) {
				worst = d
			}
		}
		return worst
	}
}

func (p *searchProblem) Energy(r synth.Recipe) float64 { return p.eng.Evaluate(r) }

func (p *searchProblem) EnergyBatch(rs []synth.Recipe) []float64 {
	return p.eng.EvaluateBatch(rs)
}

func (p *searchProblem) EnergyBatchCtx(ctx context.Context, rs []synth.Recipe) ([]float64, error) {
	out, err := p.eng.EvaluateBatchCtx(ctx, rs)
	if err != nil {
		return nil, err
	}
	if err := p.firstErr(); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *searchProblem) Neighbor(r synth.Recipe, rng *rand.Rand) synth.Recipe {
	return synth.MutateRecipe(rng, r)
}

// SearchTracePoint records the accuracy trajectory of the recipe search —
// the curves of Fig. 4.
type SearchTracePoint struct {
	Iteration int
	// Accuracy is the headline accuracy of the iteration's recipe (for
	// the default OMLA-only objective: the proxy-estimated accuracy).
	Accuracy float64
	// Accuracies holds the per-attack accuracies of an ensemble
	// objective, keyed by registered attack name.
	Accuracies map[string]float64
	Recipe     synth.Recipe
}

// SearchResult is the outcome of the Eq. 1 search.
type SearchResult struct {
	Recipe   synth.Recipe // S_ALMOST
	Accuracy float64      // headline accuracy of Recipe (see SearchTracePoint)
	// Attacks is the ensemble evaluated, in canonical registration order
	// (["omla"] for the paper's default objective).
	Attacks []string
	// Accuracies holds Recipe's per-attack accuracies by attack name.
	Accuracies map[string]float64
	Trace      []SearchTracePoint
}

// SearchRecipeCtx runs the security-aware SA recipe generation (Eq. 1)
// using the proxy as the accuracy evaluator. When the budget ends
// without reaching ~50%, the best recipe found is returned (as the paper
// does for c2670, c5315, c7552).
//
// cfg.EvalAttacks generalizes the objective to an attack ensemble: every
// named registered attack is evaluated per candidate and the deviations
// reduce per cfg.EnsembleReduce. The "omla" entry is estimated by the
// trained proxy; other entries run the registered attack on the
// candidate netlist. Evaluation runs on the concurrent engine: every SA
// iteration proposes cfg.SAProposals neighbors, scored across
// cfg.Parallelism workers with memoization, and the trajectory is
// identical for any worker count and any EvalAttacks order.
//
// The context is checked at every SA iteration and inside every engine
// batch; on cancellation the best-so-far SearchResult (well-formed, with
// the trace recorded up to the cancellation point) is returned alongside
// an error matching both ErrCanceled and ctx.Err(). Observers receive
// one PhaseSearch event per attack per iteration, labeled with the
// attack name — the Fig. 4 trace, live, one curve per ensemble member.
func SearchRecipeCtx(ctx context.Context, locked *aig.AIG, truth lock.Key,
	proxy *Proxy, cfg Config, opts ...Option) (SearchResult, error) {
	if err := cfg.Validate(); err != nil {
		return SearchResult{}, err
	}
	attacks, err := canonicalAttacks(cfg.EvalAttacks)
	if err != nil {
		return SearchResult{}, err
	}
	ro := buildOptions(opts)
	prob := &searchProblem{attacks: attacks, reduce: cfg.EnsembleReduce}

	// One estimator per ensemble member. "omla" is the trained proxy —
	// re-training the real OMLA per candidate is exactly the naive flow
	// Fig. 2 rejects; the others run the registered attack itself. Each
	// estimator receives the worker's engine scratch so proxy inference
	// reuses pooled matrices; registered attacks must not retain the
	// netlist (it is recycled after scoring).
	evals := make([]func(net *aig.AIG, s *engine.Scratch, r synth.Recipe) float64, len(attacks))
	for i, name := range attacks {
		if name == "omla" {
			// The proxy scores every key gate of the candidate through one
			// fused batch: a single shared-index extraction and one blocked
			// GIN forward, bit-identical to the scalar per-gate loop.
			evals[i] = func(net *aig.AIG, s *engine.Scratch, _ synth.Recipe) float64 {
				ws := auxScratch(s)
				if scalarInference {
					return proxy.Attack.AccuracyWith(&ws.bs.NN, net, truth)
				}
				return proxy.Attack.AccuracyBatchWith(&ws.bs, net, truth)
			}
			continue
		}
		atk, _ := LookupAttacker(name) // canonicalAttacks verified the name
		name := name
		evals[i] = func(net *aig.AIG, _ *engine.Scratch, r synth.Recipe) float64 {
			acc, err := atk.AttackCtx(ctx, net, truth, WithRecipe(r))
			if err != nil {
				// Cancellation is surfaced by the engine batch itself; a
				// genuine attacker failure is recorded so the next batch
				// aborts the search with it rather than annealing on NaN.
				if ctx.Err() == nil {
					prob.recordErr(fmt.Errorf("core: ensemble attack %q failed: %w", name, err))
				}
				return math.NaN()
			}
			return acc
		}
	}

	eng := engine.New(locked, cfg.Parallelism, func(g *aig.AIG, s *engine.Scratch, r synth.Recipe) float64 {
		net := s.Synth(r)
		accs := make([]float64, len(evals))
		for i, eval := range evals {
			accs[i] = eval(net, s, r)
		}
		prob.accs.Store(engine.RecipeKey(r), accs)
		s.Release(net)
		return prob.reduceEnergy(accs)
	}, engineOpts...)
	defer eng.Close()
	prob.eng = eng
	rng := rand.New(rand.NewSource(cfg.Seed + 307))
	init := synth.RandomRecipe(rng, cfg.RecipeLen)

	var observe anneal.Observer[synth.Recipe]
	if len(ro.observers) > 0 {
		observe = func(tp anneal.TracePoint[synth.Recipe]) {
			// The state was evaluated by this iteration's batch, so the
			// accuracy lookup always resolves.
			accs, _ := prob.accuracies(tp.State)
			for i, name := range attacks {
				acc := math.NaN()
				if i < len(accs) {
					acc = accs[i]
				}
				ro.emit(Event{Phase: PhaseSearch, Attack: name, Iteration: tp.Iteration,
					Iterations: cfg.SA.Iterations, Energy: tp.Energy, BestEnergy: tp.Best,
					Accuracy: acc, Recipe: tp.State, Best: tp.BestState})
			}
		}
	}

	res, runErr := anneal.RunParallelCtx[synth.Recipe](ctx, prob, init, cfg.SA,
		anneal.ParallelConfig{Proposals: cfg.SAProposals, Seed: cfg.Seed + 311}, observe)
	out := SearchResult{Recipe: res.Best, Attacks: attacks}
	byName := func(accs []float64) map[string]float64 {
		m := make(map[string]float64, len(attacks))
		for i, name := range attacks {
			if i < len(accs) {
				m[name] = accs[i]
			}
		}
		return m
	}
	for _, tp := range res.Trace {
		accs, _ := prob.accuracies(tp.State)
		out.Trace = append(out.Trace, SearchTracePoint{
			Iteration:  tp.Iteration,
			Accuracy:   prob.headline(accs),
			Accuracies: byName(accs),
			Recipe:     tp.State,
		})
	}
	// Best-so-far accuracies come from the recorded evaluations rather
	// than a fresh run; a miss only happens when the search was canceled
	// before the initial state was scored.
	if accs, ok := prob.accuracies(res.Best); ok {
		out.Accuracy = prob.headline(accs)
		out.Accuracies = byName(accs)
	} else {
		out.Accuracy = math.NaN()
	}
	if runErr != nil {
		// A cancellation gets the ErrCanceled wrapper; a genuine ensemble
		// attacker failure is returned as recorded.
		return out, canceledIfCtx(ctx, runErr)
	}
	return out, nil
}

// Hardened is the output of the end-to-end pipeline.
type Hardened struct {
	Locked  *aig.AIG     // locked netlist (pre-synthesis)
	Netlist *aig.AIG     // S_ALMOST-synthesized locked netlist
	Key     lock.Key     // the correct key
	Lockers []string     // locking schemes applied, in chain order
	Recipe  synth.Recipe // S_ALMOST
	Search  SearchResult
	Proxy   *Proxy
}

// SecureSynthesisCtx runs the full ALMOST flow on an unlocked design:
// lock with keySize bits using the cfg.Lockers chain (plain RLL by
// default), train the adversarial proxy M*, search for S_ALMOST against
// the cfg.EvalAttacks objective, and synthesize the final netlist.
//
// The context is threaded through every stage (training epochs, Eq. 3
// searches, Eq. 1 search, engine batches). On cancellation the returned
// *Hardened is non-nil and holds everything completed so far — always
// Locked and Key, plus the partially trained Proxy, the best-so-far
// Search, and (when a best recipe exists) the Netlist synthesized with
// it — alongside an error matching both ErrCanceled and ctx.Err().
// A nil *Hardened is returned only when no work completed at all: an
// invalid Config, or a locking-stage failure.
func SecureSynthesisCtx(ctx context.Context, design *aig.AIG, keySize int,
	cfg Config, opts ...Option) (*Hardened, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ro := buildOptions(opts)
	rng := rand.New(rand.NewSource(cfg.Seed))
	chain, _ := canonicalLockers(cfg.Lockers) // Validate checked the names
	ro.emit(Event{Phase: PhaseLock, Lockers: chain})
	locked, key, err := LockWithCtx(ctx, design, keySize, cfg.Lockers, rng)
	if err != nil {
		// Locking failed before any durable work existed, so there is no
		// partial Hardened to return; a third-party locker that honored
		// the context still yields an ErrCanceled-matching error.
		return nil, canceledIfCtx(ctx, err)
	}
	h := &Hardened{Locked: locked, Key: key, Lockers: chain}

	proxy, err := TrainProxyCtx(ctx, locked, ModelAdversarial, synth.Resyn2(), cfg, opts...)
	h.Proxy = proxy
	if err != nil {
		return h, err
	}
	search, err := SearchRecipeCtx(ctx, locked, key, proxy, cfg, opts...)
	h.Search = search
	h.Recipe = search.Recipe
	if err != nil {
		if len(search.Recipe) > 0 {
			h.Netlist = search.Recipe.Apply(locked)
		}
		return h, err
	}
	ro.emit(Event{Phase: PhaseSynth, Recipe: search.Recipe, Best: search.Recipe,
		Accuracy: search.Accuracy})
	h.Netlist = search.Recipe.Apply(locked)
	return h, nil
}
