package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/attack/omla"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/cnf"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/synth"
)

// trainProxyT, searchT, and hardenT run the Ctx entry points with a
// background context, failing the test on any error — the test-side
// replacement for the retired panic-era wrappers.
func trainProxyT(t testing.TB, locked *aig.AIG, kind ModelKind, cfg Config) *Proxy {
	t.Helper()
	p, err := TrainProxyCtx(context.Background(), locked, kind, synth.Resyn2(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func searchT(t testing.TB, locked *aig.AIG, key lock.Key, proxy *Proxy, cfg Config) SearchResult {
	t.Helper()
	res, err := SearchRecipeCtx(context.Background(), locked, key, proxy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func hardenT(t testing.TB, g *aig.AIG, keySize int, cfg Config) *Hardened {
	t.Helper()
	h, err := SecureSynthesisCtx(context.Background(), g, keySize, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// tinyConfig keeps unit-test runtime low while exercising every code path
// (including adversarial augmentation and batched proposal evaluation).
// In -short mode the loop counts shrink further; every assertion in this
// file is iteration-count-agnostic, so coverage is preserved.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Attack.Rounds = 2
	cfg.Attack.GatesPerRound = 12
	cfg.Attack.Epochs = 6
	cfg.AdvPeriod = 3
	cfg.AdvGates = 8
	cfg.AdvSAIters = 3
	cfg.SA.Iterations = 6
	cfg.SAProposals = 2
	if testing.Short() {
		cfg.Attack.Rounds = 1
		cfg.Attack.Epochs = 4
		cfg.AdvPeriod = 2
		cfg.AdvGates = 6
		cfg.AdvSAIters = 2
		cfg.SA.Iterations = 3
		cfg.RecipeLen = 5 // halves the cost of every synthesis evaluation
	}
	return cfg
}

func TestModelKindString(t *testing.T) {
	if ModelResyn2.String() != "M^resyn2" || ModelRandom.String() != "M^random" ||
		ModelAdversarial.String() != "M*" {
		t.Fatal("model kind names drifted from the paper")
	}
}

func TestTrainProxyAllKinds(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 8, rand.New(rand.NewSource(1)))
	cfg := tinyConfig()
	for _, kind := range []ModelKind{ModelResyn2, ModelRandom, ModelAdversarial} {
		p := trainProxyT(t, locked, kind, cfg)
		if p.Kind != kind || p.Attack == nil {
			t.Fatalf("%v: bad proxy", kind)
		}
		acc := p.EstimateAccuracy(locked, synth.Resyn2(), key)
		if acc < 0 || acc > 1 {
			t.Fatalf("%v: accuracy %v out of range", kind, acc)
		}
	}
}

func TestAdversarialTrainingAugmentsData(t *testing.T) {
	// With AdvPeriod=3 and 6 epochs, augmentation must fire at epoch 3.
	// We verify indirectly: adversarial training must differ from a pure
	// random-data model trained with identical seeds when augmentation is
	// enabled vs disabled.
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 8, rand.New(rand.NewSource(2)))
	cfg := tinyConfig()
	pAdv := trainProxyT(t, locked, ModelAdversarial, cfg)
	cfgOff := cfg
	cfgOff.AdvPeriod = 0 // disables augmentation
	pOff := trainProxyT(t, locked, ModelAdversarial, cfgOff)
	r := synth.Resyn2()
	// Not a strict inequality requirement — just confirm the two training
	// regimes are distinguishable (different predictions somewhere).
	same := pAdv.EstimateAccuracy(locked, r, key) == pOff.EstimateAccuracy(locked, r, key)
	r2 := synth.RandomRecipe(rand.New(rand.NewSource(3)), cfg.RecipeLen)
	same = same && pAdv.EstimateAccuracy(locked, r2, key) == pOff.EstimateAccuracy(locked, r2, key)
	if same {
		t.Log("warning: augmented and unaugmented models agree on both probes (possible for tiny configs)")
	}
}

func TestSearchRecipeReturnsTraceAndRecipe(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 8, rand.New(rand.NewSource(4)))
	cfg := tinyConfig()
	proxy := trainProxyT(t, locked, ModelResyn2, cfg)
	res := searchT(t, locked, key, proxy, cfg)
	if len(res.Recipe) != cfg.RecipeLen {
		t.Fatalf("recipe length = %d", len(res.Recipe))
	}
	if len(res.Trace) == 0 || len(res.Trace) > cfg.SA.Iterations {
		t.Fatalf("trace length = %d", len(res.Trace))
	}
	for _, tp := range res.Trace {
		if tp.Accuracy < 0 || tp.Accuracy > 1 {
			t.Fatalf("trace accuracy %v out of range", tp.Accuracy)
		}
	}
	if res.Accuracy < 0 || res.Accuracy > 1 {
		t.Fatalf("result accuracy %v", res.Accuracy)
	}
}

// TestSearchRecipeJobsInvariant is the engine's determinism contract:
// the search trajectory must be bit-for-bit identical whether candidates
// are evaluated by one worker or by eight concurrently.
func TestSearchRecipeJobsInvariant(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 8, rand.New(rand.NewSource(9)))
	cfg := tinyConfig()
	proxy := trainProxyT(t, locked, ModelResyn2, cfg)

	cfg.Parallelism = 1
	serial := searchT(t, locked, key, proxy, cfg)
	cfg.Parallelism = 8
	parallel := searchT(t, locked, key, proxy, cfg)

	if !serial.Recipe.Equal(parallel.Recipe) {
		t.Fatalf("jobs=1 and jobs=8 found different recipes:\n  %s\n  %s",
			serial.Recipe, parallel.Recipe)
	}
	if serial.Accuracy != parallel.Accuracy {
		t.Fatalf("accuracy differs: %v vs %v", serial.Accuracy, parallel.Accuracy)
	}
	if len(serial.Trace) != len(parallel.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(serial.Trace), len(parallel.Trace))
	}
	for i := range serial.Trace {
		if serial.Trace[i].Accuracy != parallel.Trace[i].Accuracy ||
			!serial.Trace[i].Recipe.Equal(parallel.Trace[i].Recipe) {
			t.Fatalf("trace diverges at iteration %d", i)
		}
	}
}

// TestSecureSynthesisJobsInvariant extends the invariance check to the
// full pipeline (adversarial training's Eq. 3 searches included).
func TestSecureSynthesisJobsInvariant(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("full-pipeline invariance check in -short mode or under -race")
	}
	g := circuits.MustGenerate("c432")
	cfg := tinyConfig()
	cfg.Parallelism = 1
	h1 := hardenT(t, g, 8, cfg)
	cfg.Parallelism = 4
	h4 := hardenT(t, g, 8, cfg)
	if !h1.Recipe.Equal(h4.Recipe) {
		t.Fatalf("jobs=1 and jobs=4 pipelines diverged:\n  %s\n  %s", h1.Recipe, h4.Recipe)
	}
	if h1.Search.Accuracy != h4.Search.Accuracy {
		t.Fatalf("accuracy differs: %v vs %v", h1.Search.Accuracy, h4.Search.Accuracy)
	}
}

func TestSearchIsDeterministic(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 8, rand.New(rand.NewSource(5)))
	cfg := tinyConfig()
	proxy := trainProxyT(t, locked, ModelResyn2, cfg)
	r1 := searchT(t, locked, key, proxy, cfg)
	r2 := searchT(t, locked, key, proxy, cfg)
	if !r1.Recipe.Equal(r2.Recipe) || r1.Accuracy != r2.Accuracy {
		t.Fatal("search not deterministic")
	}
}

func TestSecureSynthesisEndToEnd(t *testing.T) {
	// Full pipeline on a small circuit: the hardened netlist must remain
	// functionally correct under the key, and the search must produce a
	// valid recipe.
	g := circuits.MustGenerate("c432")
	cfg := tinyConfig()
	h := hardenT(t, g, 8, cfg)
	if h.Netlist.NumKeyInputs() != 8 || len(h.Key) != 8 {
		t.Fatalf("hardened interface wrong: %v", h.Netlist.Stats())
	}
	if ok, cex, _ := cnf.EquivalentUnderKey(g, h.Netlist, h.Key); !ok {
		t.Fatalf("ALMOST netlist broken under correct key (cex=%v)", cex)
	}
	if len(h.Recipe) != cfg.RecipeLen {
		t.Fatalf("recipe length %d", len(h.Recipe))
	}
	if h.Proxy.Kind != ModelAdversarial {
		t.Fatalf("pipeline must use M*")
	}
}

func TestPaperConfigMatchesPaper(t *testing.T) {
	cfg := PaperConfig()
	if cfg.Attack.Rounds*cfg.Attack.GatesPerRound != 1000 {
		t.Errorf("initial samples = %d, want 1000", cfg.Attack.Rounds*cfg.Attack.GatesPerRound)
	}
	if cfg.Attack.Epochs != 350 {
		t.Errorf("epochs = %d, want 350", cfg.Attack.Epochs)
	}
	if cfg.AdvPeriod != 50 {
		t.Errorf("R = %d, want 50", cfg.AdvPeriod)
	}
	if cfg.AdvGates != 200 {
		t.Errorf("adversarial samples = %d, want 200", cfg.AdvGates)
	}
	if cfg.SA.Iterations != 100 || cfg.SA.InitTemp != 120 || cfg.SA.Acceptance != 1.8 {
		t.Errorf("SA schedule drifted: %+v", cfg.SA)
	}
	if cfg.RecipeLen != 10 {
		t.Errorf("L = %d, want 10", cfg.RecipeLen)
	}
}

// TestALMOSTReducesAttackAccuracy is the repository's headline
// integration test: on a mid-size benchmark, an independently trained
// OMLA attacker must do measurably worse against the ALMOST-synthesized
// netlist than against the resyn2-synthesized one.
func TestALMOSTReducesAttackAccuracy(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("multi-minute integration test in -short mode or under -race")
	}
	g := circuits.MustGenerate("c1908")
	locked, key := lock.Lock(g, 64, rand.New(rand.NewSource(1)))

	cfg := DefaultConfig()
	cfg.Attack.Epochs = 20
	// 15 iterations × K=2 proposals keeps the candidate-evaluation budget
	// near this test's historical 25 serial evaluations; the headline
	// claim doesn't need a wide proposal fan-out.
	cfg.SA.Iterations = 15
	cfg.SAProposals = 2
	proxy := trainProxyT(t, locked, ModelAdversarial, cfg)
	res := searchT(t, locked, key, proxy, cfg)

	// Independent attackers (fresh seed, full knowledge of the respective
	// recipe) against both netlists.
	resyn := synth.Resyn2()
	baseNet := resyn.Apply(locked)
	almostNet := res.Recipe.Apply(locked)
	acfg := omla.DefaultConfig()
	acfg.Seed = 12345
	baseAcc := omla.Train(baseNet, resyn, acfg).Accuracy(baseNet, key)
	almostAcc := omla.Train(almostNet, res.Recipe, acfg).Accuracy(almostNet, key)

	t.Logf("c1908: resyn2 %.2f%% vs ALMOST %.2f%%", baseAcc*100, almostAcc*100)
	if almostAcc >= baseAcc {
		t.Fatalf("ALMOST did not reduce attack accuracy: %.2f%% -> %.2f%%",
			baseAcc*100, almostAcc*100)
	}
}
