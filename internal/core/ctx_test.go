package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/synth"
)

// settles waits up to ~3s for the goroutine count to drop back to the
// baseline; used by the leak checks after canceling mid-pipeline.
func settles(baseline int) bool {
	for i := 0; i < 300; i++ {
		if runtime.NumGoroutine() <= baseline {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

func lockedC432(t testing.TB) (*aig.AIG, lock.Key) {
	t.Helper()
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 8, rand.New(rand.NewSource(1)))
	return locked, key
}

func TestConfigValidateZeroValue(t *testing.T) {
	err := Config{}.Validate()
	if err == nil {
		t.Fatal("zero-value Config must not validate")
	}
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig", err)
	}
	if !strings.Contains(err.Error(), "DefaultConfig") {
		t.Fatalf("message not actionable: %v", err)
	}
}

func TestConfigValidateFieldMessages(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"recipe len", func(c *Config) { c.RecipeLen = 0 }, "RecipeLen"},
		{"sa iterations", func(c *Config) { c.SA.Iterations = -1 }, "SA.Iterations"},
		{"negative temp", func(c *Config) { c.SA.InitTemp = -3 }, "SA.InitTemp"},
		{"acceptance", func(c *Config) { c.SA.Acceptance = 0 }, "SA.Acceptance"},
		{"proposals", func(c *Config) { c.SAProposals = -2 }, "SAProposals"},
		{"adv period", func(c *Config) { c.AdvPeriod = -1 }, "AdvPeriod"},
		{"adv gates", func(c *Config) { c.AdvGates = 0 }, "AdvGates"},
		{"adv sa iters", func(c *Config) { c.AdvSAIters = 0 }, "AdvSAIters"},
		{"attack epochs", func(c *Config) { c.Attack.Epochs = 0 }, "Attack.Epochs"},
		{"attack rounds", func(c *Config) { c.Attack.Rounds = 0 }, "Attack.Rounds"},
		{"attack lr", func(c *Config) { c.Attack.LR = 0 }, "Attack.LR"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("err = %v, want ErrInvalidConfig", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("message %q does not name %q", err, tc.want)
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig must validate: %v", err)
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Fatalf("PaperConfig must validate: %v", err)
	}
	// AdvPeriod == 0 disables augmentation; AdvGates may then be zero.
	cfg := DefaultConfig()
	cfg.AdvPeriod, cfg.AdvGates, cfg.AdvSAIters = 0, 0, 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("disabled augmentation must validate: %v", err)
	}
}

func TestTrainProxyCtxUnknownModelKind(t *testing.T) {
	locked, _ := lockedC432(t)
	_, err := TrainProxyCtx(context.Background(), locked, ModelKind(42), synth.Resyn2(), tinyConfig())
	if !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("err = %v, want ErrUnknownModel", err)
	}
}

func TestSearchRecipeCtxInvalidConfig(t *testing.T) {
	locked, key := lockedC432(t)
	proxy, err := TrainProxyCtx(context.Background(), locked, ModelResyn2, synth.Resyn2(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SearchRecipeCtx(context.Background(), locked, key, proxy, Config{}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig", err)
	}
	if _, err := SecureSynthesisCtx(context.Background(), locked, 8, Config{}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig", err)
	}
}

// TestSearchRecipeCtxStreamsFig4Trace asserts the observer contract: one
// PhaseSearch event per SA iteration, carrying the same live accuracy
// trajectory the final SearchResult.Trace reports (Fig. 4, live).
func TestSearchRecipeCtxStreamsFig4Trace(t *testing.T) {
	locked, key := lockedC432(t)
	cfg := tinyConfig()
	proxy, err := TrainProxyCtx(context.Background(), locked, ModelResyn2, synth.Resyn2(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	res, err := SearchRecipeCtx(context.Background(), locked, key, proxy, cfg,
		WithObserver(func(ev Event) { events = append(events, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	if len(events) != len(res.Trace) {
		t.Fatalf("streamed %d events, final trace has %d points", len(events), len(res.Trace))
	}
	for i, ev := range events {
		if ev.Phase != PhaseSearch {
			t.Fatalf("event %d phase = %q", i, ev.Phase)
		}
		if ev.Iteration != i {
			t.Fatalf("event %d iteration = %d", i, ev.Iteration)
		}
		if ev.Iterations != cfg.SA.Iterations {
			t.Fatalf("event %d total iterations = %d", i, ev.Iterations)
		}
		if ev.Accuracy < 0 || ev.Accuracy > 1 {
			t.Fatalf("event %d accuracy = %v", i, ev.Accuracy)
		}
		if ev.Accuracy != res.Trace[i].Accuracy {
			t.Fatalf("event %d live accuracy %v != trace accuracy %v",
				i, ev.Accuracy, res.Trace[i].Accuracy)
		}
		if !ev.Recipe.Equal(res.Trace[i].Recipe) {
			t.Fatalf("event %d recipe diverges from trace", i)
		}
		if len(ev.Best) != cfg.RecipeLen {
			t.Fatalf("event %d best-so-far recipe length %d", i, len(ev.Best))
		}
	}
	// The final best-so-far must be the returned recipe.
	if last := events[len(events)-1]; !last.Best.Equal(res.Recipe) {
		t.Fatalf("final best %v != returned recipe %v", last.Best, res.Recipe)
	}
}

// TestSearchRecipeCtxCancelMidRun cancels the Eq. 1 search from inside
// its own event stream and checks the contract: prompt return, an error
// matching both ErrCanceled and context.Canceled, a well-formed partial
// result, and no leaked engine goroutines.
func TestSearchRecipeCtxCancelMidRun(t *testing.T) {
	locked, key := lockedC432(t)
	cfg := tinyConfig()
	cfg.SA.Iterations = 1000 // far more than the canceled run will do
	proxy, err := TrainProxyCtx(context.Background(), locked, ModelResyn2, synth.Resyn2(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAfter = 3
	seen := 0
	res, err := SearchRecipeCtx(ctx, locked, key, proxy, cfg,
		WithObserver(func(ev Event) {
			seen++
			if seen == stopAfter {
				cancel()
			}
		}))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The partial result is well-formed: best-so-far recipe of the
	// configured length, a trace cut at the cancellation point, and the
	// accuracy of the best recipe recovered from the engine cache.
	if len(res.Recipe) != cfg.RecipeLen {
		t.Fatalf("partial recipe length = %d, want %d", len(res.Recipe), cfg.RecipeLen)
	}
	if len(res.Trace) != stopAfter {
		t.Fatalf("partial trace has %d points, want %d", len(res.Trace), stopAfter)
	}
	if res.Accuracy < 0 || res.Accuracy > 1 {
		t.Fatalf("partial accuracy = %v", res.Accuracy)
	}
	if !settles(before) {
		t.Fatalf("engine goroutines leaked: before %d, now %d", before, runtime.NumGoroutine())
	}
}

// TestSecureSynthesisCtxCancelDuringTraining cancels the end-to-end flow
// while Algorithm 1 is still training and checks that the partial
// Hardened keeps the completed work (lock + partially trained proxy).
func TestSecureSynthesisCtxCancelDuringTraining(t *testing.T) {
	g := circuits.MustGenerate("c432")
	cfg := tinyConfig()
	cfg.Attack.Epochs = 1000 // cancellation lands mid-training

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trained := 0
	h, err := SecureSynthesisCtx(ctx, g, 8, cfg,
		WithObserver(func(ev Event) {
			if ev.Phase == PhaseTrain {
				trained++
				if trained == 2 {
					cancel()
				}
			}
		}))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled ∧ context.Canceled", err)
	}
	if h == nil {
		t.Fatal("canceled run must return the partial Hardened")
	}
	if h.Locked == nil || len(h.Key) != 8 {
		t.Fatalf("partial Hardened lost the locked instance: %+v", h)
	}
	if h.Proxy == nil || h.Proxy.Attack == nil {
		t.Fatal("partial Hardened lost the partially trained proxy")
	}
	if h.Netlist != nil {
		t.Fatal("no recipe was found, so no netlist should be synthesized")
	}
	if !settles(before) {
		t.Fatalf("goroutines leaked: before %d, now %d", before, runtime.NumGoroutine())
	}
}

// TestSecureSynthesisCtxCancelDuringSearch cancels during the Eq. 1
// search: the partial Hardened must carry the best-so-far recipe AND the
// netlist synthesized with it.
func TestSecureSynthesisCtxCancelDuringSearch(t *testing.T) {
	g := circuits.MustGenerate("c432")
	cfg := tinyConfig()
	cfg.SA.Iterations = 1000

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	searched := 0
	h, err := SecureSynthesisCtx(ctx, g, 8, cfg,
		WithObserver(func(ev Event) {
			if ev.Phase == PhaseSearch {
				searched++
				if searched == 2 {
					cancel()
				}
			}
		}))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if h == nil || len(h.Recipe) != cfg.RecipeLen {
		t.Fatalf("partial Hardened lacks best-so-far recipe: %+v", h)
	}
	if h.Netlist == nil {
		t.Fatal("best-so-far recipe found but netlist not synthesized")
	}
	if len(h.Search.Trace) == 0 {
		t.Fatal("partial Hardened lost the search trace")
	}
}

// TestSecureSynthesisCtxDeterministic pins the redesign: two runs of the
// pipeline with the same seed are bit-for-bit identical.
func TestSecureSynthesisCtxDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full pipeline runs in -short mode")
	}
	g := circuits.MustGenerate("c432")
	cfg := tinyConfig()
	h1, err := SecureSynthesisCtx(context.Background(), g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := SecureSynthesisCtx(context.Background(), g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !h1.Recipe.Equal(h2.Recipe) {
		t.Fatalf("seeded reruns diverge: %v vs %v", h1.Recipe, h2.Recipe)
	}
	if h1.Search.Accuracy != h2.Search.Accuracy {
		t.Fatalf("accuracies diverge: %v vs %v", h1.Search.Accuracy, h2.Search.Accuracy)
	}
}

// TestTrainProxyCtxEmitsTrainAndAdvSearchEvents checks Algorithm 1's
// observability: epochs stream as PhaseTrain with a growing sample count,
// and each Eq. 3 augmentation streams PhaseAdvSearch iterations.
func TestTrainProxyCtxEmitsTrainAndAdvSearchEvents(t *testing.T) {
	locked, _ := lockedC432(t)
	cfg := tinyConfig()
	var train, adv int
	firstSamples, lastSamples := -1, -1
	_, err := TrainProxyCtx(context.Background(), locked, ModelAdversarial, synth.Resyn2(), cfg,
		WithObserver(func(ev Event) {
			switch ev.Phase {
			case PhaseTrain:
				train++
				if firstSamples < 0 {
					firstSamples = ev.Samples
				}
				lastSamples = ev.Samples
			case PhaseAdvSearch:
				adv++
				if ev.Iterations != cfg.AdvSAIters {
					t.Errorf("adv-search total iterations = %d, want %d", ev.Iterations, cfg.AdvSAIters)
				}
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if train != cfg.Attack.Epochs {
		t.Fatalf("saw %d train events, want %d", train, cfg.Attack.Epochs)
	}
	if adv == 0 {
		t.Fatal("no adversarial-search events streamed")
	}
	if lastSamples <= firstSamples {
		t.Fatalf("training set did not grow: %d -> %d", firstSamples, lastSamples)
	}
}

// TestTrainProxyCtxCancelKeepsPartialModel cancels ModelResyn2 training
// mid-epochs and checks the partially trained proxy is usable.
func TestTrainProxyCtxCancelKeepsPartialModel(t *testing.T) {
	locked, key := lockedC432(t)
	cfg := tinyConfig()
	cfg.Attack.Epochs = 1000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	epochs := 0
	p, err := TrainProxyCtx(ctx, locked, ModelResyn2, synth.Resyn2(), cfg,
		WithObserver(func(ev Event) {
			if ev.Phase == PhaseTrain {
				epochs++
				if epochs == 2 {
					cancel()
				}
			}
		}))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if p == nil || p.Attack == nil || p.Attack.Model == nil {
		t.Fatal("partially trained proxy discarded")
	}
	if acc := p.EstimateAccuracy(locked, synth.Resyn2(), key); acc < 0 || acc > 1 {
		t.Fatalf("partial proxy unusable: accuracy = %v", acc)
	}
}

// TestHardenCtxDeadline exercises deadline-based cancellation: an already
// expired deadline returns DeadlineExceeded without doing work.
func TestHardenCtxDeadline(t *testing.T) {
	g := circuits.MustGenerate("c432")
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	h, err := SecureSynthesisCtx(ctx, g, 8, tinyConfig())
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want DeadlineExceeded ∧ ErrCanceled", err)
	}
	if h == nil || h.Locked == nil {
		t.Fatal("expired-deadline run must still return the locked instance")
	}
}
