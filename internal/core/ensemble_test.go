package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/cnf"
	"github.com/nyu-secml/almost/internal/lock"
)

// ensembleConfig is tinyConfig with a two-attack objective; SCOPE is
// cheap enough to run per candidate at 8 key bits.
func ensembleConfig() Config {
	cfg := tinyConfig()
	cfg.EvalAttacks = []string{"omla", "scope"}
	return cfg
}

func assertSameSearch(t *testing.T, a, b SearchResult, label string) {
	t.Helper()
	if !a.Recipe.Equal(b.Recipe) {
		t.Fatalf("%s: recipes diverge:\n  %s\n  %s", label, a.Recipe, b.Recipe)
	}
	if a.Accuracy != b.Accuracy {
		t.Fatalf("%s: accuracy differs: %v vs %v", label, a.Accuracy, b.Accuracy)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("%s: trace lengths differ: %d vs %d", label, len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i].Accuracy != b.Trace[i].Accuracy || !a.Trace[i].Recipe.Equal(b.Trace[i].Recipe) {
			t.Fatalf("%s: trace diverges at iteration %d", label, i)
		}
		for name, acc := range a.Trace[i].Accuracies {
			if b.Trace[i].Accuracies[name] != acc {
				t.Fatalf("%s: per-attack accuracy %q diverges at iteration %d", label, name, i)
			}
		}
	}
	for name, acc := range a.Accuracies {
		if b.Accuracies[name] != acc {
			t.Fatalf("%s: final per-attack accuracy %q differs", label, name)
		}
	}
}

// TestEnsembleSearchJobsInvariant is the acceptance criterion of the
// ensemble objective: with EvalAttacks = [omla, scope] the trajectory is
// bit-for-bit identical for Parallelism 1 and 8.
func TestEnsembleSearchJobsInvariant(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 8, rand.New(rand.NewSource(9)))
	cfg := ensembleConfig()
	proxy := trainProxyT(t, locked, ModelResyn2, cfg)

	cfg.Parallelism = 1
	serial := searchT(t, locked, key, proxy, cfg)
	cfg.Parallelism = 8
	parallel := searchT(t, locked, key, proxy, cfg)
	assertSameSearch(t, serial, parallel, "jobs=1 vs jobs=8")

	if len(serial.Attacks) != 2 || serial.Attacks[0] != "omla" || serial.Attacks[1] != "scope" {
		t.Fatalf("ensemble = %v, want [omla scope]", serial.Attacks)
	}
	for _, tp := range serial.Trace {
		if len(tp.Accuracies) != 2 {
			t.Fatalf("trace point lacks per-attack accuracies: %+v", tp)
		}
	}
}

// TestEnsembleSearchOrderInvariant: the trajectory must not depend on
// the order the caller lists the attacks in — EvalAttacks is
// canonicalized to registration order before reduction.
func TestEnsembleSearchOrderInvariant(t *testing.T) {
	if raceEnabled {
		t.Skip("pure determinism check; concurrency coverage is TestEnsembleSearchJobsInvariant")
	}
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 8, rand.New(rand.NewSource(10)))
	cfg := ensembleConfig()
	proxy := trainProxyT(t, locked, ModelResyn2, cfg)

	cfg.EvalAttacks = []string{"omla", "scope"}
	fwd := searchT(t, locked, key, proxy, cfg)
	cfg.EvalAttacks = []string{"scope", "omla"}
	rev := searchT(t, locked, key, proxy, cfg)
	assertSameSearch(t, fwd, rev, "attack-set order")
	if len(rev.Attacks) != 2 || rev.Attacks[0] != "omla" {
		t.Fatalf("canonical order not applied: %v", rev.Attacks)
	}
}

// TestEnsembleWorstHeadline pins the ReduceWorst semantics: the headline
// accuracy is the ensemble member deviating most from 0.5.
func TestEnsembleWorstHeadline(t *testing.T) {
	p := &searchProblem{reduce: ReduceWorst}
	if got := p.headline([]float64{0.52, 0.91}); got != 0.91 {
		t.Fatalf("worst headline = %v, want 0.91", got)
	}
	if got := p.headline([]float64{0.1, 0.6}); got != 0.1 {
		t.Fatalf("worst headline = %v, want 0.1", got)
	}
	if got := p.reduceEnergy([]float64{0.52, 0.91}); math.Abs(got-0.41) > 1e-12 {
		t.Fatalf("worst energy = %v, want 0.41", got)
	}
	pm := &searchProblem{reduce: ReduceMean}
	if got := pm.headline([]float64{0.4, 0.6}); got != 0.5 {
		t.Fatalf("mean headline = %v, want 0.5", got)
	}
	if got := pm.reduceEnergy([]float64{0.4, 0.8}); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("mean energy = %v, want 0.2", got)
	}
}

// TestEnsembleSingleAttackMatchesDefault: EvalAttacks = ["omla"] must be
// byte-identical to the default nil objective — the paper's Eq. 1.
func TestEnsembleSingleAttackMatchesDefault(t *testing.T) {
	if raceEnabled {
		t.Skip("pure determinism check; concurrency coverage is TestEnsembleSearchJobsInvariant")
	}
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 8, rand.New(rand.NewSource(11)))
	cfg := tinyConfig()
	proxy := trainProxyT(t, locked, ModelResyn2, cfg)

	def := searchT(t, locked, key, proxy, cfg)
	cfg.EvalAttacks = []string{"omla"}
	exp := searchT(t, locked, key, proxy, cfg)
	assertSameSearch(t, def, exp, "nil vs explicit [omla]")
}

// TestEnsembleEventsCarryAttackLabels: one PhaseSearch event per attack
// per iteration, labeled, with the matching per-attack accuracy.
func TestEnsembleEventsCarryAttackLabels(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 8, rand.New(rand.NewSource(12)))
	cfg := ensembleConfig()
	proxy := trainProxyT(t, locked, ModelResyn2, cfg)

	var events []Event
	res, err := SearchRecipeCtx(context.Background(), locked, key, proxy, cfg,
		WithObserver(func(ev Event) { events = append(events, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(res.Trace); len(events) != want {
		t.Fatalf("streamed %d events, want %d (2 per iteration)", len(events), want)
	}
	for i, ev := range events {
		wantAttack := res.Attacks[i%2]
		if ev.Attack != wantAttack {
			t.Fatalf("event %d attack = %q, want %q", i, ev.Attack, wantAttack)
		}
		if got := res.Trace[i/2].Accuracies[wantAttack]; ev.Accuracy != got {
			t.Fatalf("event %d accuracy %v != trace %v", i, ev.Accuracy, got)
		}
	}
}

// TestSecureSynthesisEnsembleAndMuxLocker runs the acceptance flow of
// the redesign end to end: HardenCtx-equivalent pipeline with an rll+mux
// locker chain and a two-attack ensemble objective, bit-for-bit
// identical across Parallelism 1 and 8, and functionally correct under
// the concatenated key.
func TestSecureSynthesisEnsembleAndMuxLocker(t *testing.T) {
	if raceEnabled {
		t.Skip("two full pipeline runs under -race")
	}
	g := circuits.MustGenerate("c432")
	cfg := ensembleConfig()
	cfg.Lockers = []string{"rll", "mux"}

	cfg.Parallelism = 1
	h1, err := SecureSynthesisCtx(context.Background(), g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	h8, err := SecureSynthesisCtx(context.Background(), g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, h1.Search, h8.Search, "pipeline jobs=1 vs jobs=8")
	if h1.Key.String() != h8.Key.String() {
		t.Fatal("locking diverged across Parallelism")
	}
	if len(h1.Lockers) != 2 || h1.Lockers[0] != "rll" || h1.Lockers[1] != "mux" {
		t.Fatalf("locker chain = %v", h1.Lockers)
	}
	if h1.Netlist.NumKeyInputs() != 8 {
		t.Fatalf("key inputs = %d", h1.Netlist.NumKeyInputs())
	}
	if ok, cex, _ := cnf.EquivalentUnderKey(g, h1.Netlist, h1.Key); !ok {
		t.Fatalf("mixed-locked hardened netlist broken under key (cex=%v)", cex)
	}
}

// TestValidateEnsembleFields covers the new Config surface.
func TestValidateEnsembleFields(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EvalAttacks = []string{"bogus"}
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown EvalAttacks entry validated")
	}
	cfg = DefaultConfig()
	cfg.Lockers = []string{"bogus"}
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown Lockers entry validated")
	}
	cfg = DefaultConfig()
	cfg.EnsembleReduce = EnsembleReduce(42)
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown EnsembleReduce validated")
	}
	cfg = DefaultConfig()
	cfg.EvalAttacks = []string{"omla", "scope", "redundancy"}
	cfg.Lockers = []string{"mux", "rll"}
	cfg.EnsembleReduce = ReduceMean
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid ensemble config rejected: %v", err)
	}
}
