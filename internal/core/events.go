package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"github.com/nyu-secml/almost/internal/attack/omla"
	"github.com/nyu-secml/almost/internal/attack/redundancy"
	"github.com/nyu-secml/almost/internal/attack/satattack"
	"github.com/nyu-secml/almost/internal/synth"
)

// Typed errors of the pipeline API. Cancellation errors returned by the
// Ctx entry points match both ErrCanceled and the context's own error
// (context.Canceled or context.DeadlineExceeded) under errors.Is.
var (
	// ErrCanceled marks an error caused by context cancellation. The
	// result returned alongside it holds the best work completed before
	// the cancellation.
	ErrCanceled = errors.New("run canceled")
	// ErrUnknownModel is returned for a ModelKind outside the three
	// Table I variants.
	ErrUnknownModel = errors.New("unknown proxy model kind")
	// ErrInvalidConfig wraps every Config.Validate failure.
	ErrInvalidConfig = errors.New("invalid config")
)

// canceled wraps a context error so it matches both ErrCanceled and the
// underlying context error under errors.Is.
func canceled(cause error) error {
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// Phase identifies the pipeline stage an Event was emitted from.
type Phase string

// Pipeline phases, in the order the end-to-end flow visits them.
const (
	// PhaseLock is RLL locking of the input design.
	PhaseLock Phase = "lock"
	// PhaseTrain is a proxy-model training epoch (Algorithm 1 line 8,
	// or plain GIN training for M^resyn2 / M^random).
	PhaseTrain Phase = "train"
	// PhaseAdvSearch is an SA iteration of an Eq. 3 adversarial-recipe
	// search inside Algorithm 1.
	PhaseAdvSearch Phase = "adversarial-search"
	// PhaseSearch is an SA iteration of the Eq. 1 recipe search — the
	// live Fig. 4 trace.
	PhaseSearch Phase = "recipe-search"
	// PhaseSynth is the final S_ALMOST synthesis of the hardened netlist.
	PhaseSynth Phase = "synthesize"
)

// Event is one streamed progress observation from a running pipeline.
// Fields beyond Phase are populated per phase: training phases fill the
// epoch fields, search phases fill the iteration/recipe fields, and
// PhaseSearch additionally reports the proxy-estimated attack accuracy
// (the y-axis of Fig. 4).
//
// Event has a stable JSON wire encoding — the almostd job server
// streams it to remote clients, so the field names below are a
// compatibility surface, not an implementation detail. Unset optional
// fields are omitted; recipes render as arrays of ABC-style step names
// (["balance","rewrite -z",...]); a non-finite float (the NaN that
// marks a not-yet-measured accuracy) is omitted on marshal and restored
// as NaN on unmarshal, so absence and 0.0 never conflate.
type Event struct {
	Phase Phase `json:"phase"`

	// Attack labels the event with the registered attack it concerns:
	// PhaseSearch events under an ensemble objective carry one event per
	// attack per iteration, and attacker adapters label their own
	// training epochs. Empty for events that concern no specific attack.
	Attack string `json:"attack,omitempty"`
	// Lockers names the locking-scheme chain being applied (PhaseLock).
	Lockers []string `json:"lockers,omitempty"`

	// Epoch / Epochs count completed training epochs (PhaseTrain).
	Epoch  int `json:"epoch,omitempty"`
	Epochs int `json:"epochs,omitempty"`
	// Samples is the training-set size at this epoch, growing at every
	// Eq. 6 augmentation (PhaseTrain).
	Samples int `json:"samples,omitempty"`

	// Iteration / Iterations count SA steps (PhaseSearch, PhaseAdvSearch).
	Iteration  int `json:"iteration,omitempty"`
	Iterations int `json:"iterations,omitempty"`
	// Energy and BestEnergy are the SA objective after the move and the
	// best seen so far (PhaseSearch: |Acc − 0.5|; PhaseAdvSearch:
	// negated model loss).
	Energy     float64 `json:"energy"`
	BestEnergy float64 `json:"best_energy"`
	// Accuracy is the proxy-estimated attack accuracy of the current
	// recipe (PhaseSearch only; 0.5 means random guessing).
	Accuracy float64 `json:"accuracy"`
	// Recipe is the SA chain's current state; Best is the best-so-far
	// recipe. Observers must not mutate them.
	Recipe synth.Recipe `json:"recipe,omitempty"`
	Best   synth.Recipe `json:"best,omitempty"`
}

// finitePtr returns &f for finite values and nil otherwise, so NaN/Inf
// (which encoding/json rejects) marshal as an omitted field.
func finitePtr(f float64) *float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil
	}
	return &f
}

// fromFinitePtr inverts finitePtr: an absent float unmarshals as NaN,
// keeping "not measured" distinct from an explicit 0.
func fromFinitePtr(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// MarshalJSON implements the wire contract above: finite floats are
// always emitted (including zeros), non-finite floats are omitted.
func (e Event) MarshalJSON() ([]byte, error) {
	type alias Event // drops the methods, keeping the field tags
	return json.Marshal(struct {
		alias
		Energy     *float64 `json:"energy,omitempty"`
		BestEnergy *float64 `json:"best_energy,omitempty"`
		Accuracy   *float64 `json:"accuracy,omitempty"`
	}{alias(e), finitePtr(e.Energy), finitePtr(e.BestEnergy), finitePtr(e.Accuracy)})
}

// UnmarshalJSON restores an omitted float field as NaN (see Event).
func (e *Event) UnmarshalJSON(data []byte) error {
	type alias Event
	aux := struct {
		*alias
		Energy     *float64 `json:"energy"`
		BestEnergy *float64 `json:"best_energy"`
		Accuracy   *float64 `json:"accuracy"`
	}{alias: (*alias)(e)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	e.Energy = fromFinitePtr(aux.Energy)
	e.BestEnergy = fromFinitePtr(aux.BestEnergy)
	e.Accuracy = fromFinitePtr(aux.Accuracy)
	return nil
}

// Observer consumes streamed Events. Observers run synchronously on the
// pipeline goroutine: keep them fast, and do not call back into the
// pipeline from inside one.
type Observer func(Event)

// Option configures a Ctx entry point (functional options).
type Option func(*runOptions)

type runOptions struct {
	observers []Observer
	// recipe is the defender's synthesis recipe, consumed by
	// self-referencing attackers (WithRecipe).
	recipe synth.Recipe
	// omlaCfg overrides the built-in OMLA attacker's training settings
	// (WithOMLAConfig).
	omlaCfg *omla.Config
	// redundancyCfg overrides the built-in redundancy attacker's effort
	// settings (WithRedundancyConfig).
	redundancyCfg *redundancy.Config
	// satCfg overrides the built-in SAT/AppSAT attackers' budgets
	// (WithSATAttackConfig).
	satCfg *satattack.Config
	// oracle supplies an explicit I/O oracle to oracle-guided attackers
	// (WithOracle); when absent they derive one from the true key.
	oracle satattack.Oracle
}

// WithObserver streams progress events to fn. Multiple observers may be
// registered; each receives every event in emission order.
func WithObserver(fn func(Event)) Option {
	return func(o *runOptions) {
		if fn != nil {
			o.observers = append(o.observers, Observer(fn))
		}
	}
}

// WithRecipe tells an Attacker which synthesis recipe the defender used
// (the §II threat model grants the attacker that knowledge).
// Self-referencing attacks such as OMLA re-synthesize their training
// data with it; attackers that don't need it ignore it.
func WithRecipe(r synth.Recipe) Option {
	return func(o *runOptions) { o.recipe = r }
}

// WithOMLAConfig overrides the built-in OMLA attacker's training
// settings for one AttackCtx call (e.g. to shrink epochs in quick
// experiment runs). Other attackers ignore it.
func WithOMLAConfig(cfg omla.Config) Option {
	return func(o *runOptions) { o.omlaCfg = &cfg }
}

// WithRedundancyConfig overrides the built-in redundancy attacker's
// effort settings for one AttackCtx call (e.g. to shrink fault sampling
// in quick experiment runs). Other attackers ignore it.
func WithRedundancyConfig(cfg redundancy.Config) Option {
	return func(o *runOptions) { o.redundancyCfg = &cfg }
}

// WithSATAttackConfig overrides the built-in "satattack"/"appsat"
// attackers' budgets and approximation schedule for one AttackCtx call.
// Other attackers ignore it.
func WithSATAttackConfig(cfg satattack.Config) Option {
	return func(o *runOptions) { o.satCfg = &cfg }
}

// WithOracle hands the oracle-guided attackers an explicit I/O oracle —
// the working unlocked chip of the SAT-attack threat model. Inside the
// ensemble objective the oracle is derived automatically from the true
// key; PredictKeyCtx (which has no true key) requires this option.
// Oracle-less attackers ignore it.
func WithOracle(o satattack.Oracle) Option {
	return func(ro *runOptions) { ro.oracle = o }
}

func buildOptions(opts []Option) *runOptions {
	o := &runOptions{}
	for _, opt := range opts {
		if opt != nil {
			opt(o)
		}
	}
	return o
}

func (o *runOptions) emit(ev Event) {
	for _, fn := range o.observers {
		fn(ev)
	}
}

// Validate checks that the configuration can drive the pipeline,
// returning an error wrapping ErrInvalidConfig with an actionable
// message otherwise. The zero-value Config is not usable; start from
// DefaultConfig or PaperConfig and adjust fields.
func (c Config) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s (the zero-value Config is not usable; start from DefaultConfig or PaperConfig)",
			ErrInvalidConfig, fmt.Sprintf(format, args...))
	}
	if c.RecipeLen <= 0 {
		return fail("Config.RecipeLen must be positive (got %d); the paper fixes L = %d", c.RecipeLen, synth.RecipeLength)
	}
	if c.SA.Iterations <= 0 {
		return fail("Config.SA.Iterations must be positive (got %d)", c.SA.Iterations)
	}
	if c.SA.InitTemp < 0 {
		return fail("Config.SA.InitTemp must be non-negative (got %g)", c.SA.InitTemp)
	}
	if c.SA.Acceptance <= 0 && c.SA.InitTemp > 0 {
		return fail("Config.SA.Acceptance must be positive when SA.InitTemp > 0 (got %g); the paper uses 1.8", c.SA.Acceptance)
	}
	if c.SAProposals < 0 {
		return fail("Config.SAProposals must be non-negative (got %d); 0 or 1 proposes one neighbor per iteration", c.SAProposals)
	}
	if c.AdvPeriod < 0 {
		return fail("Config.AdvPeriod must be non-negative (got %d); 0 disables adversarial augmentation", c.AdvPeriod)
	}
	if c.AdvPeriod > 0 {
		if c.AdvGates <= 0 {
			return fail("Config.AdvGates must be positive when AdvPeriod > 0 (got %d)", c.AdvGates)
		}
		if c.AdvSAIters <= 0 {
			return fail("Config.AdvSAIters must be positive when AdvPeriod > 0 (got %d)", c.AdvSAIters)
		}
	}
	if _, err := canonicalAttacks(c.EvalAttacks); err != nil {
		return err
	}
	if _, err := canonicalLockers(c.Lockers); err != nil {
		return err
	}
	if c.EnsembleReduce != ReduceWorst && c.EnsembleReduce != ReduceMean {
		return fail("Config.EnsembleReduce must be ReduceWorst or ReduceMean (got %d)", int(c.EnsembleReduce))
	}
	a := c.Attack
	if a.Hops <= 0 {
		return fail("Config.Attack.Hops must be positive (got %d)", a.Hops)
	}
	if a.Rounds <= 0 {
		return fail("Config.Attack.Rounds must be positive (got %d)", a.Rounds)
	}
	if a.GatesPerRound <= 0 {
		return fail("Config.Attack.GatesPerRound must be positive (got %d)", a.GatesPerRound)
	}
	if a.Epochs <= 0 {
		return fail("Config.Attack.Epochs must be positive (got %d)", a.Epochs)
	}
	if a.Hidden <= 0 {
		return fail("Config.Attack.Hidden must be positive (got %d)", a.Hidden)
	}
	if a.Layers <= 0 {
		return fail("Config.Attack.Layers must be positive (got %d)", a.Layers)
	}
	if a.LR <= 0 {
		return fail("Config.Attack.LR must be positive (got %g)", a.LR)
	}
	return nil
}
