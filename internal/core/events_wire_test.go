package core

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"github.com/nyu-secml/almost/internal/synth"
)

// TestEventWireGolden pins the JSON wire format of Event: the almostd
// server streams these bytes to remote clients, so a field rename or a
// recipe-encoding change is a protocol break, not a refactor.
func TestEventWireGolden(t *testing.T) {
	ev := Event{
		Phase:      PhaseSearch,
		Attack:     "omla",
		Iteration:  3,
		Iterations: 40,
		Energy:     0.125,
		BestEnergy: 0.0625,
		Accuracy:   0.625,
		Recipe:     synth.Recipe{synth.StepBalance, synth.StepRewriteZ},
		Best:       synth.Recipe{synth.StepBalance},
	}
	got, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"phase":"recipe-search","attack":"omla","iteration":3,"iterations":40,` +
		`"recipe":["balance","rewrite -z"],"best":["balance"],` +
		`"energy":0.125,"best_energy":0.0625,"accuracy":0.625}`
	if string(got) != want {
		t.Fatalf("Event wire format drifted:\n got  %s\n want %s", got, want)
	}

	lockEv := Event{Phase: PhaseLock, Lockers: []string{"rll", "mux"}}
	got, err = json.Marshal(lockEv)
	if err != nil {
		t.Fatal(err)
	}
	want = `{"phase":"lock","lockers":["rll","mux"],"energy":0,"best_energy":0,"accuracy":0}`
	if string(got) != want {
		t.Fatalf("lock Event wire format drifted:\n got  %s\n want %s", got, want)
	}
}

// TestEventRoundTrip checks marshal/unmarshal identity across the phase
// shapes the pipeline actually emits, including zero floats (which must
// stay distinguishable from omitted ones).
func TestEventRoundTrip(t *testing.T) {
	events := []Event{
		{},
		{Phase: PhaseLock, Lockers: []string{"rll"}},
		{Phase: PhaseTrain, Attack: "omla", Epoch: 2, Epochs: 30, Samples: 1200},
		{Phase: PhaseAdvSearch, Iteration: 5, Iterations: 12, Energy: -0.75, BestEnergy: -0.875},
		{Phase: PhaseSearch, Attack: "scope", Iteration: 0, Iterations: 40,
			Energy: 0, BestEnergy: 0, Accuracy: 0.5,
			Recipe: synth.Resyn2(), Best: synth.Resyn2()},
		{Phase: PhaseSynth, Accuracy: 0.51, Recipe: synth.Recipe{synth.StepResub}},
	}
	for _, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("marshal %+v: %v", ev, err)
		}
		var back Event
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !reflect.DeepEqual(ev, back) {
			t.Fatalf("round trip changed the event:\n in   %+v\n out  %+v\n wire %s", ev, back, data)
		}
	}
}

// TestEventNonFiniteFloats checks the NaN/Inf discipline: non-finite
// floats marshal as omitted fields (NaN would make json.Marshal fail)
// and come back as NaN, never as a silent 0.
func TestEventNonFiniteFloats(t *testing.T) {
	ev := Event{Phase: PhaseSearch, Accuracy: math.NaN(), Energy: math.Inf(1), BestEnergy: 0.25}
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatalf("marshal with NaN/Inf: %v", err)
	}
	want := `{"phase":"recipe-search","best_energy":0.25}`
	if string(data) != want {
		t.Fatalf("non-finite floats not omitted:\n got  %s\n want %s", data, want)
	}
	var back Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.Accuracy) || !math.IsNaN(back.Energy) {
		t.Fatalf("omitted floats should unmarshal as NaN, got acc=%v energy=%v", back.Accuracy, back.Energy)
	}
	if back.BestEnergy != 0.25 {
		t.Fatalf("finite float lost in round trip: %v", back.BestEnergy)
	}
}
