package core

import (
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/engine"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/synth"
)

// withPlainEngines disables the engine's incremental prefix-reuse path
// for the duration of fn, restoring the production default afterwards.
// The determinism suites use it to prove search trajectories are
// identical with and without incremental evaluation.
func withPlainEngines(fn func()) {
	saved := engineOpts
	engineOpts = []engine.Option{engine.WithoutPrefixReuse()}
	defer func() { engineOpts = saved }()
	fn()
}

// identityRecipes is a prefix-sharing pair plus the baseline: the shapes
// the annealer actually produces, so the chained path exercises both a
// reused prefix and a divergence point on every circuit.
func identityRecipes() []synth.Recipe {
	base := synth.Resyn2()
	mut := base.Clone()
	mut[len(mut)/2] = synth.StepBalance
	return []synth.Recipe{base, mut, {synth.StepRewrite, synth.StepResub, synth.StepBalance}}
}

// TestIncrementalDigestIdentityAllBuiltins is the satellite bit-identity
// sweep: on every built-in benchmark, locked and unlocked, synthesizing
// through the incremental prefix-chain scratch must produce netlists
// structurally identical (digest-for-digest) to the plain run-from-base
// path.
func TestIncrementalDigestIdentityAllBuiltins(t *testing.T) {
	names := circuits.Names()
	if testing.Short() {
		names = names[:4]
	}
	rs := identityRecipes()
	for _, name := range names {
		for _, locked := range []bool{false, true} {
			g := circuits.MustGenerate(name)
			if locked {
				g, _ = lock.Lock(g, 8, rand.New(rand.NewSource(41)))
			}
			chained := engine.NewScratch(g, true)
			plain := engine.NewScratch(g, false)
			for ri, r := range rs {
				nc := chained.Synth(r)
				np := plain.Synth(r)
				if nc.StructuralDigest() != np.StructuralDigest() {
					t.Fatalf("%s locked=%v recipe %d: incremental and full paths diverged", name, locked, ri)
				}
				chained.Release(nc)
				plain.Release(np)
			}
		}
	}
}

// TestSearchTrajectoryIdentityWithoutPrefixReuse wires incremental-vs-
// full identity into the search determinism suite: the complete
// SearchRecipe trajectory (every iteration's recipe and accuracy) must
// be bit-for-bit identical whether candidate evaluation reuses recipe
// prefixes against the persistent base or re-synthesizes from scratch.
func TestSearchTrajectoryIdentityWithoutPrefixReuse(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 8, rand.New(rand.NewSource(47)))
	cfg := tinyConfig()
	proxy := trainProxyT(t, locked, ModelResyn2, cfg)

	incr := searchT(t, locked, key, proxy, cfg)
	var full SearchResult
	withPlainEngines(func() {
		full = searchT(t, locked, key, proxy, cfg)
	})

	if !incr.Recipe.Equal(full.Recipe) {
		t.Fatalf("incremental and full searches found different recipes:\n  %s\n  %s",
			incr.Recipe, full.Recipe)
	}
	if incr.Accuracy != full.Accuracy {
		t.Fatalf("accuracy differs: %v vs %v", incr.Accuracy, full.Accuracy)
	}
	if len(incr.Trace) != len(full.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(incr.Trace), len(full.Trace))
	}
	for i := range incr.Trace {
		if incr.Trace[i].Accuracy != full.Trace[i].Accuracy ||
			!incr.Trace[i].Recipe.Equal(full.Trace[i].Recipe) {
			t.Fatalf("trajectory diverges at iteration %d", i)
		}
	}
}

// TestPipelineIdentityWithoutPrefixReuse extends the invariance to the
// full pipeline, adversarial Eq. 3 searches included.
func TestPipelineIdentityWithoutPrefixReuse(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("full-pipeline identity check in -short mode or under -race")
	}
	g := circuits.MustGenerate("c432")
	cfg := tinyConfig()
	incr := hardenT(t, g, 8, cfg)
	var full *Hardened
	withPlainEngines(func() {
		full = hardenT(t, g, 8, cfg)
	})
	if !incr.Recipe.Equal(full.Recipe) {
		t.Fatalf("incremental and full pipelines diverged:\n  %s\n  %s", incr.Recipe, full.Recipe)
	}
	if incr.Search.Accuracy != full.Search.Accuracy {
		t.Fatalf("accuracy differs: %v vs %v", incr.Search.Accuracy, full.Search.Accuracy)
	}
	if incr.Netlist.StructuralDigest() != full.Netlist.StructuralDigest() {
		t.Fatal("hardened netlists differ structurally between incremental and full paths")
	}
}
