//go:build !race

package core

// raceEnabled mirrors race_test.go for regular builds.
const raceEnabled = false
