//go:build race

package core

// raceEnabled lets multi-minute integration tests stand down under the
// race detector's ~5-10x slowdown; concurrency coverage is carried by
// the faster jobs-invariance and engine tests.
const raceEnabled = true
