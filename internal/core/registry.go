package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/attack/omla"
	"github.com/nyu-secml/almost/internal/attack/redundancy"
	"github.com/nyu-secml/almost/internal/attack/satattack"
	"github.com/nyu-secml/almost/internal/attack/scope"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/synth"
)

// Attacker is a pluggable oracle-less attack: given a locked netlist and
// the true key, it reports its key-recovery accuracy (0.5 = random
// guessing, the defender's target). Implementations must be safe for
// concurrent calls and deterministic in their inputs — the ensemble
// objective evaluates attackers inside the concurrent recipe-evaluation
// engine and promises jobs-invariant search trajectories.
//
// Options carry cross-cutting attack context: WithRecipe names the
// defender's synthesis recipe (the §II threat model gives the attacker
// that knowledge; self-referencing attacks like OMLA need it),
// WithOMLAConfig overrides the built-in OMLA attacker's training
// settings, and WithObserver streams progress events (the built-in OMLA
// attacker labels its PhaseTrain events with Attack: "omla").
// Implementations ignore options they do not understand.
type Attacker interface {
	// Name is the registry key, e.g. "omla". Lowercase by convention.
	Name() string
	// AttackCtx runs the attack on netlist and scores the predicted key
	// against truth. The context is honored at the implementation's
	// natural checkpoints; on cancellation the error matches both
	// ErrCanceled and ctx.Err().
	AttackCtx(ctx context.Context, netlist *aig.AIG, truth lock.Key, opts ...Option) (float64, error)
}

// KeyPredictor is an optional Attacker upgrade for attacks that can
// report the predicted key itself, not only its accuracy. The CLI's
// attack command uses it to print the guessed key. All built-in
// attackers implement it.
type KeyPredictor interface {
	PredictKeyCtx(ctx context.Context, netlist *aig.AIG, opts ...Option) (lock.Key, error)
}

// Locker is a pluggable logic-locking scheme: it inserts keySize key
// gates into g and returns the locked netlist with the correct key.
// Key inputs must follow the "keyinput%d" naming convention, numbered
// after any key inputs already present, so lockers compose into
// mixed-scheme chains (Config.Lockers). Implementations must be
// deterministic in (g, keySize, rng).
type Locker interface {
	// Name is the registry key, e.g. "rll". Lowercase by convention.
	Name() string
	// LockCtx locks g with keySize key gates. The returned key is
	// aligned with the key inputs the call created, in creation order.
	LockCtx(ctx context.Context, g *aig.AIG, keySize int, rng *rand.Rand) (*aig.AIG, lock.Key, error)
}

// registry is a concurrency-safe name -> value table that remembers
// registration order; the order is the canonical reduction order of the
// ensemble objective and the display order of the CLI listings.
type registry[T any] struct {
	mu    sync.RWMutex
	kind  string
	items map[string]T
	order []string
}

func (r *registry[T]) register(name string, v T) error {
	if name == "" {
		return fmt.Errorf("core: cannot register %s with an empty name", r.kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.items == nil {
		r.items = make(map[string]T)
	}
	if _, dup := r.items[name]; dup {
		return fmt.Errorf("core: %s %q is already registered", r.kind, name)
	}
	r.items[name] = v
	r.order = append(r.order, name)
	return nil
}

func (r *registry[T]) lookup(name string) (T, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.items[name]
	return v, ok
}

func (r *registry[T]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// seq returns the registration index of name (for canonical ordering);
// unregistered names sort last.
func (r *registry[T]) seq(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i, n := range r.order {
		if n == name {
			return i
		}
	}
	return len(r.order)
}

var (
	attackers = &registry[Attacker]{kind: "attacker"}
	lockers   = &registry[Locker]{kind: "locker"}
)

// RegisterAttacker adds an attack to the registry. Registration is safe
// for concurrent use; duplicate or empty names are rejected. Register
// third-party attacks before building Configs that name them in
// EvalAttacks.
func RegisterAttacker(a Attacker) error {
	if a == nil {
		return fmt.Errorf("core: cannot register a nil attacker")
	}
	return attackers.register(a.Name(), a)
}

// RegisterLocker adds a locking scheme to the registry. Registration is
// safe for concurrent use; duplicate or empty names are rejected.
func RegisterLocker(l Locker) error {
	if l == nil {
		return fmt.Errorf("core: cannot register a nil locker")
	}
	return lockers.register(l.Name(), l)
}

// Attackers lists the registered attack names in registration order
// (built-ins first: omla, scope, redundancy).
func Attackers() []string { return attackers.names() }

// Lockers lists the registered locking-scheme names in registration
// order (built-ins first: rll, mux).
func Lockers() []string { return lockers.names() }

// LookupAttacker resolves a registered attack by name.
func LookupAttacker(name string) (Attacker, bool) { return attackers.lookup(name) }

// LookupLocker resolves a registered locking scheme by name.
func LookupLocker(name string) (Locker, bool) { return lockers.lookup(name) }

// canceledIfCtx wraps err with ErrCanceled only when the context is
// actually done, so non-cancellation failures surfaced by an attacker
// are not mislabeled as cancellations.
func canceledIfCtx(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		return canceled(err)
	}
	return err
}

// --- built-in attackers ------------------------------------------------

// omlaAttacker adapts the OMLA GNN attack (the paper's primary
// adversary) to the Attacker interface. Each AttackCtx call trains a
// fresh attacker against the netlist under attack — the independent,
// full-knowledge evaluation of Table II. The training recipe comes from
// WithRecipe (default resyn2); training settings from WithOMLAConfig
// (default omla.DefaultConfig).
type omlaAttacker struct{}

func (omlaAttacker) Name() string { return "omla" }

// settings resolves the training configuration, defender recipe, and
// epoch observer from the call options.
func (omlaAttacker) settings(opts []Option) (omla.Config, synth.Recipe, omla.EpochFunc) {
	ro := buildOptions(opts)
	cfg := omla.DefaultConfig()
	if ro.omlaCfg != nil {
		cfg = *ro.omlaCfg
	}
	recipe := ro.recipe
	if recipe == nil {
		recipe = synth.Resyn2()
	}
	var onEpoch omla.EpochFunc
	if len(ro.observers) > 0 {
		onEpoch = func(epoch, epochs int) {
			ro.emit(Event{Phase: PhaseTrain, Attack: "omla", Epoch: epoch, Epochs: epochs,
				Samples: cfg.Rounds * cfg.GatesPerRound})
		}
	}
	return cfg, recipe, onEpoch
}

func (a omlaAttacker) AttackCtx(ctx context.Context, netlist *aig.AIG, truth lock.Key, opts ...Option) (float64, error) {
	cfg, recipe, onEpoch := a.settings(opts)
	acc, err := omla.AccuracyCtx(ctx, netlist, recipe, truth, cfg, onEpoch)
	if err != nil {
		return 0, canceledIfCtx(ctx, err)
	}
	return acc, nil
}

func (a omlaAttacker) PredictKeyCtx(ctx context.Context, netlist *aig.AIG, opts ...Option) (lock.Key, error) {
	cfg, recipe, onEpoch := a.settings(opts)
	atk, err := omla.TrainCtx(ctx, netlist, recipe, cfg, onEpoch)
	if err != nil {
		return nil, canceledIfCtx(ctx, err)
	}
	return atk.PredictKey(netlist), nil
}

// scopeAttacker adapts the SCOPE constant-propagation attack.
type scopeAttacker struct{}

func (scopeAttacker) Name() string { return "scope" }

func (scopeAttacker) AttackCtx(ctx context.Context, netlist *aig.AIG, truth lock.Key, opts ...Option) (float64, error) {
	acc, err := scope.AccuracyCtx(ctx, netlist, truth, scope.DefaultConfig())
	return acc, canceledIfCtx(ctx, err)
}

func (scopeAttacker) PredictKeyCtx(ctx context.Context, netlist *aig.AIG, opts ...Option) (lock.Key, error) {
	key, err := scope.PredictKeyCtx(ctx, netlist, scope.DefaultConfig())
	return key, canceledIfCtx(ctx, err)
}

// redundancyAttacker adapts the redundancy-identification attack. The
// effort settings come from WithRedundancyConfig (default
// redundancy.DefaultConfig).
type redundancyAttacker struct{}

func (redundancyAttacker) Name() string { return "redundancy" }

func (redundancyAttacker) config(opts []Option) redundancy.Config {
	ro := buildOptions(opts)
	if ro.redundancyCfg != nil {
		return *ro.redundancyCfg
	}
	return redundancy.DefaultConfig()
}

func (a redundancyAttacker) AttackCtx(ctx context.Context, netlist *aig.AIG, truth lock.Key, opts ...Option) (float64, error) {
	acc, err := redundancy.AccuracyCtx(ctx, netlist, truth, a.config(opts))
	return acc, canceledIfCtx(ctx, err)
}

func (a redundancyAttacker) PredictKeyCtx(ctx context.Context, netlist *aig.AIG, opts ...Option) (lock.Key, error) {
	key, err := redundancy.PredictKeyCtx(ctx, netlist, a.config(opts))
	return key, canceledIfCtx(ctx, err)
}

// satFamilyAttacker adapts the oracle-guided SAT attack (and its AppSAT
// approximate variant) to the Attacker interface. These attackers model
// a strictly stronger adversary than the paper's oracle-less ones: they
// hold a working unlocked chip. Inside AttackCtx that oracle is derived
// from the true key the ensemble objective already supplies (the locked
// netlist under the correct key IS the working chip), so "satattack" and
// "appsat" can appear in Config.EvalAttacks with no extra plumbing.
// PredictKeyCtx has no true key and requires WithOracle.
//
// Budget exhaustion (MaxDIPs/SolveConflicts) is not an error: the
// attacker scores its best-so-far key, which is exactly the defender's
// question — how much key material does a budgeted SAT adversary pry
// out? Config comes from WithSATAttackConfig (default DefaultConfig).
type satFamilyAttacker struct {
	name        string
	approximate bool
}

func (a satFamilyAttacker) Name() string { return a.name }

func (a satFamilyAttacker) run(ctx context.Context, netlist *aig.AIG, oracle satattack.Oracle, opts []Option) (satattack.Result, error) {
	ro := buildOptions(opts)
	cfg := satattack.DefaultConfig()
	if ro.satCfg != nil {
		cfg = *ro.satCfg
	}
	if a.approximate {
		return satattack.AppSATCtx(ctx, netlist, oracle, cfg)
	}
	return satattack.AttackCtx(ctx, netlist, oracle, cfg)
}

func (a satFamilyAttacker) AttackCtx(ctx context.Context, netlist *aig.AIG, truth lock.Key, opts ...Option) (float64, error) {
	oracle := buildOptions(opts).oracle
	if oracle == nil {
		unlocked, err := lock.ApplyKey(netlist, truth)
		if err != nil {
			return 0, err
		}
		oracle = satattack.SimOracle(unlocked)
	}
	res, err := a.run(ctx, netlist, oracle, opts)
	if err != nil {
		return lock.Accuracy(truth, res.Key), canceledIfCtx(ctx, err)
	}
	return lock.Accuracy(truth, res.Key), nil
}

func (a satFamilyAttacker) PredictKeyCtx(ctx context.Context, netlist *aig.AIG, opts ...Option) (lock.Key, error) {
	oracle := buildOptions(opts).oracle
	if oracle == nil {
		return nil, fmt.Errorf("core: the %s attacker needs an I/O oracle to predict a key: pass WithOracle", a.name)
	}
	res, err := a.run(ctx, netlist, oracle, opts)
	if err != nil {
		return res.Key, canceledIfCtx(ctx, err)
	}
	return res.Key, nil
}

// --- built-in lockers --------------------------------------------------

// rllLocker is plain random logic locking (XOR/XNOR key gates), the
// paper's baseline scheme. Locking is cheap relative to every other
// pipeline stage, so the built-in lockers run to completion even on a
// canceled context — SecureSynthesisCtx relies on that to hand back the
// locked instance alongside the cancellation error.
type rllLocker struct{}

func (rllLocker) Name() string { return "rll" }

func (rllLocker) LockCtx(_ context.Context, g *aig.AIG, keySize int, rng *rand.Rand) (*aig.AIG, lock.Key, error) {
	locked, key := lock.Lock(g, keySize, rng)
	return locked, key, nil
}

// muxLocker is MUX-based locking: each key gate multiplexes the true
// signal against a decoy drawn from elsewhere in the circuit. Like
// rllLocker it runs to completion regardless of the context.
type muxLocker struct{}

func (muxLocker) Name() string { return "mux" }

func (muxLocker) LockCtx(_ context.Context, g *aig.AIG, keySize int, rng *rand.Rand) (*aig.AIG, lock.Key, error) {
	locked, key := lock.LockMux(g, keySize, rng)
	return locked, key, nil
}

// antiSATLocker is the anti-SAT/SARLock point-function scheme: it
// corrupts one input pattern per wrong key, inflating the oracle-guided
// SAT attack's DIP count exponentially while leaving oracle-less attack
// surfaces essentially unchanged. Chain it after a functional scheme
// ("rll,antisat") — by itself it protects almost nothing functionally.
type antiSATLocker struct{}

func (antiSATLocker) Name() string { return "antisat" }

func (antiSATLocker) LockCtx(_ context.Context, g *aig.AIG, keySize int, rng *rand.Rand) (*aig.AIG, lock.Key, error) {
	locked, key := lock.LockAntiSAT(g, keySize, rng)
	return locked, key, nil
}

func init() {
	// Built-in registration order defines the canonical ensemble
	// reduction order and the CLI listing order.
	for _, a := range []Attacker{
		omlaAttacker{}, scopeAttacker{}, redundancyAttacker{},
		satFamilyAttacker{name: "satattack"},
		satFamilyAttacker{name: "appsat", approximate: true},
	} {
		if err := RegisterAttacker(a); err != nil {
			panic(err)
		}
	}
	for _, l := range []Locker{rllLocker{}, muxLocker{}, antiSATLocker{}} {
		if err := RegisterLocker(l); err != nil {
			panic(err)
		}
	}
}

// canonicalAttacks normalizes an EvalAttacks list: an empty list means
// the paper's OMLA-only objective, duplicates and unknown names are
// rejected, and the result is sorted by registration order so the
// ensemble reduction — and therefore the whole search trajectory — is
// independent of the order the caller listed the attacks in.
func canonicalAttacks(names []string) ([]string, error) {
	if len(names) == 0 {
		return []string{"omla"}, nil
	}
	out := append([]string(nil), names...)
	seen := make(map[string]bool, len(out))
	for _, n := range out {
		if seen[n] {
			return nil, fmt.Errorf("%w: Config.EvalAttacks lists %q twice", ErrInvalidConfig, n)
		}
		seen[n] = true
		if _, ok := LookupAttacker(n); !ok {
			return nil, fmt.Errorf("%w: Config.EvalAttacks names unknown attack %q (registered: %s)",
				ErrInvalidConfig, n, strings.Join(Attackers(), ", "))
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return attackers.seq(out[i]) < attackers.seq(out[j])
	})
	return out, nil
}

// canonicalLockers normalizes a Lockers list: an empty list means plain
// RLL; duplicates are allowed (locking twice with the same scheme is
// meaningful), unknown names are rejected, and the caller's order is
// preserved — lockers chain in the order given.
func canonicalLockers(names []string) ([]string, error) {
	if len(names) == 0 {
		return []string{"rll"}, nil
	}
	for _, n := range names {
		if _, ok := LookupLocker(n); !ok {
			return nil, fmt.Errorf("%w: Config.Lockers names unknown locker %q (registered: %s)",
				ErrInvalidConfig, n, strings.Join(Lockers(), ", "))
		}
	}
	return append([]string(nil), names...), nil
}

// LockWithCtx locks g by chaining the named registered schemes (nil or
// empty means plain RLL). keySize is split evenly across the chain, the
// first scheme absorbing the remainder; the returned key concatenates
// the per-scheme keys in chain order, which matches key-input creation
// order. The shared rng makes the whole chain deterministic in its seed.
func LockWithCtx(ctx context.Context, g *aig.AIG, keySize int, names []string, rng *rand.Rand) (*aig.AIG, lock.Key, error) {
	chain, err := canonicalLockers(names)
	if err != nil {
		return nil, nil, err
	}
	shares := make([]int, len(chain))
	per := keySize / len(chain)
	for i := range shares {
		shares[i] = per
	}
	shares[0] += keySize - per*len(chain)
	locked := g
	var key lock.Key
	for i, name := range chain {
		lk, _ := LookupLocker(name) // canonicalLockers verified the name
		next, k, err := lk.LockCtx(ctx, locked, shares[i], rng)
		if err != nil {
			return nil, nil, err
		}
		locked, key = next, append(key, k...)
	}
	return locked, key, nil
}
