package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/attack/satattack"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/cnf"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/synth"
)

// fakeAttacker is a registrable test double with a configurable name.
type fakeAttacker struct {
	name string
	acc  float64
}

func (f fakeAttacker) Name() string { return f.name }
func (f fakeAttacker) AttackCtx(ctx context.Context, _ *aig.AIG, _ lock.Key, _ ...Option) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, canceled(err)
	}
	return f.acc, nil
}

// fakeLocker delegates to RLL under a test-local name.
type fakeLocker struct{ name string }

func (f fakeLocker) Name() string { return f.name }
func (f fakeLocker) LockCtx(_ context.Context, g *aig.AIG, keySize int, rng *rand.Rand) (*aig.AIG, lock.Key, error) {
	locked, key := lock.Lock(g, keySize, rng)
	return locked, key, nil
}

func TestRegistryBuiltins(t *testing.T) {
	atks := Attackers()
	if len(atks) < 5 {
		t.Fatalf("Attackers() = %v, want at least the five built-ins", atks)
	}
	// Registration order starts with the built-ins, which is the
	// canonical ensemble reduction order: the paper's oracle-less
	// attacks first, then the oracle-guided SAT family.
	if atks[0] != "omla" || atks[1] != "scope" || atks[2] != "redundancy" ||
		atks[3] != "satattack" || atks[4] != "appsat" {
		t.Fatalf("built-in attacker order drifted: %v", atks)
	}
	lks := Lockers()
	if len(lks) < 3 {
		t.Fatalf("Lockers() = %v, want at least rll, mux, antisat", lks)
	}
	if lks[0] != "rll" || lks[1] != "mux" || lks[2] != "antisat" {
		t.Fatalf("built-in locker order drifted: %v", lks)
	}
	for _, n := range atks {
		if _, ok := LookupAttacker(n); !ok {
			t.Fatalf("listed attacker %q does not resolve", n)
		}
	}
	for _, n := range lks {
		if _, ok := LookupLocker(n); !ok {
			t.Fatalf("listed locker %q does not resolve", n)
		}
	}
	if _, ok := LookupAttacker("no-such-attack"); ok {
		t.Fatal("unknown attacker resolved")
	}
}

func TestRegistryRejectsDuplicatesAndEmptyNames(t *testing.T) {
	if err := RegisterAttacker(fakeAttacker{name: "omla"}); err == nil {
		t.Fatal("duplicate attacker name accepted")
	}
	if err := RegisterAttacker(fakeAttacker{name: ""}); err == nil {
		t.Fatal("empty attacker name accepted")
	}
	if err := RegisterAttacker(nil); err == nil {
		t.Fatal("nil attacker accepted")
	}
	if err := RegisterLocker(fakeLocker{name: "rll"}); err == nil {
		t.Fatal("duplicate locker name accepted")
	}
	if err := RegisterLocker(nil); err == nil {
		t.Fatal("nil locker accepted")
	}
}

// TestRegistryConcurrentRegisterLookup hammers the registry from many
// goroutines; run with -race this is the concurrency-safety check of the
// registration API.
func TestRegistryConcurrentRegisterLookup(t *testing.T) {
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("conc-attack-%d", i)
			if err := RegisterAttacker(fakeAttacker{name: name, acc: 0.5}); err != nil {
				t.Errorf("register %s: %v", name, err)
			}
			for j := 0; j < 50; j++ {
				Attackers()
				LookupAttacker("omla")
				LookupAttacker(name)
				Lockers()
				LookupLocker("mux")
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if _, ok := LookupAttacker(fmt.Sprintf("conc-attack-%d", i)); !ok {
			t.Fatalf("concurrently registered attacker %d lost", i)
		}
	}
}

func TestThirdPartyAttackerJoinsEnsemble(t *testing.T) {
	name := "third-party-const"
	if err := RegisterAttacker(fakeAttacker{name: name, acc: 0.75}); err != nil {
		t.Fatal(err)
	}
	locked, key := lockedC432(t)
	cfg := tinyConfig()
	cfg.EvalAttacks = []string{name, "omla"}
	proxy, err := TrainProxyCtx(context.Background(), locked, ModelResyn2, synth.Resyn2(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SearchRecipeCtx(context.Background(), locked, key, proxy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical order puts the built-in first (registered in init),
	// the third-party attack after it.
	if len(res.Attacks) != 2 || res.Attacks[0] != "omla" || res.Attacks[1] != name {
		t.Fatalf("canonical ensemble order = %v", res.Attacks)
	}
	if got := res.Accuracies[name]; got != 0.75 {
		t.Fatalf("third-party accuracy = %v, want 0.75", got)
	}
}

// failingAttacker always errors with an uncanceled context — the
// third-party failure mode the ensemble search must surface instead of
// annealing to a meaningless NaN result.
type failingAttacker struct{ name string }

func (f failingAttacker) Name() string { return f.name }
func (f failingAttacker) AttackCtx(context.Context, *aig.AIG, lock.Key, ...Option) (float64, error) {
	return 0, errors.New("model file missing")
}

func TestEnsembleSurfacesAttackerFailure(t *testing.T) {
	name := "third-party-broken"
	if err := RegisterAttacker(failingAttacker{name: name}); err != nil {
		t.Fatal(err)
	}
	locked, key := lockedC432(t)
	cfg := tinyConfig()
	cfg.EvalAttacks = []string{"omla", name}
	proxy, err := TrainProxyCtx(context.Background(), locked, ModelResyn2, synth.Resyn2(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = SearchRecipeCtx(context.Background(), locked, key, proxy, cfg)
	if err == nil {
		t.Fatal("search with a failing ensemble attacker returned err = nil")
	}
	if !strings.Contains(err.Error(), name) || !strings.Contains(err.Error(), "model file missing") {
		t.Fatalf("failure not attributed: %v", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("non-cancellation failure mislabeled as canceled: %v", err)
	}
}

func TestCanonicalAttacksValidation(t *testing.T) {
	if _, err := canonicalAttacks([]string{"omla", "omla"}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("duplicate attack: err = %v", err)
	}
	if _, err := canonicalAttacks([]string{"nope"}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("unknown attack: err = %v", err)
	} else if !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown-attack message not actionable: %v", err)
	}
	got, err := canonicalAttacks(nil)
	if err != nil || len(got) != 1 || got[0] != "omla" {
		t.Fatalf("default objective = %v, %v", got, err)
	}
	// Canonicalization sorts into registration order.
	got, err = canonicalAttacks([]string{"redundancy", "omla", "scope"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "omla" || got[1] != "scope" || got[2] != "redundancy" {
		t.Fatalf("canonical order = %v", got)
	}
}

func TestLockWithCtxChainsSchemes(t *testing.T) {
	g := circuits.MustGenerate("c880")
	rng := rand.New(rand.NewSource(7))
	locked, key, err := LockWithCtx(context.Background(), g, 17, []string{"rll", "mux"}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 17 split across 2 schemes: rll gets 9 (8 + remainder), mux 8.
	if len(key) != 17 || locked.NumKeyInputs() != 17 {
		t.Fatalf("key = %d bits, %d key inputs; want 17", len(key), locked.NumKeyInputs())
	}
	if ok, cex, _ := cnf.EquivalentUnderKey(g, locked, key); !ok {
		t.Fatalf("rll+mux chain broken under concatenated key (cex=%v)", cex)
	}
	if _, _, err := LockWithCtx(context.Background(), g, 8, []string{"bogus"}, rng); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("unknown locker: err = %v", err)
	}
}

func TestBuiltinAttackersHonorContext(t *testing.T) {
	locked, key := lockedC432(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"omla", "scope", "redundancy", "satattack", "appsat"} {
		atk, ok := LookupAttacker(name)
		if !ok {
			t.Fatalf("built-in %q missing", name)
		}
		_, err := atk.AttackCtx(ctx, locked, key)
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want ErrCanceled ∧ context.Canceled", name, err)
		}
	}
}

// TestBuiltinAttackersPredictKeys checks the optional KeyPredictor
// upgrade every built-in ships: predicted keys have one bit per key
// input.
func TestBuiltinAttackersPredictKeys(t *testing.T) {
	locked, key := lockedC432(t)
	for _, name := range []string{"scope", "redundancy"} {
		atk, _ := LookupAttacker(name)
		kp, ok := atk.(KeyPredictor)
		if !ok {
			t.Fatalf("built-in %q lacks KeyPredictor", name)
		}
		guess, err := kp.PredictKeyCtx(context.Background(), locked)
		if err != nil {
			t.Fatal(err)
		}
		if len(guess) != len(key) {
			t.Fatalf("%s predicted %d bits, want %d", name, len(guess), len(key))
		}
	}
	// The oracle-guided predictors need a working chip: without
	// WithOracle they must refuse (there is no true key to derive one
	// from), with it they predict a full-width key.
	unlocked, err := lock.ApplyKey(locked, key)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"satattack", "appsat"} {
		atk, _ := LookupAttacker(name)
		kp, ok := atk.(KeyPredictor)
		if !ok {
			t.Fatalf("built-in %q lacks KeyPredictor", name)
		}
		if _, err := kp.PredictKeyCtx(context.Background(), locked); err == nil {
			t.Fatalf("%s predicted a key without an oracle", name)
		}
		guess, err := kp.PredictKeyCtx(context.Background(), locked,
			WithOracle(satattack.SimOracle(unlocked)))
		if err != nil {
			t.Fatal(err)
		}
		if len(guess) != len(key) {
			t.Fatalf("%s predicted %d bits, want %d", name, len(guess), len(key))
		}
	}
}
