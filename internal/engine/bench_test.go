package engine

import (
	"testing"

	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/synth"
)

// BenchmarkEngineCacheHit measures the steady-state cost of the annealer
// revisiting a memoized recipe — the "engine batch" hit row of
// BENCH_pr5.json. Expected allocs/op: 0.
func BenchmarkEngineCacheHit(b *testing.B) {
	base := circuits.MustGenerate("c432")
	e := New(base, 1, sizeEval)
	defer e.Close()
	r := synth.Resyn2()
	e.Evaluate(r) // populate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Evaluate(r)
	}
}

// BenchmarkEngineBatchEval measures a cold batch of 8 distinct recipes
// through a fresh evaluator (worker spin-up, synthesis, settle) — the
// "engine batch" miss row of BENCH_pr5.json; dominated by the synthesis
// allocations the arena removes.
func BenchmarkEngineBatchEval(b *testing.B) {
	base := circuits.MustGenerate("c432")
	rs := recipes(8, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(base, 1, sizeEval)
		e.EvaluateBatch(rs)
		e.Close()
	}
}
