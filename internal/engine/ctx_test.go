package engine

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/synth"
)

func TestEvaluateBatchCtxPreCanceledRunsNothing(t *testing.T) {
	base := circuits.MustGenerate("c432")
	var evals int64
	e := New(base, 2, func(g *aig.AIG, s *Scratch, r synth.Recipe) float64 {
		atomic.AddInt64(&evals, 1)
		return sizeEval(g, s, r)
	})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := e.EvaluateBatchCtx(ctx, recipes(4, 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if out != nil {
		t.Fatalf("canceled batch returned scores %v", out)
	}
	if n := atomic.LoadInt64(&evals); n != 0 {
		t.Fatalf("pre-canceled batch ran %d evaluations", n)
	}
}

func TestEvaluateBatchCtxCancelMidBatchKeepsCompletedWork(t *testing.T) {
	base := circuits.MustGenerate("c432")
	ctx, cancel := context.WithCancel(context.Background())
	var evals int64
	// One worker, slow evaluations: cancel fires during the first job, so
	// later jobs must never start.
	e := New(base, 1, func(g *aig.AIG, s *Scratch, r synth.Recipe) float64 {
		if atomic.AddInt64(&evals, 1) == 1 {
			cancel()
			time.Sleep(20 * time.Millisecond)
		}
		return sizeEval(g, s, r)
	})
	defer e.Close()
	rs := recipes(6, 1)
	out, err := e.EvaluateBatchCtx(ctx, rs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if out != nil {
		t.Fatalf("canceled batch returned scores %v", out)
	}
	ran := atomic.LoadInt64(&evals)
	if ran >= int64(len(rs)) {
		t.Fatalf("cancellation did not stop dispatch: %d/%d evaluations ran", ran, len(rs))
	}
	// Everything evaluated before the cancellation is cached for reuse.
	if _, ok := e.Cached(rs[0]); !ok {
		t.Fatal("completed evaluation was not cached")
	}
	// The cache must only hold fully evaluated recipes.
	if got := e.Stats().Size; int64(got) > ran {
		t.Fatalf("cache holds %d entries but only %d evaluations ran", got, ran)
	}
}

func TestEvaluateCtxMatchesEvaluate(t *testing.T) {
	base := circuits.MustGenerate("c432")
	e := New(base, 2, sizeEval)
	defer e.Close()
	r := recipes(3, 1)[2]
	got, err := e.EvaluateCtx(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if want := e.Evaluate(r); got != want {
		t.Fatalf("EvaluateCtx = %v, Evaluate = %v", got, want)
	}
}

// TestCloseAfterCanceledBatchLeaksNoGoroutines drives the cancellation
// path and verifies the worker pool winds down completely.
func TestCloseAfterCanceledBatchLeaksNoGoroutines(t *testing.T) {
	base := circuits.MustGenerate("c432")
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	e := New(base, 4, sizeEval)
	cancel()
	if _, err := e.EvaluateBatchCtx(ctx, recipes(8, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	e.Close()
	if !settles(before) {
		t.Fatalf("goroutines did not settle: before %d, now %d", before, runtime.NumGoroutine())
	}
}

// settles waits up to ~2s for the goroutine count to drop back to the
// baseline (the runtime may keep a few system goroutines around).
func settles(baseline int) bool {
	for i := 0; i < 200; i++ {
		if runtime.NumGoroutine() <= baseline {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}
