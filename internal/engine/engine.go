// Package engine provides the concurrent recipe-evaluation engine behind
// ALMOST's simulated-annealing searches. Every step of the paper's hot
// loop — re-synthesize the locked AIG with a candidate recipe, then score
// it (proxy attack accuracy, model loss, mapped PPA, ...) — is
// independent of every other candidate, so the engine fans candidates
// out across a pool of workers, each holding its own private copy of the
// base netlist, and memoizes results in a cache keyed by a canonical
// recipe hash so recipes the annealer revisits are never re-synthesized.
//
// Determinism contract: EvaluateBatch returns scores in input order and
// the score of a recipe depends only on the recipe (the EvalFunc must be
// a pure function of its arguments). Under that contract the results are
// bit-for-bit identical for any worker count, which is what lets
// anneal.RunParallel promise jobs-independent search trajectories.
package engine

import (
	"context"
	"runtime"
	"sync"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/synth"
)

// EvalFunc scores one recipe. g is a worker-private copy of the base
// netlist handed to New, so implementations may synthesize from it freely
// without synchronization; they must not retain g or mutate captured
// shared state, and must be deterministic in (g, r).
type EvalFunc func(g *aig.AIG, r synth.Recipe) float64

// RecipeKey returns the canonical cache key of a recipe: its step codes
// as raw bytes. Two recipes share a key iff they are step-for-step equal,
// so the "hash" is collision-free.
func RecipeKey(r synth.Recipe) string {
	b := make([]byte, len(r))
	for i, s := range r {
		b[i] = byte(s)
	}
	return string(b)
}

// Stats reports cache effectiveness.
type Stats struct {
	Hits   int // lookups answered from the cache
	Misses int // lookups that required an evaluation
	Size   int // distinct recipes cached
}

// job is one cache miss dispatched to the worker pool.
type job struct {
	recipe synth.Recipe
	slot   int
	out    []float64
	wg     *sync.WaitGroup
}

// Evaluator is a concurrent, memoizing recipe evaluator. Create with New,
// release with Close. All methods are safe for concurrent use.
type Evaluator struct {
	jobs int
	fn   EvalFunc
	reqs chan job
	wg   sync.WaitGroup

	mu    sync.Mutex
	cache map[string]float64
	hits  int
	miss  int
}

// New builds an evaluator over base with the given worker count (jobs <= 0
// selects runtime.NumCPU()). Each worker owns a Clone of base, so fn runs
// without any sharing of the netlist between workers.
func New(base *aig.AIG, jobs int, fn EvalFunc) *Evaluator {
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	e := &Evaluator{
		jobs:  jobs,
		fn:    fn,
		reqs:  make(chan job),
		cache: make(map[string]float64),
	}
	for i := 0; i < jobs; i++ {
		g := base.Clone()
		e.wg.Add(1)
		go e.worker(g)
	}
	return e
}

// Jobs returns the worker count.
func (e *Evaluator) Jobs() int { return e.jobs }

func (e *Evaluator) worker(g *aig.AIG) {
	defer e.wg.Done()
	for j := range e.reqs {
		j.out[j.slot] = e.fn(g, j.recipe)
		j.wg.Done()
	}
}

// Evaluate scores one recipe, consulting the cache first.
func (e *Evaluator) Evaluate(r synth.Recipe) float64 {
	return e.EvaluateBatch([]synth.Recipe{r})[0]
}

// EvaluateCtx is the cancellable variant of Evaluate.
func (e *Evaluator) EvaluateCtx(ctx context.Context, r synth.Recipe) (float64, error) {
	out, err := e.EvaluateBatchCtx(ctx, []synth.Recipe{r})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// EvaluateBatch scores a batch of candidates, returning one score per
// recipe in input order. Cache hits are answered immediately; distinct
// misses (duplicates within the batch are evaluated once) fan out across
// the worker pool and the call blocks until all of them finish.
func (e *Evaluator) EvaluateBatch(rs []synth.Recipe) []float64 {
	out, _ := e.EvaluateBatchCtx(context.Background(), rs)
	return out
}

// EvaluateBatchCtx is the cancellable variant of EvaluateBatch: the
// context is checked before the batch and between job dispatches. On
// cancellation no further evaluations start, the call waits for the jobs
// already handed to workers (so no goroutine ever races a returned
// slice), caches their scores, and returns nil scores with ctx.Err().
// A batch that returns an error has still made progress: every score
// computed before the cancellation is in the cache for the next call.
func (e *Evaluator) EvaluateBatchCtx(ctx context.Context, rs []synth.Recipe) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]float64, len(rs))
	have := make([]bool, len(rs))
	keys := make([]string, len(rs))

	var pending []int // index of the first occurrence of each missing key
	seen := make(map[string]int, len(rs))
	e.mu.Lock()
	for i, r := range rs {
		k := RecipeKey(r)
		keys[i] = k
		if v, ok := e.cache[k]; ok {
			out[i], have[i] = v, true
			e.hits++
			continue
		}
		if _, dup := seen[k]; !dup {
			e.miss++ // one miss per evaluation, not per duplicate lookup
			seen[k] = len(pending)
			pending = append(pending, i)
		}
	}
	e.mu.Unlock()

	if len(pending) > 0 {
		vals := make([]float64, len(pending))
		var wg sync.WaitGroup
		sent := 0 // jobs handed to workers: always the prefix pending[:sent]
		for slot, i := range pending {
			if ctx.Err() != nil {
				break
			}
			wg.Add(1)
			select {
			case e.reqs <- job{recipe: rs[i], slot: slot, out: vals, wg: &wg}:
				sent++
			case <-ctx.Done():
				wg.Done()
			}
			if ctx.Err() != nil {
				break
			}
		}
		wg.Wait()
		e.mu.Lock()
		for slot, i := range pending[:sent] {
			e.cache[keys[i]] = vals[slot]
		}
		e.mu.Unlock()
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range rs {
		if !have[i] {
			// Either freshly computed by this batch or by a concurrent one;
			// the cache holds it now either way.
			e.mu.Lock()
			out[i] = e.cache[keys[i]]
			e.mu.Unlock()
		}
	}
	return out, nil
}

// Cached returns the cached score of r, if present.
func (e *Evaluator) Cached(r synth.Recipe) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.cache[RecipeKey(r)]
	return v, ok
}

// Stats returns a snapshot of cache counters.
func (e *Evaluator) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{Hits: e.hits, Misses: e.miss, Size: len(e.cache)}
}

// Close shuts the worker pool down and waits for in-flight evaluations.
// The evaluator must not be used after Close.
func (e *Evaluator) Close() {
	close(e.reqs)
	e.wg.Wait()
}
