// Package engine provides the concurrent recipe-evaluation engine behind
// ALMOST's simulated-annealing searches. Every step of the paper's hot
// loop — re-synthesize the locked AIG with a candidate recipe, then score
// it (proxy attack accuracy, model loss, mapped PPA, ...) — is
// independent of every other candidate, so the engine fans candidates
// out across a pool of workers, each holding its own private copy of the
// base netlist, and memoizes results in a cache keyed by a canonical
// recipe hash so recipes the annealer revisits are never re-synthesized.
//
// The cache is single-flight: when several concurrent batches miss on
// the same recipe key, exactly one caller runs the synthesize+attack
// evaluation and the others block until the value settles — a key is
// never evaluated twice, no matter how many searches share the
// evaluator, and Stats.Misses counts evaluations actually started. If
// the evaluating caller is canceled before its job reaches a worker,
// the key is released and one of the waiters takes over.
//
// Determinism contract: EvaluateBatch returns scores in input order and
// the score of a recipe depends only on the recipe (the EvalFunc must be
// a pure function of the netlist and recipe — the worker Scratch it
// receives is storage, never an input). Under that contract the results
// are bit-for-bit identical for any worker count, which is what lets
// anneal.RunParallel promise jobs-independent search trajectories.
//
// Allocation contract: worker state (netlist clone, synthesis arena, sim
// scratch) is pooled across batches, cache lookups build their key into
// a stack buffer, and a settled hit via Evaluate/EvaluateCtx/Cached
// allocates nothing — the steady-state cost of the annealer revisiting a
// recipe is one mutex-guarded map probe.
package engine

import (
	"context"
	"runtime"
	"sync"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/synth"
)

// Scratch is the reusable per-worker state handed to every EvalFunc
// call: a worker-private clone of the base netlist plus warm scratch
// buffers for synthesis and simulation. Scratches are pooled (sync.Pool)
// across batches, so a long-lived evaluator reaches a zero-allocation
// steady state: the arena recycles every intermediate netlist of a
// recipe, the sim scratch reuses its schedule and value buffers, and Aux
// lets an EvalFunc stash its own per-worker state (core keeps a GNN
// inference scratch there).
//
// A Scratch is confined to one evaluation at a time — EvalFuncs may use
// it freely without synchronization but must not retain any part of it
// (or anything allocated from the Arena) past the call's return.
type Scratch struct {
	g *aig.AIG // worker-private clone of the evaluator's base netlist

	// Arena pools synthesis storage; score netlists with r.Run(g, s.Arena)
	// and hand the result to s.Arena.Recycle once scored.
	Arena *synth.Arena
	// Sim pools simulation schedules and buffers for the Into-style
	// aig APIs.
	Sim *aig.SimScratch
	// Aux is EvalFunc-owned per-worker state, lazily initialized by the
	// EvalFunc itself (it starts nil on a fresh scratch).
	Aux any
}

// EvalFunc scores one recipe. g is a worker-private copy of the base
// netlist handed to New and s is the worker's scratch state, so
// implementations may synthesize from g and allocate from s freely
// without synchronization; they must not retain g or s (or anything
// handed out by s.Arena/s.Sim) past the call, must not mutate captured
// shared state, and the returned score must be a pure function of (g, r)
// alone — never of scratch contents — so results are bit-for-bit
// identical for any worker count.
type EvalFunc func(g *aig.AIG, s *Scratch, r synth.Recipe) float64

// RecipeKey returns the canonical cache key of a recipe: its step codes
// as raw bytes. Two recipes share a key iff they are step-for-step equal,
// so the "hash" is collision-free. It allocates the returned string; the
// evaluator's own lookups go through appendRecipeKey + compiler-optimized
// map indexing instead, so cache hits allocate nothing.
func RecipeKey(r synth.Recipe) string {
	return string(appendRecipeKey(make([]byte, 0, len(r)), r))
}

// appendRecipeKey appends r's canonical key bytes to dst. With a
// stack-backed dst and a map lookup of the form m[string(key)] the whole
// path is allocation-free (the compiler elides the string conversion).
//
//almost:hotpath
func appendRecipeKey(dst []byte, r synth.Recipe) []byte {
	for _, s := range r {
		dst = append(dst, byte(s)) //almost:nolint hotpathalloc // dst is a stack-backed [32]byte that never grows past a recipe's length
	}
	return dst
}

// Stats reports cache effectiveness.
type Stats struct {
	// Hits counts lookups answered without starting an evaluation:
	// from a settled cache entry, or by waiting on an evaluation another
	// caller already had in flight (single-flight deduplication).
	Hits int
	// Misses counts evaluations actually started — exactly one per
	// distinct recipe, however many callers race on it concurrently.
	Misses int
	// Size counts distinct recipes with a settled score in the cache.
	Size int
}

// job is one cache miss dispatched to the worker pool.
type job struct {
	recipe synth.Recipe
	slot   int
	out    []float64
	wg     *sync.WaitGroup
}

// entry is one cache slot under single-flight discipline. It is
// created (in flight) by the first caller to miss on a key; done is
// closed when the evaluation settles. valid distinguishes a computed
// score from an abandoned evaluation (owner canceled before its job
// was handed to a worker) — abandoned entries are removed from the
// cache before done closes, so a waiter that observes valid == false
// re-resolves the key and may become the new owner.
//
// val and valid are written before close(done) and read only after
// <-done, so the channel's happens-before edge makes them safe to read
// without the evaluator lock.
type entry struct {
	done  chan struct{}
	val   float64
	valid bool
}

// settled reports whether the entry's evaluation has completed.
func (en *entry) settled() bool {
	select {
	case <-en.done:
		return true
	default:
		return false
	}
}

// Evaluator is a concurrent, memoizing recipe evaluator with
// single-flight deduplication: when several callers miss on the same
// recipe key concurrently, exactly one evaluates it and the others wait
// for the settled value. Create with New, release with Close. All
// methods are safe for concurrent use.
type Evaluator struct {
	jobs    int
	fn      EvalFunc
	reqs    chan job
	wg      sync.WaitGroup
	scratch sync.Pool // of *Scratch; New clones the base netlist lazily

	mu      sync.Mutex
	cache   map[string]*entry
	hits    int
	miss    int
	settled int
}

// New builds an evaluator over base with the given worker count (jobs <= 0
// selects runtime.NumCPU()). Worker scratch state — a private Clone of
// base plus synthesis/simulation buffers — comes from a sync.Pool: each
// worker checks one out for its lifetime, so scratches (and their
// warmed arenas) survive across batches instead of being rebuilt per
// evaluation. Every e.fn invocation happens on a worker goroutine with
// that worker's scratch; there is no inline evaluation path.
func New(base *aig.AIG, jobs int, fn EvalFunc) *Evaluator {
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	e := &Evaluator{
		jobs:  jobs,
		fn:    fn,
		reqs:  make(chan job),
		cache: make(map[string]*entry),
	}
	e.scratch.New = func() any {
		return &Scratch{g: base.Clone(), Arena: synth.NewArena(), Sim: &aig.SimScratch{}}
	}
	for i := 0; i < jobs; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Jobs returns the worker count.
func (e *Evaluator) Jobs() int { return e.jobs }

func (e *Evaluator) worker() {
	defer e.wg.Done()
	s := e.scratch.Get().(*Scratch)
	defer e.scratch.Put(s)
	for j := range e.reqs {
		j.out[j.slot] = e.fn(s.g, s, j.recipe)
		j.wg.Done()
	}
}

// Evaluate scores one recipe, consulting the cache first. A settled cache
// hit is answered inline without allocating.
func (e *Evaluator) Evaluate(r synth.Recipe) float64 {
	v, _ := e.EvaluateCtx(context.Background(), r)
	return v
}

// EvaluateCtx is the cancellable variant of Evaluate. A settled cache hit
// is answered inline without allocating; misses go through the batch
// path (worker dispatch, single-flight deduplication).
//
//almost:hotpath
func (e *Evaluator) EvaluateCtx(ctx context.Context, r synth.Recipe) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var kb [32]byte
	key := appendRecipeKey(kb[:0], r)
	e.mu.Lock()
	if en, ok := e.cache[string(key)]; ok && en.settled() {
		e.hits++
		e.mu.Unlock()
		return en.val, nil
	}
	e.mu.Unlock()
	out, err := e.EvaluateBatchCtx(ctx, []synth.Recipe{r})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// EvaluateBatch scores a batch of candidates, returning one score per
// recipe in input order. Cache hits are answered immediately; distinct
// misses (duplicates within the batch are evaluated once) fan out across
// the worker pool and the call blocks until all of them finish.
func (e *Evaluator) EvaluateBatch(rs []synth.Recipe) []float64 {
	out, _ := e.EvaluateBatchCtx(context.Background(), rs)
	return out
}

// EvaluateBatchCtx is the cancellable variant of EvaluateBatch: the
// context is checked before the batch and between job dispatches. On
// cancellation no further evaluations start, the call waits for the jobs
// already handed to workers (so no goroutine ever races a returned
// slice), caches their scores, and returns nil scores with ctx.Err().
// A batch that returns an error has still made progress: every score
// computed before the cancellation is in the cache for the next call.
//
// Concurrent batches missing on the same key are deduplicated
// (single-flight): the first caller to miss evaluates, later callers
// wait for the settled value, and Stats.Misses counts one evaluation.
// If the evaluating caller is canceled before its job reaches a
// worker, the key is released and a waiter takes over ownership.
func (e *Evaluator) EvaluateBatchCtx(ctx context.Context, rs []synth.Recipe) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]float64, len(rs))
	keys := make([]string, len(rs))

	// Classify the first occurrence of every distinct key: answered
	// (settled cache entry), owned (we created the in-flight entry and
	// must evaluate), or waiting (another caller's evaluation is in
	// flight). Duplicate occurrences copy from the first at the end.
	first := make(map[string]int, len(rs))
	var owned []int // first-occurrence indices we own
	var ownedEntries []*entry
	var waiting []int // first-occurrence indices resolved by waiting
	var waitEntries []*entry
	e.mu.Lock()
	for i, r := range rs {
		k := RecipeKey(r)
		keys[i] = k
		if _, dup := first[k]; dup {
			continue
		}
		first[k] = i
		if en, ok := e.cache[k]; ok {
			if en.settled() {
				// en.valid is always true for settled entries still in
				// the cache: abandoned entries are removed before close.
				out[i] = en.val
				e.hits++
			} else {
				waiting = append(waiting, i)
				waitEntries = append(waitEntries, en)
			}
			continue
		}
		en := &entry{done: make(chan struct{})}
		e.cache[k] = en
		e.miss++ // one miss per evaluation, not per duplicate or waiter
		owned = append(owned, i)
		ownedEntries = append(ownedEntries, en)
	}
	e.mu.Unlock()

	if len(owned) > 0 {
		vals := make([]float64, len(owned))
		var wg sync.WaitGroup
		sent := 0 // jobs handed to workers: always the prefix owned[:sent]
		for slot, i := range owned {
			if ctx.Err() != nil {
				break
			}
			wg.Add(1)
			select {
			case e.reqs <- job{recipe: rs[i], slot: slot, out: vals, wg: &wg}:
				sent++
			case <-ctx.Done():
				wg.Done()
			}
			if ctx.Err() != nil {
				break
			}
		}
		wg.Wait()
		e.settle(keys, owned, ownedEntries, vals, sent)
		for slot, i := range owned[:sent] {
			out[i] = vals[slot]
		}
	}

	// Resolve keys another caller was evaluating. Our own entries are
	// settled by now, so two batches waiting on parts of each other's
	// work cannot deadlock.
	for wi, i := range waiting {
		v, err := e.await(ctx, rs[i], keys[i], waitEntries[wi])
		if err != nil {
			return nil, err
		}
		out[i] = v
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range rs {
		if fi := first[keys[i]]; fi != i {
			out[i] = out[fi]
		}
	}
	return out, nil
}

// settle publishes the outcome of this batch's owned evaluations: the
// first sent entries get their computed values; the rest were never
// handed to a worker (cancellation) and are released so another caller
// can claim the key.
func (e *Evaluator) settle(keys []string, owned []int, entries []*entry, vals []float64, sent int) {
	e.mu.Lock()
	for slot := range owned[:sent] {
		en := entries[slot]
		en.val = vals[slot]
		en.valid = true
		e.settled++
	}
	for _, i := range owned[sent:] {
		delete(e.cache, keys[i])
	}
	e.mu.Unlock()
	// Close outside the lock ordering concerns: close after the map
	// state is consistent, so a waiter that wakes and re-locks sees
	// either the settled entry (valid) or the key absent (abandoned).
	for _, en := range entries[:sent] {
		close(en.done)
	}
	for _, en := range entries[sent:] {
		close(en.done)
	}
}

// await blocks until the in-flight evaluation of key settles, the
// context is canceled, or — if the evaluating caller abandoned the key —
// this caller takes over and evaluates r itself.
func (e *Evaluator) await(ctx context.Context, r synth.Recipe, key string, en *entry) (float64, error) {
	for {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-en.done:
		}
		if en.valid {
			e.mu.Lock()
			e.hits++ // answered without starting an evaluation
			e.mu.Unlock()
			return en.val, nil
		}
		// The previous owner abandoned the evaluation. Re-resolve:
		// either someone else took over, or we claim ownership.
		e.mu.Lock()
		if cur, ok := e.cache[key]; ok {
			e.mu.Unlock()
			en = cur
			continue
		}
		en = &entry{done: make(chan struct{})}
		e.cache[key] = en
		e.miss++
		e.mu.Unlock()

		vals := make([]float64, 1)
		var wg sync.WaitGroup
		wg.Add(1)
		sent := 1
		select {
		case e.reqs <- job{recipe: r, slot: 0, out: vals, wg: &wg}:
		case <-ctx.Done():
			wg.Done()
			sent = 0
		}
		wg.Wait()
		e.settle([]string{key}, []int{0}, []*entry{en}, vals, sent)
		if sent == 0 {
			return 0, ctx.Err()
		}
		return vals[0], nil
	}
}

// Cached returns the settled cached score of r, if present. An
// in-flight evaluation does not count as cached. Like EvaluateCtx's hit
// path, the lookup is allocation-free.
//
//almost:hotpath
func (e *Evaluator) Cached(r synth.Recipe) (float64, bool) {
	var kb [32]byte
	key := appendRecipeKey(kb[:0], r)
	e.mu.Lock()
	defer e.mu.Unlock()
	en, ok := e.cache[string(key)]
	if !ok || !en.settled() {
		return 0, false
	}
	return en.val, true
}

// Stats returns a snapshot of cache counters.
func (e *Evaluator) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{Hits: e.hits, Misses: e.miss, Size: e.settled}
}

// Close shuts the worker pool down and waits for in-flight evaluations.
// The evaluator must not be used after Close.
func (e *Evaluator) Close() {
	close(e.reqs)
	e.wg.Wait()
}
