// Package engine provides the concurrent recipe-evaluation engine behind
// ALMOST's simulated-annealing searches. Every step of the paper's hot
// loop — re-synthesize the locked AIG with a candidate recipe, then score
// it (proxy attack accuracy, model loss, mapped PPA, ...) — is
// independent of every other candidate, so the engine fans candidates
// out across a pool of workers, each holding its own private copy of the
// base netlist, and memoizes results in a cache keyed by (base
// structural digest, canonical recipe bytes) so recipes the annealer
// revisits are never re-synthesized — and scores minted against one base
// can never answer a lookup against another after a Rebase.
//
// The cache is single-flight: when several concurrent batches miss on
// the same recipe key, exactly one caller runs the synthesize+attack
// evaluation and the others block until the value settles — a key is
// never evaluated twice, no matter how many searches share the
// evaluator, and Stats.Misses counts evaluations actually started. If
// the evaluating caller is canceled before its job reaches a worker,
// the key is released and one of the waiters takes over.
//
// Determinism contract: EvaluateBatch returns scores in input order and
// the score of a recipe depends only on the recipe (the EvalFunc must be
// a pure function of the netlist and recipe — the worker Scratch it
// receives is storage, never an input). Under that contract the results
// are bit-for-bit identical for any worker count, which is what lets
// anneal.RunParallel promise jobs-independent search trajectories.
//
// Allocation contract: worker state (netlist clone, synthesis arena, sim
// scratch) is pooled across batches, cache lookups build their key into
// a stack buffer, and a settled hit via Evaluate/EvaluateCtx/Cached
// allocates nothing — the steady-state cost of the annealer revisiting a
// recipe is one mutex-guarded map probe.
package engine

import (
	"context"
	"runtime"
	"sync"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/synth"
)

// Scratch is the reusable per-worker state handed to every EvalFunc
// call: a worker-private clone of the base netlist plus warm scratch
// buffers for synthesis and simulation. Scratches are pooled (sync.Pool)
// across batches, so a long-lived evaluator reaches a zero-allocation
// steady state: the arena recycles every intermediate netlist of a
// recipe, the sim scratch reuses its schedule and value buffers, and Aux
// lets an EvalFunc stash its own per-worker state (core keeps a GNN
// inference scratch there).
//
// A Scratch is confined to one evaluation at a time — EvalFuncs may use
// it freely without synchronization but must not retain any part of it
// (or anything allocated from the Arena) past the call's return.
type Scratch struct {
	g *aig.AIG // worker-private clone of the evaluator's base netlist

	// Arena pools synthesis storage; score netlists with s.Synth(r) and
	// hand the result to s.Release once scored.
	Arena *synth.Arena
	// Sim pools simulation schedules and buffers for the Into-style
	// aig APIs.
	Sim *aig.SimScratch
	// Aux is EvalFunc-owned per-worker state, lazily initialized by the
	// EvalFunc itself (it starts nil on a fresh scratch).
	Aux any

	// epoch identifies which evaluator base s.g is a clone of; workers
	// re-clone lazily when a Rebase bumps the evaluator's epoch.
	epoch uint64
	// prefix enables the recipe-prefix chain below (disabled by
	// WithoutPrefixReuse).
	prefix bool
	// chainSteps/chainNets cache the per-step intermediate netlists of
	// the most recent Synth call: chainNets[i] is chainSteps[:i+1] run
	// against the base. The annealer's neighborhood move redraws one
	// recipe position, so consecutive candidates usually share a long
	// prefix and Synth resumes from the deepest shared intermediate —
	// each SA proposal is applied as a delta against the persistent base
	// rather than re-synthesized from scratch.
	chainSteps synth.Recipe
	chainNets  []*aig.AIG
}

// Synth synthesizes recipe r against the worker's base netlist and
// returns the result, reusing the longest shared recipe prefix from the
// previous Synth call on this scratch (unless prefix reuse is disabled,
// in which case it is exactly r.Run(s.g, s.Arena)). The returned graph
// is owned by the scratch's chain — score it, then hand it to s.Release
// and do not retain it past the EvalFunc call. An empty recipe returns
// the base itself. Results are bit-for-bit identical with and without
// prefix reuse: every chained intermediate is the deterministic product
// of its step prefix against the same base content.
func (s *Scratch) Synth(r synth.Recipe) *aig.AIG {
	if !s.prefix {
		return r.Run(s.g, s.Arena)
	}
	p := 0
	for p < len(r) && p < len(s.chainSteps) && r[p] == s.chainSteps[p] {
		p++
	}
	for i := len(s.chainNets) - 1; i >= p; i-- {
		s.Arena.Recycle(s.chainNets[i])
		s.chainNets[i] = nil
	}
	s.chainSteps = s.chainSteps[:p]
	s.chainNets = s.chainNets[:p]
	cur := s.g
	if p > 0 {
		cur = s.chainNets[p-1]
	}
	for _, st := range r[p:] {
		cur = st.Run(cur, s.Arena)
		s.chainSteps = append(s.chainSteps, st)
		s.chainNets = append(s.chainNets, cur)
	}
	return cur
}

// Release hands a netlist produced by Synth back to the scratch. Nets
// owned by the prefix chain (and the base itself) are retained for
// reuse; anything else is recycled into the arena. EvalFuncs call it
// unconditionally on every net they are done scoring.
func (s *Scratch) Release(net *aig.AIG) {
	if net == nil || net == s.g {
		return
	}
	for _, c := range s.chainNets {
		if c == net {
			return
		}
	}
	s.Arena.Recycle(net)
}

// releaseChain recycles every chained intermediate (used on rebase —
// the chain is only meaningful against one base).
func (s *Scratch) releaseChain() {
	for i := range s.chainNets {
		s.Arena.Recycle(s.chainNets[i])
		s.chainNets[i] = nil
	}
	s.chainNets = s.chainNets[:0]
	s.chainSteps = s.chainSteps[:0]
}

// syncBase points the scratch at the evaluator base identified by epoch,
// lazily re-cloning on the first job after a Rebase. The old clone's
// storage and the stale prefix chain are recycled into the arena.
func (s *Scratch) syncBase(base *aig.AIG, epoch uint64) {
	if s.epoch == epoch && s.g != nil {
		return
	}
	s.releaseChain()
	if s.g != nil {
		s.Arena.Recycle(s.g)
	}
	s.g = base.Clone()
	s.Sim.Reset()
	s.epoch = epoch
}

// NewScratch builds a standalone scratch over its own clone of base,
// outside any evaluator. Benchmarks and identity tests use it to drive
// the Synth/Release path directly; prefixReuse selects the incremental
// prefix chain exactly as WithoutPrefixReuse does for an evaluator's
// workers.
func NewScratch(base *aig.AIG, prefixReuse bool) *Scratch {
	return &Scratch{
		g:      base.Clone(),
		Arena:  synth.NewArena(),
		Sim:    &aig.SimScratch{},
		prefix: prefixReuse,
	}
}

// EvalFunc scores one recipe. g is a worker-private copy of the base
// netlist handed to New and s is the worker's scratch state, so
// implementations may synthesize from g and allocate from s freely
// without synchronization; they must not retain g or s (or anything
// handed out by s.Arena/s.Sim) past the call, must not mutate captured
// shared state, and the returned score must be a pure function of (g, r)
// alone — never of scratch contents — so results are bit-for-bit
// identical for any worker count.
type EvalFunc func(g *aig.AIG, s *Scratch, r synth.Recipe) float64

// RecipeKey returns the canonical key of a recipe: its step codes as raw
// bytes. Two recipes share a key iff they are step-for-step equal, so
// the "hash" is collision-free. Callers that track per-recipe state
// (core's searchProblem) key on it; the evaluator's own cache composes
// it with the base digest (see appendEvalKey) and goes through
// stack-backed buffers + compiler-optimized map indexing instead, so
// cache hits allocate nothing.
func RecipeKey(r synth.Recipe) string {
	return string(appendRecipeKey(make([]byte, 0, len(r)), r))
}

// appendRecipeKey appends r's canonical key bytes to dst. With a
// stack-backed dst and a map lookup of the form m[string(key)] the whole
// path is allocation-free (the compiler elides the string conversion).
//
//almost:hotpath
func appendRecipeKey(dst []byte, r synth.Recipe) []byte {
	for _, s := range r {
		dst = append(dst, byte(s)) //almost:nolint hotpathalloc // dst is a stack-backed buffer that never grows past a key's length
	}
	return dst
}

// appendEvalKey appends the evaluator cache key of (base, recipe) to
// dst: the 8-byte structural digest of the base netlist followed by the
// recipe's step codes — (base digest, delta digest) in the incremental
// evaluation contract. Scores cached against one base can never answer
// a lookup against another, and after Rebase returns to an
// already-digested base its settled scores become hits again.
//
//almost:hotpath
func appendEvalKey(dst []byte, baseKey uint64, r synth.Recipe) []byte {
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(baseKey>>(8*uint(i)))) //almost:nolint hotpathalloc // dst is a stack-backed buffer that never grows past a key's length
	}
	return appendRecipeKey(dst, r)
}

// evalKeyBufLen sizes the stack key buffers: 8 digest bytes plus the
// longest recipe the hot paths see (RecipeLength is 10; 40 leaves slack
// for experiment sweeps with long custom scripts).
const evalKeyBufLen = 8 + 40

// Stats reports cache effectiveness.
type Stats struct {
	// Hits counts lookups answered without starting an evaluation:
	// from a settled cache entry, or by waiting on an evaluation another
	// caller already had in flight (single-flight deduplication).
	Hits int
	// Misses counts evaluations actually started — exactly one per
	// distinct recipe, however many callers race on it concurrently.
	Misses int
	// Size counts distinct recipes with a settled score in the cache.
	Size int
}

// job is one cache miss dispatched to the worker pool. It carries the
// base (and its epoch) the recipe was keyed against at classification
// time, so a concurrent Rebase can never mis-file a score under the
// wrong base digest.
type job struct {
	recipe synth.Recipe
	base   *aig.AIG
	epoch  uint64
	slot   int
	out    []float64
	wg     *sync.WaitGroup
}

// entry is one cache slot under single-flight discipline. It is
// created (in flight) by the first caller to miss on a key; done is
// closed when the evaluation settles. valid distinguishes a computed
// score from an abandoned evaluation (owner canceled before its job
// was handed to a worker) — abandoned entries are removed from the
// cache before done closes, so a waiter that observes valid == false
// re-resolves the key and may become the new owner.
//
// val and valid are written before close(done) and read only after
// <-done, so the channel's happens-before edge makes them safe to read
// without the evaluator lock.
type entry struct {
	done  chan struct{}
	val   float64
	valid bool
}

// settled reports whether the entry's evaluation has completed.
func (en *entry) settled() bool {
	select {
	case <-en.done:
		return true
	default:
		return false
	}
}

// Evaluator is a concurrent, memoizing recipe evaluator with
// single-flight deduplication: when several callers miss on the same
// recipe key concurrently, exactly one evaluates it and the others wait
// for the settled value. Create with New, release with Close. All
// methods are safe for concurrent use.
type Evaluator struct {
	jobs     int
	fn       EvalFunc
	noPrefix bool
	reqs     chan job
	wg       sync.WaitGroup
	scratch  sync.Pool // of *Scratch; workers clone the base lazily via syncBase

	mu      sync.Mutex
	base    *aig.AIG
	baseKey uint64 // StructuralDigest of base; cache-key prefix
	epoch   uint64 // bumped by Rebase; workers re-clone on mismatch
	cache   map[string]*entry
	hits    int
	miss    int
	settled int
}

// Option configures an Evaluator at construction.
type Option func(*Evaluator)

// WithoutPrefixReuse disables the per-worker recipe-prefix chain:
// Scratch.Synth degenerates to r.Run from the base clone and
// Scratch.Release recycles every non-base net. Scores are bit-for-bit
// identical either way (the identity tests pin this); the option exists
// for those tests and for memory-constrained runs — the chain retains up
// to one intermediate netlist per recipe step per worker.
func WithoutPrefixReuse() Option {
	return func(e *Evaluator) { e.noPrefix = true }
}

// New builds an evaluator over base with the given worker count (jobs <= 0
// selects runtime.NumCPU()). Worker scratch state — a private Clone of
// base plus synthesis/simulation buffers — comes from a sync.Pool: each
// worker checks one out for its lifetime, so scratches (and their
// warmed arenas and prefix chains) survive across batches instead of
// being rebuilt per evaluation. Every e.fn invocation happens on a
// worker goroutine with that worker's scratch; there is no inline
// evaluation path.
//
// Cache keys compose the base's structural digest with the recipe (see
// appendEvalKey), so an evaluator that is Rebased between batches keeps
// one coherent cache across all bases it has seen.
func New(base *aig.AIG, jobs int, fn EvalFunc, opts ...Option) *Evaluator {
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	e := &Evaluator{
		jobs:    jobs,
		fn:      fn,
		base:    base,
		baseKey: base.StructuralDigest(),
		epoch:   1,
		reqs:    make(chan job),
		cache:   make(map[string]*entry),
	}
	for _, o := range opts {
		o(e)
	}
	e.scratch.New = func() any {
		return &Scratch{Arena: synth.NewArena(), Sim: &aig.SimScratch{}, prefix: !e.noPrefix}
	}
	for i := 0; i < jobs; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Jobs returns the worker count.
func (e *Evaluator) Jobs() int { return e.jobs }

// Rebase atomically switches the evaluator to a new base netlist.
// Workers re-clone lazily on their next job; settled scores stay in the
// cache under their original base digest, so rebasing back to a
// previously seen base (bit-identical content) turns its old scores
// into hits again — the memo composes with incremental base evolution.
// In-flight batches are unaffected: their jobs carry the base they were
// keyed against. The caller must not mutate base while the evaluator
// can still evaluate against it.
func (e *Evaluator) Rebase(base *aig.AIG) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.base = base
	e.baseKey = base.StructuralDigest()
	e.epoch++
}

// BaseDigest returns the structural digest of the current base — the
// prefix of every cache key minted for it.
func (e *Evaluator) BaseDigest() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.baseKey
}

func (e *Evaluator) worker() {
	defer e.wg.Done()
	s := e.scratch.Get().(*Scratch)
	defer e.scratch.Put(s)
	for j := range e.reqs {
		s.syncBase(j.base, j.epoch)
		j.out[j.slot] = e.fn(s.g, s, j.recipe)
		j.wg.Done()
	}
}

// Evaluate scores one recipe, consulting the cache first. A settled cache
// hit is answered inline without allocating.
func (e *Evaluator) Evaluate(r synth.Recipe) float64 {
	v, _ := e.EvaluateCtx(context.Background(), r)
	return v
}

// EvaluateCtx is the cancellable variant of Evaluate. A settled cache hit
// is answered inline without allocating; misses go through the batch
// path (worker dispatch, single-flight deduplication).
//
//almost:hotpath
func (e *Evaluator) EvaluateCtx(ctx context.Context, r synth.Recipe) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var kb [evalKeyBufLen]byte
	e.mu.Lock()
	key := appendEvalKey(kb[:0], e.baseKey, r)
	if en, ok := e.cache[string(key)]; ok && en.settled() {
		e.hits++
		e.mu.Unlock()
		return en.val, nil
	}
	e.mu.Unlock()
	out, err := e.EvaluateBatchCtx(ctx, []synth.Recipe{r})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// EvaluateBatch scores a batch of candidates, returning one score per
// recipe in input order. Cache hits are answered immediately; distinct
// misses (duplicates within the batch are evaluated once) fan out across
// the worker pool and the call blocks until all of them finish.
func (e *Evaluator) EvaluateBatch(rs []synth.Recipe) []float64 {
	out, _ := e.EvaluateBatchCtx(context.Background(), rs)
	return out
}

// EvaluateBatchCtx is the cancellable variant of EvaluateBatch: the
// context is checked before the batch and between job dispatches. On
// cancellation no further evaluations start, the call waits for the jobs
// already handed to workers (so no goroutine ever races a returned
// slice), caches their scores, and returns nil scores with ctx.Err().
// A batch that returns an error has still made progress: every score
// computed before the cancellation is in the cache for the next call.
//
// Concurrent batches missing on the same key are deduplicated
// (single-flight): the first caller to miss evaluates, later callers
// wait for the settled value, and Stats.Misses counts one evaluation.
// If the evaluating caller is canceled before its job reaches a
// worker, the key is released and a waiter takes over ownership.
func (e *Evaluator) EvaluateBatchCtx(ctx context.Context, rs []synth.Recipe) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]float64, len(rs))
	keys := make([]string, len(rs))

	// Classify the first occurrence of every distinct key: answered
	// (settled cache entry), owned (we created the in-flight entry and
	// must evaluate), or waiting (another caller's evaluation is in
	// flight). Duplicate occurrences copy from the first at the end.
	first := make(map[string]int, len(rs))
	var owned []int // first-occurrence indices we own
	var ownedEntries []*entry
	var waiting []int // first-occurrence indices resolved by waiting
	var waitEntries []*entry
	var kb [evalKeyBufLen]byte
	e.mu.Lock()
	// The whole batch is keyed against one base snapshot: a concurrent
	// Rebase moves future batches to the new base but never re-keys or
	// re-targets this one (jobs carry base+epoch explicitly).
	base, baseKey, epoch := e.base, e.baseKey, e.epoch
	for i, r := range rs {
		k := string(appendEvalKey(kb[:0], baseKey, r))
		keys[i] = k
		if _, dup := first[k]; dup {
			continue
		}
		first[k] = i
		if en, ok := e.cache[k]; ok {
			if en.settled() {
				// en.valid is always true for settled entries still in
				// the cache: abandoned entries are removed before close.
				out[i] = en.val
				e.hits++
			} else {
				waiting = append(waiting, i)
				waitEntries = append(waitEntries, en)
			}
			continue
		}
		en := &entry{done: make(chan struct{})}
		e.cache[k] = en
		e.miss++ // one miss per evaluation, not per duplicate or waiter
		owned = append(owned, i)
		ownedEntries = append(ownedEntries, en)
	}
	e.mu.Unlock()

	if len(owned) > 0 {
		vals := make([]float64, len(owned))
		var wg sync.WaitGroup
		sent := 0 // jobs handed to workers: always the prefix owned[:sent]
		for slot, i := range owned {
			if ctx.Err() != nil {
				break
			}
			wg.Add(1)
			select {
			case e.reqs <- job{recipe: rs[i], base: base, epoch: epoch, slot: slot, out: vals, wg: &wg}:
				sent++
			case <-ctx.Done():
				wg.Done()
			}
			if ctx.Err() != nil {
				break
			}
		}
		wg.Wait()
		e.settle(keys, owned, ownedEntries, vals, sent)
		for slot, i := range owned[:sent] {
			out[i] = vals[slot]
		}
	}

	// Resolve keys another caller was evaluating. Our own entries are
	// settled by now, so two batches waiting on parts of each other's
	// work cannot deadlock.
	for wi, i := range waiting {
		v, err := e.await(ctx, rs[i], keys[i], waitEntries[wi], base, epoch)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range rs {
		if fi := first[keys[i]]; fi != i {
			out[i] = out[fi]
		}
	}
	return out, nil
}

// settle publishes the outcome of this batch's owned evaluations: the
// first sent entries get their computed values; the rest were never
// handed to a worker (cancellation) and are released so another caller
// can claim the key.
func (e *Evaluator) settle(keys []string, owned []int, entries []*entry, vals []float64, sent int) {
	e.mu.Lock()
	for slot := range owned[:sent] {
		en := entries[slot]
		en.val = vals[slot]
		en.valid = true
		e.settled++
	}
	for _, i := range owned[sent:] {
		delete(e.cache, keys[i])
	}
	e.mu.Unlock()
	// Close outside the lock ordering concerns: close after the map
	// state is consistent, so a waiter that wakes and re-locks sees
	// either the settled entry (valid) or the key absent (abandoned).
	for _, en := range entries[:sent] {
		close(en.done)
	}
	for _, en := range entries[sent:] {
		close(en.done)
	}
}

// await blocks until the in-flight evaluation of key settles, the
// context is canceled, or — if the evaluating caller abandoned the key —
// this caller takes over and evaluates r itself against the same base
// snapshot the key was built from.
func (e *Evaluator) await(ctx context.Context, r synth.Recipe, key string, en *entry, base *aig.AIG, epoch uint64) (float64, error) {
	for {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-en.done:
		}
		if en.valid {
			e.mu.Lock()
			e.hits++ // answered without starting an evaluation
			e.mu.Unlock()
			return en.val, nil
		}
		// The previous owner abandoned the evaluation. Re-resolve:
		// either someone else took over, or we claim ownership.
		e.mu.Lock()
		if cur, ok := e.cache[key]; ok {
			e.mu.Unlock()
			en = cur
			continue
		}
		en = &entry{done: make(chan struct{})}
		e.cache[key] = en
		e.miss++
		e.mu.Unlock()

		vals := make([]float64, 1)
		var wg sync.WaitGroup
		wg.Add(1)
		sent := 1
		select {
		case e.reqs <- job{recipe: r, base: base, epoch: epoch, slot: 0, out: vals, wg: &wg}:
		case <-ctx.Done():
			wg.Done()
			sent = 0
		}
		wg.Wait()
		e.settle([]string{key}, []int{0}, []*entry{en}, vals, sent)
		if sent == 0 {
			return 0, ctx.Err()
		}
		return vals[0], nil
	}
}

// Cached returns the settled cached score of r, if present. An
// in-flight evaluation does not count as cached. Like EvaluateCtx's hit
// path, the lookup is allocation-free.
//
//almost:hotpath
func (e *Evaluator) Cached(r synth.Recipe) (float64, bool) {
	var kb [evalKeyBufLen]byte
	e.mu.Lock()
	defer e.mu.Unlock()
	key := appendEvalKey(kb[:0], e.baseKey, r)
	en, ok := e.cache[string(key)]
	if !ok || !en.settled() {
		return 0, false
	}
	return en.val, true
}

// Stats returns a snapshot of cache counters.
func (e *Evaluator) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{Hits: e.hits, Misses: e.miss, Size: e.settled}
}

// Close shuts the worker pool down and waits for in-flight evaluations.
// The evaluator must not be used after Close.
func (e *Evaluator) Close() {
	close(e.reqs)
	e.wg.Wait()
}
