package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/synth"
)

// sizeEval scores a recipe by the AND count of the synthesized netlist —
// a real synthesize-and-measure evaluation, deterministic in the recipe.
// It exercises the scratch contract: synthesize through the worker arena
// and recycle the scored netlist.
func sizeEval(g *aig.AIG, s *Scratch, r synth.Recipe) float64 {
	net := r.Run(g, s.Arena)
	v := float64(net.NumAnds())
	if net != g { // an empty recipe returns g itself; never recycle the clone
		s.Arena.Recycle(net)
	}
	return v
}

// sizeOf is the scratch-free reference for sizeEval's score.
func sizeOf(g *aig.AIG, r synth.Recipe) float64 {
	return float64(r.Apply(g).NumAnds())
}

// recipes returns n pairwise-distinct recipes over the cheap transforms
// (the i-th recipe encodes i in base 3) so the suite stays fast under
// -race on small machines; cache-key behavior is independent of which
// steps appear.
func recipes(n int, _ int64) []synth.Recipe {
	cheap := []synth.Step{synth.StepBalance, synth.StepRewrite, synth.StepRewriteZ}
	out := make([]synth.Recipe, n)
	for i := range out {
		r := make(synth.Recipe, 3)
		for j, v := 0, i; j < len(r); j, v = j+1, v/len(cheap) {
			r[j] = cheap[v%len(cheap)]
		}
		out[i] = r
	}
	return out
}

func TestRecipeKeyCanonical(t *testing.T) {
	a := synth.Recipe{synth.StepBalance, synth.StepRewrite}
	b := synth.Recipe{synth.StepBalance, synth.StepRewrite}
	c := synth.Recipe{synth.StepRewrite, synth.StepBalance}
	if RecipeKey(a) != RecipeKey(b) {
		t.Fatal("equal recipes must share a key")
	}
	if RecipeKey(a) == RecipeKey(c) {
		t.Fatal("reordered recipe must change the key")
	}
	if RecipeKey(a) == RecipeKey(a[:1]) {
		t.Fatal("prefix must not collide")
	}
}

func TestEvaluateMemoizes(t *testing.T) {
	base := circuits.MustGenerate("c432")
	var calls atomic.Int64
	e := New(base, 2, func(g *aig.AIG, s *Scratch, r synth.Recipe) float64 {
		calls.Add(1)
		return sizeEval(g, s, r)
	})
	defer e.Close()
	r := synth.Resyn2()
	v1 := e.Evaluate(r)
	v2 := e.Evaluate(r.Clone()) // distinct slice, same steps
	if v1 != v2 {
		t.Fatalf("memoized value changed: %v vs %v", v1, v2)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("eval ran %d times, want 1", n)
	}
	st := e.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvaluateBatchOrderAndDedup(t *testing.T) {
	base := circuits.MustGenerate("c432")
	var calls atomic.Int64
	e := New(base, 4, func(g *aig.AIG, s *Scratch, r synth.Recipe) float64 {
		calls.Add(1)
		return sizeEval(g, s, r)
	})
	defer e.Close()
	rs := recipes(6, 7)
	rs = append(rs, rs[0].Clone(), rs[3].Clone()) // in-batch duplicates
	got := e.EvaluateBatch(rs)
	if len(got) != len(rs) {
		t.Fatalf("result length %d, want %d", len(got), len(rs))
	}
	for i, r := range rs {
		if want := sizeOf(base, r); got[i] != want {
			t.Fatalf("slot %d: got %v, want %v", i, got[i], want)
		}
	}
	if n := calls.Load(); n != 6 {
		t.Fatalf("eval ran %d times, want 6 (duplicates must dedup)", n)
	}
}

func TestResultsIndependentOfJobs(t *testing.T) {
	base := circuits.MustGenerate("c432")
	rs := recipes(8, 11)
	var ref []float64
	for _, jobs := range []int{1, 3, 8} {
		e := New(base, jobs, sizeEval)
		got := e.EvaluateBatch(rs)
		e.Close()
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("jobs=%d slot %d: %v != %v", jobs, i, got[i], ref[i])
			}
		}
	}
}

func TestConcurrentCallers(t *testing.T) {
	base := circuits.MustGenerate("c432")
	e := New(base, 4, sizeEval)
	defer e.Close()
	rs := recipes(6, 13)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Overlapping batches from many goroutines: results must match
			// the single-threaded reference and trip no race.
			got := e.EvaluateBatch(rs)
			for i, r := range rs {
				if want := sizeOf(base, r); got[i] != want {
					t.Errorf("slot %d: got %v, want %v", i, got[i], want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestJobsDefaultsToNumCPU(t *testing.T) {
	base := circuits.MustGenerate("c432")
	e := New(base, 0, sizeEval)
	defer e.Close()
	if e.Jobs() != runtime.NumCPU() {
		t.Fatalf("Jobs() = %d, want %d", e.Jobs(), runtime.NumCPU())
	}
}

func TestCached(t *testing.T) {
	base := circuits.MustGenerate("c432")
	e := New(base, 1, sizeEval)
	defer e.Close()
	r := synth.Resyn2()
	if _, ok := e.Cached(r); ok {
		t.Fatal("cache must start empty")
	}
	want := e.Evaluate(r)
	got, ok := e.Cached(r)
	if !ok || got != want {
		t.Fatalf("Cached = (%v, %v), want (%v, true)", got, ok, want)
	}
}
