package engine

import (
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/synth"
)

// synthEval is sizeEval written against the Scratch ownership API the
// incremental path uses: Synth (prefix-chain aware) + Release.
func synthEval(g *aig.AIG, s *Scratch, r synth.Recipe) float64 {
	net := s.Synth(r)
	v := float64(net.NumAnds())
	s.Release(net)
	return v
}

// TestEvalKeyComposesBaseDigest pins the cache-key layout: the key is
// (base structural digest, recipe bytes), so equal recipes only share a
// key when the bases are structurally identical.
func TestEvalKeyComposesBaseDigest(t *testing.T) {
	a := circuits.MustGenerate("c432")
	b := circuits.MustGenerate("c499")
	r := synth.Resyn2()
	ka := string(appendEvalKey(nil, a.StructuralDigest(), r))
	kb := string(appendEvalKey(nil, b.StructuralDigest(), r))
	if ka == kb {
		t.Fatal("same recipe on different bases must not share a cache key")
	}
	twin := string(appendEvalKey(nil, a.Clone().StructuralDigest(), r))
	if ka != twin {
		t.Fatal("structurally identical bases must share a cache key")
	}
	if ka == string(appendEvalKey(nil, a.StructuralDigest(), r[:1])) {
		t.Fatal("recipe prefix must not collide under the same base")
	}
	if len(ka) != 8+len(r) {
		t.Fatalf("key length %d, want %d", len(ka), 8+len(r))
	}
}

// TestRebaseSwitchesBaseAndComposesCache is the engine-level memo
// contract for incremental base evolution: after Rebase the same recipe
// re-evaluates against the new base (no stale answer), and rebasing
// back to a structurally identical base turns the old scores into hits
// without re-evaluating.
func TestRebaseSwitchesBaseAndComposesCache(t *testing.T) {
	a := circuits.MustGenerate("c432")
	b := circuits.MustGenerate("c499")
	e := New(a, 2, synthEval)
	defer e.Close()
	r := synth.Resyn2()

	va := e.Evaluate(r)
	if want := sizeOf(a, r); va != want {
		t.Fatalf("base a scored %v, want %v", va, want)
	}

	e.Rebase(b)
	if _, ok := e.Cached(r); ok {
		t.Fatal("score minted against base a answered a lookup against base b")
	}
	vb := e.Evaluate(r)
	if want := sizeOf(b, r); vb != want {
		t.Fatalf("base b scored %v, want %v (stale worker clone?)", vb, want)
	}
	if st := e.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (one evaluation per base)", st.Misses)
	}

	// Rebase back to a structural twin of a: its settled score must be a
	// hit again, with no new evaluation.
	e.Rebase(a.Clone())
	got, ok := e.Cached(r)
	if !ok || got != va {
		t.Fatalf("Cached after rebase back = (%v, %v), want (%v, true)", got, ok, va)
	}
	if v := e.Evaluate(r); v != va {
		t.Fatalf("re-evaluation after rebase back = %v, want %v", v, va)
	}
	if st := e.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d after rebase round-trip, want 2", st.Misses)
	}
}

// TestRebaseBatchSeesNewBase runs a batch, rebases, and runs the same
// batch again: every score must track the base the batch was issued
// against, for every recipe.
func TestRebaseBatchSeesNewBase(t *testing.T) {
	a := circuits.MustGenerate("c432")
	b := circuits.MustGenerate("c880")
	e := New(a, 3, synthEval)
	defer e.Close()
	rs := recipes(6, 17)
	for i, v := range e.EvaluateBatch(rs) {
		if want := sizeOf(a, rs[i]); v != want {
			t.Fatalf("pre-rebase slot %d: %v, want %v", i, v, want)
		}
	}
	e.Rebase(b)
	for i, v := range e.EvaluateBatch(rs) {
		if want := sizeOf(b, rs[i]); v != want {
			t.Fatalf("post-rebase slot %d: %v, want %v", i, v, want)
		}
	}
}

// TestSynthPrefixReuseIdentity is the PR 8 bit-identity invariant at the
// engine layer: scoring a neighborhood-style sequence of recipes (each a
// one-step edit of the last, as the annealer proposes them) through the
// prefix chain must produce exactly the scores of the plain
// run-from-base path.
func TestSynthPrefixReuseIdentity(t *testing.T) {
	base := circuits.MustGenerate("c499")
	// A neighborhood walk: consecutive recipes share long prefixes, plus
	// edge cases — empty recipe, full restart, shrink and regrow.
	walk := []synth.Recipe{
		{synth.StepBalance, synth.StepRewrite, synth.StepResub},
		{synth.StepBalance, synth.StepRewrite, synth.StepRefactor},
		{synth.StepBalance, synth.StepRewrite},
		{synth.StepBalance, synth.StepRewrite, synth.StepRewriteZ, synth.StepBalance},
		{},
		{synth.StepRewrite, synth.StepBalance},
		synth.Resyn2(),
		synth.Resyn2(), // repeat: full prefix hit inside the scratch
	}
	score := func(opts ...Option) []float64 {
		e := New(base, 1, synthEval, opts...)
		defer e.Close()
		out := make([]float64, len(walk))
		for i, r := range walk {
			// Evaluate through the cache would dedup the repeated recipe;
			// bypass it so every walk step exercises Synth.
			e.mu.Lock()
			e.cache = make(map[string]*entry)
			e.mu.Unlock()
			out[i] = e.Evaluate(r)
		}
		return out
	}
	chained := score()
	plain := score(WithoutPrefixReuse())
	for i := range walk {
		if chained[i] != plain[i] {
			t.Fatalf("walk step %d (%v): chained %v != plain %v", i, walk[i], chained[i], plain[i])
		}
		if want := sizeOf(base, walk[i]); chained[i] != want {
			t.Fatalf("walk step %d (%v): %v, want reference %v", i, walk[i], chained[i], want)
		}
	}
}

// TestScratchChainReusesIntermediates pins that Synth actually resumes
// from the deepest shared prefix rather than silently re-running: the
// chained intermediates for the shared prefix must be the same *aig.AIG
// pointers across consecutive calls.
func TestScratchChainReusesIntermediates(t *testing.T) {
	base := circuits.MustGenerate("c432")
	s := &Scratch{g: base.Clone(), Arena: synth.NewArena(), Sim: &aig.SimScratch{}, prefix: true}
	r1 := synth.Recipe{synth.StepBalance, synth.StepRewrite, synth.StepResub}
	n1 := s.Synth(r1)
	if len(s.chainNets) != 3 || s.chainNets[2] != n1 {
		t.Fatalf("chain depth %d after first Synth, want 3 ending at result", len(s.chainNets))
	}
	shared := []*aig.AIG{s.chainNets[0], s.chainNets[1]}
	s.Release(n1)

	r2 := synth.Recipe{synth.StepBalance, synth.StepRewrite, synth.StepRefactorZ}
	n2 := s.Synth(r2)
	if s.chainNets[0] != shared[0] || s.chainNets[1] != shared[1] {
		t.Fatal("shared two-step prefix was re-synthesized instead of reused")
	}
	if n2 == n1 {
		t.Fatal("divergent step returned the recycled previous result")
	}
	if want := sizeOf(base, r2); float64(n2.NumAnds()) != want {
		t.Fatalf("chained result scored %v, want %v", float64(n2.NumAnds()), want)
	}
	s.Release(n2)

	// Releasing a chain-owned net must keep it live: a full-prefix repeat
	// returns it untouched.
	if n3 := s.Synth(r2); n3 != n2 {
		t.Fatal("full-prefix repeat did not return the retained chain head")
	}

	// An empty recipe is the base itself, and the base is never recycled.
	if s.Synth(nil) != s.g {
		t.Fatal("empty recipe must return the worker base")
	}
	s.Release(s.g) // must be a no-op
	if s.Synth(synth.Recipe{synth.StepBalance}) == nil {
		t.Fatal("scratch unusable after releasing base")
	}
}
