package engine

import (
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/synth"
)

// TestCacheHitZeroAllocs is the allocation-regression gate for the
// engine's hit path: once a recipe's score has settled, re-evaluating it
// (and probing Cached) must not allocate — the annealer revisits recipes
// constantly.
func TestCacheHitZeroAllocs(t *testing.T) {
	base := circuits.MustGenerate("c432")
	e := New(base, 1, sizeEval)
	defer e.Close()
	r := synth.Resyn2()
	want := e.Evaluate(r) // populate the cache
	if n := testing.AllocsPerRun(100, func() {
		if e.Evaluate(r) != want {
			t.Fatal("cached value changed")
		}
	}); n != 0 {
		t.Fatalf("cache-hit Evaluate allocates %.1f objects per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, ok := e.Cached(r); !ok {
			t.Fatal("lost cache entry")
		}
	}); n != 0 {
		t.Fatalf("Cached allocates %.1f objects per run, want 0", n)
	}
}

// TestEmptyRecipeDoesNotCorruptWorkerClone pins the Recycle guard: an
// empty recipe makes Recipe.Run return the worker's base clone itself,
// and an EvalFunc that recycled it unconditionally would Reset the
// clone and poison every later evaluation on that worker.
func TestEmptyRecipeDoesNotCorruptWorkerClone(t *testing.T) {
	base := circuits.MustGenerate("c432")
	e := New(base, 1, sizeEval)
	defer e.Close()
	empty := synth.Recipe{}
	if got := e.Evaluate(empty); got != float64(base.NumAnds()) {
		t.Fatalf("empty recipe scored %v, want %v", got, float64(base.NumAnds()))
	}
	// A real recipe on the same worker must still see the intact clone.
	r := synth.Recipe{synth.StepBalance}
	if got, want := e.Evaluate(r), sizeOf(base, r); got != want {
		t.Fatalf("post-empty evaluation scored %v, want %v (worker clone corrupted?)", got, want)
	}
}

// TestScratchIsPerWorkerAndReused pins the scratch pooling contract:
// every EvalFunc invocation sees a non-nil scratch with a ready arena
// and sim scratch, the Aux slot persists across evaluations on the same
// worker, and the worker-private netlist is a faithful clone of base.
func TestScratchIsPerWorkerAndReused(t *testing.T) {
	base := circuits.MustGenerate("c432")
	type marker struct{ evals int }
	seen := make(chan *Scratch, 64)
	e := New(base, 1, func(g *aig.AIG, s *Scratch, r synth.Recipe) float64 {
		if s == nil || s.Arena == nil || s.Sim == nil {
			t.Error("worker scratch not initialized")
		}
		if g.NumNodes() != base.NumNodes() {
			t.Error("worker netlist is not a clone of base")
		}
		m, ok := s.Aux.(*marker)
		if !ok {
			m = &marker{}
			s.Aux = m
		}
		m.evals++
		seen <- s
		return sizeEval(g, s, r)
	})
	defer e.Close()
	rs := recipes(6, 0)
	e.EvaluateBatch(rs)
	close(seen)
	var first *Scratch
	n := 0
	for s := range seen {
		if first == nil {
			first = s
		} else if s != first {
			t.Fatal("single worker used more than one scratch")
		}
		n++
	}
	if n != len(rs) {
		t.Fatalf("saw %d evaluations, want %d", n, len(rs))
	}
	if m := first.Aux.(*marker); m.evals != len(rs) {
		t.Fatalf("Aux state reset between evaluations: %d != %d", m.evals, len(rs))
	}
}
