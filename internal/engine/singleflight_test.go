package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/synth"
)

// TestConcurrentBatchesSingleFlight pins the cache-stampede fix: many
// concurrent EvaluateBatchCtx calls missing on the same key must run
// exactly one evaluation, count exactly one miss, and all observe the
// same value.
func TestConcurrentBatchesSingleFlight(t *testing.T) {
	base := circuits.MustGenerate("c432")
	var calls atomic.Int64
	gate := make(chan struct{})
	e := New(base, 4, func(g *aig.AIG, s *Scratch, r synth.Recipe) float64 {
		calls.Add(1)
		<-gate // hold every evaluation until all batches are in flight
		return sizeEval(g, s, r)
	})
	defer e.Close()

	const callers = 8
	r := synth.Recipe{synth.StepBalance, synth.StepRewrite}
	var wg sync.WaitGroup
	results := make([]float64, callers)
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out, err := e.EvaluateBatchCtx(context.Background(), []synth.Recipe{r})
			if err == nil {
				results[c] = out[0]
			}
			errs[c] = err
		}(c)
	}
	// Give every caller time to classify (one owner, the rest waiters),
	// then release the evaluation.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("evaluation ran %d times for one key across %d concurrent batches, want 1", n, callers)
	}
	want := results[0]
	for c := range results {
		if errs[c] != nil {
			t.Fatalf("caller %d failed: %v", c, errs[c])
		}
		if results[c] != want {
			t.Fatalf("caller %d saw %v, caller 0 saw %v", c, results[c], want)
		}
	}
	st := e.Stats()
	if st.Misses != 1 {
		t.Fatalf("Stats.Misses = %d, want 1 (single flight)", st.Misses)
	}
	if st.Hits != callers-1 {
		t.Fatalf("Stats.Hits = %d, want %d (every waiter answered without evaluating)", st.Hits, callers-1)
	}
	if st.Size != 1 {
		t.Fatalf("Stats.Size = %d, want 1", st.Size)
	}
}

// TestAbandonedOwnerHandsOffToWaiter covers the takeover path: the
// owning batch is canceled before its job reaches a worker, so a waiter
// must claim the key and evaluate it itself.
func TestAbandonedOwnerHandsOffToWaiter(t *testing.T) {
	base := circuits.MustGenerate("c432")
	var calls atomic.Int64
	// One worker, blocked on a decoy evaluation, so the owner's job for
	// the contested key can never be handed to a worker before cancel.
	decoyGate := make(chan struct{})
	started := make(chan struct{}, 1)
	e := New(base, 1, func(g *aig.AIG, s *Scratch, r synth.Recipe) float64 {
		if len(r) == 1 { // the decoy recipe
			started <- struct{}{}
			<-decoyGate
			return 0
		}
		calls.Add(1)
		return sizeEval(g, s, r)
	})
	defer e.Close()

	decoy := synth.Recipe{synth.StepBalance}
	contested := synth.Recipe{synth.StepBalance, synth.StepRewrite}

	// Occupy the only worker.
	var decoyWG sync.WaitGroup
	decoyWG.Add(1)
	go func() {
		defer decoyWG.Done()
		e.EvaluateBatch([]synth.Recipe{decoy})
	}()
	<-started

	// Owner: misses on the contested key, then blocks dispatching (the
	// worker is busy) until its context is canceled.
	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerClassified := make(chan struct{})
	var ownerErr error
	var ownerWG sync.WaitGroup
	ownerWG.Add(1)
	go func() {
		defer ownerWG.Done()
		close(ownerClassified)
		_, ownerErr = e.EvaluateBatchCtx(ownerCtx, []synth.Recipe{contested})
	}()
	<-ownerClassified
	time.Sleep(20 * time.Millisecond) // let the owner reach the dispatch select

	// Waiter: sees the in-flight entry and waits.
	var waiterOut []float64
	var waiterErr error
	var waiterWG sync.WaitGroup
	waiterWG.Add(1)
	go func() {
		defer waiterWG.Done()
		waiterOut, waiterErr = e.EvaluateBatchCtx(context.Background(), []synth.Recipe{contested})
	}()
	time.Sleep(20 * time.Millisecond)

	cancelOwner() // owner abandons the key
	ownerWG.Wait()
	if ownerErr == nil {
		t.Fatal("owner should have been canceled")
	}
	close(decoyGate) // free the worker for the waiter's takeover
	decoyWG.Wait()
	waiterWG.Wait()

	if waiterErr != nil {
		t.Fatalf("waiter failed after takeover: %v", waiterErr)
	}
	if calls.Load() != 1 {
		t.Fatalf("contested key evaluated %d times, want 1 (by the waiter)", calls.Load())
	}
	if v, ok := e.Cached(contested); !ok || v != waiterOut[0] {
		t.Fatalf("cache not settled after takeover: %v %v vs %v", v, ok, waiterOut[0])
	}
}

// TestSingleFlightManyKeysManyCallers hammers the evaluator with
// overlapping batches (run with -race in CI): every distinct key must
// evaluate exactly once.
func TestSingleFlightManyKeysManyCallers(t *testing.T) {
	base := circuits.MustGenerate("c432")
	var calls atomic.Int64
	e := New(base, 4, func(g *aig.AIG, s *Scratch, r synth.Recipe) float64 {
		calls.Add(1)
		return sizeEval(g, s, r)
	})
	defer e.Close()

	rs := recipes(12, 0)
	const callers = 6
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each caller evaluates an overlapping, rotated slice.
			batch := append(append([]synth.Recipe{}, rs[c:]...), rs[:c]...)
			if _, err := e.EvaluateBatchCtx(context.Background(), batch); err != nil {
				t.Errorf("caller %d: %v", c, err)
			}
		}(c)
	}
	wg.Wait()
	if n := calls.Load(); n != int64(len(rs)) {
		t.Fatalf("%d evaluations for %d distinct keys", n, len(rs))
	}
	st := e.Stats()
	if st.Misses != len(rs) || st.Size != len(rs) {
		t.Fatalf("stats %+v, want Misses=Size=%d", st, len(rs))
	}
	if st.Hits != callers*len(rs)-len(rs) {
		t.Fatalf("Hits = %d, want %d", st.Hits, callers*len(rs)-len(rs))
	}
}
