// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV): the model-transferability motivation (§III-A),
// Table I (proxy-model accuracy), Fig. 4 (SA recipe-search traces),
// Table II (OMLA/SCOPE/redundancy, resyn2 vs ALMOST), Fig. 5 (attacker
// re-synthesis), and Table III (PPA overheads).
//
// Each experiment is a pure function of its Options (fixed seeds), so
// reruns regenerate identical artifacts. Quick options trade benchmark
// count and training epochs for wall-clock while keeping the result
// shapes; Full options mirror the paper's settings.
//
// Every Run* function takes a context and returns the partial result
// computed so far together with an error when the context is canceled
// (matching core.ErrCanceled and ctx.Err()); an Options.Observer, when
// set, receives the pipeline progress events of every cell (cells run
// concurrently, so events from different cells interleave).
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/core"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/netio"
	"github.com/nyu-secml/almost/internal/synth"
)

// Source resolves a benchmark name to a fresh circuit. It must be safe
// for concurrent calls (experiment cells fan out across workers) and
// must return an independent netlist on every call.
type Source func(name string) (*aig.AIG, error)

// Options configures an experiment run.
type Options struct {
	Benchmarks    []string
	KeySizes      []int
	Cfg           core.Config
	RandomSetSize int // size of the random-recipe evaluation set
	Seed          int64
	Out           io.Writer // table/series sink; nil discards
	// Source resolves Benchmarks entries to circuits. When nil the
	// built-in ISCAS-85 set is used; set it (e.g. via FileSource) to
	// run every table/figure driver on arbitrary external netlists.
	Source Source
	// Observer, when non-nil, receives the progress events of every
	// pipeline run inside the experiment. Cells run concurrently, so
	// events from different (benchmark, key size) cells interleave.
	Observer core.Observer
	// Attacks names the registered attacks Table II evaluates, one row
	// per attack. Nil selects every registered attack in registration
	// order — so a third-party attack registered before the run gets a
	// table row automatically.
	Attacks []string
}

// attackNames resolves the Table II attack rows: opt.Attacks when set
// (each name must be registered), otherwise all registered attacks.
func (o Options) attackNames() ([]AttackName, error) {
	names := o.Attacks
	if names == nil {
		names = core.Attackers()
	}
	out := make([]AttackName, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			return nil, fmt.Errorf("experiments: attack %q listed twice", n)
		}
		seen[n] = true
		if _, ok := core.LookupAttacker(n); !ok {
			return nil, fmt.Errorf("experiments: attack %q is not registered (registered: %s)",
				n, strings.Join(core.Attackers(), ", "))
		}
		out = append(out, AttackName(n))
	}
	return out, nil
}

// circuit resolves one benchmark name through Source (or the built-ins).
func (o Options) circuit(name string) (*aig.AIG, error) {
	if o.Source != nil {
		return o.Source(name)
	}
	return circuits.Generate(name)
}

// FileSource loads the given netlist files (formats sniffed from the
// extensions: .bench, .aag, .aig) and returns their names — base name
// with the extension stripped — in argument order, together with a
// Source serving independent clones of them and falling back to the
// built-in circuits for any other name. Loading is eager so malformed
// files fail here, once, instead of inside a fanned-out cell.
func FileSource(paths ...string) ([]string, Source, error) {
	names := make([]string, 0, len(paths))
	byName := make(map[string]*aig.AIG, len(paths))
	for _, p := range paths {
		g, err := netio.ReadFile(p)
		if err != nil {
			return nil, nil, err
		}
		name := strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		if _, dup := byName[name]; dup {
			return nil, nil, fmt.Errorf("experiments: duplicate circuit name %q (from %s)", name, p)
		}
		names = append(names, name)
		byName[name] = g
	}
	src := func(name string) (*aig.AIG, error) {
		if g, ok := byName[name]; ok {
			return g.Clone(), nil
		}
		return circuits.Generate(name)
	}
	return names, src, nil
}

// coreOpts converts the Observer into core functional options.
func (o Options) coreOpts() []core.Option {
	if o.Observer == nil {
		return nil
	}
	return []core.Option{core.WithObserver(o.Observer)}
}

// canceledErr normalizes cancellation errors so every Run* error matches
// core.ErrCanceled regardless of whether the cancel was caught inside a
// pipeline call (already wrapped) or by this package's own checkpoints
// (bare ctx.Err()).
func canceledErr(err error) error {
	if err == nil || errors.Is(err, core.ErrCanceled) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", core.ErrCanceled, err)
	}
	return err
}

// QuickOptions returns a configuration that finishes each experiment in
// minutes on a laptop while preserving the paper's qualitative shapes.
func QuickOptions() Options {
	cfg := core.DefaultConfig()
	cfg.Attack.Epochs = 15
	cfg.Attack.Rounds = 6
	cfg.SA.Iterations = 20
	cfg.AdvPeriod = 5
	cfg.AdvGates = 30
	cfg.AdvSAIters = 6
	return Options{
		Benchmarks:    []string{"c1355", "c1908"},
		KeySizes:      []int{64},
		Cfg:           cfg,
		RandomSetSize: 8,
		Seed:          1,
	}
}

// FullOptions mirrors the paper's setup: all seven ISCAS85 benchmarks,
// key sizes 64 and 128, full Algorithm 1 settings, SA for 100 iterations.
func FullOptions() Options {
	return Options{
		Benchmarks:    circuits.PaperSet(),
		KeySizes:      []int{64, 128},
		Cfg:           core.PaperConfig(),
		RandomSetSize: 100,
		Seed:          1,
	}
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// jobs resolves the fan-out width from the framework config.
func (o Options) jobs() int {
	if o.Cfg.Parallelism > 0 {
		return o.Cfg.Parallelism
	}
	return runtime.NumCPU()
}

// cellOptions returns the Options used inside one fanned-out cell: the
// Parallelism budget is split between the cell fan-out and each cell's
// evaluation engine so total concurrency stays ~jobs (never jobs²), and
// a budget wider than the cell count flows into the per-cell engines
// instead of idling. Engine worker count never affects results, so this
// is wall-clock-only.
func (o Options) cellOptions(cells int) Options {
	if j := o.jobs(); cells > 1 && j > 1 {
		per := j / cells
		if per < 1 {
			per = 1
		}
		o.Cfg.Parallelism = per
	}
	return o
}

// fanOut runs fn(i) for every i in [0, n), at most jobs concurrently.
// Every experiment's per-(benchmark, key size) cell is a pure function of
// Options with its own seeds, so running cells concurrently and having
// each fn write only its own result slot reproduces the sequential
// output exactly; reports are printed after the barrier, in order.
//
// The context is checked before every cell launch: once canceled, no new
// cells start, in-flight cells run to their own cancellation checkpoints,
// and the first error (or ctx.Err()) is returned after the barrier.
func fanOut(ctx context.Context, n, jobs int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, jobs)
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// lockedInstance deterministically locks a benchmark for an experiment,
// resolving the circuit through the configured Source.
func (o Options) lockedInstance(name string, keySize int, seed int64) (*aig.AIG, *aig.AIG, lock.Key, error) {
	g, err := o.circuit(name)
	if err != nil {
		return nil, nil, nil, err
	}
	locked, key := lock.Lock(g, keySize, rand.New(rand.NewSource(seed)))
	return g, locked, key, nil
}

// randomRecipeSet draws n deterministic random recipes.
func randomRecipeSet(n, length int, seed int64) []synth.Recipe {
	rng := rand.New(rand.NewSource(seed))
	out := make([]synth.Recipe, n)
	for i := range out {
		out[i] = synth.RandomRecipe(rng, length)
	}
	return out
}

// --- §III-A: model transferability motivation -------------------------

// TransferResult holds the 2×2 cross-accuracy matrix of §III-A.
type TransferResult struct {
	Benchmark string
	S1, S2    synth.Recipe
	// Acc[i][j] = accuracy of model trained on S_i attacking T_{S_j}.
	Acc [2][2]float64
}

// RunTransferability reproduces the §III-A experiment: two attack models
// trained on two different recipes, evaluated across both synthesized
// netlists. The paper reports the diagonal (matched recipe) beating the
// off-diagonal on c5315.
func RunTransferability(ctx context.Context, bench string, keySize int, opt Options) (TransferResult, error) {
	_, locked, key, err := opt.lockedInstance(bench, keySize, opt.Seed)
	if err != nil {
		return TransferResult{Benchmark: bench}, err
	}
	rng := rand.New(rand.NewSource(opt.Seed + 11))
	s1 := synth.RandomRecipe(rng, opt.Cfg.RecipeLen)
	s2 := synth.RandomRecipe(rng, opt.Cfg.RecipeLen)
	t1 := s1.Apply(locked)
	t2 := s2.Apply(locked)

	res := TransferResult{Benchmark: bench, S1: s1, S2: s2}
	for i, s := range []synth.Recipe{s1, s2} {
		cfg := opt.Cfg
		cfg.Attack.Seed = opt.Seed + int64(i)
		p, err := core.TrainProxyCtx(ctx, locked, core.ModelResyn2, s, cfg, opt.coreOpts()...)
		if err != nil {
			return res, canceledErr(err)
		}
		res.Acc[i][0] = p.Attack.Accuracy(t1, key)
		res.Acc[i][1] = p.Attack.Accuracy(t2, key)
	}
	w := opt.out()
	fmt.Fprintf(w, "Transferability (%s, K=%d)\n", bench, keySize)
	fmt.Fprintf(w, "             T_S1      T_S2\n")
	fmt.Fprintf(w, "M_S1      %6.2f%%   %6.2f%%\n", res.Acc[0][0]*100, res.Acc[0][1]*100)
	fmt.Fprintf(w, "M_S2      %6.2f%%   %6.2f%%\n", res.Acc[1][0]*100, res.Acc[1][1]*100)
	return res, nil
}

// --- Table I: proxy-model accuracy ------------------------------------

// TableICell is the (resyn2, random-set-average) accuracy pair for one
// (model, benchmark, key size).
type TableICell struct {
	Resyn2    float64
	RandomAvg float64
}

// TableIResult maps model kind -> benchmark -> cell, per key size.
type TableIResult struct {
	KeySizes   []int
	Benchmarks []string
	// Cells[kind][keySizeIdx][benchIdx]
	Cells map[core.ModelKind][][]TableICell
}

// RunTableI reproduces Table I: predicted attack accuracy of M^resyn2,
// M^random, and M* on the resyn2-synthesized netlist and on a set of
// random-recipe netlists.
func RunTableI(ctx context.Context, opt Options) (TableIResult, error) {
	res := TableIResult{
		KeySizes:   opt.KeySizes,
		Benchmarks: opt.Benchmarks,
		Cells:      map[core.ModelKind][][]TableICell{},
	}
	kinds := []core.ModelKind{core.ModelResyn2, core.ModelRandom, core.ModelAdversarial}
	for _, kind := range kinds {
		res.Cells[kind] = make([][]TableICell, len(opt.KeySizes))
		for ki := range opt.KeySizes {
			res.Cells[kind][ki] = make([]TableICell, len(opt.Benchmarks))
		}
	}
	resyn := synth.Resyn2()
	nb := len(opt.Benchmarks)
	// Fan (key size, benchmark) cells out across workers; each cell writes
	// only its own Cells slots, and the table is printed after the barrier.
	ncells := len(opt.KeySizes) * nb
	copt := opt.cellOptions(ncells)
	err := fanOut(ctx, ncells, opt.jobs(), func(i int) error {
		ki, bi := i/nb, i%nb
		keySize, bench := opt.KeySizes[ki], opt.Benchmarks[bi]
		_, locked, key, err := opt.lockedInstance(bench, keySize, opt.Seed)
		if err != nil {
			return err
		}
		tResyn := resyn.Apply(locked)
		randomSet := randomRecipeSet(opt.RandomSetSize, opt.Cfg.RecipeLen, opt.Seed+99)
		randomNets := make([]*aig.AIG, len(randomSet))
		for i, r := range randomSet {
			randomNets[i] = r.Apply(locked)
		}
		for _, kind := range kinds {
			p, err := core.TrainProxyCtx(ctx, locked, kind, resyn, copt.Cfg, opt.coreOpts()...)
			if err != nil {
				return err
			}
			cell := TableICell{Resyn2: p.Attack.Accuracy(tResyn, key)}
			var sum float64
			for _, net := range randomNets {
				sum += p.Attack.Accuracy(net, key)
			}
			if len(randomNets) > 0 {
				cell.RandomAvg = sum / float64(len(randomNets))
			}
			res.Cells[kind][ki][bi] = cell
		}
		return nil
	})
	if err != nil {
		return res, canceledErr(err)
	}
	res.print(opt.out())
	return res, nil
}

func (r TableIResult) print(w io.Writer) {
	fmt.Fprintf(w, "\nTABLE I: PREDICTED ATTACK ACCURACY (%%) FOR DIFFERENT ADVERSARIAL MODELS\n")
	for _, kind := range []core.ModelKind{core.ModelResyn2, core.ModelRandom, core.ModelAdversarial} {
		for ki, keySize := range r.KeySizes {
			fmt.Fprintf(w, "%-9s K=%-4d", kind, keySize)
			for bi, bench := range r.Benchmarks {
				c := r.Cells[kind][ki][bi]
				fmt.Fprintf(w, " | %s resyn2=%5.2f random=%5.2f", bench, c.Resyn2*100, c.RandomAvg*100)
			}
			fmt.Fprintln(w)
		}
	}
}

// Gap returns, for the given kind and key-size index, the mean absolute
// difference between resyn2 and random-set accuracy across benchmarks —
// the consistency metric the paper uses to argue M* is the best proxy.
func (r TableIResult) Gap(kind core.ModelKind, ki int) float64 {
	cells := r.Cells[kind][ki]
	var sum float64
	for _, c := range cells {
		d := c.Resyn2 - c.RandomAvg
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(cells))
}
