package experiments

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/nyu-secml/almost/internal/core"
	"github.com/nyu-secml/almost/internal/techmap"
)

// microOptions shrinks everything to unit-test scale: one small
// benchmark, minimal training, few SA iterations (fewer still in -short
// mode; the assertions are scale-agnostic).
func microOptions() Options {
	opt := QuickOptions()
	opt.Benchmarks = []string{"c432"}
	opt.KeySizes = []int{8}
	opt.RandomSetSize = 2
	opt.Cfg.Attack.Rounds = 2
	opt.Cfg.Attack.GatesPerRound = 10
	opt.Cfg.Attack.Epochs = 4
	opt.Cfg.AdvPeriod = 2
	opt.Cfg.AdvGates = 6
	opt.Cfg.AdvSAIters = 2
	opt.Cfg.SA.Iterations = 4
	opt.Cfg.SAProposals = 2
	if testing.Short() {
		opt.Cfg.Attack.Rounds = 1
		opt.Cfg.Attack.GatesPerRound = 6
		opt.Cfg.Attack.Epochs = 2
		opt.Cfg.AdvGates = 4
		opt.Cfg.SA.Iterations = 2
		opt.Cfg.RecipeLen = 5 // halves the cost of every synthesis evaluation
	}
	return opt
}

// TestAttackNames covers the Options.Attacks resolution: nil selects
// every registered attack in registration order, explicit subsets are
// honored, unknown names are rejected with the registered list.
func TestAttackNames(t *testing.T) {
	opt := microOptions()
	names, err := opt.attackNames()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 || names[0] != AttackOMLA || names[1] != AttackSCOPE || names[2] != AttackRedundancy {
		t.Fatalf("default attack rows = %v", names)
	}
	opt.Attacks = []string{"scope"}
	names, err = opt.attackNames()
	if err != nil || len(names) != 1 || names[0] != AttackSCOPE {
		t.Fatalf("subset rows = %v, %v", names, err)
	}
	opt.Attacks = []string{"psychic"}
	if _, err := opt.attackNames(); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown attack accepted: %v", err)
	}
	opt.Attacks = []string{"omla", "omla"}
	if _, err := opt.attackNames(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate attack accepted: %v", err)
	}
}

// TestRunTableIISubsetRows runs Table II restricted to the cheap SCOPE
// row — the per-attack column/row selection the registry redesign adds.
func TestRunTableIISubsetRows(t *testing.T) {
	opt := microOptions()
	opt.Attacks = []string{"scope"}
	var buf bytes.Buffer
	opt.Out = &buf
	res, err := RunTableII(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Attack != AttackSCOPE {
		t.Fatalf("rows = %+v, want one scope row", res.Rows)
	}
	if len(res.Attacks) != 1 || res.Attacks[0] != AttackSCOPE {
		t.Fatalf("attacks = %v", res.Attacks)
	}
	if _, ok := res.Cell(AttackSCOPE, 8, "c432"); !ok {
		t.Fatal("scope cell missing")
	}
	if !strings.Contains(buf.String(), "TABLE II") {
		t.Fatal("missing table II output")
	}
}

func TestRunTransferability(t *testing.T) {
	opt := microOptions()
	var buf bytes.Buffer
	opt.Out = &buf
	res, err := RunTransferability(context.Background(), "c432", 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "c432" {
		t.Fatalf("benchmark = %q", res.Benchmark)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if res.Acc[i][j] < 0 || res.Acc[i][j] > 1 {
				t.Fatalf("Acc[%d][%d] = %v", i, j, res.Acc[i][j])
			}
		}
	}
	if !strings.Contains(buf.String(), "Transferability") {
		t.Fatalf("missing report output")
	}
	if res.S1.Equal(res.S2) {
		t.Fatalf("S1 and S2 should differ")
	}
}

func TestRunTableI(t *testing.T) {
	opt := microOptions()
	var buf bytes.Buffer
	opt.Out = &buf
	res, err := RunTableI(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []core.ModelKind{core.ModelResyn2, core.ModelRandom, core.ModelAdversarial} {
		cells := res.Cells[kind]
		if len(cells) != 1 || len(cells[0]) != 1 {
			t.Fatalf("%v: wrong cell shape", kind)
		}
		c := cells[0][0]
		if c.Resyn2 < 0 || c.Resyn2 > 1 || c.RandomAvg < 0 || c.RandomAvg > 1 {
			t.Fatalf("%v: out-of-range accuracies %+v", kind, c)
		}
		if g := res.Gap(kind, 0); g < 0 || g > 1 {
			t.Fatalf("%v: gap %v", kind, g)
		}
	}
	if !strings.Contains(buf.String(), "TABLE I") {
		t.Fatalf("missing table output")
	}
}

func TestRunFig4(t *testing.T) {
	opt := microOptions()
	var buf bytes.Buffer
	opt.Out = &buf
	series, err := RunFig4(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	s := series[0]
	for _, kind := range []core.ModelKind{core.ModelResyn2, core.ModelRandom, core.ModelAdversarial} {
		if len(s.Curves[kind]) == 0 {
			t.Fatalf("%v: empty curve", kind)
		}
		if len(s.Recipes[kind]) != opt.Cfg.RecipeLen {
			t.Fatalf("%v: recipe length %d", kind, len(s.Recipes[kind]))
		}
	}
	// IterationsToReach with a huge tolerance is iteration 0; with a
	// negative tolerance it is never.
	if s.IterationsToReach(core.ModelResyn2, 1.0) != 0 {
		t.Fatalf("tolerant reach should be 0")
	}
	if s.IterationsToReach(core.ModelResyn2, -1) != -1 {
		t.Fatalf("impossible reach should be -1")
	}
	if !strings.Contains(buf.String(), "FIG 4") {
		t.Fatalf("missing figure output")
	}
}

func TestRunFig5(t *testing.T) {
	opt := microOptions()
	var buf bytes.Buffer
	opt.Out = &buf
	series, err := RunFig5(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 { // delay + area for one benchmark
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("%v: empty trace", s.Target)
		}
		for _, p := range s.Points {
			if p.Ratio <= 0 {
				t.Fatalf("%v: non-positive PPA ratio %v", s.Target, p.Ratio)
			}
			if p.Accuracy < 0 || p.Accuracy > 1 {
				t.Fatalf("%v: accuracy %v", s.Target, p.Accuracy)
			}
		}
		if c := s.Correlation(); c < -1.0001 || c > 1.0001 {
			t.Fatalf("correlation %v out of range", c)
		}
	}
	if !strings.Contains(buf.String(), "FIG 5") {
		t.Fatalf("missing figure output")
	}
}

func TestRunTableIIAndIII(t *testing.T) {
	if testing.Short() {
		t.Skip("attack-heavy experiment in -short mode")
	}
	opt := microOptions()
	var buf bytes.Buffer
	opt.Out = &buf
	res, err := RunTableII(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// One row per registered attack × one key size: the oracle-guided
	// satattack/appsat rows appear automatically alongside the paper's
	// three oracle-less ones.
	if want := len(core.Attackers()); len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		c, ok := row.Cells["c432"]
		if !ok {
			t.Fatalf("%s: missing benchmark cell", row.Attack)
		}
		for _, v := range []float64{c.Resyn2, c.ALMOST} {
			if v < 0 || v > 1 {
				t.Fatalf("%s: accuracy %v", row.Attack, v)
			}
		}
	}
	if _, ok := res.Cell(AttackOMLA, 8, "c432"); !ok {
		t.Fatalf("Cell lookup failed")
	}
	if _, ok := res.Cell(AttackOMLA, 999, "c432"); ok {
		t.Fatalf("Cell lookup for absent key size succeeded")
	}
	if !strings.Contains(buf.String(), "TABLE II") {
		t.Fatalf("missing table II output")
	}

	// Table III reuses the recipes from Table II.
	res3, err := RunTableIII(context.Background(), opt, res.Recipes)
	if err != nil {
		t.Fatal(err)
	}
	cell := res3.Cells["c432"][8]
	for _, effort := range []techmap.Effort{techmap.EffortNone, techmap.EffortHigh} {
		c := cell[effort]
		for _, v := range []float64{c.Area, c.Delay, c.Power} {
			if v < -95 || v > 500 {
				t.Fatalf("implausible overhead %v", v)
			}
		}
	}
	if !strings.Contains(buf.String(), "TABLE III") {
		t.Fatalf("missing table III output")
	}
}

// TestRunTableIJobsInvariant forces the concurrent fan-out path
// (Parallelism > 1) — which a single-CPU machine would otherwise never
// exercise — and checks it reproduces the sequential results exactly.
func TestRunTableIJobsInvariant(t *testing.T) {
	opt := microOptions()
	opt.KeySizes = []int{6, 8} // two cells so the fan-out actually fans
	opt.RandomSetSize = 1
	opt.Cfg.Parallelism = 1
	seq, err := RunTableI(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Cfg.Parallelism = 2
	par, err := RunTableI(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []core.ModelKind{core.ModelResyn2, core.ModelRandom, core.ModelAdversarial} {
		for ki := range opt.KeySizes {
			for bi := range opt.Benchmarks {
				if seq.Cells[kind][ki][bi] != par.Cells[kind][ki][bi] {
					t.Fatalf("%v cell (%d,%d) differs across jobs: %+v vs %+v",
						kind, ki, bi, seq.Cells[kind][ki][bi], par.Cells[kind][ki][bi])
				}
			}
		}
	}
}

// TestExperimentsHonorCancellation checks the ctx plumbing of every
// experiment entry point with a pre-canceled context: prompt error
// return, no compute.
func TestExperimentsHonorCancellation(t *testing.T) {
	opt := microOptions()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	check := func(name string, err error) {
		t.Helper()
		if !errors.Is(err, context.Canceled) || !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("%s: err = %v, want context.Canceled ∧ core.ErrCanceled", name, err)
		}
	}
	_, err := RunTransferability(ctx, "c432", 8, opt)
	check("transfer", err)
	_, err = RunTableI(ctx, opt)
	check("table1", err)
	_, err = RunFig4(ctx, opt)
	check("fig4", err)
	_, err = RunTableII(ctx, opt)
	check("table2", err)
	_, err = RunTableIII(ctx, opt, nil)
	check("table3", err)
	_, err = RunFig5(ctx, opt)
	check("fig5", err)
}

// TestTableIStreamsObserverEvents checks Options.Observer wiring.
func TestTableIStreamsObserverEvents(t *testing.T) {
	opt := microOptions()
	var mu sync.Mutex
	count := 0
	opt.Observer = func(core.Event) {
		mu.Lock()
		count++
		mu.Unlock()
	}
	if _, err := RunTableI(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("no events streamed through Options.Observer")
	}
}

func TestOptionsPresets(t *testing.T) {
	q := QuickOptions()
	f := FullOptions()
	if len(f.Benchmarks) != 7 {
		t.Fatalf("full benchmarks = %d", len(f.Benchmarks))
	}
	if len(f.KeySizes) != 2 || f.KeySizes[0] != 64 || f.KeySizes[1] != 128 {
		t.Fatalf("full key sizes = %v", f.KeySizes)
	}
	if q.Cfg.Attack.Epochs >= f.Cfg.Attack.Epochs {
		t.Fatalf("quick should train fewer epochs than full")
	}
	if q.out() == nil {
		t.Fatalf("nil-out options must provide a sink")
	}
}

func TestRandomRecipeSetDeterministic(t *testing.T) {
	a := randomRecipeSet(5, 10, 42)
	b := randomRecipeSet(5, 10, 42)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("recipe set not deterministic")
		}
	}
}
