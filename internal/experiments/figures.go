package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/anneal"
	"github.com/nyu-secml/almost/internal/core"
	"github.com/nyu-secml/almost/internal/synth"
	"github.com/nyu-secml/almost/internal/techmap"
)

// --- Fig. 4: SA recipe search with the three evaluator models ---------

// Fig4Series is one benchmark's three accuracy-vs-iteration curves.
type Fig4Series struct {
	Benchmark string
	// Curves[kind][i] = proxy-estimated accuracy at SA iteration i.
	Curves map[core.ModelKind][]float64
	// Final recipes found by each evaluator.
	Recipes map[core.ModelKind]synth.Recipe
}

// RunFig4 reproduces Fig. 4: for each benchmark, the SA-based recipe
// search is run three times, using M^resyn2, M^random, and M* as the
// accuracy evaluator, and the per-iteration accuracy is recorded. The
// paper's observed shape: searches guided by M* take longer to reach
// ~50% because the adversarially trained model is harder to fool.
func RunFig4(ctx context.Context, opt Options) ([]Fig4Series, error) {
	resyn := synth.Resyn2()
	keySize := opt.KeySizes[0]
	out := make([]Fig4Series, len(opt.Benchmarks))
	copt := opt.cellOptions(len(opt.Benchmarks))
	err := fanOut(ctx, len(opt.Benchmarks), opt.jobs(), func(bi int) error {
		bench := opt.Benchmarks[bi]
		_, locked, key, err := opt.lockedInstance(bench, keySize, opt.Seed)
		if err != nil {
			return err
		}
		series := Fig4Series{
			Benchmark: bench,
			Curves:    map[core.ModelKind][]float64{},
			Recipes:   map[core.ModelKind]synth.Recipe{},
		}
		for _, kind := range []core.ModelKind{core.ModelAdversarial, core.ModelResyn2, core.ModelRandom} {
			proxy, err := core.TrainProxyCtx(ctx, locked, kind, resyn, copt.Cfg, opt.coreOpts()...)
			if err != nil {
				return err
			}
			res, err := core.SearchRecipeCtx(ctx, locked, key, proxy, copt.Cfg, opt.coreOpts()...)
			if err != nil {
				return err
			}
			curve := make([]float64, len(res.Trace))
			for i, tp := range res.Trace {
				curve[i] = tp.Accuracy
			}
			series.Curves[kind] = curve
			series.Recipes[kind] = res.Recipe
		}
		out[bi] = series
		return nil
	})
	if err != nil {
		return out, canceledErr(err)
	}
	for _, series := range out {
		printFig4(opt.out(), series)
	}
	return out, nil
}

func printFig4(w io.Writer, s Fig4Series) {
	fmt.Fprintf(w, "\nFIG 4 (%s): SA accuracy traces\n", s.Benchmark)
	fmt.Fprintf(w, "iter, adversarial, resyn2, random\n")
	n := len(s.Curves[core.ModelAdversarial])
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%4d, %.4f, %.4f, %.4f\n", i,
			at(s.Curves[core.ModelAdversarial], i),
			at(s.Curves[core.ModelResyn2], i),
			at(s.Curves[core.ModelRandom], i))
	}
}

func at(xs []float64, i int) float64 {
	if i < len(xs) {
		return xs[i]
	}
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}

// IterationsToReach returns the first iteration at which the curve comes
// within tol of 0.5, or -1 if it never does — the Fig. 4 comparison
// metric.
func (s Fig4Series) IterationsToReach(kind core.ModelKind, tol float64) int {
	for i, a := range s.Curves[kind] {
		d := a - 0.5
		if d < 0 {
			d = -d
		}
		if d <= tol {
			return i
		}
	}
	return -1
}

// --- Fig. 5: attacker re-synthesis targeting PPA ----------------------

// PPATarget selects the re-synthesis objective of Fig. 5.
type PPATarget int

// Objectives.
const (
	TargetDelay PPATarget = iota
	TargetArea
)

func (t PPATarget) String() string {
	if t == TargetArea {
		return "area"
	}
	return "delay"
}

// Fig5Point is one iteration of the attacker's PPA-driven re-synthesis.
type Fig5Point struct {
	Iteration int
	Accuracy  float64 // M* attack accuracy on the re-synthesized netlist
	Ratio     float64 // area or delay normalized to the resyn2 baseline
}

// Fig5Series is one (benchmark, objective) trace.
type Fig5Series struct {
	Benchmark string
	Target    PPATarget
	Points    []Fig5Point
}

// ppaProblem anneals over recipes minimizing mapped area or delay.
type ppaProblem struct {
	locked *aig.AIG
	lib    *techmap.Library
	target PPATarget
	cache  map[string]float64
}

func (p *ppaProblem) Energy(r synth.Recipe) float64 {
	k := r.String()
	if v, ok := p.cache[k]; ok {
		return v
	}
	res := techmap.Map(r.Apply(p.locked), p.lib, techmap.EffortNone)
	v := res.Delay
	if p.target == TargetArea {
		v = res.Area
	}
	p.cache[k] = v
	return v
}

func (p *ppaProblem) Neighbor(r synth.Recipe, rng *rand.Rand) synth.Recipe {
	return synth.MutateRecipe(rng, r)
}

// RunFig5 reproduces Fig. 5: starting from the ALMOST-synthesized locked
// netlist, the attacker re-synthesizes with SA recipes minimizing delay
// (and, separately, area); at each iteration the M* attack accuracy and
// the normalized PPA metric are recorded. The paper's claim: no
// correlation between PPA optimization and attack accuracy, so
// re-synthesis does not help the attacker.
func RunFig5(ctx context.Context, opt Options) ([]Fig5Series, error) {
	resyn := synth.Resyn2()
	lib := techmap.NanGate45()
	keySize := opt.KeySizes[0]
	out := make([]Fig5Series, 2*len(opt.Benchmarks))
	copt := opt.cellOptions(len(opt.Benchmarks))
	err := fanOut(ctx, len(opt.Benchmarks), opt.jobs(), func(bi int) error {
		bench := opt.Benchmarks[bi]
		_, locked, key, err := opt.lockedInstance(bench, keySize, opt.Seed)
		if err != nil {
			return err
		}
		proxy, err := core.TrainProxyCtx(ctx, locked, core.ModelAdversarial, resyn, copt.Cfg, opt.coreOpts()...)
		if err != nil {
			return err
		}
		search, err := core.SearchRecipeCtx(ctx, locked, key, proxy, copt.Cfg, opt.coreOpts()...)
		if err != nil {
			return err
		}
		almostNet := search.Recipe.Apply(locked)
		base := techmap.Map(resyn.Apply(locked), lib, techmap.EffortNone)

		for ti, target := range []PPATarget{TargetDelay, TargetArea} {
			prob := &ppaProblem{locked: almostNet, lib: lib, target: target,
				cache: map[string]float64{}}
			rng := rand.New(rand.NewSource(opt.Seed + 17))
			res, err := anneal.RunCtx[synth.Recipe](ctx, prob, synth.RandomRecipe(rng, opt.Cfg.RecipeLen),
				opt.Cfg.SA, rng, nil)
			if err != nil {
				return err
			}
			series := Fig5Series{Benchmark: bench, Target: target}
			for _, tp := range res.Trace {
				net := tp.State.Apply(almostNet)
				acc := proxy.Attack.Accuracy(net, key)
				den := base.Delay
				if target == TargetArea {
					den = base.Area
				}
				ratio := tp.Energy / den
				series.Points = append(series.Points, Fig5Point{
					Iteration: tp.Iteration, Accuracy: acc, Ratio: ratio})
			}
			out[2*bi+ti] = series
		}
		return nil
	})
	if err != nil {
		return out, canceledErr(err)
	}
	for _, series := range out {
		printFig5(opt.out(), series)
	}
	return out, nil
}

func printFig5(w io.Writer, s Fig5Series) {
	fmt.Fprintf(w, "\nFIG 5 (%s, minimize %s): accuracy vs normalized %s\n",
		s.Benchmark, s.Target, s.Target)
	fmt.Fprintf(w, "iter, accuracy, %s_ratio\n", s.Target)
	for _, p := range s.Points {
		fmt.Fprintf(w, "%4d, %.4f, %.4f\n", p.Iteration, p.Accuracy, p.Ratio)
	}
}

// Correlation returns the Pearson correlation between accuracy and the
// PPA ratio across the trace — the paper argues it is near zero.
func (s Fig5Series) Correlation() float64 {
	n := float64(len(s.Points))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for _, p := range s.Points {
		sx += p.Accuracy
		sy += p.Ratio
		sxx += p.Accuracy * p.Accuracy
		syy += p.Ratio * p.Ratio
		sxy += p.Accuracy * p.Ratio
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / (math.Sqrt(vx) * math.Sqrt(vy))
}
