package experiments

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/attack/redundancy"
	"github.com/nyu-secml/almost/internal/attack/satattack"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/cnf"
	"github.com/nyu-secml/almost/internal/core"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/netio"
)

// Scenario is one randomized cross-scheme interaction check: a random
// circuit is round-tripped through a netlist format, locked with a
// scheme chain, round-tripped again, relocked on top of the parsed
// netlist, and optionally attacked — with functional-correctness and
// determinism assertions at every seam. The locker × attacker × format
// matrix is exactly where cross-layer bugs hide (PR 3's writer bug and
// PR 4's NaN-annealing bug were both cross-scheme interactions), so the
// fuzzer treats every violation as a hard failure.
type Scenario struct {
	// Seed drives every random choice: circuit shape, locking, attack.
	Seed int64
	// Lockers is the scheme chain, as in Config.Lockers (empty = rll).
	Lockers []string
	// Attack optionally names a registered attacker to run with quick
	// settings ("" skips the attack stage).
	Attack string
	// Format is the netlist format the scenario round-trips through.
	Format netio.Format
	// KeySize is the total key width of the chain.
	KeySize int
	// Inputs/Outputs/Gates shape the random circuit.
	Inputs, Outputs, Gates int
}

// Clamp normalizes a fuzz-generated scenario to the supported envelope,
// keeping arbitrary fuzzer bytes from requesting absurd work while
// still exploring the full structural space.
func (sc *Scenario) Clamp() {
	clamp := func(v *int, lo, hi int) {
		if *v < lo {
			*v = lo
		}
		if *v > hi {
			*v = hi
		}
	}
	clamp(&sc.Inputs, 2, 24)
	clamp(&sc.Outputs, 1, 12)
	clamp(&sc.Gates, 1, 300)
	clamp(&sc.KeySize, 2, 24)
	if len(sc.Lockers) == 0 {
		sc.Lockers = []string{"rll"}
	}
	if sc.Format != netio.FormatBench && sc.Format != netio.FormatAAG {
		sc.Format = netio.FormatBench
	}
}

// RunScenario executes one scenario and returns the first invariant
// violation as an error (nil means the scenario held). It is the engine
// behind both the scenario matrix test and the CI fuzz smoke target.
func RunScenario(ctx context.Context, sc Scenario) error {
	sc.Clamp()
	rng := rand.New(rand.NewSource(sc.Seed))
	g := circuits.RandomCircuit(rng, sc.Inputs, sc.Outputs, sc.Gates)

	// Seam 1: the unlocked circuit must survive a write→parse round
	// trip untouched.
	rt, err := roundTrip(g, sc.Format)
	if err != nil {
		return fmt.Errorf("round-trip unlocked: %w", err)
	}
	if ok, cex, err := cnf.EquivalentCtx(ctx, g, rt); err != nil {
		return fmt.Errorf("equivalence after round-trip: %w", err)
	} else if !ok {
		return fmt.Errorf("round-trip changed function (cex %v)", cex)
	}

	// Seam 2: the locker chain composes functionally on the parsed
	// netlist.
	locked, key, err := core.LockWithCtx(ctx, rt, sc.KeySize, sc.Lockers, rand.New(rand.NewSource(sc.Seed+1)))
	if err != nil {
		return fmt.Errorf("lock chain %v: %w", sc.Lockers, err)
	}
	if ok, cex, err := cnf.EquivalentUnderKeyCtx(ctx, rt, locked, key); err != nil {
		return fmt.Errorf("key equivalence after locking: %w", err)
	} else if !ok {
		return fmt.Errorf("chain %v key does not unlock (cex %v)", sc.Lockers, cex)
	}

	// Determinism: the same seed must reproduce the identical locked
	// netlist, bit for bit.
	locked2, key2, err := core.LockWithCtx(ctx, rt, sc.KeySize, sc.Lockers, rand.New(rand.NewSource(sc.Seed+1)))
	if err != nil {
		return fmt.Errorf("relock for determinism: %w", err)
	}
	if key.String() != key2.String() {
		return fmt.Errorf("nondeterministic key: %s vs %s", key, key2)
	}
	b1, err := netio.WriteBenchString(locked)
	if err != nil {
		return fmt.Errorf("write locked: %w", err)
	}
	b2, err := netio.WriteBenchString(locked2)
	if err != nil {
		return fmt.Errorf("write relocked: %w", err)
	}
	if b1 != b2 {
		return fmt.Errorf("nondeterministic locked netlist for seed %d", sc.Seed)
	}

	// Seam 3: the locked netlist round-trips with its key-input
	// identities (names, flags, order) intact.
	lockedRT, err := roundTrip(locked, sc.Format)
	if err != nil {
		return fmt.Errorf("round-trip locked: %w", err)
	}
	if got, want := lockedRT.NumKeyInputs(), locked.NumKeyInputs(); got != want {
		return fmt.Errorf("round-trip lost key inputs: %d vs %d", got, want)
	}
	for i, ki := range locked.KeyInputIndices() {
		rtKi := lockedRT.KeyInputIndices()[i]
		if locked.InputName(ki) != lockedRT.InputName(rtKi) {
			return fmt.Errorf("key input %d renamed across round-trip: %q vs %q",
				i, locked.InputName(ki), lockedRT.InputName(rtKi))
		}
	}
	if ok, cex, err := cnf.EquivalentUnderKeyCtx(ctx, rt, lockedRT, key); err != nil {
		return fmt.Errorf("key equivalence after locked round-trip: %w", err)
	} else if !ok {
		return fmt.Errorf("locked round-trip broke the key (cex %v)", cex)
	}

	// Seam 4 (the prime suspect): lock AGAIN on the parsed locked
	// netlist. The "keyinput%d" base-offset numbering must continue
	// from the existing key inputs, not collide with them.
	extra := 2 + int(sc.Seed%3)
	relocked, extraKey, err := core.LockWithCtx(ctx, lockedRT, extra, sc.Lockers[:1], rand.New(rand.NewSource(sc.Seed+2)))
	if err != nil {
		return fmt.Errorf("lock-again after round-trip: %w", err)
	}
	names := map[string]bool{}
	for _, ki := range relocked.KeyInputIndices() {
		name := relocked.InputName(ki)
		if !strings.HasPrefix(name, netio.KeyInputPrefix) {
			return fmt.Errorf("key input %q lost the naming convention after lock-again", name)
		}
		if names[name] {
			return fmt.Errorf("duplicate key input name %q after write→parse→lock-again", name)
		}
		names[name] = true
	}
	fullKey := append(append(lock.Key{}, key...), extraKey...)
	if ok, cex, err := cnf.EquivalentUnderKeyCtx(ctx, rt, relocked, fullKey); err != nil {
		return fmt.Errorf("key equivalence after lock-again: %w", err)
	} else if !ok {
		return fmt.Errorf("lock-again key does not unlock (cex %v)", cex)
	}

	// Seam 5: optionally attack the locked netlist with quick settings;
	// the attacker must finish without error and score a sane accuracy.
	if sc.Attack != "" {
		acc, err := runQuickAttack(ctx, sc.Attack, locked, key, sc.Seed)
		if err != nil {
			return fmt.Errorf("attack %s: %w", sc.Attack, err)
		}
		if acc < 0 || acc > 1 {
			return fmt.Errorf("attack %s reported accuracy %v outside [0,1]", sc.Attack, acc)
		}
	}
	return nil
}

// roundTrip writes g in format f to memory and parses it back.
func roundTrip(g *aig.AIG, f netio.Format) (*aig.AIG, error) {
	var buf bytes.Buffer
	if err := netio.Write(&buf, g, f); err != nil {
		return nil, err
	}
	return netio.Read(&buf, f)
}

// runQuickAttack runs a registered attacker with effort settings small
// enough for a fuzz smoke budget.
func runQuickAttack(ctx context.Context, name string, locked *aig.AIG, key lock.Key, seed int64) (float64, error) {
	atk, ok := core.LookupAttacker(name)
	if !ok {
		return 0, fmt.Errorf("experiments: attack %q is not registered", name)
	}
	rcfg := redundancy.DefaultConfig()
	rcfg.FaultSamples = 4
	rcfg.SATConflicts = 200
	rcfg.Seed = seed
	scfg := satattack.DefaultConfig()
	scfg.MaxDIPs = 64
	scfg.SolveConflicts = 20000
	scfg.QuerySamples = 16
	scfg.Seed = seed
	return atk.AttackCtx(ctx, locked, key,
		core.WithRedundancyConfig(rcfg), core.WithSATAttackConfig(scfg))
}
