package experiments

import (
	"context"
	"runtime"
	"testing"
	"time"

	"github.com/nyu-secml/almost/internal/netio"
)

// TestScenarioMatrix sweeps the locker × attacker × format matrix with a
// few seeds each — the deterministic core of the scenario fuzzer. OMLA
// is excluded only because GNN training dwarfs the smoke budget; it is
// exercised by the pipeline tests.
func TestScenarioMatrix(t *testing.T) {
	chains := [][]string{
		{"rll"},
		{"mux"},
		{"antisat"},
		{"rll", "antisat"},
		{"rll", "mux", "antisat"},
		{"mux", "rll"},
	}
	attacks := []string{"", "scope", "redundancy", "satattack", "appsat"}
	formats := []netio.Format{netio.FormatBench, netio.FormatAAG}
	seeds := []int64{1, 7}
	if testing.Short() {
		attacks = []string{"", "satattack"}
		seeds = seeds[:1]
	}
	ctx := context.Background()
	for _, chain := range chains {
		for _, atk := range attacks {
			for _, f := range formats {
				for _, seed := range seeds {
					sc := Scenario{
						Seed: seed, Lockers: chain, Attack: atk, Format: f,
						KeySize: 8 + int(seed)%8,
						Inputs:  6 + int(seed)%6, Outputs: 3, Gates: 60,
					}
					if err := RunScenario(ctx, sc); err != nil {
						t.Errorf("scenario %+v: %v", sc, err)
					}
				}
			}
		}
	}
}

// TestScenarioNoGoroutineLeak asserts the whole matrix leaves no stray
// goroutines behind — attacks and solvers must clean up their workers.
func TestScenarioNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	sc := Scenario{Seed: 3, Lockers: []string{"rll", "antisat"}, Attack: "satattack",
		Format: netio.FormatBench, KeySize: 10, Inputs: 8, Outputs: 4, Gates: 80}
	if err := RunScenario(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	// Allow the runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestScenarioTinyCircuits drives the degenerate shapes (fewer inputs
// than the anti-SAT block wants, more key bits than gates) that clamping
// and fallback paths must absorb.
func TestScenarioTinyCircuits(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 6; seed++ {
		sc := Scenario{
			Seed: seed, Lockers: []string{"rll", "antisat"}, Attack: "satattack",
			Format: netio.FormatAAG, KeySize: 24, Inputs: 2, Outputs: 1, Gates: 3,
		}
		if err := RunScenario(ctx, sc); err != nil {
			t.Errorf("tiny scenario seed %d: %v", seed, err)
		}
	}
}

// FuzzScenario is the CI fuzz-smoke entry: arbitrary bytes become a
// scenario (clamped to the supported envelope), and every invariant
// violation is a crash.
func FuzzScenario(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(8), uint8(6), uint8(3), uint8(60))
	f.Add(int64(7), uint8(3), uint8(2), uint8(12), uint8(10), uint8(2), uint8(120))
	f.Add(int64(42), uint8(5), uint8(4), uint8(24), uint8(2), uint8(1), uint8(3))
	chains := [][]string{
		{"rll"}, {"mux"}, {"antisat"},
		{"rll", "antisat"}, {"mux", "antisat"}, {"rll", "mux", "antisat"},
	}
	attacks := []string{"", "scope", "redundancy", "satattack", "appsat"}
	f.Fuzz(func(t *testing.T, seed int64, chainSel, attackSel, keySize, inputs, outputs, gates uint8) {
		sc := Scenario{
			Seed:    seed,
			Lockers: chains[int(chainSel)%len(chains)],
			Attack:  attacks[int(attackSel)%len(attacks)],
			Format:  netio.FormatBench,
			KeySize: int(keySize), Inputs: int(inputs), Outputs: int(outputs), Gates: int(gates),
		}
		if seed%2 == 0 {
			sc.Format = netio.FormatAAG
		}
		if err := RunScenario(context.Background(), sc); err != nil {
			t.Fatalf("scenario %+v: %v", sc, err)
		}
	})
}
