package experiments

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/netio"
)

// TestFileSourceServesExternalCircuits loads an external netlist file
// and checks the source serves clones of it under the base name while
// falling back to the built-ins for other names.
func TestFileSourceServesExternalCircuits(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mydesign.aag")
	if err := netio.WriteFile(path, circuits.MustGenerate("c432")); err != nil {
		t.Fatal(err)
	}
	names, src, err := FileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "mydesign" {
		t.Fatalf("names = %v, want [mydesign]", names)
	}
	a, err := src("mydesign")
	if err != nil {
		t.Fatal(err)
	}
	b, err := src("mydesign")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("source returned the same netlist twice; must clone")
	}
	a.AddInput("scratch")
	if b.NumInputs() != 36 || a.NumInputs() != 37 {
		t.Fatalf("clones share state: a=%v b=%v", a, b)
	}
	// Fallback to built-ins.
	if _, err := src("c499"); err != nil {
		t.Fatalf("built-in fallback failed: %v", err)
	}
	if _, err := src("c9999"); err == nil {
		t.Fatal("unknown name should fail")
	}
	// Malformed files fail eagerly.
	bad := filepath.Join(dir, "bad.bench")
	if err := netio.WriteFile(bad, circuits.MustGenerate("c432")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := FileSource(filepath.Join(dir, "missing.aig")); err == nil {
		t.Fatal("missing file should fail at FileSource time")
	}
}

// TestExperimentOnExternalCircuit runs the cheapest driver end to end
// on a circuit supplied as a netlist file instead of a built-in name.
func TestExperimentOnExternalCircuit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "extc432.aig")
	if err := netio.WriteFile(path, circuits.MustGenerate("c432")); err != nil {
		t.Fatal(err)
	}
	names, src, err := FileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	opt := microOptions()
	opt.Benchmarks = names
	opt.Source = src
	var buf bytes.Buffer
	opt.Out = &buf
	res, err := RunTransferability(context.Background(), names[0], opt.KeySizes[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "extc432" {
		t.Fatalf("benchmark = %q", res.Benchmark)
	}
	if !strings.Contains(buf.String(), "extc432") {
		t.Fatalf("report does not mention the external circuit:\n%s", buf.String())
	}
	// An unknown name still surfaces a loader error, not a panic.
	if _, err := RunTransferability(context.Background(), "c9999", 8, opt); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}
