package experiments

import (
	"context"
	"fmt"
	"io"

	"github.com/nyu-secml/almost/internal/attack/redundancy"
	"github.com/nyu-secml/almost/internal/core"
	"github.com/nyu-secml/almost/internal/synth"
	"github.com/nyu-secml/almost/internal/techmap"
)

// redundancySamples scales the redundancy attack's fault sampling down
// for quick runs.
func redundancySamples(opt Options) int {
	if opt.RandomSetSize < 50 {
		return 10
	}
	return redundancy.DefaultConfig().FaultSamples
}

// --- Table II: SOTA attacks on resyn2 vs ALMOST netlists --------------

// AttackName identifies an attack row of Table II by its registered
// name (core.Attackers()).
type AttackName string

// Built-in attacks evaluated in Table II.
const (
	AttackOMLA       AttackName = "omla"
	AttackSCOPE      AttackName = "scope"
	AttackRedundancy AttackName = "redundancy"
)

// TableIICell is the (resyn2, ALMOST) accuracy pair for one attack on
// one benchmark/key size.
type TableIICell struct {
	Resyn2 float64
	ALMOST float64
}

// TableIIRow is one (attack, key size) row across benchmarks.
type TableIIRow struct {
	Attack  AttackName
	KeySize int
	Cells   map[string]TableIICell // benchmark -> cell
}

// TableIIResult is the full table plus the ALMOST recipes used.
type TableIIResult struct {
	Attacks []AttackName // row order: the attacks evaluated
	Rows    []TableIIRow
	Recipes map[string]map[int]synth.Recipe // benchmark -> keySize -> S_ALMOST
}

// RunTableII reproduces Table II: for every benchmark and key size, an
// S_ALMOST recipe is generated with the M* proxy, then every attack of
// opt.Attacks — default: all registered attacks, in registration order
// (OMLA trained independently with knowledge of the respective recipe,
// SCOPE, redundancy, plus any third-party registrations) — is run
// against both the resyn2- and the ALMOST-synthesized locked netlists.
// One table row per (attack, key size): registering a new attack adds
// its row with no changes here.
func RunTableII(ctx context.Context, opt Options) (TableIIResult, error) {
	attacks, err := opt.attackNames()
	if err != nil {
		return TableIIResult{}, err
	}
	res := TableIIResult{Attacks: attacks, Recipes: map[string]map[int]synth.Recipe{}}
	resyn := synth.Resyn2()
	rows := map[AttackName]map[int]*TableIIRow{}
	for _, atk := range attacks {
		rows[atk] = map[int]*TableIIRow{}
		for _, ks := range opt.KeySizes {
			rows[atk][ks] = &TableIIRow{Attack: atk, KeySize: ks, Cells: map[string]TableIICell{}}
		}
	}
	// Each (benchmark, key size) pair — recipe search plus the
	// independent attacks — is self-contained, so pairs fan out across
	// workers into per-pair slots, merged into the shared maps afterwards.
	type pairResult struct {
		recipe synth.Recipe
		cells  map[AttackName]TableIICell
	}
	nk := len(opt.KeySizes)
	pairs := make([]pairResult, len(opt.Benchmarks)*nk)
	copt := opt.cellOptions(len(pairs))
	err = fanOut(ctx, len(pairs), opt.jobs(), func(i int) error {
		bench, keySize := opt.Benchmarks[i/nk], opt.KeySizes[i%nk]
		_, locked, key, err := opt.lockedInstance(bench, keySize, opt.Seed)
		if err != nil {
			return err
		}
		proxy, err := core.TrainProxyCtx(ctx, locked, core.ModelAdversarial, resyn, copt.Cfg, opt.coreOpts()...)
		if err != nil {
			return err
		}
		search, err := core.SearchRecipeCtx(ctx, locked, key, proxy, copt.Cfg, opt.coreOpts()...)
		if err != nil {
			return err
		}

		baseNet := resyn.Apply(locked)
		almostNet := search.Recipe.Apply(locked)

		// Independent attacker per netlist, with full recipe knowledge
		// (the §II threat model), through the registry interface. Quick
		// runs shrink OMLA training (opt.Cfg.Attack) and redundancy
		// fault sampling via the per-attack config options.
		acfg := opt.Cfg.Attack
		acfg.Seed = opt.Seed + 131
		rcfg := redundancy.DefaultConfig()
		rcfg.FaultSamples = redundancySamples(opt)
		cells := make(map[AttackName]TableIICell, len(attacks))
		for _, name := range attacks {
			atk, ok := core.LookupAttacker(string(name))
			if !ok {
				return fmt.Errorf("experiments: attack %q is not registered", name)
			}
			base, err := atk.AttackCtx(ctx, baseNet, key,
				core.WithRecipe(resyn), core.WithOMLAConfig(acfg), core.WithRedundancyConfig(rcfg))
			if err != nil {
				return err
			}
			hard, err := atk.AttackCtx(ctx, almostNet, key,
				core.WithRecipe(search.Recipe), core.WithOMLAConfig(acfg), core.WithRedundancyConfig(rcfg))
			if err != nil {
				return err
			}
			cells[name] = TableIICell{base, hard}
		}
		pairs[i] = pairResult{recipe: search.Recipe, cells: cells}
		return nil
	})
	if err != nil {
		return res, canceledErr(err)
	}
	for i, p := range pairs {
		bench, keySize := opt.Benchmarks[i/nk], opt.KeySizes[i%nk]
		if res.Recipes[bench] == nil {
			res.Recipes[bench] = map[int]synth.Recipe{}
		}
		res.Recipes[bench][keySize] = p.recipe
		// Fold in canonical attack order, not map order: the row maps are
		// keyed per attack, and iterating p.cells directly would fill
		// them in a randomized order (harmless today, but exactly the
		// shape mapdeterminism exists to keep out of reduction paths).
		for _, name := range attacks {
			rows[name][keySize].Cells[bench] = p.cells[name]
		}
	}
	for _, atk := range attacks {
		for _, ks := range opt.KeySizes {
			res.Rows = append(res.Rows, *rows[atk][ks])
		}
	}
	res.print(opt.out(), opt.Benchmarks)
	return res, nil
}

func (r TableIIResult) print(w io.Writer, benches []string) {
	fmt.Fprintf(w, "\nTABLE II: ATTACK ACCURACY (%%) CONSIDERING SOTA ATTACKS\n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-11s K=%-4d resyn2 |", row.Attack, row.KeySize)
		for _, b := range benches {
			fmt.Fprintf(w, " %s=%5.2f", b, row.Cells[b].Resyn2*100)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-11s K=%-4d ALMOST |", row.Attack, row.KeySize)
		for _, b := range benches {
			fmt.Fprintf(w, " %s=%5.2f", b, row.Cells[b].ALMOST*100)
		}
		fmt.Fprintln(w)
	}
}

// Cell fetches a cell by attack, key size, and benchmark.
func (r TableIIResult) Cell(a AttackName, keySize int, bench string) (TableIICell, bool) {
	for _, row := range r.Rows {
		if row.Attack == a && row.KeySize == keySize {
			c, ok := row.Cells[bench]
			return c, ok
		}
	}
	return TableIICell{}, false
}

// --- Table III: PPA overhead ------------------------------------------

// TableIIICell holds the area/delay/power overheads (%) for one
// (benchmark, key size) at one effort level.
type TableIIICell struct {
	Area, Delay, Power float64
}

// TableIIIResult maps benchmark -> keySize -> effort -> cell.
type TableIIIResult struct {
	Cells map[string]map[int]map[techmap.Effort]TableIIICell
}

// RunTableIII reproduces Table III: PPA overhead of ALMOST-synthesized
// circuits relative to the locked baseline netlist, mapped with no
// optimization (-opt) and with high-effort optimization (+opt).
func RunTableIII(ctx context.Context, opt Options, recipes map[string]map[int]synth.Recipe) (TableIIIResult, error) {
	res := TableIIIResult{Cells: map[string]map[int]map[techmap.Effort]TableIIICell{}}
	lib := techmap.NanGate45()
	resyn := synth.Resyn2()
	for _, bench := range opt.Benchmarks {
		res.Cells[bench] = map[int]map[techmap.Effort]TableIIICell{}
		for _, keySize := range opt.KeySizes {
			if err := ctx.Err(); err != nil {
				return res, canceledErr(err)
			}
			_, locked, key, err := opt.lockedInstance(bench, keySize, opt.Seed)
			if err != nil {
				return res, err
			}
			recipe := recipeFor(recipes, bench, keySize)
			if recipe == nil {
				// Regenerate when the caller did not supply Table II output.
				proxy, err := core.TrainProxyCtx(ctx, locked, core.ModelAdversarial, resyn, opt.Cfg, opt.coreOpts()...)
				if err != nil {
					return res, canceledErr(err)
				}
				search, err := core.SearchRecipeCtx(ctx, locked, key, proxy, opt.Cfg, opt.coreOpts()...)
				if err != nil {
					return res, canceledErr(err)
				}
				recipe = search.Recipe
			}
			almostNet := recipe.Apply(locked)
			res.Cells[bench][keySize] = map[techmap.Effort]TableIIICell{}
			for _, effort := range []techmap.Effort{techmap.EffortNone, techmap.EffortHigh} {
				base := techmap.Map(locked, lib, effort)
				al := techmap.Map(almostNet, lib, effort)
				a, d, p := techmap.Overhead(base, al)
				res.Cells[bench][keySize][effort] = TableIIICell{Area: a, Delay: d, Power: p}
			}
		}
	}
	res.print(opt.out(), opt)
	return res, nil
}

func recipeFor(recipes map[string]map[int]synth.Recipe, bench string, keySize int) synth.Recipe {
	if recipes == nil {
		return nil
	}
	if m, ok := recipes[bench]; ok {
		return m[keySize]
	}
	return nil
}

func (r TableIIIResult) print(w io.Writer, opt Options) {
	fmt.Fprintf(w, "\nTABLE III: PPA OVERHEAD (%%) FOR ALMOST SYNTHESIZED CIRCUITS\n")
	for _, metric := range []string{"Area", "Delay", "Power"} {
		for _, keySize := range opt.KeySizes {
			fmt.Fprintf(w, "%-6s K=%-4d", metric, keySize)
			for _, bench := range opt.Benchmarks {
				c := r.Cells[bench][keySize]
				pick := func(cell TableIIICell) float64 {
					switch metric {
					case "Area":
						return cell.Area
					case "Delay":
						return cell.Delay
					}
					return cell.Power
				}
				fmt.Fprintf(w, " | %s -opt=%+6.2f +opt=%+6.2f", bench,
					pick(c[techmap.EffortNone]), pick(c[techmap.EffortHigh]))
			}
			fmt.Fprintln(w)
		}
	}
}
