package gnn

import (
	"github.com/nyu-secml/almost/internal/nn"
)

// Batch packs K subgraphs into one inference unit: node features stacked
// into a single tall matrix and the K adjacencies laid out block-diagonal
// as batch-local neighbor lists. A GIN forward over the batch is then K
// independent forwards expressed as single blocked matmuls — every
// matrix op in the stack is row-local, so each graph's rows see exactly
// the scalar path's arithmetic and the logits are bit-for-bit identical.
//
// Ownership contract (the batch seam): a Batch and everything reachable
// from it — X, Off, Adj rows, Labels — is owned by whoever filled it
// (subgraph.Extractor batched extraction, or PackInto) and is valid only
// until that filler's next use of the same Batch. Model methods taking a
// *Batch never retain references past the call.
type Batch struct {
	X      *nn.Matrix // ΣN×f packed node features
	Off    []int      // len K+1; graph g owns feature rows [Off[g], Off[g+1])
	Adj    [][]int    // len ΣN; neighbor lists in batch-local row indices
	Labels []int      // len K; per-graph labels (0 when unlabeled)

	edges []int // slab backing the Adj rows
	deg   []int // degree scratch for PackInto
}

// Graphs returns the number of packed graphs.
func (b *Batch) Graphs() int {
	if len(b.Off) == 0 {
		return 0
	}
	return len(b.Off) - 1
}

// Reset sizes the batch for `graphs` graphs totalling `nodes` feature
// rows of width feat, reusing prior capacity. X is zeroed; Off and Labels
// are zeroed; Adj rows are cleared (use InitAdj + AddEdge to rebuild).
//
//almost:hotpath
func (b *Batch) Reset(nodes, feat, graphs int) {
	need := nodes * feat
	if b.X == nil || cap(b.X.D) < need {
		b.X = &nn.Matrix{}
		b.X.D = make([]float64, need)
	}
	b.X.R, b.X.C = nodes, feat
	b.X.D = b.X.D[:need]
	b.X.Zero()
	if cap(b.Off) < graphs+1 {
		b.Off = make([]int, graphs+1)
	}
	b.Off = b.Off[:graphs+1]
	for i := range b.Off {
		b.Off[i] = 0
	}
	if cap(b.Labels) < graphs {
		b.Labels = make([]int, graphs)
	}
	b.Labels = b.Labels[:graphs]
	for i := range b.Labels {
		b.Labels[i] = 0
	}
	if cap(b.Adj) < nodes {
		b.Adj = make([][]int, nodes)
	}
	b.Adj = b.Adj[:nodes]
	for i := range b.Adj {
		b.Adj[i] = nil
	}
}

// InitAdj prepares the adjacency rows from a per-row degree count: row i
// becomes an empty slice with capacity deg[i] carved out of one shared
// slab, so the AddEdge fill pass performs no allocation. len(deg) must
// equal the node count passed to Reset.
//
//almost:hotpath
func (b *Batch) InitAdj(deg []int) {
	total := 0
	for _, d := range deg {
		total += d
	}
	if cap(b.edges) < total {
		b.edges = make([]int, total)
	}
	b.edges = b.edges[:total]
	at := 0
	for i, d := range deg {
		b.Adj[i] = b.edges[at : at : at+d]
		at += d
	}
}

// AddEdge appends neighbor j to row i's list. Callers must have declared
// enough degree in InitAdj; the append then lands in the slab. The fill
// order across AddEdge calls defines each row's neighbor order, which is
// what the aggregation sums over — callers replicating a scalar path
// must issue AddEdge calls in that path's append order.
//
//almost:hotpath
func (b *Batch) AddEdge(i, j int) {
	//almost:nolint hotpathalloc // lands in the InitAdj slab; a cap overrun is a caller bug
	b.Adj[i] = append(b.Adj[i], j)
}

// PackInto packs pre-extracted graphs into b (reusing its buffers) and
// returns b, allocating one if nil. The packed rows reproduce each
// graph's features and neighbor order exactly.
func PackInto(b *Batch, gs []*Graph) *Batch {
	if b == nil {
		b = &Batch{}
	}
	nodes, feat := 0, 0
	for _, g := range gs {
		nodes += g.X.R
		feat = g.X.C
	}
	b.Reset(nodes, feat, len(gs))
	at := 0
	for gi, g := range gs {
		b.Off[gi] = at
		b.Labels[gi] = g.Label
		copy(b.X.D[at*feat:(at+g.X.R)*feat], g.X.D)
		at += g.X.R
	}
	b.Off[len(gs)] = at
	if cap(b.deg) < nodes {
		b.deg = make([]int, nodes)
	}
	deg := b.deg[:nodes]
	for gi, g := range gs {
		base := b.Off[gi]
		for i, row := range g.Adj {
			deg[base+i] = len(row)
		}
	}
	b.InitAdj(deg)
	for gi, g := range gs {
		base := b.Off[gi]
		for i, row := range g.Adj {
			for _, j := range row {
				b.AddEdge(base+i, base+j)
			}
		}
	}
	return b
}

// forwardLogitsBatch runs the inference forward over a packed batch with
// pooled matrices, returning the scratch-owned K×2 logits (row g = graph
// g). Row g's arithmetic matches forwardLogits on graph g exactly: the
// GIN layers, bias adds, and ReLUs are row-local; the block-diagonal
// aggregation sums the same neighbor rows in the same order; and the
// readout sums graph g's rows ascending before one division — so the
// batched logits are bit-for-bit the scalar logits.
func (m *Model) forwardLogitsBatch(sc *Scratch, b *Batch) *nn.Matrix {
	k := b.Graphs()
	h := b.X
	owned := false
	for _, l := range m.layers {
		agg := sc.mat(h.R, h.C)
		aggregateInto(agg, h, b.Adj, m.cfg.Eps)
		a1 := sc.mat(h.R, l.l1.OutDim())
		nn.ReLUInPlace(l.l1.ForwardInto(a1, agg))
		out := sc.mat(h.R, l.l2.OutDim())
		nn.ReLUInPlace(l.l2.ForwardInto(out, a1))
		sc.put(agg)
		sc.put(a1)
		if owned {
			sc.put(h)
		}
		h, owned = out, true
	}
	pooled := sc.mat(k, h.C)
	pooled.Zero()
	for g := 0; g < k; g++ {
		pr := pooled.Row(g)
		lo, hi := b.Off[g], b.Off[g+1]
		for i := lo; i < hi; i++ {
			hr := h.Row(i)
			for j := range pr {
				pr[j] += hr[j]
			}
		}
		n := float64(hi - lo)
		for j := range pr {
			pr[j] /= n
		}
	}
	if owned {
		sc.put(h)
	}
	hid := sc.mat(k, m.head1.OutDim())
	nn.ReLUInPlace(m.head1.ForwardInto(hid, pooled))
	logits := sc.mat(k, m.head2.OutDim())
	m.head2.ForwardInto(logits, hid)
	sc.put(pooled)
	sc.put(hid)
	return logits
}

// PredictProbBatchWith returns P(label=1) for every packed graph, in
// batch order, appended to dst (pass dst[:0] to reuse). sc may be nil
// for a private scratch. Probabilities are bit-for-bit identical to
// PredictProbWith on each graph separately.
//
//almost:hotpath
func (m *Model) PredictProbBatchWith(sc *Scratch, b *Batch, dst []float64) []float64 {
	if sc == nil {
		sc = NewScratch()
	}
	logits := m.forwardLogitsBatch(sc, b)
	for g := 0; g < b.Graphs(); g++ {
		//almost:nolint hotpathalloc // appends into the caller-provided result buffer by contract
		dst = append(dst, softmaxProb1(logits.Row(g)))
	}
	sc.put(logits)
	return dst
}

// AccuracyBatchWith evaluates classification accuracy of the packed
// graphs against b.Labels, bit-for-bit identical to AccuracyWith over
// the same graphs. sc may be nil for a private scratch.
//
//almost:hotpath
func (m *Model) AccuracyBatchWith(sc *Scratch, b *Batch) float64 {
	k := b.Graphs()
	if k == 0 {
		return 0
	}
	if sc == nil {
		sc = NewScratch()
	}
	logits := m.forwardLogitsBatch(sc, b)
	n := 0
	for g := 0; g < k; g++ {
		pred := 0
		if softmaxProb1(logits.Row(g)) >= 0.5 {
			pred = 1
		}
		if pred == b.Labels[g] {
			n++
		}
	}
	sc.put(logits)
	return float64(n) / float64(k)
}

// LossBatchWith computes, without updating, the mean CE loss of the
// packed graphs against b.Labels, bit-for-bit identical to LossWith over
// the same graphs. sc may be nil for a private scratch.
//
//almost:hotpath
func (m *Model) LossBatchWith(sc *Scratch, b *Batch) float64 {
	if sc == nil {
		sc = NewScratch()
	}
	logits := m.forwardLogitsBatch(sc, b)
	var total float64
	for g := 0; g < b.Graphs(); g++ {
		total += softmaxCE(logits.Row(g), b.Labels[g])
	}
	sc.put(logits)
	return total / float64(b.Graphs())
}
