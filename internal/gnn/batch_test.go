package gnn

import (
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/nn"
)

// randGraph builds a connected random graph with zero-sprinkled features,
// deterministic in rng. Edges are appended in a fixed order so the
// neighbor lists have a well-defined sequence for identity checks.
func randGraph(n, f int, rng *rand.Rand, label int) *Graph {
	x := nn.NewMatrix(n, f)
	for i := range x.D {
		if rng.Intn(4) != 0 {
			x.D[i] = rng.NormFloat64()
		}
	}
	adj := make([][]int, n)
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}
	for e := 0; e < n/2; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}
	return &Graph{X: x, Adj: adj, Label: label}
}

// TestBatchForwardBitIdentity gates the core determinism claim of the
// batch seam: packed inference must reproduce the scalar per-graph path
// exactly (==, not approximately) for probabilities, accuracy, and loss.
func TestBatchForwardBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const f = 7
	m := NewModel(Config{InDim: f, Hidden: 16, Layers: 2, LR: 0.01, BatchSize: 8}, rng)
	var gs []*Graph
	for i, n := range []int{1, 2, 5, 17, 3, 40, 9} {
		gs = append(gs, randGraph(n, f, rng, i%2))
	}
	b := PackInto(nil, gs)
	if b.Graphs() != len(gs) {
		t.Fatalf("Graphs() = %d, want %d", b.Graphs(), len(gs))
	}
	sc := NewScratch()
	probs := m.PredictProbBatchWith(sc, b, nil)
	for i, g := range gs {
		want := m.PredictProbWith(sc, g)
		if probs[i] != want {
			t.Fatalf("graph %d: batched prob %v != scalar %v", i, probs[i], want)
		}
	}
	if got, want := m.AccuracyBatchWith(sc, b), m.AccuracyWith(sc, gs); got != want {
		t.Fatalf("batched accuracy %v != scalar %v", got, want)
	}
	if got, want := m.LossBatchWith(sc, b), m.LossWith(sc, gs); got != want {
		t.Fatalf("batched loss %v != scalar %v", got, want)
	}
	// A nil scratch must produce the same numbers.
	probs2 := m.PredictProbBatchWith(nil, b, probs[:0])
	for i := range probs2 {
		if probs2[i] != m.PredictProbWith(nil, gs[i]) {
			t.Fatalf("graph %d: nil-scratch batched prob diverges", i)
		}
	}
}

// TestBatchForwardAllocs gates the steady state of the batched forward:
// with a warm scratch, a packed batch, and a reused result buffer, a
// full batched prediction pass performs zero allocations.
func TestBatchForwardAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const f = 7
	m := NewModel(Config{InDim: f, Hidden: 16, Layers: 2, LR: 0.01, BatchSize: 8}, rng)
	var gs []*Graph
	for i := 0; i < 12; i++ {
		gs = append(gs, randGraph(4+rng.Intn(20), f, rng, i%2))
	}
	b := PackInto(nil, gs)
	sc := NewScratch()
	var dst []float64
	dst = m.PredictProbBatchWith(sc, b, dst) // warm the pools
	allocs := testing.AllocsPerRun(50, func() {
		dst = m.PredictProbBatchWith(sc, b, dst[:0])
		m.AccuracyBatchWith(sc, b)
		m.LossBatchWith(sc, b)
	})
	if allocs != 0 {
		t.Fatalf("batched forward steady state allocates %.1f per run, want 0", allocs)
	}
	// Repacking the same graphs into a warm batch is also alloc-free.
	allocs = testing.AllocsPerRun(50, func() {
		PackInto(b, gs)
	})
	if allocs != 0 {
		t.Fatalf("warm PackInto allocates %.1f per run, want 0", allocs)
	}
}

// TestScratchPoolBounded gates the free-list bound: mixed-shape churn
// must not grow the pool past maxPool, and eviction must prefer keeping
// the largest backing arrays.
func TestScratchPoolBounded(t *testing.T) {
	sc := NewScratch()
	for i := 1; i <= 4*maxPool; i++ {
		sc.put(nn.NewMatrix(1, i))
	}
	if len(sc.pool) > maxPool {
		t.Fatalf("pool grew to %d entries, bound is %d", len(sc.pool), maxPool)
	}
	// The small early entries must have been evicted in favor of later,
	// larger ones: the minimum retained capacity exceeds maxPool.
	minCap := cap(sc.pool[0].D)
	for _, m := range sc.pool[1:] {
		if cap(m.D) < minCap {
			minCap = cap(m.D)
		}
	}
	if minCap <= maxPool {
		t.Fatalf("eviction kept a matrix of capacity %d; small entries should be evicted first", minCap)
	}
	// A smaller incoming matrix at the bound is dropped, not swapped in.
	sc.put(nn.NewMatrix(1, 1))
	for _, m := range sc.pool {
		if cap(m.D) == 1 {
			t.Fatal("bound pool admitted a smaller matrix by evicting a larger one")
		}
	}
}
