// Package gnn implements the GIN-style (Graph Isomorphism Network)
// subgraph classifier used by the OMLA attack: message-passing layers
// with sum aggregation followed by a graph-level readout and an MLP
// head. Backpropagation is implemented manually on top of internal/nn.
//
// A forward pass for one graph computes, per layer k:
//
//	S^k = (1+eps)·H^k + A·H^k        (A = adjacency, sum over neighbors)
//	H^{k+1} = ReLU(W2·ReLU(W1·S^k))
//
// and the readout is the mean of the final node embeddings, classified
// by a two-layer head into {key-bit 0, key-bit 1}.
package gnn

import (
	"math"
	"math/rand"
	"sort"

	"github.com/nyu-secml/almost/internal/nn"
)

// Graph is one training/evaluation sample: a featurized subgraph with a
// binary label (the key bit).
type Graph struct {
	X     *nn.Matrix // n×f node features
	Adj   [][]int    // undirected neighbor lists, len n
	Label int        // 0 or 1
}

// Config sets the network shape and training hyper-parameters.
type Config struct {
	InDim     int
	Hidden    int
	Layers    int     // number of GIN layers
	Eps       float64 // GIN epsilon (fixed, not learned)
	LR        float64
	BatchSize int
}

// DefaultConfig mirrors OMLA's architecture at a size that trains in
// seconds on CPU: 2 GIN layers, hidden width 16.
func DefaultConfig(inDim int) Config {
	return Config{InDim: inDim, Hidden: 16, Layers: 2, Eps: 0, LR: 0.01, BatchSize: 32}
}

type ginLayer struct {
	l1, l2 *nn.Linear
}

// Model is a GIN subgraph classifier.
type Model struct {
	cfg    Config
	layers []*ginLayer
	head1  *nn.Linear
	head2  *nn.Linear
	opt    *nn.Adam
}

// NewModel builds a He-initialized model.
func NewModel(cfg Config, rng *rand.Rand) *Model {
	m := &Model{cfg: cfg}
	in := cfg.InDim
	for k := 0; k < cfg.Layers; k++ {
		m.layers = append(m.layers, &ginLayer{
			l1: nn.NewLinear(in, cfg.Hidden, rng),
			l2: nn.NewLinear(cfg.Hidden, cfg.Hidden, rng),
		})
		in = cfg.Hidden
	}
	m.head1 = nn.NewLinear(in, cfg.Hidden, rng)
	m.head2 = nn.NewLinear(cfg.Hidden, 2, rng)
	var params []*nn.Param
	for _, l := range m.layers {
		params = append(params, l.l1.Params()...)
		params = append(params, l.l2.Params()...)
	}
	params = append(params, m.head1.Params()...)
	params = append(params, m.head2.Params()...)
	m.opt = nn.NewAdam(params, cfg.LR)
	return m
}

// aggregate computes (1+eps)H + A·H.
func aggregate(h *nn.Matrix, adj [][]int, eps float64) *nn.Matrix {
	return aggregateInto(nn.NewMatrix(h.R, h.C), h, adj, eps)
}

// aggregateInto computes (1+eps)H + A·H into dst (same shape as h, fully
// overwritten), returning dst.
//
//almost:hotpath
func aggregateInto(dst, h *nn.Matrix, adj [][]int, eps float64) *nn.Matrix {
	for i := 0; i < h.R; i++ {
		sr := dst.Row(i)
		hr := h.Row(i)
		for j := range sr {
			sr[j] = (1 + eps) * hr[j]
		}
		for _, nb := range adj[i] {
			nr := h.Row(nb)
			for j := range sr {
				sr[j] += nr[j]
			}
		}
	}
	return dst
}

// Scratch pools the intermediate matrices of inference-only forward
// passes, so evaluating a trained model inside the recipe-search hot loop
// stops allocating per sample. A scratch is not safe for concurrent use;
// the engine keeps one per worker (Scratch.Aux). The zero value is ready.
type Scratch struct {
	pool []*nn.Matrix
}

// NewScratch returns an empty scratch.
func NewScratch() *Scratch { return &Scratch{} }

// mat checks a matrix of shape r×c out of the pool (contents undefined).
func (s *Scratch) mat(r, c int) *nn.Matrix {
	need := r * c
	for i := len(s.pool) - 1; i >= 0; i-- {
		m := s.pool[i]
		if cap(m.D) >= need {
			s.pool[i] = s.pool[len(s.pool)-1]
			s.pool = s.pool[:len(s.pool)-1]
			m.R, m.C = r, c
			m.D = m.D[:need]
			return m
		}
	}
	return nn.NewMatrix(r, c)
}

// maxPool bounds the Scratch free-list. A forward pass holds at most a
// handful of intermediates, so a healthy pool stays far below the bound;
// the bound exists because mixed matrix shapes (alternating batched and
// scalar traffic, graphs of very different sizes) would otherwise ratchet
// the list up without limit — every undersized entry skipped by mat is
// dead weight that still pins its backing array.
const maxPool = 32

// put returns a matrix to the pool. At the bound it keeps the pool's
// total capacity most useful: the smallest-capacity entry is evicted in
// favor of a larger incoming matrix, and a smaller incoming matrix is
// simply dropped for the garbage collector.
func (s *Scratch) put(m *nn.Matrix) {
	if len(s.pool) < maxPool {
		s.pool = append(s.pool, m)
		return
	}
	mi := 0
	for i, p := range s.pool[1:] {
		if cap(p.D) < cap(s.pool[mi].D) {
			mi = i + 1
		}
	}
	if cap(s.pool[mi].D) < cap(m.D) {
		s.pool[mi] = m
	}
}

// forwardLogits runs an inference-only forward pass (no activation
// cache) with pooled matrices, returning the scratch-owned 1×2 logits.
// The arithmetic — including nn.MatMul's zero-skip accumulation order —
// matches forward exactly, so predictions and losses are bit-for-bit
// identical to the allocating path.
func (m *Model) forwardLogits(sc *Scratch, g *Graph) *nn.Matrix {
	h := g.X
	owned := false
	for _, l := range m.layers {
		agg := sc.mat(h.R, h.C)
		aggregateInto(agg, h, g.Adj, m.cfg.Eps)
		a1 := sc.mat(h.R, l.l1.OutDim())
		nn.ReLUInPlace(l.l1.ForwardInto(a1, agg))
		out := sc.mat(h.R, l.l2.OutDim())
		nn.ReLUInPlace(l.l2.ForwardInto(out, a1))
		sc.put(agg)
		sc.put(a1)
		if owned {
			sc.put(h)
		}
		h, owned = out, true
	}
	// Mean readout.
	pooled := sc.mat(1, h.C)
	pooled.Zero()
	for i := 0; i < h.R; i++ {
		hr := h.Row(i)
		for j := range hr {
			pooled.D[j] += hr[j]
		}
	}
	for j := range pooled.D {
		pooled.D[j] /= float64(h.R)
	}
	if owned {
		sc.put(h)
	}
	hid := sc.mat(1, m.head1.OutDim())
	nn.ReLUInPlace(m.head1.ForwardInto(hid, pooled))
	logits := sc.mat(1, m.head2.OutDim())
	m.head2.ForwardInto(logits, hid)
	sc.put(pooled)
	sc.put(hid)
	return logits
}

// softmaxProb1 returns P(label=1) from a logits row with the exact
// arithmetic of nn.SoftmaxCE (max-shift, exp in index order, single
// division).
func softmaxProb1(row []float64) float64 {
	maxv := row[0]
	for _, v := range row[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum, p1 float64
	for j, v := range row {
		e := math.Exp(v - maxv)
		if j == 1 {
			p1 = e
		}
		sum += e
	}
	return p1 / sum
}

// softmaxCE returns the cross-entropy of a logits row against label,
// matching nn.SoftmaxCE bit for bit for a single-row batch.
func softmaxCE(row []float64, label int) float64 {
	maxv := row[0]
	for _, v := range row[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum, py float64
	for j, v := range row {
		e := math.Exp(v - maxv)
		if j == label {
			py = e
		}
		sum += e
	}
	py /= sum
	return -math.Log(math.Max(py, 1e-12))
}

// aggregateBackward propagates dS back to dH.
func aggregateBackward(ds *nn.Matrix, adj [][]int, eps float64) *nn.Matrix {
	dh := nn.NewMatrix(ds.R, ds.C)
	for i := 0; i < ds.R; i++ {
		dr := dh.Row(i)
		sr := ds.Row(i)
		for j := range dr {
			dr[j] += (1 + eps) * sr[j]
		}
		// Sum aggregation: node i's embedding fed every neighbor's S.
		for _, nb := range adj[i] {
			nr := ds.Row(nb)
			for j := range dr {
				dr[j] += nr[j]
			}
		}
	}
	return dh
}

type forwardCache struct {
	g *Graph
	// Per layer: input H, s, a1 (post-ReLU of l1), h (post-ReLU of l2).
	hs, ss, a1s, outs []*nn.Matrix
	pooled            *nn.Matrix
	headHidden        *nn.Matrix
	logits            *nn.Matrix
}

// forward runs the network on one graph, caching activations.
func (m *Model) forward(g *Graph) *forwardCache {
	c := &forwardCache{g: g}
	h := g.X
	for _, l := range m.layers {
		s := aggregate(h, g.Adj, m.cfg.Eps)
		a1 := nn.ReLU(l.l1.Forward(s))
		out := nn.ReLU(l.l2.Forward(a1))
		c.hs = append(c.hs, h)
		c.ss = append(c.ss, s)
		c.a1s = append(c.a1s, a1)
		c.outs = append(c.outs, out)
		h = out
	}
	// Mean readout.
	pooled := nn.NewMatrix(1, h.C)
	for i := 0; i < h.R; i++ {
		hr := h.Row(i)
		for j := range hr {
			pooled.D[j] += hr[j]
		}
	}
	for j := range pooled.D {
		pooled.D[j] /= float64(h.R)
	}
	c.pooled = pooled
	c.headHidden = nn.ReLU(m.head1.Forward(pooled))
	c.logits = m.head2.Forward(c.headHidden)
	return c
}

// backward accumulates gradients given dLogits for one cached forward.
func (m *Model) backward(c *forwardCache, dLogits *nn.Matrix) {
	dHid := m.head2.Backward(c.headHidden, dLogits)
	dHid = nn.ReLUBackward(c.headHidden, dHid)
	dPooled := m.head1.Backward(c.pooled, dHid)
	// Un-pool: distribute mean gradient to every node.
	last := c.outs[len(c.outs)-1]
	dh := nn.NewMatrix(last.R, last.C)
	for i := 0; i < last.R; i++ {
		dr := dh.Row(i)
		for j := range dr {
			dr[j] = dPooled.D[j] / float64(last.R)
		}
	}
	for k := len(m.layers) - 1; k >= 0; k-- {
		l := m.layers[k]
		dh = nn.ReLUBackward(c.outs[k], dh)
		da1 := l.l2.Backward(c.a1s[k], dh)
		da1 = nn.ReLUBackward(c.a1s[k], da1)
		ds := l.l1.Backward(c.ss[k], da1)
		dh = aggregateBackward(ds, c.g.Adj, m.cfg.Eps)
	}
}

// PredictProbWith returns P(label=1) for one graph, using sc's pooled
// matrices (nil for a private scratch).
//
//almost:hotpath
func (m *Model) PredictProbWith(sc *Scratch, g *Graph) float64 {
	if sc == nil {
		sc = NewScratch()
	}
	logits := m.forwardLogits(sc, g)
	p := softmaxProb1(logits.Row(0))
	sc.put(logits)
	return p
}

// PredictProb returns P(label=1) for one graph.
func (m *Model) PredictProb(g *Graph) float64 { return m.PredictProbWith(nil, g) }

// PredictWith returns the predicted label of one graph, using sc's
// pooled matrices (nil for a private scratch).
//
//almost:hotpath
func (m *Model) PredictWith(sc *Scratch, g *Graph) int {
	if m.PredictProbWith(sc, g) >= 0.5 {
		return 1
	}
	return 0
}

// Predict returns the predicted label of one graph.
func (m *Model) Predict(g *Graph) int { return m.PredictWith(nil, g) }

// AccuracyWith evaluates classification accuracy on a set, using sc's
// pooled matrices (nil for a private scratch).
//
//almost:hotpath
func (m *Model) AccuracyWith(sc *Scratch, gs []*Graph) float64 {
	if len(gs) == 0 {
		return 0
	}
	if sc == nil {
		sc = NewScratch()
	}
	n := 0
	for _, g := range gs {
		if m.PredictWith(sc, g) == g.Label {
			n++
		}
	}
	return float64(n) / float64(len(gs))
}

// Accuracy evaluates classification accuracy on a set.
func (m *Model) Accuracy(gs []*Graph) float64 { return m.AccuracyWith(nil, gs) }

// LossWith computes, without updating, the mean CE loss on a set, using
// sc's pooled matrices (nil for a private scratch).
//
//almost:hotpath
func (m *Model) LossWith(sc *Scratch, gs []*Graph) float64 {
	if sc == nil {
		sc = NewScratch()
	}
	var total float64
	for _, g := range gs {
		logits := m.forwardLogits(sc, g)
		total += softmaxCE(logits.Row(0), g.Label)
		sc.put(logits)
	}
	return total / float64(len(gs))
}

// Loss computes, without updating, the mean CE loss on a set.
func (m *Model) Loss(gs []*Graph) float64 { return m.LossWith(nil, gs) }

// PerSampleLoss returns each graph's CE loss, used by the adversarial
// sample selection in Algorithm 1 (Eq. 3 maximizes this quantity).
func (m *Model) PerSampleLoss(gs []*Graph) []float64 {
	sc := NewScratch()
	out := make([]float64, len(gs))
	for i, g := range gs {
		logits := m.forwardLogits(sc, g)
		out[i] = softmaxCE(logits.Row(0), g.Label)
		sc.put(logits)
	}
	return out
}

// TrainEpoch runs one epoch of mini-batch Adam over the training set in
// a shuffled order drawn from rng, returning the mean loss.
func (m *Model) TrainEpoch(gs []*Graph, rng *rand.Rand) float64 {
	perm := rng.Perm(len(gs))
	var total float64
	bs := m.cfg.BatchSize
	if bs <= 0 {
		bs = 32
	}
	for start := 0; start < len(perm); start += bs {
		end := start + bs
		if end > len(perm) {
			end = len(perm)
		}
		m.opt.ZeroGrads()
		for _, pi := range perm[start:end] {
			g := gs[pi]
			c := m.forward(g)
			l, _, dLogits := nn.SoftmaxCE(c.logits, []int{g.Label})
			total += l
			// Scale gradient by batch share.
			for i := range dLogits.D {
				dLogits.D[i] /= float64(end - start)
			}
			m.backward(c, dLogits)
		}
		m.opt.Step()
	}
	return total / float64(len(gs))
}

// Train runs epochs of TrainEpoch, with an optional callback invoked
// after each epoch (epoch index, training loss); the callback may mutate
// the training slice (the adversarial augmentation hook).
func (m *Model) Train(gs *[]*Graph, epochs int, rng *rand.Rand, after func(epoch int, loss float64)) {
	for e := 0; e < epochs; e++ {
		loss := m.TrainEpoch(*gs, rng)
		if after != nil {
			after(e, loss)
		}
	}
}

// SortGraphsByLoss returns indices of gs ordered by descending loss under
// the model — the most adversarial first.
func (m *Model) SortGraphsByLoss(gs []*Graph) []int {
	losses := m.PerSampleLoss(gs)
	idx := make([]int, len(gs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return losses[idx[a]] > losses[idx[b]] })
	return idx
}
