package gnn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/nn"
)

// lineGraph builds a path graph with constant features and given label.
func lineGraph(n, f int, fill float64, label int) *Graph {
	x := nn.NewMatrix(n, f)
	for i := range x.D {
		x.D[i] = fill
	}
	adj := make([][]int, n)
	for i := 0; i+1 < n; i++ {
		adj[i] = append(adj[i], i+1)
		adj[i+1] = append(adj[i+1], i)
	}
	return &Graph{X: x, Adj: adj, Label: label}
}

func TestAggregate(t *testing.T) {
	x := nn.NewMatrix(3, 1)
	copy(x.D, []float64{1, 2, 3})
	adj := [][]int{{1}, {0, 2}, {1}}
	s := aggregate(x, adj, 0)
	want := []float64{1 + 2, 2 + 1 + 3, 3 + 2}
	for i, w := range want {
		if s.D[i] != w {
			t.Fatalf("agg[%d] = %v, want %v", i, s.D[i], w)
		}
	}
	// eps scales the self term.
	s2 := aggregate(x, adj, 1)
	if s2.D[0] != 2*1+2 {
		t.Fatalf("eps agg = %v", s2.D[0])
	}
}

func TestAggregateBackwardIsTranspose(t *testing.T) {
	// For sum aggregation over an undirected graph, backward(forward) uses
	// the same (symmetric) operator: check <A x, y> == <x, A y>.
	rng := rand.New(rand.NewSource(2))
	n, f := 5, 3
	adj := [][]int{{1, 2}, {0}, {0, 3}, {2, 4}, {3}}
	x := nn.NewMatrix(n, f)
	y := nn.NewMatrix(n, f)
	for i := range x.D {
		x.D[i] = rng.NormFloat64()
		y.D[i] = rng.NormFloat64()
	}
	ax := aggregate(x, adj, 0.5)
	aty := aggregateBackward(y, adj, 0.5)
	var lhs, rhs float64
	for i := range x.D {
		lhs += ax.D[i] * y.D[i]
		rhs += x.D[i] * aty.D[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjointness violated: %v vs %v", lhs, rhs)
	}
}

func TestModelGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := Config{InDim: 3, Hidden: 4, Layers: 2, LR: 0.01, BatchSize: 4}
	m := NewModel(cfg, rng)
	g := lineGraph(4, 3, 0, 1)
	for i := range g.X.D {
		g.X.D[i] = rng.NormFloat64()
	}

	lossOf := func() float64 {
		c := m.forward(g)
		l, _, _ := nn.SoftmaxCE(c.logits, []int{g.Label})
		return l
	}
	// Analytic gradient for a few parameters of the first layer.
	m.opt.ZeroGrads()
	c := m.forward(g)
	_, _, dLogits := nn.SoftmaxCE(c.logits, []int{g.Label})
	m.backward(c, dLogits)

	p := m.layers[0].l1.W
	const h = 1e-6
	for _, i := range []int{0, 3, 7, 11} {
		orig := p.W.D[i]
		p.W.D[i] = orig + h
		lp := lossOf()
		p.W.D[i] = orig - h
		lm := lossOf()
		p.W.D[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-p.G.D[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("dW[%d]: numeric %v analytic %v", i, num, p.G.D[i])
		}
	}
	// And the head.
	hp := m.head2.W
	for _, i := range []int{0, 5} {
		orig := hp.W.D[i]
		hp.W.D[i] = orig + h
		lp := lossOf()
		hp.W.D[i] = orig - h
		lm := lossOf()
		hp.W.D[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-hp.G.D[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("head dW[%d]: numeric %v analytic %v", i, num, hp.G.D[i])
		}
	}
}

func TestModelLearnsSeparableGraphs(t *testing.T) {
	// Class 0: features near -1. Class 1: features near +1. Trivially
	// separable — training must reach high accuracy fast.
	rng := rand.New(rand.NewSource(4))
	var train, test []*Graph
	for i := 0; i < 60; i++ {
		label := i % 2
		fill := -1.0
		if label == 1 {
			fill = 1.0
		}
		g := lineGraph(3+rng.Intn(5), 4, fill, label)
		for j := range g.X.D {
			g.X.D[j] += rng.NormFloat64() * 0.2
		}
		if i < 40 {
			train = append(train, g)
		} else {
			test = append(test, g)
		}
	}
	m := NewModel(DefaultConfig(4), rng)
	for e := 0; e < 30; e++ {
		m.TrainEpoch(train, rng)
	}
	if acc := m.Accuracy(test); acc < 0.9 {
		t.Fatalf("separable accuracy = %v", acc)
	}
}

func TestModelLearnsStructuralDifference(t *testing.T) {
	// Same features everywhere; label depends on topology (star vs path).
	// Only the message passing can distinguish them.
	rng := rand.New(rand.NewSource(5))
	star := func(n int) *Graph {
		g := lineGraph(n, 2, 1, 1)
		adj := make([][]int, n)
		for i := 1; i < n; i++ {
			adj[0] = append(adj[0], i)
			adj[i] = append(adj[i], 0)
		}
		g.Adj = adj
		return g
	}
	var train, test []*Graph
	for i := 0; i < 80; i++ {
		n := 5 + rng.Intn(4)
		var g *Graph
		if i%2 == 0 {
			g = lineGraph(n, 2, 1, 0)
		} else {
			g = star(n)
		}
		if i < 60 {
			train = append(train, g)
		} else {
			test = append(test, g)
		}
	}
	cfg := DefaultConfig(2)
	cfg.LR = 0.02
	m := NewModel(cfg, rng)
	for e := 0; e < 60; e++ {
		m.TrainEpoch(train, rng)
	}
	if acc := m.Accuracy(test); acc < 0.85 {
		t.Fatalf("structural accuracy = %v", acc)
	}
}

func TestPredictProbInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewModel(DefaultConfig(3), rng)
	g := lineGraph(4, 3, 0.5, 0)
	p := m.PredictProb(g)
	if p < 0 || p > 1 || math.IsNaN(p) {
		t.Fatalf("prob = %v", p)
	}
	if (m.Predict(g) == 1) != (p >= 0.5) {
		t.Fatalf("Predict inconsistent with PredictProb")
	}
}

func TestSortGraphsByLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewModel(DefaultConfig(2), rng)
	gs := []*Graph{
		lineGraph(3, 2, 1, 0),
		lineGraph(3, 2, 1, 1),
		lineGraph(5, 2, -1, 0),
	}
	idx := m.SortGraphsByLoss(gs)
	losses := m.PerSampleLoss(gs)
	for i := 0; i+1 < len(idx); i++ {
		if losses[idx[i]] < losses[idx[i+1]] {
			t.Fatalf("not sorted by descending loss: %v %v", idx, losses)
		}
	}
}

func TestTrainCallbackCanAugment(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewModel(DefaultConfig(2), rng)
	gs := []*Graph{lineGraph(3, 2, 1, 0), lineGraph(3, 2, -1, 1)}
	calls := 0
	m.Train(&gs, 5, rng, func(e int, loss float64) {
		calls++
		if e == 2 {
			gs = append(gs, lineGraph(4, 2, 0.5, 0))
		}
	})
	if calls != 5 {
		t.Fatalf("callback calls = %d", calls)
	}
	if len(gs) != 3 {
		t.Fatalf("augmentation lost: %d", len(gs))
	}
}

func TestDeterministicTraining(t *testing.T) {
	mk := func() float64 {
		rng := rand.New(rand.NewSource(9))
		m := NewModel(DefaultConfig(2), rng)
		var gs []*Graph
		for i := 0; i < 20; i++ {
			gs = append(gs, lineGraph(3+i%3, 2, float64(i%2)*2-1, i%2))
		}
		for e := 0; e < 5; e++ {
			m.TrainEpoch(gs, rng)
		}
		return m.Loss(gs)
	}
	if mk() != mk() {
		t.Fatal("training not deterministic for fixed seed")
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	m := NewModel(DefaultConfig(8), rng)
	var gs []*Graph
	for i := 0; i < 100; i++ {
		g := lineGraph(20, 8, 0, i%2)
		for j := range g.X.D {
			g.X.D[j] = rng.NormFloat64()
		}
		gs = append(gs, g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainEpoch(gs, rng)
	}
}
