package lock

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/cnf"
)

func TestLockAntiSATCorrectKey(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := LockAntiSAT(g, 16, rand.New(rand.NewSource(31)))
	if len(key) != 16 {
		t.Fatalf("key size %d, want 16", len(key))
	}
	ok, cex, err := cnf.EquivalentUnderKey(g, locked, key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("correct key does not unlock (cex %v)", cex)
	}
}

func TestLockAntiSATKeyClass(t *testing.T) {
	// The correct-key class is exactly K2 == K1[:m]: any K1 with a
	// matching K2 unlocks, and any mismatched pair corrupts.
	g := circuits.MustGenerate("c432")
	locked, key := LockAntiSAT(g, 16, rand.New(rand.NewSource(32)))
	n, m := 8, 8

	other := make(Key, len(key))
	for i := 0; i < n; i++ {
		other[i] = !key[i] // a completely different K1
	}
	for j := 0; j < m; j++ {
		other[n+j] = other[j] // with consistent K2
	}
	if ok, _, err := cnf.EquivalentUnderKey(g, locked, other); err != nil || !ok {
		t.Fatalf("consistent key pair must unlock (ok=%v err=%v)", ok, err)
	}

	bad := make(Key, len(key))
	copy(bad, key)
	bad[n] = !bad[n] // break K2 consistency
	if ok, _, err := cnf.EquivalentUnderKey(g, locked, bad); err != nil || ok {
		t.Fatalf("inconsistent key pair must corrupt (ok=%v err=%v)", ok, err)
	}
}

func TestLockAntiSATWrongKeyIsPointFunction(t *testing.T) {
	// A wrong key corrupts only the (single-point) input class matching
	// x[sel] = ¬K1 — output corruption must be rare under random
	// stimulus even though the key is wrong everywhere it matters.
	g := circuits.MustGenerate("c880")
	rng := rand.New(rand.NewSource(33))
	locked, key := LockAntiSAT(g, 20, rng)
	bad := make(Key, len(key))
	copy(bad, key)
	bad[len(key)-1] = !bad[len(key)-1]
	badG, err := ApplyKey(locked, bad)
	if err != nil {
		t.Fatal(err)
	}
	goodG, err := ApplyKey(locked, key)
	if err != nil {
		t.Fatal(err)
	}
	// 64 * 32 random patterns; a 10-input point function corrupts a
	// 2^-10 fraction, so expect at most a handful of mismatched words.
	mismatched := 0
	var sA, sB aig.SimScratch
	in := make([]uint64, goodG.NumInputs())
	var bufA, bufB []uint64
	for r := 0; r < 32; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		bufA = goodG.SimulateInto(&sA, bufA, in)
		bufB = badG.SimulateInto(&sB, bufB, in)
		for o := range bufA {
			if bufA[o] != bufB[o] {
				mismatched++
			}
		}
	}
	if mismatched > 8 {
		t.Fatalf("wrong anti-SAT key corrupts too broadly: %d mismatching words", mismatched)
	}
}

func TestLockAntiSATComposesWithRLLAndMux(t *testing.T) {
	g := circuits.MustGenerate("c432")
	rng := rand.New(rand.NewSource(34))
	l1, k1 := Lock(g, 8, rng)
	l2, k2 := LockMux(l1, 4, rng)
	l3, k3 := LockAntiSAT(l2, 8, rng)
	full := make(Key, 0, len(k1)+len(k2)+len(k3))
	full = append(full, k1...)
	full = append(full, k2...)
	full = append(full, k3...)
	if l3.NumKeyInputs() != len(full) {
		t.Fatalf("key inputs %d, want %d", l3.NumKeyInputs(), len(full))
	}
	// Key-input names must stay globally unique and sequential.
	seen := map[string]bool{}
	for _, ki := range l3.KeyInputIndices() {
		name := l3.InputName(ki)
		if !strings.HasPrefix(name, "keyinput") || seen[name] {
			t.Fatalf("bad or duplicate key input name %q", name)
		}
		seen[name] = true
	}
	ok, cex, err := cnf.EquivalentUnderKey(g, l3, full)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("composed rll+mux+antisat key does not unlock (cex %v)", cex)
	}
}

func TestLockAntiSATTinyKeyFallsBack(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := LockAntiSAT(g, 1, rand.New(rand.NewSource(35)))
	if len(key) != 1 {
		t.Fatalf("key size %d, want 1", len(key))
	}
	if ok, _, err := cnf.EquivalentUnderKey(g, locked, key); err != nil || !ok {
		t.Fatalf("fallback lock broken (ok=%v err=%v)", ok, err)
	}
}
