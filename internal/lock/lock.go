// Package lock implements random logic locking (RLL / EPIC-style), the
// deliberately weak scheme the paper locks with: XOR/XNOR key gates are
// inserted on randomly chosen wires, and the netlist is correct only
// under the right key. In AIG form an XNOR key gate is an XOR node with a
// complemented output edge, so "bubble pushing" — the classic trick of
// hiding whether a key gate is XOR or XNOR by migrating inverters — is
// inherent to the representation: after any synthesis pass the
// complement may sit on any edge of the locality.
//
// The package also provides relocking (inserting additional key gates
// with known bits into an already-locked netlist), which is how the
// oracle-less attacks build their self-referencing training sets.
package lock

import (
	"fmt"
	"math/rand"

	"github.com/nyu-secml/almost/internal/aig"
)

// Key is an ordered key-bit vector, aligned with the key inputs of the
// locked netlist in creation order.
type Key []bool

// String renders the key as a bit string, LSB (first key input) first.
func (k Key) String() string {
	out := make([]byte, len(k))
	for i, b := range k {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// RandomKey draws a uniform key of the given size.
func RandomKey(rng *rand.Rand, size int) Key {
	k := make(Key, size)
	for i := range k {
		k[i] = rng.Intn(2) == 1
	}
	return k
}

// Accuracy returns the fraction of positions where guess matches truth —
// the attack metric used throughout the paper (footnote 2).
func Accuracy(truth, guess Key) float64 {
	if len(truth) == 0 {
		return 0
	}
	n := 0
	for i := range truth {
		if i < len(guess) && truth[i] == guess[i] {
			n++
		}
	}
	return float64(n) / float64(len(truth))
}

// Lock inserts keySize XOR/XNOR key gates on distinct randomly chosen
// wires of g and returns the locked netlist together with the correct
// key. Key inputs are named with the standard "keyinput%d" prefix,
// numbered after any key inputs already present (so Lock doubles as the
// relocking primitive).
//
// For key bit 0 the gate is XOR (pass-through at k=0); for key bit 1 it
// is XNOR (pass-through at k=1), per RLL.
func Lock(g *aig.AIG, keySize int, rng *rand.Rand) (*aig.AIG, Key) {
	targets := chooseTargets(g, keySize, rng)
	key := RandomKey(rng, len(targets))
	base := g.NumKeyInputs()

	rb := aig.NewRebuilder(g)
	keyLits := make([]aig.Lit, len(targets))
	for i := range targets {
		keyLits[i] = rb.Dst.AddKeyInput(fmt.Sprintf("keyinput%d", base+i))
	}
	targetIdx := map[int]int{}
	for i, t := range targets {
		targetIdx[t] = i
	}
	for _, id := range g.TopoOrder() {
		f0, f1 := g.Fanins(id)
		nl := rb.Dst.And(rb.LitOf(f0), rb.LitOf(f1))
		if ti, ok := targetIdx[id]; ok {
			locked := rb.Dst.Xor(nl, keyLits[ti]).NotIf(key[ti])
			rb.Map(id, locked)
		} else {
			rb.Map(id, nl)
		}
	}
	return rb.Finish(), key
}

// LockMux inserts keySize MUX key gates on distinct randomly chosen
// wires of g and returns the locked netlist together with the correct
// key. Each key gate replaces a wire t with MUX(k, t, d): under the
// correct key bit the multiplexer selects the true signal, under the
// wrong bit a decoy signal d drawn from elsewhere in the circuit (a
// primary input or an AND node earlier in topological order, so the
// graph stays acyclic). MUX locking hides which of the two fanins is
// functional, a structurally different obfuscation from RLL's XOR/XNOR
// inversion — and the second built-in scheme behind the Locker registry.
//
// Key inputs follow the same "keyinput%d" naming convention as Lock,
// numbered after any key inputs already present, so LockMux composes
// with Lock (and with itself) for mixed-scheme locking.
func LockMux(g *aig.AIG, keySize int, rng *rand.Rand) (*aig.AIG, Key) {
	targets := chooseTargets(g, keySize, rng)
	key := RandomKey(rng, len(targets))
	base := g.NumKeyInputs()

	rb := aig.NewRebuilder(g)
	keyLits := make([]aig.Lit, len(targets))
	for i := range targets {
		keyLits[i] = rb.Dst.AddKeyInput(fmt.Sprintf("keyinput%d", base+i))
	}
	targetIdx := map[int]int{}
	for i, t := range targets {
		targetIdx[t] = i
	}
	// Decoy pool: primary-input literals up front, AND nodes appended as
	// they are rebuilt, so any decoy drawn for a target is guaranteed to
	// be available (and earlier in topological order) at insertion time.
	decoys := make([]aig.Lit, 0, g.NumNodes())
	for i := 0; i < g.NumInputs(); i++ {
		decoys = append(decoys, g.Input(i))
	}
	for _, id := range g.TopoOrder() {
		f0, f1 := g.Fanins(id)
		nl := rb.Dst.And(rb.LitOf(f0), rb.LitOf(f1))
		if ti, ok := targetIdx[id]; ok {
			d := rb.LitOf(decoys[rng.Intn(len(decoys))]).NotIf(rng.Intn(2) == 1)
			t, e := nl, d
			if !key[ti] { // correct bit 0 must select the true signal
				t, e = d, nl
			}
			rb.Map(id, rb.Dst.Mux(keyLits[ti], t, e))
		} else {
			rb.Map(id, nl)
		}
		decoys = append(decoys, aig.MakeLit(id, false))
	}
	return rb.Finish(), key
}

// LockAntiSAT inserts an anti-SAT / SARLock-style point-function block
// (Xie & Srivastava, CHES 2016; Yasin et al., HOST 2016) and returns the
// locked netlist with the correct key. The block computes
//
//	Y = AND_i(x_i ⊕ K1_i) ∧ ¬AND_j(x_j ⊕ K2_j)   (i < n, j < m ≤ n)
//
// over n randomly chosen primary inputs, with an n-bit key half K1 and
// an m-bit half K2, and XORs Y into one randomly chosen output. Under
// any key with K2 = K1[:m] the two AND trees cancel (Y ≡ 0) and the
// circuit is functionally intact; under any other key exactly the input
// patterns matching x[0:n] = ¬K1 are corrupted — a 2^-n fraction. Each
// DIP therefore eliminates essentially one wrong key class, which is
// precisely the behavior that pushes the oracle-guided SAT attack to
// exponentially many iterations, while the output corruption rate stays
// near zero (the reason AppSAT-style approximate attacks exist).
//
// keySize splits as n = ceil(keySize/2), m = keySize - n; n is clamped
// to the number of available primary inputs (with m clamped to n), so
// the returned key may be shorter than requested on tiny circuits.
// keySize < 2 falls back to Lock — a point function needs both halves.
// Key inputs follow the same "keyinput%d" naming convention, numbered
// after existing key inputs, so the scheme composes with Lock and
// LockMux for mixed-scheme chains.
func LockAntiSAT(g *aig.AIG, keySize int, rng *rand.Rand) (*aig.AIG, Key) {
	var pis []int // non-key input indices
	for i := 0; i < g.NumInputs(); i++ {
		if !g.InputIsKey(i) {
			pis = append(pis, i)
		}
	}
	n := (keySize + 1) / 2
	if n > len(pis) {
		n = len(pis)
	}
	m := keySize - n
	if m > n {
		m = n
	}
	if keySize < 2 || n == 0 || m == 0 {
		return Lock(g, keySize, rng)
	}
	perm := rng.Perm(len(pis))
	sel := make([]int, n)
	for i := range sel {
		sel[i] = pis[perm[i]]
	}
	k1 := RandomKey(rng, n)
	key := make(Key, 0, n+m)
	key = append(key, k1...)
	key = append(key, k1[:m]...)

	base := g.NumKeyInputs()
	rb := aig.NewRebuilder(g)
	keyLits := make([]aig.Lit, n+m)
	for i := range keyLits {
		keyLits[i] = rb.Dst.AddKeyInput(fmt.Sprintf("keyinput%d", base+i))
	}
	for _, id := range g.TopoOrder() {
		f0, f1 := g.Fanins(id)
		rb.Map(id, rb.Dst.And(rb.LitOf(f0), rb.LitOf(f1)))
	}
	aTerms := make([]aig.Lit, n)
	for i := 0; i < n; i++ {
		aTerms[i] = rb.Dst.Xor(rb.LitOf(g.Input(sel[i])), keyLits[i])
	}
	bTerms := make([]aig.Lit, m)
	for j := 0; j < m; j++ {
		bTerms[j] = rb.Dst.Xor(rb.LitOf(g.Input(sel[j])), keyLits[n+j])
	}
	y := rb.Dst.And(rb.Dst.AndN(aTerms), rb.Dst.AndN(bTerms).Not())

	victim := rng.Intn(g.NumOutputs())
	for i := 0; i < g.NumOutputs(); i++ {
		ol := rb.LitOf(g.Output(i))
		if i == victim {
			ol = rb.Dst.Xor(ol, y)
		}
		rb.Dst.AddOutput(ol, g.OutputName(i))
	}
	return rb.Dst, key
}

// chooseTargets picks keySize distinct live AND nodes, uniformly.
func chooseTargets(g *aig.AIG, keySize int, rng *rand.Rand) []int {
	order := g.TopoOrder()
	if keySize > len(order) {
		keySize = len(order)
	}
	perm := rng.Perm(len(order))
	targets := make([]int, keySize)
	for i := 0; i < keySize; i++ {
		targets[i] = order[perm[i]]
	}
	return targets
}

// Relock adds extra key gates with known bits to an already-locked
// netlist — the data-generation step of self-referencing attacks. It
// returns the relocked netlist, the indices (into the new netlist's
// key-input order) of the added key inputs, and their bits.
func Relock(g *aig.AIG, extra int, rng *rand.Rand) (*aig.AIG, []int, Key) {
	before := g.NumKeyInputs()
	relocked, key := Lock(g, extra, rng)
	idx := make([]int, len(key))
	for i := range idx {
		idx[i] = before + i
	}
	return relocked, idx, key
}

// ApplyKey substitutes constants for all key inputs, returning the
// functional (unlocked) circuit with only primary inputs. key is indexed
// in key-input order.
func ApplyKey(g *aig.AIG, key Key) (*aig.AIG, error) {
	kIdx := g.KeyInputIndices()
	if len(kIdx) != len(key) {
		return nil, fmt.Errorf("lock: key size %d does not match %d key inputs", len(key), len(kIdx))
	}
	bits := map[int]bool{}
	for j, ki := range kIdx {
		bits[ki] = key[j]
	}
	return FixInputs(g, bits), nil
}

// FixInputs substitutes constants for the inputs whose indices appear in
// bits, dropping those inputs from the interface. Constant propagation
// happens structurally through the AIG's And simplifications. Used by the
// SCOPE and redundancy attacks to cofactor circuits on key values.
func FixInputs(g *aig.AIG, bits map[int]bool) *aig.AIG {
	dst := aig.New()
	m := make([]aig.Lit, g.NumNodes())
	for i := range m {
		m[i] = ^aig.Lit(0)
	}
	m[0] = aig.False
	for i := 0; i < g.NumInputs(); i++ {
		id := g.Input(i).Node()
		if v, fixed := bits[i]; fixed {
			if v {
				m[id] = aig.True
			} else {
				m[id] = aig.False
			}
			continue
		}
		if g.InputIsKey(i) {
			m[id] = dst.AddKeyInput(g.InputName(i))
		} else {
			m[id] = dst.AddInput(g.InputName(i))
		}
	}
	var copyLit func(l aig.Lit) aig.Lit
	copyLit = func(l aig.Lit) aig.Lit {
		id := l.Node()
		if m[id] == ^aig.Lit(0) {
			f0, f1 := g.Fanins(id)
			m[id] = dst.And(copyLit(f0), copyLit(f1))
		}
		return m[id].NotIf(l.Neg())
	}
	for i := 0; i < g.NumOutputs(); i++ {
		dst.AddOutput(copyLit(g.Output(i)), g.OutputName(i))
	}
	return dst
}

// WrongKeyCorrupts reports whether flipping each single key bit changes
// at least one output on the given number of random 64-pattern rounds.
// Used to confirm that every key gate is functionally live. One sim
// scratch and one output-buffer pair are reused across all rounds and
// key bits.
func WrongKeyCorrupts(g *aig.AIG, key Key, rng *rand.Rand, rounds int) []bool {
	kIdx := g.KeyInputIndices()
	live := make([]bool, len(key))
	var sim aig.SimScratch
	in := make([]uint64, g.NumInputs())
	var good, bad []uint64
	for r := 0; r < rounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		for j, ki := range kIdx {
			if key[j] {
				in[ki] = ^uint64(0)
			} else {
				in[ki] = 0
			}
		}
		good = g.SimulateInto(&sim, good, in)
		for j, ki := range kIdx {
			if live[j] {
				continue
			}
			in[ki] = ^in[ki]
			bad = g.SimulateInto(&sim, bad, in)
			in[ki] = ^in[ki]
			for o := range good {
				if good[o] != bad[o] {
					live[j] = true
					break
				}
			}
		}
	}
	return live
}
