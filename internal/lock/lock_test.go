package lock

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/cnf"
	"github.com/nyu-secml/almost/internal/synth"
)

func TestKeyString(t *testing.T) {
	k := Key{true, false, true}
	if k.String() != "101" {
		t.Fatalf("Key.String = %q", k.String())
	}
}

func TestAccuracy(t *testing.T) {
	truth := Key{true, false, true, false}
	if a := Accuracy(truth, Key{true, false, true, false}); a != 1.0 {
		t.Errorf("perfect = %v", a)
	}
	if a := Accuracy(truth, Key{false, true, false, true}); a != 0.0 {
		t.Errorf("inverted = %v", a)
	}
	if a := Accuracy(truth, Key{true, false, false, true}); a != 0.5 {
		t.Errorf("half = %v", a)
	}
	if a := Accuracy(Key{}, Key{}); a != 0 {
		t.Errorf("empty = %v", a)
	}
}

func TestLockInterface(t *testing.T) {
	g := circuits.MustGenerate("c432")
	rng := rand.New(rand.NewSource(1))
	locked, key := Lock(g, 16, rng)
	if locked.NumKeyInputs() != 16 || len(key) != 16 {
		t.Fatalf("key inputs = %d, key = %d", locked.NumKeyInputs(), len(key))
	}
	if locked.NumOutputs() != g.NumOutputs() {
		t.Fatalf("outputs changed")
	}
	if locked.NumInputs() != g.NumInputs()+16 {
		t.Fatalf("inputs = %d", locked.NumInputs())
	}
	// Key input names follow the convention.
	for _, ki := range locked.KeyInputIndices() {
		if !strings.HasPrefix(locked.InputName(ki), "keyinput") {
			t.Fatalf("bad key input name %q", locked.InputName(ki))
		}
	}
}

func TestLockCorrectKeyPreservesFunction(t *testing.T) {
	g := circuits.MustGenerate("c499")
	rng := rand.New(rand.NewSource(2))
	locked, key := Lock(g, 24, rng)
	if ok, cex, _ := cnf.EquivalentUnderKey(g, locked, key); !ok {
		t.Fatalf("correct key does not restore function (cex=%v)", cex)
	}
}

func TestLockWrongKeyBreaksFunction(t *testing.T) {
	g := circuits.MustGenerate("c432")
	rng := rand.New(rand.NewSource(3))
	locked, key := Lock(g, 8, rng)
	wrong := append(Key(nil), key...)
	wrong[0] = !wrong[0]
	if ok, _, _ := cnf.EquivalentUnderKey(g, locked, wrong); ok {
		t.Fatalf("wrong key still equivalent — key gate dead?")
	}
}

func TestAllKeyGatesLive(t *testing.T) {
	g := circuits.MustGenerate("c880")
	rng := rand.New(rand.NewSource(4))
	locked, key := Lock(g, 32, rng)
	live := WrongKeyCorrupts(locked, key, rng, 8)
	for j, l := range live {
		if !l {
			t.Errorf("key bit %d appears dead under random simulation", j)
		}
	}
}

func TestLockMuxCorrectKeyPreservesFunction(t *testing.T) {
	g := circuits.MustGenerate("c499")
	rng := rand.New(rand.NewSource(21))
	locked, key := LockMux(g, 24, rng)
	if locked.NumKeyInputs() != 24 || len(key) != 24 {
		t.Fatalf("key inputs = %d, key = %d", locked.NumKeyInputs(), len(key))
	}
	for _, ki := range locked.KeyInputIndices() {
		if !strings.HasPrefix(locked.InputName(ki), "keyinput") {
			t.Fatalf("bad key input name %q", locked.InputName(ki))
		}
	}
	if ok, cex, _ := cnf.EquivalentUnderKey(g, locked, key); !ok {
		t.Fatalf("correct key does not restore function (cex=%v)", cex)
	}
}

func TestLockMuxSurvivesSynthesis(t *testing.T) {
	g := circuits.MustGenerate("c432")
	rng := rand.New(rand.NewSource(22))
	locked, key := LockMux(g, 12, rng)
	synthed := synth.Resyn2().Apply(locked)
	if synthed.NumKeyInputs() != 12 {
		t.Fatalf("synthesis lost key inputs: %d", synthed.NumKeyInputs())
	}
	if ok, _, _ := cnf.EquivalentUnderKey(g, synthed, key); !ok {
		t.Fatalf("synthesized MUX-locked circuit broken under correct key")
	}
}

func TestLockMuxDeterministicForSeed(t *testing.T) {
	g := circuits.MustGenerate("c432")
	l1, k1 := LockMux(g, 8, rand.New(rand.NewSource(23)))
	l2, k2 := LockMux(g, 8, rand.New(rand.NewSource(23)))
	if l1.NumNodes() != l2.NumNodes() || k1.String() != k2.String() {
		t.Fatalf("MUX locking not deterministic")
	}
}

// TestLockMuxComposesWithRLL chains the two schemes — the mixed-locking
// scenario Config.Lockers enables — and checks the concatenated key
// restores the original function.
func TestLockMuxComposesWithRLL(t *testing.T) {
	g := circuits.MustGenerate("c880")
	rng := rand.New(rand.NewSource(24))
	l1, k1 := Lock(g, 8, rng)
	l2, k2 := LockMux(l1, 8, rng)
	if l2.NumKeyInputs() != 16 {
		t.Fatalf("key inputs = %d, want 16", l2.NumKeyInputs())
	}
	full := append(append(Key(nil), k1...), k2...)
	if ok, _, _ := cnf.EquivalentUnderKey(g, l2, full); !ok {
		t.Fatalf("RLL+MUX chain broken under concatenated key")
	}
}

func TestApplyKeyRemovesKeyInputs(t *testing.T) {
	g := circuits.MustGenerate("c432")
	rng := rand.New(rand.NewSource(5))
	locked, key := Lock(g, 8, rng)
	unlocked, err := ApplyKey(locked, key)
	if err != nil {
		t.Fatal(err)
	}
	if unlocked.NumKeyInputs() != 0 {
		t.Fatalf("key inputs remain")
	}
	if unlocked.NumInputs() != g.NumInputs() {
		t.Fatalf("inputs = %d, want %d", unlocked.NumInputs(), g.NumInputs())
	}
	if ok, _, _ := cnf.Equivalent(g, unlocked); !ok {
		t.Fatalf("ApplyKey(correct key) != original")
	}
	// Wrong key must not be equivalent.
	wrong := append(Key(nil), key...)
	wrong[3] = !wrong[3]
	bad, err := ApplyKey(locked, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := cnf.Equivalent(g, bad); ok {
		t.Fatalf("ApplyKey(wrong key) == original")
	}
}

func TestApplyKeySizeMismatch(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, _ := Lock(g, 4, rand.New(rand.NewSource(6)))
	if _, err := ApplyKey(locked, Key{true}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestRelockAddsDistinctKeyInputs(t *testing.T) {
	g := circuits.MustGenerate("c432")
	rng := rand.New(rand.NewSource(7))
	locked, key := Lock(g, 8, rng)
	relocked, idx, extraKey := Relock(locked, 6, rng)
	if relocked.NumKeyInputs() != 14 {
		t.Fatalf("key inputs = %d, want 14", relocked.NumKeyInputs())
	}
	if len(idx) != 6 || len(extraKey) != 6 {
		t.Fatalf("idx=%v extra=%v", idx, extraKey)
	}
	for i, id := range idx {
		if id != 8+i {
			t.Fatalf("relock indices = %v", idx)
		}
	}
	// Full key (original + extra) must restore the original function.
	full := append(append(Key(nil), key...), extraKey...)
	if ok, _, _ := cnf.EquivalentUnderKey(g, relocked, full); !ok {
		t.Fatalf("relocked circuit broken under full correct key")
	}
}

func TestLockedSurvivesSynthesis(t *testing.T) {
	// The paper's whole premise: locked netlists go through synthesis and
	// stay correct under the right key.
	g := circuits.MustGenerate("c499")
	rng := rand.New(rand.NewSource(8))
	locked, key := Lock(g, 16, rng)
	synthed := synth.Resyn2().Apply(locked)
	if synthed.NumKeyInputs() != 16 {
		t.Fatalf("synthesis lost key inputs: %d", synthed.NumKeyInputs())
	}
	if ok, _, _ := cnf.EquivalentUnderKey(g, synthed, key); !ok {
		t.Fatalf("synthesized locked circuit broken under correct key")
	}
}

func TestLockDeterministicForSeed(t *testing.T) {
	g := circuits.MustGenerate("c432")
	l1, k1 := Lock(g, 8, rand.New(rand.NewSource(9)))
	l2, k2 := Lock(g, 8, rand.New(rand.NewSource(9)))
	if l1.NumNodes() != l2.NumNodes() || k1.String() != k2.String() {
		t.Fatalf("locking not deterministic")
	}
}

func TestLockCapsAtCircuitSize(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.And(a, b), "o")
	locked, key := Lock(g, 100, rand.New(rand.NewSource(10)))
	if len(key) != 1 || locked.NumKeyInputs() != 1 {
		t.Fatalf("expected cap at 1 key gate, got %d", len(key))
	}
}

// Property: locking any circuit with any seed keeps correct-key
// equivalence (checked by SAT) and inserts one key input per live AND
// node up to keySize. randomAIG draws its outputs from the last few
// literals, so a deeply folded draw can leave a live cone smaller than
// keySize — Lock caps at the live node count (dead wires do not survive
// synthesis, so key gates on them would lock nothing).
func TestLockPropertyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("property test in -short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAIG(rng, 5+rng.Intn(4), 2, 20+rng.Intn(40))
		want := 4
		if live := len(g.TopoOrder()); live < want {
			want = live
		}
		locked, key := Lock(g, 4, rng)
		ok, _, _ := cnf.EquivalentUnderKey(g, locked, key)
		return ok && locked.NumKeyInputs() == want && len(key) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func randomAIG(rng *rand.Rand, nIn, nOut, nAnd int) *aig.AIG {
	g := aig.New()
	lits := make([]aig.Lit, 0, nIn+nAnd)
	for i := 0; i < nIn; i++ {
		lits = append(lits, g.AddInput("i"))
	}
	for len(lits) < nIn+nAnd {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		l := g.And(a, b)
		if g.IsAnd(l.Node()) {
			lits = append(lits, l)
		}
	}
	for i := 0; i < nOut; i++ {
		g.AddOutput(lits[len(lits)-1-i].NotIf(rng.Intn(2) == 1), "o")
	}
	return g
}

func BenchmarkLockC7552(b *testing.B) {
	g := circuits.MustGenerate("c7552")
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Lock(g, 128, rng)
	}
}
