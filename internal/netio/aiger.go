package netio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/nyu-secml/almost/internal/aig"
)

// KeyInputComment is the annotation tag under which the writers record
// key-input positions ("almost-keyinputs: 3 5 9") — an AIGER
// comment-section line, a "#" comment in BENCH. The readers honor it,
// so key metadata survives a round trip even when key inputs carry
// names without the "keyinput" prefix.
const KeyInputComment = "almost-keyinputs:"

// parseKeyPositions parses the space-separated input positions of a
// KeyInputComment annotation into dst. Positions are validated against
// nInputs when nInputs >= 0; pass nInputs < 0 to defer range checking
// (the BENCH reader validates after the scan, once the input count is
// known).
func parseKeyPositions(rest string, nInputs int, dst map[int]bool) error {
	for _, fld := range strings.Fields(rest) {
		pos, err := strconv.Atoi(fld)
		if err != nil || pos < 0 || (nInputs >= 0 && pos >= nInputs) {
			return fmt.Errorf("%s position %q out of range", KeyInputComment, fld)
		}
		dst[pos] = true
	}
	return nil
}

// maxAigerCount bounds the header counts (I, L, O, A) accepted by the
// reader so a hostile header cannot force a giant allocation before any
// real data is seen.
const maxAigerCount = 1 << 22

func aigerErr(f Format, line int, format string, args ...interface{}) *ParseError {
	return &ParseError{Format: f, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// aigerFile is the intermediate form shared by the ASCII and binary
// readers: raw literals as they appear in the file, plus symbol and
// comment metadata, resolved into an AIG only once everything is read.
type aigerFile struct {
	format  Format
	maxVar  uint32
	inputs  []uint32    // input literals (even, distinct)
	outputs []uint32    // output literals
	ands    [][3]uint32 // lhs, rhs0, rhs1
	inName  map[int]string
	outName map[int]string
	keyIdx  map[int]bool // explicit key-input positions from the comment section
}

// ParseAIGER reads an AIGER netlist, accepting both the ASCII ("aag")
// and binary ("aig") variants, distinguished by the header magic.
// Latches are rejected: ALMOST operates on combinational blocks.
func ParseAIGER(r io.Reader) (*aig.AIG, error) {
	br := bufio.NewReader(r)
	header, err := readLine(br)
	if err != nil {
		return nil, aigerErr(FormatAAG, 1, "missing header: %v", err)
	}
	fields := strings.Fields(header)
	if len(fields) != 6 || (fields[0] != "aag" && fields[0] != "aig") {
		return nil, aigerErr(FormatAAG, 1, "malformed header %q (want \"aag|aig M I L O A\")", header)
	}
	format := FormatAAG
	if fields[0] == "aig" {
		format = FormatAIG
	}
	var m, i, l, o, a uint64
	for fi, dst := range []*uint64{&m, &i, &l, &o, &a} {
		v, err := strconv.ParseUint(fields[fi+1], 10, 32)
		if err != nil {
			return nil, aigerErr(format, 1, "bad header count %q: %v", fields[fi+1], err)
		}
		*dst = v
	}
	if l != 0 {
		return nil, aigerErr(format, 1, "netlist has %d latches; only combinational circuits are supported", l)
	}
	if i > maxAigerCount || o > maxAigerCount || a > maxAigerCount || m > 2*maxAigerCount {
		return nil, aigerErr(format, 1, "header counts exceed the supported size (max %d)", maxAigerCount)
	}
	if m < i+a {
		return nil, aigerErr(format, 1, "header M=%d smaller than I+A=%d", m, i+a)
	}
	f := &aigerFile{
		format:  format,
		maxVar:  uint32(m),
		inName:  map[int]string{},
		outName: map[int]string{},
		keyIdx:  map[int]bool{},
	}
	if format == FormatAAG {
		err = f.readASCII(br, int(i), int(o), int(a))
	} else {
		err = f.readBinary(br, int(i), int(o), int(a))
	}
	if err != nil {
		return nil, err
	}
	if err := f.readSymbolsAndComments(br); err != nil {
		return nil, err
	}
	return f.build()
}

// readLine reads one \n-terminated line (the final line may omit the
// newline). The 1 MiB cap is enforced incrementally, chunk by chunk, so
// a hostile newline-free multi-gigabyte input is rejected after the
// first mebibyte instead of being buffered whole.
func readLine(br *bufio.Reader) (string, error) {
	var sb strings.Builder
	for {
		chunk, err := br.ReadSlice('\n')
		if sb.Len()+len(chunk) > 1<<20 {
			return "", fmt.Errorf("line longer than 1MiB")
		}
		sb.Write(chunk)
		switch err {
		case nil:
			return strings.TrimRight(sb.String(), "\r\n"), nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if sb.Len() > 0 {
				return strings.TrimRight(sb.String(), "\r\n"), nil
			}
			return "", io.EOF
		default:
			return "", err
		}
	}
}

func (f *aigerFile) readASCII(br *bufio.Reader, i, o, a int) error {
	line := 1
	seen := map[uint32]bool{}
	readLit := func(what string, allowNeg bool) (uint32, error) {
		line++
		s, err := readLine(br)
		if err != nil {
			return 0, aigerErr(FormatAAG, line, "missing %s line: %v", what, err)
		}
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
		if err != nil {
			return 0, aigerErr(FormatAAG, line, "bad %s literal %q", what, s)
		}
		lit := uint32(v)
		if lit>>1 > f.maxVar {
			return 0, aigerErr(FormatAAG, line, "%s literal %d exceeds maximum variable %d", what, lit, f.maxVar)
		}
		if !allowNeg && lit&1 == 1 {
			return 0, aigerErr(FormatAAG, line, "%s literal %d must be even", what, lit)
		}
		return lit, nil
	}
	for k := 0; k < i; k++ {
		lit, err := readLit("input", false)
		if err != nil {
			return err
		}
		if lit == 0 {
			return aigerErr(FormatAAG, line, "input literal must not be constant")
		}
		if seen[lit>>1] {
			return aigerErr(FormatAAG, line, "duplicate input literal %d", lit)
		}
		seen[lit>>1] = true
		f.inputs = append(f.inputs, lit)
	}
	for k := 0; k < o; k++ {
		lit, err := readLit("output", true)
		if err != nil {
			return err
		}
		f.outputs = append(f.outputs, lit)
	}
	for k := 0; k < a; k++ {
		line++
		s, err := readLine(br)
		if err != nil {
			return aigerErr(FormatAAG, line, "missing and-gate line: %v", err)
		}
		fields := strings.Fields(s)
		if len(fields) != 3 {
			return aigerErr(FormatAAG, line, "malformed and-gate line %q (want \"lhs rhs0 rhs1\")", s)
		}
		var lits [3]uint32
		for fi, fs := range fields {
			v, err := strconv.ParseUint(fs, 10, 32)
			if err != nil || uint32(v)>>1 > f.maxVar {
				return aigerErr(FormatAAG, line, "bad and-gate literal %q", fs)
			}
			lits[fi] = uint32(v)
		}
		if lits[0]&1 == 1 || lits[0] == 0 {
			return aigerErr(FormatAAG, line, "and-gate left-hand side %d must be a positive even literal", lits[0])
		}
		if seen[lits[0]>>1] {
			return aigerErr(FormatAAG, line, "variable %d defined more than once", lits[0]>>1)
		}
		seen[lits[0]>>1] = true
		f.ands = append(f.ands, lits)
	}
	return nil
}

func (f *aigerFile) readBinary(br *bufio.Reader, i, o, a int) error {
	// Binary AIGER: inputs are implicit (variables 1..I); outputs are
	// still ASCII lines; ands follow as delta-coded byte pairs with
	// lhs(k) = 2*(I+k+1) and lhs > rhs0 >= rhs1.
	if uint64(i)+uint64(a) != uint64(f.maxVar) {
		return aigerErr(FormatAIG, 1, "binary header requires M = I+A, got M=%d I=%d A=%d", f.maxVar, i, a)
	}
	line := 1
	for k := 0; k < i; k++ {
		f.inputs = append(f.inputs, uint32(k+1)<<1)
	}
	for k := 0; k < o; k++ {
		line++
		s, err := readLine(br)
		if err != nil {
			return aigerErr(FormatAIG, line, "missing output line: %v", err)
		}
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
		if err != nil || uint32(v)>>1 > f.maxVar {
			return aigerErr(FormatAIG, line, "bad output literal %q", s)
		}
		f.outputs = append(f.outputs, uint32(v))
	}
	for k := 0; k < a; k++ {
		lhs := uint32(i+k+1) << 1
		delta0, err := readVarint(br)
		if err != nil {
			return aigerErr(FormatAIG, 0, "and-gate %d: %v", k, err)
		}
		delta1, err := readVarint(br)
		if err != nil {
			return aigerErr(FormatAIG, 0, "and-gate %d: %v", k, err)
		}
		if delta0 == 0 || delta0 > uint64(lhs) {
			return aigerErr(FormatAIG, 0, "and-gate %d: delta %d out of range for lhs %d", k, delta0, lhs)
		}
		rhs0 := lhs - uint32(delta0)
		if delta1 > uint64(rhs0) {
			return aigerErr(FormatAIG, 0, "and-gate %d: delta %d out of range for rhs0 %d", k, delta1, rhs0)
		}
		rhs1 := rhs0 - uint32(delta1)
		f.ands = append(f.ands, [3]uint32{lhs, rhs0, rhs1})
	}
	return nil
}

// readVarint decodes one LEB128-style AIGER delta.
func readVarint(br *bufio.Reader) (uint64, error) {
	var x uint64
	for shift := 0; shift < 64; shift += 7 {
		b, err := br.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("truncated delta: %v", err)
		}
		x |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return x, nil
		}
	}
	return 0, fmt.Errorf("delta encoding longer than 64 bits")
}

// readSymbolsAndComments consumes the optional symbol table and comment
// section shared by both AIGER variants.
func (f *aigerFile) readSymbolsAndComments(br *bufio.Reader) error {
	inComment := false
	for {
		s, err := readLine(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return aigerErr(f.format, 0, "symbol table: %v", err)
		}
		if inComment {
			if rest, ok := strings.CutPrefix(strings.TrimSpace(s), KeyInputComment); ok {
				if err := parseKeyPositions(rest, len(f.inputs), f.keyIdx); err != nil {
					return aigerErr(f.format, 0, "%v", err)
				}
			}
			continue
		}
		trimmed := strings.TrimSpace(s)
		if trimmed == "c" {
			inComment = true
			continue
		}
		if trimmed == "" {
			continue
		}
		kind := trimmed[0]
		rest := trimmed[1:]
		sp := strings.IndexAny(rest, " \t")
		if (kind != 'i' && kind != 'o' && kind != 'l') || sp < 0 {
			return aigerErr(f.format, 0, "malformed symbol-table line %q", s)
		}
		pos, err := strconv.Atoi(rest[:sp])
		if err != nil || pos < 0 {
			return aigerErr(f.format, 0, "bad symbol position in %q", s)
		}
		name := strings.TrimSpace(rest[sp+1:])
		switch kind {
		case 'i':
			if pos >= len(f.inputs) {
				return aigerErr(f.format, 0, "input symbol position %d out of range", pos)
			}
			f.inName[pos] = name
		case 'o':
			if pos >= len(f.outputs) {
				return aigerErr(f.format, 0, "output symbol position %d out of range", pos)
			}
			f.outName[pos] = name
		case 'l':
			return aigerErr(f.format, 0, "latch symbol in combinational netlist")
		}
	}
}

// build resolves the raw literal graph into a structurally hashed AIG.
func (f *aigerFile) build() (*aig.AIG, error) {
	g := aig.New()
	lits := make(map[uint32]aig.Lit, len(f.inputs)+len(f.ands)+1) // var -> AIG literal
	lits[0] = aig.False
	for pos, in := range f.inputs {
		name, ok := f.inName[pos]
		if !ok || name == "" {
			name = fmt.Sprintf("i%d", pos)
		}
		if f.keyIdx[pos] || strings.HasPrefix(name, KeyInputPrefix) {
			lits[in>>1] = g.AddKeyInput(name)
		} else {
			lits[in>>1] = g.AddInput(name)
		}
	}
	// AND definitions may appear in any order in the ASCII format;
	// resolve each cone iteratively (an explicit stack, not recursion —
	// a multi-million-gate chain listed in reverse order must not
	// overflow the goroutine stack) with cycle detection.
	defs := make(map[uint32]int, len(f.ands)) // var -> index into f.ands
	for idx, a := range f.ands {
		defs[a[0]>>1] = idx
	}
	inProgress := make(map[uint32]bool, 16)
	resolve := func(root uint32) (aig.Lit, error) {
		if l, ok := lits[root]; ok {
			return l, nil
		}
		stack := []uint32{root}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			if _, ok := lits[v]; ok {
				stack = stack[:len(stack)-1]
				delete(inProgress, v)
				continue
			}
			idx, ok := defs[v]
			if !ok {
				return 0, aigerErr(f.format, 0, "literal %d references undefined variable %d (dangling fanin)", v<<1, v)
			}
			a := f.ands[idx]
			if !inProgress[v] {
				// First visit: push unresolved fanins; v stays on the
				// stack and is built on the second visit.
				inProgress[v] = true
				for _, rhs := range [2]uint32{a[1], a[2]} {
					w := rhs >> 1
					if _, ok := lits[w]; ok {
						continue
					}
					if inProgress[w] {
						return 0, aigerErr(f.format, 0, "combinational cycle through variable %d", w)
					}
					stack = append(stack, w)
				}
				continue
			}
			// Second visit: both fanins settled above.
			r0 := lits[a[1]>>1].NotIf(a[1]&1 == 1)
			r1 := lits[a[2]>>1].NotIf(a[2]&1 == 1)
			lits[v] = g.And(r0, r1)
			stack = stack[:len(stack)-1]
			delete(inProgress, v)
		}
		return lits[root], nil
	}
	resolveLit := func(x uint32) (aig.Lit, error) {
		l, err := resolve(x >> 1)
		if err != nil {
			return 0, err
		}
		return l.NotIf(x&1 == 1), nil
	}
	// Resolve every defined AND (not only outputs' cones) so malformed
	// dangling definitions are still diagnosed, then wire the outputs.
	for _, a := range f.ands {
		if _, err := resolve(a[0] >> 1); err != nil {
			return nil, err
		}
	}
	for pos, o := range f.outputs {
		l, err := resolveLit(o)
		if err != nil {
			return nil, err
		}
		name, ok := f.outName[pos]
		if !ok || name == "" {
			name = fmt.Sprintf("o%d", pos)
		}
		g.AddOutput(l, name)
	}
	return g, nil
}

// aigerNumbering maps an AIG onto dense AIGER variables: the constant is
// variable 0, inputs are 1..I in input order, and live AND nodes follow
// in topological order.
func aigerNumbering(g *aig.AIG) (varOf []uint32, order []int) {
	varOf = make([]uint32, g.NumNodes())
	for i := 0; i < g.NumInputs(); i++ {
		varOf[g.Input(i).Node()] = uint32(i + 1)
	}
	order = g.TopoOrder()
	next := uint32(g.NumInputs() + 1)
	for _, id := range order {
		varOf[id] = next
		next++
	}
	return varOf, order
}

func aigerLit(varOf []uint32, l aig.Lit) uint32 {
	v := varOf[l.Node()] << 1
	if l.Neg() {
		v |= 1
	}
	return v
}

// writeSymbolsAndComments emits the symbol table (every input and output
// name) and the comment section, including the key-input annotation when
// the netlist is locked.
func writeSymbolsAndComments(bw *bufio.Writer, g *aig.AIG) {
	for i := 0; i < g.NumInputs(); i++ {
		fmt.Fprintf(bw, "i%d %s\n", i, g.InputName(i))
	}
	for i := 0; i < g.NumOutputs(); i++ {
		fmt.Fprintf(bw, "o%d %s\n", i, g.OutputName(i))
	}
	fmt.Fprintln(bw, "c")
	if keys := g.KeyInputIndices(); len(keys) > 0 {
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = strconv.Itoa(k)
		}
		fmt.Fprintf(bw, "%s %s\n", KeyInputComment, strings.Join(parts, " "))
	}
	fmt.Fprintln(bw, "almost netio")
}

// WriteAAG emits the AIG in ASCII AIGER format, with input/output names
// in the symbol table and key-input positions in the comment section.
func WriteAAG(w io.Writer, g *aig.AIG) error {
	bw := bufio.NewWriter(w)
	varOf, order := aigerNumbering(g)
	ni, na := g.NumInputs(), len(order)
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", ni+na, ni, g.NumOutputs(), na)
	for i := 0; i < ni; i++ {
		fmt.Fprintf(bw, "%d\n", uint32(i+1)<<1)
	}
	for i := 0; i < g.NumOutputs(); i++ {
		fmt.Fprintf(bw, "%d\n", aigerLit(varOf, g.Output(i)))
	}
	for _, id := range order {
		f0, f1 := g.Fanins(id)
		fmt.Fprintf(bw, "%d %d %d\n", varOf[id]<<1, aigerLit(varOf, f0), aigerLit(varOf, f1))
	}
	writeSymbolsAndComments(bw, g)
	return bw.Flush()
}

// WriteAIG emits the AIG in binary AIGER format (delta-coded and gates),
// with the same symbol-table and key-input conventions as WriteAAG.
func WriteAIG(w io.Writer, g *aig.AIG) error {
	bw := bufio.NewWriter(w)
	varOf, order := aigerNumbering(g)
	ni, na := g.NumInputs(), len(order)
	fmt.Fprintf(bw, "aig %d %d 0 %d %d\n", ni+na, ni, g.NumOutputs(), na)
	for i := 0; i < g.NumOutputs(); i++ {
		fmt.Fprintf(bw, "%d\n", aigerLit(varOf, g.Output(i)))
	}
	for _, id := range order {
		f0, f1 := g.Fanins(id)
		lhs := varOf[id] << 1
		rhs0, rhs1 := aigerLit(varOf, f0), aigerLit(varOf, f1)
		if rhs0 < rhs1 {
			rhs0, rhs1 = rhs1, rhs0
		}
		writeVarint(bw, uint64(lhs-rhs0))
		writeVarint(bw, uint64(rhs0-rhs1))
	}
	writeSymbolsAndComments(bw, g)
	return bw.Flush()
}

func writeVarint(bw *bufio.Writer, x uint64) {
	for x >= 0x80 {
		bw.WriteByte(byte(x&0x7f) | 0x80)
		x >>= 7
	}
	bw.WriteByte(byte(x))
}
