package netio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/nyu-secml/almost/internal/aig"
)

// KeyInputPrefix is the input-name prefix that marks key inputs, matching
// the convention of public logic-locking benchmark releases.
const KeyInputPrefix = "keyinput"

func benchErr(line int, format string, args ...interface{}) *ParseError {
	return &ParseError{Format: FormatBench, Line: line, Msg: fmt.Sprintf(format, args...)}
}

type rawGate struct {
	name string
	op   string
	args []string
	line int
}

// ParseBench reads a .bench netlist and builds an AIG. Gates may appear
// in any order. Inputs named with KeyInputPrefix become key inputs, as
// do input positions listed in an "# almost-keyinputs: <pos...>"
// comment (the BENCH twin of the AIGER comment-section annotation, for
// locked netlists whose key inputs carry arbitrary names).
func ParseBench(r io.Reader) (*aig.AIG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var inputs, outputs []string
	var outputLines []int
	var gates []rawGate
	keyIdx := map[int]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "#"); i >= 0 {
			comment := strings.TrimSpace(line[i+1:])
			if rest, ok := strings.CutPrefix(comment, KeyInputComment); ok {
				// Range check is deferred: INPUT lines may follow the
				// annotation, so the input count is not yet known.
				if err := parseKeyPositions(rest, -1, keyIdx); err != nil {
					return nil, benchErr(lineNo, "%v", err)
				}
			}
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			name, err := parenArg(line)
			if err != nil {
				return nil, benchErr(lineNo, "%v", err)
			}
			inputs = append(inputs, name)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			name, err := parenArg(line)
			if err != nil {
				return nil, benchErr(lineNo, "%v", err)
			}
			outputs = append(outputs, name)
			outputLines = append(outputLines, lineNo)
		default:
			g, err := parseGate(line)
			if err != nil {
				return nil, benchErr(lineNo, "%v", err)
			}
			g.line = lineNo
			gates = append(gates, g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	for pos := range keyIdx {
		if pos >= len(inputs) {
			return nil, benchErr(0, "%s position %d out of range [0,%d)", KeyInputComment, pos, len(inputs))
		}
	}
	return buildBench(inputs, outputs, outputLines, gates, keyIdx)
}

// ParseBenchString is a convenience wrapper around ParseBench.
func ParseBenchString(s string) (*aig.AIG, error) { return ParseBench(strings.NewReader(s)) }

func parenArg(line string) (string, error) {
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	name := strings.TrimSpace(line[open+1 : close])
	if name == "" {
		return "", fmt.Errorf("empty signal name in %q", line)
	}
	return name, nil
}

func parseGate(line string) (rawGate, error) {
	eq := strings.Index(line, "=")
	if eq < 0 {
		return rawGate{}, fmt.Errorf("expected assignment, got %q", line)
	}
	name := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.Index(rhs, "(")
	close := strings.LastIndex(rhs, ")")
	if open < 0 || close < open {
		return rawGate{}, fmt.Errorf("malformed gate %q", rhs)
	}
	op := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	var args []string
	for _, a := range strings.Split(rhs[open+1:close], ",") {
		a = strings.TrimSpace(a)
		if a != "" {
			args = append(args, a)
		}
	}
	if name == "" || len(args) == 0 {
		return rawGate{}, fmt.Errorf("malformed gate line %q", line)
	}
	return rawGate{name: name, op: op, args: args}, nil
}

func buildBench(inputs, outputs []string, outputLines []int, gates []rawGate, keyIdx map[int]bool) (*aig.AIG, error) {
	g := aig.New()
	sigs := map[string]aig.Lit{}
	for i, name := range inputs {
		if _, dup := sigs[name]; dup {
			return nil, benchErr(0, "duplicate input %q", name)
		}
		if keyIdx[i] || strings.HasPrefix(name, KeyInputPrefix) {
			sigs[name] = g.AddKeyInput(name)
		} else {
			sigs[name] = g.AddInput(name)
		}
	}
	// Gates may appear in any order; resolve by fixpoint over remaining gates.
	remaining := gates
	for len(remaining) > 0 {
		progressed := false
		var next []rawGate
		for _, rg := range remaining {
			lits := make([]aig.Lit, 0, len(rg.args))
			ready := true
			for _, a := range rg.args {
				l, ok := sigs[a]
				if !ok {
					ready = false
					break
				}
				lits = append(lits, l)
			}
			if !ready {
				next = append(next, rg)
				continue
			}
			l, err := buildGate(g, rg.op, lits)
			if err != nil {
				return nil, benchErr(rg.line, "%v", err)
			}
			if _, dup := sigs[rg.name]; dup {
				return nil, benchErr(rg.line, "duplicate signal %q", rg.name)
			}
			sigs[rg.name] = l
			progressed = true
		}
		if !progressed {
			names := make([]string, 0, len(next))
			for _, rg := range next {
				names = append(names, rg.name)
			}
			sort.Strings(names)
			return nil, benchErr(0, "unresolved or cyclic signals: %s", strings.Join(names, ", "))
		}
		remaining = next
	}
	for i, name := range outputs {
		l, ok := sigs[name]
		if !ok {
			return nil, benchErr(outputLines[i], "output %q is not driven", name)
		}
		g.AddOutput(l, name)
	}
	return g, nil
}

func buildGate(g *aig.AIG, op string, args []aig.Lit) (aig.Lit, error) {
	switch op {
	case "AND":
		return g.AndN(args), nil
	case "NAND":
		return g.AndN(args).Not(), nil
	case "OR":
		return g.OrN(args), nil
	case "NOR":
		return g.OrN(args).Not(), nil
	case "XOR":
		return reduceXor(g, args), nil
	case "XNOR":
		return reduceXor(g, args).Not(), nil
	case "NOT":
		if len(args) != 1 {
			return 0, fmt.Errorf("NOT takes exactly one argument")
		}
		return args[0].Not(), nil
	case "BUFF", "BUF":
		if len(args) != 1 {
			return 0, fmt.Errorf("BUFF takes exactly one argument")
		}
		return args[0], nil
	case "DFF":
		return 0, fmt.Errorf("sequential element DFF not supported (combinational benchmarks only)")
	default:
		return 0, fmt.Errorf("unknown gate type %q", op)
	}
}

func reduceXor(g *aig.AIG, args []aig.Lit) aig.Lit {
	acc := args[0]
	for _, a := range args[1:] {
		acc = g.Xor(acc, a)
	}
	return acc
}

// WriteBench emits the AIG in .bench format. AND nodes become two-input
// AND gates; complemented edges become NOT gates (shared per driving
// node). Internal signal names are uniquified against the interface
// names, so a netlist whose inputs happen to be called "n5" or
// "const0" still round-trips. An output whose name collides with an
// input is expressible only when it is that input passed through
// unmodified; any other interface-name collision yields an error, since
// BENCH identifies signals purely by name.
func WriteBench(w io.Writer, g *aig.AIG) error {
	bw := bufio.NewWriter(w)
	// Interface names are fixed; everything the writer invents must
	// avoid them (and each other).
	taken := make(map[string]bool, g.NumInputs()+g.NumOutputs())
	for i := 0; i < g.NumInputs(); i++ {
		n := g.InputName(i)
		if taken[n] {
			return fmt.Errorf("bench: duplicate input name %q is not expressible", n)
		}
		taken[n] = true
	}
	outDriver := map[string]aig.Lit{}
	for i := 0; i < g.NumOutputs(); i++ {
		n := g.OutputName(i)
		if prev, dup := outDriver[n]; dup && prev != g.Output(i) {
			return fmt.Errorf("bench: outputs named %q have different drivers", n)
		}
		outDriver[n] = g.Output(i)
		taken[n] = true
	}
	fresh := func(base string) string {
		n := base
		for taken[n] {
			n += "_"
		}
		taken[n] = true
		return n
	}
	nodeNames := map[int]string{}
	name := func(id int) string {
		if idx := g.InputIndexOfNode(id); idx >= 0 {
			return g.InputName(idx)
		}
		if n, ok := nodeNames[id]; ok {
			return n
		}
		base := fmt.Sprintf("n%d", id)
		if g.IsConst(id) {
			base = "const0"
		}
		n := fresh(base)
		nodeNames[id] = n
		return n
	}
	for i := 0; i < g.NumInputs(); i++ {
		fmt.Fprintf(bw, "INPUT(%s)\n", g.InputName(i))
	}
	// Key inputs whose names lack the conventional prefix would lose
	// their key flag in name-only BENCH; record the positions in a
	// comment (ignored by external tools, honored by ParseBench).
	needKeyComment := false
	for _, k := range g.KeyInputIndices() {
		if !strings.HasPrefix(g.InputName(k), KeyInputPrefix) {
			needKeyComment = true
			break
		}
	}
	if needKeyComment {
		parts := make([]string, 0, g.NumKeyInputs())
		for _, k := range g.KeyInputIndices() {
			parts = append(parts, fmt.Sprintf("%d", k))
		}
		fmt.Fprintf(bw, "# %s %s\n", KeyInputComment, strings.Join(parts, " "))
	}
	for i := 0; i < g.NumOutputs(); i++ {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", g.OutputName(i))
	}
	// Gate lines are emitted in strict dependency order — every NOT
	// right after its driving node is defined, every AND after both
	// fanins. A sequential re-parse then recreates the AND nodes in
	// exactly this (topological) order, so writing and re-reading a
	// netlist preserves node numbering — which keeps everything seeded
	// off node IDs (locking target choice, experiment seeds)
	// reproducible across a round trip.
	var body []string
	invNames := map[int]string{}
	constEmitted := false
	var litName func(l aig.Lit) (string, error)
	ensureInv := func(id int) string {
		if n, ok := invNames[id]; ok {
			return n
		}
		n := fresh(name(id) + "_inv")
		invNames[id] = n
		body = append(body, fmt.Sprintf("%s = NOT(%s)", n, name(id)))
		return n
	}
	ensureConst := func() error {
		if constEmitted {
			return nil
		}
		// const0 = AND(x, NOT x) on the first input; the parser folds it
		// back to the constant literal. Benchmarks always have inputs.
		if g.NumInputs() == 0 {
			return fmt.Errorf("bench: cannot emit constant for AIG without inputs")
		}
		inv := ensureInv(g.Input(0).Node())
		body = append(body, fmt.Sprintf("%s = AND(%s, %s)", name(0), g.InputName(0), inv))
		constEmitted = true
		return nil
	}
	litName = func(l aig.Lit) (string, error) {
		if l == aig.False || l == aig.True {
			if err := ensureConst(); err != nil {
				return "", err
			}
			if l == aig.True {
				return ensureInv(0), nil
			}
			return name(0), nil
		}
		if l.Neg() {
			return ensureInv(l.Node()), nil
		}
		return name(l.Node()), nil
	}
	for _, id := range g.TopoOrder() {
		f0, f1 := g.Fanins(id)
		n0, err := litName(f0)
		if err != nil {
			return err
		}
		n1, err := litName(f1)
		if err != nil {
			return err
		}
		body = append(body, fmt.Sprintf("%s = AND(%s, %s)", name(id), n0, n1))
	}
	emitted := map[string]bool{}
	for i := 0; i < g.NumOutputs(); i++ {
		po := g.Output(i)
		oname := g.OutputName(i)
		if emitted[oname] {
			continue // same-name same-driver duplicate; one definition suffices
		}
		emitted[oname] = true
		if idx := g.InputIndexOfNode(po.Node()); idx >= 0 && g.InputName(idx) == oname && !po.Neg() {
			// The output is the like-named input passed through: the
			// OUTPUT declaration alone expresses it.
			continue
		}
		if nodeIsInput(g, oname) {
			return fmt.Errorf("bench: output %q collides with a differently-driven input of the same name", oname)
		}
		n, err := litName(po)
		if err != nil {
			return err
		}
		body = append(body, fmt.Sprintf("%s = BUFF(%s)", oname, n))
	}
	for _, l := range body {
		fmt.Fprintln(bw, l)
	}
	return bw.Flush()
}

// nodeIsInput reports whether name names an input of g.
func nodeIsInput(g *aig.AIG, name string) bool {
	for i := 0; i < g.NumInputs(); i++ {
		if g.InputName(i) == name {
			return true
		}
	}
	return false
}

// WriteBenchString renders the AIG to a .bench string.
func WriteBenchString(g *aig.AIG) (string, error) {
	var sb strings.Builder
	if err := WriteBench(&sb, g); err != nil {
		return "", err
	}
	return sb.String(), nil
}
