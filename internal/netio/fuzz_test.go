package netio_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/nyu-secml/almost/internal/netio"
)

// FuzzParseBench asserts the BENCH parser never panics: every input
// either parses into a netlist that survives a write/re-parse cycle or
// fails with a typed error. Seeds cover malformed headers, dangling
// fanins, duplicate names, cycles, and unknown gates.
func FuzzParseBench(f *testing.F) {
	seeds := []string{
		"INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n",
		"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n# comment\n",
		"INPUT(keyinput0)\nINPUT(a)\nOUTPUT(z)\nz = XOR(a, keyinput0)\n",
		"INPUT(a)\nOUTPUT(z)\nz = XNOR(a, a)\nz2 = NOR(a)\n",
		// malformed declarations and headers
		"INPUT(\nOUTPUT)\n",
		"INPUT()\n",
		"OUTPUT(z)\n",
		// dangling fanin and cyclic definitions
		"INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n",
		"INPUT(a)\nOUTPUT(z)\nz = AND(a, w)\nw = AND(a, z)\n",
		// duplicate names
		"INPUT(a)\nINPUT(a)\nOUTPUT(a)\n",
		"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nz = NOT(a)\n",
		// unsupported constructs
		"INPUT(a)\nOUTPUT(z)\nz = DFF(a)\n",
		"INPUT(a)\nOUTPUT(z)\nz = MAJ(a, a, a)\n",
		"INPUT(a)\nOUTPUT(z)\nz = NOT(a, a)\n",
		"no equals sign here",
		"= AND(a, b)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		g, err := netio.ParseBenchString(text)
		if err != nil {
			return
		}
		// A successful parse must be writable and re-parseable with the
		// same interface (when it has inputs; constants need one).
		if g.NumInputs() == 0 {
			return
		}
		out, err := netio.WriteBenchString(g)
		if err != nil {
			t.Fatalf("parsed netlist failed to write: %v", err)
		}
		h, err := netio.ParseBenchString(out)
		if err != nil {
			t.Fatalf("written netlist failed to re-parse: %v\n%s", err, out)
		}
		if h.NumInputs() != g.NumInputs() || h.NumOutputs() != g.NumOutputs() {
			t.Fatalf("interface changed: %v -> %v", g, h)
		}
	})
}

// FuzzParseAIGER asserts the AIGER parser (both variants) never panics,
// with seeds covering malformed headers, truncated binary sections,
// dangling fanins, duplicate definitions, and hostile symbol tables.
func FuzzParseAIGER(f *testing.F) {
	seeds := []string{
		"aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni0 x\ni1 y\no0 z\n",
		"aag 1 1 0 1 0\n2\n2\ni0 keyinput0\nc\nalmost-keyinputs: 0\n",
		"aag 0 0 0 1 0\n0\n",
		// malformed headers
		"",
		"aag\n",
		"aig 1 1 0 0\n",
		"aag 99999999999 1 0 0 0\n",
		"aag 2 1 1 0 0\n2\n4 2\n",
		"aag x y z w v\n",
		// dangling fanins, duplicates, cycles
		"aag 3 1 0 1 1\n2\n6\n6 2 4\n",
		"aag 2 2 0 0 0\n2\n2\n",
		"aag 3 1 0 1 2\n2\n4\n4 6 2\n6 4 2\n",
		// binary with bad deltas / truncation
		"aig 2 1 0 1 1\n4\n",
		"aig 2 1 0 1 1\n4\n\x80",
		"aig 2 1 0 1 1\n4\n\x01\x01",
		// symbol table abuse
		"aag 1 1 0 0 0\n2\ni0\n",
		"aag 1 1 0 0 0\n2\ni9 far\n",
		"aag 1 1 0 0 0\n2\nl0 latchy\n",
		"aag 1 1 0 0 0\n2\nc\nalmost-keyinputs: 99\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := netio.ParseAIGER(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Successful parses round-trip through ASCII AIGER.
		var buf bytes.Buffer
		if err := netio.WriteAAG(&buf, g); err != nil {
			t.Fatalf("parsed netlist failed to write: %v", err)
		}
		if _, err := netio.ParseAIGER(strings.NewReader(buf.String())); err != nil {
			t.Fatalf("written netlist failed to re-parse: %v\n%s", err, buf.String())
		}
	})
}
