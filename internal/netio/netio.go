// Package netio is the netlist I/O subsystem: it reads and writes the
// two standard interchange formats for combinational logic so the
// pipeline can run on arbitrary user-supplied circuits instead of only
// the built-in ISCAS-85 reproductions.
//
//   - BENCH (ISCAS-85 ".bench"): INPUT/OUTPUT declarations plus AND,
//     NAND, OR, NOR, XOR, XNOR, NOT, BUFF gates of arbitrary arity for
//     the symmetric ops. This is the distribution format of the
//     benchmarks the paper evaluates on.
//   - AIGER (".aag" ASCII and ".aig" binary): the and-inverter-graph
//     exchange format of the ABC/aiger toolchains, which internal/aig
//     mirrors node-for-node.
//
// Both readers lower gates onto the AIG through its structural-hashing
// constructors, so a parsed netlist is already strashed and every
// downstream transform applies unchanged. Both writers emit only
// documented, tool-portable constructs, so netlists round-trip through
// external tools (ABC, aigtoaig, ...) as well as through this package.
//
// # Key-input metadata
//
// Logic-locking key inputs survive every round trip. Inputs whose
// names begin with "keyinput" (the convention of public logic-locking
// benchmark releases) are imported as key inputs in every format.
// Additionally the writers record the exact key-input positions in an
// "almost-keyinputs:" annotation — a comment-section line in AIGER, a
// "#"-comment in BENCH — and the readers honor it, so key metadata
// round-trips even for netlists whose key inputs carry arbitrary
// names.
//
// # Errors
//
// Malformed input yields a *ParseError carrying the line of the defect
// (binary AIGER and-section errors locate it by gate index); the
// parsers never panic on any input (enforced by fuzz tests).
package netio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/nyu-secml/almost/internal/aig"
)

// Format identifies a netlist interchange format.
type Format int

// Supported formats.
const (
	// FormatBench is the ISCAS-85 ".bench" gate-level format.
	FormatBench Format = iota
	// FormatAAG is ASCII AIGER (".aag").
	FormatAAG
	// FormatAIG is binary AIGER (".aig").
	FormatAIG
)

// String returns the canonical file extension without the dot.
func (f Format) String() string {
	switch f {
	case FormatBench:
		return "bench"
	case FormatAAG:
		return "aag"
	case FormatAIG:
		return "aig"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ParseError describes a syntax or semantic error in a netlist. Line is
// 1-based; it is 0 for errors in the binary AIGER and-gate section,
// whose messages locate the defect by gate index instead.
type ParseError struct {
	Format Format
	Line   int
	Msg    string
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s: line %d: %s", e.Format, e.Line, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Format, e.Msg)
}

// DetectFormat sniffs the format from a file path's extension:
// ".bench" -> FormatBench, ".aag" -> FormatAAG, ".aig" -> FormatAIG.
func DetectFormat(path string) (Format, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".bench":
		return FormatBench, nil
	case ".aag":
		return FormatAAG, nil
	case ".aig":
		return FormatAIG, nil
	}
	return 0, fmt.Errorf("netio: cannot detect netlist format of %q (want .bench, .aag, or .aig)", path)
}

// Read parses a netlist in the given format.
func Read(r io.Reader, f Format) (*aig.AIG, error) {
	switch f {
	case FormatBench:
		return ParseBench(r)
	case FormatAAG, FormatAIG:
		return ParseAIGER(r)
	}
	return nil, fmt.Errorf("netio: unknown format %v", f)
}

// Write emits a netlist in the given format.
func Write(w io.Writer, g *aig.AIG, f Format) error {
	switch f {
	case FormatBench:
		return WriteBench(w, g)
	case FormatAAG:
		return WriteAAG(w, g)
	case FormatAIG:
		return WriteAIG(w, g)
	}
	return fmt.Errorf("netio: unknown format %v", f)
}

// ReadFile loads a netlist from path, sniffing the format from the
// file extension.
func ReadFile(path string) (*aig.AIG, error) {
	f, err := DetectFormat(path)
	if err != nil {
		return nil, err
	}
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	g, err := Read(fh, f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// WriteFile stores a netlist at path, sniffing the format from the
// file extension.
func WriteFile(path string, g *aig.AIG) error {
	f, err := DetectFormat(path)
	if err != nil {
		return err
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(fh, g, f); err != nil {
		fh.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return fh.Close()
}
