package netio_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/netio"
)

// smallAIG builds a 4-input, 2-output circuit with a key input, shared
// logic, a complemented output, and a constant-driven output — every
// writer edge case in one netlist.
func smallAIG() *aig.AIG {
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	k := g.AddKeyInput("keyinput0")
	c := g.AddInput("c")
	x := g.Xor(g.And(a, b), k)
	g.AddOutput(x, "x")
	g.AddOutput(g.Or(x.Not(), c), "y")
	g.AddOutput(aig.True, "one")
	return g
}

func sameInterface(t *testing.T, want, got *aig.AIG) {
	t.Helper()
	if got.NumInputs() != want.NumInputs() || got.NumOutputs() != want.NumOutputs() {
		t.Fatalf("interface changed: %v -> %v", want, got)
	}
	for i := 0; i < want.NumInputs(); i++ {
		if got.InputName(i) != want.InputName(i) {
			t.Errorf("input %d name %q, want %q", i, got.InputName(i), want.InputName(i))
		}
		if got.InputIsKey(i) != want.InputIsKey(i) {
			t.Errorf("input %d key flag %v, want %v", i, got.InputIsKey(i), want.InputIsKey(i))
		}
	}
	for i := 0; i < want.NumOutputs(); i++ {
		if got.OutputName(i) != want.OutputName(i) {
			t.Errorf("output %d name %q, want %q", i, got.OutputName(i), want.OutputName(i))
		}
	}
}

func TestDetectFormat(t *testing.T) {
	cases := []struct {
		path string
		want netio.Format
		ok   bool
	}{
		{"x.bench", netio.FormatBench, true},
		{"dir/y.AAG", netio.FormatAAG, true},
		{"z.aig", netio.FormatAIG, true},
		{"w.blif", 0, false},
		{"noext", 0, false},
	}
	for _, c := range cases {
		f, err := netio.DetectFormat(c.path)
		if c.ok && (err != nil || f != c.want) {
			t.Errorf("DetectFormat(%q) = %v, %v; want %v", c.path, f, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("DetectFormat(%q) should fail", c.path)
		}
	}
}

func TestFormatRoundTrips(t *testing.T) {
	want := smallAIG()
	rng := rand.New(rand.NewSource(7))
	for _, f := range []netio.Format{netio.FormatBench, netio.FormatAAG, netio.FormatAIG} {
		t.Run(f.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if err := netio.Write(&buf, want, f); err != nil {
				t.Fatal(err)
			}
			got, err := netio.Read(&buf, f)
			if err != nil {
				t.Fatalf("read back: %v\ntext:\n%s", err, buf.String())
			}
			sameInterface(t, want, got)
			if !aig.EquivalentBySim(want, got, rng, 16) {
				t.Fatal("function changed through round trip")
			}
		})
	}
}

func TestReadWriteFile(t *testing.T) {
	want := smallAIG()
	rng := rand.New(rand.NewSource(8))
	dir := t.TempDir()
	for _, name := range []string{"c.bench", "c.aag", "c.aig"} {
		path := filepath.Join(dir, name)
		if err := netio.WriteFile(path, want); err != nil {
			t.Fatal(err)
		}
		got, err := netio.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !aig.EquivalentBySim(want, got, rng, 8) {
			t.Fatalf("%s: function changed", name)
		}
	}
	if err := netio.WriteFile(filepath.Join(dir, "c.blif"), want); err == nil {
		t.Fatal("unknown extension should fail")
	}
}

func TestParseAAGSpecExample(t *testing.T) {
	// The and-gate example from the AIGER format description.
	const text = `aag 3 2 0 1 1
2
4
6
6 2 4
i0 x
i1 y
o0 z
`
	g, err := netio.ParseAIGER(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumInputs() != 2 || g.NumOutputs() != 1 || g.NumAnds() != 1 {
		t.Fatalf("wrong shape: %v", g)
	}
	if g.InputName(0) != "x" || g.InputName(1) != "y" || g.OutputName(0) != "z" {
		t.Fatal("symbol table ignored")
	}
	for _, c := range []struct {
		a, b, want bool
	}{{false, false, false}, {true, false, false}, {false, true, false}, {true, true, true}} {
		if got := g.EvalSingle([]bool{c.a, c.b})[0]; got != c.want {
			t.Fatalf("and(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestParseAAGOutOfOrderAnds(t *testing.T) {
	// AND definitions in non-topological order must still resolve.
	const text = `aag 4 2 0 1 2
2
4
8
8 6 2
6 2 4
`
	g, err := netio.ParseAIGER(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	// 8 = (2&4)&2 = a&b
	if got := g.EvalSingle([]bool{true, true})[0]; !got {
		t.Fatal("out-of-order resolution broke the function")
	}
}

func TestKeyMetadataArbitraryNames(t *testing.T) {
	// Key inputs whose names do NOT carry the "keyinput" prefix must
	// still round-trip as key inputs via the comment annotation — in
	// all three formats (BENCH uses a "#" comment).
	g := aig.New()
	a := g.AddInput("a")
	k := g.AddKeyInput("totally_ordinary_name")
	g.AddOutput(g.Xor(a, k), "z")
	for _, f := range []netio.Format{netio.FormatBench, netio.FormatAAG, netio.FormatAIG} {
		var buf bytes.Buffer
		if err := netio.Write(&buf, g, f); err != nil {
			t.Fatal(err)
		}
		got, err := netio.Read(&buf, f)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumKeyInputs() != 1 || !got.InputIsKey(1) {
			t.Fatalf("%v: key flag lost (key inputs: %d)", f, got.NumKeyInputs())
		}
		if got.InputName(1) != "totally_ordinary_name" {
			t.Fatalf("%v: name mangled to %q", f, got.InputName(1))
		}
	}
}

// TestParseAAGDeepChainIterative guards the iterative cone resolver: a
// long AND chain listed in reverse order must parse without recursion
// (the old recursive resolver overflowed the goroutine stack).
func TestParseAAGDeepChainIterative(t *testing.T) {
	const n = 200_000
	var sb strings.Builder
	// Two inputs (vars 1, 2); gate var i = AND(var i-1, var 1) for
	// i in [3, n+2] — structurally distinct at every level, so nothing
	// strashes away. Emit deepest-first so the resolver must walk the
	// whole chain from the root.
	fmt.Fprintf(&sb, "aag %d 2 0 1 %d\n2\n4\n%d\n", n+2, n, (n+2)*2)
	for i := n + 2; i >= 3; i-- {
		fmt.Fprintf(&sb, "%d %d 2\n", i*2, (i-1)*2)
	}
	g, err := netio.ParseAIGER(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumAnds() != n {
		t.Fatalf("chain has %d ands, want %d", g.NumAnds(), n)
	}
}

// TestParseAIGERSelfLoop pins cycle detection for the degenerate
// self-referential gate.
func TestParseAIGERSelfLoop(t *testing.T) {
	const text = "aag 2 1 0 1 1\n2\n4\n4 4 2\n"
	if _, err := netio.ParseAIGER(strings.NewReader(text)); err == nil {
		t.Fatal("self-loop must be rejected")
	}
}

// TestOversizedLineRejectedIncrementally feeds a newline-free input
// larger than the 1 MiB line cap and expects a bounded, typed failure.
func TestOversizedLineRejectedIncrementally(t *testing.T) {
	huge := strings.Repeat("9", 3<<20)
	if _, err := netio.ParseAIGER(strings.NewReader(huge)); err == nil {
		t.Fatal("oversized header line must be rejected")
	}
	if _, err := netio.ParseAIGER(strings.NewReader("aag 1 1 0 0 0\n" + huge)); err == nil {
		t.Fatal("oversized body line must be rejected")
	}
}

func TestParseAIGERErrors(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"empty", ""},
		{"bad magic", "aog 1 1 0 0 0\n2\n"},
		{"short header", "aag 1 1\n"},
		{"negative count", "aag -1 0 0 0 0\n"},
		{"huge count", "aag 99999999999 99999999999 0 0 0\n"},
		{"latches", "aag 2 1 1 0 0\n2\n4 2\n"},
		{"M too small", "aag 1 2 0 0 0\n2\n4\n"},
		{"odd input", "aag 1 1 0 0 0\n3\n"},
		{"const input", "aag 1 1 0 0 0\n0\n"},
		{"dup input", "aag 2 2 0 0 0\n2\n2\n"},
		{"missing and", "aag 2 1 0 0 1\n2\n"},
		{"and redefines input", "aag 2 1 0 0 1\n2\n2 2 2\n"},
		{"odd lhs", "aag 2 1 0 0 1\n2\n5 2 2\n"},
		{"dangling fanin", "aag 3 1 0 1 1\n2\n6\n6 2 4\n"},
		{"cycle", "aag 3 1 0 1 2\n2\n4\n4 6 2\n6 4 2\n"},
		{"out of range output", "aag 1 1 0 1 0\n2\n99\n"},
		{"bad symbol", "aag 1 1 0 0 0\n2\nq0 name\n"},
		{"symbol position", "aag 1 1 0 0 0\n2\ni5 name\n"},
		{"binary M mismatch", "aig 5 1 0 0 1\n"},
		{"binary truncated", "aig 2 1 0 0 1\n"},
		{"binary bad key comment", "aig 1 1 0 0 0\nc\nalmost-keyinputs: 7\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := netio.ParseAIGER(strings.NewReader(c.text)); err == nil {
				t.Fatalf("expected error for %q", c.text)
			}
		})
	}
}

func TestBenchErrorsAreTyped(t *testing.T) {
	_, err := netio.ParseBenchString("z = FROB(a)\nINPUT(a)\nOUTPUT(z)\n")
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *netio.ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("error %T is not a *ParseError: %v", err, err)
	}
	if pe.Line != 1 {
		t.Fatalf("line = %d, want 1", pe.Line)
	}
}

func asParseError(err error, pe **netio.ParseError) bool {
	e, ok := err.(*netio.ParseError)
	if ok {
		*pe = e
	}
	return ok
}
