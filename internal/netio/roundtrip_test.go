package netio_test

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/cnf"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/netio"
)

// exactSet lists circuits small enough for exact SAT equivalence
// checking of the round-tripped netlist on every run.
var exactSet = map[string]bool{"c432": true, "c499": true, "c880": true}

// through pushes g through one format and back.
func through(t *testing.T, g *aig.AIG, f netio.Format) *aig.AIG {
	t.Helper()
	var buf bytes.Buffer
	if err := netio.Write(&buf, g, f); err != nil {
		t.Fatalf("write %v: %v", f, err)
	}
	h, err := netio.Read(&buf, f)
	if err != nil {
		t.Fatalf("read %v: %v", f, err)
	}
	return h
}

// TestBuiltinsRoundTrip drives every built-in ISCAS-85 circuit, locked
// and unlocked, through BENCH -> AIG -> AIGER(ascii) -> AIG ->
// AIGER(binary) -> AIG -> BENCH and verifies interface preservation and
// functional equivalence (random simulation always; exact CNF
// equivalence on the small circuits).
func TestBuiltinsRoundTrip(t *testing.T) {
	names := circuits.Names()
	if testing.Short() {
		names = []string{"c432", "c499", "c1908", "c6288"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			orig := circuits.MustGenerate(name)
			locked, _ := lock.Lock(orig, 32, rand.New(rand.NewSource(11)))
			for label, g := range map[string]*aig.AIG{"unlocked": orig, "locked": locked} {
				chain := through(t, g, netio.FormatBench)
				chain = through(t, chain, netio.FormatAAG)
				chain = through(t, chain, netio.FormatAIG)
				chain = through(t, chain, netio.FormatBench)
				sameInterface(t, g, chain)
				if g.NumKeyInputs() != chain.NumKeyInputs() {
					t.Fatalf("%s: key inputs %d -> %d", label, g.NumKeyInputs(), chain.NumKeyInputs())
				}
				if !aig.EquivalentBySim(g, chain, rand.New(rand.NewSource(3)), 16) {
					t.Fatalf("%s: function changed through round trip", label)
				}
				if exactSet[name] && !testing.Short() {
					if eq, cex, _ := cnf.Equivalent(g, chain); !eq {
						t.Fatalf("%s: SAT found a counterexample: %v", label, cex)
					}
				}
			}
		})
	}
}

// TestLockedKeyPositionsSurvive checks that the exact key-input
// positions and names of a locked netlist survive both AIGER variants.
func TestLockedKeyPositionsSurvive(t *testing.T) {
	g := circuits.MustGenerate("c432")
	locked, key := lock.Lock(g, 16, rand.New(rand.NewSource(5)))
	for _, f := range []netio.Format{netio.FormatAAG, netio.FormatAIG, netio.FormatBench} {
		got := through(t, locked, f)
		wantIdx := locked.KeyInputIndices()
		gotIdx := got.KeyInputIndices()
		if len(wantIdx) != len(gotIdx) {
			t.Fatalf("%v: key count %d -> %d", f, len(wantIdx), len(gotIdx))
		}
		for i := range wantIdx {
			if wantIdx[i] != gotIdx[i] {
				t.Fatalf("%v: key position %d moved to %d", f, wantIdx[i], gotIdx[i])
			}
		}
		// The right key must still unlock the round-tripped netlist.
		un, err := lock.ApplyKey(got, key)
		if err != nil {
			t.Fatal(err)
		}
		if !aig.EquivalentBySim(g, un, rand.New(rand.NewSource(6)), 8) {
			t.Fatalf("%v: round-tripped netlist no longer unlocks", f)
		}
	}
}

func BenchmarkParseBenchC7552(b *testing.B) {
	text, err := netio.WriteBenchString(circuits.MustGenerate("c7552"))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netio.ParseBenchString(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseAIGBinaryC7552(b *testing.B) {
	var buf bytes.Buffer
	if err := netio.WriteAIG(&buf, circuits.MustGenerate("c7552")); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netio.ParseAIGER(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
