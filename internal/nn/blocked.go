package nn

import (
	"sync"
	"sync/atomic"
)

// parallelism is the package-wide worker budget for the tiled kernels,
// settable at runtime (SetParallelism). It defaults to 1: serial blocked
// kernels. The budget is advisory — kernels below parallelGrain flops
// always run serially, since goroutine handoff costs more than the panel.
var parallelism atomic.Int32

func init() { parallelism.Store(1) }

// SetParallelism sets the worker budget for the tiled matmul kernels.
// Values below 1 are clamped to 1 (serial). The setting only changes how
// output rows are partitioned across goroutines; every output element is
// produced by exactly one worker with the exact serial accumulation
// order, so results are bit-for-bit identical for any budget.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the current worker budget for the tiled kernels.
func Parallelism() int { return int(parallelism.Load()) }

// Blocking parameters of the tiled kernels. colPanel bounds the slice of
// B columns streamed per pass so the panel stays cache-resident across a
// row panel of A; rowPanel bounds the A rows sharing that B panel.
// parallelGrain is the flop count (R·K·C) below which goroutine dispatch
// is never attempted.
const (
	rowPanel      = 8
	colPanel      = 256
	parallelGrain = 1 << 18
)

// matMulPanel computes rows [i0,i1) of dst = A·B with row/column panel
// tiling. Each output element (i,j) accumulates over k ascending with the
// zero-skip, exactly as the naive triple loop: column tiling only changes
// which j values share one pass over k, never the per-element term order,
// so results are bit-for-bit identical to the unblocked kernel.
//
//almost:hotpath
func matMulPanel(dst, a, b *Matrix, i0, i1 int) {
	for i := i0; i < i1; i++ {
		or := dst.Row(i)
		for j := range or {
			or[j] = 0
		}
	}
	for jp := 0; jp < b.C; jp += colPanel {
		jq := jp + colPanel
		if jq > b.C {
			jq = b.C
		}
		for ip := i0; ip < i1; ip += rowPanel {
			iq := ip + rowPanel
			if iq > i1 {
				iq = i1
			}
			for i := ip; i < iq; i++ {
				ar := a.Row(i)
				or := dst.Row(i)[jp:jq]
				for k, av := range ar {
					if av == 0 {
						continue
					}
					br := b.Row(k)[jp:jq]
					for j, bv := range br {
						or[j] += av * bv
					}
				}
			}
		}
	}
}

// matMulTiled fans rows of dst = A·B out to workers goroutines. Ownership
// is deterministic: worker t owns the contiguous row range
// [t·q+min(t,r), ...) from the usual balanced split, and no row is touched
// by two workers, so the result is identical to the serial kernel
// regardless of scheduling. Call only with workers >= 2.
func matMulTiled(dst, a, b *Matrix, workers int) {
	if workers > a.R {
		workers = a.R
	}
	q, r := a.R/workers, a.R%workers
	var wg sync.WaitGroup
	i0 := 0
	for t := 0; t < workers; t++ {
		i1 := i0 + q
		if t < r {
			i1++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulPanel(dst, a, b, lo, hi)
		}(i0, i1)
		i0 = i1
	}
	wg.Wait()
}

// matMulWorkers returns the goroutine count MatMulInto should use for an
// a·b product: 1 unless the budget allows more and the product is large
// enough to amortize the handoff.
func matMulWorkers(a, b *Matrix) int {
	w := Parallelism()
	if w <= 1 || a.R < 2 {
		return 1
	}
	if a.R*a.C*b.C < parallelGrain {
		return 1
	}
	return w
}

// MatMulATBInto computes Aᵀ·B into dst (which must be C(a)×C(b) and must
// not alias a or b), returning dst with the exact accumulation order of
// MatMulATB; dst is fully overwritten.
//
//almost:hotpath
func MatMulATBInto(dst, a, b *Matrix) *Matrix {
	if a.R != b.R {
		panic("nn: matmulATB shape mismatch")
	}
	if dst.R != a.C || dst.C != b.C {
		panic("nn: matmulATB dst shape mismatch")
	}
	dst.Zero()
	for i := 0; i < a.R; i++ {
		ar := a.Row(i)
		br := b.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			or := dst.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return dst
}

// MatMulABTInto computes A·Bᵀ into dst (which must be R(a)×R(b) and must
// not alias a or b), returning dst with the exact accumulation order of
// MatMulABT; dst is fully overwritten.
//
//almost:hotpath
func MatMulABTInto(dst, a, b *Matrix) *Matrix {
	if a.C != b.C {
		panic("nn: matmulABT shape mismatch")
	}
	if dst.R != a.R || dst.C != b.R {
		panic("nn: matmulABT dst shape mismatch")
	}
	for i := 0; i < a.R; i++ {
		ar := a.Row(i)
		or := dst.Row(i)
		for j := 0; j < b.R; j++ {
			br := b.Row(j)
			var s float64
			for k := range ar {
				s += ar[k] * br[k]
			}
			or[j] = s
		}
	}
	return dst
}
