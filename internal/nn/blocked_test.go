package nn

import (
	"math/rand"
	"testing"
)

// matMulNaive is the reference triple loop the blocked kernels must match
// bit for bit: per output element, k ascending with the zero-skip.
func matMulNaive(a, b *Matrix) *Matrix {
	out := NewMatrix(a.R, b.C)
	for i := 0; i < a.R; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return out
}

// randMatrix fills an r×c matrix with normal values and a sprinkling of
// exact zeros so the zero-skip path is exercised.
func randMatrix(r, c int, rng *rand.Rand) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.D {
		if rng.Intn(5) == 0 {
			continue
		}
		m.D[i] = rng.NormFloat64()
	}
	return m
}

// TestMatMulBlockedBitIdentity checks the panel-tiled kernel against the
// naive loop across shapes that straddle every panel boundary. Identity
// must be exact (==), not approximate: the determinism invariant rides on
// it.
func TestMatMulBlockedBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 2}, {rowPanel, 9, colPanel}, {rowPanel + 1, 4, colPanel + 1},
		{2*rowPanel + 3, 17, 2*colPanel + 5}, {31, 64, 129}, {64, 11, 3},
	}
	for _, sh := range shapes {
		a := randMatrix(sh[0], sh[1], rng)
		b := randMatrix(sh[1], sh[2], rng)
		want := matMulNaive(a, b)
		got := MatMul(a, b)
		for i := range want.D {
			if got.D[i] != want.D[i] {
				t.Fatalf("shape %v: blocked[%d] = %v, want %v", sh, i, got.D[i], want.D[i])
			}
		}
	}
}

// TestMatMulParallelBitIdentity checks that goroutine tiling with any
// worker budget reproduces the serial result exactly. The product is
// sized above parallelGrain so the dispatch actually engages.
func TestMatMulParallelBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r, k, c := 96, 64, 64 // 96*64*64 = 393216 > parallelGrain
	if r*k*c <= parallelGrain {
		t.Fatalf("test shape no longer exceeds parallelGrain=%d", parallelGrain)
	}
	a := randMatrix(r, k, rng)
	b := randMatrix(k, c, rng)
	want := matMulNaive(a, b)
	dst := NewMatrix(r, c)
	defer SetParallelism(1)
	for _, workers := range []int{1, 2, 3, 7, 16, 200} {
		SetParallelism(workers)
		if got := Parallelism(); got != max(workers, 1) {
			t.Fatalf("Parallelism() = %d after SetParallelism(%d)", got, workers)
		}
		MatMulInto(dst, a, b)
		for i := range want.D {
			if dst.D[i] != want.D[i] {
				t.Fatalf("workers=%d: [%d] = %v, want %v", workers, i, dst.D[i], want.D[i])
			}
		}
	}
	SetParallelism(0)
	if Parallelism() != 1 {
		t.Fatalf("SetParallelism(0) should clamp to 1, got %d", Parallelism())
	}
}

// TestMatMulIntoVariantsBitIdentity checks the new Into variants against
// their allocating originals (which now delegate — so compare against an
// explicit-transpose MatMul as the independent reference).
func TestMatMulIntoVariantsBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMatrix(9, 6, rng)
	b := randMatrix(9, 7, rng)
	at := NewMatrix(6, 9)
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	// Aᵀ·B: the Into variant keeps MatMulATB's historical accumulation
	// order (outer i over rows of A), which differs from MatMul(at, b)
	// only in float association — compare approximately against the
	// transpose and exactly against the delegating wrapper.
	wantATB := MatMulATB(a, b)
	gotATB := MatMulATBInto(NewMatrix(6, 7), a, b)
	for i := range wantATB.D {
		if gotATB.D[i] != wantATB.D[i] {
			t.Fatalf("ATBInto[%d] = %v, want %v", i, gotATB.D[i], wantATB.D[i])
		}
	}
	ref := MatMul(at, b)
	for i := range ref.D {
		if !almostEq(gotATB.D[i], ref.D[i], 1e-9) {
			t.Fatalf("ATBInto[%d] = %v, transpose ref %v", i, gotATB.D[i], ref.D[i])
		}
	}
	// A·Bᵀ.
	c := randMatrix(5, 6, rng)
	wantABT := MatMulABT(a, c)
	gotABT := MatMulABTInto(NewMatrix(9, 5), a, c)
	for i := range wantABT.D {
		if gotABT.D[i] != wantABT.D[i] {
			t.Fatalf("ABTInto[%d] = %v, want %v", i, gotABT.D[i], wantABT.D[i])
		}
	}
	// Into variants fully overwrite stale dst contents.
	dirty := NewMatrix(6, 7)
	for i := range dirty.D {
		dirty.D[i] = 1e9
	}
	MatMulATBInto(dirty, a, b)
	for i := range dirty.D {
		if dirty.D[i] != wantATB.D[i] {
			t.Fatalf("ATBInto left stale dst at %d", i)
		}
	}
}
