// Package nn provides the dense linear algebra, layers, losses, and the
// Adam optimizer underlying the graph neural network attack models. It
// is a deliberately small, dependency-free float64 stack: the paper's
// models are tiny (a few thousand parameters), so clarity and exact
// reproducibility beat throughput.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	R, C int
	D    []float64
}

// NewMatrix allocates an R×C zero matrix.
func NewMatrix(r, c int) *Matrix {
	return &Matrix{R: r, C: c, D: make([]float64, r*c)}
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.D[i*m.C+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.D[i*m.C+j] = v }

// Row returns a slice aliasing row i.
func (m *Matrix) Row(i int) []float64 { return m.D[i*m.C : (i+1)*m.C] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.R, m.C)
	copy(out.D, m.D)
	return out
}

// Zero resets all elements.
func (m *Matrix) Zero() {
	for i := range m.D {
		m.D[i] = 0
	}
}

// MatMul returns A·B.
func MatMul(a, b *Matrix) *Matrix {
	return MatMulInto(NewMatrix(a.R, b.C), a, b)
}

// MatMulInto computes A·B into dst (which must be R(a)×C(b) and must not
// alias a or b), returning dst. The blocked (and, above parallelGrain
// with a SetParallelism budget, goroutine-tiled) kernels behind it
// preserve the exact accumulation order of the naive triple loop —
// including the zero-skip — so results are bit-for-bit identical for any
// tiling or worker count; dst is fully overwritten.
//
//almost:hotpath
func MatMulInto(dst, a, b *Matrix) *Matrix {
	if a.C != b.R {
		panic(fmt.Sprintf("nn: matmul shape mismatch %dx%d · %dx%d", a.R, a.C, b.R, b.C))
	}
	if dst.R != a.R || dst.C != b.C {
		panic(fmt.Sprintf("nn: matmul dst shape %dx%d, want %dx%d", dst.R, dst.C, a.R, b.C))
	}
	if w := matMulWorkers(a, b); w > 1 {
		matMulTiled(dst, a, b, w)
		return dst
	}
	matMulPanel(dst, a, b, 0, a.R)
	return dst
}

// MatMulATB returns Aᵀ·B.
func MatMulATB(a, b *Matrix) *Matrix {
	return MatMulATBInto(NewMatrix(a.C, b.C), a, b)
}

// MatMulABT returns A·Bᵀ.
func MatMulABT(a, b *Matrix) *Matrix {
	return MatMulABTInto(NewMatrix(a.R, b.R), a, b)
}

// Param is a trainable tensor with its gradient accumulator.
type Param struct {
	W, G *Matrix
}

// NewParam allocates a parameter and its gradient.
func NewParam(r, c int) *Param {
	return &Param{W: NewMatrix(r, c), G: NewMatrix(r, c)}
}

// HeInit fills the parameter with He-normal values (the initialization
// Algorithm 1 specifies).
func (p *Param) HeInit(rng *rand.Rand) {
	std := math.Sqrt(2.0 / float64(p.W.R))
	for i := range p.W.D {
		p.W.D[i] = rng.NormFloat64() * std
	}
}

// Linear is a fully connected layer Y = X·W + b.
type Linear struct {
	W *Param // in×out
	B *Param // 1×out
}

// NewLinear builds a He-initialized linear layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{W: NewParam(in, out), B: NewParam(1, out)}
	l.W.HeInit(rng)
	return l
}

// Forward computes X·W + b.
func (l *Linear) Forward(x *Matrix) *Matrix {
	return l.ForwardInto(NewMatrix(x.R, l.W.W.C), x)
}

// ForwardInto computes X·W + b into dst (which must be R(x)×out and must
// not alias x), returning dst. Bit-for-bit identical to Forward.
//
//almost:hotpath
func (l *Linear) ForwardInto(dst, x *Matrix) *Matrix {
	y := MatMulInto(dst, x, l.W.W)
	for i := 0; i < y.R; i++ {
		yr := y.Row(i)
		for j := range yr {
			yr[j] += l.B.W.D[j]
		}
	}
	return y
}

// OutDim returns the layer's output width.
func (l *Linear) OutDim() int { return l.W.W.C }

// Backward accumulates parameter gradients for input x and upstream
// gradient dy, returning the gradient w.r.t. x.
func (l *Linear) Backward(x, dy *Matrix) *Matrix {
	dw := MatMulATB(x, dy)
	for i := range dw.D {
		l.W.G.D[i] += dw.D[i]
	}
	for i := 0; i < dy.R; i++ {
		dr := dy.Row(i)
		for j := range dr {
			l.B.G.D[j] += dr[j]
		}
	}
	return MatMulABT(dy, l.W.W)
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ReLU applies max(0,x) elementwise, returning the output (used as the
// mask in ReLUBackward).
func ReLU(x *Matrix) *Matrix {
	y := x.Clone()
	for i, v := range y.D {
		if v < 0 {
			y.D[i] = 0
		}
	}
	return y
}

// ReLUInPlace clamps x to max(0,x) elementwise without allocating. Only
// for inference paths: the training path needs the pre-activation kept
// separate from the mask, so it stays on ReLU.
//
//almost:hotpath
func ReLUInPlace(x *Matrix) *Matrix {
	for i, v := range x.D {
		if v < 0 {
			x.D[i] = 0
		}
	}
	return x
}

// ReLUBackward masks dy by the activation pattern of y (the ReLU output).
func ReLUBackward(y, dy *Matrix) *Matrix {
	dx := dy.Clone()
	for i := range dx.D {
		if y.D[i] <= 0 {
			dx.D[i] = 0
		}
	}
	return dx
}

// SoftmaxCE computes softmax cross-entropy for a batch of logits
// (rows = samples) against integer labels. It returns the mean loss, the
// probability matrix, and the logits gradient (already divided by batch).
func SoftmaxCE(logits *Matrix, labels []int) (float64, *Matrix, *Matrix) {
	if logits.R != len(labels) {
		panic("nn: label count mismatch")
	}
	probs := NewMatrix(logits.R, logits.C)
	grad := NewMatrix(logits.R, logits.C)
	var loss float64
	for i := 0; i < logits.R; i++ {
		lr := logits.Row(i)
		maxv := lr[0]
		for _, v := range lr[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		pr := probs.Row(i)
		for j, v := range lr {
			e := math.Exp(v - maxv)
			pr[j] = e
			sum += e
		}
		for j := range pr {
			pr[j] /= sum
		}
		y := labels[i]
		loss += -math.Log(math.Max(pr[y], 1e-12))
		gr := grad.Row(i)
		copy(gr, pr)
		gr[y] -= 1
		for j := range gr {
			gr[j] /= float64(logits.R)
		}
	}
	return loss / float64(logits.R), probs, grad
}

// Adam is the Adam optimizer over a fixed parameter set.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  []*Matrix
	params                []*Param
}

// NewAdam builds an optimizer with standard defaults for the parameters.
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	for _, p := range params {
		a.m = append(a.m, NewMatrix(p.W.R, p.W.C))
		a.v = append(a.v, NewMatrix(p.W.R, p.W.C))
	}
	return a
}

// Step applies one update from the accumulated gradients, then clears
// them.
func (a *Adam) Step() {
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for pi, p := range a.params {
		m, v := a.m[pi], a.v[pi]
		for i, g := range p.G.D {
			m.D[i] = a.Beta1*m.D[i] + (1-a.Beta1)*g
			v.D[i] = a.Beta2*v.D[i] + (1-a.Beta2)*g*g
			mh := m.D[i] / b1c
			vh := v.D[i] / b2c
			p.W.D[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.G.Zero()
	}
}

// ZeroGrads clears all gradients without updating.
func (a *Adam) ZeroGrads() {
	for _, p := range a.params {
		p.G.Zero()
	}
}

// Argmax returns the index of the row's maximum (first maximum wins).
func Argmax(row []float64) int {
	best := 0
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return best
}
