package nn

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatMul(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.D, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrix(3, 2)
	copy(b.D, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.D[i] != w {
			t.Fatalf("matmul[%d] = %v, want %v", i, c.D[i], w)
		}
	}
}

func TestMatMulTransposeVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 3)
	b := NewMatrix(4, 5)
	for i := range a.D {
		a.D[i] = rng.NormFloat64()
	}
	for i := range b.D {
		b.D[i] = rng.NormFloat64()
	}
	// AᵀB via explicit transpose.
	at := NewMatrix(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	got := MatMulATB(a, b)
	for i := range want.D {
		if !almostEq(got.D[i], want.D[i], 1e-12) {
			t.Fatalf("ATB[%d] = %v, want %v", i, got.D[i], want.D[i])
		}
	}
	// ABᵀ.
	c := NewMatrix(5, 3)
	for i := range c.D {
		c.D[i] = rng.NormFloat64()
	}
	ct := NewMatrix(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			ct.Set(j, i, c.At(i, j))
		}
	}
	want2 := MatMul(a, ct)
	got2 := MatMulABT(a, c)
	for i := range want2.D {
		if !almostEq(got2.D[i], want2.D[i], 1e-12) {
			t.Fatalf("ABT[%d] = %v, want %v", i, got2.D[i], want2.D[i])
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestReLU(t *testing.T) {
	x := NewMatrix(1, 4)
	copy(x.D, []float64{-1, 0, 2, -3})
	y := ReLU(x)
	want := []float64{0, 0, 2, 0}
	for i, w := range want {
		if y.D[i] != w {
			t.Fatalf("relu[%d] = %v", i, y.D[i])
		}
	}
	dy := NewMatrix(1, 4)
	copy(dy.D, []float64{1, 1, 1, 1})
	dx := ReLUBackward(y, dy)
	wantDx := []float64{0, 0, 1, 0}
	for i, w := range wantDx {
		if dx.D[i] != w {
			t.Fatalf("relu'[%d] = %v", i, dx.D[i])
		}
	}
}

func TestSoftmaxCEKnownValues(t *testing.T) {
	logits := NewMatrix(1, 2)
	copy(logits.D, []float64{0, 0})
	loss, probs, grad := SoftmaxCE(logits, []int{1})
	if !almostEq(loss, math.Log(2), 1e-12) {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	if !almostEq(probs.At(0, 0), 0.5, 1e-12) {
		t.Fatalf("probs = %v", probs.D)
	}
	if !almostEq(grad.At(0, 0), 0.5, 1e-12) || !almostEq(grad.At(0, 1), -0.5, 1e-12) {
		t.Fatalf("grad = %v", grad.D)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := NewMatrix(1, 2)
	copy(logits.D, []float64{1000, 999})
	loss, probs, _ := SoftmaxCE(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss %v", loss)
	}
	if probs.At(0, 0) < probs.At(0, 1) {
		t.Fatalf("probabilities inverted")
	}
}

// Numerical gradient check for Linear through softmax-CE.
func TestLinearGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lin := NewLinear(3, 2, rng)
	x := NewMatrix(4, 3)
	for i := range x.D {
		x.D[i] = rng.NormFloat64()
	}
	labels := []int{0, 1, 1, 0}

	lossAt := func() float64 {
		y := lin.Forward(x)
		l, _, _ := SoftmaxCE(y, labels)
		return l
	}
	// Analytic gradients.
	y := lin.Forward(x)
	_, _, dy := SoftmaxCE(y, labels)
	lin.W.G.Zero()
	lin.B.G.Zero()
	lin.Backward(x, dy)

	const h = 1e-6
	for i := 0; i < len(lin.W.W.D); i++ {
		orig := lin.W.W.D[i]
		lin.W.W.D[i] = orig + h
		lp := lossAt()
		lin.W.W.D[i] = orig - h
		lm := lossAt()
		lin.W.W.D[i] = orig
		num := (lp - lm) / (2 * h)
		if !almostEq(num, lin.W.G.D[i], 1e-5) {
			t.Fatalf("dW[%d]: numeric %v analytic %v", i, num, lin.W.G.D[i])
		}
	}
	for i := 0; i < len(lin.B.W.D); i++ {
		orig := lin.B.W.D[i]
		lin.B.W.D[i] = orig + h
		lp := lossAt()
		lin.B.W.D[i] = orig - h
		lm := lossAt()
		lin.B.W.D[i] = orig
		num := (lp - lm) / (2 * h)
		if !almostEq(num, lin.B.G.D[i], 1e-5) {
			t.Fatalf("dB[%d]: numeric %v analytic %v", i, num, lin.B.G.D[i])
		}
	}
}

func TestLinearInputGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lin := NewLinear(3, 2, rng)
	x := NewMatrix(2, 3)
	for i := range x.D {
		x.D[i] = rng.NormFloat64()
	}
	labels := []int{1, 0}
	y := lin.Forward(x)
	_, _, dy := SoftmaxCE(y, labels)
	dx := lin.Backward(x, dy)
	const h = 1e-6
	for i := range x.D {
		orig := x.D[i]
		x.D[i] = orig + h
		y1 := lin.Forward(x)
		lp, _, _ := SoftmaxCE(y1, labels)
		x.D[i] = orig - h
		y2 := lin.Forward(x)
		lm, _, _ := SoftmaxCE(y2, labels)
		x.D[i] = orig
		num := (lp - lm) / (2 * h)
		if !almostEq(num, dx.D[i], 1e-5) {
			t.Fatalf("dX[%d]: numeric %v analytic %v", i, num, dx.D[i])
		}
	}
}

func TestAdamConvergesOnToyProblem(t *testing.T) {
	// Learn XOR of two inputs with a small MLP — verifies the whole stack.
	rng := rand.New(rand.NewSource(5))
	l1 := NewLinear(2, 8, rng)
	l2 := NewLinear(8, 2, rng)
	params := append(l1.Params(), l2.Params()...)
	opt := NewAdam(params, 0.05)

	x := NewMatrix(4, 2)
	copy(x.D, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	labels := []int{0, 1, 1, 0}

	var loss float64
	for epoch := 0; epoch < 300; epoch++ {
		h := ReLU(l1.Forward(x))
		y := l2.Forward(h)
		var dy *Matrix
		loss, _, dy = SoftmaxCE(y, labels)
		dh := l2.Backward(h, dy)
		dh = ReLUBackward(h, dh)
		l1.Backward(x, dh)
		opt.Step()
	}
	if loss > 0.05 {
		t.Fatalf("XOR did not converge: loss %v", loss)
	}
	h := ReLU(l1.Forward(x))
	y := l2.Forward(h)
	for i, want := range labels {
		if Argmax(y.Row(i)) != want {
			t.Fatalf("sample %d misclassified", i)
		}
	}
}

func TestHeInitStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewParam(1000, 10)
	p.HeInit(rng)
	var sum, sumsq float64
	for _, v := range p.W.D {
		sum += v
		sumsq += v * v
	}
	n := float64(len(p.W.D))
	mean := sum / n
	variance := sumsq/n - mean*mean
	wantVar := 2.0 / 1000
	if math.Abs(mean) > 0.005 {
		t.Errorf("mean = %v", mean)
	}
	if variance < wantVar*0.8 || variance > wantVar*1.2 {
		t.Errorf("variance = %v, want ~%v", variance, wantVar)
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{1, 3, 2}) != 1 {
		t.Fatal("argmax wrong")
	}
	if Argmax([]float64{5}) != 0 {
		t.Fatal("singleton wrong")
	}
	if Argmax([]float64{2, 2}) != 0 {
		t.Fatal("tie should pick first")
	}
}

func TestAdamZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewLinear(2, 2, rng)
	opt := NewAdam(l.Params(), 0.1)
	l.W.G.D[0] = 42
	opt.ZeroGrads()
	if l.W.G.D[0] != 0 {
		t.Fatal("gradients not cleared")
	}
}
