// Package sat implements a small conflict-driven clause-learning (CDCL)
// SAT solver in the MiniSat style: two-watched-literal propagation,
// first-UIP clause learning, VSIDS-like activity-based branching, phase
// saving, and Luby restarts.
//
// ALMOST uses it as the exact reasoning engine behind three substrates:
// combinational equivalence checking (verifying that synthesis transforms
// and locking preserve function), resubstitution verification inside the
// synthesis engine, and the redundancy attack's stuck-at-fault
// testability queries.
package sat

// Lit is a solver literal: variable index shifted left by one, low bit set
// for negation. Variables are numbered from 0.
type Lit int32

// MkLit builds a literal for variable v, negated if neg.
func MkLit(v int, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func (b lbool) not() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	deleted bool
}

type watcher struct {
	cref    int
	blocker Lit
}

// Status is the result of Solve. Unknown is returned only on resource
// exhaustion (conflict/propagation budgets) or an external Stop request —
// never as a satisfiability verdict — so callers can always distinguish
// "proved UNSAT" from "gave up".
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

// Solver is a CDCL SAT solver. The zero value is ready to use.
type Solver struct {
	clauses []clause
	watches [][]watcher // indexed by Lit

	assign   []lbool // by variable
	level    []int32
	reason   []int32 // clause ref or -1
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	order    heap // max-activity variable heap
	phase    []bool

	claInc float64

	ok bool

	// MaxConflicts bounds the conflicts of one Solve call; <= 0 means
	// unlimited. When the budget is exhausted Solve returns Unknown.
	MaxConflicts int64
	// MaxPropagations bounds the propagated literals of one Solve call;
	// <= 0 means unlimited. Exhaustion returns Unknown. Propagation count
	// is a deterministic, platform-independent proxy for solver work, so
	// it doubles as a reproducible deadline.
	MaxPropagations int64
	// Stop, when non-nil, is polled roughly every PollEvery conflicts or
	// decisions; returning true makes Solve return Unknown at the next
	// poll. It is the cancellation hook: point it at a context
	// (func() bool { return ctx.Err() != nil }) to make long solves
	// interruptible.
	Stop func() bool
	// PollEvery is the conflict/decision interval between Stop polls;
	// <= 0 selects DefaultPollEvery.
	PollEvery int64

	conflicts    int64
	propagations int64
	sincePoll    int64

	seen   []bool
	minStk []Lit
}

// DefaultPollEvery is the Stop-poll cadence used when PollEvery is unset:
// frequent enough that cancellation latency stays in the microseconds on
// real workloads, rare enough to keep the hook off the hot path.
const DefaultPollEvery = 256

// New returns a solver with n variables pre-allocated.
func New(n int) *Solver {
	s := &Solver{ok: true, varInc: 1, claInc: 1}
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	return s
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// NewVar adds a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v, &s.activity)
	return v
}

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if l.Neg() {
		return v.not()
	}
	return v
}

// AddClause adds a clause; returns false if the formula became trivially
// unsatisfiable. Literals must reference existing variables.
//
// AddClause may be called between Solve calls (incremental solving): it
// first backtracks to decision level 0, so literal values observed during
// simplification are root-level facts, never leftovers of the previous
// call's model. Without that, a clause satisfied only by the last model
// would be silently dropped.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	s.backtrack(0)
	// Simplify: drop false/duplicate literals, detect tautology. All
	// values below are level-0 facts thanks to the backtrack above.
	out := lits[:0:0]
	for _, l := range lits {
		if int(l.Var()) >= s.NumVars() {
			panic("sat: literal references unknown variable")
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(out[0], -1) {
			s.ok = false
			return false
		}
		if s.propagate() >= 0 {
			s.ok = false
			return false
		}
		return true
	}
	cref := len(s.clauses)
	s.clauses = append(s.clauses, clause{lits: out})
	s.watchClause(cref)
	return true
}

func (s *Solver) watchClause(cref int) {
	c := &s.clauses[cref]
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{cref, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{cref, c.lits[0]})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) enqueue(l Lit, from int32) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate runs unit propagation; returns the conflicting clause ref or -1.
func (s *Solver) propagate() int {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propagations++
		ws := s.watches[p]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := &s.clauses[w.cref]
			if c.deleted {
				continue
			}
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, watcher{w.cref, c.lits[0]})
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{w.cref, c.lits[0]})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflict.
			kept = append(kept, watcher{w.cref, c.lits[0]})
			if !s.enqueue(c.lits[0], int32(w.cref)) {
				// Conflict: keep remaining watchers and report.
				kept = append(kept, ws[wi+1:]...)
				s.watches[p] = kept
				s.qhead = len(s.trail)
				return w.cref
			}
		}
		s.watches[p] = kept
	}
	return -1
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v, &s.activity)
}

func (s *Solver) bumpClause(cref int) {
	c := &s.clauses[cref]
	if !c.learnt {
		return
	}
	c.act += s.claInc
	if c.act > 1e20 {
		for i := range s.clauses {
			s.clauses[i].act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl int) ([]Lit, int) {
	learnt := []Lit{0} // placeholder for asserting literal
	counter := 0
	p := Lit(-1)
	idx := len(s.trail) - 1
	for {
		c := &s.clauses[confl]
		s.bumpClause(confl)
		start := 0
		if p != Lit(-1) {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if int(s.level[v]) == s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Select next literal to expand.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = int(s.reason[p.Var()])
	}
	learnt[0] = p.Not()
	// Clause minimization: drop literals implied by the rest. Keep the
	// original literal set so every seen mark is cleared afterwards.
	marked := append([]Lit(nil), learnt[1:]...)
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if !s.redundant(l) {
			out = append(out, l)
		}
	}
	learnt = out
	// Compute backtrack level.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	s.seen[learnt[0].Var()] = false
	for _, l := range marked {
		s.seen[l.Var()] = false
	}
	return learnt, btLevel
}

// redundant checks whether literal l in a learnt clause is implied by the
// other marked literals (local minimization: reason literals all seen).
func (s *Solver) redundant(l Lit) bool {
	r := s.reason[l.Var()]
	if r < 0 {
		return false
	}
	for _, q := range s.clauses[r].lits[1:] {
		v := q.Var()
		if !s.seen[v] && s.level[v] > 0 {
			return false
		}
	}
	return true
}

func (s *Solver) backtrack(level int) {
	if s.decisionLevel() <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = -1
		if !s.order.contains(v) {
			s.order.push(v, &s.activity)
		}
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranch() Lit {
	for {
		v, ok := s.order.pop(&s.activity)
		if !ok {
			return Lit(-1)
		}
		if s.assign[v] == lUndef {
			return MkLit(v, !s.phase[v])
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based):
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int64) int64 {
	x := i - 1
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << seq
}

// reduceDB removes the least active half of learnt clauses.
func (s *Solver) reduceDB() {
	var learnts []int
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.learnt && !c.deleted && len(c.lits) > 2 {
			learnts = append(learnts, i)
		}
	}
	if len(learnts) < 100 {
		return
	}
	// Partial selection: delete clauses with below-median activity unless
	// they are a reason for a current assignment.
	var median float64
	{
		acts := make([]float64, len(learnts))
		for i, cr := range learnts {
			acts[i] = s.clauses[cr].act
		}
		median = quickMedian(acts)
	}
	locked := map[int]bool{}
	for _, v := range s.trail {
		if r := s.reason[v.Var()]; r >= 0 {
			locked[int(r)] = true
		}
	}
	for _, cr := range learnts {
		if s.clauses[cr].act < median && !locked[cr] {
			s.clauses[cr].deleted = true
		}
	}
}

func quickMedian(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Simple selection by sort copy; clause DBs are small here.
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// outOfBudget reports whether the current Solve call exhausted a
// resource budget, and polls the Stop hook every PollEvery ticks (each
// conflict and each decision is one tick). Any true answer makes Solve
// return Unknown — never Unsat — so budget exhaustion is always
// distinguishable from a proof.
func (s *Solver) outOfBudget() bool {
	if s.MaxConflicts > 0 && s.conflicts >= s.MaxConflicts {
		return true
	}
	if s.MaxPropagations > 0 && s.propagations >= s.MaxPropagations {
		return true
	}
	if s.Stop != nil {
		s.sincePoll++
		poll := s.PollEvery
		if poll <= 0 {
			poll = DefaultPollEvery
		}
		if s.sincePoll >= poll {
			s.sincePoll = 0
			if s.Stop() {
				return true
			}
		}
	}
	return false
}

// Solve determines satisfiability under the given assumptions.
// Assumptions are temporary unit constraints for this call only: Unsat
// means "unsatisfiable under the assumptions", and the solver state
// (learnt clauses, activities) carries over to the next call, enabling
// incremental solving. Unknown is returned — with all state intact — when
// a budget (MaxConflicts, MaxPropagations) runs out or Stop requests
// cancellation.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if !s.ok {
		return Unsat
	}
	s.backtrack(0)
	s.conflicts = 0
	s.propagations = 0
	// sincePoll deliberately persists across Solve calls: an incremental
	// caller issuing many short solves (each under PollEvery ticks, e.g.
	// the SAT attack's DIP loop on an easy miter) must still reach the
	// Stop hook every PollEvery ticks cumulatively, or cancellation
	// starves.
	var restartN int64 = 1
	conflictBudget := 100 * luby(restartN)
	sinceRestart := int64(0)
	learntCap := len(s.clauses)/3 + 500

	for {
		confl := s.propagate()
		if confl >= 0 {
			s.conflicts++
			sinceRestart++
			if s.decisionLevel() == 0 {
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			// The learnt clause's asserting level may lie below the
			// assumption levels; backtracking there retracts assumptions,
			// and the assumption block below re-applies them one level at
			// a time (an assumption falsified by the new level-0 fact then
			// correctly yields Unsat-under-assumptions).
			s.backtrack(btLevel)
			if len(learnt) == 1 {
				if !s.enqueue(learnt[0], -1) {
					return Unsat
				}
			} else {
				cref := len(s.clauses)
				s.clauses = append(s.clauses, clause{lits: learnt, learnt: true, act: s.claInc})
				s.watchClause(cref)
				s.enqueue(learnt[0], int32(cref))
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			if s.outOfBudget() {
				return Unknown
			}
			nLearnt := 0
			for i := range s.clauses {
				if s.clauses[i].learnt && !s.clauses[i].deleted {
					nLearnt++
				}
			}
			if nLearnt > learntCap {
				s.reduceDB()
				learntCap += learntCap / 10
			}
			continue
		}
		if sinceRestart >= conflictBudget {
			sinceRestart = 0
			restartN++
			conflictBudget = 100 * luby(restartN)
			s.backtrack(0)
			continue
		}
		// Apply assumptions one level at a time.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// Already satisfied; open an empty decision level to keep
				// the level↔assumption correspondence.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(a, -1)
			continue
		}
		// Poll budgets on decisions too: a satisfiable instance can run
		// long with few conflicts, and cancellation must still land.
		if s.outOfBudget() {
			return Unknown
		}
		next := s.pickBranch()
		if next == Lit(-1) {
			return Sat
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(next, -1)
	}
}

// ValueOf returns the model value of variable v after Sat.
func (s *Solver) ValueOf(v int) bool { return s.assign[v] == lTrue }

// NumConflicts returns the conflicts seen by the last Solve call.
func (s *Solver) NumConflicts() int64 { return s.conflicts }

// NumPropagations returns the literals propagated by the last Solve call.
func (s *Solver) NumPropagations() int64 { return s.propagations }

// heap is a max-heap over variable activity with position tracking.
type heap struct {
	data []int
	pos  []int // variable -> heap index, -1 if absent
}

func (h *heap) grow(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
}

func (h *heap) contains(v int) bool { return v < len(h.pos) && h.pos[v] >= 0 }

func (h *heap) push(v int, act *[]float64) {
	h.grow(v)
	if h.pos[v] >= 0 {
		return
	}
	h.data = append(h.data, v)
	h.pos[v] = len(h.data) - 1
	h.up(h.pos[v], act)
}

func (h *heap) pop(act *[]float64) (int, bool) {
	if len(h.data) == 0 {
		return 0, false
	}
	top := h.data[0]
	last := h.data[len(h.data)-1]
	h.data = h.data[:len(h.data)-1]
	h.pos[top] = -1
	if len(h.data) > 0 {
		h.data[0] = last
		h.pos[last] = 0
		h.down(0, act)
	}
	return top, true
}

func (h *heap) update(v int, act *[]float64) {
	if h.contains(v) {
		h.up(h.pos[v], act)
	}
}

func (h *heap) up(i int, act *[]float64) {
	a := *act
	for i > 0 {
		p := (i - 1) / 2
		if a[h.data[i]] <= a[h.data[p]] {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *heap) down(i int, act *[]float64) {
	a := *act
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h.data) && a[h.data[l]] > a[h.data[largest]] {
			largest = l
		}
		if r < len(h.data) && a[h.data[r]] > a[h.data[largest]] {
			largest = r
		}
		if largest == i {
			return
		}
		h.swap(i, largest)
		i = largest
	}
}

func (h *heap) swap(i, j int) {
	h.data[i], h.data[j] = h.data[j], h.data[i]
	h.pos[h.data[i]] = i
	h.pos[h.data[j]] = j
}
