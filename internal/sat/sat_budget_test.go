package sat

import "testing"

// pigeonhole builds PHP(n+1, n) — UNSAT and hard enough to need real
// search — on a fresh solver. Used as the standard "expensive instance"
// for budget and cancellation tests.
func pigeonhole(n int) *Solver {
	v := func(p, h int) int { return p*n + h }
	s := New((n + 1) * n)
	for p := 0; p <= n; p++ {
		var cl []Lit
		for h := 0; h < n; h++ {
			cl = append(cl, MkLit(v(p, h), false))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	return s
}

func TestUnknownNeverConflatedWithUnsat(t *testing.T) {
	// Sweep tiny conflict budgets over an UNSAT instance: every budgeted
	// call must answer Unknown (never a fake Unsat), and the same solver
	// must still prove Unsat once the budget is lifted — state survives
	// budget exhaustion.
	s := pigeonhole(7)
	for budget := int64(1); budget <= 16; budget *= 2 {
		s.MaxConflicts = budget
		if got := s.Solve(); got != Unknown {
			t.Fatalf("MaxConflicts=%d: Solve = %v, want Unknown", budget, got)
		}
		if s.NumConflicts() < budget {
			t.Fatalf("MaxConflicts=%d: stopped after %d conflicts", budget, s.NumConflicts())
		}
	}
	s.MaxConflicts = 0
	if got := s.Solve(); got != Unsat {
		t.Fatalf("unbudgeted re-solve = %v, want Unsat", got)
	}
}

func TestMaxPropagationsUnknown(t *testing.T) {
	s := pigeonhole(7)
	s.MaxPropagations = 50
	if got := s.Solve(); got != Unknown {
		t.Fatalf("propagation-budgeted solve = %v, want Unknown", got)
	}
	if s.NumPropagations() < 50 {
		t.Fatalf("stopped after only %d propagations", s.NumPropagations())
	}
	s.MaxPropagations = 0
	if got := s.Solve(); got != Unsat {
		t.Fatalf("re-solve = %v, want Unsat", got)
	}
}

func TestBudgetsResetPerSolveCall(t *testing.T) {
	// An easy Sat call after a budget-exhausted one must not inherit the
	// previous call's counters.
	s := New(2)
	s.AddClause(MkLit(0, false), MkLit(1, false))
	if got := s.Solve(MkLit(0, false)); got != Sat {
		t.Fatalf("unbudgeted solve = %v, want Sat", got)
	}
	// A budget exactly covering one call must keep covering each later
	// call — counters reset, they do not accumulate across calls.
	s.MaxPropagations = s.NumPropagations() + 1
	for i := 0; i < 5; i++ {
		if got := s.Solve(MkLit(0, false)); got != Sat {
			t.Fatalf("call %d under per-call budget = %v, want Sat", i, got)
		}
	}
}

func TestStopHookCancels(t *testing.T) {
	s := pigeonhole(8)
	polls := 0
	s.PollEvery = 1
	s.Stop = func() bool {
		polls++
		return polls >= 3
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("stopped solve = %v, want Unknown", got)
	}
	if polls != 3 {
		t.Fatalf("Stop polled %d times, want exactly 3", polls)
	}
	// Clearing the hook lets the same instance finish.
	s.Stop = nil
	if got := s.Solve(); got != Unsat {
		t.Fatalf("re-solve = %v, want Unsat", got)
	}
}

func TestStopHookPollCadence(t *testing.T) {
	// With a large PollEvery the hook must stay off the hot path: an
	// instance solved in fewer ticks than PollEvery never polls.
	s := New(3)
	s.AddClause(MkLit(0, false), MkLit(1, false), MkLit(2, false))
	s.PollEvery = 1 << 30
	polled := false
	s.Stop = func() bool { polled = true; return true }
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if polled {
		t.Fatalf("Stop polled before PollEvery ticks elapsed")
	}
}

// TestStopHookPollsAcrossShortSolves is a regression for a cancellation
// starvation bug: sincePoll used to reset on every Solve call, so an
// incremental caller issuing many solves each shorter than PollEvery
// (the SAT attack's DIP loop on an easy miter) never reached the Stop
// hook at all. The tick count must accumulate across calls.
func TestStopHookPollsAcrossShortSolves(t *testing.T) {
	s := New(8)
	for i := 0; i+1 < 8; i += 2 {
		s.AddClause(MkLit(i, false), MkLit(i+1, false))
	}
	s.PollEvery = 64 // far more ticks than any single solve below uses
	polled := false
	s.Stop = func() bool { polled = true; return false }
	for i := 0; i < 200 && !polled; i++ {
		if got := s.Solve(); got != Sat {
			t.Fatalf("Solve #%d = %v, want Sat", i, got)
		}
	}
	if !polled {
		t.Fatal("Stop never polled across 200 short Solve calls")
	}
}

func TestStopHookOnSatisfiableInstance(t *testing.T) {
	// Cancellation must land even when the instance produces decisions but
	// few conflicts: n free variables mean n decisions and zero conflicts.
	const n = 64
	s := New(n)
	for i := 0; i+1 < n; i += 2 {
		s.AddClause(MkLit(i, false), MkLit(i+1, false))
	}
	s.PollEvery = 1
	s.Stop = func() bool { return true }
	if got := s.Solve(); got != Unknown {
		t.Fatalf("stopped satisfiable solve = %v, want Unknown", got)
	}
}

func TestConflictAtAssumptionLevel(t *testing.T) {
	// (x0|x1) & (x0|!x1): assuming !x0 propagates x1 and !x1 — a conflict
	// at the assumption level. The learnt unit x0 lands at level 0, where
	// re-applying the assumption sees it falsified: Unsat under the
	// assumptions, while the formula itself stays Sat.
	s := New(2)
	s.AddClause(MkLit(0, false), MkLit(1, false))
	s.AddClause(MkLit(0, false), MkLit(1, true))
	if got := s.Solve(MkLit(0, true)); got != Unsat {
		t.Fatalf("Solve(!x0) = %v, want Unsat", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
	if !s.ValueOf(0) {
		t.Fatalf("x0 must be forced true")
	}
}

func TestConflictBacktracksBelowAssumptionLevels(t *testing.T) {
	// (x0|x2|x1) & (x0|x2|!x1) under assumptions !x0, !x2: the conflict
	// fires at assumption level 2 and the learnt clause (x0|x2) asserts x2
	// back at level 1 — below the level of the second assumption. The
	// re-application pass must then see assumption !x2 falsified and
	// answer Unsat instead of looping or crashing.
	s := New(3)
	s.AddClause(MkLit(0, false), MkLit(2, false), MkLit(1, false))
	s.AddClause(MkLit(0, false), MkLit(2, false), MkLit(1, true))
	if got := s.Solve(MkLit(0, true), MkLit(2, true)); got != Unsat {
		t.Fatalf("Solve(!x0,!x2) = %v, want Unsat", got)
	}
	// Each assumption alone is fine.
	if got := s.Solve(MkLit(0, true)); got != Sat {
		t.Fatalf("Solve(!x0) = %v, want Sat", got)
	}
	if got := s.Solve(MkLit(2, true)); got != Sat {
		t.Fatalf("Solve(!x2) = %v, want Sat", got)
	}
}

func TestRepeatedSolveDifferentAssumptions(t *testing.T) {
	// One instance, many assumption sets, interleaving Sat and Unsat —
	// the incremental pattern the key-miter DIP loop relies on.
	s := New(4)
	s.AddClause(MkLit(0, false), MkLit(1, false)) // x0 | x1
	s.AddClause(MkLit(2, true), MkLit(3, false))  // x2 -> x3
	cases := []struct {
		assume []Lit
		want   Status
	}{
		{[]Lit{MkLit(0, true), MkLit(1, true)}, Unsat},
		{[]Lit{MkLit(0, true)}, Sat},
		{[]Lit{MkLit(2, false), MkLit(3, true)}, Unsat},
		{[]Lit{MkLit(2, false)}, Sat},
		{[]Lit{MkLit(1, true), MkLit(0, true)}, Unsat},
		{nil, Sat},
	}
	for i, c := range cases {
		if got := s.Solve(c.assume...); got != c.want {
			t.Fatalf("case %d: Solve(%v) = %v, want %v", i, c.assume, got, c.want)
		}
	}
	// Model checks on the Sat cases.
	if s.Solve(MkLit(0, true)) != Sat || !s.ValueOf(1) {
		t.Fatalf("under !x0, x1 must be true")
	}
	if s.Solve(MkLit(2, false)) != Sat || !s.ValueOf(3) {
		t.Fatalf("under x2, x3 must be true")
	}
}

func TestSatisfiedAssumptionKeepsLevelCorrespondence(t *testing.T) {
	// When an assumption is already true by propagation, the solver opens
	// an empty decision level so level k still corresponds to assumption
	// k. A conflict involving a later assumption must still resolve
	// correctly.
	s := New(3)
	s.AddClause(MkLit(0, false))                 // x0 (unit: assumption 0 pre-satisfied)
	s.AddClause(MkLit(1, true), MkLit(2, false)) // x1 -> x2
	if got := s.Solve(MkLit(0, false), MkLit(1, false), MkLit(2, true)); got != Unsat {
		t.Fatalf("Solve(x0,x1,!x2) = %v, want Unsat", got)
	}
	if got := s.Solve(MkLit(0, false), MkLit(1, false)); got != Sat {
		t.Fatalf("Solve(x0,x1) = %v, want Sat", got)
	}
	if !s.ValueOf(2) {
		t.Fatalf("x2 must be propagated true")
	}
}

func TestAddClauseAfterSatNotDroppedByStaleModel(t *testing.T) {
	// Regression: AddClause used to simplify against the previous Solve
	// call's model still sitting on the trail, so a clause satisfied only
	// by that stale model was silently dropped. Incremental loops (the
	// SAT attack adds I/O constraints after each Sat answer) then solved
	// the wrong formula.
	s := New(2)
	s.AddClause(MkLit(0, false), MkLit(1, false))
	if got := s.Solve(MkLit(0, false)); got != Sat {
		t.Fatalf("setup solve = %v, want Sat", got)
	}
	// x0 is true in the stale model but NOT a level-0 fact; this clause
	// must be recorded, not dropped.
	s.AddClause(MkLit(0, false))
	if got := s.Solve(MkLit(0, true)); got != Unsat {
		t.Fatalf("Solve(!x0) after AddClause(x0) = %v, want Unsat — clause was dropped against a stale model", got)
	}
}
