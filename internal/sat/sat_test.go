package sat

import (
	"math/rand"
	"testing"
)

func TestLitOps(t *testing.T) {
	l := MkLit(3, true)
	if l.Var() != 3 || !l.Neg() {
		t.Fatalf("MkLit(3,true) = %v", l)
	}
	if l.Not().Neg() || l.Not().Var() != 3 {
		t.Fatalf("Not broken")
	}
}

func TestTrivialSat(t *testing.T) {
	s := New(1)
	s.AddClause(MkLit(0, false))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if !s.ValueOf(0) {
		t.Fatalf("model wrong")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New(1)
	s.AddClause(MkLit(0, false))
	s.AddClause(MkLit(0, true))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New(2)
	s.AddClause(MkLit(0, false))
	// After fixing var 0 true, clause (!0) simplifies to empty.
	ok := s.AddClause(MkLit(0, true))
	if ok {
		t.Fatalf("adding contradicting unit should fail")
	}
	if s.Solve() != Unsat {
		t.Fatalf("expected Unsat")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New(1)
	s.AddClause(MkLit(0, false), MkLit(0, true))
	if s.Solve() != Sat {
		t.Fatalf("tautology should leave formula satisfiable")
	}
}

func TestPropagationChain(t *testing.T) {
	// x0 & (x0 -> x1) & (x1 -> x2) ... forces all true.
	const n = 50
	s := New(n)
	s.AddClause(MkLit(0, false))
	for i := 0; i+1 < n; i++ {
		s.AddClause(MkLit(i, true), MkLit(i+1, false))
	}
	if s.Solve() != Sat {
		t.Fatalf("chain unsat?")
	}
	for i := 0; i < n; i++ {
		if !s.ValueOf(i) {
			t.Fatalf("var %d not propagated", i)
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons, n holes — classically UNSAT and requires
	// real search, exercising learning and backjumping.
	n := 6
	v := func(p, h int) int { return p*n + h }
	s := New((n + 1) * n)
	for p := 0; p <= n; p++ {
		var cl []Lit
		for h := 0; h < n; h++ {
			cl = append(cl, MkLit(v(p, h), false))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(%d+1,%d) = %v, want Unsat", n, n, got)
	}
}

func TestGraphColoringSat(t *testing.T) {
	// A 5-cycle is 3-colorable.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	v := func(node, color int) int { return node*3 + color }
	s := New(15)
	for node := 0; node < 5; node++ {
		s.AddClause(MkLit(v(node, 0), false), MkLit(v(node, 1), false), MkLit(v(node, 2), false))
		for c1 := 0; c1 < 3; c1++ {
			for c2 := c1 + 1; c2 < 3; c2++ {
				s.AddClause(MkLit(v(node, c1), true), MkLit(v(node, c2), true))
			}
		}
	}
	for _, e := range edges {
		for c := 0; c < 3; c++ {
			s.AddClause(MkLit(v(e[0], c), true), MkLit(v(e[1], c), true))
		}
	}
	if s.Solve() != Sat {
		t.Fatalf("5-cycle should be 3-colorable")
	}
	// Verify the model is a proper coloring.
	color := make([]int, 5)
	for node := 0; node < 5; node++ {
		color[node] = -1
		for c := 0; c < 3; c++ {
			if s.ValueOf(v(node, c)) {
				color[node] = c
				break
			}
		}
		if color[node] < 0 {
			t.Fatalf("node %d uncolored", node)
		}
	}
	for _, e := range edges {
		if color[e[0]] == color[e[1]] {
			t.Fatalf("edge %v monochromatic", e)
		}
	}
}

func TestAssumptions(t *testing.T) {
	// (x0 | x1) & (!x0 | x2)
	s := New(3)
	s.AddClause(MkLit(0, false), MkLit(1, false))
	s.AddClause(MkLit(0, true), MkLit(2, false))
	if s.Solve(MkLit(0, false), MkLit(2, true)) != Unsat {
		t.Fatalf("assuming x0 & !x2 must be Unsat")
	}
	if s.Solve(MkLit(0, false)) != Sat {
		t.Fatalf("assuming x0 must be Sat")
	}
	if !s.ValueOf(2) {
		t.Fatalf("x2 must be true when x0 assumed")
	}
	// Solver remains reusable.
	if s.Solve(MkLit(1, false)) != Sat {
		t.Fatalf("assuming x1 must be Sat")
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := New(2)
	s.AddClause(MkLit(0, false), MkLit(1, false))
	if s.Solve() != Sat {
		t.Fatal("first solve")
	}
	s.AddClause(MkLit(0, true))
	s.AddClause(MkLit(1, true))
	if s.Solve() != Unsat {
		t.Fatal("after adding blocking units, must be Unsat")
	}
}

func TestMaxConflictsUnknown(t *testing.T) {
	// Hard instance with a tiny conflict budget should return Unknown.
	n := 8
	v := func(p, h int) int { return p*n + h }
	s := New((n + 1) * n)
	s.MaxConflicts = 5
	for p := 0; p <= n; p++ {
		var cl []Lit
		for h := 0; h < n; h++ {
			cl = append(cl, MkLit(v(p, h), false))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("budgeted solve = %v, want Unknown", got)
	}
}

// brute-force 3-SAT checker for randomized cross-validation.
func bruteSat(nVars int, clauses [][]Lit) bool {
	for mask := 0; mask < 1<<nVars; mask++ {
		ok := true
		for _, cl := range clauses {
			sat := false
			for _, l := range cl {
				val := mask&(1<<l.Var()) != 0
				if val != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		nVars := 4 + rng.Intn(9) // 4..12
		nClauses := 2 + rng.Intn(5*nVars)
		var clauses [][]Lit
		s := New(nVars)
		for c := 0; c < nClauses; c++ {
			var cl []Lit
			for k := 0; k < 3; k++ {
				cl = append(cl, MkLit(rng.Intn(nVars), rng.Intn(2) == 1))
			}
			clauses = append(clauses, cl)
			s.AddClause(cl...)
		}
		want := bruteSat(nVars, clauses)
		got := s.Solve()
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v brute=%v (%d vars, %d clauses)",
				trial, got, want, nVars, nClauses)
		}
		if got == Sat {
			// Verify model.
			for _, cl := range clauses {
				ok := false
				for _, l := range cl {
					if s.ValueOf(l.Var()) != l.Neg() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("trial %d: model violates clause", trial)
				}
			}
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 7
		v := func(p, h int) int { return p*n + h }
		s := New((n + 1) * n)
		for p := 0; p <= n; p++ {
			var cl []Lit
			for h := 0; h < n; h++ {
				cl = append(cl, MkLit(v(p, h), false))
			}
			s.AddClause(cl...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
				}
			}
		}
		if s.Solve() != Unsat {
			b.Fatal("wrong answer")
		}
	}
}
