package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Client talks the Server protocol. It is a thin, context-threaded
// veneer over net/http: every call takes a context and honors it,
// including mid-stream in Watch.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for addr — "host:port" or a full
// "http://..." base URL.
func NewClient(addr string) *Client {
	return NewClientHTTP(addr, http.DefaultClient)
}

// NewClientHTTP is NewClient with an explicit http.Client (tests,
// custom transports).
func NewClientHTTP(addr string, hc *http.Client) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: strings.TrimSuffix(base, "/"), hc: hc}
}

// decodeError rebuilds a service error from a non-2xx response so
// errors.Is works across the wire the same as in-process.
func decodeError(resp *http.Response, body []byte) error {
	var er errorResponse
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		msg = er.Error
	}
	var sentinel error
	switch resp.StatusCode {
	case http.StatusBadRequest:
		sentinel = ErrBadSpec
	case http.StatusNotFound:
		sentinel = ErrNoSuchJob
	case http.StatusTooManyRequests:
		sentinel = ErrQueueFull
	case http.StatusServiceUnavailable:
		sentinel = ErrClosed
	}
	if sentinel != nil {
		return fmt.Errorf("server: %w (%s)", sentinel, msg)
	}
	return fmt.Errorf("server: %s (HTTP %d)", msg, resp.StatusCode)
}

// do runs one request and decodes the JSON response into out (nil skips
// decoding). ok lists the status codes that mean success.
func (c *Client) do(ctx context.Context, method, path string, in, out any, ok ...int) (int, error) {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	accepted := false
	for _, code := range ok {
		if resp.StatusCode == code {
			accepted = true
			break
		}
	}
	if !accepted {
		return resp.StatusCode, decodeError(resp, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding response: %w", err)
		}
	}
	return resp.StatusCode, nil
}

// Submit sends a job spec and returns its server-assigned ID.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (string, error) {
	var sr submitResponse
	_, err := c.do(ctx, http.MethodPost, "/jobs", spec, &sr, http.StatusCreated)
	return sr.ID, err
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	_, err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st, http.StatusOK)
	return st, err
}

// Result fetches a job's result; the pointer is nil until the job is
// done (the status tells why).
func (c *Client) Result(ctx context.Context, id string) (*JobResult, JobStatus, error) {
	var rr resultResponse
	_, err := c.do(ctx, http.MethodGet, "/jobs/"+id+"/result", nil, &rr,
		http.StatusOK, http.StatusAccepted)
	return rr.Result, rr.Status, err
}

// Cancel asks the server to cancel a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	_, err := c.do(ctx, http.MethodPost, "/jobs/"+id+"/cancel", nil, nil, http.StatusOK)
	return err
}

// Jobs lists all job statuses in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var js []JobStatus
	_, err := c.do(ctx, http.MethodGet, "/jobs", nil, &js, http.StatusOK)
	return js, err
}

// Stats fetches the server snapshot.
func (c *Client) Stats(ctx context.Context, withJobs bool) (Stats, error) {
	path := "/stats"
	if withJobs {
		path += "?jobs=1"
	}
	var st Stats
	_, err := c.do(ctx, http.MethodGet, path, nil, &st, http.StatusOK)
	return st, err
}

// Healthz probes liveness.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := c.do(ctx, http.MethodGet, "/healthz", nil, nil, http.StatusOK)
	return err
}

// Watch streams a job's events from sequence from, calling fn for each
// line until the stream's terminal event, an fn error, or ctx
// cancellation. It returns the terminal event (zero if the stream ended
// early with an error).
func (c *Client) Watch(ctx context.Context, id string, from int, fn func(StreamEvent) error) (StreamEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/jobs/"+id+"/events?from="+strconv.Itoa(from), nil)
	if err != nil {
		return StreamEvent{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return StreamEvent{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return StreamEvent{}, decodeError(resp, data)
	}
	// Result lines carry whole netlists; give the scanner room.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return StreamEvent{}, fmt.Errorf("decoding stream line: %w", err)
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return StreamEvent{}, err
			}
		}
		if ev.Terminal() {
			return ev, nil
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return StreamEvent{}, ctx.Err()
		}
		return StreamEvent{}, err
	}
	return StreamEvent{}, fmt.Errorf("event stream for %s ended without a terminal event", id)
}

// Wait watches a job to completion and returns its result, unwrapping a
// failed or canceled job into an error.
func (c *Client) Wait(ctx context.Context, id string, fn func(StreamEvent) error) (*JobResult, error) {
	term, err := c.Watch(ctx, id, 0, fn)
	if err != nil {
		return nil, err
	}
	if term.Type == StreamError {
		return nil, fmt.Errorf("job %s %s: %s", id, term.State, term.Error)
	}
	return term.Result, nil
}
