package service

import (
	"fmt"
	"os"
	"strconv"
)

// Environment variable names. almostd is configured entirely through
// the environment (flags only override), so a unit file or container
// spec is the whole deployment story.
const (
	// EnvAddr is the listen address (host:port).
	EnvAddr = "ALMOSTD_ADDR"
	// EnvPoolSize is the shared engine-worker slot count.
	EnvPoolSize = "ALMOSTD_POOL_SIZE"
	// EnvQueueLimit caps accepted-but-unfinished jobs.
	EnvQueueLimit = "ALMOSTD_QUEUE_LIMIT"
	// EnvEventBuffer caps each job's event replay buffer.
	EnvEventBuffer = "ALMOSTD_EVENT_BUFFER"
	// EnvHistoryLimit caps retained terminal jobs before eviction.
	EnvHistoryLimit = "ALMOSTD_HISTORY_LIMIT"
)

// DefaultAddr is the loopback-only default listen address.
const DefaultAddr = "127.0.0.1:9571"

// ServerConfig is almostd's full configuration.
type ServerConfig struct {
	Addr      string
	Scheduler SchedulerConfig
}

// ConfigFromEnv reads the ALMOSTD_* variables through lookup (nil means
// os.LookupEnv). Unset variables keep their defaults; a set-but-bad
// value is an error, not a silent fallback.
func ConfigFromEnv(lookup func(string) (string, bool)) (ServerConfig, error) {
	if lookup == nil {
		lookup = os.LookupEnv
	}
	cfg := ServerConfig{Addr: DefaultAddr}
	if v, ok := lookup(EnvAddr); ok {
		cfg.Addr = v
	}
	var err error
	if cfg.Scheduler.PoolSize, err = envInt(lookup, EnvPoolSize, 0); err != nil {
		return ServerConfig{}, err
	}
	if cfg.Scheduler.QueueLimit, err = envInt(lookup, EnvQueueLimit, 0); err != nil {
		return ServerConfig{}, err
	}
	if cfg.Scheduler.EventBuffer, err = envInt(lookup, EnvEventBuffer, 0); err != nil {
		return ServerConfig{}, err
	}
	if cfg.Scheduler.HistoryLimit, err = envInt(lookup, EnvHistoryLimit, 0); err != nil {
		return ServerConfig{}, err
	}
	return cfg, nil
}

func envInt(lookup func(string) (string, bool), name string, def int) (int, error) {
	v, ok := lookup(name)
	if !ok || v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("service: %s must be a non-negative integer, got %q", name, v)
	}
	return n, nil
}
