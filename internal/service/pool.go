package service

import (
	"context"
	"sync"
)

// defaultMaxSkips bounds how many later arrivals may overtake a blocked
// head-of-line waiter before the pool stops admitting anyone else until
// the head fits. Small enough that a big job waits O(1) small jobs, big
// enough to keep the pool busy while the head's budget drains free.
const defaultMaxSkips = 4

// Pool is the shared engine-worker slot pool all jobs draw from. A job
// asks for its Parallelism budget and holds the granted slots for its
// whole run; fairness is enforced at admission:
//
//   - waiters queue FIFO;
//   - a later, smaller request may overtake a blocked head-of-line
//     waiter at most maxSkips times (so small jobs flow around a big
//     one while its slots drain free);
//   - after that the head gets strict priority — nothing is admitted
//     until it fits — so no request starves;
//   - aggregate granted budget never exceeds the capacity, by
//     construction: grants only subtract from the free count under the
//     one mutex.
type Pool struct {
	mu       sync.Mutex
	capacity int
	free     int
	waiters  []*waiter
	maxSkips int
}

type waiter struct {
	n     int
	ready chan struct{} // closed-over grant signal, buffered
	skips int           // times overtaken while at the head
}

// NewPool creates a pool with the given slot capacity (min 1).
func NewPool(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{capacity: capacity, free: capacity, maxSkips: defaultMaxSkips}
}

// Capacity returns the pool's total slot count.
func (p *Pool) Capacity() int { return p.capacity }

// InFlight returns the aggregate granted budget right now.
func (p *Pool) InFlight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity - p.free
}

// Waiting returns the number of requests queued for slots.
func (p *Pool) Waiting() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.waiters)
}

// Acquire blocks until n slots are granted or ctx is done. n is clamped
// to [1, capacity] — a job asking for more than the pool holds gets the
// whole pool, not an error, because results don't depend on the budget.
// It returns the granted count and a release function that must be
// called exactly once when the job's run ends (calling it again is a
// no-op).
func (p *Pool) Acquire(ctx context.Context, n int) (granted int, release func(), err error) {
	if n < 1 {
		n = 1
	}
	if n > p.capacity {
		n = p.capacity
	}
	p.mu.Lock()
	if len(p.waiters) == 0 && p.free >= n {
		p.free -= n
		p.mu.Unlock()
		return n, p.releaseFunc(n), nil
	}
	w := &waiter{n: n, ready: make(chan struct{}, 1)}
	p.waiters = append(p.waiters, w)
	// The new arrival may fit around a blocked head (bounded overtaking)
	// even though slots were not just released — scan now, not at the
	// next release.
	p.grantLocked()
	p.mu.Unlock()

	select {
	case <-w.ready:
		return n, p.releaseFunc(n), nil
	case <-ctx.Done():
		p.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the cancellation: hand the slots straight
			// back so they are not stranded.
			p.free += n
			p.grantLocked()
		default:
			for i, q := range p.waiters {
				if q == w {
					p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
					break
				}
			}
		}
		p.mu.Unlock()
		return 0, nil, ctx.Err()
	}
}

// releaseFunc builds the idempotent release closure for n granted slots.
func (p *Pool) releaseFunc(n int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			p.free += n
			p.grantLocked()
			p.mu.Unlock()
		})
	}
}

// grantLocked admits as many waiters as fairness allows. Called with
// p.mu held.
func (p *Pool) grantLocked() {
	for len(p.waiters) > 0 {
		head := p.waiters[0]
		if p.free >= head.n {
			p.free -= head.n
			p.waiters = p.waiters[1:]
			head.ready <- struct{}{}
			continue
		}
		// The head doesn't fit. Let smaller requests flow around it, but
		// only maxSkips times — then the pool drains until it fits.
		for j := 1; j < len(p.waiters) && head.skips < p.maxSkips; {
			w := p.waiters[j]
			if p.free >= w.n {
				p.free -= w.n
				p.waiters = append(p.waiters[:j], p.waiters[j+1:]...)
				w.ready <- struct{}{}
				head.skips++
				continue
			}
			j++
		}
		return
	}
}
