package service

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// acquireAsync starts an Acquire on its own goroutine and returns a
// channel that delivers the grant.
type grant struct {
	n       int
	release func()
	err     error
}

func acquireAsync(ctx context.Context, p *Pool, n int) <-chan grant {
	ch := make(chan grant, 1)
	go func() {
		g, rel, err := p.Acquire(ctx, n)
		ch <- grant{n: g, release: rel, err: err}
	}()
	return ch
}

func mustGrant(t *testing.T, ch <-chan grant) grant {
	t.Helper()
	select {
	case g := <-ch:
		if g.err != nil {
			t.Fatalf("Acquire failed: %v", g.err)
		}
		return g
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire did not complete")
	}
	return grant{}
}

func mustBlock(t *testing.T, ch <-chan grant) {
	t.Helper()
	select {
	case g := <-ch:
		t.Fatalf("Acquire should still be blocked, got grant of %d (err %v)", g.n, g.err)
	case <-time.After(30 * time.Millisecond):
	}
}

// TestPoolClamping checks the budget clamp: requests outside [1, cap]
// are folded into range instead of erroring, because results never
// depend on the granted budget.
func TestPoolClamping(t *testing.T) {
	p := NewPool(4)
	ctx := context.Background()
	g, rel, err := p.Acquire(ctx, 99)
	if err != nil || g != 4 {
		t.Fatalf("Acquire(99) on cap 4: granted %d, err %v; want 4", g, err)
	}
	rel()
	g, rel, err = p.Acquire(ctx, 0)
	if err != nil || g != 1 {
		t.Fatalf("Acquire(0): granted %d, err %v; want 1", g, err)
	}
	rel()
	rel() // release must be idempotent
	if got := p.InFlight(); got != 0 {
		t.Fatalf("InFlight after releases = %d, want 0", got)
	}
}

// TestPoolFairness walks the bounded-overtaking schedule by hand:
// small requests flow around a blocked big head exactly maxSkips times,
// then the pool drains for the head — so the big job cannot starve and
// the small jobs still get the leftover slots meanwhile.
func TestPoolFairness(t *testing.T) {
	p := NewPool(4)
	p.maxSkips = 2
	ctx := context.Background()

	a := mustGrant(t, acquireAsync(ctx, p, 3)) // free = 1
	big := acquireAsync(ctx, p, 4)             // blocked head
	mustBlock(t, big)

	// Overtake 1 and 2: single-slot requests fit in the leftover slot.
	c := mustGrant(t, acquireAsync(ctx, p, 1))
	c.release()
	d := mustGrant(t, acquireAsync(ctx, p, 1))
	d.release()

	// Overtake budget spent: the next small request must queue behind
	// the big head even though a slot is free.
	e := acquireAsync(ctx, p, 1)
	mustBlock(t, e)
	if got := p.Waiting(); got != 2 {
		t.Fatalf("Waiting = %d, want 2 (big head + barred small)", got)
	}

	// The head's budget drains free: big goes first, then the barred
	// small request.
	a.release()
	b := mustGrant(t, big)
	if b.n != 4 {
		t.Fatalf("big grant = %d, want 4", b.n)
	}
	mustBlock(t, e) // pool is full again
	b.release()
	eg := mustGrant(t, e)
	eg.release()
	if got := p.InFlight(); got != 0 {
		t.Fatalf("InFlight at end = %d, want 0", got)
	}
}

// TestPoolAcquireCancel checks that a canceled waiter leaves the queue
// without stranding slots or blocking later waiters.
func TestPoolAcquireCancel(t *testing.T) {
	p := NewPool(2)
	ctx := context.Background()
	a := mustGrant(t, acquireAsync(ctx, p, 2))

	cctx, cancel := context.WithCancel(ctx)
	blocked := acquireAsync(cctx, p, 2)
	mustBlock(t, blocked)
	cancel()
	select {
	case g := <-blocked:
		if g.err == nil {
			t.Fatal("canceled Acquire returned a grant")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled Acquire did not return")
	}

	// The canceled waiter must not block the next one.
	next := acquireAsync(ctx, p, 1)
	mustBlock(t, next)
	a.release()
	ng := mustGrant(t, next)
	ng.release()
	if got, want := p.InFlight(), 0; got != want {
		t.Fatalf("InFlight = %d, want %d", got, want)
	}
}

// TestPoolStress is the satellite invariant under churn: dozens of
// concurrent unequal-budget requests, aggregate in-flight never above
// capacity, and every request eventually served (no starvation).
func TestPoolStress(t *testing.T) {
	const cap = 3
	p := NewPool(cap)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var inFlight, maxSeen int64
	var wg sync.WaitGroup
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for round := 0; round < 6; round++ {
				g, rel, err := p.Acquire(ctx, 1+rng.Intn(5))
				if err != nil {
					t.Errorf("goroutine %d round %d: %v", i, round, err)
					return
				}
				cur := atomic.AddInt64(&inFlight, int64(g))
				for {
					prev := atomic.LoadInt64(&maxSeen)
					if cur <= prev || atomic.CompareAndSwapInt64(&maxSeen, prev, cur) {
						break
					}
				}
				time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
				atomic.AddInt64(&inFlight, -int64(g))
				rel()
			}
		}(i)
	}
	wg.Wait()
	if max := atomic.LoadInt64(&maxSeen); max > cap {
		t.Fatalf("aggregate in-flight reached %d, pool capacity is %d", max, cap)
	}
	if got := p.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
	if got := p.Waiting(); got != 0 {
		t.Fatalf("Waiting after drain = %d, want 0", got)
	}
}
