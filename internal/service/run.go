package service

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/core"
	"github.com/nyu-secml/almost/internal/lock"
	"github.com/nyu-secml/almost/internal/netio"
	"github.com/nyu-secml/almost/internal/synth"
)

// RunSpec executes a validated job spec through the library's Ctx entry
// points and returns its wire result. This is the only execution path:
// the server's job runner calls it with the granted pool budget, and
// the soak harness's verifier calls it directly with Parallelism 1 — so
// "server result ≡ direct library call with the same seed" holds by
// construction *and* re-proves the engine's jobs-invariant determinism
// across the whole service stack every time the soak asserts it.
//
// The context is honored at every library checkpoint; on cancellation
// the error matches core.ErrCanceled/ctx.Err() and no result is
// returned (partial results are not wire-stable). Progress streams to
// observe when non-nil.
func RunSpec(ctx context.Context, spec JobSpec, parallelism int, observe func(core.Event)) (*JobResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	design, err := specCircuit(spec)
	if err != nil {
		return nil, err
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	keySize := spec.KeySize
	if keySize == 0 {
		keySize = 32
	}
	var opts []core.Option
	if observe != nil {
		opts = append(opts, core.WithObserver(observe))
	}
	switch spec.Kind {
	case KindLock:
		return runLock(ctx, spec, design, keySize, seed)
	case KindAttack:
		return runAttack(ctx, spec, design, opts)
	case KindHarden, KindPipeline:
		return runHarden(ctx, spec, design, keySize, seed, parallelism, opts)
	}
	return nil, badSpec("unknown kind %q", spec.Kind)
}

// specCircuit resolves the job's input netlist: a built-in benchmark
// name or inline netlist text.
func specCircuit(spec JobSpec) (*aig.AIG, error) {
	if spec.Circuit != "" {
		g, err := circuits.Generate(spec.Circuit)
		if err != nil {
			return nil, badSpec("circuit: %v", err)
		}
		return g, nil
	}
	r := strings.NewReader(spec.Netlist)
	var (
		g   *aig.AIG
		err error
	)
	switch spec.Format {
	case "bench":
		g, err = netio.ParseBench(r)
	case "aag":
		g, err = netio.ParseAIGER(r)
	default:
		return nil, badSpec("unknown inline netlist format %q", spec.Format)
	}
	if err != nil {
		return nil, badSpec("netlist: %v", err)
	}
	return g, nil
}

// specConfig builds the framework Config for the spec's effort tier.
func specConfig(spec JobSpec, seed int64, parallelism int) (core.Config, error) {
	var cfg core.Config
	switch spec.Effort {
	case EffortFull:
		cfg = core.PaperConfig()
	case EffortDefault:
		cfg = core.DefaultConfig()
	case EffortQuick, "":
		// The CLI's -quick trims: keep the flow's shape, shrink the
		// training and search budgets.
		cfg = core.DefaultConfig()
		cfg.Attack.Epochs = 15
		cfg.Attack.Rounds = 6
		cfg.SA.Iterations = 20
		cfg.AdvPeriod = 5
		cfg.AdvGates = 30
		cfg.AdvSAIters = 6
	case EffortSmoke:
		// Minimal budgets that still visit every stage — sized so a soak
		// run can push hundreds of jobs through a small machine.
		cfg = core.DefaultConfig()
		cfg.Attack.Epochs = 2
		cfg.Attack.Rounds = 1
		cfg.Attack.GatesPerRound = 8
		cfg.Attack.Hops = 1
		cfg.Attack.Hidden = 8
		cfg.Attack.Layers = 1
		cfg.SA.Iterations = 2
		cfg.SAProposals = 2
		cfg.AdvPeriod = 1
		cfg.AdvGates = 4
		cfg.AdvSAIters = 1
		cfg.RecipeLen = 5
	default:
		return core.Config{}, badSpec("unknown effort %q", spec.Effort)
	}
	cfg.Seed = seed
	cfg.Parallelism = parallelism
	cfg.Lockers = spec.Lockers
	cfg.EvalAttacks = spec.EvalAttacks
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// benchText renders a netlist as dependency-ordered BENCH text — the
// deterministic artifact encoding of every netlist on the wire.
func benchText(g *aig.AIG) (string, error) {
	var sb strings.Builder
	if err := netio.WriteBench(&sb, g); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// parseKey decodes a 0/1 key string (Validate already vetted the
// alphabet).
func parseKey(s string) lock.Key {
	key := make(lock.Key, 0, len(s))
	for _, c := range s {
		key = append(key, c == '1')
	}
	return key
}

func runLock(ctx context.Context, spec JobSpec, design *aig.AIG, keySize int, seed int64) (*JobResult, error) {
	locked, key, err := core.LockWithCtx(ctx, design, keySize, spec.Lockers, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	text, err := benchText(locked)
	if err != nil {
		return nil, err
	}
	chain := spec.Lockers
	if len(chain) == 0 {
		chain = []string{"rll"}
	}
	return &JobResult{Kind: spec.Kind, Key: key.String(), Netlist: text, Lockers: chain}, nil
}

func runAttack(ctx context.Context, spec JobSpec, locked *aig.AIG, opts []core.Option) (*JobResult, error) {
	if locked.NumKeyInputs() == 0 {
		return nil, badSpec("attack jobs need a locked netlist (no key inputs found)")
	}
	truth := parseKey(spec.Key)
	if locked.NumKeyInputs() != len(truth) {
		return nil, badSpec("key has %d bits but the netlist has %d key inputs", len(truth), locked.NumKeyInputs())
	}
	recipe := synth.Resyn2()
	if spec.Recipe != "" {
		var err error
		if recipe, err = synth.ParseRecipe(spec.Recipe); err != nil {
			return nil, badSpec("recipe: %v", err)
		}
	}
	res := &JobResult{Kind: spec.Kind}
	for _, name := range spec.Attacks {
		atk, ok := core.LookupAttacker(name)
		if !ok {
			return nil, badSpec("unknown attack %q", name)
		}
		acc, err := atk.AttackCtx(ctx, locked, truth, append(opts, core.WithRecipe(recipe))...)
		if err != nil {
			return nil, fmt.Errorf("attack %q: %w", name, err)
		}
		res.Accuracies = append(res.Accuracies, AttackAccuracy{Attack: name, Accuracy: acc})
	}
	return res, nil
}

func runHarden(ctx context.Context, spec JobSpec, design *aig.AIG, keySize int,
	seed int64, parallelism int, opts []core.Option) (*JobResult, error) {
	cfg, err := specConfig(spec, seed, parallelism)
	if err != nil {
		return nil, err
	}
	h, err := core.SecureSynthesisCtx(ctx, design, keySize, cfg, opts...)
	if err != nil {
		return nil, err
	}
	text, err := benchText(h.Netlist)
	if err != nil {
		return nil, err
	}
	res := &JobResult{
		Kind:     spec.Kind,
		Recipe:   h.Recipe.String(),
		Accuracy: h.Search.Accuracy,
		Key:      h.Key.String(),
		Netlist:  text,
		Lockers:  h.Lockers,
	}
	// h.Search.Attacks is the canonical-order slice; the map is only
	// consulted by key, so the result order is deterministic.
	for _, name := range h.Search.Attacks {
		res.Accuracies = append(res.Accuracies, AttackAccuracy{Attack: name, Accuracy: h.Search.Accuracies[name]})
	}
	if spec.Kind != KindPipeline {
		return res, nil
	}
	resyn := synth.Resyn2()
	baseline := resyn.Apply(h.Locked)
	for _, name := range spec.Attacks {
		atk, ok := core.LookupAttacker(name)
		if !ok {
			return nil, badSpec("unknown attack %q", name)
		}
		base, err := atk.AttackCtx(ctx, baseline, h.Key, append(opts, core.WithRecipe(resyn))...)
		if err != nil {
			return nil, fmt.Errorf("attack %q on baseline: %w", name, err)
		}
		hard, err := atk.AttackCtx(ctx, h.Netlist, h.Key, append(opts, core.WithRecipe(h.Recipe))...)
		if err != nil {
			return nil, fmt.Errorf("attack %q on hardened netlist: %w", name, err)
		}
		res.Attacks = append(res.Attacks, AttackOutcome{Attack: name, Baseline: base, Hardened: hard})
	}
	return res, nil
}
